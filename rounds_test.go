// rounds_test.go covers the public Options.Rounds knob: a reduced-round
// bijective family must be a valid, deterministic permutation family,
// versioned by (Seed, Rounds) — the default family must never drift when
// Rounds is unset — and the materializing and streaming surfaces must
// agree on which family a given Options selects.
package randperm_test

import (
	"testing"

	"randperm"
)

func TestRoundsVersionsBijectiveFamily(t *testing.T) {
	const n = 500
	data := iotaInt64(n)
	base := randperm.Options{Backend: randperm.BackendBijective, Seed: 7}

	def, _, err := randperm.ParallelShuffle(data, base)
	if err != nil {
		t.Fatal(err)
	}
	// Unset and explicit-default Rounds select the same family.
	opt := base
	opt.Rounds = 12
	explicit, _, err := randperm.ParallelShuffle(data, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range def {
		if def[i] != explicit[i] {
			t.Fatalf("Rounds=12 differs from default at %d: the default family drifted", i)
		}
	}

	// A reduced-round family is still a permutation, is deterministic,
	// and is a different member of the keyed family.
	opt.Rounds = 4
	fast, _, err := randperm.ParallelShuffle(data, opt)
	if err != nil {
		t.Fatal(err)
	}
	again, _, err := randperm.ParallelShuffle(data, opt)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, n)
	same := true
	for i := range fast {
		if seen[fast[i]] {
			t.Fatalf("Rounds=4: duplicate value %d", fast[i])
		}
		seen[fast[i]] = true
		if fast[i] != again[i] {
			t.Fatalf("Rounds=4: not deterministic at %d", i)
		}
		if fast[i] != def[i] {
			same = false
		}
	}
	if same {
		t.Fatal("Rounds=4 reproduced the default permutation: family not versioned by Rounds")
	}
}

func TestRoundsStreamingMatchesMaterializing(t *testing.T) {
	const n = 300
	data := iotaInt64(n)
	opt := randperm.Options{Backend: randperm.BackendBijective, Seed: 21, Rounds: 6}
	out, _, err := randperm.ParallelShuffle(data, opt)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := randperm.NewPermuter(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int64, n)
	if _, err := pm.Chunk(idx, 0); err != nil {
		t.Fatal(err)
	}
	for i := range idx {
		if got := data[idx[i]]; got != out[i] {
			t.Fatalf("Rounds=6: Permuter.Chunk disagrees with ParallelShuffle at %d: %d != %d", i, got, out[i])
		}
		if at := pm.At(int64(i)); at != idx[i] {
			t.Fatalf("Rounds=6: At(%d) = %d, Chunk has %d", i, at, idx[i])
		}
	}
}
