module randperm

go 1.24
