package baseline

import (
	"fmt"

	"randperm/internal/pro"
	"randperm/internal/xrand"
)

// IterateExchange is the merge-split method: in round r every processor
// pairs with its butterfly partner (rank XOR 2^(r mod log2 p)); the pair
// pools its two blocks, permutes the pool uniformly, and splits it back
// into the original sizes. Every round is perfectly balanced and costs
// O(m) per processor, but the distribution over permutations is
// non-uniform for any fixed round count when p > 2 - it only *converges*
// to uniform, which is exactly the log-factor iteration trick the paper's
// introduction rules out. Experiment E5 shows one round failing the
// chi-square test that Algorithm 1 passes.
//
// p must be a power of two (the butterfly's requirement, another
// restriction Algorithm 1 does not share).
func IterateExchange(blocks [][]int64, seed uint64, rounds int) ([][]int64, *pro.Machine, error) {
	p := len(blocks)
	if p&(p-1) != 0 || p == 0 {
		return nil, nil, fmt.Errorf("baseline: IterateExchange needs a power-of-two p, got %d", p)
	}
	logP := 0
	for 1<<logP < p {
		logP++
	}
	m := pro.NewMachine(p)
	streams := xrand.NewStreams(seed, p)
	out := make([][]int64, p)

	err := m.Run(func(pr *pro.Proc) {
		rank := pr.Rank()
		cnt := xrand.NewCounting(streams[rank])
		local := append([]int64(nil), blocks[rank]...)

		for r := 0; r < rounds; r++ {
			if logP == 0 {
				break // a single processor has no partner
			}
			bit := 1 << (r % logP)
			partner := rank ^ bit
			if rank < partner {
				// Low rank merges, shuffles, returns the
				// partner's share.
				theirs := pr.Recv(partner).([]int64)
				pool := append(local, theirs...)
				xrand.Shuffle(cnt, pool)
				keep := len(local)
				local = pool[:keep]
				back := append([]int64(nil), pool[keep:]...)
				pr.Send(partner, back)
				pr.AddOps(int64(2 * len(pool)))
			} else {
				pr.Send(partner, local)
				local = pr.Recv(partner).([]int64)
				pr.AddOps(int64(len(local)))
			}
			pr.AddDraws(int64(cnt.Count()))
			cnt.Reset()
			pr.Barrier()
		}
		out[rank] = local
	})
	if err != nil {
		return nil, nil, err
	}
	return out, m, nil
}
