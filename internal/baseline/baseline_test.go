package baseline

import (
	"testing"

	"randperm/internal/core"
	"randperm/internal/stats"
)

func flatten64(blocks [][]int64) []int64 {
	var out []int64
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

func mkBlocks(t *testing.T, n int64, sizes []int64) [][]int64 {
	t.Helper()
	blocks, err := core.Split(core.Iota(n), sizes)
	if err != nil {
		t.Fatal(err)
	}
	return blocks
}

func TestSortShufflePermutation(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		n := int64(1000)
		sizes := core.EvenBlocks(n, p)
		in := mkBlocks(t, n, sizes)
		out, _, err := SortShuffle(in, uint64(p)+5)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if err := core.CheckPermutation(in, out, sizes); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestSortShuffleRaggedBlocks(t *testing.T) {
	sizes := []int64{5, 0, 17, 3}
	in := mkBlocks(t, 25, sizes)
	out, _, err := SortShuffle(in, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.CheckPermutation(in, out, sizes); err != nil {
		t.Fatal(err)
	}
}

func TestSortShuffleUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	const n = 4
	const trials = 24000
	sizes := []int64{2, 2}
	counts := make([]int64, stats.Factorial(n))
	for tr := 0; tr < trials; tr++ {
		in := mkBlocks(t, n, sizes)
		out, _, err := SortShuffle(in, uint64(tr)*0x9E3779B97F4A7C15+1)
		if err != nil {
			t.Fatal(err)
		}
		counts[stats.RankPermInt64(flatten64(out))]++
	}
	res, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.0005) {
		t.Errorf("sort-shuffle non-uniform: %s", res)
	}
}

func TestSortShuffleWorkSuperlinear(t *testing.T) {
	// The Goodrich baseline must exhibit the log n factor the paper
	// criticizes: per-item ops grow with n.
	perItemOps := func(n int64) float64 {
		sizes := core.EvenBlocks(n, 4)
		in := mkBlocks(t, n, sizes)
		_, m, err := SortShuffle(in, 3)
		if err != nil {
			t.Fatal(err)
		}
		return float64(m.Report().TotalOps()) / float64(n)
	}
	small := perItemOps(1 << 10)
	big := perItemOps(1 << 16)
	if big <= small {
		t.Errorf("per-item ops did not grow with n: %.1f -> %.1f", small, big)
	}
}

func TestIterateExchangePermutation(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		n := int64(p * 100)
		sizes := core.EvenBlocks(n, p)
		in := mkBlocks(t, n, sizes)
		out, _, err := IterateExchange(in, 7, 3)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if err := core.CheckPermutation(in, out, sizes); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestIterateExchangeRejectsNonPow2(t *testing.T) {
	in := mkBlocks(t, 30, []int64{10, 10, 10})
	if _, _, err := IterateExchange(in, 1, 1); err == nil {
		t.Fatal("p=3 accepted")
	}
}

func TestIterateExchangeP2OneRoundUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	// For p=2 a single merge-split IS a uniform permutation: the pool
	// is the whole vector. This positive control separates the method
	// failure (p>2) from implementation bugs.
	const n = 4
	const trials = 24000
	sizes := []int64{2, 2}
	counts := make([]int64, stats.Factorial(n))
	for tr := 0; tr < trials; tr++ {
		in := mkBlocks(t, n, sizes)
		out, _, err := IterateExchange(in, uint64(tr)*2654435761+9, 1)
		if err != nil {
			t.Fatal(err)
		}
		counts[stats.RankPermInt64(flatten64(out))]++
	}
	res, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.0005) {
		t.Errorf("p=2 merge-split should be uniform: %s", res)
	}
}

func TestIterateExchangeP4OneRoundNonUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	// The paper's point: with p=4 one round cannot realize all
	// permutations (items cannot cross the pairing), so the chi-square
	// must reject decisively.
	const n = 4
	const trials = 12000
	sizes := []int64{1, 1, 1, 1}
	counts := make([]int64, stats.Factorial(n))
	for tr := 0; tr < trials; tr++ {
		in := mkBlocks(t, n, sizes)
		out, _, err := IterateExchange(in, uint64(tr)*6364136223846793005+11, 1)
		if err != nil {
			t.Fatal(err)
		}
		counts[stats.RankPermInt64(flatten64(out))]++
	}
	res, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.001) {
		t.Errorf("one-round merge-split passed uniformity: %s", res)
	}
}

func TestIterateExchangeConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	// More rounds must shrink the total-variation distance to uniform:
	// the log-iteration trade-off the paper describes.
	const n = 4
	const trials = 12000
	sizes := []int64{1, 1, 1, 1}
	uniform := make([]float64, stats.Factorial(n))
	for i := range uniform {
		uniform[i] = 1 / float64(len(uniform))
	}
	tvd := func(rounds int) float64 {
		counts := make([]int64, stats.Factorial(n))
		for tr := 0; tr < trials; tr++ {
			in := mkBlocks(t, n, sizes)
			out, _, err := IterateExchange(in, uint64(tr)*0xDEECE66D+uint64(rounds), rounds)
			if err != nil {
				t.Fatal(err)
			}
			counts[stats.RankPermInt64(flatten64(out))]++
		}
		return stats.TotalVariation(counts, uniform)
	}
	d1, d4 := tvd(1), tvd(4)
	if d4 >= d1 {
		t.Errorf("TVD did not shrink with rounds: %.4f (1 round) vs %.4f (4 rounds)", d1, d4)
	}
}

func TestDartThrowingConservesItems(t *testing.T) {
	n := int64(4096)
	p := 8
	sizes := core.EvenBlocks(n, p)
	in := mkBlocks(t, n, sizes)
	res, _, err := DartThrowing(in, 5, 0.1, 50)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	seen := make(map[int64]bool)
	for _, b := range res.Blocks {
		for _, v := range b {
			if seen[v] {
				t.Fatalf("duplicate item %d", v)
			}
			seen[v] = true
			total++
		}
		if int64(len(b)) > res.Cap {
			t.Fatalf("block exceeds reported capacity: %d > %d", len(b), res.Cap)
		}
	}
	if total != n {
		t.Fatalf("item count %d, want %d", total, n)
	}
	if res.Rounds < 1 {
		t.Fatal("rounds must be at least 1")
	}
	if res.MaxLoad > res.Cap {
		t.Fatalf("accepted max load %d above capacity %d", res.MaxLoad, res.Cap)
	}
}

func TestDartThrowingTightSlackCostsRounds(t *testing.T) {
	n := int64(4096)
	p := 8
	sizes := core.EvenBlocks(n, p)
	loose, _, err := DartThrowing(mkBlocks(t, n, sizes), 7, 0.5, 500)
	if err != nil {
		t.Fatal(err)
	}
	tight, _, err := DartThrowing(mkBlocks(t, n, sizes), 7, 0.0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Rounds < loose.Rounds {
		t.Errorf("tight slack (%d rounds) was cheaper than loose (%d rounds)",
			tight.Rounds, loose.Rounds)
	}
}

func TestRandRouteConservesItems(t *testing.T) {
	n := int64(8192)
	p := 16
	sizes := core.EvenBlocks(n, p)
	res, _, err := RandRoute(mkBlocks(t, n, sizes), 3)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	seen := make(map[int64]bool)
	for _, b := range res.Blocks {
		for _, v := range b {
			if seen[v] {
				t.Fatalf("duplicate item %d", v)
			}
			seen[v] = true
			total++
		}
	}
	if total != n {
		t.Fatalf("item count %d, want %d", total, n)
	}
	if res.MaxLoad < res.MinLoad {
		t.Fatal("load extremes inverted")
	}
	// Multinomial loads essentially never hit the exact target on
	// every processor; the imbalance is the point of the baseline.
	if res.MaxLoad == n/int64(p) && res.MinLoad == n/int64(p) {
		t.Log("note: perfectly balanced random routing (astronomically unlikely)")
	}
}
