package baseline

import (
	"randperm/internal/pro"
	"randperm/internal/xrand"
)

// RouteResult reports a RandRoute run.
type RouteResult struct {
	// Blocks holds the routed items; sizes follow a multinomial law
	// rather than the prescribed targets.
	Blocks [][]int64
	// MaxLoad and MinLoad are the extreme destination loads, the
	// measured imbalance of experiment E6.
	MaxLoad int64
	MinLoad int64
}

// RandRoute sends every item to an independently uniform destination and
// shuffles locally: one bounded draw per item, one all-to-all - exactly
// work-optimal, and the arrangement is as uniform as the destination
// multiset allows. What it does NOT do is balance: destination loads are
// multinomial with standard deviation ~sqrt(m), so fixed target block
// sizes (the contract of Problem 1) are violated on essentially every
// run. Experiment E6 quantifies the violation against Algorithm 1's
// exact balance.
func RandRoute(blocks [][]int64, seed uint64) (RouteResult, *pro.Machine, error) {
	p := len(blocks)
	m := pro.NewMachine(p)
	streams := xrand.NewStreams(seed, p)
	res := RouteResult{Blocks: make([][]int64, p), MinLoad: int64(1) << 62}
	loads := make([]int64, p)

	err := m.Run(func(pr *pro.Proc) {
		rank := pr.Rank()
		cnt := xrand.NewCounting(streams[rank])
		local := blocks[rank]

		parts := make([][]int64, p)
		for _, v := range local {
			d := xrand.Intn(cnt, p)
			parts[d] = append(parts[d], v)
		}
		pr.AddOps(int64(len(local)))
		pr.AddDraws(int64(cnt.Count()))
		cnt.Reset()
		recv := pro.AllToAll(pr, parts)
		var got []int64
		for _, seg := range recv {
			got = append(got, seg...)
		}
		xrand.Shuffle(cnt, got)
		pr.AddOps(int64(2 * len(got)))
		pr.AddDraws(int64(cnt.Count()))
		res.Blocks[rank] = got
		loads[rank] = int64(len(got))
	})
	if err != nil {
		return RouteResult{}, nil, err
	}
	for _, l := range loads {
		if l > res.MaxLoad {
			res.MaxLoad = l
		}
		if l < res.MinLoad {
			res.MinLoad = l
		}
	}
	return res, m, nil
}
