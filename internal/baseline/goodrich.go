// Package baseline implements the competing coarse-grained permutation
// methods the paper positions itself against (Goodrich 1997; the survey
// of Guérin Lassous and Thierry 2000). Each one demonstrably fails at
// least one of the paper's three criteria:
//
//   - SortShuffle (Goodrich): uniform and balanced, but Theta(n log n)
//     work - not work-optimal.
//   - DartThrowing: work-optimal per round and balanced on success, but
//     relies on rejection/restart, so the work bound is only
//     probabilistic and uniformity of the accepted outcome is skewed.
//   - RandRoute: work-optimal and uniform over *ragged* outputs, but the
//     block sizes are multinomial - not balanced to fixed targets.
//   - IterateExchange: work-optimal per round and perfectly balanced,
//     but non-uniform for any fixed number of rounds (the log-iteration
//     trick the paper criticizes only converges to uniform).
//
// The experiment harness measures all four against the paper's
// Algorithm 1 (experiments E5 and E6).
package baseline

import (
	"randperm/internal/pro"
	"randperm/internal/psort"
	"randperm/internal/xrand"
)

// SortShuffle permutes the distributed blocks by attaching an independent
// random 64-bit key to every item and globally sorting (parallel sorting
// by regular sampling), then rebalancing to the original block sizes.
// This is the shape of Goodrich's BSP algorithm: uniform up to the
// ~n^2/2^64 chance of a key collision, balanced, but with Theta(m log n)
// work per processor.
func SortShuffle(blocks [][]int64, seed uint64) ([][]int64, *pro.Machine, error) {
	p := len(blocks)
	m := pro.NewMachine(p)
	streams := xrand.NewStreams(seed, p)
	sizes := make([]int64, p)
	for i, b := range blocks {
		sizes[i] = int64(len(b))
	}
	out := make([][]int64, p)

	err := m.Run(func(pr *pro.Proc) {
		rank := pr.Rank()
		cnt := xrand.NewCounting(streams[rank])

		// Attach random keys: the only randomness of the method.
		local := make([]psort.KV, len(blocks[rank]))
		for i, v := range blocks[rank] {
			local[i] = psort.KV{Key: cnt.Uint64(), Val: v}
		}
		pr.AddOps(int64(len(local)))
		pr.AddDraws(int64(cnt.Count()))
		pr.Barrier()

		sorted := psort.SortKV(pr, local)
		pr.Barrier()

		// Rebalance the globally sorted sequence to the target
		// block sizes: an order-preserving segment exchange.
		mySize := int64(len(sorted))
		allSizes := pro.AllGather(pr, mySize)
		var myStart int64
		for i := 0; i < rank; i++ {
			myStart += allSizes[i]
		}
		targetStart := make([]int64, p+1)
		for j := 0; j < p; j++ {
			targetStart[j+1] = targetStart[j] + sizes[j]
		}
		parts := make([][]psort.KV, p)
		for j := 0; j < p; j++ {
			lo := max64(myStart, targetStart[j]) - myStart
			hi := min64(myStart+mySize, targetStart[j+1]) - myStart
			if lo < hi {
				parts[j] = sorted[lo:hi]
			}
		}
		recv := pro.AllToAll(pr, parts)
		vals := make([]int64, 0, sizes[rank])
		for _, seg := range recv {
			for _, kv := range seg {
				vals = append(vals, kv.Val)
			}
		}
		pr.AddOps(int64(len(sorted) + len(vals)))
		out[rank] = vals
	})
	if err != nil {
		return nil, nil, err
	}
	return out, m, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
