package baseline

import (
	"math"

	"randperm/internal/pro"
	"randperm/internal/xrand"
)

// DartResult reports the outcome of a dart-throwing run.
type DartResult struct {
	// Blocks holds the routed items; block j has at most Cap items.
	Blocks [][]int64
	// Rounds is the number of global attempts including the successful
	// one (the restart count plus one); the work spent is Rounds * n.
	Rounds int
	// Cap is the per-destination capacity ceil((1+eps) * max target).
	Cap int64
	// MaxLoad is the largest destination load of the accepted round.
	MaxLoad int64
}

// DartThrowing is the rejection-based method: every item independently
// picks a uniformly random destination; if any destination would exceed
// the capacity (1+eps)m', the entire round is discarded and re-drawn
// ("start-over"). On success items are delivered and each destination
// shuffles locally.
//
// The paper's criticism (Section 1) is measurable here: for small eps the
// restart probability approaches 1 (work-optimality lost); for any eps
// the accepted loads are conditioned on the capacity event, so the
// communication matrix no longer follows the exact hypergeometric law
// (uniformity lost); and the output block sizes are whatever the darts
// produced, not the prescribed m' (balance achieved only approximately).
// maxRounds caps the retries; the final round is delivered even if it
// overflows, with MaxLoad exposing the violation.
func DartThrowing(blocks [][]int64, seed uint64, eps float64, maxRounds int) (DartResult, *pro.Machine, error) {
	p := len(blocks)
	m := pro.NewMachine(p)
	streams := xrand.NewStreams(seed, p)
	if maxRounds < 1 {
		maxRounds = 1
	}

	var maxTarget int64
	for _, b := range blocks {
		if int64(len(b)) > maxTarget {
			maxTarget = int64(len(b))
		}
	}
	capacity := int64(math.Ceil((1 + eps) * float64(maxTarget)))

	res := DartResult{Blocks: make([][]int64, p), Cap: capacity}
	err := m.Run(func(pr *pro.Proc) {
		rank := pr.Rank()
		cnt := xrand.NewCounting(streams[rank])
		local := blocks[rank]

		var dest []int
		counts := make([]int64, p)
		rounds := 0
		for {
			rounds++
			// Draw destinations and count them.
			dest = dest[:0]
			for j := range counts {
				counts[j] = 0
			}
			for range local {
				d := xrand.Intn(cnt, p)
				dest = append(dest, d)
				counts[d]++
			}
			pr.AddOps(int64(len(local)))
			pr.AddDraws(int64(cnt.Count()))
			cnt.Reset()

			// Global capacity check: gather everyone's count
			// vector and test the column sums.
			all := pro.AllGather(pr, append([]int64(nil), counts...))
			overflow := false
			var worst int64
			for j := 0; j < p; j++ {
				var load int64
				for i := 0; i < p; i++ {
					load += all[i][j]
				}
				if load > worst {
					worst = load
				}
				if load > capacity {
					overflow = true
				}
			}
			pr.AddOps(int64(p * p))
			if !overflow || rounds >= maxRounds {
				if rank == 0 {
					res.Rounds = rounds
					res.MaxLoad = worst
				}
				break
			}
			pr.Barrier() // next attempt is a new superstep
		}

		// Deliver the accepted darts.
		parts := make([][]int64, p)
		for j := range parts {
			parts[j] = make([]int64, 0, counts[j])
		}
		for i, v := range local {
			parts[dest[i]] = append(parts[dest[i]], v)
		}
		recv := pro.AllToAll(pr, parts)
		var got []int64
		for _, seg := range recv {
			got = append(got, seg...)
		}
		xrand.Shuffle(cnt, got)
		pr.AddOps(int64(len(local) + 2*len(got)))
		pr.AddDraws(int64(cnt.Count()))
		res.Blocks[rank] = got
	})
	if err != nil {
		return DartResult{}, nil, err
	}
	return res, m, nil
}
