package commat

import (
	"testing"

	"randperm/internal/xrand"
)

func TestRowSamplerMargins(t *testing.T) {
	src := xrand.NewXoshiro256(3)
	rowM := []int64{4, 0, 7, 2}
	colM := []int64{5, 5, 3}
	rs := NewRowSampler(src, rowM, colM)
	if rs.Rows() != 4 || rs.Remaining() != 4 {
		t.Fatal("row accounting wrong")
	}
	m := rs.Collect()
	if err := m.CheckMargins(rowM, colM); err != nil {
		t.Fatal(err)
	}
	if rs.Remaining() != 0 {
		t.Fatal("sampler not drained")
	}
	if rs.Next(make([]int64, 3)) {
		t.Fatal("Next after drain returned a row")
	}
}

func TestRowSamplerMatchesSeqLaw(t *testing.T) {
	// The streaming sampler must implement the same distribution as
	// SampleSeq: chi-square its matrices against the exact law.
	src := xrand.NewXoshiro256(5)
	rowM := []int64{3, 2}
	colM := []int64{2, 3}
	chiSquareMatrices(t, "rowsampler 2x2", rowM, colM, func() *Matrix {
		return NewRowSampler(src, rowM, colM).Collect()
	})
	rowM3 := []int64{2, 2, 2}
	colM3 := []int64{3, 2, 1}
	chiSquareMatrices(t, "rowsampler 3x3", rowM3, colM3, func() *Matrix {
		return NewRowSampler(src, rowM3, colM3).Collect()
	})
}

func TestRowSamplerPanicsOnMismatch(t *testing.T) {
	src := xrand.NewXoshiro256(7)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("margin mismatch accepted")
			}
		}()
		NewRowSampler(src, []int64{1}, []int64{2})
	}()
	rs := NewRowSampler(src, []int64{2}, []int64{1, 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("wrong output width accepted")
			}
		}()
		rs.Next(make([]int64, 3))
	}()
}

func TestRowSamplerStepwise(t *testing.T) {
	src := xrand.NewXoshiro256(9)
	rowM := []int64{5, 5, 5}
	colM := []int64{7, 8}
	rs := NewRowSampler(src, rowM, colM)
	row := make([]int64, 2)
	var colSum [2]int64
	rows := 0
	for rs.Next(row) {
		if row[0]+row[1] != rowM[rows] {
			t.Fatalf("row %d sums to %d", rows, row[0]+row[1])
		}
		colSum[0] += row[0]
		colSum[1] += row[1]
		rows++
	}
	if rows != 3 || colSum[0] != 7 || colSum[1] != 8 {
		t.Fatalf("stepwise drain wrong: %d rows, cols %v", rows, colSum)
	}
}
