// Package commat implements the communication matrices of the paper
// (Section 2): a matrix A = (a_ij) where a_ij is the number of items that
// source block B_i sends to target block B'_j. Valid matrices have
// prescribed row sums (the source block sizes m_i, equation 2) and column
// sums (the target block sizes m'_j, equation 3).
//
// The probability a uniformly random permutation induces a given matrix is
// the classical fixed-margin contingency table distribution (a matrix
// generalization of the multivariate hypergeometric distribution, see
// Section 3 of the paper and LogProb). SampleSeq and SampleRec are the
// paper's Algorithms 3 and 4; Enumerate lists all matrices with given
// margins so tests can chi-square the samplers against the exact law.
package commat

import (
	"fmt"
	"strings"
)

// Matrix is a dense rows x cols matrix of non-negative counts backed by a
// single allocation.
type Matrix struct {
	rows, cols int
	a          []int64
}

// New returns a zero matrix with the given shape. It panics on negative
// dimensions.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("commat: negative dimension")
	}
	return &Matrix{rows: rows, cols: cols, a: make([]int64, rows*cols)}
}

// Rows returns the number of rows (source blocks).
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns (target blocks).
func (m *Matrix) Cols() int { return m.cols }

// At returns a_ij.
func (m *Matrix) At(i, j int) int64 { return m.a[i*m.cols+j] }

// Set assigns a_ij = v.
func (m *Matrix) Set(i, j int, v int64) { m.a[i*m.cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []int64 { return m.a[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.a, m.a)
	return c
}

// Equal reports whether two matrices have the same shape and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, v := range m.a {
		if o.a[i] != v {
			return false
		}
	}
	return true
}

// RowSums returns the vector of row sums (equation 2's m_i).
func (m *Matrix) RowSums() []int64 {
	sums := make([]int64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s int64
		for _, v := range m.Row(i) {
			s += v
		}
		sums[i] = s
	}
	return sums
}

// ColSums returns the vector of column sums (equation 3's m'_j).
func (m *Matrix) ColSums() []int64 {
	sums := make([]int64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			sums[j] += v
		}
	}
	return sums
}

// Total returns the sum of all entries (the vector length n).
func (m *Matrix) Total() int64 {
	var s int64
	for _, v := range m.a {
		s += v
	}
	return s
}

// CheckMargins verifies that the matrix is a valid communication matrix
// for source sizes rowM and target sizes colM: non-negative entries,
// row sums equal to rowM and column sums equal to colM (equations 2, 3 of
// the paper). It returns a descriptive error on the first violation.
func (m *Matrix) CheckMargins(rowM, colM []int64) error {
	if len(rowM) != m.rows || len(colM) != m.cols {
		return fmt.Errorf("commat: margin shape (%d,%d) does not match matrix (%d,%d)",
			len(rowM), len(colM), m.rows, m.cols)
	}
	for _, v := range m.a {
		if v < 0 {
			return fmt.Errorf("commat: negative entry %d", v)
		}
	}
	for i, want := range rowM {
		var got int64
		for _, v := range m.Row(i) {
			got += v
		}
		if got != want {
			return fmt.Errorf("commat: row %d sums to %d, want %d", i, got, want)
		}
	}
	cols := m.ColSums()
	for j, want := range colM {
		if cols[j] != want {
			return fmt.Errorf("commat: column %d sums to %d, want %d", j, cols[j], want)
		}
	}
	return nil
}

// String renders the matrix for debugging and the matgen tool.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		for j, v := range m.Row(i) {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SumVec returns the sum of a margin vector, panicking on negatives.
func SumVec(v []int64) int64 {
	var s int64
	for _, x := range v {
		if x < 0 {
			panic("commat: negative margin")
		}
		s += x
	}
	return s
}

// checkProblem validates a Problem 2 input: non-negative margins with
// equal totals. It returns the common total n.
func checkProblem(rowM, colM []int64) int64 {
	rn := SumVec(rowM)
	cn := SumVec(colM)
	if rn != cn {
		panic(fmt.Sprintf("commat: margin totals differ (%d vs %d)", rn, cn))
	}
	return rn
}
