package commat

import (
	"randperm/internal/mhyper"
	"randperm/internal/xrand"
)

// SampleSeq draws a random communication matrix with the given margins
// from the exact permutation-induced distribution, using the paper's
// Algorithm 3: rows are peeled off from the bottom; at step i the column
// capacities still available are split between row i and everything above
// it by one multivariate hypergeometric draw (Proposition 6 with
// i1 = p-1).
//
// Cost: O(p * p') basic operations and O(p * p') hypergeometric samples,
// matching Proposition 7.
func SampleSeq(src xrand.Source, rowM, colM []int64) *Matrix {
	checkProblem(rowM, colM)
	p, pp := len(rowM), len(colM)
	m := New(p, pp)

	colRem := make([]int64, pp) // remaining capacity of each target block
	copy(colRem, colM)
	toUp := make([]int64, pp)

	// Mass of rows strictly above row i; peeled top-down below.
	var above int64
	for _, v := range rowM {
		above += v
	}
	for i := p - 1; i >= 0; i-- {
		above -= rowM[i]
		// Split the remaining column capacities: `above` items
		// belong to rows 0..i-1 ("up"), the rest is row i's share.
		mhyper.SampleInto(src, above, colRem, toUp)
		row := m.Row(i)
		for j := range colRem {
			row[j] = colRem[j] - toUp[j]
			colRem[j] = toUp[j]
		}
	}
	return m
}

// SampleRec draws the same distribution with the paper's Algorithm 4
// (RecMat): the rows are split in half, the column capacities are divided
// between the two halves by one multivariate hypergeometric draw, and the
// halves are solved recursively and independently (Proposition 6). The
// recursion is balanced (q = p/2), which is the arrangement Algorithms 5
// and 6 parallelize.
func SampleRec(src xrand.Source, rowM, colM []int64) *Matrix {
	checkProblem(rowM, colM)
	m := New(len(rowM), len(colM))
	colRem := make([]int64, len(colM))
	copy(colRem, colM)
	sampleRec(src, rowM, colRem, m, 0)
	return m
}

// sampleRec fills rows [rowOff, rowOff+len(rowM)) of out; colRem is the
// column capacity vector dedicated to this block of rows and is consumed.
func sampleRec(src xrand.Source, rowM []int64, colRem []int64, out *Matrix, rowOff int) {
	if len(rowM) == 0 {
		return
	}
	if len(rowM) == 1 {
		copy(out.Row(rowOff), colRem)
		return
	}
	q := len(rowM) / 2
	var upper int64 // mass of the upper half rowM[q:]
	for _, v := range rowM[q:] {
		upper += v
	}
	toUp := mhyper.Sample(src, upper, colRem)
	toLo := make([]int64, len(colRem))
	for j := range colRem {
		toLo[j] = colRem[j] - toUp[j]
	}
	sampleRec(src, rowM[:q], toLo, out, rowOff)
	sampleRec(src, rowM[q:], toUp, out, rowOff+q)
}
