package commat

// Coarsen merges consecutive groups of rows and columns of m into a
// smaller matrix by summation, implementing the block-join of
// Proposition 4 of the paper: rowCuts and colCuts are strictly increasing
// sequences of interior cut positions (0 < c < dim); group r spans
// [cuts[r-1], cuts[r]).
//
// Proposition 4 states the coarsened matrix of a correctly sampled
// communication matrix is itself distributed as the communication matrix
// of the merged-block problem; experiment E7 verifies this by chi-square.
func Coarsen(m *Matrix, rowCuts, colCuts []int) *Matrix {
	rowGroups := groupsFromCuts(m.Rows(), rowCuts)
	colGroups := groupsFromCuts(m.Cols(), colCuts)
	out := New(len(rowGroups), len(colGroups))
	for gi, ri := range rowGroups {
		for i := ri[0]; i < ri[1]; i++ {
			row := m.Row(i)
			for gj, cj := range colGroups {
				var s int64
				for j := cj[0]; j < cj[1]; j++ {
					s += row[j]
				}
				out.Set(gi, gj, out.At(gi, gj)+s)
			}
		}
	}
	return out
}

// CoarsenVec merges a margin vector with the same cut convention, so the
// coarsened matrix margins can be computed without re-summing.
func CoarsenVec(v []int64, cuts []int) []int64 {
	groups := groupsFromCuts(len(v), cuts)
	out := make([]int64, len(groups))
	for g, r := range groups {
		for i := r[0]; i < r[1]; i++ {
			out[g] += v[i]
		}
	}
	return out
}

// groupsFromCuts converts interior cuts into [start, end) ranges covering
// [0, n). It panics on out-of-range or non-increasing cuts.
func groupsFromCuts(n int, cuts []int) [][2]int {
	prev := 0
	groups := make([][2]int, 0, len(cuts)+1)
	for _, c := range cuts {
		if c <= prev || c >= n {
			panic("commat: cuts must be strictly increasing interior positions")
		}
		groups = append(groups, [2]int{prev, c})
		prev = c
	}
	groups = append(groups, [2]int{prev, n})
	return groups
}
