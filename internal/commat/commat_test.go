package commat

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"randperm/internal/xrand"
)

func TestMatrixBasics(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatal("shape wrong")
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("At/Set wrong")
	}
	if got := m.Row(1); got[2] != 7 {
		t.Fatal("Row aliasing wrong")
	}
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) == 5 {
		t.Fatal("Clone not deep")
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("Equal on clones should hold")
	}
	if m.Equal(New(2, 2)) {
		t.Fatal("Equal across shapes should fail")
	}
}

func TestMatrixSums(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	rows := m.RowSums()
	cols := m.ColSums()
	if rows[0] != 3 || rows[1] != 7 || cols[0] != 4 || cols[1] != 6 {
		t.Fatalf("sums wrong: %v %v", rows, cols)
	}
	if m.Total() != 10 {
		t.Fatalf("total = %d", m.Total())
	}
}

func TestCheckMargins(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 0)
	m.Set(1, 1, 3)
	if err := m.CheckMargins([]int64{3, 3}, []int64{2, 4}); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	if err := m.CheckMargins([]int64{2, 4}, []int64{2, 4}); err == nil {
		t.Fatal("wrong row margins accepted")
	}
	if err := m.CheckMargins([]int64{3, 3}, []int64{3, 3}); err == nil {
		t.Fatal("wrong col margins accepted")
	}
	if err := m.CheckMargins([]int64{3}, []int64{2, 4}); err == nil {
		t.Fatal("wrong shape accepted")
	}
	m.Set(0, 0, -1)
	if err := m.CheckMargins([]int64{0, 3}, []int64{-1, 4}); err == nil {
		t.Fatal("negative entry accepted")
	}
}

func TestString(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 1, 5)
	want := "0 5\n0 0\n"
	if got := m.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestSampleMarginsProperty(t *testing.T) {
	src := xrand.NewXoshiro256(3)
	f := func(rawR, rawC []uint8) bool {
		if len(rawR) == 0 || len(rawC) == 0 {
			return true
		}
		if len(rawR) > 6 {
			rawR = rawR[:6]
		}
		if len(rawC) > 6 {
			rawC = rawC[:6]
		}
		rowM := make([]int64, len(rawR))
		var total int64
		for i, r := range rawR {
			rowM[i] = int64(r % 50)
			total += rowM[i]
		}
		// Build column margins with the same total.
		colM := make([]int64, len(rawC))
		rem := total
		for i := range colM {
			if i == len(colM)-1 {
				colM[i] = rem
			} else {
				share := rem / int64(len(colM)-i)
				colM[i] = share
				rem -= share
			}
		}
		for _, alg := range []func(xrand.Source, []int64, []int64) *Matrix{SampleSeq, SampleRec} {
			m := alg(src, rowM, colM)
			if m.CheckMargins(rowM, colM) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerateCountsKnown(t *testing.T) {
	// 2x2 tables with margins (r1,r2),(c1,c2): the free entry a11
	// ranges over [max(0, r1-c2), min(r1, c1)].
	cases := []struct {
		rowM, colM []int64
		want       int64
	}{
		{[]int64{1, 1}, []int64{1, 1}, 2},
		{[]int64{2, 2}, []int64{2, 2}, 3},
		{[]int64{3, 1}, []int64{2, 2}, 2},
		{[]int64{5, 5}, []int64{5, 5}, 6},
		{[]int64{0, 4}, []int64{2, 2}, 1},
	}
	for _, c := range cases {
		if got := Count(c.rowM, c.colM); got != c.want {
			t.Fatalf("Count(%v,%v) = %d, want %d", c.rowM, c.colM, got, c.want)
		}
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	n := 0
	done := Enumerate([]int64{2, 2}, []int64{2, 2}, func(*Matrix) bool {
		n++
		return n < 2
	})
	if done || n != 2 {
		t.Fatalf("early stop failed: done=%v n=%d", done, n)
	}
}

func TestProbSumsToOne(t *testing.T) {
	cases := []struct{ rowM, colM []int64 }{
		{[]int64{3, 3}, []int64{3, 3}},
		{[]int64{2, 3, 1}, []int64{2, 2, 2}},
		{[]int64{4, 2}, []int64{1, 2, 3}},
		{[]int64{1, 1, 1, 1}, []int64{2, 2}},
	}
	for _, c := range cases {
		sum := 0.0
		Enumerate(c.rowM, c.colM, func(m *Matrix) bool {
			sum += Prob(m, c.rowM, c.colM)
			return true
		})
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Prob over margins %v/%v sums to %g", c.rowM, c.colM, sum)
		}
	}
}

func TestLogProbInvalid(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 1)
	if !math.IsInf(LogProb(m, []int64{2, 2}, []int64{2, 2}), -1) {
		t.Fatal("invalid matrix must have probability 0")
	}
}

// chiSquareMatrices tests a matrix sampler against the exact law.
func chiSquareMatrices(t *testing.T, name string, rowM, colM []int64,
	sample func() *Matrix) {
	t.Helper()
	probs := make(map[string]float64)
	Enumerate(rowM, colM, func(m *Matrix) bool {
		probs[m.String()] = Prob(m, rowM, colM)
		return true
	})
	const trials = 30000
	counts := make(map[string]int64)
	for i := 0; i < trials; i++ {
		m := sample()
		key := m.String()
		if _, ok := probs[key]; !ok {
			t.Fatalf("%s: sampled matrix outside the support:\n%s", name, key)
		}
		counts[key]++
	}
	stat := 0.0
	cells := 0
	for key, p := range probs {
		exp := p * trials
		if exp < 1 {
			continue
		}
		d := float64(counts[key]) - exp
		stat += d * d / exp
		cells++
	}
	df := float64(cells - 1)
	z := 3.09
	limit := df * math.Pow(1-2/(9*df)+z*math.Sqrt(2/(9*df)), 3)
	if stat > limit {
		t.Errorf("%s: chi2 = %.1f > %.1f (df %.0f)", name, stat, limit, df)
	}
}

func TestSampleSeqExactDistribution(t *testing.T) {
	src := xrand.NewXoshiro256(5)
	rowM := []int64{3, 3}
	colM := []int64{2, 4}
	chiSquareMatrices(t, "seq 2x2", rowM, colM, func() *Matrix {
		return SampleSeq(src, rowM, colM)
	})
	rowM3 := []int64{2, 2, 2}
	colM3 := []int64{3, 2, 1}
	chiSquareMatrices(t, "seq 3x3", rowM3, colM3, func() *Matrix {
		return SampleSeq(src, rowM3, colM3)
	})
}

func TestSampleRecExactDistribution(t *testing.T) {
	src := xrand.NewXoshiro256(7)
	rowM := []int64{2, 2, 2}
	colM := []int64{3, 2, 1}
	chiSquareMatrices(t, "rec 3x3", rowM, colM, func() *Matrix {
		return SampleRec(src, rowM, colM)
	})
	// Non-square with a zero margin.
	rowM2 := []int64{4, 0, 2}
	colM2 := []int64{3, 3}
	chiSquareMatrices(t, "rec 3x2 zero-row", rowM2, colM2, func() *Matrix {
		return SampleRec(src, rowM2, colM2)
	})
}

func TestSampleMismatchedTotalsPanic(t *testing.T) {
	src := xrand.NewXoshiro256(9)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched totals did not panic")
		}
	}()
	SampleSeq(src, []int64{2, 2}, []int64{1, 2})
}

func TestCoarsenMargins(t *testing.T) {
	src := xrand.NewXoshiro256(11)
	rowM := []int64{3, 4, 5, 6}
	colM := []int64{6, 6, 6}
	m := SampleSeq(src, rowM, colM)
	cm := Coarsen(m, []int{1, 3}, []int{2})
	wantRows := CoarsenVec(rowM, []int{1, 3})
	wantCols := CoarsenVec(colM, []int{2})
	if err := cm.CheckMargins(wantRows, wantCols); err != nil {
		t.Fatalf("coarsened margins: %v", err)
	}
	if cm.Total() != m.Total() {
		t.Fatal("coarsening changed the total")
	}
}

func TestCoarsenVec(t *testing.T) {
	v := []int64{1, 2, 3, 4}
	got := CoarsenVec(v, []int{2})
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("CoarsenVec = %v", got)
	}
	whole := CoarsenVec(v, nil)
	if len(whole) != 1 || whole[0] != 10 {
		t.Fatalf("CoarsenVec no cuts = %v", whole)
	}
}

func TestCoarsenBadCutsPanic(t *testing.T) {
	m := New(3, 3)
	for _, cuts := range [][]int{{0}, {3}, {2, 1}, {2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("cuts %v did not panic", cuts)
				}
			}()
			Coarsen(m, cuts, nil)
		}()
	}
}

func TestSeqAndRecSameLaw(t *testing.T) {
	// The two samplers implement the same distribution; compare their
	// empirical frequencies against each other on a small case.
	src := xrand.NewXoshiro256(13)
	rowM := []int64{3, 2}
	colM := []int64{2, 3}
	const trials = 40000
	seqCounts := make(map[string]int64)
	recCounts := make(map[string]int64)
	for i := 0; i < trials; i++ {
		seqCounts[SampleSeq(src, rowM, colM).String()]++
		recCounts[SampleRec(src, rowM, colM).String()]++
	}
	for key, sc := range seqCounts {
		rc := recCounts[key]
		diff := math.Abs(float64(sc-rc)) / trials
		if diff > 0.02 {
			t.Fatalf("samplers disagree at\n%sfreqs %.4f vs %.4f",
				key, float64(sc)/trials, float64(rc)/trials)
		}
	}
}

func TestSumVecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative margin did not panic")
		}
	}()
	SumVec([]int64{1, -2})
}

func TestEnumerateDeterministicOrder(t *testing.T) {
	var first, second []string
	Enumerate([]int64{2, 1}, []int64{1, 2}, func(m *Matrix) bool {
		first = append(first, m.String())
		return true
	})
	Enumerate([]int64{2, 1}, []int64{1, 2}, func(m *Matrix) bool {
		second = append(second, m.String())
		return true
	})
	if strings.Join(first, "|") != strings.Join(second, "|") {
		t.Fatal("enumeration order not deterministic")
	}
}

func BenchmarkSampleSeqP48(b *testing.B) {
	src := xrand.NewXoshiro256(1)
	margins := make([]int64, 48)
	for i := range margins {
		margins[i] = 10000000 // the paper's 480M/48 layout
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampleSeq(src, margins, margins)
	}
}

func BenchmarkSampleRecP48(b *testing.B) {
	src := xrand.NewXoshiro256(1)
	margins := make([]int64, 48)
	for i := range margins {
		margins[i] = 10000000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampleRec(src, margins, margins)
	}
}
