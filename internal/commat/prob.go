package commat

import (
	"math"

	"randperm/internal/numeric"
)

// LogProb returns the log of the exact probability that a uniformly
// random permutation of n items induces communication matrix m, given the
// block margins (Problem 2 of the paper). A permutation realizes m iff
// block B_i contributes exactly a_ij items to block B'_j; counting those
// permutations gives
//
//	P(A) = prod_i m_i! * prod_j m'_j! / ( n! * prod_ij a_ij! )
//
// which is the fixed-margin contingency table distribution, the matrix
// generalization of the multivariate hypergeometric distribution that
// Section 3 of the paper analyses. It returns -inf if the matrix does not
// satisfy the margins.
func LogProb(m *Matrix, rowM, colM []int64) float64 {
	if m.CheckMargins(rowM, colM) != nil {
		return math.Inf(-1)
	}
	n := SumVec(rowM)
	logp := -numeric.LnFac(n)
	for _, mi := range rowM {
		logp += numeric.LnFac(mi)
	}
	for _, mj := range colM {
		logp += numeric.LnFac(mj)
	}
	for i := 0; i < m.Rows(); i++ {
		for _, a := range m.Row(i) {
			logp -= numeric.LnFac(a)
		}
	}
	return logp
}

// Prob returns exp(LogProb).
func Prob(m *Matrix, rowM, colM []int64) float64 {
	return math.Exp(LogProb(m, rowM, colM))
}

// Enumerate calls yield for every matrix with the given margins, in a
// deterministic (lexicographic) order. The visited matrix is reused
// between calls; clone it if it must be retained. Enumeration cost grows
// combinatorially; it is intended for the exact uniformity tests on tiny
// margins. yield returns false to stop early; Enumerate reports whether
// the enumeration ran to completion.
func Enumerate(rowM, colM []int64, yield func(*Matrix) bool) bool {
	checkProblem(rowM, colM)
	m := New(len(rowM), len(colM))
	colRem := make([]int64, len(colM))
	copy(colRem, colM)
	return enumRows(m, rowM, colRem, 0, yield)
}

// enumRows fills row i and recurses. colRem holds the remaining column
// capacities for rows i..end.
func enumRows(m *Matrix, rowM, colRem []int64, i int, yield func(*Matrix) bool) bool {
	if i == len(rowM) {
		for _, c := range colRem {
			if c != 0 {
				return true // infeasible leaf; keep enumerating
			}
		}
		return yield(m)
	}
	row := m.Row(i)
	return enumRow(m, rowM, colRem, i, 0, rowM[i], row, yield)
}

// enumRow fills row i column by column with every feasible split of the
// remaining row budget.
func enumRow(m *Matrix, rowM, colRem []int64, i, j int, budget int64, row []int64, yield func(*Matrix) bool) bool {
	if j == len(row) {
		if budget != 0 {
			return true
		}
		return enumRows(m, rowM, colRem, i+1, yield)
	}
	maxV := budget
	if colRem[j] < maxV {
		maxV = colRem[j]
	}
	// Feasibility pruning: the remaining columns must be able to absorb
	// what is left of the budget.
	var restCap int64
	for _, c := range colRem[j+1:] {
		restCap += c
	}
	for v := int64(0); v <= maxV; v++ {
		if budget-v > restCap {
			continue
		}
		row[j] = v
		colRem[j] -= v
		ok := enumRow(m, rowM, colRem, i, j+1, budget-v, row, yield)
		colRem[j] += v
		row[j] = 0
		if !ok {
			return false
		}
	}
	return true
}

// Count returns the number of matrices with the given margins (the number
// of contingency tables). Combinatorial; small margins only.
func Count(rowM, colM []int64) int64 {
	var n int64
	Enumerate(rowM, colM, func(*Matrix) bool {
		n++
		return true
	})
	return n
}
