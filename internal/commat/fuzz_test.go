package commat

import (
	"testing"

	"randperm/internal/xrand"
)

// FuzzSampleMargins feeds arbitrary margin vectors to both samplers and
// the streaming sampler; whatever the shape, the result must satisfy the
// margins exactly.
func FuzzSampleMargins(f *testing.F) {
	f.Add([]byte{3, 3}, []byte{2, 4}, uint64(1))
	f.Add([]byte{0, 0, 10}, []byte{5, 5}, uint64(2))
	f.Add([]byte{1}, []byte{1}, uint64(3))
	f.Fuzz(func(t *testing.T, rawRows, rawCols []byte, seed uint64) {
		if len(rawRows) == 0 || len(rawCols) == 0 ||
			len(rawRows) > 12 || len(rawCols) > 12 {
			return
		}
		rowM := make([]int64, len(rawRows))
		var total int64
		for i, r := range rawRows {
			rowM[i] = int64(r % 64)
			total += rowM[i]
		}
		// Distribute the same total over the columns deterministically.
		colM := make([]int64, len(rawCols))
		rem := total
		for i := range colM {
			share := int64(rawCols[i]%64) + 1
			if i == len(colM)-1 || share > rem {
				colM[i] = rem
				rem = 0
				break
			}
			colM[i] = share
			rem -= share
		}
		src := xrand.NewXoshiro256(seed)
		for name, sample := range map[string]func() *Matrix{
			"seq":    func() *Matrix { return SampleSeq(src, rowM, colM) },
			"rec":    func() *Matrix { return SampleRec(src, rowM, colM) },
			"stream": func() *Matrix { return NewRowSampler(src, rowM, colM).Collect() },
		} {
			m := sample()
			if err := m.CheckMargins(rowM, colM); err != nil {
				t.Fatalf("%s: %v (rows=%v cols=%v)", name, err, rowM, colM)
			}
		}
	})
}
