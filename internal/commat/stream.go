package commat

import (
	"randperm/internal/mhyper"
	"randperm/internal/xrand"
)

// RowSampler draws a communication matrix row by row, top to bottom,
// without ever materializing more than the O(p') column-capacity state.
// The distribution over complete matrices is identical to SampleSeq
// (Proposition 6 applied with the split {row i} versus {rows > i}).
//
// The streaming form matters when the row count is large and rows are
// consumed immediately - the external-memory shuffle has one row per
// data chunk, so a matrix for n items in M-sized chunks would otherwise
// cost O(n/M * fanout) memory.
type RowSampler struct {
	src    xrand.Source
	colRem []int64 // remaining target capacities
	rowM   []int64 // not yet emitted source sizes
	next   int     // index of the next row to emit
	below  int64   // total mass of rows strictly after next
}

// NewRowSampler prepares streaming row sampling for the given margins.
// It panics if the margin totals differ (same contract as SampleSeq).
func NewRowSampler(src xrand.Source, rowM, colM []int64) *RowSampler {
	checkProblem(rowM, colM)
	rs := &RowSampler{
		src:    src,
		colRem: append([]int64(nil), colM...),
		rowM:   rowM,
	}
	for _, m := range rowM {
		rs.below += m
	}
	return rs
}

// Rows returns the total number of rows.
func (rs *RowSampler) Rows() int { return len(rs.rowM) }

// Remaining returns how many rows have not been emitted yet.
func (rs *RowSampler) Remaining() int { return len(rs.rowM) - rs.next }

// Next fills out with the next row of the matrix and reports whether a
// row was produced; it returns false after the last row. len(out) must
// equal the number of columns.
func (rs *RowSampler) Next(out []int64) bool {
	if rs.next >= len(rs.rowM) {
		return false
	}
	if len(out) != len(rs.colRem) {
		panic("commat: RowSampler output length mismatch")
	}
	rs.below -= rs.rowM[rs.next]
	// Split the remaining capacities between this row (mass m_i) and
	// everything below it: the row's share is multivariate
	// hypergeometric with t = m_i over the remaining capacities.
	mhyper.SampleInto(rs.src, rs.rowM[rs.next], rs.colRem, out)
	for j, v := range out {
		rs.colRem[j] -= v
	}
	rs.next++
	return true
}

// Collect drains the sampler into a full matrix; a convenience for tests
// and callers that want SampleSeq semantics through the streaming path.
func (rs *RowSampler) Collect() *Matrix {
	m := New(rs.Remaining(), len(rs.colRem))
	for i := 0; i < m.Rows(); i++ {
		if !rs.Next(m.Row(i)) {
			break
		}
	}
	return m
}
