// Package chaos is the cluster's fault-injection harness: an
// http.Handler middleware that can kill, stall, corrupt or partition
// any peer at any point in the permutation's round structure, so the
// failure drills in internal/cluster and internal/service can hold the
// cluster to its contract — every shuffle either completes
// byte-identical to the single-process run via replicas, or fails
// atomically with no partial bytes served.
//
// The proxy wraps a node's real handler in process (the drills mount
// it between the httptest listener and the node), which keeps drills
// deterministic: a fault fires on the request that matches its rule,
// not on a timer racing the scheduler. The round structure is
// addressable because it is visible in the URL space — the round-2
// h-relation is exactly the /v1/cluster/exchange endpoint, and
// round-boundary serving is /v1/cluster/chunk — and the victim's
// perspective ("who is calling me") is visible in the X-Permd-From
// header every peer call carries, which is what makes pairwise
// partitions expressible at all.
//
// Faults:
//
//	Kill     abort the connection mid-response (http.ErrAbortHandler):
//	         the client sees a transport error, exactly like a peer
//	         process dying under it. The whole-node form (Proxy.Kill)
//	         simulates process death; a Rule-scoped kill simulates
//	         dying at one round boundary.
//	Stall    hold the request for a duration before serving it,
//	         honouring the client's context — the straggler that
//	         hedged reads exist for. A cancelled (hedge-loser) stall
//	         returns without serving and is counted in Aborted.
//	Corrupt  flip one byte of the response body at a fixed offset —
//	         past the wire header, inside the first count field — so
//	         receiver-side verification (the matrix check) must catch
//	         it.
//	Error    answer 500 without touching the inner handler.
package chaos

import (
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Fault is what a matching rule does to the request.
type Fault int

const (
	// None passes the request through (a Rule with Fault None only
	// counts matches).
	None Fault = iota
	// Kill aborts the connection with no response bytes.
	Kill
	// Stall delays the request by Rule.Stall, then serves it normally.
	Stall
	// Corrupt serves the response with one byte flipped at Rule.FlipAt.
	Corrupt
	// Error answers 500 immediately.
	Error
)

// AnyPeer matches requests from every caller (Rule.From).
const AnyPeer = -1

// A Rule scopes one fault to a slice of the traffic. The zero value of
// each field widens the match: empty Path matches every path, From
// AnyPeer matches every caller, After 0 fires from the first matching
// request.
type Rule struct {
	// Path is a substring match on the request path: "exchange" scopes
	// the fault to the round-2 h-relation, "chunk" to round-boundary
	// serving, "join" to the membership handshake. Empty matches all.
	Path string
	// From, when not AnyPeer, matches only requests whose
	// X-Permd-From header names this peer index — the pairwise
	// partition primitive: a Kill rule with From set severs one edge
	// of the cluster graph while every other edge keeps working.
	From int
	// After skips the first After matching requests before the fault
	// fires — "die at the second exchange", the round-boundary dial.
	After int
	// Fault is what happens to matching requests past After.
	Fault Fault
	// Stall is the hold duration for Fault Stall.
	Stall time.Duration
	// FlipAt is the byte offset Fault Corrupt flips (0 means offset
	// 36: past the 32-byte exchange header, inside the first count).
	FlipAt int64

	seen int // matching requests observed so far
}

// Proxy is the fault-injecting middleware. Wrap a node's handler, then
// script faults with Set/Kill/Revive while the cluster runs. All
// methods are safe for concurrent use.
type Proxy struct {
	inner http.Handler

	mu      sync.Mutex
	rules   []*Rule
	killed  bool
	reqs    map[string]int // per-endpoint request counts (last path segment)
	aborted int
}

// Wrap returns a Proxy in front of h with no faults armed.
func Wrap(h http.Handler) *Proxy {
	return &Proxy{inner: h, reqs: make(map[string]int)}
}

// Set replaces the armed rules. Rules are evaluated in order; the
// first whose Path/From match (and whose After is exhausted) fires.
func (p *Proxy) Set(rules ...Rule) {
	p.mu.Lock()
	p.rules = make([]*Rule, len(rules))
	for i := range rules {
		r := rules[i]
		if r.Fault == Corrupt && r.FlipAt == 0 {
			r.FlipAt = 36
		}
		p.rules[i] = &r
	}
	p.mu.Unlock()
}

// Kill makes the node dark: every request is aborted until Revive.
// This is the process-death simulation — no endpoint distinguishes it
// from kill -9.
func (p *Proxy) Kill() {
	p.mu.Lock()
	p.killed = true
	p.mu.Unlock()
}

// Revive clears Kill and all rules: the node serves normally again, as
// after a process restart.
func (p *Proxy) Revive() {
	p.mu.Lock()
	p.killed = false
	p.rules = nil
	p.mu.Unlock()
}

// Requests returns how many requests (faulted or not) have arrived for
// the endpoint with the given last path segment ("exchange", "chunk",
// "join", "status"); "" totals all endpoints.
func (p *Proxy) Requests(endpoint string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if endpoint == "" {
		total := 0
		for _, v := range p.reqs {
			total += v
		}
		return total
	}
	return p.reqs[endpoint]
}

// Aborted returns how many stalled requests were released by client
// cancellation instead of serving — each one is a hedge (or timeout)
// that worked.
func (p *Proxy) Aborted() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.aborted
}

// match returns the fault to apply to r, consuming rule state.
func (p *Proxy) match(r *http.Request) (Fault, time.Duration, int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	path := r.URL.Path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		p.reqs[path[i+1:]]++
	}
	if p.killed {
		return Kill, 0, 0
	}
	from := AnyPeer
	if fv := r.Header.Get("X-Permd-From"); fv != "" {
		if k, err := strconv.Atoi(fv); err == nil {
			from = k
		}
	}
	for _, rule := range p.rules {
		if rule.Path != "" && !strings.Contains(path, rule.Path) {
			continue
		}
		if rule.From != AnyPeer && rule.From != from {
			continue
		}
		rule.seen++
		if rule.seen <= rule.After {
			continue
		}
		return rule.Fault, rule.Stall, rule.FlipAt
	}
	return None, 0, 0
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fault, stall, flipAt := p.match(r)
	switch fault {
	case Kill:
		panic(http.ErrAbortHandler)
	case Error:
		http.Error(w, "chaos: injected failure", http.StatusInternalServerError)
		return
	case Stall:
		select {
		case <-time.After(stall):
		case <-r.Context().Done():
			p.mu.Lock()
			p.aborted++
			p.mu.Unlock()
			return
		}
	case Corrupt:
		w = &corruptWriter{ResponseWriter: w, flipAt: flipAt}
	}
	p.inner.ServeHTTP(w, r)
}

// corruptWriter flips one byte of the response body at offset flipAt.
type corruptWriter struct {
	http.ResponseWriter
	off    int64
	flipAt int64
}

func (c *corruptWriter) Write(b []byte) (int, error) {
	if c.off <= c.flipAt && c.flipAt < c.off+int64(len(b)) {
		// Copy before flipping: the caller's buffer is not ours to
		// scribble on (bufio reuses it).
		mod := append([]byte(nil), b...)
		mod[c.flipAt-c.off] ^= 0xFF
		b = mod
	}
	c.off += int64(len(b))
	return c.ResponseWriter.Write(b)
}
