package chaos

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// echoHandler answers every request with a fixed body so byte-level
// faults are easy to assert.
func echoHandler(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	})
}

func get(t *testing.T, url string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp, body, err
}

// TestPassthrough: an unfaulted proxy is invisible, and counts traffic
// per endpoint.
func TestPassthrough(t *testing.T) {
	p := Wrap(echoHandler("ok"))
	srv := httptest.NewServer(p)
	defer srv.Close()
	resp, body, err := get(t, srv.URL+"/v1/cluster/chunk")
	if err != nil || resp.StatusCode != http.StatusOK || string(body) != "ok" {
		t.Fatalf("passthrough broken: %v %v %q", err, resp, body)
	}
	get(t, srv.URL+"/v1/cluster/exchange")
	if p.Requests("chunk") != 1 || p.Requests("exchange") != 1 || p.Requests("") != 2 {
		t.Errorf("request counts wrong: chunk=%d exchange=%d total=%d",
			p.Requests("chunk"), p.Requests("exchange"), p.Requests(""))
	}
}

// TestKillAndRevive: a killed node aborts every connection — the client
// sees a transport error, never a status — and Revive restores it.
func TestKillAndRevive(t *testing.T) {
	p := Wrap(echoHandler("ok"))
	srv := httptest.NewServer(p)
	defer srv.Close()
	p.Kill()
	if _, _, err := get(t, srv.URL+"/x"); err == nil {
		t.Fatal("killed node answered")
	}
	p.Revive()
	if resp, _, err := get(t, srv.URL+"/x"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("revived node did not serve: %v", err)
	}
}

// TestRuleScoping: Path is a substring match, From matches the
// X-Permd-From header, and non-matching traffic is untouched.
func TestRuleScoping(t *testing.T) {
	p := Wrap(echoHandler("ok"))
	srv := httptest.NewServer(p)
	defer srv.Close()
	p.Set(Rule{Path: "exchange", From: AnyPeer, Fault: Kill})
	if resp, _, err := get(t, srv.URL+"/v1/cluster/chunk"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk caught by exchange-scoped rule: %v", err)
	}
	if _, _, err := get(t, srv.URL+"/v1/cluster/exchange"); err == nil {
		t.Fatal("exchange-scoped kill did not fire")
	}

	// From-scoped: sever the edge from peer 2 only.
	p.Set(Rule{From: 2, Fault: Kill})
	req, _ := http.NewRequest("GET", srv.URL+"/x", nil)
	req.Header.Set("X-Permd-From", "1")
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("peer 1 caught by peer-2 partition: %v", err)
	} else {
		resp.Body.Close()
	}
	req, _ = http.NewRequest("GET", srv.URL+"/x", nil)
	req.Header.Set("X-Permd-From", "2")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("peer-2 partition did not sever the edge")
	}
}

// TestRuleAfter: After skips the first N matching requests — the
// round-boundary dial ("die at the second exchange").
func TestRuleAfter(t *testing.T) {
	p := Wrap(echoHandler("ok"))
	srv := httptest.NewServer(p)
	defer srv.Close()
	p.Set(Rule{Path: "exchange", From: AnyPeer, After: 2, Fault: Kill})
	for i := 0; i < 2; i++ {
		if resp, _, err := get(t, srv.URL+"/v1/cluster/exchange"); err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d (before After) faulted: %v", i, err)
		}
	}
	if _, _, err := get(t, srv.URL+"/v1/cluster/exchange"); err == nil {
		t.Fatal("request past After survived")
	}
}

// TestErrorFault answers 500 without reaching the inner handler.
func TestErrorFault(t *testing.T) {
	reached := false
	p := Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { reached = true }))
	srv := httptest.NewServer(p)
	defer srv.Close()
	p.Set(Rule{From: AnyPeer, Fault: Error})
	resp, _, err := get(t, srv.URL+"/x")
	if err != nil || resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("Error fault: %v %v", err, resp)
	}
	if reached {
		t.Error("Error fault reached the inner handler")
	}
}

// TestCorruptFlipsOneByte: exactly the byte at FlipAt is flipped, the
// rest of the body is intact, and the caller's view of body length is
// unchanged.
func TestCorruptFlipsOneByte(t *testing.T) {
	const body = "abcdefgh"
	p := Wrap(echoHandler(body))
	srv := httptest.NewServer(p)
	defer srv.Close()
	p.Set(Rule{From: AnyPeer, Fault: Corrupt, FlipAt: 3})
	_, got, err := get(t, srv.URL+"/x")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(body) {
		t.Fatalf("corrupt changed length: %d != %d", len(got), len(body))
	}
	for i := range body {
		want := body[i]
		if i == 3 {
			want ^= 0xFF
		}
		if got[i] != want {
			t.Errorf("byte %d: got %#x, want %#x", i, got[i], want)
		}
	}
}

// TestStallHonorsContext: a stalled request released by client
// cancellation returns without serving and is counted in Aborted — the
// hedge-loser accounting the drills assert on.
func TestStallHonorsContext(t *testing.T) {
	p := Wrap(echoHandler("ok"))
	srv := httptest.NewServer(p)
	defer srv.Close()
	p.Set(Rule{From: AnyPeer, Fault: Stall, Stall: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/x", nil)
	began := time.Now()
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("stalled request served despite cancellation")
	}
	if elapsed := time.Since(began); elapsed > 10*time.Second {
		t.Fatalf("stall ignored the context: took %v", elapsed)
	}
	// The handler goroutine observes the cancellation asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for p.Aborted() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if p.Aborted() != 1 {
		t.Errorf("Aborted = %d, want 1", p.Aborted())
	}
}
