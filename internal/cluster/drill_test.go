package cluster

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"randperm/internal/cluster/chaos"
	"randperm/internal/harness/testkit"
	"randperm/internal/stats"
)

// bootChaosCluster starts a loopback cluster like bootCluster, but with
// every node's handler behind a chaos.Proxy, so drills can kill, stall,
// corrupt or partition any peer at any round boundary. mod, when
// non-nil, adjusts each node's Config before construction.
func bootChaosCluster(t *testing.T, nodes, procs, replicas int, mod func(*Config)) ([]*Node, []*chaos.Proxy) {
	t.Helper()
	nds := make([]*Node, nodes)
	_, proxies := testkit.LoopbackChaos(t, nodes, func(k int, peers []string) http.Handler {
		cfg := Config{Self: k, Peers: peers, Procs: procs, Replicas: replicas}
		if mod != nil {
			mod(&cfg)
		}
		nd, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nds[k] = nd
		mux := http.NewServeMux()
		mux.Handle("/v1/cluster/", nd.Handler())
		return mux
	})
	return nds, proxies
}

// readAll pulls the whole (seed, n) permutation through one node's
// Permuter in a single Chunk call.
func readAll(nd *Node, n int64, seed uint64) ([]int64, error) {
	buf := make([]int64, n)
	_, err := nd.Permuter(n, seed).Chunk(buf, 0)
	return buf, err
}

// TestReplicaByteIdentity is the replica determinism contract: for
// every replication factor, every node serves exactly the bytes the
// single-process engine computes — which replica derives a slot is
// invisible in the output.
func TestReplicaByteIdentity(t *testing.T) {
	const n, procs, seed = 501, 6, 11
	want := singleNodeCGM(t, n, procs, seed)
	for _, replicas := range []int{1, 2, 3} {
		nds, _ := bootChaosCluster(t, 3, procs, replicas, nil)
		for k, nd := range nds {
			got, err := readAll(nd, n, seed)
			if err != nil {
				t.Fatalf("R=%d node %d: %v", replicas, k, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("R=%d node %d: byte divergence at %d: %d != %d",
						replicas, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestDrillKillOneNodeR2 is the headline failure drill: with R=2, kill
// any node at any round boundary — before the shuffle starts, during
// the round-2 h-relation, or at round-boundary serving — and every
// surviving node still serves the shuffle byte-identical to the
// single-process run, transparently through the dead node's replicas.
func TestDrillKillOneNodeR2(t *testing.T) {
	const nodes, procs, replicas = 3, 6, 2
	const n, seed = 999, 7
	want := singleNodeCGM(t, n, procs, seed)
	phases := []struct {
		name string
		arm  func(p *chaos.Proxy)
	}{
		// Process death before the first request: every call to the
		// victim — exchange, chunk, join — aborts.
		{"start", func(p *chaos.Proxy) { p.Kill() }},
		// Death scoped to round 2: the victim dies under the h-relation
		// but still answers routed chunk reads.
		{"exchange", func(p *chaos.Proxy) {
			p.Set(chaos.Rule{Path: "exchange", From: chaos.AnyPeer, Fault: chaos.Kill})
		}},
		// Death scoped to serving: shard builds complete, routed reads
		// to the victim abort.
		{"chunk", func(p *chaos.Proxy) {
			p.Set(chaos.Rule{Path: "chunk", From: chaos.AnyPeer, Fault: chaos.Kill})
		}},
	}
	for _, phase := range phases {
		for victim := 0; victim < nodes; victim++ {
			nds, proxies := bootChaosCluster(t, nodes, procs, replicas, nil)
			phase.arm(proxies[victim])
			for reader := 0; reader < nodes; reader++ {
				if reader == victim {
					continue
				}
				got, err := readAll(nds[reader], n, seed)
				if err != nil {
					t.Fatalf("phase %s, kill node %d, read node %d: %v",
						phase.name, victim, reader, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("phase %s, kill node %d, read node %d: byte divergence at %d",
							phase.name, victim, reader, i)
					}
				}
			}
		}
	}
}

// TestDrillKillR1Atomic is the R=1 half of the failure-semantics
// contract: the same kill that R=2 absorbs transparently must surface
// as an error — typed, naming the dead peer and the round — never as
// partial or silently recomputed bytes.
func TestDrillKillR1Atomic(t *testing.T) {
	const n, procs = 500, 4
	nds, proxies := bootChaosCluster(t, 2, procs, 1, nil)
	proxies[1].Kill()

	// A read that needs the dead node's exchange contribution: building
	// this node's own shard requires source slot 1's payloads, which
	// with R=1 only the dead node can derive.
	_, err := readAll(nds[0], n, 3)
	if err == nil {
		t.Fatal("R=1 shuffle completed with a dead peer")
	}
	var pe *PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("no *PeerError in the chain: %v", err)
	}
	if pe.Node != 1 || pe.Addr != nds[0].cfg.Peers[1] {
		t.Errorf("PeerError names node %d (%s), want node 1 (%s)", pe.Node, pe.Addr, nds[0].cfg.Peers[1])
	}
	if pe.Round != RoundExchange || pe.Op != "exchange" {
		t.Errorf("PeerError round/op = %d/%s, want %d/exchange", pe.Round, pe.Op, RoundExchange)
	}

	// A read aimed at the dead node's own shard: the failure is in
	// serving, not the exchange.
	lo, hi := nds[0].ShardRange(n, 1)
	span := make([]int64, hi-lo)
	if _, err = nds[0].Permuter(n, 3).Chunk(span, lo); err == nil {
		t.Fatal("dead node's shard served with R=1")
	}
	if !errors.As(err, &pe) {
		t.Fatalf("no *PeerError in the chunk chain: %v", err)
	}
	if pe.Node != 1 || pe.Round != RoundServe || pe.Op != "chunk" {
		t.Errorf("chunk PeerError = node %d round %d op %s, want node 1 round %d op chunk",
			pe.Node, pe.Round, pe.Op, RoundServe)
	}
}

// TestDrillCorruptExchange: a corrupted round-2 response must never be
// placed. With R=2 the matrix verification rejects it and the build
// fails over to the clean replica — byte-identical output, one failover
// counted; with R=1 the build errors.
func TestDrillCorruptExchange(t *testing.T) {
	const n, procs, seed = 300, 6, 5
	want := singleNodeCGM(t, n, procs, seed)
	nds, proxies := bootChaosCluster(t, 3, procs, 2, nil)
	proxies[1].Set(chaos.Rule{Path: "exchange", From: chaos.AnyPeer, Fault: chaos.Corrupt})
	got, err := readAll(nds[0], n, seed)
	if err != nil {
		t.Fatalf("R=2 read with a corrupting peer: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("corrupted exchange leaked into the output at %d", i)
		}
	}

	nds1, proxies1 := bootChaosCluster(t, 2, 4, 1, nil)
	proxies1[1].Set(chaos.Rule{Path: "exchange", From: chaos.AnyPeer, Fault: chaos.Corrupt})
	if _, err := readAll(nds1[0], n, seed); err == nil {
		t.Fatal("R=1 build accepted a corrupted exchange")
	}
}

// TestDrillHedgeBeatsStall: a stalled (not dead) replica is the case
// hedged reads exist for — the read must complete fast via the second
// replica, the hedge must be counted, and the straggler must be
// cancelled, not abandoned.
func TestDrillHedgeBeatsStall(t *testing.T) {
	const n, procs, seed = 600, 6, 9
	nds, proxies := bootChaosCluster(t, 3, procs, 2, func(c *Config) {
		c.HedgeAfter = 5 * time.Millisecond
	})
	// Node 0 does not replicate slot 1; its replicas are nodes 1
	// (primary) and 2. Stall the primary's serving path far past any
	// sane latency.
	proxies[1].Set(chaos.Rule{Path: "chunk", From: chaos.AnyPeer, Fault: chaos.Stall, Stall: time.Minute})
	lo, hi := nds[0].ShardRange(n, 1)
	span := make([]int64, hi-lo)
	began := time.Now()
	if _, err := nds[0].Permuter(n, seed).Chunk(span, lo); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(began); elapsed > 20*time.Second {
		t.Fatalf("hedge did not beat the stall: read took %v", elapsed)
	}
	want := singleNodeCGM(t, n, procs, seed)
	for i := range span {
		if span[i] != want[lo+int64(i)] {
			t.Fatalf("hedged read diverged at %d", i)
		}
	}
	if nds[0].hedgedReqs.Load() == 0 || nds[0].hedgeWins.Load() == 0 {
		t.Errorf("hedge counters: hedged=%d wins=%d, want both > 0",
			nds[0].hedgedReqs.Load(), nds[0].hedgeWins.Load())
	}
	// The losing racer's request is cancelled through its context; the
	// proxy observes the cancellation asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for proxies[1].Aborted() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if proxies[1].Aborted() == 0 {
		t.Error("stalled hedge loser was never cancelled")
	}
}

// TestDrillHealthRoutingAndRejoin: a first-hand failure deprioritizes
// the peer so later reads route around it without burning a failover,
// and the join handshake — not a timeout — restores a revived peer to
// the routing order.
func TestDrillHealthRoutingAndRejoin(t *testing.T) {
	const n, seed = 600, 13
	nds, proxies := bootChaosCluster(t, 3, 6, 2, func(c *Config) {
		c.HedgeAfter = -1 // failover only: keeps the counters deterministic
	})
	proxies[1].Kill()
	lo, hi := nds[0].ShardRange(n, 1)
	span := make([]int64, hi-lo)
	if _, err := nds[0].Permuter(n, seed).Chunk(span, lo); err != nil {
		t.Fatalf("read with one dead replica: %v", err)
	}
	if got := nds[0].failovers.Load(); got == 0 {
		t.Fatal("first read did not fail over")
	}
	if st := nds[0].health.snapshot()[1]; st == stateHealthy {
		t.Fatalf("failed peer still ranked healthy")
	}
	// Second read: the sick peer is ranked last, so the healthy replica
	// answers first and the failover counter must not move.
	before := nds[0].failovers.Load()
	if _, err := nds[0].Permuter(n, seed).Chunk(span, lo); err != nil {
		t.Fatal(err)
	}
	if got := nds[0].failovers.Load(); got != before {
		t.Errorf("routing did not skip the sick peer: failovers %d -> %d", before, got)
	}

	// Rejoin: revive the peer and run its join handshake against node
	// 0. The matching geometry clears the sick mark immediately.
	proxies[1].Revive()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := nds[1].Join(ctx, 0); err != nil {
		t.Fatalf("rejoin handshake: %v", err)
	}
	if st := nds[0].health.snapshot()[1]; st != stateHealthy {
		t.Errorf("rejoined peer still marked %s", st)
	}
}

// TestDrillGossipPropagation: sickness observed first-hand by one node
// reaches another on the headers of a call the nodes were making
// anyway, and arrives as suspicion (deprioritized), never as a
// second-hand down verdict.
func TestDrillGossipPropagation(t *testing.T) {
	nds, _ := bootChaosCluster(t, 3, 6, 2, nil)
	// Node 0 observes node 2 down, first-hand.
	nds[0].health.failure(2)
	nds[0].health.failure(2)
	if st := nds[0].health.snapshot()[2]; st != stateDown {
		t.Fatalf("two first-hand failures left node 2 %s", st)
	}
	// Any call from 0 to 1 carries the view; the join handshake is the
	// cheapest such call.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := nds[0].Join(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if st := nds[1].health.snapshot()[2]; st != stateSuspect {
		t.Errorf("gossiped sickness arrived as %s, want suspect", st)
	}
}

// TestJoinGeometry: JoinAll succeeds across an agreeing cluster; a node
// with a different geometry is refused with ErrGeometryMismatch — the
// fatal, stateless membership check.
func TestJoinGeometry(t *testing.T) {
	nds, _ := bootChaosCluster(t, 3, 6, 2, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, nd := range nds {
		if err := nd.JoinAll(ctx); err != nil {
			t.Fatalf("node %d JoinAll: %v", nd.Self(), err)
		}
	}
	// Same peers, different width: must be turned away at the door.
	bad, err := New(Config{Self: 0, Peers: nds[0].cfg.Peers, Procs: 12, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	err = bad.Join(ctx, 1)
	if !errors.Is(err, ErrGeometryMismatch) {
		t.Fatalf("mismatched geometry joined: %v", err)
	}
	var pe *PeerError
	if !errors.As(err, &pe) || pe.Op != "join" {
		t.Errorf("join refusal not a *PeerError naming the op: %v", err)
	}
	if !strings.Contains(err.Error(), "p=12") {
		t.Errorf("mismatch error does not name the disagreeing width: %v", err)
	}
}

// TestDrillUniformReplicated is the distributional drill: replication
// must not disturb Algorithm 1's exactness. A replicated 2-node
// cluster's shuffle over S_4, chi-squared against the uniform law.
func TestDrillUniformReplicated(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	const n = 4
	const trials = 12000
	nds, _ := bootChaosCluster(t, 2, 2, 2, nil)
	counts := make([]int64, stats.Factorial(n))
	buf := make([]int64, n)
	for tr := 0; tr < trials; tr++ {
		// Alternate reading node so both replicas' derivations land in
		// the same tally — they must agree byte-for-byte anyway.
		pm := nds[tr%2].Permuter(n, uint64(tr)*0x9E3779B97F4A7C15+23)
		if _, err := pm.Chunk(buf, 0); err != nil {
			t.Fatal(err)
		}
		counts[stats.RankPermInt64(buf)]++
	}
	res, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.0005) {
		t.Errorf("replicated cluster shuffle non-uniform: %s", res)
	}
}
