package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"randperm/internal/engine"
	"randperm/internal/harness/testkit"
	"randperm/internal/stats"
)

// bootCluster starts `nodes` in-process cluster nodes on loopback HTTP
// servers wired to each other, mirroring N permd processes with -peers.
func bootCluster(t *testing.T, nodes, procs int) []*Node {
	t.Helper()
	nds := make([]*Node, nodes)
	testkit.Loopback(t, nodes, func(k int, peers []string) http.Handler {
		nd, err := New(Config{Self: k, Peers: peers, Procs: procs})
		if err != nil {
			t.Fatal(err)
		}
		nds[k] = nd
		mux := http.NewServeMux()
		mux.Handle("/v1/cluster/", nd.Handler())
		return mux
	})
	return nds
}

// singleNodeCGM is the byte-identity reference: the in-process blocked
// CGM permutation of the identity, the exact bytes every cluster layout
// must reproduce.
func singleNodeCGM(t *testing.T, n int64, p int, seed uint64) []int64 {
	t.Helper()
	id := make([]int64, n)
	for i := range id {
		id[i] = int64(i)
	}
	out, err := engine.PermuteSliceCGM(id, p, engine.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClusterMatchesSingleNode is the acceptance anchor: for every
// cluster size, reading the whole permutation through any node's
// Permuter yields exactly the single-process bytes for the same
// (seed, n, p) — chunking, shard boundaries and the HTTP hops are
// invisible.
func TestClusterMatchesSingleNode(t *testing.T) {
	for _, tc := range []struct {
		nodes, procs int
		n            int64
	}{
		{1, 4, 1000},
		{2, 2, 4},
		{2, 8, 1000},
		{3, 8, 1001},
		{4, 5, 997}, // blocks do not divide evenly over nodes
		{2, 8, 0},   // empty domain
		{2, 8, 1},
		{4, 8, 5}, // n < p: empty blocks
	} {
		nds := bootCluster(t, tc.nodes, tc.procs)
		want := singleNodeCGM(t, tc.n, tc.procs, 7)
		for k, nd := range nds {
			pm := nd.Permuter(tc.n, 7)
			if pm.Len() != tc.n {
				t.Fatalf("%+v: Len = %d", tc, pm.Len())
			}
			got := make([]int64, tc.n)
			// Pull through a deliberately awkward chunk size so spans
			// cross shard boundaries.
			buf := make([]int64, 17)
			var pos int64
			for pos < tc.n {
				m, err := pm.Chunk(buf, pos)
				if err != nil {
					t.Fatalf("%+v node %d: Chunk(%d): %v", tc, k, pos, err)
				}
				copy(got[pos:], buf[:m])
				pos += int64(m)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%+v node %d: byte divergence at %d: %d != %d",
						tc, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestClusterShardStrictlyLocal: the peer-facing chunk endpoint serves
// exactly the node's own shard and refuses anything outside it.
func TestClusterShardStrictlyLocal(t *testing.T) {
	const n, procs = 100, 8
	nds := bootCluster(t, 2, procs)
	want := singleNodeCGM(t, n, procs, 3)
	for k, nd := range nds {
		lo, hi := nd.ShardRange(n, k)
		sh, err := nd.shard(k, n, 3)
		if err != nil {
			t.Fatal(err)
		}
		if sh.Start != lo || sh.End != hi {
			t.Fatalf("node %d: shard [%d, %d), want [%d, %d)", k, sh.Start, sh.End, lo, hi)
		}
		for i, v := range sh.Vals {
			if v != want[lo+int64(i)] {
				t.Fatalf("node %d: shard value %d diverged", k, i)
			}
		}
	}
	// An out-of-shard request is refused, not proxied.
	lo0, _ := nds[0].ShardRange(n, 0)
	resp, err := http.Get(fmt.Sprintf("%s/v1/cluster/chunk?n=%d&seed=3&start=%d&len=%d",
		nds[1].cfg.Peers[1], n, lo0, 1))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Fatalf("out-of-shard request: got %s", resp.Status)
	}
}

// TestClusterUniform2Node is the distributional acceptance criterion: a
// 2-node loopback cluster shuffle over S_4, chi-squared against the
// exactly uniform law — the network rounds must not disturb Algorithm
// 1's exactness.
func TestClusterUniform2Node(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	const n = 4
	const trials = 12000
	nds := bootCluster(t, 2, 2)
	counts := make([]int64, stats.Factorial(n))
	buf := make([]int64, n)
	for tr := 0; tr < trials; tr++ {
		pm := nds[0].Permuter(n, uint64(tr)*0x9E3779B97F4A7C15+17)
		if _, err := pm.Chunk(buf, 0); err != nil {
			t.Fatal(err)
		}
		counts[stats.RankPermInt64(buf)]++
	}
	res, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.0005) {
		t.Errorf("2-node cluster shuffle non-uniform: %s", res)
	}
}

// TestClusterConfigMismatch: a peer running a different decomposition
// width or cluster size is refused at the exchange, so a shard build
// fails loudly instead of assembling bytes from a different
// permutation.
func TestClusterConfigMismatch(t *testing.T) {
	nds := bootCluster(t, 2, 8)
	// Node 0 reconfigured to a different width, pointing at node 1's
	// correct-width server.
	bad, err := New(Config{Self: 0, Peers: nds[0].cfg.Peers, Procs: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.shard(0, 100, 1); err == nil ||
		!strings.Contains(err.Error(), "width mismatch") {
		t.Fatalf("mismatched width built a shard: %v", err)
	}
}

// TestClusterPeerDown: an unreachable peer turns into an error from
// Chunk, never a panic or a partial result — and the chain carries a
// typed *PeerError naming the dead peer's index, address and the
// algorithm round, so callers can act on the failure without parsing
// strings. (Regression: the exchange path used to flatten the transport
// error into fmt.Errorf text, losing the peer identity.)
func TestClusterPeerDown(t *testing.T) {
	nds := bootCluster(t, 2, 8)
	// A cluster whose second peer points at a closed server.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	lone, err := New(Config{Self: 0, Peers: []string{nds[0].cfg.Peers[0], dead.URL}, Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int64, 10)
	_, err = lone.Permuter(100, 1).Chunk(buf, 0)
	if err == nil {
		t.Fatal("dead peer produced a shard")
	}
	var pe *PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("no *PeerError in the chain: %v", err)
	}
	if pe.Node != 1 || pe.Addr != dead.URL {
		t.Errorf("PeerError names node %d (%s), want node 1 (%s)", pe.Node, pe.Addr, dead.URL)
	}
	if pe.Round != RoundExchange || pe.Op != "exchange" {
		t.Errorf("PeerError round/op = %d/%q, want %d/exchange", pe.Round, pe.Op, RoundExchange)
	}
}

// TestGeometry pins the block/node arithmetic: spans partition the
// blocks, owners invert spans, and shard ranges tile [0, n).
func TestGeometry(t *testing.T) {
	for _, nodes := range []int{1, 2, 3, 5, 8} {
		for _, p := range []int{8, 9, 64} {
			if p < nodes {
				continue
			}
			prev := 0
			for k := 0; k < nodes; k++ {
				lo, hi := blockSpan(p, nodes, k)
				if lo != prev || hi < lo {
					t.Fatalf("p=%d nodes=%d: span %d = [%d, %d) not contiguous", p, nodes, k, lo, hi)
				}
				for b := lo; b < hi; b++ {
					if got := ownerOfBlock(p, nodes, b); got != k {
						t.Fatalf("ownerOfBlock(%d,%d,%d) = %d, want %d", p, nodes, b, got, k)
					}
				}
				prev = hi
			}
			if prev != p {
				t.Fatalf("p=%d nodes=%d: spans cover %d blocks", p, nodes, prev)
			}
		}
	}
	nd, err := New(Config{Self: 0, Peers: []string{"a", "b", "c"}, Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int64{0, 1, 5, 8, 1000, 1001} {
		var prev int64
		for k := 0; k < 3; k++ {
			lo, hi := nd.ShardRange(n, k)
			if lo != prev {
				t.Fatalf("n=%d: shard %d starts at %d, want %d", n, k, lo, prev)
			}
			for i := lo; i < hi; i++ {
				if got := nd.Owner(n, i); got != k {
					t.Fatalf("n=%d: Owner(%d) = %d, want %d", n, i, got, k)
				}
			}
			prev = hi
		}
		if prev != n {
			t.Fatalf("n=%d: shards cover %d", n, prev)
		}
	}
}

// TestPeerEndpointGuards: the peer-facing endpoints must refuse what
// the public API would refuse — an unbounded n (when MaxN is set) and
// a length that would overflow the shard-bounds arithmetic.
func TestPeerEndpointGuards(t *testing.T) {
	nds := bootCluster(t, 2, 8)
	base := nds[0].cfg.Peers[0]
	// MaxN-gated node: rebuild node 0's handler with a bound.
	bounded, err := New(Config{Self: 0, Peers: nds[0].cfg.Peers, Procs: 8, MaxN: 1000})
	if err != nil {
		t.Fatal(err)
	}
	rec := func(h http.Handler, url string) int {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", url, nil))
		return w.Code
	}
	for _, url := range []string{
		"/v1/cluster/exchange?n=1000000&seed=1&p=8&nodes=2&to=1",
		"/v1/cluster/chunk?n=1000000&seed=1&start=0&len=1",
	} {
		if code := rec(bounded.Handler(), url); code != http.StatusBadRequest {
			t.Errorf("%s on a MaxN=1000 node: status %d, want 400", url, code)
		}
	}
	// Overflowing len must be a 416, not a slice panic.
	resp, err := http.Get(fmt.Sprintf(
		"%s/v1/cluster/chunk?n=1000&seed=1&start=1&len=9223372036854775807", base))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Errorf("overflowing len: status %s, want 416", resp.Status)
	}
}

// TestNewValidation covers the constructor's error paths.
func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no peers accepted")
	}
	if _, err := New(Config{Self: 2, Peers: []string{"a", "b"}}); err == nil {
		t.Error("out-of-range self accepted")
	}
	if _, err := New(Config{Self: 0, Peers: []string{"a", "b", "c"}, Procs: 2}); err == nil {
		t.Error("p < nodes accepted")
	}
}

// TestStatusAndMetrics: the introspection surfaces report the node's
// place and traffic.
func TestStatusAndMetrics(t *testing.T) {
	nds := bootCluster(t, 2, 4)
	buf := make([]int64, 50)
	if _, err := nds[0].Permuter(50, 9).Chunk(buf, 0); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(nds[0].cfg.Peers[0] + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Node     int              `json:"node"`
		Nodes    int              `json:"nodes"`
		Procs    int              `json:"procs"`
		Resident []map[string]any `json:"resident_shards"`
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Node != 0 || st.Nodes != 2 || st.Procs != 4 {
		t.Fatalf("status identity wrong: %+v", st)
	}
	if len(st.Resident) != 1 || st.Counters["shard_builds"] != 1 {
		t.Fatalf("status shards wrong: %+v", st)
	}
	if st.Counters["proxied_requests"] == 0 {
		t.Fatalf("full-domain chunk proxied nothing: %+v", st.Counters)
	}
	var sb strings.Builder
	nds[1].WriteMetrics(&sb)
	for _, want := range []string{
		"permd_cluster_exchange_requests_total 1",
		"permd_cluster_chunk_requests_total 1",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("metrics missing %q in:\n%s", want, sb.String())
		}
	}
	if !nds[0].Permuter(50, 9).Materialized() {
		t.Error("built shard not reported Materialized")
	}
	if nds[0].Permuter(51, 9).Materialized() {
		t.Error("unbuilt shard reported Materialized")
	}
}
