package cluster

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"randperm/internal/commat"
	"randperm/internal/core"
	"randperm/internal/engine"
	"randperm/internal/events"
)

// publishServeEvent reports a hedge or failover decision on a routed
// read (or an exchange failover) as a cluster_round event: Peer is the
// replica being tried, Round names the phase, Detail the decision.
func (nd *Node) publishServeEvent(peer, round, slot int, detail string) {
	ev := events.New(events.TypeClusterRound)
	ev.Peer = peer
	ev.Round = round
	ev.Slot = slot
	ev.Detail = detail
	nd.publish(ev)
}

// The exchange wire format (one round-2 h-relation leg, server -> one
// requesting peer) is length-prefixed little-endian binary:
//
//	magic  "RPX2"                                    4 bytes
//	seed   uint64 | n int64                          config echo —
//	p, nodes, from, to  4 x int32                    verified by both ends
//	then, for each source block i of slot `from`, ascending:
//	  i      int32
//	  for each target block j of slot `to`, ascending:
//	    count  int64        the matrix entry a_ij this segment realizes
//	    count x int64       the routed element payloads, in source order
//
// The counts ARE the server's matrix row entries, so the exchange
// carries matrix rows and payloads in one stream; the requester checks
// every count against its own locally sampled matrix and refuses the
// response on any mismatch — a diverging seed, width or cluster layout
// is an error, never a silently mixed permutation. `from` and `to` are
// shard slots, not node indices: with replication any duty holder of
// `from` serves the identical bytes, because the payloads are drawn
// from the slot's streams, not from node state. (RPX1 was the
// pre-replication format whose from/to were node indices; the magic
// bump makes a mixed-version cluster fail loudly on the first
// exchange.)

const exchangeMagic = "RPX2"

// Peer-call headers: every request a node sends carries its own index
// and its current health view; every /v1/cluster/* response carries the
// answering node's view. Both directions are absorbed, which is what
// makes the gossip free — it rides calls the nodes were making anyway.
const (
	fromHeader   = "X-Permd-From"
	healthHeader = "X-Permd-Health"
)

// Round numbers for PeerError, matching the paper's round structure.
// Rounds 1 and 3 are local and cannot produce peer errors; calls
// outside the build (routed chunk reads, join handshakes) report
// RoundServe.
const (
	RoundServe    = 0 // outside the three rounds: shard-local chunk serving or join
	RoundExchange = 2 // the round-2 h-relation exchange
)

// PeerError reports a failed call to a cluster peer with enough context
// to act on without parsing strings: the peer's index and address, the
// algorithm round in flight, and the operation. It wraps the transport
// or protocol error underneath, so errors.As surfaces it from anywhere
// in a Chunk/Materialize error chain.
type PeerError struct {
	Node  int    // the peer's index in Config.Peers
	Addr  string // the peer's base URL
	Round int    // RoundExchange during a shard build's h-relation, else RoundServe
	Op    string // "exchange", "chunk" or "join"
	Err   error
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("cluster: %s with node %d (%s) in round %d: %v", e.Op, e.Node, e.Addr, e.Round, e.Err)
}

func (e *PeerError) Unwrap() error { return e.Err }

// peerError wraps err for a failed call to peer k.
func (nd *Node) peerError(k, round int, op string, err error) *PeerError {
	return &PeerError{Node: k, Addr: nd.cfg.Peers[k], Round: round, Op: op, Err: err}
}

// peerGet performs one GET against peer k with the cluster headers
// attached, records the outcome in the health tracker, and absorbs the
// peer's gossiped view from the response. A context cancelled by the
// caller (a hedge loser) is not held against the peer's health. Any
// 2xx-4xx answer counts as alive — a config refusal still proves the
// peer is up; transport errors and 5xx count as failures.
func (nd *Node) peerGet(ctx context.Context, k int, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(fromHeader, strconv.Itoa(nd.cfg.Self))
	if g := nd.health.gossip(); g != "" {
		req.Header.Set(healthHeader, g)
	}
	resp, err := nd.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			nd.health.failure(k)
		}
		return nil, err
	}
	nd.health.absorb(resp.Header.Get(healthHeader), k, nd.cfg.Self)
	if resp.StatusCode >= 500 {
		nd.health.failure(k)
	} else {
		nd.health.success(k)
	}
	return resp, nil
}

// Handler returns the node's peer-facing API, rooted at /v1/cluster/:
//
//	GET /v1/cluster/exchange?n=&seed=&p=&nodes=&from=&to=  round-2 payloads, source slot `from` -> target slot `to`
//	GET /v1/cluster/chunk?n=&seed=&start=&len=             replicated-shard values, binary LE int64
//	GET /v1/cluster/join?node=&hash=                       geometry handshake (see join.go)
//	GET /v1/cluster/status                                 JSON node/cluster introspection
//
// Every response carries this node's health view in X-Permd-Health, and
// every request's view is absorbed — the gossip layer. Mount it on the
// same server that serves the public permd API (the service layer does)
// or on its own listener.
func (nd *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster/exchange", nd.handleExchange)
	mux.HandleFunc("GET /v1/cluster/chunk", nd.handleChunk)
	mux.HandleFunc("GET /v1/cluster/join", nd.handleJoin)
	mux.HandleFunc("GET /v1/cluster/status", nd.handleStatus)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Gossip piggyback, both directions. A request from a peer is
		// also first-hand evidence the peer is alive.
		if fv := r.Header.Get(fromHeader); fv != "" {
			if k, err := strconv.Atoi(fv); err == nil && k >= 0 && k < len(nd.cfg.Peers) && k != nd.cfg.Self {
				nd.health.success(k)
				nd.health.absorb(r.Header.Get(healthHeader), k, nd.cfg.Self)
			}
		}
		if g := nd.health.gossip(); g != "" {
			w.Header().Set(healthHeader, g)
		}
		mux.ServeHTTP(w, r)
	})
}

// queryInt64 parses a required decimal query parameter.
func queryInt64(r *http.Request, name string) (int64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing %s", name)
	}
	x, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: want a decimal integer", name, v)
	}
	return x, nil
}

// queryN parses and gates the domain size of a peer request: the
// peer-facing endpoints must not accept work the public API would
// refuse (Config.MaxN).
func (nd *Node) queryN(r *http.Request) (int64, error) {
	n, err := queryInt64(r, "n")
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad n: %v", err)
	}
	if nd.cfg.MaxN > 0 && n > nd.cfg.MaxN {
		return 0, fmt.Errorf("n=%d exceeds this node's bound %d", n, nd.cfg.MaxN)
	}
	return n, nil
}

// handleExchange serves round 2 to one requesting peer: the label
// arrangements of source slot `from`'s blocks are drawn from their
// streams and the payload segments destined for target slot `to`'s
// blocks are streamed out, each prefixed with the matrix entry it
// realizes. The node serves any source slot it replicates — the
// arrangements are derived from the slot's streams, so every duty
// holder ships identical bytes — and refuses slots outside its duty,
// which is what keeps R=1 failures honest: a dead primary's
// contributions are then not derivable from anyone, and the build
// errors instead of silently recomputing the whole cluster's work on
// one box.
//
// The handler is deliberately stateless: the matrix and arrangements
// are recomputed per request rather than cached per (n, seed). With
// N-1 requesters per permutation that redoes the O(n/N) arrangement
// work N-1 times per slot — the trade is bounded peer-facing memory
// (O(m_i) per in-flight request, no second cache to size against the
// shard LRU) for CPU that is already dwarfed by a shard build's wire
// traffic. If exchange CPU ever dominates a profile, the fix is a
// per-(n, seed) arrangement cache beside the shard cache.
func (nd *Node) handleExchange(w http.ResponseWriter, r *http.Request) {
	nd.exchangeReqs.Add(1)
	q := r.URL.Query()
	n, err := nd.queryN(r)
	if err != nil {
		http.Error(w, fmt.Sprintf("cluster: %v", err), http.StatusBadRequest)
		return
	}
	seed, err := strconv.ParseUint(q.Get("seed"), 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("cluster: bad seed %q", q.Get("seed")), http.StatusBadRequest)
		return
	}
	// Config echo: a requester with a different width or layout gets a
	// conflict naming both values, the cluster's first line of defense
	// against serving bytes from a different permutation.
	if pv := q.Get("p"); pv != strconv.Itoa(nd.cfg.Procs) {
		http.Error(w, fmt.Sprintf("cluster: decomposition width mismatch: peer p=%s, this node p=%d", pv, nd.cfg.Procs), http.StatusConflict)
		return
	}
	if nv := q.Get("nodes"); nv != strconv.Itoa(len(nd.cfg.Peers)) {
		http.Error(w, fmt.Sprintf("cluster: cluster size mismatch: peer nodes=%s, this node nodes=%d", nv, len(nd.cfg.Peers)), http.StatusConflict)
		return
	}
	from64, err := queryInt64(r, "from")
	from := int(from64)
	if err != nil || from < 0 || from >= len(nd.cfg.Peers) {
		http.Error(w, fmt.Sprintf("cluster: bad from=%q: want a shard slot in [0, %d)", q.Get("from"), len(nd.cfg.Peers)), http.StatusBadRequest)
		return
	}
	if !nd.hasDuty(nd.cfg.Self, from) {
		http.Error(w, fmt.Sprintf("cluster: this node does not replicate source slot %d (replicas=%d)", from, nd.cfg.Replicas), http.StatusForbidden)
		return
	}
	to64, err := queryInt64(r, "to")
	to := int(to64)
	if err != nil || to < 0 || to >= len(nd.cfg.Peers) {
		http.Error(w, fmt.Sprintf("cluster: bad to=%q: want a shard slot in [0, %d)", q.Get("to"), len(nd.cfg.Peers)), http.StatusBadRequest)
		return
	}

	p, nodes := nd.cfg.Procs, len(nd.cfg.Peers)
	sizes := core.EvenBlocks(n, p)
	off := blockOffsets(n, p)
	streams := engine.CGMStreams(seed, p)
	a := commat.SampleSeq(streams[0], sizes, sizes)
	sLo, sHi := blockSpan(p, nodes, from) // the served source slot's blocks
	tLo, tHi := blockSpan(p, nodes, to)   // the requested target slot's blocks

	w.Header().Set("Content-Type", "application/octet-stream")
	bw := bufio.NewWriterSize(w, 1<<15)
	writeU64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		bw.Write(b[:])
	}
	writeI32 := func(v int32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		bw.Write(b[:])
	}
	bw.WriteString(exchangeMagic)
	writeU64(seed)
	writeU64(uint64(n))
	writeI32(int32(p))
	writeI32(int32(nodes))
	writeI32(int32(from))
	writeI32(int32(to))

	var shipped int64
	for i := sLo; i < sHi; i++ {
		labels := engine.ArrangeRow(streams[1+i], a.Row(i))
		// Bucket this source block's payloads for the requester's
		// targets only; one pass over the labels.
		segs := make([][]int64, tHi-tLo)
		for j := tLo; j < tHi; j++ {
			segs[j-tLo] = make([]int64, 0, a.At(i, j))
		}
		for t, lab := range labels {
			if j := int(lab); j >= tLo && j < tHi {
				segs[j-tLo] = append(segs[j-tLo], off[i]+int64(t))
			}
		}
		writeI32(int32(i))
		for j := tLo; j < tHi; j++ {
			seg := segs[j-tLo]
			writeU64(uint64(len(seg)))
			for _, v := range seg {
				writeU64(uint64(v))
			}
			shipped += int64(len(seg))
		}
	}
	bw.Flush()
	nd.exchangeItems.Add(shipped)
}

// fetchExchangeSlot performs one requester leg of round 2 with replica
// failover: it pulls the payloads source slot `from`'s blocks route
// into target slot `to`'s blocks from one of `from`'s duty holders —
// candidates ranked by observed health, primary first — advancing to
// the next replica on any error. Every attempt's failure is kept in
// the returned chain (each wrapped as a *PeerError naming the peer and
// round), so a fully dead replica set is diagnosable per peer.
func (nd *Node) fetchExchangeSlot(from, to int, n int64, seed uint64, a *commat.Matrix, place func(i, j int, seg []int64)) error {
	cands := nd.health.rank(nd.replicasOf(from))
	var attempts []error
	for try, k := range cands {
		if try > 0 {
			nd.failovers.Add(1)
			nd.publishServeEvent(k, RoundExchange, from, "failover")
		}
		err := nd.fetchExchange(k, from, to, n, seed, a, place)
		if err == nil {
			return nil
		}
		attempts = append(attempts, err)
	}
	return fmt.Errorf("cluster: no replica of source slot %d answered the round-2 exchange: %w", from, errors.Join(attempts...))
}

// fetchExchange pulls one exchange leg from peer k and hands each
// verified segment to place(i, j, seg). Any failure — transport,
// status, framing or matrix disagreement — comes back as a *PeerError
// carrying k's address and the round. place must tolerate partial
// invocation before an error: segments are verified before placement
// and identical across replicas, so a retry simply overwrites the same
// values.
func (nd *Node) fetchExchange(k, from, to int, n int64, seed uint64, a *commat.Matrix, place func(i, j int, seg []int64)) error {
	p, nodes := nd.cfg.Procs, len(nd.cfg.Peers)
	u := fmt.Sprintf("%s/v1/cluster/exchange?n=%d&seed=%d&p=%d&nodes=%d&from=%d&to=%d",
		nd.cfg.Peers[k], n, seed, p, nodes, from, to)
	resp, err := nd.peerGet(context.Background(), k, u)
	if err != nil {
		return nd.peerError(k, RoundExchange, "exchange", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nd.peerError(k, RoundExchange, "exchange", fmt.Errorf("%s: %s", resp.Status, msg))
	}
	br := bufio.NewReaderSize(resp.Body, 1<<15)
	readU64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	readI32 := func() (int32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return int32(binary.LittleEndian.Uint32(b[:])), nil
	}
	bad := func(format string, args ...any) error {
		return nd.peerError(k, RoundExchange, "exchange", fmt.Errorf(format, args...))
	}

	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return bad("reading header: %v", err)
	}
	if string(magic[:]) != exchangeMagic {
		return bad("bad magic %q", magic)
	}
	hdr := make([]uint64, 2)
	for i := range hdr {
		if hdr[i], err = readU64(); err != nil {
			return bad("reading header: %v", err)
		}
	}
	ints := make([]int32, 4)
	for i := range ints {
		if ints[i], err = readI32(); err != nil {
			return bad("reading header: %v", err)
		}
	}
	if hdr[0] != seed || int64(hdr[1]) != n || int(ints[0]) != p ||
		int(ints[1]) != nodes || int(ints[2]) != from || int(ints[3]) != to {
		return bad("config echo mismatch: got (seed=%d n=%d p=%d nodes=%d from=%d to=%d), want (%d %d %d %d %d %d)",
			hdr[0], int64(hdr[1]), ints[0], ints[1], ints[2], ints[3], seed, n, p, nodes, from, to)
	}

	sLo, sHi := blockSpan(p, nodes, from)
	tLo, tHi := blockSpan(p, nodes, to)
	for i := sLo; i < sHi; i++ {
		gotI, err := readI32()
		if err != nil {
			return bad("reading source header: %v", err)
		}
		if int(gotI) != i {
			return bad("source block sequence broken: got %d, want %d", gotI, i)
		}
		for j := tLo; j < tHi; j++ {
			count, err := readU64()
			if err != nil {
				return bad("reading segment count: %v", err)
			}
			// The matrix-row check: the shipped count must realize the
			// entry this node sampled locally.
			if want := a.At(i, j); int64(count) != want {
				return bad("matrix disagreement at a[%d][%d]: peer shipped %d values, local matrix says %d — the nodes are not running the same (seed, n, p, nodes)", i, j, count, want)
			}
			seg := make([]int64, count)
			for t := range seg {
				v, err := readU64()
				if err != nil {
					return bad("reading segment payload: %v", err)
				}
				seg[t] = int64(v)
			}
			place(i, j, seg)
		}
	}
	return nil
}

// handleChunk serves values of the (seed, n) permutation strictly from
// the shard slots this node replicates, as little-endian int64s: the
// peer-to-peer leg of a routed Permuter.Chunk. A range that leaves
// every replicated slot is refused (416) — the caller, not this node,
// is responsible for routing, which is what makes proxy loops
// impossible by construction.
func (nd *Node) handleChunk(w http.ResponseWriter, r *http.Request) {
	nd.chunkReqs.Add(1)
	n, err := nd.queryN(r)
	if err != nil {
		http.Error(w, fmt.Sprintf("cluster: %v", err), http.StatusBadRequest)
		return
	}
	seed, err := strconv.ParseUint(r.URL.Query().Get("seed"), 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("cluster: bad seed %q", r.URL.Query().Get("seed")), http.StatusBadRequest)
		return
	}
	start, err := queryInt64(r, "start")
	if err != nil || start < 0 {
		http.Error(w, fmt.Sprintf("cluster: bad start: %v", err), http.StatusBadRequest)
		return
	}
	length, err := queryInt64(r, "len")
	if err != nil || length < 0 {
		http.Error(w, fmt.Sprintf("cluster: bad len: %v", err), http.StatusBadRequest)
		return
	}
	// Find the replicated slot containing the range. length is compared
	// against the remaining extent, never added to start: start+length
	// could overflow int64 and slip past the guard.
	slot := -1
	for _, s := range nd.duties(nd.cfg.Self) {
		lo, hi := nd.ShardRange(n, s)
		if start >= lo && start <= hi && length <= hi-start {
			slot = s
			break
		}
	}
	if slot < 0 {
		http.Error(w, fmt.Sprintf("cluster: range starting at %d for %d values outside every shard this node replicates (node %d, replicas %d)",
			start, length, nd.cfg.Self, nd.cfg.Replicas), http.StatusRequestedRangeNotSatisfiable)
		return
	}
	sh, err := nd.shard(slot, n, seed)
	if err != nil {
		http.Error(w, fmt.Sprintf("cluster: building shard: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	bw := bufio.NewWriterSize(w, 1<<15)
	var b [8]byte
	for _, v := range sh.Vals[start-sh.Start : start-sh.Start+length] {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		if _, err := bw.Write(b[:]); err != nil {
			return
		}
	}
	bw.Flush()
	nd.chunkItems.Add(length)
}

// fetchChunk pulls values [start, start+len(dst)) of slot's shard from
// peer k into dst. ctx is the hedging seam: a losing racer is
// cancelled here, and the cancellation is not held against k's health.
func (nd *Node) fetchChunk(ctx context.Context, k int, n int64, seed uint64, dst []int64, start int64) error {
	u := fmt.Sprintf("%s/v1/cluster/chunk?n=%d&seed=%d&start=%d&len=%d",
		nd.cfg.Peers[k], n, seed, start, len(dst))
	resp, err := nd.peerGet(ctx, k, u)
	if err != nil {
		return nd.peerError(k, RoundServe, "chunk", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nd.peerError(k, RoundServe, "chunk", fmt.Errorf("%s: %s", resp.Status, msg))
	}
	buf := make([]byte, 8*len(dst))
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		return nd.peerError(k, RoundServe, "chunk", fmt.Errorf("short read: %w", err))
	}
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	nd.proxyReqs.Add(1)
	nd.proxyItems.Add(int64(len(dst)))
	return nil
}

// readRemoteSpan fills dst with [start, start+len(dst)) of slot's
// shard from the slot's replica set: candidates ranked by observed
// health (a peer marked down is tried last, so routing has already
// skipped it before any timer runs), primary replica breaking ties.
// The first candidate is fired immediately; if it has not answered
// within the hedge budget the next one is raced against it, first
// answer wins and the loser is cancelled via its context; any error
// advances to the next candidate at once. Each racer fills a private
// buffer so a cancelled loser can never tear the winner's bytes — not
// that it could change them: every replica serves identical values,
// which is why hedging is safe at all.
func (nd *Node) readRemoteSpan(slot int, n int64, seed uint64, dst []int64, start int64) error {
	cands := nd.health.rank(nd.replicasOf(slot))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type result struct {
		cand   int
		hedged bool
		buf    []int64
		err    error
	}
	ch := make(chan result, len(cands))
	launched := 0
	launch := func(hedged bool) {
		k := cands[launched]
		launched++
		go func() {
			buf := make([]int64, len(dst))
			err := nd.fetchChunk(ctx, k, n, seed, buf, start)
			ch <- result{cand: k, hedged: hedged, buf: buf, err: err}
		}()
	}
	launch(false)

	var hedgeC <-chan time.Time
	if nd.cfg.HedgeAfter > 0 && len(cands) > 1 {
		timer := time.NewTimer(nd.cfg.HedgeAfter)
		defer timer.Stop()
		hedgeC = timer.C
	}
	pending := 1
	var attempts []error
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			if launched < len(cands) {
				nd.hedgedReqs.Add(1)
				nd.publishServeEvent(cands[launched], RoundServe, slot, "hedge")
				launch(true)
				pending++
			}
		case res := <-ch:
			pending--
			if res.err == nil {
				copy(dst, res.buf)
				if res.hedged {
					nd.hedgeWins.Add(1)
					nd.publishServeEvent(res.cand, RoundServe, slot, "hedge_win")
				}
				return nil
			}
			attempts = append(attempts, res.err)
			if launched < len(cands) {
				nd.failovers.Add(1)
				nd.publishServeEvent(cands[launched], RoundServe, slot, "failover")
				launch(false)
				pending++
			} else if pending == 0 {
				return fmt.Errorf("cluster: no replica of shard slot %d answered: %w", slot, errors.Join(attempts...))
			}
		}
	}
}

// handleStatus serves a JSON introspection page: the node's place in
// the cluster, its replica duties, the peer list and each peer's
// observed health, resident shards and traffic counters — the
// operator's first stop when two nodes disagree (see OPERATIONS.md).
func (nd *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	type shardInfo struct {
		Slot  int    `json:"slot"`
		N     int64  `json:"n"`
		Seed  uint64 `json:"seed"`
		Start int64  `json:"start"`
		End   int64  `json:"end"`
	}
	var resident []shardInfo
	nd.mu.Lock()
	for el := nd.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*shardEntry)
		if e.built.Load() && e.err == nil {
			resident = append(resident, shardInfo{
				Slot: e.key.slot, N: e.key.n, Seed: e.key.seed, Start: e.sh.Start, End: e.sh.End,
			})
		}
	}
	nd.mu.Unlock()
	states := nd.health.snapshot()
	peerHealth := make([]string, len(states))
	for k, s := range states {
		if k == nd.cfg.Self {
			peerHealth[k] = "self"
		} else {
			peerHealth[k] = s.String()
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"node":            nd.cfg.Self,
		"nodes":           len(nd.cfg.Peers),
		"procs":           nd.cfg.Procs,
		"replicas":        nd.cfg.Replicas,
		"duties":          nd.duties(nd.cfg.Self),
		"peers":           nd.cfg.Peers,
		"peer_health":     peerHealth,
		"geometry_hash":   nd.Geometry().Hash(),
		"max_shards":      nd.cfg.MaxShards,
		"resident_shards": resident,
		"counters": map[string]int64{
			"exchange_requests": nd.exchangeReqs.Load(),
			"exchange_items":    nd.exchangeItems.Load(),
			"chunk_requests":    nd.chunkReqs.Load(),
			"chunk_items":       nd.chunkItems.Load(),
			"proxied_requests":  nd.proxyReqs.Load(),
			"proxied_items":     nd.proxyItems.Load(),
			"shard_builds":      nd.shardBuilds.Load(),
			"shard_build_ns":    nd.shardBuildNs.Load(),
			"hedged_requests":   nd.hedgedReqs.Load(),
			"hedge_wins":        nd.hedgeWins.Load(),
			"failovers":         nd.failovers.Load(),
			"join_requests":     nd.joinReqs.Load(),
		},
	})
}

// WriteMetrics appends the node's counters to a Prometheus text page,
// in the permd_cluster_* namespace; the service layer calls it from
// /metrics when cluster mode is on.
func (nd *Node) WriteMetrics(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("permd_cluster_exchange_requests_total", "Round-2 exchange requests served to peers.", nd.exchangeReqs.Load())
	counter("permd_cluster_exchange_items_total", "Values shipped to peers in exchange responses.", nd.exchangeItems.Load())
	counter("permd_cluster_chunk_requests_total", "Shard-local chunk requests served to peers.", nd.chunkReqs.Load())
	counter("permd_cluster_chunk_items_total", "Values served to peers from local shards.", nd.chunkItems.Load())
	counter("permd_cluster_proxied_requests_total", "Chunk requests this node sent to owning peers.", nd.proxyReqs.Load())
	counter("permd_cluster_proxied_items_total", "Values fetched from owning peers.", nd.proxyItems.Load())
	counter("permd_cluster_shard_builds_total", "Shards assembled through the three exchange rounds.", nd.shardBuilds.Load())
	counter("permd_cluster_shard_build_ns_total", "Wall nanoseconds spent assembling shards.", nd.shardBuildNs.Load())
	counter("permd_cluster_hedged_requests_total", "Secondary replica reads fired by the hedge timer.", nd.hedgedReqs.Load())
	counter("permd_cluster_hedge_wins_total", "Hedged replica reads that answered first.", nd.hedgeWins.Load())
	counter("permd_cluster_failovers_total", "Replica requests fired because an earlier replica failed.", nd.failovers.Load())
	counter("permd_cluster_join_requests_total", "Join handshakes served to peers.", nd.joinReqs.Load())
	fmt.Fprintf(w, "# HELP permd_cluster_peer_health Peer health as observed by this node (0 healthy, 1 suspect, 2 down).\n")
	fmt.Fprintf(w, "# TYPE permd_cluster_peer_health gauge\n")
	for k, s := range nd.health.snapshot() {
		if k == nd.cfg.Self {
			continue
		}
		fmt.Fprintf(w, "permd_cluster_peer_health{peer=\"%d\"} %d\n", k, int(s))
	}
}
