package cluster

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"randperm/internal/commat"
	"randperm/internal/core"
	"randperm/internal/engine"
)

// The exchange wire format (one round-2 h-relation leg, server -> one
// requesting peer) is length-prefixed little-endian binary:
//
//	magic  "RPX1"                                    4 bytes
//	seed   uint64 | n int64                          config echo —
//	p, nodes, from, to  4 x int32                    verified by both ends
//	then, for each source block i the server owns, ascending:
//	  i      int32
//	  for each target block j the requester owns, ascending:
//	    count  int64        the matrix entry a_ij this segment realizes
//	    count x int64       the routed element payloads, in source order
//
// The counts ARE the server's matrix row entries, so the exchange
// carries matrix rows and payloads in one stream; the requester checks
// every count against its own locally sampled matrix and refuses the
// response on any mismatch — a diverging seed, width or cluster layout
// is an error, never a silently mixed permutation.

const exchangeMagic = "RPX1"

// Handler returns the node's peer-facing API, rooted at /v1/cluster/:
//
//	GET /v1/cluster/exchange?n=&seed=&p=&nodes=&to=   round-2 payloads for peer `to`
//	GET /v1/cluster/chunk?n=&seed=&start=&len=        shard-local values, binary LE int64
//	GET /v1/cluster/status                            JSON node/cluster introspection
//
// Mount it on the same server that serves the public permd API (the
// service layer does) or on its own listener.
func (nd *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster/exchange", nd.handleExchange)
	mux.HandleFunc("GET /v1/cluster/chunk", nd.handleChunk)
	mux.HandleFunc("GET /v1/cluster/status", nd.handleStatus)
	return mux
}

// queryInt64 parses a required decimal query parameter.
func queryInt64(r *http.Request, name string) (int64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing %s", name)
	}
	x, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: want a decimal integer", name, v)
	}
	return x, nil
}

// queryN parses and gates the domain size of a peer request: the
// peer-facing endpoints must not accept work the public API would
// refuse (Config.MaxN).
func (nd *Node) queryN(r *http.Request) (int64, error) {
	n, err := queryInt64(r, "n")
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad n: %v", err)
	}
	if nd.cfg.MaxN > 0 && n > nd.cfg.MaxN {
		return 0, fmt.Errorf("n=%d exceeds this node's bound %d", n, nd.cfg.MaxN)
	}
	return n, nil
}

// handleExchange serves round 2 to one requesting peer: the label
// arrangements of this node's source blocks are drawn from their
// streams and the payload segments destined for the requester's target
// blocks are streamed out, each prefixed with the matrix entry it
// realizes.
//
// The handler is deliberately stateless: the matrix and arrangements
// are recomputed per request rather than cached per (n, seed). With
// N-1 requesters per permutation that redoes the O(n/N) arrangement
// work N-1 times per node — the trade is bounded peer-facing memory
// (O(m_i) per in-flight request, no second cache to size against the
// shard LRU) for CPU that is already dwarfed by a shard build's wire
// traffic. If exchange CPU ever dominates a profile, the fix is a
// per-(n, seed) arrangement cache beside the shard cache.
func (nd *Node) handleExchange(w http.ResponseWriter, r *http.Request) {
	nd.exchangeReqs.Add(1)
	q := r.URL.Query()
	n, err := nd.queryN(r)
	if err != nil {
		http.Error(w, fmt.Sprintf("cluster: %v", err), http.StatusBadRequest)
		return
	}
	seed, err := strconv.ParseUint(q.Get("seed"), 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("cluster: bad seed %q", q.Get("seed")), http.StatusBadRequest)
		return
	}
	// Config echo: a requester with a different width or layout gets a
	// conflict naming both values, the cluster's first line of defense
	// against serving bytes from a different permutation.
	if pv := q.Get("p"); pv != strconv.Itoa(nd.cfg.Procs) {
		http.Error(w, fmt.Sprintf("cluster: decomposition width mismatch: peer p=%s, this node p=%d", pv, nd.cfg.Procs), http.StatusConflict)
		return
	}
	if nv := q.Get("nodes"); nv != strconv.Itoa(len(nd.cfg.Peers)) {
		http.Error(w, fmt.Sprintf("cluster: cluster size mismatch: peer nodes=%s, this node nodes=%d", nv, len(nd.cfg.Peers)), http.StatusConflict)
		return
	}
	to64, err := queryInt64(r, "to")
	to := int(to64)
	if err != nil || to < 0 || to >= len(nd.cfg.Peers) || to == nd.cfg.Self {
		http.Error(w, fmt.Sprintf("cluster: bad to=%q: want a peer index other than this node's %d", q.Get("to"), nd.cfg.Self), http.StatusBadRequest)
		return
	}

	p, nodes, self := nd.cfg.Procs, len(nd.cfg.Peers), nd.cfg.Self
	sizes := core.EvenBlocks(n, p)
	off := blockOffsets(n, p)
	streams := engine.CGMStreams(seed, p)
	a := commat.SampleSeq(streams[0], sizes, sizes)
	sLo, sHi := blockSpan(p, nodes, self) // our source blocks
	tLo, tHi := blockSpan(p, nodes, to)   // the requester's target blocks

	w.Header().Set("Content-Type", "application/octet-stream")
	bw := bufio.NewWriterSize(w, 1<<15)
	writeU64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		bw.Write(b[:])
	}
	writeI32 := func(v int32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		bw.Write(b[:])
	}
	bw.WriteString(exchangeMagic)
	writeU64(seed)
	writeU64(uint64(n))
	writeI32(int32(p))
	writeI32(int32(nodes))
	writeI32(int32(self))
	writeI32(int32(to))

	var shipped int64
	for i := sLo; i < sHi; i++ {
		labels := engine.ArrangeRow(streams[1+i], a.Row(i))
		// Bucket this source block's payloads for the requester's
		// targets only; one pass over the labels.
		segs := make([][]int64, tHi-tLo)
		for j := tLo; j < tHi; j++ {
			segs[j-tLo] = make([]int64, 0, a.At(i, j))
		}
		for t, lab := range labels {
			if j := int(lab); j >= tLo && j < tHi {
				segs[j-tLo] = append(segs[j-tLo], off[i]+int64(t))
			}
		}
		writeI32(int32(i))
		for j := tLo; j < tHi; j++ {
			seg := segs[j-tLo]
			writeU64(uint64(len(seg)))
			for _, v := range seg {
				writeU64(uint64(v))
			}
			shipped += int64(len(seg))
		}
	}
	bw.Flush()
	nd.exchangeItems.Add(shipped)
}

// fetchExchange performs one requester leg of round 2: it pulls from
// peer r the payloads r's source blocks route into this node's target
// blocks and hands each verified segment to place(i, j, seg).
func (nd *Node) fetchExchange(r int, n int64, seed uint64, a *commat.Matrix, place func(i, j int, seg []int64)) error {
	p, nodes, self := nd.cfg.Procs, len(nd.cfg.Peers), nd.cfg.Self
	u := fmt.Sprintf("%s/v1/cluster/exchange?n=%d&seed=%d&p=%d&nodes=%d&to=%d",
		nd.cfg.Peers[r], n, seed, p, nodes, self)
	resp, err := nd.client.Get(u)
	if err != nil {
		return fmt.Errorf("cluster: exchange with node %d: %w", r, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: exchange with node %d: %s: %s", r, resp.Status, msg)
	}
	br := bufio.NewReaderSize(resp.Body, 1<<15)
	readU64 := func() (uint64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}
	readI32 := func() (int32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return int32(binary.LittleEndian.Uint32(b[:])), nil
	}
	bad := func(format string, args ...any) error {
		return fmt.Errorf("cluster: exchange with node %d: %s", r, fmt.Sprintf(format, args...))
	}

	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return bad("reading header: %v", err)
	}
	if string(magic[:]) != exchangeMagic {
		return bad("bad magic %q", magic)
	}
	hdr := make([]uint64, 2)
	for i := range hdr {
		if hdr[i], err = readU64(); err != nil {
			return bad("reading header: %v", err)
		}
	}
	ints := make([]int32, 4)
	for i := range ints {
		if ints[i], err = readI32(); err != nil {
			return bad("reading header: %v", err)
		}
	}
	if hdr[0] != seed || int64(hdr[1]) != n || int(ints[0]) != p ||
		int(ints[1]) != nodes || int(ints[2]) != r || int(ints[3]) != self {
		return bad("config echo mismatch: got (seed=%d n=%d p=%d nodes=%d from=%d to=%d), want (%d %d %d %d %d %d)",
			hdr[0], int64(hdr[1]), ints[0], ints[1], ints[2], ints[3], seed, n, p, nodes, r, self)
	}

	sLo, sHi := blockSpan(p, nodes, r)
	tLo, tHi := blockSpan(p, nodes, self)
	for i := sLo; i < sHi; i++ {
		gotI, err := readI32()
		if err != nil {
			return bad("reading source header: %v", err)
		}
		if int(gotI) != i {
			return bad("source block sequence broken: got %d, want %d", gotI, i)
		}
		for j := tLo; j < tHi; j++ {
			count, err := readU64()
			if err != nil {
				return bad("reading segment count: %v", err)
			}
			// The matrix-row check: the shipped count must realize the
			// entry this node sampled locally.
			if want := a.At(i, j); int64(count) != want {
				return bad("matrix disagreement at a[%d][%d]: peer shipped %d values, local matrix says %d — the nodes are not running the same (seed, n, p, nodes)", i, j, count, want)
			}
			seg := make([]int64, count)
			for t := range seg {
				v, err := readU64()
				if err != nil {
					return bad("reading segment payload: %v", err)
				}
				seg[t] = int64(v)
			}
			place(i, j, seg)
		}
	}
	return nil
}

// handleChunk serves values of the (seed, n) permutation strictly from
// this node's own shard, as little-endian int64s: the peer-to-peer leg
// of a routed Permuter.Chunk. A range that leaves the shard is refused
// (416) — the caller, not this node, is responsible for routing, which
// is what makes proxy loops impossible by construction.
func (nd *Node) handleChunk(w http.ResponseWriter, r *http.Request) {
	nd.chunkReqs.Add(1)
	n, err := nd.queryN(r)
	if err != nil {
		http.Error(w, fmt.Sprintf("cluster: %v", err), http.StatusBadRequest)
		return
	}
	seed, err := strconv.ParseUint(r.URL.Query().Get("seed"), 10, 64)
	if err != nil {
		http.Error(w, fmt.Sprintf("cluster: bad seed %q", r.URL.Query().Get("seed")), http.StatusBadRequest)
		return
	}
	start, err := queryInt64(r, "start")
	if err != nil || start < 0 {
		http.Error(w, fmt.Sprintf("cluster: bad start: %v", err), http.StatusBadRequest)
		return
	}
	length, err := queryInt64(r, "len")
	if err != nil || length < 0 {
		http.Error(w, fmt.Sprintf("cluster: bad len: %v", err), http.StatusBadRequest)
		return
	}
	lo, hi := nd.ShardRange(n, nd.cfg.Self)
	// length is compared against the remaining extent, never added to
	// start: start+length could overflow int64 and slip past the guard.
	if start < lo || start > hi || length > hi-start {
		http.Error(w, fmt.Sprintf("cluster: range starting at %d for %d values outside this node's shard [%d, %d)",
			start, length, lo, hi), http.StatusRequestedRangeNotSatisfiable)
		return
	}
	sh, err := nd.shard(n, seed)
	if err != nil {
		http.Error(w, fmt.Sprintf("cluster: building shard: %v", err), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	bw := bufio.NewWriterSize(w, 1<<15)
	var b [8]byte
	for _, v := range sh.Vals[start-sh.Start : start-sh.Start+length] {
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		if _, err := bw.Write(b[:]); err != nil {
			return
		}
	}
	bw.Flush()
	nd.chunkItems.Add(length)
}

// fetchChunk pulls values [start, start+len(dst)) from the owning peer
// r's shard into dst.
func (nd *Node) fetchChunk(r int, n int64, seed uint64, dst []int64, start int64) error {
	u := fmt.Sprintf("%s/v1/cluster/chunk?n=%d&seed=%d&start=%d&len=%d",
		nd.cfg.Peers[r], n, seed, start, len(dst))
	resp, err := nd.client.Get(u)
	if err != nil {
		return fmt.Errorf("cluster: chunk from node %d: %w", r, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: chunk from node %d: %s: %s", r, resp.Status, msg)
	}
	buf := make([]byte, 8*len(dst))
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		return fmt.Errorf("cluster: chunk from node %d: short read: %w", r, err)
	}
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	nd.proxyReqs.Add(1)
	nd.proxyItems.Add(int64(len(dst)))
	return nil
}

// handleStatus serves a JSON introspection page: the node's place in
// the cluster, the peer list, resident shards and traffic counters —
// the operator's first stop when two nodes disagree (see
// OPERATIONS.md).
func (nd *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	type shardInfo struct {
		N     int64  `json:"n"`
		Seed  uint64 `json:"seed"`
		Start int64  `json:"start"`
		End   int64  `json:"end"`
	}
	var resident []shardInfo
	nd.mu.Lock()
	for el := nd.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*shardEntry)
		if e.built.Load() && e.err == nil {
			resident = append(resident, shardInfo{
				N: e.key.n, Seed: e.key.seed, Start: e.sh.Start, End: e.sh.End,
			})
		}
	}
	nd.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"node":            nd.cfg.Self,
		"nodes":           len(nd.cfg.Peers),
		"procs":           nd.cfg.Procs,
		"peers":           nd.cfg.Peers,
		"max_shards":      nd.cfg.MaxShards,
		"resident_shards": resident,
		"counters": map[string]int64{
			"exchange_requests": nd.exchangeReqs.Load(),
			"exchange_items":    nd.exchangeItems.Load(),
			"chunk_requests":    nd.chunkReqs.Load(),
			"chunk_items":       nd.chunkItems.Load(),
			"proxied_requests":  nd.proxyReqs.Load(),
			"proxied_items":     nd.proxyItems.Load(),
			"shard_builds":      nd.shardBuilds.Load(),
			"shard_build_ns":    nd.shardBuildNs.Load(),
		},
	})
}

// WriteMetrics appends the node's counters to a Prometheus text page,
// in the permd_cluster_* namespace; the service layer calls it from
// /metrics when cluster mode is on.
func (nd *Node) WriteMetrics(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("permd_cluster_exchange_requests_total", "Round-2 exchange requests served to peers.", nd.exchangeReqs.Load())
	counter("permd_cluster_exchange_items_total", "Values shipped to peers in exchange responses.", nd.exchangeItems.Load())
	counter("permd_cluster_chunk_requests_total", "Shard-local chunk requests served to peers.", nd.chunkReqs.Load())
	counter("permd_cluster_chunk_items_total", "Values served to peers from the local shard.", nd.chunkItems.Load())
	counter("permd_cluster_proxied_requests_total", "Chunk requests this node sent to owning peers.", nd.proxyReqs.Load())
	counter("permd_cluster_proxied_items_total", "Values fetched from owning peers.", nd.proxyItems.Load())
	counter("permd_cluster_shard_builds_total", "Shards assembled through the three exchange rounds.", nd.shardBuilds.Load())
	counter("permd_cluster_shard_build_ns_total", "Wall nanoseconds spent assembling shards.", nd.shardBuildNs.Load())
}
