package cluster

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Peer health is tracked first-hand and spread second-hand. First-hand:
// every request this node sends to a peer reports success or failure to
// the tracker — one failure makes the peer suspect (deprioritized),
// failThreshold consecutive failures make it down (skipped while the
// probation window runs). Second-hand: every peer call carries this
// node's view in the X-Permd-Health header, and every response (or
// incoming peer request) is absorbed, so sickness observed by one node
// reaches the others on traffic they were exchanging anyway — no
// background prober, no extra connections. Gossip is deliberately
// weaker than observation: a gossiped "down" only ever makes a locally
// healthy peer suspect. Only first-hand failures take a peer fully out
// of the routing order, and only first-hand success (or a join
// handshake) fully restores it.
//
// Health never changes any byte served — it only reorders which replica
// is asked first. The determinism contract is carried entirely by the
// shard-slot streams.

// peerState orders peers for routing. The numeric values are exported
// on /metrics (permd_cluster_peer_health) and must stay stable.
type peerState int

const (
	stateHealthy peerState = 0
	stateSuspect peerState = 1
	stateDown    peerState = 2
)

func (s peerState) String() string {
	switch s {
	case stateSuspect:
		return "suspect"
	case stateDown:
		return "down"
	}
	return "healthy"
}

// failThreshold is the number of consecutive first-hand failures that
// take a peer from healthy to down.
const failThreshold = 2

// health is one node's view of its peers. All methods are safe for
// concurrent use.
type health struct {
	probeSick time.Duration // how long a down peer is skipped before it is probed again
	// onChange, when set, is told about every state transition (from,
	// to) of a peer — the cluster node wires it to the event bus. It is
	// called with h.mu held, so it must not call back into this tracker
	// (a bus publish does not).
	onChange func(k int, from, to peerState)

	mu    sync.Mutex
	state []peerState
	fails []int       // consecutive first-hand failures
	since []time.Time // last state change
}

func newHealth(peers int, probeSick time.Duration) *health {
	return &health{
		probeSick: probeSick,
		state:     make([]peerState, peers),
		fails:     make([]int, peers),
		since:     make([]time.Time, peers),
	}
}

func (h *health) set(k int, s peerState) {
	if h.state[k] != s {
		from := h.state[k]
		h.state[k] = s
		h.since[k] = time.Now()
		if h.onChange != nil {
			h.onChange(k, from, s)
		}
	}
}

// success records a first-hand answer from peer k and fully restores it.
func (h *health) success(k int) {
	h.mu.Lock()
	h.fails[k] = 0
	h.set(k, stateHealthy)
	h.mu.Unlock()
}

// failure records a first-hand failed call to peer k.
func (h *health) failure(k int) {
	h.mu.Lock()
	h.fails[k]++
	if h.fails[k] >= failThreshold {
		h.set(k, stateDown)
	} else {
		h.set(k, stateSuspect)
	}
	h.mu.Unlock()
}

// suspect records second-hand evidence against peer k: gossip can
// deprioritize a healthy peer but never mark it down.
func (h *health) suspect(k int) {
	h.mu.Lock()
	if h.state[k] == stateHealthy {
		h.set(k, stateSuspect)
	}
	h.mu.Unlock()
}

// snapshot returns the current state of every peer.
func (h *health) snapshot() []peerState {
	h.mu.Lock()
	out := append([]peerState(nil), h.state...)
	h.mu.Unlock()
	return out
}

// rank orders candidate peer indices for a read: healthy first, then
// suspect, then down peers whose probation window has elapsed, then
// down peers — the last resort, kept so a fully sick replica set still
// gets one honest attempt instead of a synthetic error. The sort is
// stable, so the caller's preference order (primary replica first)
// breaks ties.
func (h *health) rank(cands []int) []int {
	h.mu.Lock()
	score := func(k int) int {
		switch h.state[k] {
		case stateHealthy:
			return 0
		case stateSuspect:
			return 1
		default:
			if time.Since(h.since[k]) >= h.probeSick {
				return 2
			}
			return 3
		}
	}
	out := append([]int(nil), cands...)
	sort.SliceStable(out, func(i, j int) bool { return score(out[i]) < score(out[j]) })
	h.mu.Unlock()
	return out
}

// gossip encodes the non-healthy part of this node's view for the
// X-Permd-Health header: "1:d,3:s" — peer index, colon, state letter.
// An empty string means every peer looks healthy from here.
func (h *health) gossip() string {
	h.mu.Lock()
	var sb strings.Builder
	for k, s := range h.state {
		if s == stateHealthy {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(k))
		sb.WriteByte(':')
		if s == stateDown {
			sb.WriteByte('d')
		} else {
			sb.WriteByte('s')
		}
	}
	h.mu.Unlock()
	return sb.String()
}

// absorb merges a peer's gossiped view into this node's. Entries about
// this node itself and about the sender are ignored — a node is never
// talked into distrusting its own counterparty mid-call, and never
// trusts hearsay about itself. Malformed entries are skipped: the
// header is advisory, not load-bearing.
func (h *health) absorb(hdr string, sender, self int) {
	if hdr == "" {
		return
	}
	for _, ent := range strings.Split(hdr, ",") {
		idx, st, ok := strings.Cut(ent, ":")
		if !ok {
			continue
		}
		k, err := strconv.Atoi(idx)
		if err != nil || k < 0 || k >= len(h.state) || k == self || k == sender {
			continue
		}
		if st == "d" || st == "s" {
			h.suspect(k)
		}
	}
}
