// Package cluster realizes the paper's coarse grained model across real
// machine boundaries: N permd peers cooperate to compute the exact
// blocked CGM permutation of internal/engine (PermuteSliceCGM) in the
// paper's O(1) communication rounds, over HTTP, with R-way shard
// replication for fault tolerance.
//
// The decomposition is the engine's: p even blocks (p = Config.Procs,
// the cluster-wide decomposition width), grouped contiguously into N
// shard slots — slot k is the block range blockSpan(p, N, k) and the
// index range ShardRange(n, k). A node builds a slot's shard in three
// rounds:
//
//	round 1  every node samples the p x p communication matrix locally
//	         from stream 0 of the shared seed — no network; the matrix
//	         is a pure function of (seed, n, p), so all nodes hold
//	         identical copies by construction;
//	round 2  the h-relation: the label arrangements of every source
//	         block are drawn from the blocks' streams — locally for
//	         blocks of slots this node replicates, from a duty-holding
//	         peer for the rest — and each received payload segment is
//	         verified against the locally sampled matrix entry it
//	         realizes, so a seed or width mismatch is detected, not
//	         silently mixed;
//	round 3  each target block of the slot is arranged in place from
//	         its own stream (engine.LocalShuffle on the engine's worker
//	         pool) — again no network.
//
// Replication rides the same fact that makes the rounds cheap: a shard
// slot's bytes are a pure function of (seed, n, p, slot) — every input
// to the three rounds is derived from the shared seed's jump-separated
// streams, never from which machine runs them. With Config.Replicas =
// R, slot k is owned by the R nodes (k, k+1, … k+R-1 mod N), each of
// which derives identical bytes independently; fault tolerance
// therefore needs no data migration, only re-routing. Reads of a
// remote slot prefer the primary replica, hedge to the next one after
// Config.HedgeAfter, and fail over on error; peer health is tracked
// first-hand and gossiped on the headers of calls the nodes were
// already making (see health.go). A dead peer is survivable exactly
// when R >= 2; with R = 1 the failure surfaces as an error naming the
// peer and the round (see PeerError), never as partial or mixed bytes.
//
// Because rounds 1 and 3 consume exactly the streams the single-process
// engine consumes and round 2 reproduces its routing, the assembled
// cluster permutation is byte-identical to PermuteSliceCGM over the
// same (seed, n, p) — regardless of N, R, which replica served which
// span, or how many failures were absorbed along the way. This is the
// network determinism contract stated in ARCHITECTURE.md and enforced
// by the drill tests. Exactness is inherited the same way: the law is
// Algorithm 1 with the exact fixed-margin matrix, uniform over all n!
// permutations.
package cluster

import (
	"container/list"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"randperm/internal/commat"
	"randperm/internal/core"
	"randperm/internal/engine"
	"randperm/internal/events"
)

// Config wires one node into a cluster. All nodes must agree on Procs,
// Replicas and on the order (and count) of Peers — the /v1/cluster/join
// handshake verifies exactly this (see Geometry); each node differs
// only in Self. The zero values of the sizing fields get defaults from
// New.
type Config struct {
	// Self is this node's index in Peers.
	Self int
	// Peers lists the base URLs of every node in the cluster, in the
	// cluster-wide node order — Peers[Self] is this node and is never
	// dialed. A single-element Peers is a valid one-node cluster that
	// performs no network traffic at all.
	Peers []string
	// Procs is the cluster-wide decomposition width p: the total block
	// count across all nodes (default 8). It must be at least
	// len(Peers) so every slot owns at least one block, and every node
	// must use the same value — it is part of the permutation's
	// identity, exactly as on a single machine.
	Procs int
	// Replicas is the shard replication factor R (default 1): shard
	// slot k is owned by nodes (k, k+1, … k+R-1) mod len(Peers), each
	// of which derives the slot's bytes independently from the shared
	// streams. R must not exceed the cluster size. R = 1 is the
	// fail-stop mode: any dead peer errors reads that need it. R >= 2
	// survives R-1 dead peers per slot with no byte ever changing.
	Replicas int
	// Workers caps this node's local pool goroutines (<= 0 means
	// GOMAXPROCS). Purely local: it cannot affect any byte served.
	Workers int
	// MaxShards caps the node's shard cache (default 8 * Replicas, so
	// the default working set scales with replica duty). Each resident
	// shard for a size-n domain holds about 8n/len(Peers) bytes.
	MaxShards int
	// MaxN, when positive, bounds the domain size the peer-facing
	// endpoints accept — the cluster-side mirror of the service
	// layer's materialization gate, so an unauthenticated request to
	// /v1/cluster/* cannot trigger an arbitrarily large arrangement or
	// shard build that the public API would have refused. The permd
	// service wires its own -max-n here.
	MaxN int64
	// HedgeAfter is the latency budget a remote read gives the first
	// replica before firing the same request at the next one; first
	// answer wins and the loser is cancelled through its context. The
	// zero value means the 50 ms default; negative disables hedging
	// (reads still fail over on error). Tuning guidance lives in
	// OPERATIONS.md.
	HedgeAfter time.Duration
	// ProbeSick is how long a peer marked down by first-hand failures
	// is skipped by routing before it is probed again (default 2 s). A
	// rejoining peer clears its sick mark immediately via the join
	// handshake instead of waiting this out.
	ProbeSick time.Duration
	// Client performs the peer requests (default: 60 s timeout).
	Client *http.Client
	// Events, when non-nil, receives the node's operational events:
	// cluster_round per completed build round, hedge/failover outcomes
	// on routed reads, peer_health_change transitions and join_result
	// handshakes. Purely observational — best-effort by the bus
	// contract, and never on the wire path of a byte served.
	Events *events.Bus
}

// Node is one member of the cluster: it computes and caches shards for
// every slot it replicates, serves the /v1/cluster/* endpoints to its
// peers, and hands out Permuter handles that route any index range to
// a live owner.
type Node struct {
	cfg    Config
	client *http.Client
	health *health

	mu     sync.Mutex
	shards map[shardKey]*list.Element // value: *shardEntry
	lru    *list.List                 // front = most recently used

	// Counters for /v1/cluster/status and the permd /metrics page.
	exchangeReqs  atomic.Int64 // exchange requests served to peers
	exchangeItems atomic.Int64 // values shipped in exchange responses
	chunkReqs     atomic.Int64 // shard-local chunk requests served
	chunkItems    atomic.Int64 // values served from local shards
	proxyReqs     atomic.Int64 // chunk requests this node sent to peers
	proxyItems    atomic.Int64 // values fetched from peers
	shardBuilds   atomic.Int64 // shards assembled (cache misses)
	shardBuildNs  atomic.Int64 // wall time spent assembling shards
	hedgedReqs    atomic.Int64 // secondary replica requests fired by the hedge timer
	hedgeWins     atomic.Int64 // hedged requests that answered first
	failovers     atomic.Int64 // replica requests fired because an earlier one failed
	joinReqs      atomic.Int64 // join handshakes served to peers
}

// New validates cfg and returns the node. It performs no network I/O:
// peers are only contacted when a shard build, a routed chunk or a Join
// needs them.
func New(cfg Config) (*Node, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: need at least one peer URL")
	}
	if cfg.Self < 0 || cfg.Self >= len(cfg.Peers) {
		return nil, fmt.Errorf("cluster: node index %d outside [0, %d)", cfg.Self, len(cfg.Peers))
	}
	if cfg.Procs == 0 {
		cfg.Procs = 8
	}
	if cfg.Procs < len(cfg.Peers) {
		return nil, fmt.Errorf("cluster: decomposition width %d smaller than cluster size %d — every node must own at least one block", cfg.Procs, len(cfg.Peers))
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > len(cfg.Peers) {
		return nil, fmt.Errorf("cluster: replication factor %d exceeds cluster size %d", cfg.Replicas, len(cfg.Peers))
	}
	if cfg.MaxShards <= 0 {
		cfg.MaxShards = 8 * cfg.Replicas
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = 50 * time.Millisecond
	}
	if cfg.ProbeSick <= 0 {
		cfg.ProbeSick = 2 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	nd := &Node{
		cfg:    cfg,
		client: client,
		health: newHealth(len(cfg.Peers), cfg.ProbeSick),
		shards: make(map[shardKey]*list.Element),
		lru:    list.New(),
	}
	nd.health.onChange = func(k int, from, to peerState) {
		ev := events.New(events.TypePeerHealthChange)
		ev.Peer = k
		ev.State = to.String()
		ev.Detail = from.String()
		nd.publish(ev)
	}
	return nd, nil
}

// publish offers ev to the configured event bus, if any. Safe on a
// node without one — the drills and library users run bus-less.
func (nd *Node) publish(ev events.Event) {
	if nd.cfg.Events != nil {
		nd.cfg.Events.Publish(ev)
	}
}

// publishRound reports one completed (or failed) build round for slot's
// shard of the (seed, n) permutation.
func (nd *Node) publishRound(slot, round int, n int64, seed uint64, d time.Duration, detail string) {
	ev := events.New(events.TypeClusterRound)
	ev.Peer = nd.cfg.Self
	ev.Slot = slot
	ev.Round = round
	ev.N = n
	ev.Seed = seed
	ev.Ns = d.Nanoseconds()
	ev.Detail = detail
	nd.publish(ev)
}

// Self returns this node's index; Nodes the cluster size; Procs the
// cluster-wide decomposition width; Replicas the replication factor.
func (nd *Node) Self() int     { return nd.cfg.Self }
func (nd *Node) Nodes() int    { return len(nd.cfg.Peers) }
func (nd *Node) Procs() int    { return nd.cfg.Procs }
func (nd *Node) Replicas() int { return nd.cfg.Replicas }

// blockSpan returns the contiguous block range [lo, hi) slot k owns out
// of p blocks distributed as evenly as possible over `nodes` slots (the
// first p mod nodes slots own one extra block).
func blockSpan(p, nodes, k int) (lo, hi int) {
	q, r := p/nodes, p%nodes
	lo = k*q + min(k, r)
	hi = lo + q
	if k < r {
		hi++
	}
	return lo, hi
}

// ownerOfBlock inverts blockSpan: the slot owning block b.
func ownerOfBlock(p, nodes, b int) int {
	q, r := p/nodes, p%nodes
	if t := r * (q + 1); b < t {
		return b / (q + 1)
	} else {
		return r + (b-t)/q
	}
}

// blockOfIndex returns the even-layout block containing global index
// idx, inverting core.EvenBlocks arithmetic without materializing it.
func blockOfIndex(n int64, p int, idx int64) int {
	base, rem := n/int64(p), n%int64(p)
	if t := rem * (base + 1); idx < t {
		return int(idx / (base + 1))
	} else {
		return int(rem + (idx-t)/base)
	}
}

// replicasOf returns the nodes owning shard slot k, primary first: the
// R consecutive nodes starting at k, mod the cluster size.
func (nd *Node) replicasOf(slot int) []int {
	out := make([]int, nd.cfg.Replicas)
	for j := range out {
		out[j] = (slot + j) % len(nd.cfg.Peers)
	}
	return out
}

// hasDuty reports whether node k is one of slot's replicas.
func (nd *Node) hasDuty(k, slot int) bool {
	d := k - slot
	if d < 0 {
		d += len(nd.cfg.Peers)
	}
	return d < nd.cfg.Replicas
}

// duties returns the slots node k replicates, its own slot first.
func (nd *Node) duties(k int) []int {
	nodes := len(nd.cfg.Peers)
	out := make([]int, nd.cfg.Replicas)
	for j := range out {
		out[j] = ((k-j)%nodes + nodes) % nodes
	}
	return out
}

// ShardRange returns the index range [lo, hi) of the domain [0, n) that
// shard slot k covers: the concatenation of its contiguous target
// blocks.
func (nd *Node) ShardRange(n int64, k int) (lo, hi int64) {
	off := blockOffsets(n, nd.cfg.Procs)
	blo, bhi := blockSpan(nd.cfg.Procs, len(nd.cfg.Peers), k)
	return off[blo], off[bhi]
}

// Owner returns the shard slot covering global output index idx of a
// size-n domain — which is also the index of the slot's primary
// replica node. With Replicas > 1 the full owner set is the R nodes
// starting there.
func (nd *Node) Owner(n, idx int64) int {
	return ownerOfBlock(nd.cfg.Procs, len(nd.cfg.Peers), blockOfIndex(n, nd.cfg.Procs, idx))
}

// blockOffsets returns the p+1 prefix offsets of core.EvenBlocks(n, p).
func blockOffsets(n int64, p int) []int64 {
	sizes := core.EvenBlocks(n, p)
	off := make([]int64, p+1)
	for i, s := range sizes {
		off[i+1] = off[i] + s
	}
	return off
}

// shardKey identifies one shard this node can hold. Procs and the node
// layout are fixed per Node, so (slot, n, seed) suffices — and because
// a slot's bytes are independent of which replica computes them, the
// key needs no node component.
type shardKey struct {
	slot int
	n    int64
	seed uint64
}

// Shard is one slot's slice of one permutation: Vals[i] == π(Start+i)
// for the cluster permutation π of (seed, n, Procs).
type Shard struct {
	Start, End int64
	Vals       []int64
}

// shardEntry is one cache slot with single-flight construction,
// mirroring the service handle cache: racing requests share one build.
type shardEntry struct {
	key   shardKey
	once  sync.Once
	sh    *Shard
	err   error
	built atomic.Bool // set after once.Do completes
}

// shard returns the cached shard for (slot, n, seed), building it
// (once, shared across racing callers) on a miss. Build failures are
// not cached.
func (nd *Node) shard(slot int, n int64, seed uint64) (*Shard, error) {
	key := shardKey{slot: slot, n: n, seed: seed}
	nd.mu.Lock()
	var e *shardEntry
	if el, ok := nd.shards[key]; ok {
		nd.lru.MoveToFront(el)
		e = el.Value.(*shardEntry)
	} else {
		e = &shardEntry{key: key}
		nd.shards[key] = nd.lru.PushFront(e)
		for nd.lru.Len() > nd.cfg.MaxShards {
			oldest := nd.lru.Back()
			nd.lru.Remove(oldest)
			delete(nd.shards, oldest.Value.(*shardEntry).key)
		}
	}
	nd.mu.Unlock()

	e.once.Do(func() {
		began := time.Now()
		e.sh, e.err = nd.buildShard(slot, n, seed)
		if e.err == nil {
			nd.shardBuilds.Add(1)
			nd.shardBuildNs.Add(time.Since(began).Nanoseconds())
		}
		e.built.Store(true)
	})
	if e.err != nil {
		nd.mu.Lock()
		if el, ok := nd.shards[key]; ok && el.Value.(*shardEntry) == e {
			nd.lru.Remove(el)
			delete(nd.shards, key)
		}
		nd.mu.Unlock()
		return nil, e.err
	}
	return e.sh, nil
}

// shardResident reports whether the (slot, n, seed) shard is built,
// without building it. An entry that is still mid-build reports false.
func (nd *Node) shardResident(slot int, n int64, seed uint64) bool {
	nd.mu.Lock()
	el, ok := nd.shards[shardKey{slot: slot, n: n, seed: seed}]
	nd.mu.Unlock()
	if !ok {
		return false
	}
	e := el.Value.(*shardEntry)
	return e.built.Load() && e.err == nil
}

// buildShard runs the three rounds for slot's shard of the (seed, n)
// permutation. The slot need not be this node's own: a replica build
// runs the identical rounds and produces identical bytes, because
// nothing below depends on Self except which source blocks are
// recomputed locally versus fetched — and both paths realize the same
// matrix entries from the same streams.
func (nd *Node) buildShard(slot int, n int64, seed uint64) (*Shard, error) {
	p, nodes, self := nd.cfg.Procs, len(nd.cfg.Peers), nd.cfg.Self
	sizes := core.EvenBlocks(n, p)
	off := blockOffsets(n, p)
	blo, bhi := blockSpan(p, nodes, slot)
	start, end := off[blo], off[bhi]
	vals := make([]int64, end-start)

	// Round 1: the communication matrix, sampled locally. Stream 0 of
	// the shared seed — every node derives the same matrix.
	began := time.Now()
	streams := engine.CGMStreams(seed, p)
	a := commat.SampleSeq(streams[0], sizes, sizes)
	nd.publishRound(slot, 1, n, seed, time.Since(began), "matrix")

	// Within owned target block j, source i's segment begins at the
	// column prefix sum colCum[j-blo][i] (sources in rank order — the
	// same layout scatterStarts gives the single-process engine).
	colCum := make([][]int64, bhi-blo)
	for j := blo; j < bhi; j++ {
		cum := make([]int64, p+1)
		for i := 0; i < p; i++ {
			cum[i+1] = cum[i] + a.At(i, j)
		}
		colCum[j-blo] = cum
	}
	// place copies source i's segment for owned target j.
	place := func(i, j int, seg []int64) {
		base := off[j] - start + colCum[j-blo][i]
		copy(vals[base:base+int64(len(seg))], seg)
	}

	// Round 2, local half: every source block belonging to a slot this
	// node replicates is recomputed locally from its stream — replicas
	// are free, so no wire traffic is spent on payloads this node can
	// derive itself.
	began = time.Now()
	for i := 0; i < p; i++ {
		if !nd.hasDuty(self, ownerOfBlock(p, nodes, i)) {
			continue
		}
		labels := engine.ArrangeRow(streams[1+i], a.Row(i))
		fill := make([]int64, bhi-blo)
		for t, lab := range labels {
			j := int(lab)
			if j < blo || j >= bhi {
				continue
			}
			base := off[j] - start + colCum[j-blo][i]
			vals[base+fill[j-blo]] = off[i] + int64(t)
			fill[j-blo]++
		}
	}

	// Round 2, remote half: the h-relation. For every source slot this
	// node does not replicate, fetch the payloads its blocks route to
	// the target slot from one of that slot's duty holders — primary
	// first, failing over through the replica set; each received
	// segment is verified against our own matrix entry before
	// placement. Slots are fetched concurrently — their target segments
	// are disjoint by construction.
	var wg sync.WaitGroup
	errs := make([]error, nodes)
	for s := 0; s < nodes; s++ {
		if nd.hasDuty(self, s) {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = nd.fetchExchangeSlot(s, slot, n, seed, a, place)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// The failed exchange is reported as the round's event too
			// (Detail "failed"), so an event-stream consumer sees the
			// round the PeerError names without parsing error strings.
			nd.publishRound(slot, 2, n, seed, time.Since(began), "failed")
			return nil, err
		}
	}
	nd.publishRound(slot, 2, n, seed, time.Since(began), "exchange")

	// Round 3: arrange every owned target block in place from its own
	// stream, on the engine's worker pool.
	began = time.Now()
	pool := engine.NewPool(min(nd.workers(), bhi-blo), seed)
	defer pool.Close()
	if err := pool.For(bhi-blo, func(jj int) {
		j := blo + jj
		blk := vals[off[j]-start : off[j+1]-start]
		engine.LocalShuffle(streams[1+p+j], blk)
	}); err != nil {
		return nil, err
	}
	nd.publishRound(slot, 3, n, seed, time.Since(began), "arrange")
	return &Shard{Start: start, End: end, Vals: vals}, nil
}

func (nd *Node) workers() int {
	if nd.cfg.Workers > 0 {
		return nd.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}
