package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"randperm/internal/events"
)

// publishJoin reports one handshake resolution: Detail "in" for a
// handshake served to a peer, "out" for one this node dialed; State is
// the outcome ("ok", "mismatch" or "error").
func (nd *Node) publishJoin(peer int, detail, state string) {
	ev := events.New(events.TypeJoinResult)
	ev.Peer = peer
	ev.Detail = detail
	ev.State = state
	nd.publish(ev)
}

// The join handshake is the cluster's membership seam, and it is
// deliberately stateless: because every shard slot's bytes re-derive
// from (seed, n, p, slot), a node that (re)joins has nothing to
// migrate — it only has to prove it will derive the SAME bytes, which
// reduces to agreeing on the geometry (Procs, Replicas, Peers). The
// handshake exchanges a hash of that geometry; a match admits the
// node and clears any sick mark its peers held against it (this is how
// a restarted node returns to the routing order immediately instead of
// waiting out ProbeSick), a mismatch is a hard 409 that the caller
// must treat as fatal. Shards then rebuild lazily from the streams on
// first touch, exactly like a cold start.

// Geometry is the layout every node must agree on for the cluster to
// serve one consistent permutation space. It deliberately excludes
// anything per-request (seed, n) and anything node-local (Workers,
// cache sizes, hedging): those either version the permutation itself
// or cannot affect any byte served.
type Geometry struct {
	Procs    int      `json:"procs"`
	Replicas int      `json:"replicas"`
	Peers    []string `json:"peers"`
}

// Geometry returns this node's view of the cluster layout.
func (nd *Node) Geometry() Geometry {
	return Geometry{
		Procs:    nd.cfg.Procs,
		Replicas: nd.cfg.Replicas,
		Peers:    append([]string(nil), nd.cfg.Peers...),
	}
}

// Hash returns a short hex digest of the canonical JSON encoding —
// what the join handshake actually compares. Two nodes with equal
// hashes derive identical shard bytes for every (seed, n).
func (g Geometry) Hash() string {
	b, _ := json.Marshal(g)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// ErrGeometryMismatch is returned (wrapped) by Join and JoinAll when a
// peer runs a different geometry. It is fatal by design: a node that
// disagrees on Procs, Replicas or the peer list would derive different
// bytes, and must not serve.
var ErrGeometryMismatch = errors.New("cluster: geometry mismatch")

// handleJoin serves GET /v1/cluster/join?node=&hash=: the deterministic
// membership handshake. The response always carries this node's
// geometry and hash, so a joiner can print exactly what disagreed; a
// matching hash additionally clears any down/suspect mark held against
// the joining node — the join IS the rejoin protocol.
func (nd *Node) handleJoin(w http.ResponseWriter, r *http.Request) {
	nd.joinReqs.Add(1)
	q := r.URL.Query()
	node64, err := queryInt64(r, "node")
	node := int(node64)
	if err != nil || node < 0 || node >= len(nd.cfg.Peers) {
		http.Error(w, fmt.Sprintf("cluster: bad node=%q: want an index in [0, %d)", q.Get("node"), len(nd.cfg.Peers)), http.StatusBadRequest)
		return
	}
	g := nd.Geometry()
	hash := g.Hash()
	body := map[string]any{"node": nd.cfg.Self, "geometry": g, "hash": hash}
	w.Header().Set("Content-Type", "application/json")
	if got := q.Get("hash"); got != hash {
		nd.publishJoin(node, "in", "mismatch")
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(body)
		return
	}
	nd.publishJoin(node, "in", "ok")
	if node != nd.cfg.Self {
		nd.health.success(node)
	}
	states := nd.health.snapshot()
	peerHealth := make([]string, len(states))
	for k, s := range states {
		peerHealth[k] = s.String()
	}
	body["peer_health"] = peerHealth
	json.NewEncoder(w).Encode(body)
}

// Join runs the handshake against peer k: it announces this node's
// index and geometry hash and verifies the peer agrees. A geometry
// disagreement returns an error wrapping ErrGeometryMismatch (and
// naming both hashes); an unreachable peer returns a *PeerError. A nil
// error means peer k agreed and has restored this node in its routing
// order.
func (nd *Node) Join(ctx context.Context, k int) error {
	u := fmt.Sprintf("%s/v1/cluster/join?node=%d&hash=%s", nd.cfg.Peers[k], nd.cfg.Self, nd.Geometry().Hash())
	resp, err := nd.peerGet(ctx, k, u)
	if err != nil {
		nd.publishJoin(k, "out", "error")
		return nd.peerError(k, RoundServe, "join", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		nd.publishJoin(k, "out", "ok")
		return nil
	case http.StatusConflict:
		nd.publishJoin(k, "out", "mismatch")
		var remote struct {
			Geometry Geometry `json:"geometry"`
			Hash     string   `json:"hash"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&remote); err != nil {
			return nd.peerError(k, RoundServe, "join", fmt.Errorf("%w: peer refused and sent an unreadable geometry: %v", ErrGeometryMismatch, err))
		}
		return nd.peerError(k, RoundServe, "join", fmt.Errorf(
			"%w: this node %s (p=%d replicas=%d nodes=%d), peer %s (p=%d replicas=%d nodes=%d)",
			ErrGeometryMismatch,
			nd.Geometry().Hash(), nd.cfg.Procs, nd.cfg.Replicas, len(nd.cfg.Peers),
			remote.Hash, remote.Geometry.Procs, remote.Geometry.Replicas, len(remote.Geometry.Peers)))
	default:
		nd.publishJoin(k, "out", "error")
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nd.peerError(k, RoundServe, "join", fmt.Errorf("%s: %s", resp.Status, msg))
	}
}

// JoinAll runs the handshake against every peer, polling unreachable
// ones until ctx expires — the readiness pattern for a cluster whose
// nodes boot concurrently. A geometry mismatch from any peer aborts
// immediately with ErrGeometryMismatch in the chain; peers still
// unreached when ctx expires are reported in the returned error. A nil
// return means every peer agreed on the geometry.
func (nd *Node) JoinAll(ctx context.Context) error {
	pending := make(map[int]error)
	for k := range nd.cfg.Peers {
		if k != nd.cfg.Self {
			pending[k] = nil
		}
	}
	for len(pending) > 0 {
		for k := range pending {
			err := nd.Join(ctx, k)
			if err == nil {
				delete(pending, k)
				continue
			}
			if errors.Is(err, ErrGeometryMismatch) {
				return err
			}
			pending[k] = err
		}
		if len(pending) == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			var errs []error
			for _, err := range pending {
				if err != nil {
					errs = append(errs, err)
				}
			}
			return fmt.Errorf("cluster: join incomplete, %d peer(s) unreached: %w", len(pending), errors.Join(errs...))
		case <-time.After(250 * time.Millisecond):
		}
	}
	return nil
}
