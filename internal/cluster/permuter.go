package cluster

import "fmt"

// Permuter is a handle on the cluster permutation of (seed, n): the
// same bytes engine.PermuteSliceCGM computes in one process, served
// shard by shard across the cluster. It implements the randperm
// ChunkSource contract, so the public streaming API (and the permd
// chunk endpoint behind it) can sit directly on top: a Chunk request is
// split at shard boundaries, the local span is copied from this node's
// shard and every remote span is fetched from its owning peer's
// shard-local chunk endpoint. Routing happens exactly once — peers only
// ever serve their own shard — so no request can loop.
type Permuter struct {
	nd   *Node
	n    int64
	seed uint64
}

// Permuter returns a handle on the (seed, n) cluster permutation. The
// call is free; this node's shard is assembled lazily on first local
// access (or eagerly via Materialize), and remote spans are fetched per
// request.
func (nd *Node) Permuter(n int64, seed uint64) *Permuter {
	return &Permuter{nd: nd, n: n, seed: seed}
}

// Len returns the domain size n.
func (p *Permuter) Len() int64 { return p.n }

// Chunk fills dst with π(start) .. π(start+len(dst)-1), clamped to the
// domain end, and returns how many values were written. Spans owned by
// this node come from the local shard; spans owned by peers are fetched
// over HTTP. The error is nil exactly when every owning node answered.
func (p *Permuter) Chunk(dst []int64, start int64) (int, error) {
	if start < 0 || start > p.n {
		return 0, fmt.Errorf("cluster: Chunk start %d outside [0, %d]", start, p.n)
	}
	m := int64(len(dst))
	if rest := p.n - start; rest < m {
		m = rest
	}
	nd := p.nd
	for pos := start; pos < start+m; {
		k := nd.Owner(p.n, pos)
		_, hi := nd.ShardRange(p.n, k)
		stop := min(hi, start+m)
		span := dst[pos-start : stop-start]
		if k == nd.cfg.Self {
			sh, err := nd.shard(p.n, p.seed)
			if err != nil {
				return 0, err
			}
			copy(span, sh.Vals[pos-sh.Start:])
		} else if err := nd.fetchChunk(k, p.n, p.seed, span, pos); err != nil {
			return 0, err
		}
		pos = stop
	}
	return int(m), nil
}

// Materialize assembles this node's shard now (running the exchange
// rounds with every peer) instead of on first access, and reports the
// error. Remote shards are their owners' to build.
func (p *Permuter) Materialize() error {
	if p.n == 0 {
		return nil
	}
	_, err := p.nd.shard(p.n, p.seed)
	return err
}

// Materialized reports whether this node's shard of the permutation is
// resident.
func (p *Permuter) Materialized() bool {
	return p.nd.shardResident(p.n, p.seed)
}
