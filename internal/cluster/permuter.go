package cluster

import "fmt"

// Permuter is a handle on the cluster permutation of (seed, n): the
// same bytes engine.PermuteSliceCGM computes in one process, served
// shard by shard across the cluster. It implements the randperm
// ChunkSource contract, so the public streaming API (and the permd
// chunk endpoint behind it) can sit directly on top: a Chunk request is
// split at shard-slot boundaries, spans of slots this node replicates
// are copied from local shards, and every remote span is read from the
// slot's replica set — health-ranked, hedged after the latency budget,
// failing over on error. Routing happens exactly once — peers only
// ever serve slots they replicate — so no request can loop.
type Permuter struct {
	nd   *Node
	n    int64
	seed uint64
}

// Permuter returns a handle on the (seed, n) cluster permutation. The
// call is free; local shards are assembled lazily on first access (or
// eagerly via Materialize), and remote spans are fetched per request.
func (nd *Node) Permuter(n int64, seed uint64) *Permuter {
	return &Permuter{nd: nd, n: n, seed: seed}
}

// Len returns the domain size n.
func (p *Permuter) Len() int64 { return p.n }

// Chunk fills dst with π(start) .. π(start+len(dst)-1), clamped to the
// domain end, and returns how many values were written. Spans of slots
// this node replicates come from local shards; the rest are read from
// live replicas over HTTP. The error is nil exactly when every span
// was served; on error, dst may hold spans that preceded the failure —
// callers that promise atomicity (the permd chunk endpoint does) must
// buffer before exposing bytes.
func (p *Permuter) Chunk(dst []int64, start int64) (int, error) {
	if start < 0 || start > p.n {
		return 0, fmt.Errorf("cluster: Chunk start %d outside [0, %d]", start, p.n)
	}
	m := int64(len(dst))
	if rest := p.n - start; rest < m {
		m = rest
	}
	nd := p.nd
	for pos := start; pos < start+m; {
		k := nd.Owner(p.n, pos)
		_, hi := nd.ShardRange(p.n, k)
		stop := min(hi, start+m)
		span := dst[pos-start : stop-start]
		if nd.hasDuty(nd.cfg.Self, k) {
			sh, err := nd.shard(k, p.n, p.seed)
			if err != nil {
				return 0, err
			}
			copy(span, sh.Vals[pos-sh.Start:])
		} else if err := nd.readRemoteSpan(k, p.n, p.seed, span, pos); err != nil {
			return 0, err
		}
		pos = stop
	}
	return int(m), nil
}

// Materialize assembles every shard this node replicates now (running
// the exchange rounds with the needed peers) instead of on first
// access, and reports the first error. With Replicas = R that is R
// shards — a warm replica can serve any slot it owns the moment its
// primary dies. Remote slots outside this node's duty are their
// owners' to build.
func (p *Permuter) Materialize() error {
	if p.n == 0 {
		return nil
	}
	for _, slot := range p.nd.duties(p.nd.cfg.Self) {
		if _, err := p.nd.shard(slot, p.n, p.seed); err != nil {
			return err
		}
	}
	return nil
}

// Materialized reports whether every shard this node replicates is
// resident for this permutation.
func (p *Permuter) Materialized() bool {
	for _, slot := range p.nd.duties(p.nd.cfg.Self) {
		if !p.nd.shardResident(slot, p.n, p.seed) {
			return false
		}
	}
	return true
}
