package binom

import (
	"math"
	"testing"
	"testing/quick"

	"randperm/internal/hyper"
	"randperm/internal/xrand"
)

func TestPMFSumsToOne(t *testing.T) {
	for _, d := range []Dist{{10, 0.3}, {50, 0.5}, {7, 0.9}, {1, 0.01}} {
		sum := 0.0
		for k := int64(0); k <= d.N; k++ {
			sum += d.PMF(k)
		}
		if math.Abs(sum-1) > 1e-10 {
			t.Fatalf("%+v: PMF sums to %g", d, sum)
		}
	}
}

func TestPMFEdges(t *testing.T) {
	d := Dist{N: 5, P: 0}
	if d.PMF(0) != 1 || d.PMF(1) != 0 {
		t.Fatal("p=0 PMF wrong")
	}
	d = Dist{N: 5, P: 1}
	if d.PMF(5) != 1 || d.PMF(4) != 0 {
		t.Fatal("p=1 PMF wrong")
	}
	if !math.IsInf(Dist{5, 0.5}.LogPMF(-1), -1) || !math.IsInf(Dist{5, 0.5}.LogPMF(6), -1) {
		t.Fatal("outside support should be -inf")
	}
}

func TestMeanAgainstPMF(t *testing.T) {
	d := Dist{N: 30, P: 0.37}
	var mean float64
	for k := int64(0); k <= d.N; k++ {
		mean += float64(k) * d.PMF(k)
	}
	if math.Abs(mean-d.Mean()) > 1e-9 {
		t.Fatalf("mean %g vs %g", mean, d.Mean())
	}
}

func TestSampleExact(t *testing.T) {
	src := xrand.NewXoshiro256(1)
	for _, d := range []Dist{{12, 0.25}, {40, 0.5}, {25, 0.85}, {200, 0.03}} {
		const trials = 30000
		counts := make([]int64, d.N+1)
		for i := 0; i < trials; i++ {
			k := Sample(src, d.N, d.P)
			if k < 0 || k > d.N {
				t.Fatalf("%+v: sample %d out of range", d, k)
			}
			counts[k]++
		}
		stat := 0.0
		cells := 0
		var accObs int64
		var accExp float64
		flush := func() {
			if accExp > 0 {
				diff := float64(accObs) - accExp
				stat += diff * diff / accExp
				cells++
			}
			accObs, accExp = 0, 0
		}
		for k := int64(0); k <= d.N; k++ {
			accObs += counts[k]
			accExp += d.PMF(k) * trials
			if accExp >= 5 {
				flush()
			}
		}
		flush()
		df := float64(cells - 1)
		z := 3.09
		limit := df * math.Pow(1-2/(9*df)+z*math.Sqrt(2/(9*df)), 3)
		if stat > limit {
			t.Errorf("%+v: chi2 %.1f > %.1f", d, stat, limit)
		}
	}
}

func TestSampleOneDraw(t *testing.T) {
	cnt := xrand.NewCounting(xrand.NewXoshiro256(2))
	for i := 0; i < 1000; i++ {
		before := cnt.Count()
		Sample(cnt, 100, 0.4)
		if used := cnt.Count() - before; used != 1 {
			t.Fatalf("binomial sample used %d draws", used)
		}
	}
}

func TestSampleDegenerate(t *testing.T) {
	src := xrand.NewXoshiro256(3)
	if Sample(src, 0, 0.5) != 0 {
		t.Fatal("n=0")
	}
	if Sample(src, 10, 0) != 0 {
		t.Fatal("p=0")
	}
	if Sample(src, 10, 1) != 10 {
		t.Fatal("p=1")
	}
}

func TestSamplePanics(t *testing.T) {
	src := xrand.NewXoshiro256(4)
	for _, c := range []struct {
		n int64
		p float64
	}{{-1, 0.5}, {5, -0.1}, {5, 1.1}, {5, math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Sample(%d,%g) did not panic", c.n, c.p)
				}
			}()
			Sample(src, c.n, c.p)
		}()
	}
}

func TestSampleSupportProperty(t *testing.T) {
	src := xrand.NewXoshiro256(5)
	f := func(n16 uint16, p8 uint8) bool {
		n := int64(n16 % 5000)
		p := float64(p8) / 255
		k := Sample(src, n, p)
		return k >= 0 && k <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestHypergeometricConvergesToBinomial checks the classical limit: for
// a huge urn with white fraction q, h(t, w, b) ~ B(t, q). Both samplers
// are exact, so their empirical CDFs must be KS-close.
func TestHypergeometricConvergesToBinomial(t *testing.T) {
	src := xrand.NewXoshiro256(6)
	const trials = 30000
	const tDraws = 40
	const q = 0.3
	const pop = 4000000 // population >> t^2: distributions near-identical
	w := int64(q * pop)
	b := int64(pop) - w

	var hCum, bCum [tDraws + 1]float64
	for i := 0; i < trials; i++ {
		hCum[hyper.Sample(src, tDraws, w, b)]++
		bCum[Sample(src, tDraws, q)]++
	}
	var accH, accB, maxDiff float64
	for k := 0; k <= tDraws; k++ {
		accH += hCum[k] / trials
		accB += bCum[k] / trials
		if d := math.Abs(accH - accB); d > maxDiff {
			maxDiff = d
		}
	}
	// Two-sample KS at alpha=0.001 plus the O(t/pop) model distance.
	limit := 1.95*math.Sqrt(2.0/trials) + float64(tDraws)/float64(pop)
	if maxDiff > limit {
		t.Fatalf("hyper vs binom KS distance %.4f > %.4f", maxDiff, limit)
	}
}

func TestMultinomial(t *testing.T) {
	src := xrand.NewXoshiro256(7)
	weights := []float64{1, 2, 3, 4}
	const n = 10000
	out := Multinomial(src, n, weights)
	var total int64
	for _, v := range out {
		if v < 0 {
			t.Fatal("negative count")
		}
		total += v
	}
	if total != n {
		t.Fatalf("counts sum to %d", total)
	}
	// Category means: n * w_i / 10, sd ~ sqrt(n*q(1-q)) < 50.
	for i, w := range weights {
		want := float64(n) * w / 10
		if math.Abs(float64(out[i])-want) > 6*50 {
			t.Fatalf("category %d count %d far from %g", i, out[i], want)
		}
	}
}

func TestMultinomialEdge(t *testing.T) {
	src := xrand.NewXoshiro256(8)
	out := Multinomial(src, 5, []float64{0, 1, 0})
	if out[0] != 0 || out[1] != 5 || out[2] != 0 {
		t.Fatalf("degenerate multinomial = %v", out)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("zero weights accepted")
			}
		}()
		Multinomial(src, 5, []float64{0, 0})
	}()
}

func BenchmarkSample(b *testing.B) {
	src := xrand.NewXoshiro256(1)
	for i := 0; i < b.N; i++ {
		Sample(src, 10000, 0.3)
	}
}
