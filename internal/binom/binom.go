// Package binom implements the binomial distribution B(n, p). It plays
// two supporting roles in this repository:
//
//   - Cross-validation of the hypergeometric machinery: as the urn
//     population grows with the white fraction held fixed, h(t, w, b)
//     converges to B(t, w/(w+b)); a distribution-level test of that
//     limit exercises both packages against each other.
//   - Analysis of the dart-throwing baseline: destination loads are
//     Binomial(n, 1/p) (marginally), so the restart probability of the
//     capacity check is a binomial tail, which the balance experiments
//     compare against measurement.
//
// The sampler mirrors internal/hyper's design: an exact chop-down
// inverse transform from the mode, consuming exactly one uniform draw,
// accurate for the moderate parameter ranges the repository needs.
package binom

import (
	"math"

	"randperm/internal/numeric"
	"randperm/internal/xrand"
)

// Dist is a binomial distribution: N independent trials with success
// probability P.
type Dist struct {
	N int64
	P float64
}

// Valid reports whether the parameters are meaningful.
func (d Dist) Valid() bool {
	return d.N >= 0 && d.P >= 0 && d.P <= 1 && !math.IsNaN(d.P)
}

// Mean returns N*P.
func (d Dist) Mean() float64 { return float64(d.N) * d.P }

// Variance returns N*P*(1-P).
func (d Dist) Variance() float64 { return float64(d.N) * d.P * (1 - d.P) }

// Mode returns floor((N+1)P) clamped to [0, N].
func (d Dist) Mode() int64 {
	m := int64(math.Floor(float64(d.N+1) * d.P))
	if m < 0 {
		return 0
	}
	if m > d.N {
		return d.N
	}
	return m
}

// LogPMF returns ln P(X = k), or -inf outside [0, N].
func (d Dist) LogPMF(k int64) float64 {
	if k < 0 || k > d.N {
		return math.Inf(-1)
	}
	switch {
	case d.P == 0:
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	case d.P == 1:
		if k == d.N {
			return 0
		}
		return math.Inf(-1)
	}
	return numeric.LogBinom(d.N, k) +
		float64(k)*math.Log(d.P) + float64(d.N-k)*math.Log1p(-d.P)
}

// PMF returns P(X = k).
func (d Dist) PMF(k int64) float64 { return math.Exp(d.LogPMF(k)) }

// Sample draws one exact binomial variate using chop-down inverse
// transform from the mode: exactly one raw uniform draw, O(sd) arithmetic.
// It panics on invalid parameters.
func Sample(src xrand.Source, n int64, p float64) int64 {
	d := Dist{N: n, P: p}
	if !d.Valid() {
		panic("binom: invalid parameters")
	}
	switch {
	case n == 0 || p == 0:
		return 0
	case p == 1:
		return n
	}
	// Exploit symmetry to keep the mode small-ish: sample failures
	// when p > 1/2.
	if p > 0.5 {
		return n - Sample(src, n, 1-p)
	}

	mode := d.Mode()
	pm := math.Exp(d.LogPMF(mode))
	u := xrand.Float64Open(src)
	u -= pm
	if u <= 0 {
		return mode
	}
	// Ratio recurrences:
	//   P(k+1)/P(k) = (n-k)/(k+1) * p/(1-p)
	//   P(k-1)/P(k) = k/(n-k+1) * (1-p)/p
	odds := p / (1 - p)
	pr, pl := pm, pm
	r, l := mode, mode
	for r < n || l > 0 {
		if r < n {
			pr *= float64(n-r) / float64(r+1) * odds
			r++
			u -= pr
			if u <= 0 {
				return r
			}
		}
		if l > 0 {
			pl *= float64(l) / (float64(n-l+1) * odds)
			l--
			u -= pl
			if u <= 0 {
				return l
			}
		}
	}
	return mode
}

// Multinomial draws category counts for n independent trials over the
// given probability weights (which must be non-negative and sum to a
// positive value). It uses the standard binomial chain: O(len(weights))
// binomial draws instead of n categorical draws.
func Multinomial(src xrand.Source, n int64, weights []float64) []int64 {
	var total float64
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("binom: negative multinomial weight")
		}
		total += w
	}
	if total <= 0 {
		panic("binom: weights must sum to a positive value")
	}
	out := make([]int64, len(weights))
	rem := n
	wRem := total
	for i, w := range weights {
		if rem == 0 {
			break
		}
		if i == len(weights)-1 || w >= wRem {
			out[i] = rem
			rem = 0
			break
		}
		k := Sample(src, rem, w/wRem)
		out[i] = k
		rem -= k
		wRem -= w
	}
	return out
}
