// Package mhyper implements the multivariate hypergeometric distribution:
// t balls are drawn without replacement from an urn whose balls come in p
// colors with classes[i] balls of color i; the variate is the vector of
// per-color counts.
//
// This is exactly the distribution of one row-block split of the paper's
// communication matrix (the special case of Problem 2 where the matrix is
// a single row, see Section 3), and Algorithm 2 of the paper is the
// iterative sampler implemented by Sample. SampleRec is the balanced
// recursive variant suggested by Algorithm 4's formulation, which halves
// the color classes; it performs the same number of hypergeometric draws
// arranged as a binary tree, which parallelizes and keeps the conditioning
// populations balanced.
package mhyper

import (
	"math"

	"randperm/internal/hyper"
	"randperm/internal/numeric"
	"randperm/internal/xrand"
)

// Sum returns the total of classes. It panics if any class is negative.
func Sum(classes []int64) int64 {
	var n int64
	for _, c := range classes {
		if c < 0 {
			panic("mhyper: negative class size")
		}
		n += c
	}
	return n
}

// Sample draws a multivariate hypergeometric vector using the paper's
// Algorithm 2: one hypergeometric draw per class, conditioning on the
// remaining draw budget. The result r satisfies sum(r) == t and
// 0 <= r[i] <= classes[i]. It panics if t < 0 or t > Sum(classes).
func Sample(src xrand.Source, t int64, classes []int64) []int64 {
	out := make([]int64, len(classes))
	SampleInto(src, t, classes, out)
	return out
}

// SampleInto is Sample writing into a caller-provided slice, for the hot
// paths of Algorithms 3, 5 and 6 that sample thousands of rows. out must
// have len(out) == len(classes).
func SampleInto(src xrand.Source, t int64, classes []int64, out []int64) {
	if len(out) != len(classes) {
		panic("mhyper: output length mismatch")
	}
	n := Sum(classes)
	if t < 0 || t > n {
		panic("mhyper: draw count outside [0, population]")
	}
	rem := t // balls still to draw
	for i, c := range classes {
		if rem == 0 {
			out[i] = 0
			n -= c
			continue
		}
		// Draws of color i among rem draws from c whites and
		// n-c blacks (the not-yet-considered colors).
		k := hyper.Sample(src, rem, c, n-c)
		out[i] = k
		rem -= k
		n -= c
	}
	if rem != 0 {
		panic("mhyper: internal accounting error")
	}
}

// SampleRec draws the same distribution by recursive halving of the color
// classes: the draw budget is first split between the left and right
// halves with a single hypergeometric draw, then each half is sampled
// independently (Proposition 6 of the paper). Both samplers are exact;
// they differ only in how the conditioning chain is arranged.
func SampleRec(src xrand.Source, t int64, classes []int64) []int64 {
	n := Sum(classes)
	if t < 0 || t > n {
		panic("mhyper: draw count outside [0, population]")
	}
	out := make([]int64, len(classes))
	sampleRec(src, t, n, classes, out)
	return out
}

func sampleRec(src xrand.Source, t, n int64, classes []int64, out []int64) {
	switch len(classes) {
	case 0:
		return
	case 1:
		out[0] = t
		return
	}
	q := len(classes) / 2
	var left int64
	for _, c := range classes[:q] {
		left += c
	}
	toLeft := hyper.Sample(src, t, left, n-left)
	sampleRec(src, toLeft, left, classes[:q], out[:q])
	sampleRec(src, t-toLeft, n-left, classes[q:], out[q:])
}

// LogPMF returns the log-probability of the outcome vector k for t draws
// from the given classes:
//
//	ln [ prod_i C(classes[i], k[i]) / C(n, t) ]
//
// It returns -inf for outcomes outside the support (wrong total, any
// k[i] < 0 or > classes[i]).
func LogPMF(t int64, classes, k []int64) float64 {
	if len(k) != len(classes) {
		return math.Inf(-1)
	}
	var total, n int64
	logp := 0.0
	for i, c := range classes {
		if k[i] < 0 || k[i] > c {
			return math.Inf(-1)
		}
		total += k[i]
		n += c
		logp += numeric.LogBinom(c, k[i])
	}
	if total != t {
		return math.Inf(-1)
	}
	return logp - numeric.LogBinom(n, t)
}

// PMF returns the probability of outcome k.
func PMF(t int64, classes, k []int64) float64 {
	return math.Exp(LogPMF(t, classes, k))
}
