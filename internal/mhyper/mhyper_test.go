package mhyper

import (
	"math"
	"testing"
	"testing/quick"

	"randperm/internal/xrand"
)

func TestSum(t *testing.T) {
	if Sum([]int64{1, 2, 3}) != 6 {
		t.Fatal("Sum wrong")
	}
	if Sum(nil) != 0 {
		t.Fatal("Sum(nil) should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Sum with negative class did not panic")
		}
	}()
	Sum([]int64{1, -1})
}

func TestSampleInvariants(t *testing.T) {
	src := xrand.NewXoshiro256(3)
	classes := []int64{5, 0, 12, 3, 7}
	n := Sum(classes)
	for tt := int64(0); tt <= n; tt++ {
		for rep := 0; rep < 20; rep++ {
			out := Sample(src, tt, classes)
			var total int64
			for i, v := range out {
				if v < 0 || v > classes[i] {
					t.Fatalf("t=%d: out[%d]=%d outside [0,%d]", tt, i, v, classes[i])
				}
				total += v
			}
			if total != tt {
				t.Fatalf("t=%d: outputs sum to %d", tt, total)
			}
		}
	}
}

func TestSampleRecInvariants(t *testing.T) {
	src := xrand.NewXoshiro256(5)
	f := func(seed uint8, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		classes := make([]int64, len(raw))
		var n int64
		for i, r := range raw {
			classes[i] = int64(r % 30)
			n += classes[i]
		}
		tt := int64(seed) % (n + 1)
		out := SampleRec(src, tt, classes)
		var total int64
		for i, v := range out {
			if v < 0 || v > classes[i] {
				return false
			}
			total += v
		}
		return total == tt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplePanics(t *testing.T) {
	src := xrand.NewXoshiro256(7)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("t > population did not panic")
			}
		}()
		Sample(src, 100, []int64{1, 2})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("negative t did not panic")
			}
		}()
		Sample(src, -1, []int64{1, 2})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("mismatched SampleInto did not panic")
			}
		}()
		SampleInto(src, 1, []int64{1, 2}, make([]int64, 3))
	}()
}

func TestLogPMFSumsToOne(t *testing.T) {
	classes := []int64{3, 4, 2}
	n := Sum(classes)
	for tt := int64(0); tt <= n; tt++ {
		sum := 0.0
		forEachOutcome(classes, tt, func(k []int64) {
			sum += PMF(tt, classes, k)
		})
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("t=%d: PMF sums to %g", tt, sum)
		}
	}
}

func TestLogPMFOutsideSupport(t *testing.T) {
	classes := []int64{3, 4}
	if !math.IsInf(LogPMF(2, classes, []int64{1, 2}), -1) {
		t.Fatal("wrong total should be -inf")
	}
	if !math.IsInf(LogPMF(2, classes, []int64{-1, 3}), -1) {
		t.Fatal("negative count should be -inf")
	}
	if !math.IsInf(LogPMF(5, classes, []int64{4, 1}), -1) {
		t.Fatal("count above class size should be -inf")
	}
	if !math.IsInf(LogPMF(2, classes, []int64{2}), -1) {
		t.Fatal("wrong length should be -inf")
	}
}

// forEachOutcome enumerates all vectors k with sum t, 0 <= k_i <= classes_i.
func forEachOutcome(classes []int64, t int64, yield func([]int64)) {
	k := make([]int64, len(classes))
	var rec func(i int, rem int64)
	rec = func(i int, rem int64) {
		if i == len(classes)-1 {
			if rem <= classes[i] {
				k[i] = rem
				yield(k)
			}
			return
		}
		maxV := classes[i]
		if rem < maxV {
			maxV = rem
		}
		for v := int64(0); v <= maxV; v++ {
			k[i] = v
			rec(i+1, rem-v)
		}
	}
	rec(0, t)
}

// chiSquareAgainstPMF verifies a sampler hits the exact multivariate law.
func chiSquareAgainstPMF(t *testing.T, name string, classes []int64, tt int64,
	sample func() []int64) {
	t.Helper()
	type key [8]int64
	toKey := func(k []int64) key {
		var out key
		copy(out[:], k)
		return out
	}
	probs := make(map[key]float64)
	forEachOutcome(classes, tt, func(k []int64) {
		probs[toKey(k)] = PMF(tt, classes, k)
	})
	const trials = 30000
	counts := make(map[key]int64)
	for i := 0; i < trials; i++ {
		counts[toKey(sample())]++
	}
	stat := 0.0
	cells := 0
	for k, p := range probs {
		exp := p * trials
		if exp < 1e-9 {
			if counts[k] > 0 {
				t.Fatalf("%s: impossible outcome %v observed", name, k)
			}
			continue
		}
		d := float64(counts[k]) - exp
		stat += d * d / exp
		cells++
	}
	df := float64(cells - 1)
	z := 3.09
	limit := df * math.Pow(1-2/(9*df)+z*math.Sqrt(2/(9*df)), 3)
	if stat > limit {
		t.Errorf("%s: chi2 = %.1f > %.1f (df %.0f)", name, stat, limit, df)
	}
}

func TestSampleExactDistribution(t *testing.T) {
	src := xrand.NewXoshiro256(11)
	classes := []int64{3, 2, 4}
	chiSquareAgainstPMF(t, "iterative", classes, 4, func() []int64 {
		return Sample(src, 4, classes)
	})
}

func TestSampleRecExactDistribution(t *testing.T) {
	src := xrand.NewXoshiro256(13)
	classes := []int64{3, 2, 4}
	chiSquareAgainstPMF(t, "recursive", classes, 4, func() []int64 {
		return SampleRec(src, 4, classes)
	})
}

func TestSampleRecMatchesIterativeMarginals(t *testing.T) {
	// Marginal of class i is hypergeometric; both samplers must agree
	// on the marginal mean within Monte Carlo error.
	src := xrand.NewXoshiro256(17)
	classes := []int64{100, 400, 250, 250}
	tt := int64(300)
	const trials = 20000
	var sumIter, sumRec float64
	for i := 0; i < trials; i++ {
		sumIter += float64(Sample(src, tt, classes)[0])
		sumRec += float64(SampleRec(src, tt, classes)[0])
	}
	want := float64(tt) * float64(classes[0]) / float64(Sum(classes))
	for name, got := range map[string]float64{
		"iterative": sumIter / trials, "recursive": sumRec / trials,
	} {
		if math.Abs(got-want) > 0.5 {
			t.Fatalf("%s marginal mean %.2f, want %.2f", name, got, want)
		}
	}
}

func TestSampleEmptyAndSingleton(t *testing.T) {
	src := xrand.NewXoshiro256(19)
	if out := Sample(src, 0, []int64{}); len(out) != 0 {
		t.Fatal("empty classes should give empty output")
	}
	out := Sample(src, 5, []int64{5})
	if len(out) != 1 || out[0] != 5 {
		t.Fatalf("singleton class: %v", out)
	}
	out = SampleRec(src, 5, []int64{5})
	if len(out) != 1 || out[0] != 5 {
		t.Fatalf("recursive singleton: %v", out)
	}
}

func TestSampleZeroClasses(t *testing.T) {
	src := xrand.NewXoshiro256(23)
	classes := []int64{0, 7, 0, 3, 0}
	out := Sample(src, 10, classes)
	if out[0] != 0 || out[2] != 0 || out[4] != 0 {
		t.Fatalf("zero classes received draws: %v", out)
	}
	if out[1] != 7 || out[3] != 3 {
		t.Fatalf("full draw should saturate classes: %v", out)
	}
}

func BenchmarkSampleP64(b *testing.B) {
	src := xrand.NewXoshiro256(1)
	classes := make([]int64, 64)
	for i := range classes {
		classes[i] = 1 << 14
	}
	tt := Sum(classes) / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampleInto(src, tt, classes, make([]int64, 64))
	}
}
