package xrand

import "testing"

// TestSplitMix64ReferenceVector pins the generator to the published
// reference outputs (Vigna's splitmix64.c with seed 1234567), guarding
// against silent constant or shift typos that statistical tests would
// take much longer to notice.
func TestSplitMix64ReferenceVector(t *testing.T) {
	want := []uint64{
		6457827717110365317,
		3203168211198807973,
		9817491932198370423,
		4593380528125082431,
		16408922859458223821,
	}
	s := NewSplitMix64(1234567)
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("output %d = %d, want %d", i, got, w)
		}
	}
}

// TestXoshiroFirstOutput pins the xoshiro256++ output function on a
// hand-computable state: with s = {1, 2, 3, 4} the first output is
// rotl(s0+s3, 23) + s0 = rotl(5, 23) + 1 = (5 << 23) + 1 = 41943041.
func TestXoshiroFirstOutput(t *testing.T) {
	x := &Xoshiro256{s: [4]uint64{1, 2, 3, 4}}
	if got := x.Uint64(); got != 41943041 {
		t.Fatalf("first output = %d, want 41943041", got)
	}
}

// TestXoshiroStateUpdate verifies one full state transition by hand:
// after the first step from {1,2,3,4} the state must be
// {7, 0, 262146, rotl(6,45)}.
func TestXoshiroStateUpdate(t *testing.T) {
	x := &Xoshiro256{s: [4]uint64{1, 2, 3, 4}}
	x.Uint64()
	want := [4]uint64{7, 0, 262146, 6 << 45}
	if x.s != want {
		t.Fatalf("state after one step = %v, want %v", x.s, want)
	}
}
