package xrand

import (
	"math"
	"testing"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(12345)
	b := NewSplitMix64(12345)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSplitMix64SeedsDiffer(t *testing.T) {
	a := NewSplitMix64(1)
	b := NewSplitMix64(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSplitMix64Reseed(t *testing.T) {
	a := NewSplitMix64(7)
	first := a.Uint64()
	a.Uint64()
	a.Seed(7)
	if got := a.Uint64(); got != first {
		t.Fatalf("reseed did not reset the sequence: got %d want %d", got, first)
	}
}

func TestSplitMix64ZeroSeedUsable(t *testing.T) {
	z := NewSplitMix64(0)
	if z.Uint64() == 0 && z.Uint64() == 0 {
		t.Fatal("zero seed produced zero stream")
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a := NewXoshiro256(99)
	b := NewXoshiro256(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestXoshiroZeroSeedValid(t *testing.T) {
	x := NewXoshiro256(0)
	var orAll uint64
	for i := 0; i < 64; i++ {
		orAll |= x.Uint64()
	}
	if orAll == 0 {
		t.Fatal("zero seed yields a stuck generator")
	}
}

func TestXoshiroClone(t *testing.T) {
	a := NewXoshiro256(5)
	a.Uint64()
	c := a.Clone()
	for i := 0; i < 100; i++ {
		if a.Uint64() != c.Uint64() {
			t.Fatalf("clone diverged at step %d", i)
		}
	}
	// Advancing the clone must not affect the original.
	before := a.Clone()
	c.Uint64()
	for i := 0; i < 10; i++ {
		if a.Uint64() != before.Uint64() {
			t.Fatal("advancing a clone perturbed the original")
		}
	}
}

func TestXoshiroJumpDisjoint(t *testing.T) {
	// Outputs after a jump must not replay the pre-jump prefix.
	a := NewXoshiro256(11)
	prefix := make(map[uint64]bool)
	for i := 0; i < 4096; i++ {
		prefix[a.Uint64()] = true
	}
	b := NewXoshiro256(11)
	b.Jump()
	collisions := 0
	for i := 0; i < 4096; i++ {
		if prefix[b.Uint64()] {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("jumped stream replayed %d values of the base stream", collisions)
	}
}

func TestXoshiroLongJumpDiffersFromJump(t *testing.T) {
	a := NewXoshiro256(13)
	a.Jump()
	b := NewXoshiro256(13)
	b.LongJump()
	if a.Uint64() == b.Uint64() {
		t.Fatal("Jump and LongJump landed on the same state")
	}
}

func TestNewStreamsIndependentAndStable(t *testing.T) {
	s1 := NewStreams(21, 4)
	s2 := NewStreams(21, 8)
	// Stream i must not depend on k.
	for i := 0; i < 4; i++ {
		for j := 0; j < 32; j++ {
			if s1[i].Uint64() != s2[i].Uint64() {
				t.Fatalf("stream %d depends on the stream count", i)
			}
		}
	}
	// Distinct streams must differ immediately.
	v := make(map[uint64]bool)
	for i := 4; i < 8; i++ {
		x := s2[i].Uint64()
		if v[x] {
			t.Fatalf("streams share outputs")
		}
		v[x] = true
	}
}

func TestNewLongStreamsIndependentAndStable(t *testing.T) {
	s1 := NewLongStreams(21, 2)
	s2 := NewLongStreams(21, 4)
	// Stream i must not depend on k.
	for i := 0; i < 2; i++ {
		for j := 0; j < 32; j++ {
			if s1[i].Uint64() != s2[i].Uint64() {
				t.Fatalf("long stream %d depends on the stream count", i)
			}
		}
	}
	// Long streams must differ from each other and from the Jump-family
	// streams of the same seed (the two families coexist in the engine:
	// blocks on Jump streams, pool workers on LongJump streams).
	v := make(map[uint64]bool)
	for _, s := range NewStreams(21, 8) {
		v[s.Uint64()] = true
	}
	for i, s := range NewLongStreams(21, 4) {
		x := s.Uint64()
		if v[x] {
			t.Fatalf("long stream %d collides with another stream head", i)
		}
		v[x] = true
	}
}

func TestCounting(t *testing.T) {
	c := NewCounting(NewSplitMix64(3))
	if c.Count() != 0 {
		t.Fatal("fresh counter not zero")
	}
	for i := 0; i < 17; i++ {
		c.Uint64()
	}
	if c.Count() != 17 {
		t.Fatalf("count = %d, want 17", c.Count())
	}
	c.Reset()
	if c.Count() != 0 {
		t.Fatal("reset did not zero the counter")
	}
	if c.Unwrap() == nil {
		t.Fatal("unwrap lost the source")
	}
}

func TestCountingTransparent(t *testing.T) {
	// Counting must not alter the stream.
	raw := NewSplitMix64(8)
	wrapped := NewCounting(NewSplitMix64(8))
	for i := 0; i < 100; i++ {
		if raw.Uint64() != wrapped.Uint64() {
			t.Fatal("counting wrapper altered the stream")
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	src := NewXoshiro256(17)
	for _, n := range []uint64{1, 2, 3, 7, 8, 100, 1 << 33, math.MaxUint64} {
		for i := 0; i < 2000; i++ {
			if v := Uint64n(src, n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	Uint64n(NewSplitMix64(1), 0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			Intn(NewSplitMix64(1), n)
		}()
	}
}

func TestUint64nUniform(t *testing.T) {
	// Coarse uniformity: chi-square by hand over 10 cells.
	src := NewXoshiro256(23)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[Uint64n(src, n)]++
	}
	exp := float64(trials) / n
	stat := 0.0
	for _, c := range counts {
		d := float64(c) - exp
		stat += d * d / exp
	}
	// df=9; 99.9th percentile ~ 27.9.
	if stat > 27.9 {
		t.Fatalf("Uint64n looks non-uniform: chi2 = %.1f", stat)
	}
}

func TestFloat64Range(t *testing.T) {
	src := NewXoshiro256(29)
	for i := 0; i < 100000; i++ {
		f := Float64(src)
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	// Force the zero path with a source that returns 0 first.
	s := &stubSource{vals: []uint64{0, 0, 1 << 60}}
	f := Float64Open(s)
	if f == 0 {
		t.Fatal("Float64Open returned 0")
	}
	if f >= 1 {
		t.Fatalf("Float64Open = %g out of (0,1)", f)
	}
}

type stubSource struct {
	vals []uint64
	i    int
}

func (s *stubSource) Uint64() uint64 {
	v := s.vals[s.i%len(s.vals)]
	s.i++
	return v
}

func TestShufflePreservesMultiset(t *testing.T) {
	src := NewXoshiro256(31)
	for _, n := range []int{0, 1, 2, 3, 17, 1000} {
		x := make([]int, n)
		for i := range x {
			x[i] = i
		}
		Shuffle(src, x)
		seen := make([]bool, n)
		for _, v := range x {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("n=%d: shuffle broke the multiset", n)
			}
			seen[v] = true
		}
	}
}

func TestPermValid(t *testing.T) {
	src := NewXoshiro256(37)
	for _, n := range []int{0, 1, 2, 5, 64} {
		p := Perm(src, n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleUniformSmall(t *testing.T) {
	// All 24 permutations of 4 elements, chi-square against uniform.
	src := NewXoshiro256(41)
	const trials = 48000
	counts := make(map[[4]int]int)
	for tr := 0; tr < trials; tr++ {
		x := []int{0, 1, 2, 3}
		Shuffle(src, x)
		var k [4]int
		copy(k[:], x)
		counts[k]++
	}
	if len(counts) != 24 {
		t.Fatalf("only %d of 24 permutations observed", len(counts))
	}
	exp := float64(trials) / 24
	stat := 0.0
	for _, c := range counts {
		d := float64(c) - exp
		stat += d * d / exp
	}
	// df=23; 99.9th percentile ~ 49.7.
	if stat > 49.7 {
		t.Fatalf("Shuffle looks non-uniform: chi2 = %.1f", stat)
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	src := NewXoshiro256(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = src.Uint64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	src := NewXoshiro256(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = Uint64n(src, 1000003)
	}
	_ = sink
}

func BenchmarkShuffle1K(b *testing.B) {
	src := NewXoshiro256(1)
	x := make([]int64, 1024)
	b.SetBytes(1024 * 8)
	for i := 0; i < b.N; i++ {
		Shuffle(src, x)
	}
}
