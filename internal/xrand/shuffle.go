package xrand

// Shuffle permutes x uniformly at random in place using the
// Fisher-Yates/Durstenfeld algorithm: n-1 bounded draws, O(n) time.
//
// This is the reference sequential algorithm of the PRO analysis: the
// parallel Algorithm 1 of the paper must match its total work
// asymptotically (work-optimality) and uses it as the local permutation
// step before and after the communication phase.
func Shuffle[T any](src Source, x []T) {
	for i := len(x) - 1; i > 0; i-- {
		j := Intn(src, i+1)
		x[i], x[j] = x[j], x[i]
	}
}

// Perm returns a uniformly random permutation of {0, ..., n-1} as a slice.
func Perm(src Source, n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := Intn(src, i+1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
