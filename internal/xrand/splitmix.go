package xrand

// SplitMix64 is the 64-bit mixing generator of Steele, Lea and Flood
// ("Fast splittable pseudorandom number generators", OOPSLA 2014).
//
// It is used here in two roles: as the canonical way to expand a single
// user seed into the larger state of Xoshiro256, and as a minimal,
// allocation-free generator for tests. Its period is 2^64.
//
// The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Seed resets the generator state to seed.
func (s *SplitMix64) Seed(seed uint64) { s.state = seed }

// Uint64 returns the next value of the sequence.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

var (
	_ Source = (*SplitMix64)(nil)
	_ Seeder = (*SplitMix64)(nil)
)
