// Package xrand provides the deterministic pseudo-random substrate used by
// every algorithm in this repository.
//
// The package exists instead of math/rand for three reasons that matter to
// the reproduction of Gustedt's PRO resource bounds (Theorem 1 of the
// paper):
//
//  1. Random numbers are a *resource* in the PRO model. The Counting
//     wrapper lets experiments measure exactly how many raw 64-bit draws an
//     algorithm consumes (experiment E2 reproduces the "less than 1.5
//     random numbers per hypergeometric sample" claim).
//  2. Parallel processors need statistically independent streams that are
//     nevertheless reproducible from one seed. Xoshiro256++ provides a
//     2^128 jump function; NewStreams derives one disjoint stream per
//     simulated processor.
//  3. Determinism: given a seed, every sequential and parallel algorithm in
//     this repository produces a reproducible result, which the test suite
//     relies on.
package xrand

// Source is the minimal interface every generator in this package
// implements: a stream of independent, uniformly distributed 64-bit words.
//
// Implementations in this package are NOT safe for concurrent use; in the
// parallel algorithms each simulated processor owns a private Source.
type Source interface {
	// Uint64 returns the next pseudo-random 64-bit value.
	Uint64() uint64
}

// Seeder is implemented by sources whose state can be re-initialized from a
// single 64-bit seed.
type Seeder interface {
	Seed(seed uint64)
}

// Jumper is implemented by sources that can advance their state by a large,
// fixed number of steps (at least 2^64), producing non-overlapping
// subsequences for parallel streams.
type Jumper interface {
	// Jump advances the state as if a very large number of Uint64 calls
	// had been made.
	Jump()
}
