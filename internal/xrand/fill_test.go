package xrand

import "testing"

// TestFillMatchesUint64 pins the batch generator to the scalar one: Fill
// must emit exactly the words len(buf) Uint64 calls would, and leave the
// state where those calls would leave it, for every buffer length —
// that equivalence is what lets the engine's batched hot loops claim
// byte-identical output to their one-draw-at-a-time references.
func TestFillMatchesUint64(t *testing.T) {
	for _, size := range []int{0, 1, 2, 7, 63, 64, 65, 511, 512, 513, 4096} {
		a, b := NewXoshiro256(0xDECAFBAD), NewXoshiro256(0xDECAFBAD)
		buf := make([]uint64, size)
		a.Fill(buf)
		for i, w := range buf {
			if want := b.Uint64(); w != want {
				t.Fatalf("size=%d: Fill[%d] = %#x, Uint64 sequence has %#x", size, i, w, want)
			}
		}
		// The state must have advanced identically: the streams keep
		// agreeing after the batch.
		for i := 0; i < 4; i++ {
			if got, want := a.Uint64(), b.Uint64(); got != want {
				t.Fatalf("size=%d: post-Fill draw %d = %#x, want %#x", size, i, got, want)
			}
		}
	}
}

// TestFillInterleaved checks Fill and Uint64 can alternate freely on one
// generator without perturbing the stream, the pattern the batched
// shuffles use when a rejection drains the buffer mid-block.
func TestFillInterleaved(t *testing.T) {
	a, b := NewXoshiro256(31337), NewXoshiro256(31337)
	var got []uint64
	var buf [17]uint64
	for round := 0; round < 5; round++ {
		a.Fill(buf[:])
		got = append(got, buf[:]...)
		got = append(got, a.Uint64())
		a.Fill(buf[:1])
		got = append(got, buf[0])
	}
	for i, w := range got {
		if want := b.Uint64(); w != want {
			t.Fatalf("interleaved word %d = %#x, want %#x", i, w, want)
		}
	}
}
