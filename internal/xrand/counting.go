package xrand

// Counting wraps a Source and counts the raw 64-bit draws that pass
// through it. The PRO model of the paper treats random numbers as a
// resource on a par with time and bandwidth (Theorem 1: O(m) random
// numbers per processor); experiments E2 and E4 use Counting to verify
// those bounds empirically.
//
// Counting is not safe for concurrent use; wrap one Source per processor.
type Counting struct {
	src   Source
	count uint64
}

// NewCounting returns a counting wrapper around src with the counter at 0.
func NewCounting(src Source) *Counting {
	return &Counting{src: src}
}

// Uint64 forwards to the wrapped source and increments the counter.
func (c *Counting) Uint64() uint64 {
	c.count++
	return c.src.Uint64()
}

// Count returns the number of Uint64 calls since construction or the last
// Reset.
func (c *Counting) Count() uint64 { return c.count }

// Reset sets the counter back to zero without touching the generator
// state.
func (c *Counting) Reset() { c.count = 0 }

// Unwrap returns the underlying source.
func (c *Counting) Unwrap() Source { return c.src }

var _ Source = (*Counting)(nil)
