package xrand

import "math/bits"

// Uint64n returns a uniformly distributed integer in [0, n) drawn from
// src. It panics if n == 0.
//
// The implementation is Lemire's multiply-shift rejection method ("Fast
// random integer generation in an interval", TOMS 2019): one 64x64->128
// multiplication in the common case, with a rare rejection loop that makes
// the result exactly uniform (no modulo bias).
func Uint64n(src Source, n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	if n&(n-1) == 0 { // power of two: mask is exact and draw-free of bias
		return src.Uint64() & (n - 1)
	}
	hi, lo := bits.Mul64(src.Uint64(), n)
	if lo < n {
		thresh := -n % n // 2^64 mod n
		for lo < thresh {
			hi, lo = bits.Mul64(src.Uint64(), n)
		}
	}
	return hi
}

// Int64n returns a uniformly distributed integer in [0, n). It panics if
// n <= 0.
func Int64n(src Source, n int64) int64 {
	if n <= 0 {
		panic("xrand: Int64n with n <= 0")
	}
	return int64(Uint64n(src, uint64(n)))
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func Intn(src Source, n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(Uint64n(src, uint64(n)))
}

// Float64 returns a uniformly distributed float64 in [0, 1) with 53 bits
// of precision, the standard "53-bit right shift" construction.
func Float64(src Source) float64 {
	return float64(src.Uint64()>>11) * 0x1p-53
}

// Float64Open returns a uniformly distributed float64 in (0, 1): never 0,
// never 1. Rejection samplers (internal/hyper) divide and take logarithms
// of these values, so both endpoints must be excluded.
func Float64Open(src Source) float64 {
	for {
		f := Float64(src)
		if f != 0 {
			return f
		}
	}
}
