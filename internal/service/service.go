// Package service implements permd, the permutation-as-a-service
// daemon: the package's streaming Permuter machinery behind a
// concurrent, cacheable HTTP API. One running daemon gives a fleet of
// clients shard assignment, replayable shuffles and O(1) point queries
// over huge index domains, with the determinism contract of the library
// carried over the wire: for a server pinned to one decomposition width,
// (seed, n, backend) fully determine every byte of a chunk response,
// across requests, restarts and replicas.
//
// The core is a handle cache: an LRU of seeded Permuter handles keyed by
// (n, seed, backend), with single-flight construction so concurrent
// requests for the same permutation share one handle — and therefore one
// lazy materialization on the materializing backends. Chunk responses
// stream through fixed-size buffers drawn from a sync.Pool, so a request
// for a billion-value range holds O(MaxChunk) memory, not O(len).
//
// Endpoints (all responses are one decimal value per line unless noted):
//
//	GET  /v1/perm/{seed}/chunk?n=&start=&len=&backend=   π(start)..π(start+len-1)
//	GET  /v1/perm/{seed}/at?n=&i=&backend=               π(i)
//	POST /v1/shuffle?seed=&backend=                      body lines (or JSON array) shuffled
//	GET  /v1/sample?n=&k=&seed=                          uniform k-subset of [0, n)
//	GET  /v1/assign?seed=&n=&id=&spec=                   the id's experiment bucket (workload.go)
//	GET  /v1/epochs?seed=&n=&epoch=&mode=&start=&len=    a chunk of epoch e's shuffle (workload.go)
//	GET  /healthz                                        JSON liveness + config echo
//	GET  /metrics                                        Prometheus text format
//
// In cluster mode (Config.ClusterPeers) the daemon additionally mounts
// the peer-facing /v1/cluster/* endpoints of internal/cluster and
// serves backend=cluster requests from the sharded machinery: this
// node's shard is read locally, every other index range is fetched
// from its owning peer — the response bytes are identical to a
// single-node backend=cluster run for the same (seed, n), which is how
// the deployment is verified (see OPERATIONS.md).
//
// Exactness gating: /v1/shuffle and /v1/sample promise the exactly
// uniform law over all orderings, so /v1/shuffle refuses backends with
// Backend.ExactUniform() == false (HTTP 400) and /v1/sample always runs
// the simulated-machine sampling path. /v1/perm/* serves any backend and
// reports which one in a response header; the non-uniform fine print of
// BackendBijective is the client's to accept — it is the backend that
// makes n beyond memory serveable at all.
package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"mime"
	"net/http"
	"strconv"
	"sync"
	"time"

	"randperm"
	"randperm/internal/cluster"
	"randperm/internal/events"
	"randperm/internal/workload"
)

// Config sizes the daemon. The zero value is usable: every field has a
// default applied by New.
type Config struct {
	// Procs is the decomposition width handed to every Options{} the
	// server builds (default 8). It is pinned server-wide rather than
	// accepted per request so that the HTTP determinism contract needs
	// only (seed, n, backend); replicas that must agree byte-for-byte
	// must share it (on BackendBijective even that is unnecessary — the
	// permutation is a function of (seed, n) alone).
	Procs int
	// MaxHandles caps the Permuter handle LRU (default 64). Each
	// materialized handle for a size-n domain holds 8n bytes; bijective
	// handles hold O(1).
	MaxHandles int
	// MaxN bounds n on every endpoint that materializes or iterates n
	// items — /v1/perm/* on the materializing backends, /v1/shuffle and
	// /v1/sample (default 1 << 24). BackendBijective requests ignore it:
	// they touch only the indexes actually served.
	MaxN int64
	// MaxChunk is the pooled per-request buffer length and the default
	// chunk len when the query omits it (default 65536). Explicit len
	// may exceed it; the response then streams through the buffer in
	// MaxChunk-sized pages.
	MaxChunk int
	// MaxBody caps the /v1/shuffle request body in bytes (default 32 MiB).
	MaxBody int64
	// Quota is the multi-tenant admission budget: per-client token
	// buckets metered in items served (chunk pages, point reads,
	// shuffle items and sample items all pay). The zero value disables
	// metering — the pre-quota behavior. See quota.go and the "Quotas
	// and admission control" section of OPERATIONS.md.
	Quota QuotaConfig
	// MaxBuilds bounds how many materializing handle builds run
	// concurrently (default 4): request number MaxBuilds+1 for a cold
	// materializing key queues for a build slot instead of starting an
	// (MaxBuilds+1)-th n-word build. Bijective handles never occupy a
	// slot — they materialize nothing.
	MaxBuilds int
	// BuildWait is how long a request queues for a build slot before
	// being refused with 503 + Retry-After (default 10s).
	BuildWait time.Duration
	// MaxEpoch bounds the epoch number /v1/epochs accepts (default
	// 1 << 20). Fresh-mode key derivation walks one LongJump per epoch
	// up to e on first touch, so the bound is what keeps a hostile
	// ?epoch=huge from buying 2^63 jumps with one request.
	MaxEpoch int64
	// DefaultBackend serves /v1/perm/* requests that omit ?backend=.
	// It is flag-shaped — "sim", "shmem", "inplace", "bijective" or
	// "cluster", as accepted by randperm.ParseBackend — so the empty
	// string can mean "bijective", the streaming-native backend and the
	// only one that serves n beyond MaxN. /v1/shuffle defaults to
	// BackendSharedMem independently, because its exactness gate would
	// refuse a bijective default.
	DefaultBackend string
	// ClusterPeers turns on cluster mode when non-empty: the base URLs
	// of every permd node in the cluster, in the cluster-wide node
	// order, this node included. All nodes must agree on the list, on
	// Procs (the cluster-wide decomposition width) and on every limit
	// that shapes responses; see OPERATIONS.md. In cluster mode the
	// server mounts the peer-facing /v1/cluster/* endpoints and serves
	// backend=cluster requests from the sharded machinery: values this
	// node owns come from its local shard, the rest are fetched from
	// the owning peers.
	ClusterPeers []string
	// ClusterNode is this node's index in ClusterPeers.
	ClusterNode int
	// ClusterReplicas is the shard replication factor R (default 1):
	// every shard slot is owned by R consecutive nodes, each deriving
	// the slot's bytes independently from the shared streams, so any
	// R-1 nodes can die without changing a byte served. All nodes must
	// agree on it (the join handshake checks).
	ClusterReplicas int
	// ClusterHedge is the latency budget a routed read gives the first
	// replica before racing the next one (0 means the cluster default
	// of 50 ms; negative disables hedging). Node-local: it cannot
	// affect any byte served, only tail latency.
	ClusterHedge time.Duration
	// Events sizes the live event stream (events.go): the internal bus
	// every layer publishes to and GET /v1/events drains. The zero
	// value enables it with the defaults; events are best-effort by
	// contract and cannot affect a byte served.
	Events EventsConfig
}

// EventsConfig sizes the event bus behind GET /v1/events. Zero values
// take the defaults noted per field.
type EventsConfig struct {
	// Buffer is each SSE subscriber's delivery-channel capacity
	// (default 256): the backpressure bound past which a slow consumer
	// loses events (counted in permd_events_dropped_total) rather than
	// slowing anything down.
	Buffer int
	// Replay is the replay-ring capacity (default 1024): how far back
	// a Last-Event-ID resume can reach.
	Replay int
	// MaxSubscribers caps concurrent /v1/events streams (default 64);
	// past it new subscriptions get 503.
	MaxSubscribers int
	// SlowThreshold is the wall time past which a completed request
	// additionally publishes a slow_request event (default 1s;
	// negative disables slow-request events).
	SlowThreshold time.Duration
}

func (c EventsConfig) withDefaults() EventsConfig {
	if c.SlowThreshold == 0 {
		c.SlowThreshold = time.Second
	}
	return c
}

func (c Config) withDefaults() Config {
	if c.Procs <= 0 {
		c.Procs = 8
	}
	if c.MaxHandles <= 0 {
		c.MaxHandles = 64
	}
	if c.MaxN <= 0 {
		c.MaxN = 1 << 24
	}
	if c.MaxChunk <= 0 {
		c.MaxChunk = 1 << 16
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 32 << 20
	}
	if c.MaxBuilds <= 0 {
		c.MaxBuilds = 4
	}
	if c.BuildWait <= 0 {
		c.BuildWait = 10 * time.Second
	}
	if c.MaxEpoch <= 0 {
		c.MaxEpoch = 1 << 20
	}
	if c.DefaultBackend == "" {
		c.DefaultBackend = "bijective"
	}
	c.Events = c.Events.withDefaults()
	return c
}

// Server is the permd HTTP handler. Create one with New and mount it on
// any http.Server; it is safe for concurrent use.
type Server struct {
	cfg        Config
	defBackend randperm.Backend
	met        metrics
	bus        *events.Bus // the live-operations spine (events.go)
	cache      *handleCache
	quota      *quotas       // nil when Config.Quota is disabled
	buildSem   chan struct{} // materialization slots (admission.go)
	bufs       sync.Pool     // *[]int64 of length cfg.MaxChunk
	node       *cluster.Node // non-nil iff cluster mode is on
	mux        *http.ServeMux

	// Epoch key-derivation memos for /v1/epochs (workload.go).
	epochersMu sync.Mutex
	epochers   map[epocherKey]*workload.Epocher
}

// New builds a Server from cfg (zero value fine; see Config defaults).
// The only error is an unparseable Config.DefaultBackend.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	def, err := randperm.ParseBackend(cfg.DefaultBackend)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		defBackend: def,
		mux:        http.NewServeMux(),
		epochers:   make(map[epocherKey]*workload.Epocher),
	}
	s.bus = events.NewBus(events.Options{
		Buffer:         cfg.Events.Buffer,
		Replay:         cfg.Events.Replay,
		MaxSubscribers: cfg.Events.MaxSubscribers,
	})
	s.buildSem = make(chan struct{}, cfg.MaxBuilds)
	if cfg.Quota.Enabled() {
		s.quota = newQuotas(cfg.Quota)
	}
	if len(cfg.ClusterPeers) > 0 {
		s.node, err = cluster.New(cluster.Config{
			Self:       cfg.ClusterNode,
			Peers:      cfg.ClusterPeers,
			Procs:      cfg.Procs,
			Replicas:   cfg.ClusterReplicas,
			MaxShards:  cfg.MaxHandles,
			MaxN:       cfg.MaxN,
			HedgeAfter: cfg.ClusterHedge,
			Events:     s.bus,
		})
		if err != nil {
			return nil, err
		}
		s.mux.Handle("/v1/cluster/", s.node.Handler())
	}
	s.cache = newHandleCache(cfg.MaxHandles, &s.met, s.buildHandle)
	s.cache.onEvict = func(key handleKey) {
		ev := events.New(events.TypeCacheEvict)
		ev.N, ev.Seed, ev.Backend = key.n, key.seed, key.backend.String()
		s.bus.Publish(ev)
	}
	s.bufs.New = func() any {
		b := make([]int64, cfg.MaxChunk)
		return &b
	}
	s.mux.HandleFunc("GET /v1/perm/{seed}/chunk", s.handleChunk)
	s.mux.HandleFunc("GET /v1/perm/{seed}/at", s.handleAt)
	s.mux.HandleFunc("POST /v1/shuffle", s.handleShuffle)
	s.mux.HandleFunc("GET /v1/sample", s.handleSample)
	s.mux.HandleFunc("GET /v1/assign", s.handleAssign)
	s.mux.HandleFunc("GET /v1/epochs", s.handleEpochs)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// EventBus exposes the server's event bus: cmd/permd does not need it,
// but in-process consumers (tests, embedded dashboards) subscribe
// directly instead of dialing their own SSE stream.
func (s *Server) EventBus() *events.Bus { return s.bus }

// reqInfo rides each request's context so handlers can report what the
// request-level event (events.go) should carry — items served, the
// handle-cache outcome, the resolved permutation identity. Plain fields:
// only the handling goroutine writes them, and the middleware reads them
// after the handler returns.
type reqInfo struct {
	items   int64
	cache   string // "hit" / "miss" when a handle was resolved
	backend string
	n       int64
	seed    uint64
}

type reqInfoKey struct{}

// reqInfoOf returns the request's reqInfo, or nil for requests that
// bypassed the middleware (direct mux use in tests, /v1/events).
func reqInfoOf(r *http.Request) *reqInfo {
	ri, _ := r.Context().Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// ServeHTTP is the middleware seam: every request except the event
// stream itself gets timed and reported onto the bus as a request event
// (plus a slow_request event past Config.Events.SlowThreshold). The
// cost with no subscribers is one mutex acquisition and one ring write
// per request — the non-perturbation benchmark pins it.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/events" {
		// The stream is long-lived; a per-request completion event for
		// it would only ever describe a disconnect.
		s.mux.ServeHTTP(w, r)
		return
	}
	ri := &reqInfo{}
	r = r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, ri))
	began := time.Now()
	s.mux.ServeHTTP(w, r)
	elapsed := time.Since(began)

	ev := events.New(events.TypeRequest)
	ev.Endpoint = r.URL.Path
	ev.Ns = elapsed.Nanoseconds()
	ev.Items = ri.items
	ev.Cache = ri.cache
	ev.Backend = ri.backend
	ev.N = ri.n
	ev.Seed = ri.seed
	s.bus.Publish(ev)
	if t := s.cfg.Events.SlowThreshold; t > 0 && elapsed >= t {
		slow := ev
		slow.Type = events.TypeSlowRequest
		slow.Client = clientKey(r)
		s.bus.Publish(slow)
	}
}

// buildHandle is the cache's single-flight constructor: the one place a
// Permuter is made, so the materialization-counting hook is registered
// before any request can share the handle. In cluster mode a
// backend=cluster handle is source-backed: it reads this node's shard
// locally and routes the rest of the domain to the owning peers,
// instead of materializing all n words here.
func (s *Server) buildHandle(key handleKey) (*randperm.Permuter, error) {
	opt := randperm.Options{
		Procs:   s.cfg.Procs,
		Seed:    key.seed,
		Backend: key.backend,
	}
	if key.backend == randperm.BackendCluster && s.node != nil {
		return randperm.NewPermuterSource(s.node.Permuter(key.n, key.seed), opt)
	}
	pm, err := randperm.NewPermuter(key.n, opt)
	if err != nil {
		return nil, err
	}
	pm.OnMaterialize(func() {
		s.met.materializations.Add(1)
		ev := events.New(events.TypeMaterialization)
		ev.N, ev.Seed, ev.Backend = key.n, key.seed, key.backend.String()
		s.bus.Publish(ev)
	})
	return pm, nil
}

// httpError answers with a plain-text error and counts it.
func (s *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	s.met.errors.Add(1)
	http.Error(w, "permd: "+fmt.Sprintf(format, args...), code)
}

// queryInt64 parses query parameter name, or returns (def, true) when absent.
func queryInt64(r *http.Request, name string, def int64) (int64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: want a decimal integer", name, v)
	}
	return n, nil
}

// permuterFor resolves the {seed} path value and the n/backend query of
// a /v1/perm/* request into a cached handle entry. It applies the MaxN
// gate to materializing backends and answers the error itself when it
// returns ok == false.
func (s *Server) permuterFor(w http.ResponseWriter, r *http.Request) (e *handleEntry, n int64, backend randperm.Backend, ok bool) {
	seed, err := strconv.ParseUint(r.PathValue("seed"), 10, 64)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "bad seed %q: want a decimal uint64", r.PathValue("seed"))
		return nil, 0, 0, false
	}
	n, err = queryInt64(r, "n", -1)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return nil, 0, 0, false
	}
	if n < 0 {
		s.httpError(w, http.StatusBadRequest, "missing or negative n: the domain size n is required")
		return nil, 0, 0, false
	}
	backend = s.defBackend
	if bs := r.URL.Query().Get("backend"); bs != "" {
		backend, err = randperm.ParseBackend(bs)
		if err != nil {
			s.httpError(w, http.StatusBadRequest, "%v", err)
			return nil, 0, 0, false
		}
	}
	if backend != randperm.BackendBijective && n > s.cfg.MaxN {
		s.httpError(w, http.StatusBadRequest,
			"n=%d exceeds this server's materialization bound %d for backend %s; use backend=bijective for larger domains",
			n, s.cfg.MaxN, backend)
		return nil, 0, 0, false
	}
	e, hit, err := s.cache.get(handleKey{n: n, seed: seed, backend: backend})
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "building permutation: %v", err)
		return nil, 0, 0, false
	}
	if ri := reqInfoOf(r); ri != nil {
		ri.n, ri.seed, ri.backend = n, seed, backend.String()
		ri.cache = "miss"
		if hit {
			ri.cache = "hit"
		}
	}
	w.Header().Set("Permd-Backend", backend.String())
	return e, n, backend, true
}

// admitItems charges cost items to the requesting client's quota bucket,
// answering 429 + Retry-After itself (and reporting false) when the
// bucket cannot cover it. Charging happens after request validation so
// malformed requests stay 400s, and before any serving work so a refused
// request costs the daemon nothing.
func (s *Server) admitItems(w http.ResponseWriter, r *http.Request, cost int64) bool {
	if s.quota == nil {
		return true
	}
	ok, retry := s.quota.take(clientKey(r), cost)
	if ok {
		s.met.quotaItems.Add(cost)
		return true
	}
	s.met.quotaThrottled.Add(1)
	secs := int64((retry + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	ev := events.New(events.TypeQuotaRefusal)
	ev.Endpoint, ev.Client, ev.Items = r.URL.Path, clientKey(r), cost
	ev.Ns = retry.Nanoseconds() // how long the bucket needs to refill
	s.bus.Publish(ev)
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	s.httpError(w, http.StatusTooManyRequests,
		"quota exhausted for client %q: retry after %ds", clientKey(r), secs)
	return false
}

// admitBuild forces the handle through the materialization admission
// gate (see admission.go), mapping refusals onto HTTP: a full build
// queue becomes 503 + Retry-After, a failed build 500, and a client
// that disconnected while queued gets nothing (it is gone). Reports
// whether serving may proceed.
func (s *Server) admitBuild(w http.ResponseWriter, r *http.Request, e *handleEntry) bool {
	err := s.ensureMaterialized(r.Context(), e)
	switch {
	case err == nil:
		return true
	case errors.Is(err, errBuildQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(buildWaitRetry(s.cfg.BuildWait)))
		s.httpError(w, http.StatusServiceUnavailable, "all %d build slots busy: %v", s.cfg.MaxBuilds, err)
		return false
	case r.Context().Err() != nil:
		// The client disconnected while waiting; count it, write nothing.
		s.met.errors.Add(1)
		return false
	default:
		s.httpError(w, http.StatusInternalServerError, "materializing permutation: %v", err)
		return false
	}
}

// handleChunk serves GET /v1/perm/{seed}/chunk?n=&start=&len=&backend= —
// the values π(start) .. π(start+len-1), one decimal per line. len
// defaults to min(MaxChunk, n-start) and may exceed MaxChunk, in which
// case the response streams through the pooled buffer page by page.
func (s *Server) handleChunk(w http.ResponseWriter, r *http.Request) {
	s.met.requests[epChunk].Add(1)
	e, n, backend, ok := s.permuterFor(w, r)
	if !ok {
		return
	}
	pm := e.pm
	start, err := queryInt64(r, "start", 0)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if start < 0 || start > n {
		s.httpError(w, http.StatusBadRequest, "start=%d outside [0, %d]", start, n)
		return
	}
	length := min(n-start, int64(s.cfg.MaxChunk))
	if lv := r.URL.Query().Get("len"); lv != "" {
		length, err = strconv.ParseInt(lv, 10, 64)
		if err != nil || length < 0 {
			s.httpError(w, http.StatusBadRequest, "bad len=%q: want a non-negative decimal integer", lv)
			return
		}
		if rest := n - start; length > rest {
			length = rest
		}
	}
	if !s.admitItems(w, r, max(length, 1)) {
		return
	}
	if !s.admitBuild(w, r, e) {
		return
	}

	began := time.Now()
	if backend == randperm.BackendCluster && s.node != nil {
		// Atomic path: a cluster read can fail at any peer at any span
		// boundary, and the failure-semantics contract (OPERATIONS.md)
		// promises no partial bytes — so the whole response is assembled
		// in memory before the first byte goes out. Bounded: cluster
		// requests passed the MaxN gate, so length ≤ MaxN words.
		out := make([]int64, length)
		if _, err := pm.Chunk(out, start); err != nil {
			s.httpError(w, http.StatusInternalServerError, "reading chunk: %v", err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		bw := bufio.NewWriterSize(w, 1<<15)
		var line []byte
		for _, v := range out {
			line = strconv.AppendInt(line[:0], v, 10)
			line = append(line, '\n')
			if _, err := bw.Write(line); err != nil {
				return // client went away
			}
		}
		if err := bw.Flush(); err != nil {
			return
		}
		s.met.items.Add(length)
		s.met.chunkItems.Add(length)
		s.met.chunkNs.Add(time.Since(began).Nanoseconds())
		if ri := reqInfoOf(r); ri != nil {
			ri.items = length
		}
		return
	}
	served, ok := s.streamPaged(w, r, pm, start, length)
	if !ok {
		return
	}
	s.met.items.Add(served)
	s.met.chunkItems.Add(served)
	s.met.chunkNs.Add(time.Since(began).Nanoseconds())
	if ri := reqInfoOf(r); ri != nil {
		ri.items = served
	}
}

// handleAt serves GET /v1/perm/{seed}/at?n=&i=&backend= — the single
// value π(i). The read goes through a length-1 Chunk, whose cost is
// backend-shaped:
//
//   - bijective (the default): O(1) per query — the length-1 chunk is
//     one Feistel evaluation, no state, nothing materialized;
//   - sim/shmem/inplace: the first query pays (and the permuter caches)
//     the one-time n-item build, after which every query is an array
//     read. This cannot be O(1) cold: these are exactly-uniform
//     materializing algorithms, where π(i) depends on the entire
//     communication-matrix sample and every local shuffle — there is no
//     closed form for a single position;
//   - cluster: as above, but the build is the owning node's shard
//     (~n/nodes items), constructed remotely on first touch and held in
//     that node's shard LRU, so repeated point queries against a live
//     permutation are one cached lookup plus a small HTTP round trip.
//
// Callers that need strictly O(1) point queries must ask for the
// bijective backend; that trade (computed keyed family vs. exact
// uniformity) is the backend choice itself, not something the service
// layer can paper over.
func (s *Server) handleAt(w http.ResponseWriter, r *http.Request) {
	s.met.requests[epAt].Add(1)
	e, n, _, ok := s.permuterFor(w, r)
	if !ok {
		return
	}
	i, err := queryInt64(r, "i", -1)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if i < 0 || i >= n {
		s.httpError(w, http.StatusBadRequest, "i=%d outside [0, %d)", i, n)
		return
	}
	if !s.admitItems(w, r, 1) {
		return
	}
	if !s.admitBuild(w, r, e) {
		return
	}
	// Read through Chunk rather than At: same bytes, but an
	// error-returning path, so a cluster peer failure becomes a 500
	// instead of a panic.
	var one [1]int64
	if _, err := e.pm.Chunk(one[:], i); err != nil {
		s.httpError(w, http.StatusInternalServerError, "reading position: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "%d\n", one[0])
	s.met.items.Add(1)
	if ri := reqInfoOf(r); ri != nil {
		ri.items = 1
	}
}

// handleShuffle serves POST /v1/shuffle?seed=&backend=: the request body
// — newline-separated values, or a JSON array with Content-Type
// application/json — comes back in exactly-uniform random order. This is
// the exactness-sensitive endpoint: a backend whose ExactUniform() is
// false is refused with 400 rather than silently served from the
// bijective keyed family.
func (s *Server) handleShuffle(w http.ResponseWriter, r *http.Request) {
	s.met.requests[epShuffle].Add(1)
	q := r.URL.Query()
	seed, err := strconv.ParseUint(q.Get("seed"), 10, 64)
	if q.Get("seed") != "" && err != nil {
		s.httpError(w, http.StatusBadRequest, "bad seed %q: want a decimal uint64", q.Get("seed"))
		return
	}
	backend := randperm.BackendSharedMem
	if bs := q.Get("backend"); bs != "" {
		backend, err = randperm.ParseBackend(bs)
		if err != nil {
			s.httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if !backend.ExactUniform() {
		s.httpError(w, http.StatusBadRequest,
			"backend %s is not exactly uniform over S_n and is refused on /v1/shuffle; use sim, shmem or inplace (or stream the keyed family from /v1/perm)", backend)
		return
	}

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	mediaType, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	asJSON := mediaType == "application/json"
	var items []string
	var raw []json.RawMessage
	if asJSON {
		if err := json.NewDecoder(body).Decode(&raw); err != nil {
			if maxed := (*http.MaxBytesError)(nil); errors.As(err, &maxed) {
				s.httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds this server's bound %d bytes", s.cfg.MaxBody)
				return
			}
			s.httpError(w, http.StatusBadRequest, "decoding JSON array: %v", err)
			return
		}
	} else {
		sc := bufio.NewScanner(body)
		sc.Buffer(make([]byte, 1<<20), 1<<24)
		for sc.Scan() {
			items = append(items, sc.Text())
		}
		if err := sc.Err(); err != nil {
			if maxed := (*http.MaxBytesError)(nil); errors.As(err, &maxed) {
				s.httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds this server's bound %d bytes", s.cfg.MaxBody)
				return
			}
			s.httpError(w, http.StatusBadRequest, "reading body: %v", err)
			return
		}
	}
	count := len(items)
	if asJSON {
		count = len(raw)
	}
	if int64(count) > s.cfg.MaxN {
		s.httpError(w, http.StatusRequestEntityTooLarge, "%d items exceeds this server's bound %d", count, s.cfg.MaxN)
		return
	}
	if !s.admitItems(w, r, max(int64(count), 1)) {
		return
	}
	opt := randperm.Options{Procs: min(s.cfg.Procs, max(count, 1)), Seed: seed, Backend: backend}

	if asJSON {
		out, _, err := randperm.ParallelShuffle(raw, opt)
		if err != nil {
			s.httpError(w, http.StatusInternalServerError, "shuffling: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(out); err != nil {
			return
		}
		s.met.items.Add(int64(len(out)))
		if ri := reqInfoOf(r); ri != nil {
			ri.items = int64(len(out))
		}
		return
	}
	out, _, err := randperm.ParallelShuffle(items, opt)
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "shuffling: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	bw := bufio.NewWriterSize(w, 1<<15)
	for _, l := range out {
		bw.WriteString(l)
		bw.WriteByte('\n')
	}
	bw.Flush()
	s.met.items.Add(int64(len(out)))
	if ri := reqInfoOf(r); ri != nil {
		ri.items = int64(len(out))
	}
}

// handleSample serves GET /v1/sample?n=&k=&seed= — a uniformly random
// k-subset of [0, n) in uniformly random order, one value per line,
// drawn by ParallelSample on the simulated machine (always exactly
// uniform; there is no backend parameter to gate).
func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	s.met.requests[epSample].Add(1)
	n, err := queryInt64(r, "n", -1)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if n < 0 {
		s.httpError(w, http.StatusBadRequest, "missing or negative n: the domain size n is required")
		return
	}
	if n > s.cfg.MaxN {
		s.httpError(w, http.StatusBadRequest, "n=%d exceeds this server's bound %d", n, s.cfg.MaxN)
		return
	}
	k, err := queryInt64(r, "k", -1)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if k < 0 || k > n {
		s.httpError(w, http.StatusBadRequest, "k=%d outside [0, n=%d]", k, n)
		return
	}
	var seed uint64
	if sv := r.URL.Query().Get("seed"); sv != "" {
		if seed, err = strconv.ParseUint(sv, 10, 64); err != nil {
			s.httpError(w, http.StatusBadRequest, "bad seed %q: want a decimal uint64", sv)
			return
		}
	}
	if !s.admitItems(w, r, max(k, 1)) {
		return
	}
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}
	sample, _, err := randperm.ParallelSample(data, k, randperm.Options{Procs: s.cfg.Procs, Seed: seed})
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "sampling: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	bw := bufio.NewWriterSize(w, 1<<15)
	var line []byte
	for _, v := range sample {
		line = strconv.AppendInt(line[:0], v, 10)
		line = append(line, '\n')
		bw.Write(line)
	}
	bw.Flush()
	s.met.items.Add(int64(len(sample)))
	if ri := reqInfoOf(r); ri != nil {
		ri.items = int64(len(sample))
	}
}

// handleHealthz serves a JSON liveness probe that doubles as a config
// echo, so an operator (or a replica checking compatibility) can read
// the pinned decomposition width the determinism contract depends on.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.met.requests[epHealthz].Add(1)
	w.Header().Set("Content-Type", "application/json")
	body := map[string]any{
		"status":          "ok",
		"procs":           s.cfg.Procs,
		"handles":         s.cache.len(),
		"max_handles":     s.cfg.MaxHandles,
		"max_n":           s.cfg.MaxN,
		"max_chunk":       s.cfg.MaxChunk,
		"default_backend": s.defBackend.String(),
		"backends":        []string{"sim", "shmem", "inplace", "bijective", "cluster"},
		"max_builds":      s.cfg.MaxBuilds,
		"max_epoch":       s.cfg.MaxEpoch,
		"quota":           s.quota != nil,
		"workloads":       []string{"assign", "epochs"},
		"events": map[string]any{
			"subscribers":     s.bus.Subscribers(),
			"max_subscribers": s.cfg.Events.MaxSubscribers,
			"published":       s.bus.Published(),
			"dropped":         s.bus.Dropped(),
		},
	}
	if s.node != nil {
		body["cluster"] = map[string]any{
			"node":     s.node.Self(),
			"nodes":    s.node.Nodes(),
			"procs":    s.node.Procs(),
			"replicas": s.node.Replicas(),
			"geometry": s.node.Geometry().Hash(),
		}
	}
	json.NewEncoder(w).Encode(body)
}

// JoinCluster runs the deterministic membership handshake against every
// peer, polling unreachable ones until ctx expires. It is a no-op (nil)
// outside cluster mode. A geometry mismatch is fatal by design — the
// returned error wraps cluster.ErrGeometryMismatch and the daemon
// should refuse to serve; see cmd/permd.
func (s *Server) JoinCluster(ctx context.Context) error {
	if s.node == nil {
		return nil
	}
	return s.node.JoinAll(ctx)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.requests[epMetrics].Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.write(w)
	fmt.Fprintf(w, "# HELP permd_events_published_total Events published onto the internal bus.\n")
	fmt.Fprintf(w, "# TYPE permd_events_published_total counter\n")
	fmt.Fprintf(w, "permd_events_published_total %d\n", s.bus.Published())
	fmt.Fprintf(w, "# HELP permd_events_dropped_total Event deliveries dropped because a subscriber's buffer was full.\n")
	fmt.Fprintf(w, "# TYPE permd_events_dropped_total counter\n")
	fmt.Fprintf(w, "permd_events_dropped_total %d\n", s.bus.Dropped())
	fmt.Fprintf(w, "# HELP permd_events_subscribers Live /v1/events subscriptions.\n")
	fmt.Fprintf(w, "# TYPE permd_events_subscribers gauge\n")
	fmt.Fprintf(w, "permd_events_subscribers %d\n", s.bus.Subscribers())
	if s.quota != nil {
		fmt.Fprintf(w, "# HELP permd_quota_clients Client quota buckets currently tracked.\n")
		fmt.Fprintf(w, "# TYPE permd_quota_clients gauge\n")
		fmt.Fprintf(w, "permd_quota_clients %d\n", s.quota.len())
	}
	if s.node != nil {
		s.node.WriteMetrics(w)
	}
}
