package service

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// metrics is the daemon's instrumentation: monotone counters only, so
// every figure is cheap to record on the hot path (one atomic add) and
// every rate an operator wants — req/s, ns/item, cache hit rate — is a
// quotient of two counters computed at scrape time. The exposition
// format is the Prometheus text format, hand-rolled because the module
// deliberately has no dependencies outside the standard library.
type metrics struct {
	// requests counts completed requests per endpoint, indexed by the
	// ep* constants below.
	requests [epCount]atomic.Int64
	// errors counts requests answered with a 4xx/5xx status.
	errors atomic.Int64

	// items is the number of permutation values written by the chunk,
	// at, shuffle and sample endpoints; chunkNs is the wall time the
	// chunk endpoint spent serving them. chunkNs/items over the chunk
	// endpoint alone is the served ns/item figure BENCHMARKS.md tracks.
	items      atomic.Int64
	chunkItems atomic.Int64
	chunkNs    atomic.Int64

	// Handle-cache counters: a hit found a live handle for
	// (n, seed, backend); a miss constructed one; an eviction dropped
	// the least-recently-used handle past capacity. materializations
	// counts lazy n-word builds actually run — with single-flight
	// handles it stays at one per materialized key no matter how many
	// concurrent requests raced for it.
	cacheHits        atomic.Int64
	cacheMisses      atomic.Int64
	cacheEvictions   atomic.Int64
	materializations atomic.Int64

	// Workload counters: assignLookups counts bucket assignments
	// served by /v1/assign (each is one O(1) bijection evaluation —
	// compare against cacheMisses/materializations to verify point
	// lookups never materialize); epochItems/epochNs mirror the chunk
	// figures for /v1/epochs, and epochRecycled counts the requests
	// that asked for recycled-sequence key derivation.
	assignLookups atomic.Int64
	epochItems    atomic.Int64
	epochNs       atomic.Int64
	epochRecycled atomic.Int64

	// Quota counters: throttled counts requests refused with 429,
	// quotaItems the items actually debited from client buckets (every
	// admitted chunk page, point read, shuffle item and sample item —
	// the figure to compare against a client's nominal budget).
	quotaThrottled atomic.Int64
	quotaItems     atomic.Int64

	// Admission (build gate) counters: builds admitted through the
	// semaphore, requests that had to queue for a slot, queue-deadline
	// refusals (503), builds canceled because every waiting client
	// disconnected, and the in-flight build gauge.
	admissionBuilds   atomic.Int64
	admissionQueued   atomic.Int64
	admissionTimeouts atomic.Int64
	admissionCancels  atomic.Int64
	admissionInflight atomic.Int64
}

// Endpoint indices for the requests counter.
const (
	epChunk = iota
	epAt
	epShuffle
	epSample
	epAssign
	epEpochs
	epEvents
	epHealthz
	epMetrics
	epCount
)

var epNames = [epCount]string{"chunk", "at", "shuffle", "sample", "assign", "epochs", "events", "healthz", "metrics"}

// write emits the counters in Prometheus text format, one family per
// metric, endpoint as a label. Families print in a fixed order so
// scrapes diff cleanly.
func (m *metrics) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP permd_requests_total Completed requests per endpoint.\n")
	fmt.Fprintf(w, "# TYPE permd_requests_total counter\n")
	names := append([]string(nil), epNames[:]...)
	sort.Strings(names)
	byName := map[string]*atomic.Int64{}
	for i := range epNames {
		byName[epNames[i]] = &m.requests[i]
	}
	for _, name := range names {
		fmt.Fprintf(w, "permd_requests_total{endpoint=%q} %d\n", name, byName[name].Load())
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("permd_request_errors_total", "Requests answered with a 4xx/5xx status.", m.errors.Load())
	counter("permd_items_total", "Permutation values served across all endpoints.", m.items.Load())
	counter("permd_chunk_items_total", "Permutation values served by the chunk endpoint.", m.chunkItems.Load())
	counter("permd_chunk_ns_total", "Wall nanoseconds spent serving chunk requests.", m.chunkNs.Load())
	counter("permd_handle_cache_hits_total", "Chunk/at requests served from a cached Permuter handle.", m.cacheHits.Load())
	counter("permd_handle_cache_misses_total", "Permuter handles constructed on demand.", m.cacheMisses.Load())
	counter("permd_handle_cache_evictions_total", "Handles dropped by the LRU past capacity.", m.cacheEvictions.Load())
	counter("permd_materializations_total", "Lazy full-permutation builds actually run.", m.materializations.Load())
	counter("permd_assign_lookups_total", "Experiment bucket assignments served by /v1/assign.", m.assignLookups.Load())
	counter("permd_epoch_items_total", "Permutation values served by the epochs endpoint.", m.epochItems.Load())
	counter("permd_epoch_ns_total", "Wall nanoseconds spent serving epoch chunk requests.", m.epochNs.Load())
	counter("permd_epoch_recycled_total", "Epoch requests served in recycled-sequence mode.", m.epochRecycled.Load())
	counter("permd_quota_throttled_total", "Requests refused with 429 by the per-client quota.", m.quotaThrottled.Load())
	counter("permd_quota_items_charged_total", "Items debited from client quota buckets.", m.quotaItems.Load())
	counter("permd_admission_builds_total", "Materializing builds admitted through the build gate.", m.admissionBuilds.Load())
	counter("permd_admission_queue_waits_total", "Build requests that queued for a busy build slot.", m.admissionQueued.Load())
	counter("permd_admission_queue_timeouts_total", "Build requests refused (503) at the queue deadline.", m.admissionTimeouts.Load())
	counter("permd_admission_cancels_total", "Builds canceled because every waiting client disconnected.", m.admissionCancels.Load())
	fmt.Fprintf(w, "# HELP permd_admission_builds_inflight Materializing builds running right now.\n")
	fmt.Fprintf(w, "# TYPE permd_admission_builds_inflight gauge\n")
	fmt.Fprintf(w, "permd_admission_builds_inflight %d\n", m.admissionInflight.Load())

	// The two derived figures operators actually watch, precomputed as
	// gauges so a bare curl needs no PromQL.
	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	fmt.Fprintf(w, "# HELP permd_handle_cache_hit_rate Hits / (hits + misses) since start.\n")
	fmt.Fprintf(w, "# TYPE permd_handle_cache_hit_rate gauge\n")
	fmt.Fprintf(w, "permd_handle_cache_hit_rate %g\n", hitRate)
	nsPerItem := 0.0
	if ci := m.chunkItems.Load(); ci > 0 {
		nsPerItem = float64(m.chunkNs.Load()) / float64(ci)
	}
	fmt.Fprintf(w, "# HELP permd_chunk_ns_per_item Served chunk nanoseconds per value since start.\n")
	fmt.Fprintf(w, "# TYPE permd_chunk_ns_per_item gauge\n")
	fmt.Fprintf(w, "permd_chunk_ns_per_item %g\n", nsPerItem)
}
