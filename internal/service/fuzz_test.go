// Native fuzz targets for the quota flag grammar — the config surface
// an operator types under pressure during an overload incident. CI runs
// a short -fuzztime smoke; longer local runs:
//
//	go test -run='^$' -fuzz=FuzzParseQuotaSpec -fuzztime=60s ./internal/service
package service

import "testing"

// FuzzParseQuotaSpec: the parser must never panic, every accepted spec
// must be usable (positive burst or explicitly unlimited, finite
// non-negative rate), and the spec's own String() must parse back to
// the identical spec — what `permd -h` prints as a default must be
// pasteable as a flag value.
func FuzzParseQuotaSpec(f *testing.F) {
	for _, s := range []string{
		"off", "", "unlimited", "5000/s", "5000/s:20000", "300000/m",
		"0/s:1280", "1.5/s", "7200/h:100", "5/d", "-1/s", "5/s:0",
		"1e300/s", "NaN/s", "Inf/s", "5/s:9223372036854775807", "/s", ":", "5//s",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseQuotaSpec(s)
		if err != nil {
			return
		}
		if !spec.Unlimited() && (spec.Burst <= 0 || spec.Rate < 0 || spec.Rate != spec.Rate) {
			t.Fatalf("ParseQuotaSpec(%q) accepted unusable spec %+v", s, spec)
		}
		back, err := ParseQuotaSpec(spec.String())
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q does not parse: %v", spec.String(), s, err)
		}
		if back != spec {
			t.Fatalf("round trip %q -> %+v -> %q -> %+v", s, spec, spec.String(), back)
		}
	})
}

// FuzzParseQuotaOverrides: the per-client list form must never panic,
// and every accepted map contains only usable specs under non-empty
// client names.
func FuzzParseQuotaOverrides(f *testing.F) {
	for _, s := range []string{
		"etl=50000/s:200000,canary=off", "a=5/s", "", "  ", "a=b=c",
		"=5/s", "a=5/s,a=6/s", ",", "x=0/s:1,y=1/m:2,z=unlimited",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseQuotaOverrides(s)
		if err != nil {
			return
		}
		for name, spec := range m {
			if name == "" {
				t.Fatalf("ParseQuotaOverrides(%q) accepted an empty client name", s)
			}
			if !spec.Unlimited() && spec.Burst <= 0 {
				t.Fatalf("ParseQuotaOverrides(%q) accepted unusable spec %+v for %q", s, spec, name)
			}
		}
	})
}
