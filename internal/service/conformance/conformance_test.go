// The permd contract, executed three ways against the same golden
// table: straight into the in-process router, over a loopback TCP
// daemon, and through the permclient SDK. A fixture that passes in one
// mode and fails in another is the bug this file exists to catch.
package conformance

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"randperm/internal/harness/testkit"
	"randperm/internal/service"
	"randperm/internal/workload"
	"randperm/permclient"
)

func newServer(t testing.TB) *service.Server {
	t.Helper()
	s, err := service.New(ServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestConformanceInProcess runs the table against Server.ServeHTTP
// directly — no sockets, the mode unit tests and fuzzers use.
func TestConformanceInProcess(t *testing.T) {
	s := newServer(t)
	Run(t, func(t *testing.T, f Fixture) Response {
		var body io.Reader
		if f.Body != "" {
			body = strings.NewReader(f.Body)
		}
		req := httptest.NewRequest(f.Method, f.Path, body)
		for k, v := range f.Header {
			req.Header.Set(k, v)
		}
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		return Response{Status: rec.Code, Body: rec.Body.String(), Header: headerSubset(rec.Header(), f)}
	})
}

// TestConformanceLoopbackTCP runs the table through a real HTTP server
// and client — the bytes a deployed daemon actually puts on the wire.
func TestConformanceLoopbackTCP(t *testing.T) {
	ts := httptest.NewServer(newServer(t))
	defer ts.Close()
	Run(t, func(t *testing.T, f Fixture) Response {
		var body io.Reader
		if f.Body != "" {
			body = strings.NewReader(f.Body)
		}
		req, err := http.NewRequest(f.Method, ts.URL+f.Path, body)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range f.Header {
			req.Header.Set(k, v)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return Response{Status: resp.StatusCode, Body: string(b), Header: headerSubset(resp.Header, f)}
	})
}

func headerSubset(h http.Header, f Fixture) map[string]string {
	out := make(map[string]string, len(f.WantHeader))
	for k := range f.WantHeader {
		out[k] = h.Get(k)
	}
	return out
}

// TestConformanceClient holds the SDK to the same server: every
// endpoint answers the oracle values, misuse surfaces as typed
// *APIErrors, and quota exhaustion is an ErrThrottled carrying the
// server's Retry-After.
func TestConformanceClient(t *testing.T) {
	ts := httptest.NewServer(newServer(t))
	defer ts.Close()
	ctx := context.Background()
	// MaxRetries < 0 disables retries: the 429/400 fixtures must surface
	// the first answer, not sit out a 3600 s Retry-After.
	c := permclient.New(permclient.Config{
		BaseURL: ts.URL, HTTPClient: ts.Client(), MaxRetries: -1, PageSize: 16,
	})

	t.Run("health", func(t *testing.T) {
		h, err := c.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.Status != "ok" || h.Procs != Procs || !h.Quota {
			t.Errorf("health = %+v", h)
		}
	})
	t.Run("chunk", func(t *testing.T) {
		got, err := c.Chunk(ctx, 42, 100, 0, 5)
		if err != nil {
			t.Fatal(err)
		}
		assertInt64s(t, got, ChunkExpect(t, 42, 100, 0, 5))
	})
	t.Run("at hedged", func(t *testing.T) {
		hedged := permclient.New(permclient.Config{
			BaseURL: ts.URL, HTTPClient: ts.Client(), MaxRetries: -1,
			HedgeAfter: time.Millisecond,
		})
		for i := int64(0); i < 20; i++ {
			v, err := hedged.At(ctx, 42, 100, i)
			if err != nil {
				t.Fatal(err)
			}
			if want := ChunkExpect(t, 42, 100, i, 1)[0]; v != want {
				t.Fatalf("At(%d) = %d, want %d", i, v, want)
			}
		}
	})
	t.Run("stream pages the whole domain", func(t *testing.T) {
		var got []int64
		for v, err := range c.Stream(ctx, 42, 200, 0) {
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, v)
		}
		assertInt64s(t, got, ChunkExpect(t, 42, 200, 0, 200))
	})
	t.Run("stream break abandons cleanly", func(t *testing.T) {
		n := 0
		for _, err := range c.Stream(ctx, 42, 1000, 0) {
			if err != nil {
				t.Fatal(err)
			}
			if n++; n == 3 {
				break
			}
		}
		// The server must still be fully serviceable afterwards.
		if _, err := c.At(ctx, 42, 100, 0); err != nil {
			t.Fatalf("server unhealthy after abandoned stream: %v", err)
		}
	})
	t.Run("shuffle", func(t *testing.T) {
		in := []string{"alpha", "bravo", "charlie", "delta"}
		got, err := c.Shuffle(ctx, 11, in)
		if err != nil {
			t.Fatal(err)
		}
		want := ShuffleExpect(t, 11, in)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("Shuffle = %v, want %v", got, want)
		}
	})
	t.Run("sample", func(t *testing.T) {
		got, err := c.Sample(ctx, 50, 5, 9)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 5 {
			t.Errorf("Sample returned %d values, want 5", len(got))
		}
	})
	t.Run("typed contract errors", func(t *testing.T) {
		_, err := c.At(ctx, 42, 100, 100) // i == n
		var apiErr *permclient.APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("want *APIError, got %v", err)
		}
		if apiErr.StatusCode != 400 || apiErr.Temporary() {
			t.Errorf("contract violation = %+v, want permanent 400", apiErr)
		}
		if errors.Is(err, permclient.ErrThrottled) {
			t.Error("a 400 must not match ErrThrottled")
		}
	})
	t.Run("shuffle gate is typed", func(t *testing.T) {
		_, err := c.Shuffle(ctx, 1, []string{"a", "b"}, permclient.WithBackend("bijective"))
		var apiErr *permclient.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 {
			t.Fatalf("bijective shuffle: want 400 APIError, got %v", err)
		}
	})
	t.Run("assign", func(t *testing.T) {
		const spec = "control:9,treat:1"
		a, err := c.Assign(ctx, 42, 1000, 123, spec)
		if err != nil {
			t.Fatal(err)
		}
		wantName := strings.TrimRight(assignOracle(t, 42, 1000, 123, spec), "\n")
		wantIdx, _ := strconv.Atoi(assignIndexOracle(t, 42, 1000, 123, spec))
		if a.Bucket != wantName || a.Index != wantIdx {
			t.Errorf("Assign = %+v, want {%s %d}", a, wantName, wantIdx)
		}
	})
	t.Run("assign bad spec is a typed permanent 400", func(t *testing.T) {
		_, err := c.Assign(ctx, 42, 1000, 123, "a:0")
		var apiErr *permclient.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 || apiErr.Temporary() {
			t.Fatalf("bad spec: want permanent 400 APIError, got %v", err)
		}
	})
	t.Run("epoch fresh and recycled", func(t *testing.T) {
		got, err := c.Epoch(ctx, 7, 40, 3, 0, 40)
		if err != nil {
			t.Fatal(err)
		}
		assertInt64s(t, got, epochExpect(t, 7, 40, 3, false))
		got, err = c.Epoch(ctx, 7, 40, 3, 0, 40, permclient.WithRecycled())
		if err != nil {
			t.Fatal(err)
		}
		assertInt64s(t, got, epochExpect(t, 7, 40, 3, true))
	})
	t.Run("epoch stream pages the whole dataset", func(t *testing.T) {
		var got []int64
		for v, err := range c.EpochStream(ctx, 7, 100, 1, 0) {
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, v)
		}
		assertInt64s(t, got, epochExpect(t, 7, 100, 1, false))
	})
	t.Run("epoch past bound is a typed permanent 400", func(t *testing.T) {
		_, err := c.Epoch(ctx, 7, 40, MaxEpoch+1, 0, 1)
		var apiErr *permclient.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 || apiErr.Temporary() {
			t.Fatalf("epoch past bound: want permanent 400 APIError, got %v", err)
		}
	})
	t.Run("quota exhaustion is ErrThrottled with Retry-After", func(t *testing.T) {
		metered := permclient.New(permclient.Config{
			BaseURL: ts.URL, HTTPClient: ts.Client(), MaxRetries: -1,
			ClientID: MeteredClient,
		})
		if _, err := metered.Chunk(ctx, 42, 100, 0, MeteredBudget); err != nil {
			t.Fatalf("budgeted chunk refused: %v", err)
		}
		_, err := metered.At(ctx, 42, 100, 0)
		if !errors.Is(err, permclient.ErrThrottled) {
			t.Fatalf("exhausted bucket: want ErrThrottled, got %v", err)
		}
		var apiErr *permclient.APIError
		if !errors.As(err, &apiErr) || apiErr.RetryAfter != time.Hour {
			t.Errorf("throttle Retry-After = %v, want 1h (fixed budget)", err)
		}
		if !apiErr.Temporary() {
			t.Error("429 must be Temporary")
		}
	})
}

// TestConformanceCancelMidStream pins the mid-stream cancellation
// behavior in both reachable modes. In-process: a request whose
// context is already dead is cut off at the first page boundary — the
// handler refuses to format values nobody will read. Over TCP: a
// client that walks away mid-body leaves the server fully serviceable,
// and the bytes it did receive are a prefix of the true stream.
func TestConformanceCancelMidStream(t *testing.T) {
	t.Run("in-process dead context", func(t *testing.T) {
		s := newServer(t)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		req := httptest.NewRequest("GET", "/v1/perm/42/chunk?n=10000&len=10000", nil).WithContext(ctx)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		// The handler notices the dead context at the first page boundary
		// and aborts before anything leaves the write buffer: a client
		// that was gone before serving began receives no payload bytes.
		if got := rec.Body.Len(); got != 0 {
			t.Errorf("dead-context chunk served %d bytes, want 0", got)
		}
	})
	t.Run("tcp disconnect", func(t *testing.T) {
		ts := httptest.NewServer(newServer(t))
		defer ts.Close()
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/perm/42/chunk?n=4000000&len=4000000", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 256)
		if _, err := io.ReadFull(resp.Body, buf); err != nil {
			t.Fatal(err)
		}
		cancel()
		resp.Body.Close()
		if code, _ := testkit.Get(t, ts.URL+"/healthz"); code != http.StatusOK {
			t.Fatalf("server unhealthy after client disconnect: %d", code)
		}
		got, err := permclient.New(permclient.Config{BaseURL: ts.URL, HTTPClient: ts.Client()}).
			Chunk(context.Background(), 42, 4000000, 0, 64)
		if err != nil {
			t.Fatalf("chunk after disconnect: %v", err)
		}
		// The prefix we did read before walking away is a prefix of the
		// true stream — a disconnect must never corrupt served bytes.
		full := make([]string, len(got))
		for i, v := range got {
			full[i] = strconv.FormatInt(v, 10)
		}
		prefix := string(buf)
		prefix = prefix[:strings.LastIndexByte(prefix, '\n')+1]
		if !strings.HasPrefix(strings.Join(full, "\n")+"\n", prefix) {
			t.Error("bytes served before the disconnect are not a prefix of the true stream")
		}
	})
}

// epochExpect is the epoch oracle as parsed values: the full epoch-e
// permutation of (seed, n) under the chosen derivation mode.
func epochExpect(t testing.TB, seed uint64, n, epoch int64, recycled bool) []int64 {
	t.Helper()
	mode := workload.EpochFresh
	if recycled {
		mode = workload.EpochRecycled
	}
	key := workload.NewEpocher(seed, mode).Key(epoch)
	return ChunkExpect(t, key, n, 0, n)
}

func assertInt64s(t *testing.T, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d = %d, want %d", i, got[i], want[i])
		}
	}
}
