// Package conformance is the permd wire contract, written down as a
// table of golden request/response fixtures and executed against any
// way of reaching a server: the in-process router, a loopback TCP
// daemon, and the permclient SDK all run the same table (see
// conformance_test.go), so "the handler", "the deployed daemon" and
// "what the SDK sees" can never drift apart silently.
//
// The golden bodies come from two sources. Error paths are literal
// strings — the exact status and bytes a misuse answers with are part
// of the API, and a reworded message is a breaking change this suite
// makes visible. Data-bearing 200s are computed from the randperm
// library at fixture-build time under the same pinned options the
// server uses: the HTTP determinism contract says the wire bytes ARE
// the library bytes, so the library is the one legitimate oracle.
package conformance

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"randperm"
	"randperm/internal/service"
	"randperm/internal/workload"
)

// Fixed parameters every conformance server is built with. The values
// are deliberately small: MaxChunk 16 forces multi-page streaming on
// modest ranges, MaxBody 256 makes the oversized-POST refusal cheap to
// trigger, MaxN 4096 puts the materialization gate in easy reach.
const (
	Procs    = 2
	MaxN     = 4096
	MaxChunk = 16
	MaxBody  = 256
	// MaxEpoch is deliberately tiny so the epoch-bound refusal is a
	// cheap fixture.
	MaxEpoch = 8
	// MeteredClient is the X-Permd-Client identity the quota fixtures
	// exhaust: a fixed (rate-0) budget of MeteredBudget items.
	MeteredClient = "metered"
	MeteredBudget = 8
	// MeteredWLClient is a second metered identity for the workload
	// quota fixtures, so they cannot disturb the exactly-drained budget
	// of MeteredClient: assign debits 1 item, a 3-value epoch chunk
	// debits 3, and the bucket of MeteredWLBudget = 4 is empty.
	MeteredWLClient = "metered-wl"
	MeteredWLBudget = 4
)

// ServerConfig is the canonical configuration under test. Every mode
// must build its server from exactly this config or the golden bodies
// (which encode MaxN, MaxBody and the quota budget) will not match.
func ServerConfig() service.Config {
	return service.Config{
		Procs:    Procs,
		MaxN:     MaxN,
		MaxChunk: MaxChunk,
		MaxBody:  MaxBody,
		MaxEpoch: MaxEpoch,
		Quota: service.QuotaConfig{
			// Default unlimited: only the metered identities are budgeted,
			// so fixtures that are not about quotas never touch a bucket.
			Overrides: map[string]service.QuotaSpec{
				MeteredClient:   {Rate: 0, Burst: MeteredBudget},
				MeteredWLClient: {Rate: 0, Burst: MeteredWLBudget},
			},
		},
	}
}

// Fixture is one golden request/response pair. Fixtures run in table
// order against one shared server per mode: order matters only within
// the quota section, which drains the metered client's fixed budget
// step by step.
type Fixture struct {
	Name   string
	Method string
	Path   string // including query
	Header map[string]string
	Body   string // request body ("" for GET)

	WantStatus int
	WantBody   string // exact bytes when Exact, else prefix
	Exact      bool
	WantHeader map[string]string // subset match
}

// Fixtures builds the golden table. t is only used to fail fast if the
// library oracle itself errors.
func Fixtures(t testing.TB) []Fixture {
	t.Helper()
	bij := func(seed uint64, n, start, length int64) string {
		return chunkOracle(t, seed, n, start, length, randperm.BackendBijective)
	}
	fixtures := []Fixture{
		// --- data-bearing 200s: wire bytes == library bytes ---
		{
			Name: "chunk bijective", Method: "GET",
			Path:       "/v1/perm/42/chunk?n=100&start=0&len=5",
			WantStatus: 200, WantBody: bij(42, 100, 0, 5), Exact: true,
			WantHeader: map[string]string{"Permd-Backend": "bijective"},
		},
		{
			Name: "chunk paged past MaxChunk", Method: "GET",
			Path:       "/v1/perm/42/chunk?n=1000&start=0&len=100",
			WantStatus: 200, WantBody: bij(42, 1000, 0, 100), Exact: true,
		},
		{
			Name: "chunk shmem materializes", Method: "GET",
			Path:       "/v1/perm/7/chunk?n=64&start=0&len=64&backend=shmem",
			WantStatus: 200,
			WantBody:   chunkOracle(t, 7, 64, 0, 64, randperm.BackendSharedMem),
			Exact:      true,
			WantHeader: map[string]string{"Permd-Backend": "shmem"},
		},
		{
			Name: "at", Method: "GET",
			Path:       "/v1/perm/42/at?n=100&i=7",
			WantStatus: 200, WantBody: bij(42, 100, 7, 1), Exact: true,
		},
		{
			Name: "shuffle text", Method: "POST",
			Path:       "/v1/shuffle?seed=11",
			Body:       "alpha\nbravo\ncharlie\ndelta\n",
			WantStatus: 200,
			WantBody:   shuffleOracle(t, 11, []string{"alpha", "bravo", "charlie", "delta"}),
			Exact:      true,
		},
		{
			Name: "sample", Method: "GET",
			Path:       "/v1/sample?n=50&k=5&seed=9",
			WantStatus: 200, WantBody: sampleOracle(t, 50, 5, 9), Exact: true,
		},

		// --- error paths: status AND body are the contract ---
		{
			Name: "malformed seed", Method: "GET",
			Path:       "/v1/perm/abc/chunk?n=10",
			WantStatus: 400,
			WantBody:   "permd: bad seed \"abc\": want a decimal uint64\n", Exact: true,
		},
		{
			Name: "negative n", Method: "GET",
			Path:       "/v1/perm/1/chunk?n=-5",
			WantStatus: 400,
			WantBody:   "permd: missing or negative n: the domain size n is required\n", Exact: true,
		},
		{
			Name: "overflow n", Method: "GET",
			Path:       "/v1/perm/1/chunk?n=99999999999999999999",
			WantStatus: 400,
			WantBody:   "permd: bad n=\"99999999999999999999\": want a decimal integer\n", Exact: true,
		},
		{
			Name: "chunk start past end", Method: "GET",
			Path:       "/v1/perm/1/chunk?n=100&start=200",
			WantStatus: 400,
			WantBody:   "permd: start=200 outside [0, 100]\n", Exact: true,
		},
		{
			Name: "negative len", Method: "GET",
			Path:       "/v1/perm/1/chunk?n=100&len=-3",
			WantStatus: 400,
			WantBody:   "permd: bad len=\"-3\": want a non-negative decimal integer\n", Exact: true,
		},
		{
			Name: "unknown backend", Method: "GET",
			Path:       "/v1/perm/1/chunk?n=100&backend=quantum",
			WantStatus: 400,
			WantBody:   "permd: randperm: unknown backend \"quantum\" (want sim, shmem, inplace, bijective or cluster)\n", Exact: true,
		},
		{
			Name: "materialization bound", Method: "GET",
			Path:       fmt.Sprintf("/v1/perm/1/chunk?n=%d&backend=shmem", MaxN*2),
			WantStatus: 400,
			WantBody: fmt.Sprintf(
				"permd: n=%d exceeds this server's materialization bound %d for backend shmem; use backend=bijective for larger domains\n",
				MaxN*2, MaxN),
			Exact: true,
		},
		{
			Name: "at out of range", Method: "GET",
			Path:       "/v1/perm/1/at?n=100&i=100",
			WantStatus: 400,
			WantBody:   "permd: i=100 outside [0, 100)\n", Exact: true,
		},
		{
			Name: "shuffle refuses non-exact backend", Method: "POST",
			Path:       "/v1/shuffle?backend=bijective",
			Body:       "a\nb\n",
			WantStatus: 400,
			WantBody:   "permd: backend bijective is not exactly uniform over S_n and is refused on /v1/shuffle; use sim, shmem or inplace (or stream the keyed family from /v1/perm)\n",
			Exact:      true,
		},
		{
			Name: "oversized shuffle body", Method: "POST",
			Path:       "/v1/shuffle?seed=1",
			Body:       strings.Repeat("x\n", MaxBody),
			WantStatus: 413,
			WantBody:   fmt.Sprintf("permd: request body exceeds this server's bound %d bytes\n", MaxBody),
			Exact:      true,
		},
		{
			Name: "sample k past n", Method: "GET",
			Path:       "/v1/sample?n=5&k=10",
			WantStatus: 400,
			WantBody:   "permd: k=10 outside [0, n=5]\n", Exact: true,
		},
		{
			Name: "sample bound", Method: "GET",
			Path:       fmt.Sprintf("/v1/sample?n=%d&k=1", MaxN*2),
			WantStatus: 400,
			WantBody:   fmt.Sprintf("permd: n=%d exceeds this server's bound %d\n", MaxN*2, MaxN),
			Exact:      true,
		},
		{
			Name: "unknown path", Method: "GET",
			Path:       "/v1/nope",
			WantStatus: 404,
		},
		{
			Name: "method not allowed", Method: "POST",
			Path:       "/v1/sample?n=10&k=1",
			WantStatus: 405,
		},

		// --- quota exhaustion: drains the metered identity's fixed
		// budget of MeteredBudget items in a pinned order ---
		{
			Name: "quota: 5-item chunk admitted", Method: "GET",
			Path:       "/v1/perm/42/chunk?n=100&start=0&len=5",
			Header:     map[string]string{"X-Permd-Client": MeteredClient},
			WantStatus: 200, WantBody: bij(42, 100, 0, 5), Exact: true,
		},
		{
			Name: "quota: point read admitted (2 left)", Method: "GET",
			Path:       "/v1/perm/42/at?n=100&i=7",
			Header:     map[string]string{"X-Permd-Client": MeteredClient},
			WantStatus: 200, WantBody: bij(42, 100, 7, 1), Exact: true,
		},
		{
			Name: "quota: 5-item chunk over budget", Method: "GET",
			Path:       "/v1/perm/42/chunk?n=100&start=0&len=5",
			Header:     map[string]string{"X-Permd-Client": MeteredClient},
			WantStatus: 429,
			WantBody:   "permd: quota exhausted for client \"metered\": retry after 3600s\n",
			Exact:      true,
			WantHeader: map[string]string{"Retry-After": "3600"},
		},
		{
			Name: "quota: refusal debits nothing", Method: "GET",
			Path:       "/v1/perm/42/at?n=100&i=8",
			Header:     map[string]string{"X-Permd-Client": MeteredClient},
			WantStatus: 200, WantBody: bij(42, 100, 8, 1), Exact: true,
		},
		{
			Name: "quota: last item", Method: "GET",
			Path:       "/v1/perm/42/at?n=100&i=9",
			Header:     map[string]string{"X-Permd-Client": MeteredClient},
			WantStatus: 200, WantBody: bij(42, 100, 9, 1), Exact: true,
		},
		{
			Name: "quota: empty bucket refuses a point read", Method: "GET",
			Path:       "/v1/perm/42/at?n=100&i=10",
			Header:     map[string]string{"X-Permd-Client": MeteredClient},
			WantStatus: 429,
			WantBody:   "permd: quota exhausted for client \"metered\": retry after 3600s\n",
			Exact:      true,
			WantHeader: map[string]string{"Retry-After": "3600"},
		},
		{
			Name: "quota: 400 outranks 429", Method: "GET",
			Path:       "/v1/perm/42/at?n=100&i=-1",
			Header:     map[string]string{"X-Permd-Client": MeteredClient},
			WantStatus: 400,
			WantBody:   "permd: i=-1 outside [0, 100)\n", Exact: true,
		},
		{
			Name: "quota: other clients unaffected", Method: "GET",
			Path:       "/v1/perm/42/at?n=100&i=10",
			WantStatus: 200, WantBody: bij(42, 100, 10, 1), Exact: true,
		},

		// --- workload endpoints: assignment and epoch bytes come from
		// the internal/workload oracle, errors are pinned strings ---
		{
			Name: "assign", Method: "GET",
			Path:       "/v1/assign?seed=42&n=1000&id=123&spec=control:9,treat:1",
			WantStatus: 200,
			WantBody:   assignOracle(t, 42, 1000, 123, "control:9,treat:1"),
			Exact:      true,
			WantHeader: map[string]string{
				"Permd-Backend": "bijective",
				"Permd-Bucket":  assignIndexOracle(t, 42, 1000, 123, "control:9,treat:1"),
			},
		},
		{
			Name: "assign explicit bijective backend", Method: "GET",
			Path:       "/v1/assign?seed=42&n=1000&id=123&spec=control:9,treat:1&backend=bijective",
			WantStatus: 200,
			WantBody:   assignOracle(t, 42, 1000, 123, "control:9,treat:1"),
			Exact:      true,
		},
		{
			Name: "epochs fresh", Method: "GET",
			Path:       "/v1/epochs?seed=7&n=40&epoch=3&len=40",
			WantStatus: 200,
			WantBody:   epochOracle(t, 7, 40, 3, workload.EpochFresh, 0, 40),
			Exact:      true,
			WantHeader: map[string]string{
				"Permd-Backend":    "bijective",
				"Permd-Epoch-Mode": "fresh",
				"Permd-Epoch-Key":  epochKeyOracle(7, 3, workload.EpochFresh),
			},
		},
		{
			Name: "epochs recycled", Method: "GET",
			Path:       "/v1/epochs?seed=7&n=40&epoch=3&mode=recycled&len=40",
			WantStatus: 200,
			WantBody:   epochOracle(t, 7, 40, 3, workload.EpochRecycled, 0, 40),
			Exact:      true,
			WantHeader: map[string]string{
				"Permd-Epoch-Mode": "recycled",
				"Permd-Epoch-Key":  epochKeyOracle(7, 3, workload.EpochRecycled),
			},
		},
		{
			Name: "epochs paged past MaxChunk", Method: "GET",
			Path:       "/v1/epochs?seed=7&n=100&epoch=1&len=100",
			WantStatus: 200,
			WantBody:   epochOracle(t, 7, 100, 1, workload.EpochFresh, 0, 100),
			Exact:      true,
		},
		{
			Name: "epochs windowed", Method: "GET",
			Path:       "/v1/epochs?seed=7&n=40&epoch=3&start=10&len=5",
			WantStatus: 200,
			WantBody:   epochOracle(t, 7, 40, 3, workload.EpochFresh, 10, 5),
			Exact:      true,
		},
		{
			Name: "assign bad weight spec", Method: "GET",
			Path:       "/v1/assign?seed=1&n=100&id=0&spec=a:0",
			WantStatus: 400,
			WantBody:   "permd: bad spec: workload: bucket \"a\": weight \"0\": want a positive decimal integer\n",
			Exact:      true,
		},
		{
			Name: "assign empty spec", Method: "GET",
			Path:       "/v1/assign?seed=1&n=100&id=0",
			WantStatus: 400,
			WantBody:   "permd: bad spec: workload: empty assignment spec: want name:weight,...\n",
			Exact:      true,
		},
		{
			Name: "assign refuses non-bijective backend", Method: "GET",
			Path:       "/v1/assign?seed=1&n=100&id=0&spec=a:1&backend=shmem",
			WantStatus: 400,
			WantBody:   "permd: /v1/assign requires the bijective backend (got shmem): it is defined on the keyed bijection's O(1) Index\n",
			Exact:      true,
		},
		{
			Name: "assign id out of range", Method: "GET",
			Path:       "/v1/assign?seed=1&n=100&id=100&spec=a:1",
			WantStatus: 400,
			WantBody:   "permd: id=100 outside [0, 100)\n", Exact: true,
		},
		{
			Name: "assign missing n", Method: "GET",
			Path:       "/v1/assign?seed=1&id=0&spec=a:1",
			WantStatus: 400,
			WantBody:   "permd: missing or non-positive n: the id-domain size n is required\n",
			Exact:      true,
		},
		{
			Name: "epochs refuses non-bijective backend", Method: "GET",
			Path:       "/v1/epochs?seed=1&n=100&backend=sim",
			WantStatus: 400,
			WantBody:   "permd: /v1/epochs requires the bijective backend (got sim): it is defined on the keyed bijection's O(1) Index\n",
			Exact:      true,
		},
		{
			Name: "epochs unknown mode", Method: "GET",
			Path:       "/v1/epochs?seed=1&n=100&mode=stale",
			WantStatus: 400,
			WantBody:   "permd: workload: unknown epoch mode \"stale\" (want fresh or recycled)\n",
			Exact:      true,
		},
		{
			Name: "epochs past bound", Method: "GET",
			Path:       fmt.Sprintf("/v1/epochs?seed=1&n=100&epoch=%d", MaxEpoch+1),
			WantStatus: 400,
			WantBody:   fmt.Sprintf("permd: epoch=%d outside [0, %d]\n", MaxEpoch+1, MaxEpoch),
			Exact:      true,
		},

		// --- workload quota: the second metered identity's budget of
		// MeteredWLBudget = 4 items, debited exactly as served ---
		{
			Name: "quota: assign debits one item", Method: "GET",
			Path:       "/v1/assign?seed=42&n=1000&id=123&spec=control:9,treat:1",
			Header:     map[string]string{"X-Permd-Client": MeteredWLClient},
			WantStatus: 200,
			WantBody:   assignOracle(t, 42, 1000, 123, "control:9,treat:1"),
			Exact:      true,
		},
		{
			Name: "quota: epoch chunk debits its length (3)", Method: "GET",
			Path:       "/v1/epochs?seed=7&n=40&epoch=3&len=3",
			Header:     map[string]string{"X-Permd-Client": MeteredWLClient},
			WantStatus: 200,
			WantBody:   epochOracle(t, 7, 40, 3, workload.EpochFresh, 0, 3),
			Exact:      true,
		},
		{
			Name: "quota: workload budget exhausted", Method: "GET",
			Path:       "/v1/assign?seed=42&n=1000&id=124&spec=control:9,treat:1",
			Header:     map[string]string{"X-Permd-Client": MeteredWLClient},
			WantStatus: 429,
			WantBody:   "permd: quota exhausted for client \"metered-wl\": retry after 3600s\n",
			Exact:      true,
			WantHeader: map[string]string{"Retry-After": "3600"},
		},
		{
			Name: "quota: workload 400 outranks 429", Method: "GET",
			Path:       "/v1/assign?seed=42&n=1000&id=124&spec=nope",
			Header:     map[string]string{"X-Permd-Client": MeteredWLClient},
			WantStatus: 400,
			WantBody:   "permd: bad spec: workload: bucket \"nope\": want name:weight\n",
			Exact:      true,
		},
	}
	return fixtures
}

// assignOracle renders the /v1/assign golden body — the bucket name
// the workload library assigns, newline-terminated.
func assignOracle(t testing.TB, seed uint64, n, id int64, spec string) string {
	t.Helper()
	sp, err := workload.ParseAssignSpec(spec)
	if err != nil {
		t.Fatalf("conformance oracle: %v", err)
	}
	_, name := workload.Assign(sp, seed, n, id)
	return name + "\n"
}

// assignIndexOracle renders the Permd-Bucket header value.
func assignIndexOracle(t testing.TB, seed uint64, n, id int64, spec string) string {
	t.Helper()
	sp, err := workload.ParseAssignSpec(spec)
	if err != nil {
		t.Fatalf("conformance oracle: %v", err)
	}
	idx, _ := workload.Assign(sp, seed, n, id)
	return strconv.Itoa(idx)
}

// epochKeyOracle derives the epoch's bijection key the way the server
// does — the Permd-Epoch-Key header value.
func epochKeyOracle(seed uint64, epoch int64, mode workload.EpochMode) string {
	return strconv.FormatUint(workload.NewEpocher(seed, mode).Key(epoch), 10)
}

// epochOracle renders the /v1/epochs golden body: the epoch key's
// bijective permutation under the pinned server options.
func epochOracle(t testing.TB, seed uint64, n, epoch int64, mode workload.EpochMode, start, length int64) string {
	t.Helper()
	key := workload.NewEpocher(seed, mode).Key(epoch)
	return chunkOracle(t, key, n, start, length, randperm.BackendBijective)
}

// chunkOracle renders the library's own chunk bytes under the pinned
// server options — the golden body for a /v1/perm chunk or at request.
func chunkOracle(t testing.TB, seed uint64, n, start, length int64, backend randperm.Backend) string {
	t.Helper()
	pm, err := randperm.NewPermuter(n, randperm.Options{Procs: Procs, Seed: seed, Backend: backend})
	if err != nil {
		t.Fatalf("conformance oracle: %v", err)
	}
	vals := make([]int64, length)
	m, err := pm.Chunk(vals, start)
	if err != nil {
		t.Fatalf("conformance oracle: %v", err)
	}
	var b strings.Builder
	for _, v := range vals[:m] {
		fmt.Fprintf(&b, "%d\n", v)
	}
	return b.String()
}

// shuffleOracle renders the text-mode shuffle golden body: the server
// runs ParallelShuffle with Procs = min(server procs, count) on the
// shmem backend.
func shuffleOracle(t testing.TB, seed uint64, lines []string) string {
	t.Helper()
	out, _, err := randperm.ParallelShuffle(lines, randperm.Options{
		Procs: min(Procs, len(lines)), Seed: seed, Backend: randperm.BackendSharedMem,
	})
	if err != nil {
		t.Fatalf("conformance oracle: %v", err)
	}
	return strings.Join(out, "\n") + "\n"
}

// ShuffleExpect is shuffleOracle for SDK-level asserts (JSON mode
// shuffles the same element order as text mode — the permutation is a
// function of (seed, backend, procs, count) only).
func ShuffleExpect(t testing.TB, seed uint64, lines []string) []string {
	t.Helper()
	out, _, err := randperm.ParallelShuffle(lines, randperm.Options{
		Procs: min(Procs, len(lines)), Seed: seed, Backend: randperm.BackendSharedMem,
	})
	if err != nil {
		t.Fatalf("conformance oracle: %v", err)
	}
	return out
}

// sampleOracle renders the sample endpoint's golden body.
func sampleOracle(t testing.TB, n, k int64, seed uint64) string {
	t.Helper()
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}
	sample, _, err := randperm.ParallelSample(data, k, randperm.Options{Procs: Procs, Seed: seed})
	if err != nil {
		t.Fatalf("conformance oracle: %v", err)
	}
	var b strings.Builder
	for _, v := range sample {
		fmt.Fprintf(&b, "%d\n", v)
	}
	return b.String()
}

// ChunkExpect exposes the chunk oracle to SDK-level asserts as parsed
// values rather than wire bytes.
func ChunkExpect(t testing.TB, seed uint64, n, start, length int64) []int64 {
	t.Helper()
	pm, err := randperm.NewPermuter(n, randperm.Options{Procs: Procs, Seed: seed, Backend: randperm.BackendBijective})
	if err != nil {
		t.Fatalf("conformance oracle: %v", err)
	}
	vals := make([]int64, length)
	if _, err := pm.Chunk(vals, start); err != nil {
		t.Fatalf("conformance oracle: %v", err)
	}
	return vals
}

// Response is what a transport hands back to the fixture checker.
type Response struct {
	Status int
	Body   string
	Header map[string]string // only the keys the fixture asks about
}

// Transport executes one fixture request against the server under
// test. Implementations: httptest recorder, real TCP client.
type Transport func(t *testing.T, f Fixture) Response

// Run drives the whole fixture table through one transport against one
// fresh server. Each fixture is a subtest; the quota section relies on
// table order, which subtests preserve (they run sequentially).
func Run(t *testing.T, via Transport) {
	t.Helper()
	for _, f := range Fixtures(t) {
		t.Run(f.Name, func(t *testing.T) {
			got := via(t, f)
			if got.Status != f.WantStatus {
				t.Fatalf("status = %d, want %d (body %q)", got.Status, f.WantStatus, got.Body)
			}
			if f.Exact {
				if got.Body != f.WantBody {
					t.Errorf("body = %q, want %q", got.Body, f.WantBody)
				}
			} else if f.WantBody != "" && !strings.HasPrefix(got.Body, f.WantBody) {
				t.Errorf("body = %q, want prefix %q", got.Body, f.WantBody)
			}
			for k, want := range f.WantHeader {
				if got.Header[k] != want {
					t.Errorf("header %s = %q, want %q", k, got.Header[k], want)
				}
			}
		})
	}
}
