package service

import (
	"context"
	"errors"
	"sync"
	"time"

	"randperm"
	"randperm/internal/events"
)

// The materialization admission gate: at most Config.MaxBuilds n-word
// handle builds run concurrently, excess requests queue up to
// Config.BuildWait (then 503 with a Retry-After), and a build whose
// every interested client has disconnected is canceled mid-flight
// through Permuter.MaterializeContext and the engine worker pools —
// the engine's goroutines stop claiming tasks, the half-built
// permutation is dropped, and the handle re-arms for the next request.
//
// The gate exists because a materializing build is the one unbounded
// cost a request can trigger: chunk serving streams through O(MaxChunk)
// buffers and the quota layer bounds items served, but a cold handle on
// sim/shmem/inplace/cluster costs O(n) work and 8n bytes the moment it
// is touched. Without the gate, a burst of cold keys turns into an
// unbounded number of concurrent n-word builds racing for the same
// cores.

// errBuildQueueFull is the admission refusal: the build-queue deadline
// passed with every build slot still occupied. Served as 503 with a
// Retry-After so well-behaved clients (permclient) back off.
var errBuildQueueFull = errors.New("materialization queue full: every build slot stayed busy past the queue deadline")

// buildAttempt is one shared run of a handle's lazy build. Waiters join
// it instead of racing Permuter's own sync.Once directly so the attempt
// can be abandoned: each waiter that disconnects decrements the count,
// and the last one out cancels the engine work.
type buildAttempt struct {
	done    chan struct{} // closed when the attempt completes
	err     error         // valid after done is closed
	waiters int
	cancel  context.CancelFunc
}

// buildGate is the per-cache-entry controller. The zero value is ready;
// cur is nil whenever no attempt is in flight.
type buildGate struct {
	mu  sync.Mutex
	cur *buildAttempt
}

// ensureMaterialized forces e's handle through its lazy build under the
// admission gate, returning once the permutation is resident (nil), the
// client gave up (its ctx.Err()), or the build could not be admitted
// (errBuildQueueFull) or failed. Bijective handles short-circuit: they
// never materialize and never occupy a build slot. Safe for concurrent
// use; racing requests for one handle share one build and one queue
// slot, and a request that arrives just as the previous waiters
// abandoned their build simply starts (and governs) a fresh one.
func (s *Server) ensureMaterialized(ctx context.Context, e *handleEntry) error {
	if e.key.backend == randperm.BackendBijective {
		return nil
	}
	for {
		if e.pm.Materialized() {
			return nil
		}
		err := s.joinBuild(ctx, e)
		switch {
		case err == nil:
			return nil
		case ctx.Err() != nil:
			// The client itself is gone; nothing left to serve.
			return ctx.Err()
		case errors.Is(err, context.Canceled):
			// The attempt this request was waiting on was abandoned by
			// the clients that started it (all waiters left before we
			// joined, or the cache raced). The handle re-armed itself,
			// so retry with this request as the new owner.
			continue
		default:
			return err
		}
	}
}

// joinBuild waits on (starting if necessary) the entry's in-flight
// build attempt.
func (s *Server) joinBuild(ctx context.Context, e *handleEntry) error {
	g := &e.gate
	g.mu.Lock()
	a := g.cur
	if a == nil {
		bctx, cancel := context.WithCancel(context.Background())
		a = &buildAttempt{done: make(chan struct{}), cancel: cancel}
		g.cur = a
		go s.runBuild(a, e, bctx)
	}
	a.waiters++
	g.mu.Unlock()

	select {
	case <-a.done:
		return a.err
	case <-ctx.Done():
		g.mu.Lock()
		a.waiters--
		if a.waiters == 0 {
			// Last interested client gone: abort the engine work.
			a.cancel()
		}
		g.mu.Unlock()
		return ctx.Err()
	}
}

// runBuild is the attempt body: acquire a build slot (queueing up to
// BuildWait), run the handle's materialization under the attempt
// context, release, and publish the result. It runs in its own
// goroutine so that no single request's lifetime governs the build —
// only the waiter refcount does.
func (s *Server) runBuild(a *buildAttempt, e *handleEntry, bctx context.Context) {
	defer a.cancel()
	queued, err := s.acquireBuildSlot(bctx)
	s.publishAdmission(e.key, queued, err)
	if err == nil {
		s.met.admissionBuilds.Add(1)
		s.met.admissionInflight.Add(1)
		err = e.pm.MaterializeContext(bctx)
		s.met.admissionInflight.Add(-1)
		<-s.buildSem
		if err != nil && bctx.Err() != nil {
			s.met.admissionCancels.Add(1)
		}
	}
	g := &e.gate
	g.mu.Lock()
	a.err = err
	g.cur = nil
	close(a.done)
	g.mu.Unlock()
}

// acquireBuildSlot takes one slot of the bounded build semaphore,
// queueing up to Config.BuildWait when all slots are busy. queued
// reports whether the caller had to wait for a busy slot (whatever the
// outcome).
func (s *Server) acquireBuildSlot(ctx context.Context) (queued bool, err error) {
	select {
	case s.buildSem <- struct{}{}:
		return false, nil
	default:
	}
	s.met.admissionQueued.Add(1)
	t := time.NewTimer(s.cfg.BuildWait)
	defer t.Stop()
	select {
	case s.buildSem <- struct{}{}:
		return true, nil
	case <-t.C:
		s.met.admissionTimeouts.Add(1)
		return true, errBuildQueueFull
	case <-ctx.Done():
		return true, ctx.Err()
	}
}

// publishAdmission reports a build's gate resolution onto the event
// bus: Detail "admitted" (free slot), "queued" (waited, then got one),
// "refused" (queue deadline, the 503 path) or "abandoned" (every
// waiting client disconnected first).
func (s *Server) publishAdmission(key handleKey, queued bool, err error) {
	ev := events.New(events.TypeAdmissionQueue)
	ev.N, ev.Seed, ev.Backend = key.n, key.seed, key.backend.String()
	switch {
	case err == nil && !queued:
		ev.Detail = "admitted"
	case err == nil:
		ev.Detail = "queued"
	case errors.Is(err, errBuildQueueFull):
		ev.Detail = "refused"
	default:
		ev.Detail = "abandoned"
	}
	s.bus.Publish(ev)
}

// buildWaitRetry is the Retry-After (in whole seconds, >= 1) answered
// with a 503 queue refusal: the queue deadline itself — by then at
// least one slot has turned over, or the daemon is genuinely saturated
// and the operator-facing metrics say so.
func buildWaitRetry(wait time.Duration) int {
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
