package service

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"randperm/internal/harness/testkit"
	"randperm/internal/workload"
)

// metricValue scrapes one un-labeled counter out of /metrics.
func metricValue(t *testing.T, s *Server, name string) int64 {
	t.Helper()
	_, body := get(t, s, "/metrics")
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in /metrics", name)
	return 0
}

// TestAssignDeterministicAcrossServers pins the /v1/assign determinism
// contract: the bucket is a pure function of (seed, spec, id, n) —
// byte-identical across server restarts (independent instances) and
// across every config knob that must not matter (Procs, MaxChunk), and
// equal to the workload library oracle.
func TestAssignDeterministicAcrossServers(t *testing.T) {
	const (
		spec = "control:8,treat:1,holdout:1"
		n    = int64(100000)
		seed = uint64(42)
	)
	sp, err := workload.ParseAssignSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	servers := []*Server{
		newTestServer(t, Config{}),
		newTestServer(t, Config{}),            // restart
		newTestServer(t, Config{Procs: 3}),    // different decomposition width
		newTestServer(t, Config{MaxChunk: 7}), // different paging
	}
	for id := int64(0); id < n; id += 9973 {
		_, want := workload.Assign(sp, seed, n, id)
		for i, s := range servers {
			code, body := get(t, s, "/v1/assign?seed=42&n=100000&id="+strconv.FormatInt(id, 10)+"&spec="+spec)
			if code != http.StatusOK {
				t.Fatalf("server %d id %d: status %d: %s", i, id, code, body)
			}
			if body != want+"\n" {
				t.Fatalf("server %d id %d: bucket %q, want %q", i, id, body, want)
			}
		}
	}
}

// TestAssignPointLookupsAreO1 is the acceptance criterion that assign
// never materializes: at n = 2^40 — far past any materialization bound
// — a burst of assigns triggers exactly one handle construction, zero
// materializations, and leaves both counters flat from then on.
func TestAssignPointLookupsAreO1(t *testing.T) {
	s := newTestServer(t, Config{})
	const path = "/v1/assign?seed=7&n=1099511627776&spec=control:9,treat:1&id="
	if code, body := get(t, s, path+"0"); code != http.StatusOK {
		t.Fatalf("first assign: %d %s", code, body)
	}
	misses := metricValue(t, s, "permd_handle_cache_misses_total")
	mats := metricValue(t, s, "permd_materializations_total")
	if misses != 1 || mats != 0 {
		t.Fatalf("after first assign: misses=%d materializations=%d, want 1 and 0", misses, mats)
	}
	for id := int64(1); id <= 50; id++ {
		if code, _ := get(t, s, path+strconv.FormatInt(id*1e9, 10)); code != http.StatusOK {
			t.Fatalf("assign %d failed", id)
		}
	}
	if got := metricValue(t, s, "permd_handle_cache_misses_total"); got != misses {
		t.Errorf("repeated assigns constructed handles: misses %d -> %d", misses, got)
	}
	if got := metricValue(t, s, "permd_materializations_total"); got != 0 {
		t.Errorf("assign materialized %d permutations at n=2^40", got)
	}
	if got := metricValue(t, s, "permd_assign_lookups_total"); got != 51 {
		t.Errorf("assign lookups counter = %d, want 51", got)
	}
}

// TestEpochChunkSplitByteIdentical: an epoch's bytes are a pure
// function of (seed, n, epoch, mode) — reassembling the stream from
// windows of any size, from servers with any MaxChunk, yields the
// identical bytes, in both derivation modes.
func TestEpochChunkSplitByteIdentical(t *testing.T) {
	const n = 500
	whole := newTestServer(t, Config{})
	for _, mode := range []string{"fresh", "recycled"} {
		q := "&mode=" + mode
		code, want := get(t, whole, "/v1/epochs?seed=9&n=500&epoch=4&len=500"+q)
		if code != http.StatusOK {
			t.Fatalf("mode %s: status %d", mode, code)
		}
		for _, split := range []int64{1, 7, 16, 499, 500} {
			s := newTestServer(t, Config{MaxChunk: 13}) // restart + odd paging
			var b strings.Builder
			for start := int64(0); start < n; start += split {
				length := min(split, n-start)
				code, part := get(t, s, "/v1/epochs?seed=9&n=500&epoch=4"+q+
					"&start="+strconv.FormatInt(start, 10)+"&len="+strconv.FormatInt(length, 10))
				if code != http.StatusOK {
					t.Fatalf("mode %s split %d at %d: status %d", mode, split, start, code)
				}
				b.WriteString(part)
			}
			if b.String() != want {
				t.Errorf("mode %s: split-%d reassembly differs from whole-stream bytes", mode, split)
			}
		}
	}
}

// TestWorkloadAcrossCluster: a 2-node permd cluster answers /v1/assign
// and /v1/epochs identically from either node — the workload contracts
// hold fleet-wide with no cross-node coordination, because every
// answer is derived, not stored.
func TestWorkloadAcrossCluster(t *testing.T) {
	servers := bootServiceCluster(t, 2, Config{Procs: 4})
	for _, path := range []string{
		"/v1/assign?seed=42&n=1000000&id=123456&spec=control:9,treat:1",
		"/v1/epochs?seed=7&n=200&epoch=5&len=200",
		"/v1/epochs?seed=7&n=200&epoch=5&mode=recycled&len=200",
	} {
		code0, body0 := httpGet(t, servers[0].URL+path)
		code1, body1 := httpGet(t, servers[1].URL+path)
		if code0 != http.StatusOK || code1 != http.StatusOK {
			t.Fatalf("%s: statuses %d, %d", path, code0, code1)
		}
		if body0 != body1 {
			t.Errorf("%s: node 0 and node 1 disagree:\n%q\n%q", path, body0, body1)
		}
	}
}

// TestWorkloadMetrics drives a known workload mix and checks the new
// counter families.
func TestWorkloadMetrics(t *testing.T) {
	s := newTestServer(t, Config{})
	get(t, s, "/v1/assign?seed=1&n=100&id=5&spec=a:1,b:1")
	get(t, s, "/v1/assign?seed=1&n=100&id=6&spec=a:1,b:1")
	get(t, s, "/v1/assign?seed=1&n=100&id=999&spec=a:1,b:1") // 400: id out of range
	get(t, s, "/v1/epochs?seed=1&n=64&epoch=0&len=64")
	get(t, s, "/v1/epochs?seed=1&n=64&epoch=1&mode=recycled&len=64")
	_, body := get(t, s, "/metrics")
	for _, want := range []string{
		`permd_requests_total{endpoint="assign"} 3`,
		`permd_requests_total{endpoint="epochs"} 2`,
		"permd_assign_lookups_total 2",
		"permd_epoch_items_total 128",
		"permd_epoch_recycled_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if metricValue(t, s, "permd_epoch_ns_total") <= 0 {
		t.Error("epoch ns counter did not advance")
	}
}

// TestEpocherMemoEviction: the per-(seed, mode) derivation memo is
// bounded, and eviction is invisible — keys are pure functions of
// (seed, epoch, mode), so a re-derived key equals the memoized one.
func TestEpocherMemoEviction(t *testing.T) {
	s := newTestServer(t, Config{})
	first := s.epocher(0, workload.EpochFresh).Key(3)
	// Blow past the memo bound with distinct seeds.
	for seed := uint64(1); seed <= maxEpochers+5; seed++ {
		s.epocher(seed, workload.EpochFresh)
	}
	s.epochersMu.Lock()
	size := len(s.epochers)
	s.epochersMu.Unlock()
	if size > maxEpochers {
		t.Errorf("epocher memo grew to %d, bound %d", size, maxEpochers)
	}
	if again := s.epocher(0, workload.EpochFresh).Key(3); again != first {
		t.Errorf("re-derived key %#x differs from pre-eviction key %#x", again, first)
	}
}

// TestEpochsServedMatchLibraryViaHeader closes the loop CI relies on:
// the Permd-Epoch-Key header names the bijection key, and the body is
// exactly that key's permutation as served by /v1/perm — so any
// observer can audit an epoch response against the core API.
func TestEpochsServedMatchLibraryViaHeader(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/epochs?seed=3&n=120&epoch=2&len=120", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("epochs: status %d", rec.Code)
	}
	key := rec.Header().Get("Permd-Epoch-Key")
	if key == "" {
		t.Fatal("no Permd-Epoch-Key header")
	}
	code, want := get(t, s, "/v1/perm/"+key+"/chunk?n=120&len=120&backend=bijective")
	if code != http.StatusOK {
		t.Fatalf("perm chunk for epoch key: status %d", code)
	}
	if rec.Body.String() != want {
		t.Error("epoch bytes differ from /v1/perm bytes for the advertised key")
	}
	// Cross-check the testkit path too: a loopback daemon serves the
	// same bytes the in-process router does.
	srv := testkit.Loopback(t, 1, func(int, []string) http.Handler { return s })[0]
	if code, body := testkit.Get(t, srv.URL+"/v1/epochs?seed=3&n=120&epoch=2&len=120"); code != http.StatusOK || body != rec.Body.String() {
		t.Errorf("loopback epoch bytes differ (status %d)", code)
	}
}

// BenchmarkAssign measures served assignment lookups end to end over
// loopback TCP — the figure BENCHMARKS.md quotes for /v1/assign. Each
// request is one O(1) bijection evaluation at n = 2^40.
func BenchmarkAssign(b *testing.B) {
	s, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := (int64(i) * 2654435761) % (1 << 40)
		resp, err := client.Get(ts.URL + "/v1/assign?seed=42&n=1099511627776&spec=control:9,treat:1&id=" + strconv.FormatInt(id, 10))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	perReq := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(perReq, "ns/lookup")
	b.ReportMetric(1e9/perReq, "req/s")
}

// BenchmarkEpochChunk measures served epoch-shuffle throughput over
// loopback TCP, one 2^16-value page per request against a 2^30-item
// dataset, rotating epochs so key derivation and the handle cache are
// both in play.
func BenchmarkEpochChunk(b *testing.B) {
	s, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	const chunkLen = 1 << 16
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		epoch := int64(i) % 4
		start := (int64(i) * chunkLen) % (1<<30 - chunkLen)
		resp, err := client.Get(fmt.Sprintf("%s/v1/epochs?seed=42&n=1073741824&epoch=%d&start=%d&len=%d", ts.URL, epoch, start, chunkLen))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	perReq := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(perReq/chunkLen, "ns/item")
	b.ReportMetric(1e9/perReq, "req/s")
}
