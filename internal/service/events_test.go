package service

// End-to-end drills for the live event stream: the pinned per-request
// event sequence, filtering, resume, the subscriber cap, wedged-
// subscriber isolation (the "events are best-effort, bytes served
// never" contract), byte identity under subscribers, the cluster chaos
// drill, and the serving-overhead acceptance bound. Everything here
// talks to a real httptest server over TCP — the same path curl and
// permtop use.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"randperm/internal/events"
)

// dialEvents opens one GET /v1/events connection and returns the raw
// response without asserting on it. The caller owns resp.Body.
func dialEvents(t *testing.T, base, query string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("GET", base+"/v1/events"+query, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// sseConn is a draining SSE subscription: a reader goroutine parses
// frames into a buffered channel the test consumes with deadlines.
type sseConn struct {
	resp *http.Response
	ch   chan events.Event
}

func openEvents(t *testing.T, base, query string, hdr map[string]string) *sseConn {
	t.Helper()
	resp := dialEvents(t, base, query, hdr)
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET /v1/events%s: status %d: %s", query, resp.StatusCode, body)
	}
	c := &sseConn{resp: resp, ch: make(chan events.Event, 1024)}
	t.Cleanup(func() { resp.Body.Close() })
	go func() {
		defer close(c.ch)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<16), 1<<20)
		var data string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if data == "" {
					continue
				}
				var ev events.Event
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					return
				}
				data = ""
				c.ch <- ev
			case strings.HasPrefix(line, "data:"):
				data = strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")
			}
		}
	}()
	return c
}

// next returns the next event or fails the test after timeout.
func (c *sseConn) next(t *testing.T, timeout time.Duration) events.Event {
	t.Helper()
	select {
	case ev, ok := <-c.ch:
		if !ok {
			t.Fatal("event stream closed early")
		}
		return ev
	case <-time.After(timeout):
		t.Fatal("no event within deadline")
	}
	panic("unreachable")
}

// expectNone fails if any event arrives within the window.
func (c *sseConn) expectNone(t *testing.T, window time.Duration) {
	t.Helper()
	select {
	case ev, ok := <-c.ch:
		if ok {
			t.Fatalf("unexpected event: %+v", ev)
		}
	case <-time.After(window):
	}
}

// TestEventsPinnedSequence pins the per-request event order for one
// materializing chunk: admission_queue (the build-gate resolution,
// published before the build starts) -> materialization (from inside
// the build) -> slow_request (from the middleware, after the handler
// returns — forced here by a nanosecond threshold). The order is
// structural, not scheduled: each publish happens-before the next
// stage begins, so the bus sequence numbers must agree.
func TestEventsPinnedSequence(t *testing.T) {
	s := newTestServer(t, Config{Events: EventsConfig{SlowThreshold: time.Nanosecond}})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close) // after the stream bodies close (cleanups are LIFO)

	c := openEvents(t, ts.URL, "?types=admission_queue,materialization,slow_request", nil)
	resp, err := http.Get(ts.URL + "/v1/perm/7/chunk?n=4096&len=16&backend=shmem")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk: status %d", resp.StatusCode)
	}

	adm := c.next(t, 5*time.Second)
	if adm.Type != events.TypeAdmissionQueue || adm.Detail != "admitted" {
		t.Fatalf("first event: got %+v, want admission_queue/admitted", adm)
	}
	if adm.N != 4096 || adm.Seed != 7 || adm.Backend != "shmem" {
		t.Errorf("admission names the wrong build: %+v", adm)
	}
	mat := c.next(t, 5*time.Second)
	if mat.Type != events.TypeMaterialization {
		t.Fatalf("second event: got %+v, want materialization", mat)
	}
	if mat.N != 4096 || mat.Seed != 7 || mat.Backend != "shmem" {
		t.Errorf("materialization names the wrong build: %+v", mat)
	}
	slow := c.next(t, 5*time.Second)
	if slow.Type != events.TypeSlowRequest {
		t.Fatalf("third event: got %+v, want slow_request", slow)
	}
	if slow.Endpoint != "/v1/perm/7/chunk" || slow.Items != 16 {
		t.Errorf("slow_request misdescribes the request: %+v", slow)
	}
	if !(adm.Seq < mat.Seq && mat.Seq < slow.Seq) {
		t.Errorf("sequence numbers out of order: %d, %d, %d", adm.Seq, mat.Seq, slow.Seq)
	}
	c.expectNone(t, 100*time.Millisecond)
}

// TestEventsFilter: ?types= narrows the stream server-side — a
// materialization-only subscriber sees the materialization and nothing
// else from a request that also publishes admission, request and (here)
// slow events. A bogus filter is a 400 before the subscription exists.
func TestEventsFilter(t *testing.T) {
	s := newTestServer(t, Config{Events: EventsConfig{SlowThreshold: time.Nanosecond}})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	c := openEvents(t, ts.URL, "?types=materialization", nil)
	resp, err := http.Get(ts.URL + "/v1/perm/9/chunk?n=2048&len=8&backend=inplace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	ev := c.next(t, 5*time.Second)
	if ev.Type != events.TypeMaterialization {
		t.Fatalf("got %+v, want the materialization", ev)
	}
	c.expectNone(t, 150*time.Millisecond)

	bad := dialEvents(t, ts.URL, "?types=bogus", nil)
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("types=bogus: status %d, want 400", bad.StatusCode)
	}
}

// TestEventsResume: ?from=0 replays the ring from the first event, and
// the Last-Event-ID reconnect header takes precedence over ?from=.
func TestEventsResume(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	for i := 0; i < 3; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/perm/5/chunk?n=100&len=10&start=%d", ts.URL, i*10))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	head := s.bus.LastSeq()
	if head == 0 {
		t.Fatal("no events published by the warmup requests")
	}

	c := openEvents(t, ts.URL, "?from=0", nil)
	for want := uint64(1); want <= head; want++ {
		ev := c.next(t, 5*time.Second)
		if ev.Seq != want {
			t.Fatalf("replay from 0: seq %d, want %d", ev.Seq, want)
		}
	}

	c2 := openEvents(t, ts.URL, "?from=0", map[string]string{"Last-Event-ID": fmt.Sprint(head - 1)})
	if ev := c2.next(t, 5*time.Second); ev.Seq != head {
		t.Errorf("Last-Event-ID=%d must override from=0: first seq %d, want %d", head-1, ev.Seq, head)
	}
}

// TestEventsSubscriberCap: the cap answers 503 + Retry-After, and a
// disconnect frees the slot (and the handler goroutine) for the next
// subscriber.
func TestEventsSubscriberCap(t *testing.T) {
	s := newTestServer(t, Config{Events: EventsConfig{MaxSubscribers: 2}})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	baseline := runtime.NumGoroutine()

	first := dialEvents(t, ts.URL, "", nil)
	second := dialEvents(t, ts.URL, "", nil)
	defer second.Body.Close()
	if first.StatusCode != http.StatusOK || second.StatusCode != http.StatusOK {
		t.Fatalf("first two subscribers: %d, %d", first.StatusCode, second.StatusCode)
	}

	third := dialEvents(t, ts.URL, "", nil)
	if third.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("third subscriber: status %d, want 503", third.StatusCode)
	}
	if third.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	third.Body.Close()

	// Disconnecting frees the slot: closing the first stream's body
	// cancels its request context, the handler returns, Subscribe
	// succeeds again.
	first.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := dialEvents(t, ts.URL, "", nil)
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after disconnect: still %d", code)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And the handler goroutines actually exit: close everything and
	// wait for the count to come back to the baseline's neighborhood.
	second.Body.Close()
	http.DefaultClient.CloseIdleConnections()
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+3 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d now, %d at baseline", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEventsWedgedSubscriber is the backpressure contract end-to-end:
// an SSE subscriber that never reads its connection must not slow or
// block serving — the bus drops its events instead, and the drops are
// visible in /metrics and /healthz.
func TestEventsWedgedSubscriber(t *testing.T) {
	s := newTestServer(t, Config{Events: EventsConfig{Buffer: 4}})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	wedged := dialEvents(t, ts.URL, "", nil)
	defer wedged.Body.Close()
	if wedged.StatusCode != http.StatusOK {
		t.Fatalf("subscriber: status %d", wedged.StatusCode)
	}
	// Never read wedged.Body: the SSE writer fills the socket and
	// stops draining its channel; with Buffer 4 the flood below must
	// overwhelm it however large the kernel's buffers are.
	const flood = 200000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < flood; i++ {
			s.bus.Publish(events.New(events.TypeCacheEvict))
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("publishing blocked behind the wedged subscriber")
	}

	// Serving is unaffected while the subscriber is still wedged.
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/v1/perm/3/chunk?n=1000000000&len=16&backend=bijective")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d behind a wedged subscriber: status %d", i, resp.StatusCode)
		}
	}

	if d := s.bus.Dropped(); d == 0 {
		t.Error("no drops counted after flooding a wedged subscriber")
	}
	_, metrics := get(t, s, "/metrics")
	if !strings.Contains(metrics, "permd_events_dropped_total") {
		t.Errorf("/metrics missing permd_events_dropped_total:\n%.400s", metrics)
	}
	for _, line := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(line, "permd_events_dropped_total ") {
			if strings.TrimPrefix(line, "permd_events_dropped_total ") == "0" {
				t.Errorf("permd_events_dropped_total still 0 after the flood")
			}
		}
	}
}

// TestEventsByteIdentity: the bytes a chunk serves are identical with
// zero and eight live subscribers — the observation plane cannot touch
// the data plane.
func TestEventsByteIdentity(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	fetch := func() string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/perm/11/chunk?n=65536&len=4096&backend=inplace")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		return string(body)
	}

	quiet := fetch()
	for i := 0; i < 8; i++ {
		if i%2 == 0 {
			openEvents(t, ts.URL, "", nil) // draining subscriber
		} else {
			resp := dialEvents(t, ts.URL, "", nil) // wedged subscriber
			defer resp.Body.Close()
		}
	}
	if observed := fetch(); observed != quiet {
		t.Error("chunk bytes changed under event subscribers")
	}
}

// TestEventsChaosKillDrill: kill one node of a 2-node cluster and
// assert the survivor's event stream tells the story the error tells
// the client — a cluster_round "failed" event whose Round matches the
// round the PeerError names, and a peer_health_change demoting the
// dead peer.
func TestEventsChaosKillDrill(t *testing.T) {
	servers, proxies := bootChaosServiceCluster(t, 2, Config{Procs: 4})
	c := openEvents(t, servers[0].URL, "?types=cluster_round,peer_health_change", nil)

	proxies[1].Kill()
	code, body := httpGet(t, servers[0].URL+"/v1/perm/3/chunk?n=500&len=500&backend=cluster")
	if code != http.StatusInternalServerError {
		t.Fatalf("chunk with a dead peer: status %d: %.120s", code, body)
	}
	if !strings.Contains(body, "node 1") {
		t.Fatalf("error does not name the dead peer: %.200s", body)
	}
	var wantRound int
	if _, err := fmt.Sscanf(body[strings.Index(body, "in round"):], "in round %d", &wantRound); err != nil {
		t.Fatalf("error does not name a round: %.200s", body)
	}

	var sawFailed, sawDemotion bool
	deadline := time.After(10 * time.Second)
	for !(sawFailed && sawDemotion) {
		var ev events.Event
		select {
		case ev = <-c.ch:
		case <-deadline:
			t.Fatalf("drill events incomplete: failed-round=%v demotion=%v", sawFailed, sawDemotion)
		}
		switch ev.Type {
		case events.TypeClusterRound:
			if ev.Detail == "failed" {
				if ev.Round != wantRound {
					t.Errorf("failed round event says round %d, PeerError says round %d", ev.Round, wantRound)
				}
				sawFailed = true
			}
		case events.TypePeerHealthChange:
			if ev.Peer == 1 && (ev.State == "suspect" || ev.State == "down") {
				sawDemotion = true
			}
		}
	}
}

// benchServeChunkEvents is BenchmarkServeChunk with `subs` live SSE
// subscribers attached and draining — the overhead-measurement twin of
// the quiet benchmark.
func benchServeChunkEvents(b *testing.B, subs int) {
	s, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	for i := 0; i < subs; i++ {
		resp, err := http.Get(ts.URL + "/v1/events")
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("subscriber %d: status %d", i, resp.StatusCode)
		}
		defer resp.Body.Close()
		go io.Copy(io.Discard, resp.Body)
	}
	const chunkLen = 1 << 16
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := (int64(i) * chunkLen) % (1 << 39)
		resp, err := client.Get(fmt.Sprintf("%s/v1/perm/42/chunk?n=1099511627776&start=%d&len=%d", ts.URL, start, chunkLen))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	perReq := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(perReq/chunkLen, "ns/item")
	b.ReportMetric(1e9/perReq, "req/s")
}

func BenchmarkServeChunkEvents0(b *testing.B) { benchServeChunkEvents(b, 0) }
func BenchmarkServeChunkEvents8(b *testing.B) { benchServeChunkEvents(b, 8) }

// TestEventsOverheadAcceptance holds the observation plane to its
// budget: serving a chunk with 8 live subscribers attached stays
// within 10% of serving with none. Loopback benchmarks are noisy, so
// a failing comparison re-measures before it condemns.
func TestEventsOverheadAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark acceptance skipped with -short")
	}
	measure := func(subs int) float64 {
		r := testing.Benchmark(func(b *testing.B) { benchServeChunkEvents(b, subs) })
		return float64(r.NsPerOp())
	}
	const attempts = 3
	var quiet, observed float64
	for i := 1; i <= attempts; i++ {
		quiet = measure(0)
		observed = measure(8)
		if observed <= quiet*1.10 {
			return
		}
		t.Logf("attempt %d: %0.f ns/op quiet, %0.f ns/op with 8 subscribers", i, quiet, observed)
	}
	t.Errorf("8 subscribers cost %.1f%% (> 10%%): %0.f -> %0.f ns/op",
		100*(observed/quiet-1), quiet, observed)
}
