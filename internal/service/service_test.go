package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"randperm"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// get performs one request against the handler and returns status + body.
func get(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

// expectChunk renders what the chunk endpoint must emit for the given
// permutation range: the library's own Chunk output, one decimal per line.
func expectChunk(t *testing.T, n int64, opt randperm.Options, start, length int64) string {
	t.Helper()
	pm, err := randperm.NewPermuter(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int64, length)
	m, err := pm.Chunk(vals, start)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, v := range vals[:m] {
		fmt.Fprintf(&b, "%d\n", v)
	}
	return b.String()
}

// TestChunkByteIdentical is the acceptance contract: for every backend,
// the HTTP chunk is byte-identical to Permuter.Chunk under the same
// (seed, n, backend) — including across a server restart, here two
// independently constructed Server instances.
func TestChunkByteIdentical(t *testing.T) {
	const (
		n            = int64(4096)
		seed         = uint64(42)
		start        = int64(1000)
		length int64 = 128
	)
	for _, backend := range []string{"sim", "shmem", "inplace", "bijective", "cluster"} {
		b, err := randperm.ParseBackend(backend)
		if err != nil {
			t.Fatal(err)
		}
		want := expectChunk(t, n, randperm.Options{Procs: 8, Seed: seed, Backend: b}, start, length)
		path := fmt.Sprintf("/v1/perm/%d/chunk?n=%d&start=%d&len=%d&backend=%s", seed, n, start, length, backend)
		for restart := 0; restart < 2; restart++ {
			s := newTestServer(t, Config{})
			code, body := get(t, s, path)
			if code != http.StatusOK {
				t.Fatalf("%s restart=%d: status %d: %s", backend, restart, code, body)
			}
			if body != want {
				t.Errorf("%s restart=%d: HTTP chunk differs from Permuter.Chunk\nhttp: %.60q...\nlib:  %.60q...",
					backend, restart, body, want)
			}
		}
	}
}

// TestChunkPaging drives len far past MaxChunk so the response must
// stream through several pooled buffer pages, and checks the seam-free
// result against one library chunk.
func TestChunkPaging(t *testing.T) {
	const n, seed = int64(10000), uint64(9)
	s := newTestServer(t, Config{MaxChunk: 64})
	want := expectChunk(t, n, randperm.Options{Procs: 8, Seed: seed, Backend: randperm.BackendBijective}, 0, n)
	code, body := get(t, s, fmt.Sprintf("/v1/perm/%d/chunk?n=%d&len=%d", seed, n, n))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if body != want {
		t.Errorf("paged response differs from single-chunk library output")
	}
}

// TestChunkDefaults: len defaults to min(MaxChunk, n-start), start to 0,
// backend to the server default; len is clamped to the end of the domain.
func TestChunkDefaults(t *testing.T) {
	s := newTestServer(t, Config{MaxChunk: 16})
	code, body := get(t, s, "/v1/perm/7/chunk?n=1000")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if got := strings.Count(body, "\n"); got != 16 {
		t.Errorf("default len: got %d lines, want MaxChunk=16", got)
	}
	// Clamp: ask for far more than remains.
	code, body = get(t, s, "/v1/perm/7/chunk?n=1000&start=995&len=100000")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if got := strings.Count(body, "\n"); got != 5 {
		t.Errorf("clamped len: got %d lines, want 5", got)
	}
}

// TestChunkIsPermutation pulls a whole small domain and checks the
// served values are exactly {0..n-1}.
func TestChunkIsPermutation(t *testing.T) {
	const n = 512
	s := newTestServer(t, Config{})
	code, body := get(t, s, fmt.Sprintf("/v1/perm/3/chunk?n=%d&len=%d", n, n))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	seen := make([]bool, n)
	lines := strings.Fields(body)
	if len(lines) != n {
		t.Fatalf("got %d values, want %d", len(lines), n)
	}
	for _, l := range lines {
		v, err := strconv.ParseInt(l, 10, 64)
		if err != nil || v < 0 || v >= n || seen[v] {
			t.Fatalf("bad or duplicate value %q", l)
		}
		seen[v] = true
	}
}

func TestChunkErrors(t *testing.T) {
	s := newTestServer(t, Config{MaxN: 1 << 10})
	for _, tc := range []struct {
		path string
		code int
	}{
		{"/v1/perm/7/chunk", http.StatusBadRequest},                          // missing n
		{"/v1/perm/7/chunk?n=-1", http.StatusBadRequest},                     // negative n
		{"/v1/perm/7/chunk?n=100&start=101", http.StatusBadRequest},          // start past end
		{"/v1/perm/7/chunk?n=100&start=-1", http.StatusBadRequest},           // negative start
		{"/v1/perm/7/chunk?n=100&backend=nope", http.StatusBadRequest},       // unknown backend
		{"/v1/perm/not-a-seed/chunk?n=100", http.StatusBadRequest},           // bad seed
		{"/v1/perm/7/chunk?n=100000&backend=inplace", http.StatusBadRequest}, // MaxN gate
		{"/v1/perm/7/chunk?n=100000&backend=bijective", http.StatusOK},       // bijective exempt
		{"/v1/perm/7/chunk?n=100&len=abc", http.StatusBadRequest},            // bad len
		{"/v1/perm/7/chunk?n=100&len=-3", http.StatusBadRequest},             // explicit negative len
		{"/v1/perm/7/at?n=100&i=100", http.StatusBadRequest},                 // i out of range
		{"/v1/perm/7/at?n=100", http.StatusBadRequest},                       // missing i
		{"/v1/sample?k=5", http.StatusBadRequest},                            // missing n
		{"/v1/sample?n=10&k=11", http.StatusBadRequest},                      // k > n
		{"/v1/sample?n=2000&k=1", http.StatusBadRequest},                     // MaxN gate
		{"/nope", http.StatusNotFound},
	} {
		code, body := get(t, s, tc.path)
		if code != tc.code {
			t.Errorf("GET %s: status %d, want %d (%s)", tc.path, code, tc.code, strings.TrimSpace(body))
		}
	}
}

// TestAt checks the point query against the library for every backend,
// plus the O(1)-on-huge-domains property for bijective.
func TestAt(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, backend := range []string{"sim", "shmem", "inplace", "bijective", "cluster"} {
		b, _ := randperm.ParseBackend(backend)
		pm, err := randperm.NewPermuter(1000, randperm.Options{Procs: 8, Seed: 5, Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		code, body := get(t, s, "/v1/perm/5/at?n=1000&i=123&backend="+backend)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", backend, code, body)
		}
		if want := fmt.Sprintf("%d\n", pm.At(123)); body != want {
			t.Errorf("%s: at=%q want %q", backend, body, want)
		}
	}
	// The bijective point query must work far past MaxN.
	code, body := get(t, s, "/v1/perm/5/at?n=1099511627776&i=99999999999")
	if code != http.StatusOK {
		t.Fatalf("huge-domain at: status %d: %s", code, body)
	}
}

// TestShuffleText: the shuffled lines are the library's exactly-uniform
// shuffle of the input under the same options, and a fixed seed replays.
func TestShuffleText(t *testing.T) {
	s := newTestServer(t, Config{})
	lines := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	body := strings.Join(lines, "\n") + "\n"

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/shuffle?seed=11", strings.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	want, _, err := randperm.ParallelShuffle(lines, randperm.Options{
		Procs: 6, Seed: 11, Backend: randperm.BackendSharedMem,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.Body.String(); got != strings.Join(want, "\n")+"\n" {
		t.Errorf("shuffle: got %q want %q", got, want)
	}
}

// TestShuffleJSON round-trips a JSON array and verifies it is a
// permutation of the input.
func TestShuffleJSON(t *testing.T) {
	s := newTestServer(t, Config{})
	// A parameterized media type must still be recognized as JSON — it is
	// what axios and most HTTP clients actually send.
	req := httptest.NewRequest("POST", "/v1/shuffle?seed=3&backend=inplace",
		strings.NewReader(`[1, "two", {"three": 3}, null, 5]`))
	req.Header.Set("Content-Type", "application/json; charset=utf-8")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var out []any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("response is not a JSON array: %v", err)
	}
	if len(out) != 5 {
		t.Fatalf("got %d elements, want 5", len(out))
	}
}

// TestShuffleGate: the exactness-sensitive endpoint refuses every
// backend whose ExactUniform() is false.
func TestShuffleGate(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/shuffle?backend=bijective", strings.NewReader("a\nb\n")))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bijective shuffle: status %d, want 400", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "not exactly uniform") {
		t.Errorf("gate error should explain the refusal, got %q", rec.Body.String())
	}
}

// TestSample checks the service sample equals ParallelSample and stays
// inside the domain.
func TestSample(t *testing.T) {
	s := newTestServer(t, Config{})
	code, body := get(t, s, "/v1/sample?n=1000&k=10&seed=21")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	data := make([]int64, 1000)
	for i := range data {
		data[i] = int64(i)
	}
	want, _, err := randperm.ParallelSample(data, 10, randperm.Options{Procs: 8, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	var wantB strings.Builder
	for _, v := range want {
		fmt.Fprintf(&wantB, "%d\n", v)
	}
	if body != wantB.String() {
		t.Errorf("sample: got %q want %q", body, wantB.String())
	}
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{Procs: 4})
	code, body := get(t, s, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var h map[string]any
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz is not JSON: %v", err)
	}
	if h["status"] != "ok" || h["procs"] != float64(4) || h["default_backend"] != "bijective" {
		t.Errorf("healthz fields wrong: %v", h)
	}
}

// TestMetrics drives a known request mix and checks the counters that
// come back out of /metrics.
func TestMetrics(t *testing.T) {
	s := newTestServer(t, Config{})
	get(t, s, "/v1/perm/1/chunk?n=100&len=10&backend=inplace") // miss + materialize
	get(t, s, "/v1/perm/1/chunk?n=100&len=10&backend=inplace") // hit
	get(t, s, "/v1/perm/1/chunk?n=0")                          // miss (different key)
	get(t, s, "/v1/perm/1/chunk?n=-1")                         // error
	code, body := get(t, s, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		`permd_requests_total{endpoint="chunk"} 4`,
		"permd_request_errors_total 1",
		"permd_handle_cache_hits_total 1",
		"permd_handle_cache_misses_total 2",
		"permd_materializations_total 1",
		"permd_chunk_items_total 20",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

// TestConcurrentSameKey is the acceptance test: 1000 concurrent requests
// for one cached handle on a materializing backend must all serve the
// identical bytes while triggering exactly one handle construction and
// exactly one materialization. Run under -race this also shakes the
// single-flight seam and the pooled buffers.
func TestConcurrentSameKey(t *testing.T) {
	const (
		clients = 1000
		n       = int64(1 << 15)
	)
	s := newTestServer(t, Config{})
	want := expectChunk(t, n, randperm.Options{Procs: 8, Seed: 77, Backend: randperm.BackendInPlace}, 0, 64)
	path := fmt.Sprintf("/v1/perm/77/chunk?n=%d&len=64&backend=inplace", n)

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
			if rec.Code != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", rec.Code, rec.Body.String())
				return
			}
			if rec.Body.String() != want {
				errs <- errors.New("response differs from library chunk")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.met.materializations.Load(); got != 1 {
		t.Errorf("materializations = %d, want exactly 1 for %d concurrent requests", got, clients)
	}
	if got := s.met.cacheMisses.Load(); got != 1 {
		t.Errorf("cache misses = %d, want exactly 1", got)
	}
	if got := s.met.cacheHits.Load(); got != clients-1 {
		t.Errorf("cache hits = %d, want %d", got, clients-1)
	}
}

// TestCacheEviction: a capacity-1 LRU serving two alternating keys must
// evict every time the key flips, and re-materialize on return.
func TestCacheEviction(t *testing.T) {
	s := newTestServer(t, Config{MaxHandles: 1})
	a := "/v1/perm/1/chunk?n=64&len=4&backend=inplace"
	b := "/v1/perm/2/chunk?n=64&len=4&backend=inplace"
	var first string
	for i, path := range []string{a, b, a} {
		code, body := get(t, s, path)
		if code != http.StatusOK {
			t.Fatalf("req %d: status %d", i, code)
		}
		if i == 0 {
			first = body
		}
	}
	if code, body := get(t, s, a); code != http.StatusOK || body != first {
		t.Errorf("re-materialized handle must serve identical bytes")
	}
	if got := s.met.cacheEvictions.Load(); got < 2 {
		t.Errorf("evictions = %d, want >= 2", got)
	}
	if got := s.met.materializations.Load(); got != 3 {
		// a (build), b (build, evicts a), a (build again), a (hit) -> 3.
		t.Errorf("materializations = %d, want 3", got)
	}
}

// TestCacheErrorNotCached: a failed construction must not poison the
// key; the next request retries and can succeed.
func TestCacheErrorNotCached(t *testing.T) {
	var met metrics
	calls := 0
	c := newHandleCache(4, &met, func(k handleKey) (*randperm.Permuter, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient")
		}
		return randperm.NewPermuter(k.n, randperm.Options{Seed: k.seed, Backend: k.backend})
	})
	key := handleKey{n: 10, seed: 1, backend: randperm.BackendBijective}
	if _, _, err := c.get(key); err == nil {
		t.Fatal("want error from first build")
	}
	if _, _, err := c.get(key); err != nil {
		t.Fatalf("second build should retry and succeed, got %v", err)
	}
	if calls != 2 {
		t.Fatalf("build ran %d times, want 2", calls)
	}
}

// BenchmarkServeChunk measures the full HTTP path over a real TCP
// loopback at n = 2^40: the figure BENCHMARKS.md's serving section and
// BENCH_backends.json track (req/s and ns/item through the daemon).
func BenchmarkServeChunk(b *testing.B) {
	s, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	const chunkLen = 1 << 16
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := (int64(i) * chunkLen) % (1 << 39)
		resp, err := client.Get(fmt.Sprintf("%s/v1/perm/42/chunk?n=1099511627776&start=%d&len=%d", ts.URL, start, chunkLen))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	perReq := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(perReq/chunkLen, "ns/item")
	b.ReportMetric(1e9/perReq, "req/s")
}
