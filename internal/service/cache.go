package service

import (
	"container/list"
	"sync"

	"randperm"
)

// handleKey identifies one permutation the daemon can serve. Procs is
// deliberately absent: the server pins one decomposition width at
// construction (Config.Procs), so over HTTP a chunk is fully determined
// by (n, seed, backend) — the determinism contract ARCHITECTURE.md
// states for the service layer.
type handleKey struct {
	n       int64
	seed    uint64
	backend randperm.Backend
}

// handleEntry is one cache slot. The sync.Once is the single-flight
// seam: every request that resolves the same key gets the same entry,
// exactly one of them runs the constructor, and the rest block on the
// Once and then share the one *Permuter — which in turn holds the
// library's own once-guarded lazy materialization, so 1000 concurrent
// first requests for one permutation cost one n-word build, not 1000.
type handleEntry struct {
	key  handleKey
	once sync.Once
	pm   *randperm.Permuter
	err  error
	// gate serializes and bounds the handle's lazy materialization (see
	// admission.go): handle *construction* is cheap and runs on the Once
	// above, but the n-word build a materializing handle defers is
	// admitted through the server's build semaphore and canceled when
	// every waiting client disconnects.
	gate buildGate
}

// handleCache is an LRU of Permuter handles keyed by (n, seed, backend).
// The lock covers only the map and recency list; handle construction
// (and the materialization hiding behind it) runs outside the lock on
// the entry's Once, so a slow build never blocks requests for other
// keys. An evicted entry that racing requests still hold finishes its
// build for them and is garbage collected when they finish — eviction
// only forgets the handle, it never invalidates in-flight use.
type handleCache struct {
	capacity int
	build    func(handleKey) (*randperm.Permuter, error)
	// onEvict, when set, is told about each key dropped by the LRU —
	// called outside the cache lock, after the eviction took effect.
	onEvict func(handleKey)

	mu      sync.Mutex
	entries map[handleKey]*list.Element // value: *handleEntry
	lru     *list.List                  // front = most recently used

	met *metrics
}

func newHandleCache(capacity int, met *metrics, build func(handleKey) (*randperm.Permuter, error)) *handleCache {
	if capacity < 1 {
		capacity = 1
	}
	return &handleCache{
		capacity: capacity,
		build:    build,
		entries:  make(map[handleKey]*list.Element),
		lru:      list.New(),
		met:      met,
	}
}

// get returns the cache entry for key, constructing its handle (once,
// shared across racing callers) on a miss, and reports whether the
// entry was already resident (the request-event cache outcome). Callers
// read the handle from entry.pm and run materializing builds through
// the entry's gate.
func (c *handleCache) get(key handleKey) (*handleEntry, bool, error) {
	c.mu.Lock()
	var e *handleEntry
	var hit bool
	var evicted []handleKey
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		e = el.Value.(*handleEntry)
		c.met.cacheHits.Add(1)
		hit = true
	} else {
		e = &handleEntry{key: key}
		c.entries[key] = c.lru.PushFront(e)
		c.met.cacheMisses.Add(1)
		for c.lru.Len() > c.capacity {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			oldKey := oldest.Value.(*handleEntry).key
			delete(c.entries, oldKey)
			c.met.cacheEvictions.Add(1)
			evicted = append(evicted, oldKey)
		}
	}
	c.mu.Unlock()
	if c.onEvict != nil {
		for _, k := range evicted {
			c.onEvict(k)
		}
	}

	e.once.Do(func() {
		e.pm, e.err = c.build(key)
	})
	if e.err != nil {
		// Do not cache failures: drop the entry so the next request
		// retries instead of replaying a stale error forever.
		c.mu.Lock()
		if el, ok := c.entries[key]; ok && el.Value.(*handleEntry) == e {
			c.lru.Remove(el)
			delete(c.entries, key)
		}
		c.mu.Unlock()
		return nil, hit, e.err
	}
	return e, hit, nil
}

// len reports how many handles are resident (for /healthz).
func (c *handleCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
