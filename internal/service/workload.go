package service

import (
	"bufio"
	"net/http"
	"strconv"
	"time"

	"randperm"
	"randperm/internal/workload"
)

// The first-class workload endpoints: deterministic experiment
// assignment and ML-style epoch shuffling, both riding the bijective
// backend's O(1) Index through the same handle cache, quota metering
// and metrics as the core /v1/perm API.
//
//	GET /v1/assign?seed=&n=&id=&spec=      the bucket of (experiment-seed, user-id)
//	GET /v1/epochs?seed=&n=&epoch=&mode=&start=&len=   a chunk of epoch e's permutation
//
// Determinism contracts (ARCHITECTURE.md): the bucket is a pure
// function of (seed, spec, id, n); epoch bytes are a pure function of
// (seed, n, epoch, mode). Neither depends on Procs, node, worker
// count, chunk boundaries, or request order.

// maxEpochers bounds the per-(seed, mode) key-derivation memos the
// server keeps. Eviction only forgets derivations — keys are pure
// functions of (seed, epoch, mode) and are re-derived on next touch —
// so the map is dropped wholesale when full rather than tracked by
// recency.
const maxEpochers = 64

type epocherKey struct {
	seed uint64
	mode workload.EpochMode
}

// epocher returns the (cached) key deriver for (seed, mode).
func (s *Server) epocher(seed uint64, mode workload.EpochMode) *workload.Epocher {
	k := epocherKey{seed: seed, mode: mode}
	s.epochersMu.Lock()
	defer s.epochersMu.Unlock()
	if e, ok := s.epochers[k]; ok {
		return e
	}
	if len(s.epochers) >= maxEpochers {
		clear(s.epochers)
	}
	e := workload.NewEpocher(seed, mode)
	s.epochers[k] = e
	return e
}

// requireBijective enforces the workload endpoints' backend gate: they
// are defined on the keyed bijection (the O(1) Index is what makes an
// assignment a point lookup and an epoch a pure function of its key),
// so a ?backend= naming any other engine is refused rather than
// silently served from a different law. Reports whether to proceed.
func (s *Server) requireBijective(w http.ResponseWriter, r *http.Request, endpoint string) bool {
	bs := r.URL.Query().Get("backend")
	if bs == "" {
		return true
	}
	backend, err := randperm.ParseBackend(bs)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return false
	}
	if backend != randperm.BackendBijective {
		s.httpError(w, http.StatusBadRequest,
			"%s requires the bijective backend (got %s): it is defined on the keyed bijection's O(1) Index", endpoint, backend)
		return false
	}
	return true
}

// handleAssign serves GET /v1/assign?seed=&n=&id=&spec= — the
// experiment bucket of user id under experiment seed. The spec
// ("control:9,treat:1") partitions [0, n) into contiguous ranges with
// exact integer apportionment; the id's image under the keyed
// bijection picks the range. Exactness by construction: the bijection
// maps [0, n) onto itself, so bucket b receives exactly its range's
// worth of ids — and the lookup is O(1) in n (one Feistel evaluation,
// nothing materialized, served through the same handle cache as
// /v1/perm). The response body is the bucket name; the Permd-Bucket
// header carries its index in the spec.
func (s *Server) handleAssign(w http.ResponseWriter, r *http.Request) {
	s.met.requests[epAssign].Add(1)
	q := r.URL.Query()
	var seed uint64
	var err error
	if sv := q.Get("seed"); sv != "" {
		if seed, err = strconv.ParseUint(sv, 10, 64); err != nil {
			s.httpError(w, http.StatusBadRequest, "bad seed %q: want a decimal uint64", sv)
			return
		}
	}
	n, err := queryInt64(r, "n", -1)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if n <= 0 {
		s.httpError(w, http.StatusBadRequest, "missing or non-positive n: the id-domain size n is required")
		return
	}
	spec, err := workload.ParseAssignSpec(q.Get("spec"))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	if !s.requireBijective(w, r, "/v1/assign") {
		return
	}
	id, err := queryInt64(r, "id", -1)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if id < 0 || id >= n {
		s.httpError(w, http.StatusBadRequest, "id=%d outside [0, %d)", id, n)
		return
	}
	if !s.admitItems(w, r, 1) {
		return
	}
	e, hit, err := s.cache.get(handleKey{n: n, seed: seed, backend: randperm.BackendBijective})
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "building permutation: %v", err)
		return
	}
	var one [1]int64
	if _, err := e.pm.Chunk(one[:], id); err != nil {
		s.httpError(w, http.StatusInternalServerError, "evaluating bijection: %v", err)
		return
	}
	idx, name := spec.Find(n, one[0])
	w.Header().Set("Permd-Backend", randperm.BackendBijective.String())
	w.Header().Set("Permd-Bucket", strconv.Itoa(idx))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(name + "\n"))
	s.met.assignLookups.Add(1)
	s.met.items.Add(1)
	if ri := reqInfoOf(r); ri != nil {
		ri.n, ri.seed, ri.backend, ri.items = n, seed, randperm.BackendBijective.String(), 1
		ri.cache = "miss"
		if hit {
			ri.cache = "hit"
		}
	}
}

// handleEpochs serves GET /v1/epochs?seed=&n=&epoch=&mode=&start=&len= —
// the values π_e(start) .. π_e(start+len-1) of epoch e's permutation of
// dataset (seed, n), one decimal per line, paged exactly like
// /v1/perm/{seed}/chunk. The per-epoch bijection key is derived from
// the dataset seed by the selected mode: "fresh" (default) separates
// epochs by 2^192-step LongJumps, "recycled" evolves one stream so
// epoch e+1's key comes from epoch e's stream state (Ito & Kikuchi).
// The derived key is echoed in the Permd-Epoch-Key header, which is
// how CI cross-checks the served bytes against the library.
func (s *Server) handleEpochs(w http.ResponseWriter, r *http.Request) {
	s.met.requests[epEpochs].Add(1)
	q := r.URL.Query()
	var seed uint64
	var err error
	if sv := q.Get("seed"); sv != "" {
		if seed, err = strconv.ParseUint(sv, 10, 64); err != nil {
			s.httpError(w, http.StatusBadRequest, "bad seed %q: want a decimal uint64", sv)
			return
		}
	}
	n, err := queryInt64(r, "n", -1)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if n < 0 {
		s.httpError(w, http.StatusBadRequest, "missing or negative n: the dataset size n is required")
		return
	}
	epoch, err := queryInt64(r, "epoch", 0)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if epoch < 0 || epoch > s.cfg.MaxEpoch {
		s.httpError(w, http.StatusBadRequest, "epoch=%d outside [0, %d]", epoch, s.cfg.MaxEpoch)
		return
	}
	mode, err := workload.ParseEpochMode(q.Get("mode"))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.requireBijective(w, r, "/v1/epochs") {
		return
	}
	start, err := queryInt64(r, "start", 0)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if start < 0 || start > n {
		s.httpError(w, http.StatusBadRequest, "start=%d outside [0, %d]", start, n)
		return
	}
	length := min(n-start, int64(s.cfg.MaxChunk))
	if lv := q.Get("len"); lv != "" {
		length, err = strconv.ParseInt(lv, 10, 64)
		if err != nil || length < 0 {
			s.httpError(w, http.StatusBadRequest, "bad len=%q: want a non-negative decimal integer", lv)
			return
		}
		if rest := n - start; length > rest {
			length = rest
		}
	}
	if !s.admitItems(w, r, max(length, 1)) {
		return
	}
	key := s.epocher(seed, mode).Key(epoch)
	e, hit, err := s.cache.get(handleKey{n: n, seed: key, backend: randperm.BackendBijective})
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "building permutation: %v", err)
		return
	}
	if ri := reqInfoOf(r); ri != nil {
		ri.n, ri.seed, ri.backend = n, key, randperm.BackendBijective.String()
		ri.cache = "miss"
		if hit {
			ri.cache = "hit"
		}
	}
	if mode == workload.EpochRecycled {
		s.met.epochRecycled.Add(1)
	}
	w.Header().Set("Permd-Backend", randperm.BackendBijective.String())
	w.Header().Set("Permd-Epoch-Key", strconv.FormatUint(key, 10))
	w.Header().Set("Permd-Epoch-Mode", mode.String())

	began := time.Now()
	served, ok := s.streamPaged(w, r, e.pm, start, length)
	if !ok {
		return
	}
	s.met.items.Add(served)
	s.met.epochItems.Add(served)
	s.met.epochNs.Add(time.Since(began).Nanoseconds())
	if ri := reqInfoOf(r); ri != nil {
		ri.items = served
	}
}

// streamPaged writes π(start) .. π(start+length-1) one decimal per
// line, paging through the pooled MaxChunk buffer so a huge range
// holds O(MaxChunk) memory. It reports the items served and whether
// the stream completed; error responses (500 before the first byte,
// truncation after) are handled here. Shared by the chunk and epochs
// endpoints — callers own their endpoint-specific metrics.
func (s *Server) streamPaged(w http.ResponseWriter, r *http.Request, pm *randperm.Permuter, start, length int64) (int64, bool) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	bufp := s.bufs.Get().(*[]int64)
	defer s.bufs.Put(bufp)
	buf := *bufp
	bw := bufio.NewWriterSize(w, 1<<15)
	var line []byte
	served := int64(0)
	for served < length {
		if served > 0 && r.Context().Err() != nil {
			// Client gone mid-stream: stop paging instead of formatting
			// values nobody will read.
			s.met.errors.Add(1)
			return served, false
		}
		page := buf
		if rest := length - served; rest < int64(len(page)) {
			page = page[:rest]
		}
		m, err := pm.Chunk(page, start+served)
		if err != nil {
			if served == 0 {
				// Nothing flushed yet: a real error response is still
				// possible — a cluster peer failure surfaces here.
				s.httpError(w, http.StatusInternalServerError, "reading chunk: %v", err)
				return 0, false
			}
			// Mid-stream the headers are gone; all we can do is
			// truncate the stream.
			s.met.errors.Add(1)
			return served, false
		}
		for _, v := range page[:m] {
			line = strconv.AppendInt(line[:0], v, 10)
			line = append(line, '\n')
			if _, err := bw.Write(line); err != nil {
				return served, false // client went away
			}
		}
		served += int64(m)
	}
	if err := bw.Flush(); err != nil {
		return served, false
	}
	return served, true
}
