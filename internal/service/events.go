package service

// GET /v1/events — the live operations stream. Server-Sent Events over
// the internal bus (internal/events): every event the daemon publishes
// — request completions, materializations, cache evictions, quota
// refusals, admission-gate resolutions, cluster round transitions,
// peer-health changes, join results — framed as
//
//	id: <seq>
//	event: <type>
//	data: <JSON Event>
//
// with three knobs a consumer controls per subscription:
//
//   - ?types=a,b,c filters to the named event types (the wire names of
//     internal/events; bad names are 400). Empty means everything.
//   - Last-Event-ID (the SSE reconnect header) or ?from=<seq> resumes
//     after the given sequence number, replaying whatever suffix of
//     (seq, head] the bounded replay ring still holds. A consumer can
//     detect ring-bound loss by comparing the first id received
//     against its last + 1. Absent both, the stream is live-only.
//   - Disconnecting (closing the response) frees the subscriber slot.
//
// Delivery is best-effort by the bus contract: a consumer that reads
// slower than the daemon publishes loses events (counted in
// permd_events_dropped_total), and the stream never slows a byte
// served. The hard subscriber cap answers 503 so a scrape storm of
// dashboards cannot accumulate unbounded per-subscriber buffers.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"randperm/internal/events"
)

// eventsKeepalive is how often an idle stream writes an SSE comment so
// a dead TCP peer is discovered and its subscriber slot freed even
// when no events flow.
const eventsKeepalive = 15 * time.Second

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.met.requests[epEvents].Add(1)
	filter, err := events.ParseFilter(r.URL.Query().Get("types"))
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "bad types filter: %v", err)
		return
	}
	after := s.bus.LastSeq() // default: live-only
	if lid := r.Header.Get("Last-Event-ID"); lid != "" {
		if after, err = strconv.ParseUint(lid, 10, 64); err != nil {
			s.httpError(w, http.StatusBadRequest, "bad Last-Event-ID %q: want a decimal sequence number", lid)
			return
		}
	} else if fv := r.URL.Query().Get("from"); fv != "" {
		if after, err = strconv.ParseUint(fv, 10, 64); err != nil {
			s.httpError(w, http.StatusBadRequest, "bad from=%q: want a decimal sequence number", fv)
			return
		}
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.httpError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	sub, err := s.bus.Subscribe(filter, after)
	if err != nil {
		if errors.Is(err, events.ErrSubscriberLimit) {
			w.Header().Set("Retry-After", "5")
			s.httpError(w, http.StatusServiceUnavailable,
				"event subscriber limit (%d) reached", s.cfg.Events.MaxSubscribers)
			return
		}
		s.httpError(w, http.StatusInternalServerError, "subscribing: %v", err)
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	keepalive := time.NewTicker(eventsKeepalive)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev := <-sub.Events():
			data, err := json.Marshal(ev)
			if err != nil {
				return // cannot happen for Event; bail rather than corrupt the frame
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
				return // client went away
			}
			fl.Flush()
		case <-keepalive.C:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
