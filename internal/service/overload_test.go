package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"randperm"
)

// TestOverloadDrill is the multi-tenant acceptance drill: 1000
// concurrent requests from 10 client identities against fixed (rate-0)
// budgets. The invariants under fire:
//
//   - every response is a 200 or a 429 — overload never leaks a 5xx
//   - every 429 carries a Retry-After header
//   - each client gets exactly its budget's worth of 200s, no matter
//     how the goroutines interleave
//   - the items-charged counter equals the sum of the budgets actually
//     consumed — the meter never over- or under-charges under races
//   - every 200 body is byte-identical to an unthrottled server's
//     answer — admission control must not touch the data path
func TestOverloadDrill(t *testing.T) {
	const (
		clients    = 10
		perClient  = 100
		chunkLen   = 8
		burst      = 32 // rate 0: a fixed budget of 32 items = 4 chunks
		wantOKEach = burst / chunkLen
	)
	path := fmt.Sprintf("/v1/perm/42/chunk?n=4096&len=%d", chunkLen)

	// The unthrottled reference answer.
	_, want := get(t, newTestServer(t, Config{}), path)

	s := newTestServer(t, Config{
		Quota: QuotaConfig{Default: QuotaSpec{Rate: 0, Burst: burst}},
	})

	var (
		wg        sync.WaitGroup
		ok        [clients]atomic.Int64
		throttled atomic.Int64
		failures  = make(chan string, clients*perClient)
	)
	for c := 0; c < clients; c++ {
		for r := 0; r < perClient; r++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				req := httptest.NewRequest("GET", path, nil)
				req.Header.Set("X-Permd-Client", fmt.Sprintf("drill-%d", c))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				switch rec.Code {
				case http.StatusOK:
					ok[c].Add(1)
					if rec.Body.String() != want {
						failures <- fmt.Sprintf("client %d: 200 body differs from unthrottled answer", c)
					}
				case http.StatusTooManyRequests:
					throttled.Add(1)
					if rec.Header().Get("Retry-After") == "" {
						failures <- fmt.Sprintf("client %d: 429 without Retry-After", c)
					}
				default:
					failures <- fmt.Sprintf("client %d: status %d under overload: %s", c, rec.Code, rec.Body.String())
				}
			}(c)
		}
	}
	wg.Wait()
	close(failures)
	for f := range failures {
		t.Fatal(f)
	}
	for c := range ok {
		if got := ok[c].Load(); got != wantOKEach {
			t.Errorf("client %d: %d requests admitted, want exactly %d (burst %d / %d items)",
				c, got, wantOKEach, burst, chunkLen)
		}
	}
	if got := throttled.Load(); got != clients*(perClient-wantOKEach) {
		t.Errorf("throttled = %d, want %d", got, clients*(perClient-wantOKEach))
	}
	if got := s.met.quotaItems.Load(); got != clients*burst {
		t.Errorf("items charged = %d, want exactly the summed budgets %d", got, clients*burst)
	}
	if got := s.met.quotaThrottled.Load(); got != throttled.Load() {
		t.Errorf("throttle counter = %d, observed %d refusals", got, throttled.Load())
	}
}

// TestBuildQueueRefusal pins the admission gate's refusal path without
// timing races: the test occupies the only build slot directly, so the
// cold-handle request must queue, hit the BuildWait deadline, and come
// back 503 with the deadline as its Retry-After. Releasing the slot
// turns the identical request into a 200.
func TestBuildQueueRefusal(t *testing.T) {
	s := newTestServer(t, Config{MaxBuilds: 1, BuildWait: 50 * time.Millisecond})
	s.buildSem <- struct{}{} // hold the only slot

	path := "/v1/perm/7/chunk?n=4096&len=8&backend=inplace"
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated gate: status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Errorf("503 Retry-After = %q, want %q (50ms deadline rounds up)", got, "1")
	}
	if got := s.met.admissionTimeouts.Load(); got != 1 {
		t.Errorf("queue timeouts = %d, want 1", got)
	}

	<-s.buildSem // operator relief: a slot frees up
	code, body := get(t, s, path)
	if code != http.StatusOK {
		t.Fatalf("after slot release: status %d: %s", code, body)
	}
	want := expectChunk(t, 4096, randperm.Options{Procs: 8, Seed: 7, Backend: randperm.BackendInPlace}, 0, 8)
	if body != want {
		t.Errorf("post-refusal chunk differs from library answer")
	}
}

// TestQueuedBuildCancelNoLeak: requests queued behind a saturated build
// gate whose clients all disconnect must unwind completely — no
// goroutine may stay parked on the semaphore — and the handle must
// re-arm so the next client's request builds and serves normally.
func TestQueuedBuildCancelNoLeak(t *testing.T) {
	s := newTestServer(t, Config{MaxBuilds: 1, BuildWait: time.Minute})
	s.buildSem <- struct{}{} // hold the only slot so the drill queues

	baseline := runtime.NumGoroutine()
	const waiters = 8
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := httptest.NewRequest("GET", "/v1/perm/9/chunk?n=32768&len=8&backend=inplace", nil).WithContext(ctx)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			// A disconnected client gets no payload (the recorder's 200 is
			// its unwritten default — the handler aborts without a body).
			if rec.Body.Len() != 0 {
				t.Errorf("canceled request served %d bytes", rec.Body.Len())
			}
		}()
	}
	// Let the waiters reach the queue, then disconnect all of them.
	deadline := time.Now().Add(5 * time.Second)
	for s.met.admissionQueued.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	wg.Wait()

	// Every goroutine the drill spawned — handlers and the shared build
	// attempt — must be gone once the clients are.
	for time.Now().Before(deadline) && runtime.NumGoroutine() > baseline {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > baseline {
		t.Errorf("goroutines after cancellation: %d, baseline %d — build gate leaked", got, baseline)
	}

	<-s.buildSem // free the slot for the fresh client
	code, body := get(t, s, "/v1/perm/9/chunk?n=32768&len=8&backend=inplace")
	if code != http.StatusOK {
		t.Fatalf("fresh request after abandoned build: status %d: %s", code, body)
	}
	want := expectChunk(t, 32768, randperm.Options{Procs: 8, Seed: 9, Backend: randperm.BackendInPlace}, 0, 8)
	if body != want {
		t.Errorf("re-armed handle serves different bytes than the library")
	}
}

// TestCancelMidMaterialization cancels clients while the engine build
// is actually running (not just queued): the attempt must abort, count
// an admission cancel, and leave the handle able to rebuild from
// scratch with byte-identical output.
func TestCancelMidMaterialization(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-build cancellation needs a build long enough to catch in flight")
	}
	const n = int64(1 << 24)
	s := newTestServer(t, Config{MaxN: n})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan int, 1)
	go func() {
		req := httptest.NewRequest("GET", fmt.Sprintf("/v1/perm/5/chunk?n=%d&len=4&backend=shmem", n), nil).WithContext(ctx)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		done <- rec.Code
	}()
	// Wait until the build is genuinely in flight, then hang up.
	deadline := time.Now().Add(10 * time.Second)
	for s.met.admissionInflight.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	<-done

	// The abort is asynchronous to the handler's return; wait for the
	// attempt itself to record its cancellation.
	for s.met.admissionCancels.Load() == 0 && s.met.materializations.Load() == 0 &&
		time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.met.admissionCancels.Load() == 0 && s.met.materializations.Load() == 0 {
		t.Fatal("canceled build neither aborted nor completed")
	}

	// Whatever won the race above, the handle must now serve the true
	// permutation — a canceled half-build must never become visible.
	code, body := get(t, s, fmt.Sprintf("/v1/perm/5/chunk?n=%d&len=4&backend=shmem", n))
	if code != http.StatusOK {
		t.Fatalf("rebuild after cancel: status %d: %s", code, body)
	}
	want := expectChunk(t, n, randperm.Options{Procs: 8, Seed: 5, Backend: randperm.BackendSharedMem}, 0, 4)
	if body != want {
		t.Errorf("rebuilt handle serves different bytes than the library")
	}
}

// BenchmarkServeChunkQuota is BenchmarkServeChunk with the quota layer
// switched on (a budget high enough to never refuse). The acceptance
// bound for this PR: served ns/item within 10% of the unmetered figure
// — the admission check is one map lookup and one atomic add per
// request, not per item.
func BenchmarkServeChunkQuota(b *testing.B) {
	s, err := New(Config{
		Quota: QuotaConfig{Default: QuotaSpec{Rate: 1e12, Burst: 1 << 40}},
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	const chunkLen = 1 << 16
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := (int64(i) * chunkLen) % (1 << 39)
		resp, err := client.Get(fmt.Sprintf("%s/v1/perm/42/chunk?n=1099511627776&start=%d&len=%d", ts.URL, start, chunkLen))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	perReq := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(perReq/chunkLen, "ns/item")
	b.ReportMetric(1e9/perReq, "req/s")
}
