package service

import (
	"container/list"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The multi-tenant admission layer: per-client token buckets metered in
// items served. Every data-bearing endpoint pays — a chunk page costs
// its length, a point read costs 1, a shuffle costs its item count, a
// sample costs k — so one budget bounds a client's total work on the
// daemon no matter which endpoint mix it uses. An exhausted bucket
// answers 429 with a Retry-After computed from the bucket's own refill
// rate; the client SDK (permclient) honors it.
//
// Clients are identified by the X-Permd-Client request header when
// present, else by the remote address's host part. The header is
// cooperative, not authenticating: quotas here are capacity protection
// (one hot client must not starve the engine pool for everyone else),
// not a security boundary — see the "Quotas and admission control"
// runbook section of OPERATIONS.md.

// QuotaSpec is one client budget: a token bucket holding Burst items
// that refills at Rate items per second. Rate 0 with a positive Burst
// is a fixed, non-refilling budget (useful in drills and batch
// accounting); Burst <= 0 means unlimited.
type QuotaSpec struct {
	// Rate is the refill rate in items per second (>= 0).
	Rate float64
	// Burst is the bucket capacity in items; a request costing more
	// than Burst can never be admitted. Burst <= 0 disables metering
	// for the clients the spec applies to.
	Burst int64
}

// Unlimited reports whether the spec disables metering entirely.
func (q QuotaSpec) Unlimited() bool { return q.Burst <= 0 }

// String renders the spec in the flag syntax ParseQuotaSpec accepts.
func (q QuotaSpec) String() string {
	if q.Unlimited() {
		return "off"
	}
	return fmt.Sprintf("%g/s:%d", q.Rate, q.Burst)
}

// ParseQuotaSpec parses the -quota flag syntax:
//
//	off                  no metering ("", "off", "unlimited")
//	RATE/UNIT            e.g. "5000/s", "300000/m" — burst defaults to
//	                     one UNIT's worth of refill
//	RATE/UNIT:BURST      e.g. "5000/s:20000", "0/s:1280" (fixed budget)
//
// RATE is a non-negative decimal (floats allowed), UNIT is s, m or h,
// BURST a positive integer count of items. A zero RATE needs an
// explicit BURST: "0/s" would be a bucket that never holds a token.
func ParseQuotaSpec(s string) (QuotaSpec, error) {
	s = strings.TrimSpace(s)
	switch strings.ToLower(s) {
	case "", "off", "unlimited":
		return QuotaSpec{}, nil
	}
	rateStr, burstStr, hasBurst := strings.Cut(s, ":")
	rateStr, unit, hasUnit := strings.Cut(rateStr, "/")
	if !hasUnit {
		return QuotaSpec{}, fmt.Errorf("quota %q: want RATE/UNIT[:BURST], e.g. 5000/s:20000", s)
	}
	rate, err := strconv.ParseFloat(rateStr, 64)
	if err != nil || rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return QuotaSpec{}, fmt.Errorf("quota %q: bad rate %q: want a non-negative decimal", s, rateStr)
	}
	perSecond := rate
	switch unit {
	case "s":
	case "m":
		perSecond = rate / 60
	case "h":
		perSecond = rate / 3600
	default:
		return QuotaSpec{}, fmt.Errorf("quota %q: bad unit %q: want s, m or h", s, unit)
	}
	spec := QuotaSpec{Rate: perSecond}
	if hasBurst {
		b, err := strconv.ParseInt(burstStr, 10, 64)
		if err != nil || b <= 0 {
			return QuotaSpec{}, fmt.Errorf("quota %q: bad burst %q: want a positive integer", s, burstStr)
		}
		spec.Burst = b
	} else {
		// One unit's worth of refill, rounded up so "1/s" is usable.
		spec.Burst = int64(rate)
		if float64(spec.Burst) < rate {
			spec.Burst++
		}
	}
	if spec.Burst <= 0 {
		return QuotaSpec{}, fmt.Errorf("quota %q: zero rate needs an explicit burst (e.g. 0/s:1000)", s)
	}
	return spec, nil
}

// ParseQuotaOverrides parses the -quota-overrides flag syntax: a
// comma-separated list of CLIENT=SPEC pairs, each SPEC in the
// ParseQuotaSpec syntax, e.g. "etl=50000/s:200000,canary=off".
func ParseQuotaOverrides(s string) (map[string]QuotaSpec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	out := make(map[string]QuotaSpec)
	for _, pair := range strings.Split(s, ",") {
		name, spec, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("quota override %q: want CLIENT=SPEC", pair)
		}
		q, err := ParseQuotaSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("quota override %q: %v", pair, err)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("quota override %q: client %q listed twice", s, name)
		}
		out[name] = q
	}
	return out, nil
}

// QuotaConfig is the admission layer's configuration: the default
// per-client budget, per-client overrides, and the bound on how many
// client buckets the daemon tracks.
type QuotaConfig struct {
	// Default is every unlisted client's budget. The zero value
	// (unlimited) together with empty Overrides disables the quota
	// layer entirely — the pre-quota permd behavior.
	Default QuotaSpec
	// Overrides maps client identities (X-Permd-Client values) to
	// budgets replacing Default, including "off" exemptions.
	Overrides map[string]QuotaSpec
	// MaxClients bounds the tracked-bucket LRU (default 4096). A
	// client evicted past the bound starts over with a full bucket, so
	// the bound is a memory cap, not a correctness boundary — size it
	// above the expected concurrent client count.
	MaxClients int
}

// Enabled reports whether any metering is configured.
func (c QuotaConfig) Enabled() bool { return !c.Default.Unlimited() || len(c.Overrides) > 0 }

// maxRetryAfter caps the Retry-After answered on exhaustion: a fixed
// budget (rate 0) or a request costing more than the burst can never be
// admitted by waiting, and an unbounded hint would just park clients
// forever. One hour is "come back after the operator intervened".
const maxRetryAfter = time.Hour

// quotas is the runtime state: one token bucket per active client, in
// an LRU bounded by MaxClients. All methods are safe for concurrent
// use; the lock is held only for the O(1) bucket update, never across
// any serving work.
type quotas struct {
	cfg QuotaConfig
	now func() time.Time // injectable clock for tests

	mu      sync.Mutex
	buckets map[string]*list.Element // value: *bucket
	lru     *list.List               // front = most recently used
}

type bucket struct {
	key    string
	spec   QuotaSpec
	tokens float64
	last   time.Time
}

func newQuotas(cfg QuotaConfig) *quotas {
	if cfg.MaxClients <= 0 {
		cfg.MaxClients = 4096
	}
	return &quotas{
		cfg:     cfg,
		now:     time.Now,
		buckets: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// specFor resolves the budget a client identity is subject to.
func (q *quotas) specFor(key string) QuotaSpec {
	if s, ok := q.cfg.Overrides[key]; ok {
		return s
	}
	return q.cfg.Default
}

// take debits cost items from key's bucket. When the bucket cannot
// cover the cost it reports ok == false and how long the client should
// wait before the bucket's refill would cover it (capped at
// maxRetryAfter; nothing is debited on refusal).
func (q *quotas) take(key string, cost int64) (ok bool, retryAfter time.Duration) {
	spec := q.specFor(key)
	if spec.Unlimited() {
		return true, 0
	}
	now := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	var b *bucket
	if el, hit := q.buckets[key]; hit {
		q.lru.MoveToFront(el)
		b = el.Value.(*bucket)
	} else {
		b = &bucket{key: key, spec: spec, tokens: float64(spec.Burst), last: now}
		q.buckets[key] = q.lru.PushFront(b)
		for q.lru.Len() > q.cfg.MaxClients {
			oldest := q.lru.Back()
			q.lru.Remove(oldest)
			delete(q.buckets, oldest.Value.(*bucket).key)
		}
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = min(float64(b.spec.Burst), b.tokens+dt*b.spec.Rate)
	}
	b.last = now
	if float64(cost) <= b.tokens {
		b.tokens -= float64(cost)
		return true, 0
	}
	missing := float64(cost) - b.tokens
	if b.spec.Rate <= 0 || cost > b.spec.Burst {
		return false, maxRetryAfter
	}
	wait := time.Duration(missing / b.spec.Rate * float64(time.Second))
	return false, min(max(wait, time.Second), maxRetryAfter)
}

// len reports how many client buckets are resident (the
// permd_quota_clients gauge).
func (q *quotas) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.lru.Len()
}

// clientKey identifies the requesting client for quota accounting: the
// cooperative X-Permd-Client header when present, else the remote
// host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Permd-Client"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}
