package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"randperm/internal/cluster/chaos"
	"randperm/internal/harness/testkit"
)

// bootServiceCluster starts `nodes` full permd handlers in cluster mode
// on loopback servers, exactly as N processes started with
// -peers/-node would run, and waits for every node's /healthz before
// returning — readiness is polled, never assumed from elapsed time, so
// the cluster tests are deterministic under -race and load.
func bootServiceCluster(t *testing.T, nodes int, base Config) []*httptest.Server {
	t.Helper()
	servers := testkit.Loopback(t, nodes, func(k int, peers []string) http.Handler {
		cfg := base
		cfg.ClusterPeers = peers
		cfg.ClusterNode = k
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
	for _, srv := range servers {
		testkit.WaitHealthy(t, srv.URL)
	}
	return servers
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	return testkit.Get(t, url)
}

// TestClusterServiceByteIdentical is the service-level acceptance
// contract: a 2-node permd cluster answers a backend=cluster chunk —
// requested from either node, covering the whole domain so both shards
// and the proxy path are exercised — with exactly the bytes a
// single-node, non-cluster server produces for the same (seed, n).
func TestClusterServiceByteIdentical(t *testing.T) {
	const n, seed = 600, 42
	servers := bootServiceCluster(t, 2, Config{Procs: 8})
	single := newTestServer(t, Config{Procs: 8})
	path := fmt.Sprintf("/v1/perm/%d/chunk?n=%d&len=%d&backend=cluster", seed, n, n)
	_, want := get(t, single, path)
	if len(want) == 0 || strings.Contains(want, "permd:") {
		t.Fatalf("single-node reference failed: %q", want)
	}
	for k, srv := range servers {
		code, body := httpGet(t, srv.URL+path)
		if code != http.StatusOK {
			t.Fatalf("node %d: status %d: %s", k, code, body)
		}
		if body != want {
			t.Errorf("node %d: cluster-served chunk differs from single-node bytes", k)
		}
	}
	// A sub-range that lives entirely on the far shard still answers
	// from node 0 (the proxy path alone).
	farPath := fmt.Sprintf("/v1/perm/%d/chunk?n=%d&start=%d&len=50&backend=cluster", seed, n, n-50)
	code, body := httpGet(t, servers[0].URL+farPath)
	if code != http.StatusOK {
		t.Fatalf("far-shard chunk: status %d: %s", code, body)
	}
	if !strings.HasSuffix(want, body) {
		t.Error("far-shard chunk is not the tail of the full response")
	}
	// At on the far shard answers through the same routed path.
	atPath := fmt.Sprintf("/v1/perm/%d/at?n=%d&i=%d&backend=cluster", seed, n, n-1)
	code, body = httpGet(t, servers[0].URL+atPath)
	if code != http.StatusOK {
		t.Fatalf("at: status %d: %s", code, body)
	}
	lines := strings.Split(strings.TrimSpace(want), "\n")
	if strings.TrimSpace(body) != lines[n-1] {
		t.Errorf("at = %q, want %q", strings.TrimSpace(body), lines[n-1])
	}
}

// TestClusterServiceSurfaces: cluster mode shows up in /healthz, the
// peer endpoints answer, and /metrics carries the permd_cluster_*
// families.
func TestClusterServiceSurfaces(t *testing.T) {
	servers := bootServiceCluster(t, 2, Config{Procs: 4})
	code, body := httpGet(t, servers[1].URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var h struct {
		Cluster struct {
			Node, Nodes, Procs int
		} `json:"cluster"`
		Backends []string `json:"backends"`
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Cluster.Node != 1 || h.Cluster.Nodes != 2 || h.Cluster.Procs != 4 {
		t.Errorf("healthz cluster block wrong: %+v", h.Cluster)
	}
	found := false
	for _, b := range h.Backends {
		found = found || b == "cluster"
	}
	if !found {
		t.Errorf("cluster missing from healthz backends: %v", h.Backends)
	}
	if code, _ := httpGet(t, servers[0].URL+"/v1/cluster/status"); code != http.StatusOK {
		t.Errorf("cluster status: %d", code)
	}
	// Drive one sharded request, then look for the cluster counters.
	if code, _ := httpGet(t, servers[0].URL+"/v1/perm/1/chunk?n=200&len=200&backend=cluster"); code != http.StatusOK {
		t.Fatalf("chunk: %d", code)
	}
	_, metrics := httpGet(t, servers[0].URL+"/metrics")
	for _, want := range []string{
		"permd_cluster_shard_builds_total 1",
		"permd_cluster_proxied_requests_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// A misconfigured width cannot cross the exchange: a third server
	// with different Procs pointing at these peers fails its build.
	peers := []string{servers[0].URL, servers[1].URL}
	bad, err := New(Config{Procs: 16, ClusterPeers: peers, ClusterNode: 0})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	bad.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/perm/1/chunk?n=200&len=10&backend=cluster", nil))
	if rec.Code != http.StatusInternalServerError || !strings.Contains(rec.Body.String(), "mismatch") {
		t.Errorf("mismatched cluster width served: %d %q", rec.Code, rec.Body.String())
	}
}

// bootChaosServiceCluster is bootServiceCluster with every node behind
// a chaos.Proxy, for service-level failure drills.
func bootChaosServiceCluster(t *testing.T, nodes int, base Config) ([]*httptest.Server, []*chaos.Proxy) {
	t.Helper()
	servers, proxies := testkit.LoopbackChaos(t, nodes, func(k int, peers []string) http.Handler {
		cfg := base
		cfg.ClusterPeers = peers
		cfg.ClusterNode = k
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
	for _, srv := range servers {
		testkit.WaitHealthy(t, srv.URL)
	}
	return servers, proxies
}

// TestClusterServiceReplicatedDrill is the service-level acceptance
// drill: a 3-node R=2 permd cluster with any one node dead still
// answers a backend=cluster chunk from every survivor with exactly the
// single-node bytes — the client cannot tell a failure happened.
func TestClusterServiceReplicatedDrill(t *testing.T) {
	const n, seed, procs = 600, 42, 6
	single := newTestServer(t, Config{Procs: procs})
	path := fmt.Sprintf("/v1/perm/%d/chunk?n=%d&len=%d&backend=cluster", seed, n, n)
	_, want := get(t, single, path)
	if len(want) == 0 || strings.Contains(want, "permd:") {
		t.Fatalf("single-node reference failed: %q", want)
	}
	for victim := 0; victim < 3; victim++ {
		servers, proxies := bootChaosServiceCluster(t, 3, Config{Procs: procs, ClusterReplicas: 2})
		// Replication shows up in the liveness echo.
		var h struct {
			Cluster struct {
				Replicas int    `json:"replicas"`
				Geometry string `json:"geometry"`
			} `json:"cluster"`
		}
		_, hz := httpGet(t, servers[0].URL+"/healthz")
		if err := json.Unmarshal([]byte(hz), &h); err != nil {
			t.Fatal(err)
		}
		if h.Cluster.Replicas != 2 || h.Cluster.Geometry == "" {
			t.Fatalf("healthz cluster block missing replication: %s", hz)
		}
		proxies[victim].Kill()
		for reader := 0; reader < 3; reader++ {
			if reader == victim {
				continue
			}
			code, body := httpGet(t, servers[reader].URL+path)
			if code != http.StatusOK {
				t.Fatalf("kill node %d, read node %d: status %d: %s", victim, reader, code, body)
			}
			if body != want {
				t.Errorf("kill node %d, read node %d: served bytes differ from single-node run", victim, reader)
			}
		}
	}
}

// TestClusterServiceAtomicFailure is the R=1 half of the contract at
// the HTTP layer: a chunk that needs a dead peer fails with a 500 and
// ZERO payload bytes — the response is assembled before the first byte
// is written, so a mid-range peer death can never leak a partial
// permutation to a client.
func TestClusterServiceAtomicFailure(t *testing.T) {
	const n, seed = 500, 3
	servers, proxies := bootChaosServiceCluster(t, 2, Config{Procs: 4})
	proxies[1].Kill()
	// The whole domain: node 0's own shard would be served first if the
	// handler streamed eagerly — the dead far shard must take the whole
	// response down instead.
	path := fmt.Sprintf("/v1/perm/%d/chunk?n=%d&len=%d&backend=cluster", seed, n, n)
	code, body := httpGet(t, servers[0].URL+path)
	if code != http.StatusInternalServerError {
		t.Fatalf("R=1 chunk with a dead peer: status %d: %.80s", code, body)
	}
	if !strings.HasPrefix(body, "permd:") {
		t.Errorf("error response carries payload bytes before the error: %.80s", body)
	}
	// The typed peer error survives to the operator-visible message.
	if !strings.Contains(body, "node 1") {
		t.Errorf("error does not name the dead peer: %.200s", body)
	}
}
