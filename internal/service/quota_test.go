package service

import (
	"strings"
	"testing"
	"time"
)

func TestParseQuotaSpec(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    QuotaSpec
		wantErr string
	}{
		{in: "", want: QuotaSpec{}},
		{in: "off", want: QuotaSpec{}},
		{in: "Unlimited", want: QuotaSpec{}},
		{in: "5000/s", want: QuotaSpec{Rate: 5000, Burst: 5000}},
		{in: "5000/s:20000", want: QuotaSpec{Rate: 5000, Burst: 20000}},
		{in: "300000/m", want: QuotaSpec{Rate: 5000, Burst: 300000}},
		{in: "7200/h:100", want: QuotaSpec{Rate: 2, Burst: 100}},
		{in: "0/s:1280", want: QuotaSpec{Rate: 0, Burst: 1280}},
		{in: "1.5/s", want: QuotaSpec{Rate: 1.5, Burst: 2}},
		{in: "0/s", wantErr: "explicit burst"},
		{in: "5000", wantErr: "RATE/UNIT"},
		{in: "-1/s", wantErr: "bad rate"},
		{in: "x/s", wantErr: "bad rate"},
		{in: "5/d", wantErr: "bad unit"},
		{in: "5/s:0", wantErr: "bad burst"},
		{in: "5/s:-2", wantErr: "bad burst"},
		{in: "5/s:x", wantErr: "bad burst"},
	} {
		got, err := ParseQuotaSpec(tc.in)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseQuotaSpec(%q) err = %v, want substring %q", tc.in, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseQuotaSpec(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseQuotaSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestParseQuotaOverrides(t *testing.T) {
	m, err := ParseQuotaOverrides("etl=50000/s:200000, canary=off")
	if err != nil {
		t.Fatal(err)
	}
	if got := m["etl"]; got.Rate != 50000 || got.Burst != 200000 {
		t.Errorf("etl = %+v", got)
	}
	if !m["canary"].Unlimited() {
		t.Errorf("canary should be exempt, got %+v", m["canary"])
	}
	for _, bad := range []string{"noequals", "=5/s", "a=5/s,a=6/s", "a=bogus"} {
		if _, err := ParseQuotaOverrides(bad); err == nil {
			t.Errorf("ParseQuotaOverrides(%q) accepted", bad)
		}
	}
	if m, err := ParseQuotaOverrides("  "); err != nil || m != nil {
		t.Errorf("blank overrides = %v, %v", m, err)
	}
}

// TestBucketRefill drives one bucket through exhaustion and refill on
// an injected clock: the token arithmetic, not wall time, is under test.
func TestBucketRefill(t *testing.T) {
	q := newQuotas(QuotaConfig{Default: QuotaSpec{Rate: 10, Burst: 20}})
	now := time.Unix(1000, 0)
	q.now = func() time.Time { return now }

	if ok, _ := q.take("c", 20); !ok {
		t.Fatal("full bucket refused its burst")
	}
	ok, retry := q.take("c", 5)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	// 5 tokens at 10/s is 500ms away, but the hint never goes below 1s.
	if retry != time.Second {
		t.Errorf("retry = %v, want the 1s floor", retry)
	}
	now = now.Add(500 * time.Millisecond)
	if ok, _ := q.take("c", 5); !ok {
		t.Error("500ms at 10/s should refill 5 tokens")
	}
	if ok, _ := q.take("c", 1); ok {
		t.Error("bucket should be empty again")
	}
	// Refill caps at the burst, not the elapsed time.
	now = now.Add(time.Hour)
	if ok, _ := q.take("c", 21); ok {
		t.Error("refill exceeded the burst capacity")
	}
	if ok, _ := q.take("c", 20); !ok {
		t.Error("burst-sized take refused after a long idle")
	}
}

// TestBucketOversizedCost: a request costing more than the burst can
// never be admitted, and says so with the capped hint.
func TestBucketOversizedCost(t *testing.T) {
	q := newQuotas(QuotaConfig{Default: QuotaSpec{Rate: 100, Burst: 10}})
	ok, retry := q.take("c", 11)
	if ok || retry != maxRetryAfter {
		t.Errorf("oversized cost: ok=%v retry=%v, want refused with %v", ok, retry, maxRetryAfter)
	}
	// The refusal debited nothing.
	if ok, _ := q.take("c", 10); !ok {
		t.Error("bucket was debited by a refused request")
	}
}

// TestBucketLRUBound: the tracked-client map stays within MaxClients;
// an evicted client restarts with a full bucket (memory cap, not a
// correctness boundary).
func TestBucketLRUBound(t *testing.T) {
	q := newQuotas(QuotaConfig{Default: QuotaSpec{Rate: 0, Burst: 4}, MaxClients: 2})
	q.take("a", 4) // a exhausted
	q.take("b", 1)
	q.take("c", 1) // evicts a
	if got := q.len(); got != 2 {
		t.Fatalf("tracked clients = %d, want 2", got)
	}
	if ok, _ := q.take("a", 4); !ok {
		t.Error("evicted client should restart with a full bucket")
	}
}

// TestQuotaSpecString: the String round-trips through the parser.
func TestQuotaSpecString(t *testing.T) {
	for _, s := range []QuotaSpec{{}, {Rate: 5000, Burst: 20000}, {Rate: 0.5, Burst: 3}} {
		back, err := ParseQuotaSpec(s.String())
		if err != nil {
			t.Errorf("ParseQuotaSpec(%q): %v", s.String(), err)
		}
		if back != s {
			t.Errorf("round trip %+v -> %q -> %+v", s, s.String(), back)
		}
	}
}
