package workload

import (
	"strings"
	"testing"
)

// FuzzParseAssignSpec fuzzes the name:weight grammar — the one
// workload input that arrives from the network unvalidated. The
// properties: parsing never panics; an accepted spec always partitions
// [0, n) exactly (sizes sum to n, ranges tile with no gaps or
// overlaps, every size within one id of its exact share) for a spread
// of domain sizes including 2^40; and String() round-trips to an
// equivalent spec.
//
// CI runs this for a short smoke (-fuzztime 10s); longer campaigns:
//
//	go test -run '^$' -fuzz FuzzParseAssignSpec -fuzztime 10m ./internal/workload
func FuzzParseAssignSpec(f *testing.F) {
	for _, seed := range []string{
		"control:9,treat:1",
		"a:1",
		"a:1,b:2,c:3",
		"x:18446744073709551615",
		"",
		":",
		"a:0",
		"a:1,a:1",
		"name.with-every_rune9:42",
		strings.Repeat("a:1,", 100) + "z:1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseAssignSpec(s) // must never panic
		if err != nil {
			return
		}
		// Accepted specs are usable: exact partition at several n,
		// including the huge-domain acceptance point.
		for _, n := range []int64{0, 1, 7, 1000, 1 << 40} {
			assertExactPartition(t, spec, n)
		}
		// String round-trips to an equivalent spec.
		back, err := ParseAssignSpec(spec.String())
		if err != nil {
			t.Fatalf("String() %q of accepted spec %q does not re-parse: %v", spec.String(), s, err)
		}
		if back.String() != spec.String() || back.TotalWeight() != spec.TotalWeight() || back.Len() != spec.Len() {
			t.Fatalf("round trip drifted: %q -> %q", spec.String(), back.String())
		}
	})
}
