// The statistical acceptance suite for the workload layer: the
// guarantees /v1/assign and /v1/epochs advertise, enforced by test.
//
//   - Exact proportions: every bucket receives exactly its apportioned
//     number of ids — counted by full enumeration at small n, and by
//     range arithmetic (no enumeration) at n = 2^40.
//   - Assignment uniformity: across experiment seeds, a fixed id's
//     landing position is chi-square uniform on [0, n), which implies
//     both the bucket frequencies (weights over seeds) and uniformity
//     within each bucket's range.
//   - Cross-epoch independence: the ordered pairs (π_e(i), π_{e+1}(i))
//     of consecutive epochs spread chi-square uniformly, in both
//     fresh-key and recycled modes.
package workload

import (
	"testing"

	"randperm/internal/engine"
	"randperm/internal/stats"
)

// TestAssignExactProportionsByCount enumerates every id of the domain
// and counts bucket hits: the count per bucket must equal the
// apportioned size exactly — not approximately, not with high
// probability — because the bijection maps [0, n) onto itself and the
// ranges tile it. Count, don't sample.
func TestAssignExactProportionsByCount(t *testing.T) {
	for _, tc := range []struct {
		spec string
		n    int64
	}{
		{"control:9,treat:1", 1000},
		{"a:5,b:3,c:2", 997}, // prime n: rounding leftovers in play
		{"x:1,y:1,z:1", 100}, // 100/3 does not divide evenly
		{"solo:7", 64},
	} {
		spec := mustParse(t, tc.spec)
		sizes := spec.Sizes(tc.n)
		for _, seed := range []uint64{1, 42, 0xDEADBEEF} {
			counts := make([]int64, spec.Len())
			bij := engine.NewBijection(tc.n, seed)
			for id := int64(0); id < tc.n; id++ {
				idx, _ := spec.Find(tc.n, bij.Index(id))
				counts[idx]++
			}
			for i, want := range sizes {
				if counts[i] != want {
					t.Errorf("spec %q n=%d seed=%d: bucket %d got %d ids, want exactly %d",
						tc.spec, tc.n, seed, i, counts[i], want)
				}
			}
		}
	}
}

// TestAssignExactProportionsHugeN holds the same property at n = 2^40
// (and awkward neighbors) purely by range arithmetic — the acceptance
// criterion that no bucket is off by even one id at scales where
// enumeration is impossible.
func TestAssignExactProportionsHugeN(t *testing.T) {
	for _, ss := range []string{
		"control:9,treat:1",
		"a:1,b:1,c:1",
		"big:999999937,small:1",          // huge prime weight
		"w1:3,w2:5,w3:7,w4:11,w5:13",     // coprime weights
		"x:18446744073709551614,y:1",     // near-overflow total
		"a:1,b:2,c:4,d:8,e:16,f:32,g:64", // powers of two
	} {
		spec := mustParse(t, ss)
		for _, n := range []int64{1 << 40, 1<<40 + 1, 1<<40 - 1, 1<<40 + 999999937} {
			assertExactPartition(t, spec, n)
		}
	}
}

// TestAssignUniformAcrossSeeds: for a fixed user id, the landing
// position across experiment seeds must be chi-square uniform on
// [0, n). Uniformity of the position implies the two consequences the
// endpoint advertises — bucket frequencies match the weights across
// experiments, and assignment is uniform within each bucket's range.
func TestAssignUniformAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const (
		n      = 64
		trials = 12800
	)
	for _, id := range []int64{0, 17, n - 1} {
		counts := make([]int64, n)
		for s := 0; s < trials; s++ {
			seed := 0xA11CE + uint64(s)*0x9E3779B97F4A7C15
			counts[engine.NewBijection(n, seed).Index(id)]++
		}
		res, err := stats.ChiSquareUniform(counts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject(1e-4) {
			t.Errorf("id %d: position over seeds not uniform: %v", id, res)
		}
	}
}

// TestAssignBucketFrequencies is the bucket-level view of the same
// law: across seeds, a fixed id lands in bucket b with probability
// size_b/n. Checked directly against the apportioned sizes with a
// weighted chi-square.
func TestAssignBucketFrequencies(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const (
		n      = 1000
		trials = 8000
		id     = 123
	)
	spec := mustParse(t, "control:9,treat:1")
	sizes := spec.Sizes(n)
	probs := make([]float64, len(sizes))
	for i, sz := range sizes {
		probs[i] = float64(sz) / float64(n)
	}
	counts := make([]int64, spec.Len())
	for s := 0; s < trials; s++ {
		seed := 0xBEEF + uint64(s)*0x9E3779B97F4A7C15
		idx, _ := Assign(spec, seed, n, id)
		counts[idx]++
	}
	res, err := stats.ChiSquare(counts, probs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(1e-4) {
		t.Errorf("bucket frequencies drift from weights: %v (counts %v, sizes %v)", res, counts, sizes)
	}
}

// epochPerm evaluates the full epoch-e permutation of (seed, n, mode).
func epochPerm(e *Epocher, n, epoch int64) []int64 {
	bij := engine.NewBijection(n, e.Key(epoch))
	out := make([]int64, n)
	bij.Chunk(out, 0)
	return out
}

// TestEpochCrossIndependence: the joint law of a fixed index's
// positions in consecutive epochs. Over dataset seeds, the ordered
// pair (π_e(i), π_{e+1}(i)) must spread uniformly over all n² cells —
// any coupling between an epoch's key and the next (the risk recycled
// derivation takes deliberately) would concentrate the diagonal or
// some coset. Both modes face the same chi-square.
func TestEpochCrossIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const (
		n     = 8
		seeds = 1500
		pairs = 3 // epoch pairs (e, e+1) for e in 0..pairs-1
	)
	for _, mode := range []EpochMode{EpochFresh, EpochRecycled} {
		counts := make([]int64, n*n)
		for s := 0; s < seeds; s++ {
			seed := 0xEC0DE + uint64(s)*0x9E3779B97F4A7C15
			e := NewEpocher(seed, mode)
			for ep := int64(0); ep < pairs; ep++ {
				a := epochPerm(e, n, ep)
				b := epochPerm(e, n, ep+1)
				for i := int64(0); i < n; i++ {
					counts[a[i]*n+b[i]]++
				}
			}
		}
		res, err := stats.ChiSquareUniform(counts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject(1e-4) {
			t.Errorf("mode %v: consecutive-epoch pairs not uniform: %v", mode, res)
		}
	}
}

// TestEpochMarginalUniformity: within one mode, each epoch's
// permutation is itself a uniform-marginal family over dataset seeds —
// deriving the key through LongJumps or sequential draws must not
// bias the bijection it feeds.
func TestEpochMarginalUniformity(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const (
		n      = 32
		trials = 6400
		epoch  = 2
	)
	for _, mode := range []EpochMode{EpochFresh, EpochRecycled} {
		counts := make([]int64, n)
		for s := 0; s < trials; s++ {
			seed := 0xFACE + uint64(s)*0x9E3779B97F4A7C15
			key := NewEpocher(seed, mode).Key(epoch)
			counts[engine.NewBijection(n, key).Index(0)]++
		}
		res, err := stats.ChiSquareUniform(counts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject(1e-4) {
			t.Errorf("mode %v: epoch %d marginal not uniform: %v", mode, epoch, res)
		}
	}
}
