package workload

import (
	"math/bits"
	"strings"
	"testing"

	"randperm/internal/xrand"
)

func mustParse(t testing.TB, s string) *Spec {
	t.Helper()
	spec, err := ParseAssignSpec(s)
	if err != nil {
		t.Fatalf("ParseAssignSpec(%q): %v", s, err)
	}
	return spec
}

func TestParseAssignSpec(t *testing.T) {
	spec := mustParse(t, "control:9,treat:1")
	if spec.Len() != 2 || spec.TotalWeight() != 10 {
		t.Fatalf("spec = %v (total %d), want 2 buckets totalling 10", spec.Buckets(), spec.TotalWeight())
	}
	bks := spec.Buckets()
	if bks[0] != (Bucket{"control", 9}) || bks[1] != (Bucket{"treat", 1}) {
		t.Errorf("buckets = %v", bks)
	}
	if got := spec.String(); got != "control:9,treat:1" {
		t.Errorf("String() = %q", got)
	}
}

func TestParseAssignSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"",                           // empty
		"  ",                         // whitespace only
		"control",                    // no weight
		"control:",                   // empty weight
		":1",                         // empty name
		"a:0",                        // zero weight
		"a:-1",                       // negative weight
		"a:1.5",                      // fractional weight
		"a:1,a:2",                    // duplicate name
		"a b:1",                      // bad name rune
		"a:1,,b:1",                   // empty bucket
		"a:99999999999999999999",     // weight overflow
		"a:18446744073709551615,b:1", // total overflow
	} {
		if _, err := ParseAssignSpec(bad); err == nil {
			t.Errorf("ParseAssignSpec(%q) accepted, want error", bad)
		}
	}
}

func TestParseAssignSpecRoundTrip(t *testing.T) {
	for _, s := range []string{
		"a:1",
		"control:9,treat:1",
		"a:1,b:2,c:3,d.e-f_g:18446744073709551608",
	} {
		spec := mustParse(t, s)
		back := mustParse(t, spec.String())
		if back.String() != spec.String() || back.TotalWeight() != spec.TotalWeight() {
			t.Errorf("round trip of %q: %q", s, back.String())
		}
	}
}

// TestSizesExact: the apportionment invariants on a sweep of specs and
// domain sizes — sizes sum to n, every size is within one id of the
// exact rational share (checked in exact 128-bit arithmetic), and the
// ranges tile [0, n) with no gaps or overlaps.
func TestSizesExact(t *testing.T) {
	specs := []string{
		"a:1",
		"a:1,b:1",
		"control:9,treat:1",
		"a:1,b:2,c:3,d:4,e:5,f:6,g:7",
		"big:1000000007,small:3",
		"x:18446744073709551614,y:1",
	}
	ns := []int64{0, 1, 2, 3, 10, 97, 1000, 1 << 20, 1<<40 + 12345}
	for _, ss := range specs {
		spec := mustParse(t, ss)
		for _, n := range ns {
			assertExactPartition(t, spec, n)
		}
	}
}

// assertExactPartition checks the exact-proportion property by range
// arithmetic (no enumeration): sum == n, |size*W - w*n| < W for every
// bucket, contiguous tiling.
func assertExactPartition(t testing.TB, spec *Spec, n int64) {
	t.Helper()
	sizes := spec.Sizes(n)
	W := spec.TotalWeight()
	var sum int64
	for i, sz := range sizes {
		if sz < 0 {
			t.Fatalf("spec %q n=%d: negative size %d", spec, n, sz)
		}
		sum += sz
		// |size*W - w*n| < W, compared exactly in 128 bits.
		shi, slo := bits.Mul64(uint64(sz), W)
		whi, wlo := bits.Mul64(spec.buckets[i].Weight, uint64(n))
		var dhi, dlo uint64
		if shi > whi || (shi == whi && slo >= wlo) {
			dlo, dhi = sub128(shi, slo, whi, wlo)
		} else {
			dlo, dhi = sub128(whi, wlo, shi, slo)
		}
		if dhi != 0 || dlo >= W {
			t.Fatalf("spec %q n=%d bucket %d: size %d off by >= 1 id (|diff| = %d:%d, W = %d)",
				spec, n, i, sz, dhi, dlo, W)
		}
	}
	if sum != n {
		t.Fatalf("spec %q n=%d: sizes sum to %d", spec, n, sum)
	}
	ranges := spec.Ranges(n)
	pos := int64(0)
	for i, r := range ranges {
		if r.Start != pos || r.End < r.Start {
			t.Fatalf("spec %q n=%d: range %d = %+v, want start %d", spec, n, i, r, pos)
		}
		pos = r.End
	}
	if pos != n {
		t.Fatalf("spec %q n=%d: ranges end at %d", spec, n, pos)
	}
}

// sub128 returns (lo, hi) of (ahi:alo) - (bhi:blo); caller guarantees
// the minuend is the larger.
func sub128(ahi, alo, bhi, blo uint64) (lo, hi uint64) {
	lo, borrow := bits.Sub64(alo, blo, 0)
	hi, _ = bits.Sub64(ahi, bhi, borrow)
	return lo, hi
}

func TestFindMatchesLinearScan(t *testing.T) {
	spec := mustParse(t, "a:3,b:1,c:2,d:4")
	const n = 257
	ranges := spec.Ranges(n)
	for pos := int64(0); pos < n; pos++ {
		want := -1
		for i, r := range ranges {
			if pos >= r.Start && pos < r.End {
				want = i
			}
		}
		idx, name := spec.Find(n, pos)
		if idx != want || name != spec.buckets[want].Name {
			t.Fatalf("Find(%d, %d) = (%d, %q), want bucket %d", n, pos, idx, name, want)
		}
	}
}

func TestFindPanicsOutOfRange(t *testing.T) {
	spec := mustParse(t, "a:1")
	for _, pos := range []int64{-1, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Find(10, %d) did not panic", pos)
				}
			}()
			spec.Find(10, pos)
		}()
	}
}

func TestAssignDeterministic(t *testing.T) {
	spec := mustParse(t, "control:9,treat:1")
	const n, seed = 1000, 42
	for id := int64(0); id < n; id += 97 {
		i1, n1 := Assign(spec, seed, n, id)
		i2, n2 := Assign(spec, seed, n, id)
		if i1 != i2 || n1 != n2 {
			t.Fatalf("Assign(%d) unstable: (%d,%q) vs (%d,%q)", id, i1, n1, i2, n2)
		}
	}
}

func TestEpochModeParse(t *testing.T) {
	for s, want := range map[string]EpochMode{
		"": EpochFresh, "fresh": EpochFresh, "FRESH": EpochFresh,
		"recycled": EpochRecycled, " Recycled ": EpochRecycled,
	} {
		got, err := ParseEpochMode(s)
		if err != nil || got != want {
			t.Errorf("ParseEpochMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseEpochMode("stale"); err == nil {
		t.Error("ParseEpochMode accepted garbage")
	}
	if EpochFresh.String() != "fresh" || EpochRecycled.String() != "recycled" {
		t.Error("EpochMode.String drifted from the wire spelling")
	}
}

// TestEpochFreshMatchesLongStreams pins fresh-mode derivation to the
// NewLongStreams family: epoch e's key is the first draw of long
// stream e — the same 2^192-step separation the engine's per-worker
// streams rely on.
func TestEpochFreshMatchesLongStreams(t *testing.T) {
	const seed, epochs = 7, 20
	streams := xrand.NewLongStreams(seed, epochs)
	e := NewEpocher(seed, EpochFresh)
	// Random-access order must not matter.
	for _, ep := range []int64{3, 0, 19, 7, 3, 12} {
		if got, want := e.Key(ep), streams[ep].Clone().Uint64(); got != want {
			t.Fatalf("fresh Key(%d) = %#x, want long-stream draw %#x", ep, got, want)
		}
	}
}

// TestEpochRecycledIsSequentialDraws pins recycled-mode derivation:
// key e is the e-th draw of the dataset seed's own stream, so epoch
// e+1's key comes from exactly the stream state epoch e left behind.
func TestEpochRecycledIsSequentialDraws(t *testing.T) {
	const seed = 99
	s := xrand.NewXoshiro256(seed)
	e := NewEpocher(seed, EpochRecycled)
	for ep := int64(0); ep < 50; ep++ {
		if got, want := e.Key(ep), s.Uint64(); got != want {
			t.Fatalf("recycled Key(%d) = %#x, want sequential draw %#x", ep, got, want)
		}
	}
}

func TestEpochKeyDeterministicAndModesDiffer(t *testing.T) {
	a := NewEpocher(5, EpochFresh)
	b := NewEpocher(5, EpochFresh)
	r := NewEpocher(5, EpochRecycled)
	for ep := int64(0); ep < 10; ep++ {
		if a.Key(ep) != b.Key(ep) {
			t.Fatalf("fresh Key(%d) differs across epochers", ep)
		}
	}
	same := 0
	for ep := int64(0); ep < 10; ep++ {
		if a.Key(ep) == r.Key(ep) {
			same++
		}
	}
	if same == 10 {
		t.Error("fresh and recycled derivations coincide — modes are not separated")
	}
}

func TestEpochKeyNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Key(-1) did not panic")
		}
	}()
	NewEpocher(1, EpochFresh).Key(-1)
}

func TestSpecStringIsParseable(t *testing.T) {
	// A spec whose names exercise the full rune set must survive the trip.
	s := "A-b_c.9:123,z:1"
	if got := mustParse(t, s).String(); got != s {
		t.Errorf("String() = %q, want %q", got, s)
	}
	if !strings.Contains(mustParse(t, s).String(), "A-b_c.9") {
		t.Error("name mangled")
	}
}
