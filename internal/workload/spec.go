// Package workload turns the permutation machinery into two
// first-class million-user scenarios:
//
//   - Experiment assignment: a weight spec ("control:9,treat:1")
//     partitions the index domain [0, n) into contiguous bucket ranges
//     whose sizes are exact by integer arithmetic — every bucket gets
//     within one id of weight·n/total, and the sizes sum to n exactly.
//     A user id is assigned by sending it through the keyed bijection
//     (engine.Bijection.Index, O(1)) and reading off which range its
//     image lands in. Because the bijection maps [0, n) onto itself,
//     each bucket receives exactly as many ids as its range holds —
//     proportions hold by construction, not in expectation, which is
//     the guarantee hash-mod assignment cannot give.
//
//   - Epoch shuffling: the Mitchell et al. (arXiv:2106.06161)
//     motivating workload. Epoch e of dataset (seed, n) is the
//     bijective permutation under a per-epoch key derived from the
//     dataset seed: fresh mode separates epochs by the xoshiro
//     LongJump (2^192 steps — the NewLongStreams family), recycled
//     mode (Ito & Kikuchi, hep-lat/9302002) evolves one stream
//     sequentially so each epoch's key is derived from the previous
//     epoch's stream state, amortizing randomness across epochs.
//
// Both are pure functions of their inputs: bucket = f(seed, spec, id)
// and epoch bytes = f(seed, n, e, mode) — the determinism contracts
// ARCHITECTURE.md states for the /v1/assign and /v1/epochs endpoints.
package workload

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"randperm/internal/engine"
)

// MaxBuckets bounds how many buckets one spec may declare. 1024 keeps
// every per-request spec computation (parse, ranges, binary search)
// trivially cheap while covering any realistic experiment design.
const MaxBuckets = 1024

// Bucket is one named arm of an experiment with its integer weight.
type Bucket struct {
	Name   string
	Weight uint64
}

// Spec is a validated experiment bucketing: an ordered list of named,
// positively-weighted buckets. Order is significant — it fixes which
// contiguous range of [0, n) each bucket owns and how rounding leftovers
// are distributed — so two spellings of the same weights are different
// specs. A Spec is immutable after ParseAssignSpec; safe for concurrent
// use.
type Spec struct {
	buckets []Bucket
	total   uint64
}

// ParseAssignSpec parses the "name:weight,name:weight,..." grammar:
// names are non-empty, unique, and drawn from [A-Za-z0-9_.-]; weights
// are positive decimal uint64s; 1..MaxBuckets buckets; the total weight
// must fit in a uint64. The grammar is fuzzed (FuzzParseAssignSpec):
// accepted specs always partition [0, n) exactly and round-trip through
// String.
func ParseAssignSpec(s string) (*Spec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("workload: empty assignment spec: want name:weight,...")
	}
	parts := strings.Split(s, ",")
	if len(parts) > MaxBuckets {
		return nil, fmt.Errorf("workload: %d buckets exceeds the limit %d", len(parts), MaxBuckets)
	}
	spec := &Spec{buckets: make([]Bucket, 0, len(parts))}
	seen := make(map[string]bool, len(parts))
	for _, part := range parts {
		name, weightStr, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("workload: bucket %q: want name:weight", part)
		}
		if name == "" {
			return nil, fmt.Errorf("workload: bucket %q: empty name", part)
		}
		for _, r := range name {
			if !isNameRune(r) {
				return nil, fmt.Errorf("workload: bucket name %q: want [A-Za-z0-9_.-]", name)
			}
		}
		if seen[name] {
			return nil, fmt.Errorf("workload: duplicate bucket %q", name)
		}
		seen[name] = true
		w, err := strconv.ParseUint(weightStr, 10, 64)
		if err != nil || w == 0 {
			return nil, fmt.Errorf("workload: bucket %q: weight %q: want a positive decimal integer", name, weightStr)
		}
		total, carry := bits.Add64(spec.total, w, 0)
		if carry != 0 {
			return nil, fmt.Errorf("workload: total weight overflows uint64")
		}
		spec.total = total
		spec.buckets = append(spec.buckets, Bucket{Name: name, Weight: w})
	}
	return spec, nil
}

func isNameRune(r rune) bool {
	return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
		r >= '0' && r <= '9' || r == '_' || r == '.' || r == '-'
}

// String renders the spec back in the grammar ParseAssignSpec accepts;
// ParseAssignSpec(s.String()) reproduces s exactly.
func (s *Spec) String() string {
	var b strings.Builder
	for i, bk := range s.buckets {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(bk.Name)
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(bk.Weight, 10))
	}
	return b.String()
}

// Buckets returns the ordered bucket list (a copy; the Spec stays
// immutable).
func (s *Spec) Buckets() []Bucket { return append([]Bucket(nil), s.buckets...) }

// Len returns the number of buckets.
func (s *Spec) Len() int { return len(s.buckets) }

// TotalWeight returns the sum of all bucket weights.
func (s *Spec) TotalWeight() uint64 { return s.total }

// Sizes apportions a domain of n ids over the buckets exactly: the
// largest-remainder (Hamilton) method on the exact 128-bit products
// weight·n, so size[i] is floor or ceil of weight[i]·n/total, the
// error |size[i] - weight[i]·n/total| is strictly below one id for
// every bucket at any n up to 2^62, and the sizes sum to n exactly.
// Ties in the remainders break toward the earlier bucket, which keeps
// the apportionment a pure function of (spec, n).
func (s *Spec) Sizes(n int64) []int64 {
	if n < 0 {
		panic(fmt.Sprintf("workload: Sizes with negative domain %d", n))
	}
	sizes := make([]int64, len(s.buckets))
	rems := make([]uint64, len(s.buckets))
	assigned := int64(0)
	for i, bk := range s.buckets {
		// floor(w*n/total) and its remainder, exactly: the 128-bit
		// product w*n divided by total. The quotient is <= n < 2^63, so
		// hi < total always holds and Div64 cannot panic.
		hi, lo := bits.Mul64(bk.Weight, uint64(n))
		q, r := bits.Div64(hi, lo, s.total)
		sizes[i] = int64(q)
		rems[i] = r
		assigned += int64(q)
	}
	// The floors under-assign by exactly (sum of remainders)/total ids,
	// which is < len(buckets); hand the leftovers to the largest
	// remainders, earlier bucket first on ties.
	order := make([]int, len(s.buckets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return rems[order[a]] > rems[order[b]] })
	for k := int64(0); k < n-assigned; k++ {
		sizes[order[k]]++
	}
	return sizes
}

// Range is one bucket's contiguous slice [Start, End) of the domain.
type Range struct {
	Start, End int64
}

// Ranges lays the exact Sizes out contiguously over [0, n): bucket i
// owns [boundary[i], boundary[i+1]). The ranges partition [0, n) with
// no gaps or overlaps — Ranges[0].Start == 0, each End equals the next
// Start, and the last End equals n.
func (s *Spec) Ranges(n int64) []Range {
	sizes := s.Sizes(n)
	ranges := make([]Range, len(sizes))
	pos := int64(0)
	for i, sz := range sizes {
		ranges[i] = Range{Start: pos, End: pos + sz}
		pos += sz
	}
	return ranges
}

// Find returns the index and name of the bucket whose range contains
// position pos of the domain [0, n). pos must be in [0, n) and n must
// be positive. O(len(buckets)) to lay out the boundaries plus a binary
// search — independent of n, which is what keeps /v1/assign point
// lookups O(1) in the domain size.
func (s *Spec) Find(n, pos int64) (int, string) {
	if pos < 0 || pos >= n {
		panic(fmt.Sprintf("workload: Find position %d outside [0, %d)", pos, n))
	}
	ranges := s.Ranges(n)
	i := sort.Search(len(ranges), func(i int) bool { return ranges[i].End > pos })
	return i, s.buckets[i].Name
}

// Assign maps user id to its bucket under experiment seed: the id's
// image under the keyed bijection on [0, n), located in the spec's
// exact ranges. It is the oracle form used by permcli and the test
// suites; the service reaches the same bijection through its handle
// cache instead. id must be in [0, n). The assignment is a pure
// function of (seed, spec, id, n): independent of process, worker
// count, and call order.
func Assign(spec *Spec, seed uint64, n, id int64) (int, string) {
	if id < 0 || id >= n {
		panic(fmt.Sprintf("workload: Assign id %d outside [0, %d)", id, n))
	}
	return spec.Find(n, engine.NewBijection(n, seed).Index(id))
}
