package workload

import (
	"fmt"
	"strings"
	"sync"

	"randperm/internal/xrand"
)

// Epoch shuffling: epoch e of dataset (seed, n) is the bijective
// permutation of [0, n) under a per-epoch key derived here. Two
// derivations are offered, selected by EpochMode:
//
//   - EpochFresh draws epoch e's key from the e-th LongJump-separated
//     stream of the dataset seed (the xrand.NewLongStreams family):
//     consecutive epochs sit 2^192 draws apart in the xoshiro sequence,
//     the same machinery that separates per-worker scratch streams from
//     per-block algorithm streams, so epochs are as stream-independent
//     as the engine's own parallel phases.
//
//   - EpochRecycled derives epoch e+1's key from epoch e's stream
//     state: one xoshiro stream seeded by the dataset seed is drawn
//     sequentially, one key per epoch. This is the recycled-sequence
//     idea of Ito & Kikuchi (hep-lat/9302002): instead of paying a
//     fresh stream separation per epoch, the randomness of one stream
//     is amortized across the whole epoch schedule — epoch e is
//     reachable only through the states of epochs 0..e-1.
//
// Either way the key for (seed, e, mode) is a pure function of those
// three values — independent of derivation order, process and worker
// count — so epoch bytes are replayable forever from the dataset seed.

// EpochMode selects how per-epoch keys are derived from a dataset seed.
type EpochMode int

const (
	// EpochFresh separates epochs by 2^192-step LongJumps (default).
	EpochFresh EpochMode = iota
	// EpochRecycled evolves one stream sequentially, deriving each
	// epoch's key from the previous epoch's stream state.
	EpochRecycled
)

// ParseEpochMode parses the wire/flag spelling: "" and "fresh" mean
// EpochFresh, "recycled" means EpochRecycled.
func ParseEpochMode(s string) (EpochMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "fresh":
		return EpochFresh, nil
	case "recycled":
		return EpochRecycled, nil
	}
	return 0, fmt.Errorf("workload: unknown epoch mode %q (want fresh or recycled)", s)
}

// String renders the mode in the spelling ParseEpochMode accepts.
func (m EpochMode) String() string {
	if m == EpochRecycled {
		return "recycled"
	}
	return "fresh"
}

// An Epocher derives the per-epoch keys of one (seed, mode) pair,
// memoizing progressively: both modes advance one generator state
// epoch by epoch, so random access to epoch e costs the derivation of
// every epoch up to e once, and O(1) after. Safe for concurrent use.
type Epocher struct {
	seed uint64
	mode EpochMode

	mu     sync.Mutex
	stream *xrand.Xoshiro256 // positioned to derive epoch len(keys)
	keys   []uint64
}

// NewEpocher returns the key deriver for dataset seed under mode.
func NewEpocher(seed uint64, mode EpochMode) *Epocher {
	return &Epocher{seed: seed, mode: mode, stream: xrand.NewXoshiro256(seed)}
}

// Seed returns the dataset seed the epocher derives from.
func (e *Epocher) Seed() uint64 { return e.seed }

// Mode returns the derivation mode.
func (e *Epocher) Mode() EpochMode { return e.mode }

// Key returns the bijection key of epoch (>= 0). Fresh mode matches
// xrand.NewLongStreams(seed, epoch+1)[epoch].Uint64() exactly (pinned
// by TestEpochFreshMatchesLongStreams); recycled mode is the epoch-th
// sequential draw of the seed's stream.
func (e *Epocher) Key(epoch int64) uint64 {
	if epoch < 0 {
		panic(fmt.Sprintf("workload: Key of negative epoch %d", epoch))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for int64(len(e.keys)) <= epoch {
		var k uint64
		if e.mode == EpochRecycled {
			// The draw itself advances the stream: epoch e+1's key is
			// derived from the state epoch e left behind.
			k = e.stream.Uint64()
		} else {
			// LongJump first, then read the stream's first draw without
			// consuming it — exactly the NewLongStreams layout, where
			// stream i is the base long-jumped i+1 times.
			e.stream.LongJump()
			k = e.stream.Clone().Uint64()
		}
		e.keys = append(e.keys, k)
	}
	return e.keys[epoch]
}
