package extmem

import (
	"fmt"

	"randperm/internal/commat"
	"randperm/internal/xrand"
)

// ShuffleOptions configures the external distribution shuffle.
type ShuffleOptions struct {
	// Memory is the internal memory capacity M in items. The shuffle
	// never holds more than M items of payload in memory at once
	// (chunk buffer plus one write buffer per bucket). It must be at
	// least 4 blocks.
	Memory int64
}

// Shuffle permutes the disk vector uniformly at random using the paper's
// matrix decomposition, with all disk traffic in sequential streams:
//
//  1. the vector is viewed as C memory-sized chunks (source blocks) and
//     K buckets (target blocks) where K is chosen so that one write
//     buffer per bucket plus one chunk fit in memory;
//  2. a C x K communication matrix is sampled exactly (Algorithm 3);
//  3. each chunk is loaded, shuffled in memory, and appended to the K
//     bucket streams according to its matrix row;
//  4. buckets small enough for memory are shuffled in place; larger
//     buckets recurse.
//
// The I/O cost is Theta((n/B)(1 + log_K(n/M))) block transfers versus
// Theta(n) for external Fisher-Yates; both are measured by the vector's
// counters (experiment E9).
func Shuffle(src xrand.Source, v *Vector, opt ShuffleOptions) error {
	m := opt.Memory
	if m <= 0 {
		m = 1 << 20
	}
	b := int64(v.BlockSize())
	if m < 4*b {
		return fmt.Errorf("extmem: memory %d must be at least 4 blocks (%d items)", m, 4*b)
	}
	scratch := NewVector(v.Len(), v.BlockSize())
	shuffleRange(src, v, scratch, 0, v.Len(), m)
	// The counters on scratch are part of the algorithm's cost.
	v.reads += scratch.reads
	v.writes += scratch.writes
	return nil
}

// shuffleRange shuffles items [lo, hi) of v, using the same range of
// scratch as bucket storage. Ranges are always block-aligned at lo
// because bucket boundaries are chosen block-aligned.
func shuffleRange(src xrand.Source, v, scratch *Vector, lo, hi, mem int64) {
	n := hi - lo
	if n <= 1 {
		return
	}
	b := int64(v.BlockSize())
	if n <= mem {
		// Base case: load, shuffle in memory, write back.
		buf := make([]int64, n)
		readRange(v, lo, hi, buf)
		xrand.Shuffle(src, buf)
		writeRange(v, lo, hi, buf)
		return
	}

	// Fanout: reserve half of memory for the chunk, half for the K
	// bucket write buffers of one block each.
	k := mem / (2 * b)
	if k < 2 {
		k = 2
	}
	chunkCap := mem / 2
	if chunkCap < b {
		chunkCap = b
	}

	// Block-aligned bucket layout over [lo, hi).
	nBlocks := (n + b - 1) / b
	bucketSizes := make([]int64, k)
	{
		base := nBlocks / k
		rem := nBlocks % k
		for i := range bucketSizes {
			blocks := base
			if int64(i) < rem {
				blocks++
			}
			bucketSizes[i] = blocks * b
		}
		// The final bucket absorbs the partial last block.
		var acc int64
		for i := range bucketSizes {
			if acc+bucketSizes[i] > n {
				bucketSizes[i] = n - acc
			}
			acc += bucketSizes[i]
		}
	}

	// Chunk layout (block-aligned, sizes <= chunkCap).
	var chunkSizes []int64
	for rem := n; rem > 0; {
		c := chunkCap
		if c > rem {
			c = rem
		}
		chunkSizes = append(chunkSizes, c)
		rem -= c
	}

	// Exact communication matrix, streamed row by row: the row for a
	// chunk is only needed while that chunk is resident, so O(K) state
	// suffices even when there are many chunks.
	rows := commat.NewRowSampler(src, chunkSizes, bucketSizes)
	row := make([]int64, k)

	// Distribution pass: stream chunks in, scatter to bucket streams.
	bucketStart := make([]int64, k+1)
	for i := int64(0); i < k; i++ {
		bucketStart[i+1] = bucketStart[i] + bucketSizes[i]
	}
	cursor := make([]int64, k)
	copy(cursor, bucketStart[:k])

	chunkBuf := make([]int64, chunkCap)
	pos := int64(0)
	for _, cs := range chunkSizes {
		buf := chunkBuf[:cs]
		readRange(v, lo+pos, lo+pos+cs, buf)
		xrand.Shuffle(src, buf)
		if !rows.Next(row) {
			panic("extmem: matrix rows exhausted early")
		}
		var off int64
		for j := int64(0); j < k; j++ {
			cnt := row[j]
			if cnt > 0 {
				writeRange(scratch, lo+cursor[j], lo+cursor[j]+cnt, buf[off:off+cnt])
				cursor[j] += cnt
				off += cnt
			}
		}
		pos += cs
	}

	// Recurse on buckets (data now lives in scratch; roles swap).
	for j := int64(0); j < k; j++ {
		shuffleRange(src, scratch, v, lo+bucketStart[j], lo+bucketStart[j+1], mem)
	}
	// Copy the shuffled buckets back into v (streaming pass).
	copyRange(scratch, v, lo, hi)
}

// readRange reads items [lo, hi) into buf via block I/Os.
func readRange(v *Vector, lo, hi int64, buf []int64) {
	b := int64(v.BlockSize())
	tmp := make([]int64, b)
	for pos := lo; pos < hi; {
		blk := pos / b
		got := v.ReadBlock(blk, tmp)
		start := pos - blk*b
		end := int64(got)
		if blk*b+end > hi {
			end = hi - blk*b
		}
		copy(buf[pos-lo:], tmp[start:end])
		pos = blk*b + end
	}
}

// writeRange writes buf to items [lo, hi) via block I/Os, using
// read-modify-write only at the unaligned edges.
func writeRange(v *Vector, lo, hi int64, buf []int64) {
	b := int64(v.BlockSize())
	tmp := make([]int64, b)
	for pos := lo; pos < hi; {
		blk := pos / b
		blkLo, blkHi := blk*b, blk*b+b
		if blkHi > v.Len() {
			blkHi = v.Len()
		}
		if pos == blkLo && hi >= blkHi {
			// Full block overwrite.
			v.WriteBlock(blk, buf[pos-lo:pos-lo+(blkHi-blkLo)])
			pos = blkHi
			continue
		}
		// Partial: read-modify-write.
		got := v.ReadBlock(blk, tmp)
		end := blkLo + int64(got)
		if end > hi {
			end = hi
		}
		copy(tmp[pos-blkLo:end-blkLo], buf[pos-lo:end-lo])
		v.WriteBlock(blk, tmp[:got])
		pos = end
	}
}

// copyRange streams items [lo, hi) from src to dst.
func copyRange(from, to *Vector, lo, hi int64) {
	b := int64(from.BlockSize())
	tmp := make([]int64, b)
	for pos := lo; pos < hi; {
		blk := pos / b
		got := from.ReadBlock(blk, tmp)
		start := pos - blk*b
		end := int64(got)
		if blk*b+end > hi {
			end = hi - blk*b
		}
		writeRange(to, pos, blk*b+end, tmp[start:end])
		pos = blk*b + end
	}
}

// NaiveShuffle runs Fisher-Yates directly against the disk vector: every
// swap reads and writes the two blocks holding the endpoints (a tiny
// one-block cache exploits the sequential left index). This is the
// Theta(n) random-I/O baseline the matrix shuffle is measured against.
func NaiveShuffle(src xrand.Source, v *Vector) {
	n := v.Len()
	b := int64(v.BlockSize())
	iBuf := make([]int64, b)
	jBuf := make([]int64, b)
	iBlk := int64(-1)
	for i := n - 1; i > 0; i-- {
		j := xrand.Int64n(src, i+1)
		bi, bj := i/b, j/b
		if bi != iBlk {
			if iBlk >= 0 {
				v.WriteBlock(iBlk, iBuf[:blockLen(v, iBlk)])
			}
			v.ReadBlock(bi, iBuf)
			iBlk = bi
		}
		if bj == bi {
			iBuf[i-bi*b], iBuf[j-bi*b] = iBuf[j-bi*b], iBuf[i-bi*b]
			continue
		}
		v.ReadBlock(bj, jBuf)
		iBuf[i-bi*b], jBuf[j-bj*b] = jBuf[j-bj*b], iBuf[i-bi*b]
		v.WriteBlock(bj, jBuf[:blockLen(v, bj)])
	}
	if iBlk >= 0 {
		v.WriteBlock(iBlk, iBuf[:blockLen(v, iBlk)])
	}
}

func blockLen(v *Vector, blk int64) int64 {
	lo, hi := v.blockRange(blk)
	return hi - lo
}
