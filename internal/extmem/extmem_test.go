package extmem

import (
	"testing"
	"testing/quick"

	"randperm/internal/stats"
	"randperm/internal/xrand"
)

func iotaVec(n int64, b int) *Vector {
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}
	return FromSlice(data, b)
}

func isPerm(data []int64) bool {
	seen := make([]bool, len(data))
	for _, v := range data {
		if v < 0 || v >= int64(len(data)) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

func TestVectorBasics(t *testing.T) {
	v := NewVector(10, 4)
	if v.Len() != 10 || v.BlockSize() != 4 || v.Blocks() != 3 {
		t.Fatalf("geometry wrong: %d %d %d", v.Len(), v.BlockSize(), v.Blocks())
	}
	buf := []int64{1, 2, 3, 4}
	v.WriteBlock(0, buf)
	got := make([]int64, 4)
	if n := v.ReadBlock(0, got); n != 4 || got[2] != 3 {
		t.Fatalf("roundtrip failed: n=%d got=%v", n, got)
	}
	// Final partial block has extent 2.
	if n := v.ReadBlock(2, got); n != 2 {
		t.Fatalf("partial block read %d items", n)
	}
	if v.Reads() != 2 || v.Writes() != 1 || v.IOs() != 3 {
		t.Fatalf("counters: %d reads %d writes", v.Reads(), v.Writes())
	}
	v.ResetCounters()
	if v.IOs() != 0 {
		t.Fatal("reset failed")
	}
}

func TestVectorPanics(t *testing.T) {
	v := NewVector(10, 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range block accepted")
			}
		}()
		v.ReadBlock(3, make([]int64, 4))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("oversized write accepted")
			}
		}()
		v.WriteBlock(2, []int64{1, 2, 3}) // extent 2
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("bad geometry accepted")
			}
		}()
		NewVector(-1, 4)
	}()
}

func TestReadWriteRangeUnaligned(t *testing.T) {
	v := iotaVec(100, 8)
	buf := make([]int64, 17)
	readRange(v, 13, 30, buf)
	for i := range buf {
		if buf[i] != int64(13+i) {
			t.Fatalf("readRange wrong at %d: %d", i, buf[i])
		}
	}
	for i := range buf {
		buf[i] = -buf[i]
	}
	writeRange(v, 13, 30, buf)
	snap := v.Snapshot()
	for i := int64(0); i < 100; i++ {
		want := i
		if i >= 13 && i < 30 {
			want = -i
		}
		if snap[i] != want {
			t.Fatalf("writeRange corrupted position %d: %d", i, snap[i])
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	src := xrand.NewXoshiro256(1)
	cases := []struct {
		n   int64
		b   int
		mem int64
	}{
		{100, 8, 32},      // forces recursion
		{1000, 16, 64},    // deep recursion
		{1000, 16, 2000},  // single in-memory pass
		{4096, 32, 256},   // two levels
		{777, 10, 40},     // nothing aligns
		{65536, 64, 4096}, // larger
	}
	for _, c := range cases {
		v := iotaVec(c.n, c.b)
		if err := Shuffle(src, v, ShuffleOptions{Memory: c.mem}); err != nil {
			t.Fatalf("n=%d b=%d mem=%d: %v", c.n, c.b, c.mem, err)
		}
		if !isPerm(v.Snapshot()) {
			t.Fatalf("n=%d b=%d mem=%d: not a permutation", c.n, c.b, c.mem)
		}
	}
}

func TestShuffleProperty(t *testing.T) {
	src := xrand.NewXoshiro256(2)
	f := func(n16 uint16, b8, m8 uint8) bool {
		n := int64(n16%4000) + 1
		b := int(b8%32) + 1
		mem := int64(4*b) + int64(m8)*int64(b)
		v := iotaVec(n, b)
		if err := Shuffle(src, v, ShuffleOptions{Memory: mem}); err != nil {
			return false
		}
		return isPerm(v.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleRejectsTinyMemory(t *testing.T) {
	v := iotaVec(100, 8)
	if err := Shuffle(xrand.NewXoshiro256(3), v, ShuffleOptions{Memory: 16}); err == nil {
		t.Fatal("memory below 4 blocks accepted")
	}
}

func TestNaiveShuffleIsPermutation(t *testing.T) {
	src := xrand.NewXoshiro256(4)
	for _, n := range []int64{1, 2, 100, 1000} {
		v := iotaVec(n, 8)
		NaiveShuffle(src, v)
		if !isPerm(v.Snapshot()) {
			t.Fatalf("n=%d: not a permutation", n)
		}
	}
}

func TestShuffleIOComplexity(t *testing.T) {
	// The distribution shuffle must cost O((n/B) log_K(n/M)) I/Os; the
	// naive shuffle Theta(n). Compare both against n/B.
	src := xrand.NewXoshiro256(5)
	const n = 1 << 16
	const b = 64
	const mem = 1 << 12
	v := iotaVec(n, b)
	if err := Shuffle(src, v, ShuffleOptions{Memory: mem}); err != nil {
		t.Fatal(err)
	}
	blocks := int64(n / b)
	// Passes: log_K(n/mem) with K = mem/2B = 32 -> 1 level of
	// recursion; allow a generous constant (distribute + recurse +
	// copy back, unaligned edges).
	if v.IOs() > 20*blocks {
		t.Fatalf("distribution shuffle used %d I/Os for %d blocks", v.IOs(), blocks)
	}

	vn := iotaVec(n, b)
	NaiveShuffle(src, vn)
	if vn.IOs() < 10*blocks {
		t.Fatalf("naive shuffle used only %d I/Os; expected Theta(n)=%d scale", vn.IOs(), n)
	}
	if vn.IOs() < 4*v.IOs() {
		t.Fatalf("naive (%d I/Os) should far exceed distribution (%d I/Os)", vn.IOs(), v.IOs())
	}
}

func TestShuffleUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	// Exact uniformity with forced recursion: n=5, B=1, M=4 blocks.
	src := xrand.NewXoshiro256(6)
	const n = 5
	const trials = 60000
	counts := make([]int64, stats.Factorial(n))
	for tr := 0; tr < trials; tr++ {
		v := iotaVec(n, 1)
		if err := Shuffle(src, v, ShuffleOptions{Memory: 4}); err != nil {
			t.Fatal(err)
		}
		counts[stats.RankPermInt64(v.Snapshot())]++
	}
	res, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.0005) {
		t.Errorf("external shuffle non-uniform: %s", res)
	}
}

func TestNaiveShuffleUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	src := xrand.NewXoshiro256(7)
	const n = 5
	const trials = 60000
	counts := make([]int64, stats.Factorial(n))
	for tr := 0; tr < trials; tr++ {
		v := iotaVec(n, 2)
		NaiveShuffle(src, v)
		counts[stats.RankPermInt64(v.Snapshot())]++
	}
	res, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.0005) {
		t.Errorf("naive external shuffle non-uniform: %s", res)
	}
}

func BenchmarkExternalShuffle(b *testing.B) {
	src := xrand.NewXoshiro256(1)
	const n = 1 << 20
	v := iotaVec(n, 512)
	b.SetBytes(8 * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Shuffle(src, v, ShuffleOptions{Memory: 1 << 15}); err != nil {
			b.Fatal(err)
		}
	}
}
