// errors_test.go covers the model's failure and boundary paths: the
// simulated disk has no OS to fail underneath it, so its error surface
// is geometry — short (partial) blocks at the vector's ragged end,
// writes past a block's extent, memory bounds, and degenerate domains.
// These are the paths a refactor of the I/O layer breaks first, and
// the ones the original suite leaned on least.
package extmem

import (
	"testing"

	"randperm/internal/xrand"
)

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

// TestShortReadPaths: every range helper must handle a partial final
// block — the external-memory analog of a short read — without
// touching bytes past the vector's end.
func TestShortReadPaths(t *testing.T) {
	// 10 items, block size 4: block 2 has extent 2 (the short block).
	v := iotaVec(10, 4)

	// readRange ending inside the short block.
	buf := make([]int64, 9)
	readRange(v, 1, 10, buf)
	for i := range buf {
		if buf[i] != int64(1+i) {
			t.Fatalf("readRange across short block wrong at %d: %d", i, buf[i])
		}
	}

	// writeRange covering the short block entirely (full-overwrite path
	// with a clipped extent) and partially (read-modify-write path).
	writeRange(v, 8, 10, []int64{-8, -9})
	snap := v.Snapshot()
	if snap[8] != -8 || snap[9] != -9 || snap[7] != 7 {
		t.Fatalf("short-block overwrite wrong: %v", snap[6:])
	}
	writeRange(v, 9, 10, []int64{-99})
	if snap = v.Snapshot(); snap[9] != -99 || snap[8] != -8 {
		t.Fatalf("short-block RMW wrong: %v", snap[8:])
	}

	// copyRange into and out of the short block.
	dst := NewVector(10, 4)
	copyRange(v, dst, 5, 10)
	snap = dst.Snapshot()
	for i := int64(0); i < 5; i++ {
		if snap[i] != 0 {
			t.Fatalf("copyRange touched [0,5): %v", snap)
		}
	}
	if snap[8] != -8 || snap[9] != -99 || snap[5] != 5 {
		t.Fatalf("copyRange tail wrong: %v", snap[5:])
	}
}

// TestWriteBlockExtentErrors: the write-past-extent and out-of-range
// panics, including the short final block where the extent is smaller
// than B.
func TestWriteBlockExtentErrors(t *testing.T) {
	v := NewVector(10, 4)
	mustPanic(t, "write past short-block extent", func() {
		v.WriteBlock(2, []int64{1, 2, 3}) // block 2 has extent 2
	})
	mustPanic(t, "negative block read", func() {
		v.ReadBlock(-1, make([]int64, 4))
	})
	mustPanic(t, "negative block write", func() {
		v.WriteBlock(-1, []int64{1})
	})
	mustPanic(t, "zero block size", func() { NewVector(10, 0) })
}

// TestShuffleDegenerate: empty and single-item vectors are no-ops for
// both shufflers, with no I/O model panic.
func TestShuffleDegenerate(t *testing.T) {
	for _, n := range []int64{0, 1} {
		v := iotaVec(n, 4)
		if err := Shuffle(xrand.NewXoshiro256(5), v, ShuffleOptions{Memory: 64}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !isPerm(v.Snapshot()) {
			t.Fatalf("n=%d: corrupted", n)
		}
		NaiveShuffle(xrand.NewXoshiro256(5), v)
		if !isPerm(v.Snapshot()) {
			t.Fatalf("n=%d: naive corrupted", n)
		}
	}
}

// TestShuffleDefaultMemory: Memory <= 0 falls back to the documented
// default instead of failing.
func TestShuffleDefaultMemory(t *testing.T) {
	v := iotaVec(500, 8)
	if err := Shuffle(xrand.NewXoshiro256(6), v, ShuffleOptions{}); err != nil {
		t.Fatal(err)
	}
	if !isPerm(v.Snapshot()) {
		t.Fatal("default-memory shuffle not a permutation")
	}
}

// TestShuffleMemoryExactlyFourBlocks: the documented lower bound is
// inclusive — exactly 4B must work, 4B-1 must not.
func TestShuffleMemoryExactlyFourBlocks(t *testing.T) {
	v := iotaVec(300, 8)
	if err := Shuffle(xrand.NewXoshiro256(7), v, ShuffleOptions{Memory: 32}); err != nil {
		t.Fatalf("memory == 4 blocks refused: %v", err)
	}
	if !isPerm(v.Snapshot()) {
		t.Fatal("minimum-memory shuffle not a permutation")
	}
	if err := Shuffle(xrand.NewXoshiro256(7), v, ShuffleOptions{Memory: 31}); err == nil {
		t.Fatal("memory below 4 blocks accepted")
	}
}

// TestSnapshotIsolation: Snapshot and FromSlice are copies, not views —
// mutating either side must not leak through, and Snapshot charges no
// I/Os (it is a test instrument, not a disk operation).
func TestSnapshotIsolation(t *testing.T) {
	data := []int64{1, 2, 3, 4, 5}
	v := FromSlice(data, 2)
	data[0] = 99
	if v.Snapshot()[0] != 1 {
		t.Error("FromSlice aliased its input")
	}
	snap := v.Snapshot()
	snap[1] = -1
	if v.Snapshot()[1] != 2 {
		t.Error("Snapshot aliased the vector")
	}
	if v.IOs() != 0 {
		t.Errorf("Snapshot charged %d I/Os", v.IOs())
	}
}

// TestNaiveShuffleFlushesEdges: the one-block write cache of the naive
// shuffler must flush its held block both mid-run (when the left index
// crosses a block boundary) and at exit, including on a vector that is
// a single partial block.
func TestNaiveShuffleFlushesEdges(t *testing.T) {
	for _, tc := range []struct {
		n int64
		b int
	}{
		{3, 8},  // one partial block
		{9, 4},  // partial tail block
		{16, 4}, // aligned
	} {
		v := iotaVec(tc.n, tc.b)
		NaiveShuffle(xrand.NewXoshiro256(8), v)
		if !isPerm(v.Snapshot()) {
			t.Errorf("n=%d b=%d: not a permutation after naive shuffle", tc.n, tc.b)
		}
		if v.Writes() == 0 {
			t.Errorf("n=%d b=%d: cache never flushed", tc.n, tc.b)
		}
	}
}
