// Package extmem simulates the external-memory (I/O) model and
// implements the paper's outlook (Section 6): using the coarse grained
// matrix decomposition to shuffle data sets that do not fit in internal
// memory, in the spirit of simulating coarse grained algorithms for
// external memory (Cormen and Goodrich 1996; Dehne, Dittrich and
// Hutchinson 1997).
//
// The model is Aggarwal-Vitter's: a disk transfers blocks of B items, the
// internal memory holds M items, and the cost of an algorithm is the
// number of block transfers (I/Os). Vector is a disk-resident vector that
// only permits block-granular access and counts every transfer, so tests
// and benchmarks can compare:
//
//   - Shuffle (this package): the matrix-based distribution shuffle,
//     Theta((n/B) log_{M/B}(n/M) + n/B) I/Os, all of them sequential
//     streams, and
//   - NaiveShuffle: external Fisher-Yates, which issues Theta(n) random
//     block I/Os (every swap touches a random block).
//
// The distribution shuffle is exactly the paper's Algorithm 1 run
// sequentially with "virtual processors": chunks of the input play the
// source blocks, buckets on disk play the target blocks, and the
// communication matrix is sampled exactly (Algorithm 3), so uniformity is
// inherited - and chi-square tested like every other shuffler in this
// repository.
package extmem

import "fmt"

// Vector is a simulated disk-resident vector of int64 with block-granular
// access and I/O accounting.
type Vector struct {
	b      int
	data   []int64
	reads  int64
	writes int64
}

// NewVector creates a zeroed disk vector of n items with block size b.
func NewVector(n int64, b int) *Vector {
	if n < 0 || b <= 0 {
		panic("extmem: need n >= 0 and block size > 0")
	}
	return &Vector{b: b, data: make([]int64, n)}
}

// FromSlice creates a disk vector holding a copy of data.
func FromSlice(data []int64, b int) *Vector {
	v := NewVector(int64(len(data)), b)
	copy(v.data, data)
	return v
}

// Len returns the number of items.
func (v *Vector) Len() int64 { return int64(len(v.data)) }

// BlockSize returns B, the items per transfer.
func (v *Vector) BlockSize() int { return v.b }

// Blocks returns the number of blocks, ceil(n/B).
func (v *Vector) Blocks() int64 {
	return (v.Len() + int64(v.b) - 1) / int64(v.b)
}

// Reads returns the number of block reads so far.
func (v *Vector) Reads() int64 { return v.reads }

// Writes returns the number of block writes so far.
func (v *Vector) Writes() int64 { return v.writes }

// IOs returns reads + writes.
func (v *Vector) IOs() int64 { return v.reads + v.writes }

// ResetCounters zeroes the I/O counters.
func (v *Vector) ResetCounters() { v.reads, v.writes = 0, 0 }

// blockRange returns the [lo, hi) item range of block i.
func (v *Vector) blockRange(i int64) (int64, int64) {
	if i < 0 || i >= v.Blocks() {
		panic(fmt.Sprintf("extmem: block %d out of range (have %d)", i, v.Blocks()))
	}
	lo := i * int64(v.b)
	hi := lo + int64(v.b)
	if hi > v.Len() {
		hi = v.Len()
	}
	return lo, hi
}

// ReadBlock copies block i into buf and returns the number of items. buf
// must have capacity >= BlockSize. One I/O is charged.
func (v *Vector) ReadBlock(i int64, buf []int64) int {
	lo, hi := v.blockRange(i)
	v.reads++
	return copy(buf[:hi-lo], v.data[lo:hi])
}

// WriteBlock overwrites block i (or its prefix) with buf. One I/O is
// charged. len(buf) must not exceed the block's extent.
func (v *Vector) WriteBlock(i int64, buf []int64) {
	lo, hi := v.blockRange(i)
	if int64(len(buf)) > hi-lo {
		panic("extmem: write exceeds block extent")
	}
	v.writes++
	copy(v.data[lo:lo+int64(len(buf))], buf)
}

// Snapshot returns a copy of the full contents WITHOUT charging I/Os;
// it exists for verification in tests, not for algorithms.
func (v *Vector) Snapshot() []int64 {
	return append([]int64(nil), v.data...)
}
