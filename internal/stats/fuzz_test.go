package stats

import "testing"

// FuzzRankUnrankPerm checks the permutation ranking bijection on
// arbitrary ranks.
func FuzzRankUnrankPerm(f *testing.F) {
	f.Add(int64(0), 4)
	f.Add(int64(719), 6)
	f.Add(int64(1), 1)
	f.Fuzz(func(t *testing.T, rank int64, n int) {
		if n < 1 || n > 9 {
			return
		}
		nf := Factorial(n)
		if rank < 0 {
			rank = -rank
		}
		rank %= nf
		perm := UnrankPerm(rank, n)
		if got := RankPerm(perm); got != rank {
			t.Fatalf("rank(unrank(%d, %d)) = %d", rank, n, got)
		}
	})
}

// FuzzRankUnrankComb checks the combination ranking bijection.
func FuzzRankUnrankComb(f *testing.F) {
	f.Add(int64(0), 5, 2)
	f.Add(int64(55), 8, 3)
	f.Fuzz(func(t *testing.T, rank int64, n, k int) {
		if n < 0 || n > 30 || k < 0 || k > n {
			return
		}
		total := Binomial(n, k)
		if total == 0 {
			return
		}
		if rank < 0 {
			rank = -rank
		}
		rank %= total
		comb := UnrankComb(rank, n, k)
		if got := RankComb(comb, n); got != rank {
			t.Fatalf("rank(unrank(%d, %d, %d)) = %d", rank, n, k, got)
		}
	})
}
