// Package stats provides the statistical machinery behind the uniformity
// experiments: Pearson chi-square goodness-of-fit testing with exact
// p-values, permutation ranking (Lehmer codes) so that whole permutations
// can be used as chi-square cells, and small-sample summaries.
package stats

import (
	"fmt"

	"randperm/internal/numeric"
)

// GOFResult is the outcome of a goodness-of-fit test.
type GOFResult struct {
	Stat  float64 // Pearson X^2 statistic
	DF    int     // degrees of freedom
	P     float64 // upper-tail p-value
	Total int64   // number of observations
}

// Reject reports whether the test rejects the null hypothesis at
// significance level alpha.
func (r GOFResult) Reject(alpha float64) bool { return r.P < alpha }

// String renders the result for experiment tables.
func (r GOFResult) String() string {
	return fmt.Sprintf("X2=%.2f df=%d p=%.4f", r.Stat, r.DF, r.P)
}

// ChiSquare tests observed counts against expected cell probabilities.
// probs must sum to ~1 and have the same length as obs; cells with zero
// probability must have zero observations (otherwise the statistic is
// infinite and the null is rejected outright with P=0).
func ChiSquare(obs []int64, probs []float64) (GOFResult, error) {
	if len(obs) != len(probs) {
		return GOFResult{}, fmt.Errorf("stats: %d observed cells, %d probabilities", len(obs), len(probs))
	}
	if len(obs) < 2 {
		return GOFResult{}, fmt.Errorf("stats: need at least 2 cells, got %d", len(obs))
	}
	var total int64
	var psum float64
	for i, o := range obs {
		if o < 0 {
			return GOFResult{}, fmt.Errorf("stats: negative count in cell %d", i)
		}
		if probs[i] < 0 {
			return GOFResult{}, fmt.Errorf("stats: negative probability in cell %d", i)
		}
		total += o
		psum += probs[i]
	}
	if total == 0 {
		return GOFResult{}, fmt.Errorf("stats: no observations")
	}
	if psum < 0.999999 || psum > 1.000001 {
		return GOFResult{}, fmt.Errorf("stats: probabilities sum to %g, want 1", psum)
	}
	stat := 0.0
	df := len(obs) - 1
	for i, o := range obs {
		exp := probs[i] * float64(total)
		if exp == 0 {
			if o != 0 {
				return GOFResult{Stat: float64(o), DF: df, P: 0, Total: total}, nil
			}
			df-- // impossible cell carries no information
			continue
		}
		d := float64(o) - exp
		stat += d * d / exp
	}
	if df < 1 {
		df = 1
	}
	return GOFResult{
		Stat:  stat,
		DF:    df,
		P:     numeric.ChiSquareSF(stat, float64(df)),
		Total: total,
	}, nil
}

// ChiSquareUniform tests observed counts against the uniform law over the
// cells.
func ChiSquareUniform(obs []int64) (GOFResult, error) {
	probs := make([]float64, len(obs))
	for i := range probs {
		probs[i] = 1 / float64(len(obs))
	}
	return ChiSquare(obs, probs)
}

// TotalVariation returns the total variation distance between the
// empirical distribution of obs and the law probs: half the L1 distance,
// in [0, 1].
func TotalVariation(obs []int64, probs []float64) float64 {
	var total int64
	for _, o := range obs {
		total += o
	}
	if total == 0 {
		return 0
	}
	d := 0.0
	for i, o := range obs {
		f := float64(o) / float64(total)
		diff := f - probs[i]
		if diff < 0 {
			diff = -diff
		}
		d += diff
	}
	return d / 2
}
