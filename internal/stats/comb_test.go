package stats

import (
	"testing"
	"testing/quick"
)

func TestBinomialKnown(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10},
		{10, 3, 120}, {52, 5, 2598960}, {62, 31, 465428353255261088},
		{5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Fatalf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialPascal(t *testing.T) {
	f := func(n8, k8 uint8) bool {
		n := int(n8%40) + 2
		k := int(k8) % n
		return Binomial(n, k) == Binomial(n-1, k)+Binomial(n-1, k-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRankUnrankCombRoundtrip(t *testing.T) {
	for _, c := range []struct{ n, k int }{{5, 2}, {8, 3}, {10, 5}, {6, 6}, {7, 1}} {
		total := Binomial(c.n, c.k)
		seen := make(map[int64]bool)
		for r := int64(0); r < total; r++ {
			comb := UnrankComb(r, c.n, c.k)
			if len(comb) != c.k {
				t.Fatalf("UnrankComb(%d,%d,%d) has length %d", r, c.n, c.k, len(comb))
			}
			got := RankComb(comb, c.n)
			if got != r {
				t.Fatalf("n=%d k=%d: rank(unrank(%d)) = %d", c.n, c.k, r, got)
			}
			if seen[got] {
				t.Fatalf("duplicate rank %d", got)
			}
			seen[got] = true
		}
	}
}

func TestRankCombRejectsGarbage(t *testing.T) {
	for _, bad := range [][]int{{1, 1}, {2, 1}, {0, 9}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("RankComb(%v) did not panic", bad)
				}
			}()
			RankComb(bad, 5)
		}()
	}
}

func TestRankCombInt64SortsInput(t *testing.T) {
	a := RankCombInt64([]int64{4, 0, 2}, 6)
	b := RankCombInt64([]int64{0, 2, 4}, 6)
	if a != b {
		t.Fatalf("unsorted input ranked differently: %d vs %d", a, b)
	}
}

func TestRankCombEmptySet(t *testing.T) {
	if RankComb(nil, 5) != 0 {
		t.Fatal("empty combination should rank 0")
	}
	if got := UnrankComb(0, 5, 0); len(got) != 0 {
		t.Fatal("unrank of the empty combination")
	}
}
