package stats

import "math"

// Summary holds basic descriptive statistics of a float64 sample.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// Summarize computes a Summary; the zero Summary is returned for empty
// input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// MeanInt64 returns the mean of an int64 sample (0 for empty input).
func MeanInt64(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum int64
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// MaxInt64 returns the maximum of an int64 sample (0 for empty input).
func MaxInt64(xs []int64) int64 {
	var m int64
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}
