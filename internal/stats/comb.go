package stats

import "fmt"

// Binomial returns C(n, k) exactly as an int64, panicking on overflow.
// The multiplicative evaluation keeps intermediate values exact because
// the running product after i factors equals C(n, i) * (a factor not yet
// divided out); intermediates are carried in uint64, whose extra bit
// covers every n <= 62 (the largest n with C(n, k) inside int64).
func Binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	var c uint64 = 1
	for i := 0; i < k; i++ {
		// c = c * (n-i) / (i+1); the division is exact because the
		// running value equals C(n, i+1) afterwards.
		num := c * uint64(n-i)
		if num/uint64(n-i) != c {
			panic(fmt.Sprintf("stats: Binomial(%d,%d) overflows", n, k))
		}
		c = num / uint64(i+1)
	}
	if c > uint64(1<<63-1) {
		panic(fmt.Sprintf("stats: Binomial(%d,%d) overflows int64", n, k))
	}
	return int64(c)
}

// RankComb returns the colexicographic rank, in [0, C(n,k)), of a
// k-combination of {0..n-1} given as a strictly increasing slice. It is
// the subset analog of RankPerm: uniformity experiments on random
// sampling use the rank as the chi-square cell index, turning "all
// C(n,k) subsets equally likely" into a uniform law on {0..C(n,k)-1}.
func RankComb(comb []int, n int) int64 {
	var rank int64
	prev := -1
	for i, c := range comb {
		if c <= prev || c >= n {
			panic(fmt.Sprintf("stats: not a sorted combination at position %d", i))
		}
		prev = c
		rank += Binomial(c, i+1)
	}
	return rank
}

// UnrankComb inverts RankComb: it returns the k-combination of {0..n-1}
// with the given colexicographic rank.
func UnrankComb(rank int64, n, k int) []int {
	comb := make([]int, k)
	for i := k; i >= 1; i-- {
		// Largest c with C(c, i) <= rank.
		c := i - 1
		for Binomial(c+1, i) <= rank {
			c++
		}
		comb[i-1] = c
		rank -= Binomial(c, i)
	}
	return comb
}

// RankCombInt64 is RankComb for int64-valued items (the payload type of
// the parallel experiments); the input need not be sorted.
func RankCombInt64(comb []int64, n int) int64 {
	ints := make([]int, len(comb))
	for i, v := range comb {
		ints[i] = int(v)
	}
	// Insertion sort: combinations in tests are tiny.
	for i := 1; i < len(ints); i++ {
		for j := i; j > 0 && ints[j] < ints[j-1]; j-- {
			ints[j], ints[j-1] = ints[j-1], ints[j]
		}
	}
	return RankComb(ints, n)
}
