package stats

// BinCells merges adjacent cells of a discrete distribution until every
// merged cell has expected count >= minExpected under the given total,
// the standard preparation for a calibrated Pearson chi-square test on
// long-tailed supports (hypergeometric tails have many cells with
// near-zero probability which would otherwise distort the statistic's
// degrees of freedom).
//
// It returns the merged observed counts and probabilities. A trailing
// underfull bin is merged into its predecessor.
func BinCells(obs []int64, probs []float64, minExpected float64, total int64) ([]int64, []float64) {
	if len(obs) != len(probs) || len(obs) == 0 {
		return obs, probs
	}
	var mergedObs []int64
	var mergedProbs []float64
	var accObs int64
	var accProb float64
	for i := range obs {
		accObs += obs[i]
		accProb += probs[i]
		if accProb*float64(total) >= minExpected {
			mergedObs = append(mergedObs, accObs)
			mergedProbs = append(mergedProbs, accProb)
			accObs, accProb = 0, 0
		}
	}
	if accProb > 0 || accObs > 0 {
		if len(mergedObs) == 0 {
			return []int64{accObs}, []float64{accProb}
		}
		mergedObs[len(mergedObs)-1] += accObs
		mergedProbs[len(mergedProbs)-1] += accProb
	}
	return mergedObs, mergedProbs
}

// ChiSquareBinned bins cells to at least minExpected expected
// observations and then runs the Pearson test; the convenience wrapper
// used by the distribution-matching experiments.
func ChiSquareBinned(obs []int64, probs []float64, minExpected float64) (GOFResult, error) {
	var total int64
	for _, o := range obs {
		total += o
	}
	bObs, bProbs := BinCells(obs, probs, minExpected, total)
	// Renormalize: the input probabilities may sum to slightly less
	// than 1 when the support was truncated.
	var psum float64
	for _, p := range bProbs {
		psum += p
	}
	if psum > 0 && (psum < 0.999999 || psum > 1.000001) {
		for i := range bProbs {
			bProbs[i] /= psum
		}
	}
	return ChiSquare(bObs, bProbs)
}
