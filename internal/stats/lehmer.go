package stats

import "fmt"

// Factorial returns n! for n <= 20 (the largest factorial fitting int64).
func Factorial(n int) int64 {
	if n < 0 || n > 20 {
		panic(fmt.Sprintf("stats: Factorial(%d) outside int64 range", n))
	}
	f := int64(1)
	for k := 2; k <= n; k++ {
		f *= int64(k)
	}
	return f
}

// RankPerm returns the Lehmer rank of the permutation in [0, n!): the
// position of perm in lexicographic order over all permutations of
// {0..n-1}. Uniformity experiments use the rank as the chi-square cell
// index, turning "all permutations equally likely" into a testable
// uniform law on {0..n!-1}. It panics if perm is not a permutation or
// n > 20.
func RankPerm(perm []int) int64 {
	n := len(perm)
	if n > 20 {
		panic("stats: RankPerm limited to n <= 20")
	}
	seen := make([]bool, n)
	var rank int64
	f := Factorial(n)
	for i, v := range perm {
		if v < 0 || v >= n || seen[v] {
			panic(fmt.Sprintf("stats: not a permutation at position %d", i))
		}
		seen[v] = true
		f /= int64(n - i)
		// Count unused values smaller than v.
		smaller := 0
		for u := 0; u < v; u++ {
			if !seen[u] {
				smaller++
			}
		}
		rank += int64(smaller) * f
	}
	return rank
}

// RankPermInt64 is RankPerm for int64-valued items holding 0..n-1, the
// payload type of the parallel experiments.
func RankPermInt64(perm []int64) int64 {
	p := make([]int, len(perm))
	for i, v := range perm {
		p[i] = int(v)
	}
	return RankPerm(p)
}

// UnrankPerm inverts RankPerm: it returns the permutation of {0..n-1}
// with the given lexicographic rank.
func UnrankPerm(rank int64, n int) []int {
	if n > 20 {
		panic("stats: UnrankPerm limited to n <= 20")
	}
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	perm := make([]int, 0, n)
	f := Factorial(n)
	for i := 0; i < n; i++ {
		f /= int64(n - i)
		idx := rank / f
		rank %= f
		perm = append(perm, avail[idx])
		avail = append(avail[:idx], avail[idx+1:]...)
	}
	return perm
}
