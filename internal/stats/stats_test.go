package stats

import (
	"math"
	"testing"
	"testing/quick"

	"randperm/internal/xrand"
)

func TestChiSquareAcceptsUniform(t *testing.T) {
	src := xrand.NewXoshiro256(1)
	counts := make([]int64, 20)
	for i := 0; i < 40000; i++ {
		counts[xrand.Intn(src, 20)]++
	}
	res, err := ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.001) {
		t.Fatalf("uniform data rejected: %s", res)
	}
	if res.Total != 40000 {
		t.Fatalf("total = %d", res.Total)
	}
}

func TestChiSquareRejectsSkewed(t *testing.T) {
	counts := []int64{900, 100, 100, 100} // heavily skewed vs uniform
	res, err := ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reject(0.001) {
		t.Fatalf("gross skew accepted: %s", res)
	}
}

func TestChiSquareAgainstProbs(t *testing.T) {
	probs := []float64{0.5, 0.3, 0.2}
	counts := []int64{5000, 3000, 2000} // exactly on the model
	res, err := ChiSquare(counts, probs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stat != 0 {
		t.Fatalf("perfect fit has stat %g", res.Stat)
	}
	if res.P < 0.999 {
		t.Fatalf("perfect fit p-value %g", res.P)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, err := ChiSquare([]int64{1}, []float64{1}); err == nil {
		t.Fatal("single cell accepted")
	}
	if _, err := ChiSquare([]int64{1, 2}, []float64{0.5}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := ChiSquare([]int64{-1, 2}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := ChiSquare([]int64{1, 2}, []float64{0.9, 0.9}); err == nil {
		t.Fatal("non-normalized probs accepted")
	}
	if _, err := ChiSquare([]int64{0, 0}, []float64{0.5, 0.5}); err == nil {
		t.Fatal("zero observations accepted")
	}
}

func TestChiSquareImpossibleCell(t *testing.T) {
	// Observations in a zero-probability cell must reject outright.
	res, err := ChiSquare([]int64{10, 10, 5}, []float64{0.5, 0.5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 0 {
		t.Fatalf("impossible cell got p=%g", res.P)
	}
	// Zero observations in a zero-probability cell are fine.
	res, err = ChiSquare([]int64{10, 10, 0}, []float64{0.5, 0.5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.01) {
		t.Fatalf("valid data rejected: %s", res)
	}
	if res.DF != 1 {
		t.Fatalf("df = %d, want 1 (impossible cell dropped)", res.DF)
	}
}

func TestFactorial(t *testing.T) {
	want := map[int]int64{0: 1, 1: 1, 5: 120, 10: 3628800, 20: 2432902008176640000}
	for n, w := range want {
		if got := Factorial(n); got != w {
			t.Fatalf("Factorial(%d) = %d", n, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Factorial(21) did not panic")
		}
	}()
	Factorial(21)
}

func TestRankUnrankRoundtrip(t *testing.T) {
	for n := 1; n <= 7; n++ {
		nf := Factorial(n)
		seen := make(map[int64]bool)
		for r := int64(0); r < nf; r++ {
			perm := UnrankPerm(r, n)
			got := RankPerm(perm)
			if got != r {
				t.Fatalf("n=%d: rank(unrank(%d)) = %d", n, r, got)
			}
			if seen[got] {
				t.Fatalf("n=%d: rank %d duplicated", n, got)
			}
			seen[got] = true
		}
	}
}

func TestRankPermLexOrder(t *testing.T) {
	// Identity has rank 0; the reversal has rank n!-1.
	if RankPerm([]int{0, 1, 2, 3}) != 0 {
		t.Fatal("identity rank wrong")
	}
	if RankPerm([]int{3, 2, 1, 0}) != 23 {
		t.Fatal("reversal rank wrong")
	}
	if RankPerm([]int{0, 1, 3, 2}) != 1 {
		t.Fatal("first transposition rank wrong")
	}
}

func TestRankPermRejectsGarbage(t *testing.T) {
	for _, bad := range [][]int{{0, 0}, {0, 2}, {-1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("RankPerm(%v) did not panic", bad)
				}
			}()
			RankPerm(bad)
		}()
	}
}

func TestRankPermInt64Property(t *testing.T) {
	src := xrand.NewXoshiro256(5)
	f := func(seed uint8) bool {
		n := int(seed%7) + 1
		p := xrand.Perm(src, n)
		p64 := make([]int64, n)
		for i, v := range p {
			p64[i] = int64(v)
		}
		r := RankPermInt64(p64)
		return r >= 0 && r < Factorial(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTotalVariation(t *testing.T) {
	probs := []float64{0.5, 0.5}
	if d := TotalVariation([]int64{50, 50}, probs); d != 0 {
		t.Fatalf("perfect match TVD = %g", d)
	}
	if d := TotalVariation([]int64{100, 0}, probs); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("one-sided TVD = %g, want 0.5", d)
	}
	if d := TotalVariation([]int64{0, 0}, probs); d != 0 {
		t.Fatalf("empty TVD = %g", d)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std = %g, want %g", s.Std, want)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary")
	}
}

func TestMeanMaxInt64(t *testing.T) {
	if MeanInt64([]int64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if MeanInt64(nil) != 0 {
		t.Fatal("empty mean")
	}
	if MaxInt64([]int64{3, 9, 1}) != 9 {
		t.Fatal("max wrong")
	}
	if MaxInt64(nil) != 0 {
		t.Fatal("empty max")
	}
	if MaxInt64([]int64{-5, -2}) != -2 {
		t.Fatal("negative max")
	}
}

func TestBinCells(t *testing.T) {
	obs := []int64{1, 1, 50, 50, 1, 1}
	probs := []float64{0.01, 0.01, 0.48, 0.48, 0.01, 0.01}
	bObs, bProbs := BinCells(obs, probs, 5, 104)
	var total int64
	var psum float64
	for i := range bObs {
		total += bObs[i]
		psum += bProbs[i]
		if i < len(bObs)-1 && bProbs[i]*104 < 5 {
			t.Fatalf("bin %d below minimum expectation", i)
		}
	}
	if total != 104 {
		t.Fatalf("binning lost observations: %d", total)
	}
	if math.Abs(psum-1) > 1e-12 {
		t.Fatalf("binning lost probability: %g", psum)
	}
}

func TestBinCellsAllTiny(t *testing.T) {
	obs := []int64{1, 1, 1}
	probs := []float64{0.33, 0.33, 0.34}
	bObs, _ := BinCells(obs, probs, 1000, 3)
	if len(bObs) != 1 || bObs[0] != 3 {
		t.Fatalf("all-tiny binning = %v", bObs)
	}
}

func TestChiSquareBinned(t *testing.T) {
	src := xrand.NewXoshiro256(9)
	// Geometric-ish law with a long tail of tiny cells.
	probs := make([]float64, 30)
	mass := 1.0
	for i := range probs {
		if i == len(probs)-1 {
			probs[i] = mass
			break
		}
		probs[i] = mass / 2
		mass /= 2
	}
	counts := make([]int64, 30)
	for i := 0; i < 20000; i++ {
		u := xrand.Float64(src)
		acc := 0.0
		for j, p := range probs {
			acc += p
			if u < acc {
				counts[j]++
				break
			}
		}
	}
	res, err := ChiSquareBinned(counts, probs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.001) {
		t.Fatalf("well-modelled data rejected: %s", res)
	}
	if res.DF >= 29 {
		t.Fatalf("binning did not reduce df: %d", res.DF)
	}
}
