package psort

import (
	"sort"
	"testing"
	"testing/quick"

	"randperm/internal/pro"
	"randperm/internal/xrand"
)

// runSort sorts distributed random data and returns the concatenated
// result plus per-rank block sizes.
func runSort(t *testing.T, p int, blockSizes []int, seed uint64) ([]KV, []int) {
	t.Helper()
	m := pro.NewMachine(p)
	streams := xrand.NewStreams(seed, p)
	out := make([][]KV, p)
	err := m.Run(func(pr *pro.Proc) {
		rank := pr.Rank()
		local := make([]KV, blockSizes[rank])
		for i := range local {
			local[i] = KV{Key: streams[rank].Uint64(), Val: int64(rank*1000000 + i)}
		}
		out[rank] = SortKV(pr, local)
	})
	if err != nil {
		t.Fatal(err)
	}
	var flat []KV
	sizes := make([]int, p)
	for i, b := range out {
		flat = append(flat, b...)
		sizes[i] = len(b)
	}
	return flat, sizes
}

func TestSortedGlobally(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8, 13} {
		sizes := make([]int, p)
		for i := range sizes {
			sizes[i] = 500 + i*37
		}
		flat, _ := runSort(t, p, sizes, uint64(p))
		for i := 1; i < len(flat); i++ {
			if flat[i].Key < flat[i-1].Key {
				t.Fatalf("p=%d: out of order at %d", p, i)
			}
		}
	}
}

func TestMultisetPreserved(t *testing.T) {
	p := 5
	sizes := []int{100, 0, 250, 17, 333}
	flat, _ := runSort(t, p, sizes, 99)
	want := 0
	for _, s := range sizes {
		want += s
	}
	if len(flat) != want {
		t.Fatalf("lost items: %d of %d", len(flat), want)
	}
	// Vals encode origin; all must be distinct and accounted for.
	seen := make(map[int64]bool, len(flat))
	for _, kv := range flat {
		if seen[kv.Val] {
			t.Fatalf("duplicate val %d", kv.Val)
		}
		seen[kv.Val] = true
	}
}

func TestRegularSamplingBalance(t *testing.T) {
	// PSRS bounds each output block by ~2n/p for random input.
	p := 8
	per := 2000
	sizes := make([]int, p)
	for i := range sizes {
		sizes[i] = per
	}
	_, outSizes := runSort(t, p, sizes, 7)
	for i, s := range outSizes {
		if s > 3*per {
			t.Fatalf("block %d holds %d items (> 3x input block)", i, s)
		}
	}
}

func TestEmptyBlocks(t *testing.T) {
	flat, _ := runSort(t, 4, []int{0, 0, 0, 0}, 3)
	if len(flat) != 0 {
		t.Fatal("ghost items appeared")
	}
}

func TestAgainstSequentialSort(t *testing.T) {
	p := 4
	sizes := []int{64, 64, 64, 64}
	flat, _ := runSort(t, p, sizes, 11)
	ref := append([]KV(nil), flat...)
	sort.Slice(ref, func(a, b int) bool {
		if ref[a].Key != ref[b].Key {
			return ref[a].Key < ref[b].Key
		}
		return ref[a].Val < ref[b].Val
	})
	for i := range flat {
		if flat[i] != ref[i] {
			t.Fatalf("parallel sort differs from sequential at %d", i)
		}
	}
}

func TestMergeRunsProperty(t *testing.T) {
	f := func(raw [][]uint16) bool {
		var runs [][]KV
		total := 0
		for _, r := range raw {
			if len(r) == 0 {
				continue
			}
			run := make([]KV, len(r))
			for i, v := range r {
				run[i] = KV{Key: uint64(v), Val: int64(i)}
			}
			sort.Slice(run, func(a, b int) bool { return run[a].Key < run[b].Key })
			runs = append(runs, run)
			total += len(run)
		}
		out := mergeRuns(runs, total)
		if len(out) != total {
			return false
		}
		for i := 1; i < len(out); i++ {
			if out[i].Key < out[i-1].Key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOpsEstimators(t *testing.T) {
	if opsSort(0) != 0 || opsSort(1) != 1 {
		t.Fatal("opsSort edge cases")
	}
	if opsSort(1024) != 1024*10 {
		t.Fatalf("opsSort(1024) = %d", opsSort(1024))
	}
	if opsMerge(100, 1) != 100 {
		t.Fatal("opsMerge k=1")
	}
	if opsMerge(100, 8) != 300 {
		t.Fatalf("opsMerge(100,8) = %d", opsMerge(100, 8))
	}
}
