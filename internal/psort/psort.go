// Package psort provides a parallel sample sort (parallel sorting by
// regular sampling, PSRS) on the pro machine. It exists as the substrate
// for the Goodrich-style sort-based shuffle baseline: that algorithm's
// superlinear work must be real, measured work, not an assumption.
package psort

import (
	"container/heap"
	"sort"

	"randperm/internal/pro"
)

// KV is a sortable item: a 64-bit key carrying an int64 payload. The
// sort-based shuffle baseline uses random keys and item identities as
// payloads.
type KV struct {
	Key uint64
	Val int64
}

// kvSlice implements pro.Sized so messages account their true volume.
type kvSlice []KV

func (s kvSlice) SizeBytes() int { return 16 * len(s) }

// SortKV globally sorts the distributed blocks by Key (ties broken by
// Val) using parallel sorting by regular sampling. Every processor calls
// it with its local block; the returned local block is globally sorted
// across ranks (block i's items all precede block i+1's) but block sizes
// may differ from the input (regular sampling bounds them by ~2n/p).
//
// Cost per processor: O(m log m) local sorting plus one all-to-all, the
// profile that makes the Goodrich baseline not work-optimal.
func SortKV(pr *pro.Proc, local []KV) []KV {
	p := pr.P()
	// Phase 1: local sort.
	sortKVs(local)
	pr.AddOps(opsSort(len(local)))
	if p == 1 {
		return local
	}

	// Phase 2: regular samples to the root.
	samples := make([]uint64, 0, p-1)
	for k := 1; k < p; k++ {
		idx := k * len(local) / p
		if idx >= len(local) {
			idx = len(local) - 1
		}
		if len(local) > 0 {
			samples = append(samples, local[idx].Key)
		}
	}
	gathered := pro.Gather(pr, 0, samples)

	// Phase 3: root selects p-1 splitters, broadcasts.
	var splitters []uint64
	if pr.Rank() == 0 {
		var all []uint64
		for _, s := range gathered {
			all = append(all, s...)
		}
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		splitters = make([]uint64, 0, p-1)
		for k := 1; k < p; k++ {
			if len(all) == 0 {
				splitters = append(splitters, 0)
				continue
			}
			idx := k * len(all) / p
			if idx >= len(all) {
				idx = len(all) - 1
			}
			splitters = append(splitters, all[idx])
		}
		pr.AddOps(opsSort(len(all)))
	}
	splitters = pro.Bcast(pr, 0, splitters)

	// Phase 4: partition the local block by the splitters and
	// exchange. Partition j receives keys in (splitters[j-1],
	// splitters[j]]; binary search finds the boundaries.
	parts := make([]kvSlice, p)
	start := 0
	for j := 0; j < p-1; j++ {
		end := sort.Search(len(local), func(i int) bool {
			return local[i].Key > splitters[j]
		})
		parts[j] = kvSlice(local[start:end])
		start = end
	}
	parts[p-1] = kvSlice(local[start:])
	pr.AddOps(int64(len(local)))
	recv := pro.AllToAll(pr, parts)

	// Phase 5: p-way merge of the sorted runs.
	runs := make([][]KV, 0, p)
	total := 0
	for _, r := range recv {
		if len(r) > 0 {
			runs = append(runs, []KV(r))
			total += len(r)
		}
	}
	merged := mergeRuns(runs, total)
	pr.AddOps(opsMerge(total, len(runs)))
	return merged
}

func sortKVs(x []KV) {
	sort.Slice(x, func(a, b int) bool {
		if x[a].Key != x[b].Key {
			return x[a].Key < x[b].Key
		}
		return x[a].Val < x[b].Val
	})
}

// runHeap is a min-heap over the heads of sorted runs.
type runHeap struct {
	runs [][]KV
	pos  []int
	idx  []int // heap of run indices
}

func (h *runHeap) Len() int { return len(h.idx) }
func (h *runHeap) Less(a, b int) bool {
	ra, rb := h.idx[a], h.idx[b]
	ka := h.runs[ra][h.pos[ra]]
	kb := h.runs[rb][h.pos[rb]]
	if ka.Key != kb.Key {
		return ka.Key < kb.Key
	}
	return ka.Val < kb.Val
}
func (h *runHeap) Swap(a, b int) { h.idx[a], h.idx[b] = h.idx[b], h.idx[a] }
func (h *runHeap) Push(x any)    { h.idx = append(h.idx, x.(int)) }
func (h *runHeap) Pop() any {
	old := h.idx
	n := len(old)
	v := old[n-1]
	h.idx = old[:n-1]
	return v
}

// mergeRuns merges sorted runs into one sorted slice with a heap-based
// k-way merge: O(total log k).
func mergeRuns(runs [][]KV, total int) []KV {
	out := make([]KV, 0, total)
	h := &runHeap{runs: runs, pos: make([]int, len(runs))}
	for i := range runs {
		h.idx = append(h.idx, i)
	}
	heap.Init(h)
	for h.Len() > 0 {
		r := h.idx[0]
		out = append(out, runs[r][h.pos[r]])
		h.pos[r]++
		if h.pos[r] == len(runs[r]) {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
	}
	return out
}

// opsSort charges ~n log2 n operations for a comparison sort.
func opsSort(n int) int64 {
	if n <= 1 {
		return int64(n)
	}
	ops := int64(0)
	for m := n; m > 1; m >>= 1 {
		ops++
	}
	return int64(n) * ops
}

// opsMerge charges ~n log2 k for a k-way merge.
func opsMerge(n, k int) int64 {
	if n == 0 || k <= 1 {
		return int64(n)
	}
	ops := int64(0)
	for m := k; m > 1; m >>= 1 {
		ops++
	}
	return int64(n) * ops
}
