package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"randperm/internal/xrand"
)

// ErrCanceled is the error a cancelable Pool (NewPoolCancel) returns
// from For/ForRNG when the cancel channel closes before the range is
// exhausted: tasks not yet claimed are abandoned, tasks already running
// finish their current call. Callers that carry a context should map it
// onto ctx.Err(); the engine layer has no context of its own.
var ErrCanceled = errors.New("engine: canceled")

// Pool is a fixed set of long-lived worker goroutines that the
// shared-memory backends dispatch their phases onto. One engine
// invocation creates one Pool and runs every parallel phase on it, so a
// multi-phase algorithm (scatter, then offsets, then local shuffles; or
// leaf shuffles, then log p merge rounds) pays the goroutine spawn cost
// once instead of once per phase.
//
// Every worker owns a private xrand.Xoshiro256 stream, split from the
// pool seed by 2^192-step long jumps (xrand.NewLongStreams), so the
// worker streams are disjoint from the per-block Jump-separated streams
// the algorithms derive from the same seed with xrand.NewStreams.
//
// Determinism contract: work scheduled with For carries its randomness
// in per-task state (the backends bind RNG streams to blocks and merge
// nodes, never to workers), so the result is reproducible in the seed
// and independent of the worker count — this is the mode every shipped
// backend uses. ForRNG instead hands each task the executing worker's
// private stream; because the dynamic schedule decides which worker runs
// which task, output produced from those draws is NOT reproducible
// across runs or worker counts, only its distribution is. ForRNG is the
// documented escape hatch for algorithms that trade reproducibility for
// zero stream-setup cost (the MergeShuffle paper's own processor-local
// randomness, future NUMA/distributed backends); see ARCHITECTURE.md.
//
// A Pool must be released with Close. It is safe for one goroutine at a
// time to call For/ForRNG; the pool itself never outlives the engine
// call that created it.
type Pool struct {
	jobs   []chan *poolJob // one channel per worker, jobs are broadcast
	wg     sync.WaitGroup  // worker goroutines
	cancel <-chan struct{} // non-nil on cancelable pools (NewPoolCancel)
}

// NewPool starts a pool of `workers` goroutines (minimum 1), each with
// its own long-jump-separated RNG stream derived from seed.
func NewPool(workers int, seed uint64) *Pool {
	return NewPoolCancel(workers, seed, nil)
}

// NewPoolCancel is NewPool with a cancellation channel: when cancel is
// closed, every in-flight For/ForRNG stops claiming new tasks and
// returns ErrCanceled. Cancellation is checked between tasks, so its
// granularity is one task (one block, one merge node, one index page) —
// a closed channel never interrupts a task mid-run, which keeps the
// determinism contract intact for the tasks that did complete. A nil
// channel (NewPool) disables cancellation entirely.
func NewPoolCancel(workers int, seed uint64, cancel <-chan struct{}) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{jobs: make([]chan *poolJob, workers), cancel: cancel}
	rngs := xrand.NewLongStreams(seed, workers)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		ch := make(chan *poolJob, 1)
		p.jobs[w] = ch
		go func(rng *xrand.Xoshiro256, ch chan *poolJob) {
			defer p.wg.Done()
			for job := range ch {
				job.run(rng)
				job.wg.Done()
			}
		}(rngs[w], ch)
	}
	return p
}

// Workers returns the number of worker goroutines.
func (p *Pool) Workers() int { return len(p.jobs) }

// Close shuts the workers down and blocks until they exit. The pool must
// not be used afterwards.
func (p *Pool) Close() {
	for _, ch := range p.jobs {
		close(ch)
	}
	p.wg.Wait()
}

// For runs fn(0) .. fn(n-1) across the pool's workers (dynamic
// load-balanced scheduling) and blocks until every call returns. A panic
// in any call is captured and returned as an error — the first one
// recorded wins, mirroring the contract of pro.Machine.Run — and the
// remaining tasks still run to completion, so the pool stays usable.
func (p *Pool) For(n int, fn func(i int)) error {
	return p.ForRNG(n, func(i int, _ *xrand.Xoshiro256) { fn(i) })
}

// ForRNG is For with the executing worker's private stream passed to
// each task. Draws from that stream are schedule-bound: reproducible in
// nothing but the distribution (see the Pool determinism contract).
func (p *Pool) ForRNG(n int, fn func(i int, rng *xrand.Xoshiro256)) error {
	if n <= 0 {
		return nil
	}
	job := &poolJob{n: n, fn: fn, cancel: p.cancel}
	job.wg.Add(len(p.jobs))
	for _, ch := range p.jobs {
		ch <- job
	}
	job.wg.Wait()
	return job.first
}

// poolJob is one parallel-for: workers race on the atomic index counter
// until the range is exhausted.
type poolJob struct {
	n      int
	fn     func(i int, rng *xrand.Xoshiro256)
	cancel <-chan struct{}
	next   atomic.Int64
	wg     sync.WaitGroup
	mu     sync.Mutex
	first  error
}

// canceled reports whether the job's cancel channel has closed. A nil
// channel never reports canceled.
func (j *poolJob) canceled() bool {
	select {
	case <-j.cancel:
		return true
	default:
		return false
	}
}

func (j *poolJob) run(rng *xrand.Xoshiro256) {
	for {
		if j.canceled() {
			j.mu.Lock()
			if j.first == nil {
				j.first = ErrCanceled
			}
			j.mu.Unlock()
			return
		}
		i := int(j.next.Add(1)) - 1
		if i >= j.n {
			return
		}
		if err := j.protect(i, rng); err != nil {
			j.mu.Lock()
			if j.first == nil {
				j.first = err
			}
			j.mu.Unlock()
		}
	}
}

func (j *poolJob) protect(i int, rng *xrand.Xoshiro256) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: task %d panicked: %v", i, r)
		}
	}()
	j.fn(i, rng)
	return nil
}
