// Package engine defines the execution-backend abstraction behind the
// parallel API: the four phases of the paper's Algorithm 1 (local
// shuffle, communication-matrix sample, data exchange, local shuffle)
// can run on any of three interchangeable backends.
//
//   - Sim is the simulated PRO machine of internal/pro: one goroutine
//     per processor, message passing through mailboxes, and full
//     superstep/byte/draw accounting, so the paper's Theta-bounds stay
//     observable. The message-passing formulation of Algorithm 1
//     (core.PermuteOn) is written once against the Engine and Worker
//     interfaces below; *pro.Proc implements Worker and
//     pro.(*Machine).Engine() adapts a machine.
//
//   - SharedMem, implemented in this package, executes the same four
//     phases with no mailboxes at all: per-block jump-separated RNG
//     streams, a communication matrix sampled once, its prefix sums
//     turned into disjoint write offsets, and workers scattering items
//     straight into the shared output slice followed by parallel local
//     shuffles. The offset ranges partition the output, so the scatter
//     is data-race-free by construction. When the output layout is
//     prescribed (PermuteBlocks) the matrix comes from the exact
//     fixed-margin distribution of Algorithm 3; when it is free
//     (PermuteSlice) the margins are free too, the matrix degenerates to
//     i.i.d. bucket labels, and the engine picks cache-sized buckets
//     (flatscatter.go).
//
//   - InPlace, also in this package (inplace.go), abandons the scatter
//     decomposition for MergeShuffle's: split into 2^k blocks,
//     Fisher-Yates each block concurrently, then merge adjacent runs
//     pairwise in k parallel rounds with one random bit per placed item.
//     It allocates nothing per item — no labels, no second buffer — so
//     it is the backend for memory-bound workloads and the template for
//     future NUMA/distributed backends.
//
//   - Bijective (bijective.go) does not move data at all: a keyed
//     variable-round Feistel network with cycle-walking defines the
//     permutation as a function, evaluated independently per index in
//     O(1) state. It is the backend behind the streaming Permuter API —
//     any chunk of the permutation costs only the indexes asked for —
//     and the one backend that is NOT exactly uniform over S_n: it is a
//     keyed family with uniform marginals (see bijective.go for the
//     precise statement).
//
// All shared-memory phases dispatch onto one Pool (pool.go) of
// long-lived worker goroutines per engine call; randomness stays bound
// to blocks, merge-tree nodes and index ranges, never to workers, so
// every backend's output is deterministic in the seed and independent
// of the worker count (the determinism contract in ARCHITECTURE.md).
//
// Sim, SharedMem and InPlace produce exactly uniform permutations;
// Bijective trades exactness over S_n for O(1)-state random access.
package engine

import "fmt"

// Worker is the per-processor view of an Engine inside an SPMD body: the
// method set Algorithm 1 and the matrix sampling algorithms need. It is
// the interface extracted from *pro.Proc, which remains the canonical
// message-passing implementation.
//
// A Worker is only valid inside the body passed to Engine.Run and must
// not be shared with other goroutines.
type Worker interface {
	// Rank returns this worker's id in [0, P).
	Rank() int
	// P returns the number of workers.
	P() int
	// Barrier synchronizes all workers (and, on accounting backends,
	// starts a new superstep). Every worker must call Barrier the same
	// number of times.
	Barrier()
	// Send transmits payload to worker `to`; self-sends are allowed.
	Send(to int, payload any)
	// Recv blocks until a message from worker `from` is available and
	// returns its payload. Messages from one source arrive in send
	// order.
	Recv(from int) any
	// RecvAny blocks until any message is available and returns its
	// source and payload.
	RecvAny() (from int, payload any)
	// AddOps charges n local operations to the cost accounting.
	// Backends without accounting discard the charge.
	AddOps(n int64)
	// AddDraws charges n raw random draws to the cost accounting.
	AddDraws(n int64)
}

// Engine runs SPMD bodies over a fixed set of workers. The simulated PRO
// machine is the canonical implementation (pro.(*Machine).Engine()).
type Engine interface {
	// P returns the number of workers an SPMD body will run on.
	P() int
	// Run executes body once per worker, each concurrently, and blocks
	// until all return. A panic in any worker is captured and returned
	// as an error annotated with the worker's rank.
	Run(body func(Worker)) error
}

// Backend names an execution backend for flags and dispatch.
type Backend int

const (
	// Sim is the simulated PRO machine with full cost accounting.
	Sim Backend = iota
	// SharedMem is the zero-mailbox shared-memory scatter engine.
	SharedMem
	// InPlace is the MergeShuffle-style divide-and-conquer in-place
	// engine (inplace.go): no label arrays, no second buffer.
	InPlace
	// Bijective is the keyed-Feistel computed-permutation engine
	// (bijective.go): O(1) state per index, streamable, not exactly
	// uniform over S_n.
	Bijective
	// Cluster is the blocked CGM decomposition (cgm.go): the exact
	// fixed-margin scatter over an even block layout, the one
	// permutation law that internal/cluster can also compute across
	// machines byte for byte.
	Cluster
)

// String names the backend for tables and flags.
func (b Backend) String() string {
	switch b {
	case Sim:
		return "sim"
	case SharedMem:
		return "shmem"
	case InPlace:
		return "inplace"
	case Bijective:
		return "bijective"
	case Cluster:
		return "cluster"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend converts a flag value into a Backend.
func ParseBackend(s string) (Backend, bool) {
	switch s {
	case "sim":
		return Sim, true
	case "shmem", "sharedmem", "shared-mem":
		return SharedMem, true
	case "inplace", "in-place", "mergeshuffle":
		return InPlace, true
	case "bijective", "feistel":
		return Bijective, true
	case "cluster", "cgm":
		return Cluster, true
	}
	return 0, false
}
