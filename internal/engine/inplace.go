package engine

import (
	"fmt"
	"math/bits"

	"randperm/internal/xrand"
)

// The in-place backend: a MergeShuffle-style divide-and-conquer parallel
// shuffle after Bacher, Bodini, Hollender and Lumbroso ("MergeShuffle: A
// Very Fast, Parallel Random Permutation Algorithm", arXiv:1508.03167),
// the shared-memory design Penschuck's engineering study
// (arXiv:2302.03317) builds on. The array is split into 2^k contiguous
// blocks, each block is Fisher-Yates shuffled concurrently, and adjacent
// runs are then merged pairwise in k parallel rounds with the MergeShuffle
// merge: one unbiased random bit per placed item decides whether the next
// output slot keeps the head of the left run or swaps in the head of the
// right run, and once either run is exhausted the remainder is folded in
// with forward Fisher-Yates insertions. If both runs are uniformly
// shuffled, the merged run is too (Lemma 1 of the paper), so induction up
// the merge tree makes the whole array uniform.
//
// Unlike the scatter engine this path allocates nothing per item — no
// label arrays, no second buffer; the only allocations are the RNG
// streams and the block-offset table, and the public API's single input
// copy is the entire memory footprint. The trade is extra sequential
// passes: each merge round touches every item once, and the final round
// is one merge spanning the whole array, so single-core throughput is
// bounded by ~(1 + k) cheap sequential passes where the scatter engine
// does ~2 random-access passes. The win is on real cores: leaf shuffles
// and early merge rounds parallelize perfectly and the per-item merge
// work is a coin flip and a swap.
//
// Determinism contract: RNG streams are bound to the nodes of the merge
// tree (leaf i draws from stream i, the m-th merge of each round from its
// own stream), never to pool workers, so the output is deterministic in
// (Seed, block count, len(data)) and independent of Options.Workers.

// ShuffleInPlace shuffles data in place so every permutation is equally
// likely, using the MergeShuffle divide-and-conquer above. `blocks` is
// the decomposition width (the public Procs knob); it is rounded up to a
// power of two. Inputs too small to split (len(data) < 2*blocks) are
// Fisher-Yates shuffled directly with the first stream.
func ShuffleInPlace[T any](data []T, blocks int, opt Options) error {
	if blocks < 1 {
		return fmt.Errorf("engine: block count must be positive, got %d", blocks)
	}
	b := ceilPow2(blocks)
	n := len(data)
	if b == 1 || n < 2*b {
		// Too small to split: plain Fisher-Yates on the base stream
		// (identical to stream 0 of the tree split below).
		shuffleX(xrand.NewXoshiro256(opt.Seed), data)
		return nil
	}
	// Streams 0..b-1 shuffle the leaves; streams b..2b-2 drive the
	// merges, numbered round by round. Binding streams to tree nodes
	// (not workers) keeps the output independent of the worker schedule.
	streams := xrand.NewStreams(opt.Seed, 2*b-1)

	sizes := evenBlocks(int64(n), b)
	off := make([]int, b+1)
	for i, s := range sizes {
		off[i+1] = off[i] + int(s)
	}

	pool := NewPoolCancel(min(opt.workers(), b), opt.Seed, opt.Cancel)
	defer pool.Close()

	// Phase 1: independent leaf Fisher-Yates shuffles, one stream each.
	if err := pool.For(b, func(i int) {
		shuffleX(streams[i], data[off[i]:off[i+1]])
	}); err != nil {
		return err
	}

	// Phase 2: k = log2(b) rounds of pairwise merges up the tree. Round
	// r merges disjoint adjacent runs, so the merges of one round are
	// data-race-free; the barrier between rounds is the For return.
	node := b
	for width := 1; width < b; width *= 2 {
		pairs := b / (2 * width)
		base := node
		if err := pool.For(pairs, func(m int) {
			lo := off[2*width*m]
			mid := off[2*width*m+width]
			hi := off[2*width*(m+1)]
			mergeShuffle(streams[base+m], data[lo:hi], mid-lo)
		}); err != nil {
			return err
		}
		node += pairs
	}
	return nil
}

// PermuteSliceInPlace returns a uniformly shuffled copy of data computed
// by ShuffleInPlace on the copy — the copying form the public API needs.
// The input is not modified.
func PermuteSliceInPlace[T any](data []T, blocks int, opt Options) ([]T, error) {
	out := make([]T, len(data))
	copy(out, data)
	if err := ShuffleInPlace(out, blocks, opt); err != nil {
		return nil, err
	}
	return out, nil
}

// PermuteBlocksInPlace is the block-distributed form: the input blocks
// are concatenated into one freshly allocated slice laid out in the
// target-block order, shuffled in place with a decomposition width of
// len(in) blocks, and the result split by outSizes (a uniform shuffle of
// the whole followed by any fixed split is uniform over redistributions).
// The returned blocks alias the one backing slice; the input is not
// modified.
func PermuteBlocksInPlace[T any](in [][]T, outSizes []int64, opt Options) ([][]T, error) {
	n, err := blockTotals(in, outSizes)
	if err != nil {
		return nil, err
	}
	flat := flattenBlocks(in, n)
	if err := ShuffleInPlace(flat, len(in), opt); err != nil {
		return nil, err
	}
	return splitBlocks(flat, outSizes), nil
}

// mergeShuffle merges two adjacent uniformly shuffled runs a[:mid] and
// a[mid:] into one uniformly shuffled run, in place, using one unbiased
// bit per placed item (MergeShuffle's merge). Position i is the next
// output slot, j the head of the right run; the left run's head is
// already at i. A 0-bit keeps the left head, a 1-bit swaps in the right
// head (displacing the left head to the back of the left run — a fixed
// rearrangement, which a uniformly shuffled run is invariant under).
// When either run is exhausted the survivors sit contiguously at a[i:]
// and are folded in by forward Fisher-Yates insertion, which extends a
// uniform prefix one element at a time.
func mergeShuffle[T any](rng *xrand.Xoshiro256, a []T, mid int) {
	i, j := 0, mid
	// Fast path: while both runs have >= 64 items left, a whole word of
	// bits can be consumed with no exhaustion checks (each bit retires
	// at most one item from each run). The step itself is branchless —
	// the output slot swaps with position i + bit*(j-i), which is the
	// right head when the bit is set and a self-swap otherwise — so the
	// per-item cost is a few ALU ops instead of a coin-flip branch the
	// predictor can never learn.
	for j-i >= 64 && len(a)-j >= 64 {
		w := rng.Uint64()
		for t := 0; t < 64; t++ {
			b := int(w & 1)
			w >>= 1
			k := i + b*(j-i)
			a[i], a[k] = a[k], a[i]
			j += b
			i++
		}
	}
	var w uint64
	nbits := 0
	for {
		if nbits == 0 {
			w = rng.Uint64()
			nbits = 64
		}
		bit := w & 1
		w >>= 1
		nbits--
		if bit == 0 {
			if i == j {
				break // left run exhausted
			}
		} else {
			if j == len(a) {
				break // right run exhausted
			}
			a[i], a[j] = a[j], a[i]
			j++
		}
		i++
	}
	// The survivors are folded in by forward Fisher-Yates insertion on
	// block-prefetched words, consuming the stream in the exact order
	// rng.Intn would (including its power-of-two mask special case), so
	// the merge stays byte-identical to the per-draw reference.
	var buf [fyBatch]uint64
	for i < len(a) {
		have := min(fyBatch, len(a)-i)
		rng.Fill(buf[:have])
		used := 0
		for used < have {
			bound := uint64(i + 1)
			w := buf[used]
			used++
			var k int
			if bound&(bound-1) == 0 {
				k = int(w & (bound - 1))
			} else {
				hi, lo := bits.Mul64(w, bound)
				if lo < bound {
					thresh := -bound % bound
					for lo < thresh {
						if used == have {
							rng.Fill(buf[:1])
							used, have = 0, 1
						}
						hi, lo = bits.Mul64(buf[used], bound)
						used++
					}
				}
				k = int(hi)
			}
			a[i], a[k] = a[k], a[i]
			i++
		}
	}
}

// ceilPow2 rounds n up to the next power of two (minimum 1).
func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}
