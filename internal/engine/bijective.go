package engine

import (
	"fmt"
	"math/bits"
	"sort"

	"randperm/internal/xrand"
)

// The bijective backend: instead of moving data through a communication
// matrix or a merge tree, it *computes* the permutation. A keyed
// variable-round Feistel network (the philox/Threefry school of
// counter-based randomness — Salmon et al., SC'11 — crossed with
// format-preserving encryption's cycle-walking) defines a bijection on
// the power-of-two superdomain [0, 2^M) covering [0, n); walking the
// cycle until the image lands back under n restricts it to a bijection
// on [0, n). Every index is evaluated independently in O(rounds) time
// and O(1) state, so any chunk of the permutation — a prefix, a shard,
// a single element — costs only the indexes actually asked for, and
// chunks parallelize embarrassingly. This is the design behind
// bandwidth-optimal GPU shuffling (Mitchell et al., "Bandwidth-Optimal
// Random Shuffling for GPUs", arXiv:2106.06161).
//
// Distribution, stated precisely: each key yields one exact permutation
// of [0, n), and the keyed family is indexed by a 64-bit seed, so at
// most 2^64 of the n! permutations are reachable — for n >= 21 that is
// a vanishing fraction, and the family is therefore NOT uniform over
// S_n. What the family does deliver (and what the chi-square tests in
// bijective_test.go pin down) is uniform *marginals*: over random
// seeds, Index(i) is uniform on [0, n) for every i. Callers that need
// exact uniformity over S_n — the statistical harness, permverify —
// must gate on Backend.ExactUniform() and use Sim, SharedMem or
// InPlace.

// bijectiveRounds is the default Feistel depth. Four rounds make a
// pseudorandom permutation in the Luby-Rackoff sense against
// polynomially-bounded adversaries, but on the tiny half-widths small
// domains induce the bias of a shallow network is visible to a plain
// chi-square; twelve rounds of the 64-bit-mixer round function below
// leave no measurable marginal bias even on two-bit halves.
const bijectiveRounds = 12

// Bijection is a keyed bijection on [0, n): a balanced Feistel network
// over the smallest even-bit-width superdomain [0, 2^M) covering n,
// restricted to [0, n) by cycle-walking. The zero value is not valid;
// use NewBijection. A Bijection is immutable after construction, so its
// methods are safe for concurrent use.
type Bijection struct {
	n    int64    // domain size; Index maps [0, n) onto itself
	half uint     // bit width of each Feistel half (M = 2*half)
	mask uint64   // half-width mask, 2^half - 1
	keys []uint64 // per-round keys, expanded from the seed
	seed uint64   // construction seed, for re-derivation and debugging
}

// NewBijection returns the bijection on [0, n) selected by seed, with
// the default round count. n must be non-negative; n <= 1 yields the
// identity on the trivial domain.
func NewBijection(n int64, seed uint64) *Bijection {
	return NewBijectionRounds(n, seed, bijectiveRounds)
}

// NewBijectionRounds is NewBijection with an explicit Feistel depth
// (minimum 1), the "variable" in variable-round: tests force shallow
// networks to expose bias, and latency-critical callers that only need
// decorrelation, not statistical quality, can trade rounds for speed.
func NewBijectionRounds(n int64, seed uint64, rounds int) *Bijection {
	if n < 0 {
		panic(fmt.Sprintf("engine: NewBijection with negative domain %d", n))
	}
	if rounds < 1 {
		rounds = 1
	}
	b := &Bijection{n: n, seed: seed}
	// M = 2*ceil(m/2) where m is the bit width of n-1: the smallest
	// even width whose power-of-two domain covers [0, n). Even width
	// keeps the Feistel halves balanced; cycle-walking absorbs the
	// at-most-4x overshoot (2^M < 4n).
	m := uint(bits.Len64(uint64(max(n-1, 1))))
	b.half = (m + 1) / 2
	b.mask = 1<<b.half - 1
	// Round keys are expanded with SplitMix64, the same seed-expansion
	// the xoshiro streams use; the bijection consumes no stream draws,
	// so it coexists with the Jump/LongJump families on any seed.
	sm := xrand.NewSplitMix64(seed)
	b.keys = make([]uint64, rounds)
	for i := range b.keys {
		b.keys[i] = sm.Uint64()
	}
	return b
}

// N returns the domain size n.
func (b *Bijection) N() int64 { return b.n }

// Seed returns the seed the bijection was keyed with.
func (b *Bijection) Seed() uint64 { return b.seed }

// Index maps i to its position under the permutation: the stream
// backend's contract is out[i] = data[Index(i)]. i must be in [0, n).
// O(rounds) time, O(1) state, safe for concurrent use.
func (b *Bijection) Index(i int64) int64 {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("engine: Bijection.Index(%d) outside [0, %d)", i, b.n))
	}
	if b.n <= 1 {
		return i
	}
	// Cycle-walking: encrypt is a permutation of the superdomain, so
	// following its cycle from an in-domain point must revisit the
	// domain; the first in-domain image defines a permutation of
	// [0, n). Expected walk length is 2^M/n < 4.
	x := uint64(i)
	for {
		x = b.encrypt(x)
		if x < uint64(b.n) {
			return int64(x)
		}
	}
}

// Inverse maps a position back to the index that lands there:
// Inverse(Index(i)) == i. It walks the inverse cycle with the decrypt
// direction of the network. y must be in [0, n).
func (b *Bijection) Inverse(y int64) int64 {
	if y < 0 || y >= b.n {
		panic(fmt.Sprintf("engine: Bijection.Inverse(%d) outside [0, %d)", y, b.n))
	}
	if b.n <= 1 {
		return y
	}
	x := uint64(y)
	for {
		x = b.decrypt(x)
		if x < uint64(b.n) {
			return int64(x)
		}
	}
}

// encrypt runs the Feistel network forward over the superdomain.
func (b *Bijection) encrypt(x uint64) uint64 {
	l, r := x>>b.half, x&b.mask
	for _, k := range b.keys {
		l, r = r, l^(feistelRound(r, k)&b.mask)
	}
	return l<<b.half | r
}

// decrypt runs the network backward: the inverse of encrypt.
func (b *Bijection) decrypt(x uint64) uint64 {
	l, r := x>>b.half, x&b.mask
	for i := len(b.keys) - 1; i >= 0; i-- {
		l, r = r^(feistelRound(l, b.keys[i])&b.mask), l
	}
	return l<<b.half | r
}

// feistelRound is the round function F(r, k): the SplitMix64 finalizer
// (Stafford's Mix13 constants) applied to the keyed half. It needs no
// invertibility — Feistel networks are bijective for any F — only
// avalanche, which the finalizer's two multiply-xorshift stages supply
// across the full 64-bit word even when r occupies a few low bits.
func feistelRound(r, k uint64) uint64 {
	x := r ^ k
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// PermuteSliceBijective returns the permuted copy of data defined by the
// keyed bijection on [0, len(data)): out[i] = data[Index(i)]. `chunks`
// (<= 0 means defaultChunks) sets the decomposition evaluated on the
// pool; because every index is independent the result is deterministic
// in (Seed, len(data)) alone — chunks and Options.Workers change only
// the schedule. The input is not modified.
func PermuteSliceBijective[T any](data []T, chunks int, opt Options) ([]T, error) {
	if chunks <= 0 {
		chunks = defaultChunks
	}
	n := int64(len(data))
	bij := NewBijection(n, opt.Seed)
	out := make([]T, n)
	sizes := evenBlocks(n, chunks)
	off := make([]int64, chunks+1)
	for c, s := range sizes {
		off[c+1] = off[c] + s
	}
	pool := NewPool(min(opt.workers(), chunks), opt.Seed)
	defer pool.Close()
	if err := pool.For(chunks, func(c int) {
		for i := off[c]; i < off[c+1]; i++ {
			out[i] = data[bij.Index(i)]
		}
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// PermuteBlocksBijective is the block-distributed form: the bijection is
// taken over the input blocks read in order — out[i] is the Index(i)-th
// item of the concatenation, located through the blocks' prefix offsets
// rather than a flattened copy, so the only n-sized allocation is the
// output itself. The result is split by outSizes; the returned blocks
// alias one freshly allocated backing slice and the input is not
// modified.
func PermuteBlocksBijective[T any](in [][]T, outSizes []int64, opt Options) ([][]T, error) {
	n, err := blockTotals(in, outSizes)
	if err != nil {
		return nil, err
	}
	p := len(in)
	starts := make([]int64, p+1)
	for b, blk := range in {
		starts[b+1] = starts[b] + int64(len(blk))
	}
	bij := NewBijection(n, opt.Seed)
	out := make([]T, n)
	sizes := evenBlocks(n, p)
	off := make([]int64, p+1)
	for c, s := range sizes {
		off[c+1] = off[c] + s
	}
	pool := NewPool(min(opt.workers(), p), opt.Seed)
	defer pool.Close()
	if err := pool.For(p, func(c int) {
		for i := off[c]; i < off[c+1]; i++ {
			j := bij.Index(i)
			// The source blocks' offsets are sorted; binary-search the
			// block holding global index j (p <= sqrt(n), so log p is
			// noise against the Feistel evaluation).
			b := sort.Search(p, func(b int) bool { return starts[b+1] > j })
			out[i] = in[b][j-starts[b]]
		}
	}); err != nil {
		return nil, err
	}
	return splitBlocks(out, outSizes), nil
}
