package engine

import (
	"fmt"
	"math/bits"
	"sort"

	"randperm/internal/xrand"
)

// The bijective backend: instead of moving data through a communication
// matrix or a merge tree, it *computes* the permutation. A keyed
// variable-round Feistel network (the philox/Threefry school of
// counter-based randomness — Salmon et al., SC'11 — crossed with
// format-preserving encryption's cycle-walking) defines a bijection on
// the power-of-two superdomain [0, 2^M) covering [0, n); walking the
// cycle until the image lands back under n restricts it to a bijection
// on [0, n). Every index is evaluated independently in O(rounds) time
// and O(1) state, so any chunk of the permutation — a prefix, a shard,
// a single element — costs only the indexes actually asked for, and
// chunks parallelize embarrassingly. This is the design behind
// bandwidth-optimal GPU shuffling (Mitchell et al., "Bandwidth-Optimal
// Random Shuffling for GPUs", arXiv:2106.06161).
//
// Distribution, stated precisely: each key yields one exact permutation
// of [0, n), and the keyed family is indexed by a 64-bit seed, so at
// most 2^64 of the n! permutations are reachable — for n >= 21 that is
// a vanishing fraction, and the family is therefore NOT uniform over
// S_n. What the family does deliver (and what the chi-square tests in
// bijective_test.go pin down) is uniform *marginals*: over random
// seeds, Index(i) is uniform on [0, n) for every i. Callers that need
// exact uniformity over S_n — the statistical harness, permverify —
// must gate on Backend.ExactUniform() and use Sim, SharedMem or
// InPlace.

// bijectiveRounds is the default Feistel depth. Four rounds make a
// pseudorandom permutation in the Luby-Rackoff sense against
// polynomially-bounded adversaries, but on the tiny half-widths small
// domains induce the bias of a shallow network is visible to a plain
// chi-square; twelve rounds of the 64-bit-mixer round function below
// leave no measurable marginal bias even on two-bit halves.
const bijectiveRounds = 12

// Bijection is a keyed bijection on [0, n): a balanced Feistel network
// over the smallest even-bit-width superdomain [0, 2^M) covering n,
// restricted to [0, n) by cycle-walking. The zero value is not valid;
// use NewBijection. A Bijection is immutable after construction, so its
// methods are safe for concurrent use.
type Bijection struct {
	n    int64    // domain size; Index maps [0, n) onto itself
	half uint     // bit width of each Feistel half (M = 2*half)
	mask uint64   // half-width mask, 2^half - 1
	keys []uint64 // per-round keys, expanded from the seed
	seed uint64   // construction seed, for re-derivation and debugging
}

// NewBijection returns the bijection on [0, n) selected by seed, with
// the default round count. n must be non-negative; n <= 1 yields the
// identity on the trivial domain.
func NewBijection(n int64, seed uint64) *Bijection {
	return NewBijectionRounds(n, seed, bijectiveRounds)
}

// NewBijectionRounds is NewBijection with an explicit Feistel depth
// (minimum 1), the "variable" in variable-round: tests force shallow
// networks to expose bias, and latency-critical callers that only need
// decorrelation, not statistical quality, can trade rounds for speed.
func NewBijectionRounds(n int64, seed uint64, rounds int) *Bijection {
	if n < 0 {
		panic(fmt.Sprintf("engine: NewBijection with negative domain %d", n))
	}
	if rounds < 1 {
		rounds = 1
	}
	b := &Bijection{n: n, seed: seed}
	// M = 2*ceil(m/2) where m is the bit width of n-1: the smallest
	// even width whose power-of-two domain covers [0, n). Even width
	// keeps the Feistel halves balanced; cycle-walking absorbs the
	// at-most-4x overshoot (2^M < 4n).
	m := uint(bits.Len64(uint64(max(n-1, 1))))
	b.half = (m + 1) / 2
	b.mask = 1<<b.half - 1
	// Round keys are expanded with SplitMix64, the same seed-expansion
	// the xoshiro streams use; the bijection consumes no stream draws,
	// so it coexists with the Jump/LongJump families on any seed.
	sm := xrand.NewSplitMix64(seed)
	b.keys = make([]uint64, rounds)
	for i := range b.keys {
		b.keys[i] = sm.Uint64()
	}
	return b
}

// N returns the domain size n.
func (b *Bijection) N() int64 { return b.n }

// Seed returns the seed the bijection was keyed with.
func (b *Bijection) Seed() uint64 { return b.seed }

// Index maps i to its position under the permutation: the stream
// backend's contract is out[i] = data[Index(i)]. i must be in [0, n).
// O(rounds) time, O(1) state, safe for concurrent use.
func (b *Bijection) Index(i int64) int64 {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("engine: Bijection.Index(%d) outside [0, %d)", i, b.n))
	}
	if b.n <= 1 {
		return i
	}
	// Cycle-walking: encrypt is a permutation of the superdomain, so
	// following its cycle from an in-domain point must revisit the
	// domain; the first in-domain image defines a permutation of
	// [0, n). Expected walk length is 2^M/n < 4.
	x := uint64(i)
	for {
		x = b.encrypt(x)
		if x < uint64(b.n) {
			return int64(x)
		}
	}
}

// Inverse maps a position back to the index that lands there:
// Inverse(Index(i)) == i. It walks the inverse cycle with the decrypt
// direction of the network. y must be in [0, n).
func (b *Bijection) Inverse(y int64) int64 {
	if y < 0 || y >= b.n {
		panic(fmt.Sprintf("engine: Bijection.Inverse(%d) outside [0, %d)", y, b.n))
	}
	if b.n <= 1 {
		return y
	}
	x := uint64(y)
	for {
		x = b.decrypt(x)
		if x < uint64(b.n) {
			return int64(x)
		}
	}
}

// bijLanes is the interleave width of the batched evaluator: enough
// independent Feistel chains in flight to hide the round function's
// multiply latency behind throughput (the serial evaluator is pure
// latency: ~15 cycles of dependent ALU work per round), few enough that
// the lane state stays in registers and L1.
const bijLanes = 16

// Chunk fills dst[k] = Index(start+k) for k in [0, len(dst)): the batch
// evaluator behind Permuter.Chunk and the materializing helpers. The
// indices are evaluated bijLanes at a time with the rounds interleaved
// across lanes, so the independent per-index chains pipeline instead of
// serializing on each round's multiply latency; out-of-domain images
// are re-encrypted as a shrinking batch until every lane has walked
// back under n (cycle-walking, exactly the per-index walk Index does —
// same function, same result, pinned by TestBijectionChunkMatchesIndex).
// When the superdomain equals the domain (n a power of two with an even
// bit width) the walk is skipped entirely. start must satisfy
// 0 <= start and start+len(dst) <= n. Safe for concurrent use.
func (b *Bijection) Chunk(dst []int64, start int64) {
	if start < 0 || start+int64(len(dst)) > max(b.n, 1) {
		panic(fmt.Sprintf("engine: Bijection.Chunk [%d, %d) outside [0, %d)", start, start+int64(len(dst)), b.n))
	}
	if b.n <= 1 {
		for k := range dst {
			dst[k] = start + int64(k)
		}
		return
	}
	n := uint64(b.n)
	full := uint64(1)<<(2*b.half) == n
	var x [bijLanes]uint64
	var pend [bijLanes]int
	for k := 0; k < len(dst); {
		m := min(bijLanes, len(dst)-k)
		lanes := x[:m]
		for l := range lanes {
			lanes[l] = uint64(start) + uint64(k+l)
		}
		b.encryptLanes(lanes)
		if full {
			for l, v := range lanes {
				dst[k+l] = int64(v)
			}
		} else {
			// Optimistic write, then walk the escapees as a batch: lane
			// compaction keeps the re-encryptions interleaved too.
			np := 0
			for l, v := range lanes {
				if v < n {
					dst[k+l] = int64(v)
				} else {
					pend[np], x[np] = k+l, v
					np++
				}
			}
			for np > 0 {
				b.encryptLanes(x[:np])
				w := 0
				for l, v := range x[:np] {
					if v < n {
						dst[pend[l]] = int64(v)
					} else {
						pend[w], x[w] = pend[l], v
						w++
					}
				}
				np = w
			}
		}
		k += m
	}
}

// encryptLanes runs the Feistel network forward over every lane of x
// (len(x) <= bijLanes), round-major: one round's work for all lanes,
// then the next round. Each lane computes exactly encrypt(x[l]).
func (b *Bijection) encryptLanes(x []uint64) {
	half, mask := b.half, b.mask
	var lbuf, rbuf [bijLanes]uint64
	ls, rs := lbuf[:len(x)], rbuf[:len(x)]
	for l, v := range x {
		ls[l], rs[l] = v>>half, v&mask
	}
	// Two rounds per pass: the halves swap roles in registers, halving
	// the lane-array traffic (2 loads + 2 stores per pass instead of 4).
	keys := b.keys
	for len(keys) >= 2 {
		k0, k1 := keys[0], keys[1]
		keys = keys[2:]
		for l := range ls {
			lv, rv := ls[l], rs[l]
			rv, lv = lv^(feistelRound(rv, k0)&mask), rv
			ls[l], rs[l] = rv, lv^(feistelRound(rv, k1)&mask)
		}
	}
	if len(keys) == 1 {
		k := keys[0]
		for l := range ls {
			f := feistelRound(rs[l], k) & mask
			ls[l], rs[l] = rs[l], ls[l]^f
		}
	}
	for l := range x {
		x[l] = ls[l]<<half | rs[l]
	}
}

// encrypt runs the Feistel network forward over the superdomain.
func (b *Bijection) encrypt(x uint64) uint64 {
	l, r := x>>b.half, x&b.mask
	for _, k := range b.keys {
		l, r = r, l^(feistelRound(r, k)&b.mask)
	}
	return l<<b.half | r
}

// decrypt runs the network backward: the inverse of encrypt.
func (b *Bijection) decrypt(x uint64) uint64 {
	l, r := x>>b.half, x&b.mask
	for i := len(b.keys) - 1; i >= 0; i-- {
		l, r = r^(feistelRound(l, b.keys[i])&b.mask), l
	}
	return l<<b.half | r
}

// feistelRound is the round function F(r, k): the SplitMix64 finalizer
// (Stafford's Mix13 constants) applied to the keyed half. It needs no
// invertibility — Feistel networks are bijective for any F — only
// avalanche, which the finalizer's two multiply-xorshift stages supply
// across the full 64-bit word even when r occupies a few low bits.
func feistelRound(r, k uint64) uint64 {
	x := r ^ k
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// bijPage is the index-page size of the materializing bijective loops:
// each worker evaluates a page of indices with the batch evaluator, then
// gathers the page in a second tight loop, so the Feistel pipeline never
// stalls on a data-cache miss. 4Ki indices is 32 KiB of scratch — L1.
const bijPage = 4096

// newBijectionOpt builds the bijection opt selects: seed from opt.Seed,
// depth from opt.Rounds (<= 0 means the default family).
func newBijectionOpt(n int64, opt Options) *Bijection {
	if opt.Rounds > 0 {
		return NewBijectionRounds(n, opt.Seed, opt.Rounds)
	}
	return NewBijection(n, opt.Seed)
}

// PermuteSliceBijective returns the permuted copy of data defined by the
// keyed bijection on [0, len(data)): out[i] = data[Index(i)]. `chunks`
// (<= 0 means defaultChunks) sets the decomposition evaluated on the
// pool; because every index is independent the result is deterministic
// in (Seed, Rounds, len(data)) alone — chunks and Options.Workers change
// only the schedule. The input is not modified.
func PermuteSliceBijective[T any](data []T, chunks int, opt Options) ([]T, error) {
	if chunks <= 0 {
		chunks = defaultChunks
	}
	n := int64(len(data))
	bij := newBijectionOpt(n, opt)
	out := make([]T, n)
	sizes := evenBlocks(n, chunks)
	off := make([]int64, chunks+1)
	for c, s := range sizes {
		off[c+1] = off[c] + s
	}
	pool := NewPoolCancel(min(opt.workers(), chunks), opt.Seed, opt.Cancel)
	defer pool.Close()
	if err := pool.For(chunks, func(c int) {
		var idx [bijPage]int64
		for i := off[c]; i < off[c+1]; i += bijPage {
			m := min(int64(bijPage), off[c+1]-i)
			page := idx[:m]
			bij.Chunk(page, i)
			o := out[i : i+m]
			for k, j := range page {
				o[k] = data[j]
			}
		}
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// PermuteBlocksBijective is the block-distributed form: the bijection is
// taken over the input blocks read in order — out[i] is the Index(i)-th
// item of the concatenation, located through the blocks' prefix offsets
// rather than a flattened copy, so the only n-sized allocation is the
// output itself. The result is split by outSizes; the returned blocks
// alias one freshly allocated backing slice and the input is not
// modified.
func PermuteBlocksBijective[T any](in [][]T, outSizes []int64, opt Options) ([][]T, error) {
	n, err := blockTotals(in, outSizes)
	if err != nil {
		return nil, err
	}
	p := len(in)
	starts := make([]int64, p+1)
	for b, blk := range in {
		starts[b+1] = starts[b] + int64(len(blk))
	}
	bij := newBijectionOpt(n, opt)
	out := make([]T, n)
	sizes := evenBlocks(n, p)
	off := make([]int64, p+1)
	for c, s := range sizes {
		off[c+1] = off[c] + s
	}
	pool := NewPoolCancel(min(opt.workers(), p), opt.Seed, opt.Cancel)
	defer pool.Close()
	if err := pool.For(p, func(c int) {
		var idx [bijPage]int64
		for i := off[c]; i < off[c+1]; i += bijPage {
			m := min(int64(bijPage), off[c+1]-i)
			page := idx[:m]
			bij.Chunk(page, i)
			o := out[i : i+m]
			for k, j := range page {
				// The source blocks' offsets are sorted; binary-search
				// the block holding global index j (p <= sqrt(n), so
				// log p is noise against the Feistel evaluation).
				b := sort.Search(p, func(b int) bool { return starts[b+1] > j })
				o[k] = in[b][j-starts[b]]
			}
		}
	}); err != nil {
		return nil, err
	}
	return splitBlocks(out, outSizes), nil
}
