package engine

import "fmt"

// Shared scaffolding for the backends that realize the block-distributed
// form (Problem 1's prescribed layout) by reduction to a flat
// permutation: validate the redistribution shape once, and split one
// backing slice into the target blocks once, so every such backend
// agrees on edge cases by construction.

// blockTotals validates a redistribution: at least one source block,
// no negative target size, and matching item totals. It returns the
// total item count n.
func blockTotals[T any](in [][]T, outSizes []int64) (int64, error) {
	if len(in) == 0 {
		return 0, fmt.Errorf("engine: need at least one input block")
	}
	var n int64
	for _, b := range in {
		n += int64(len(b))
	}
	var outN int64
	for _, s := range outSizes {
		if s < 0 {
			return 0, fmt.Errorf("engine: negative target block size %d", s)
		}
		outN += s
	}
	if n != outN {
		return 0, fmt.Errorf("engine: source total %d != target total %d", n, outN)
	}
	return n, nil
}

// flattenBlocks returns the blocks concatenated in order into one
// freshly allocated slice of length n.
func flattenBlocks[T any](in [][]T, n int64) []T {
	flat := make([]T, 0, n)
	for _, b := range in {
		flat = append(flat, b...)
	}
	return flat
}

// splitBlocks partitions flat into consecutive blocks of the given
// sizes; the blocks alias flat's backing array.
func splitBlocks[T any](flat []T, outSizes []int64) [][]T {
	out := make([][]T, len(outSizes))
	var run int64
	for j, s := range outSizes {
		out[j] = flat[run : run+s : run+s]
		run += s
	}
	return out
}
