package engine

import (
	"testing"

	"randperm/internal/stats"
)

// TestBijectionIsPermutation: for a spread of domain sizes — powers of
// two, one off either side, primes, tiny — Index must hit every value
// of [0, n) exactly once and Inverse must undo it.
func TestBijectionIsPermutation(t *testing.T) {
	for _, n := range []int64{0, 1, 2, 3, 5, 17, 64, 65, 100, 127, 128, 129, 1000, 4096, 10007} {
		b := NewBijection(n, 42)
		seen := make([]bool, n)
		for i := int64(0); i < n; i++ {
			y := b.Index(i)
			if y < 0 || y >= n {
				t.Fatalf("n=%d: Index(%d) = %d outside domain", n, i, y)
			}
			if seen[y] {
				t.Fatalf("n=%d: Index maps two inputs to %d", n, y)
			}
			seen[y] = true
			if inv := b.Inverse(y); inv != i {
				t.Fatalf("n=%d: Inverse(Index(%d)) = %d", n, i, inv)
			}
		}
	}
}

// TestBijectionRoundsStillBijective: any round count, including a
// deliberately shallow single round, must still be a permutation —
// bijectivity comes from the Feistel structure, not the depth.
func TestBijectionRoundsStillBijective(t *testing.T) {
	for _, rounds := range []int{1, 2, 4, 12, 32} {
		const n = 777
		b := NewBijectionRounds(n, 9, rounds)
		seen := make([]bool, n)
		for i := int64(0); i < n; i++ {
			y := b.Index(i)
			if seen[y] {
				t.Fatalf("rounds=%d: collision at %d", rounds, y)
			}
			seen[y] = true
		}
	}
}

// TestBijectionDeterminism: the map is a pure function of (n, seed),
// and distinct seeds give distinct maps (up to astronomically unlikely
// key collisions on a domain this size).
func TestBijectionDeterminism(t *testing.T) {
	const n = 5000
	a, b := NewBijection(n, 7), NewBijection(n, 7)
	c := NewBijection(n, 8)
	same := true
	for i := int64(0); i < n; i++ {
		if a.Index(i) != b.Index(i) {
			t.Fatalf("same seed, different map at %d", i)
		}
		if a.Index(i) != c.Index(i) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced the identical permutation")
	}
	if a.N() != n || a.Seed() != 7 {
		t.Fatalf("accessors: N=%d Seed=%d", a.N(), a.Seed())
	}
}

// TestBijectionFamilyUniform is the distribution claim of the backend,
// stated and tested precisely: over random keys, the marginal Index(i)
// is uniform on [0, n) for every fixed i. (The family is NOT uniform
// over S_n — with 2^64 keys it cannot be for n >= 21 — so this marginal
// law, not permutation-level uniformity, is the stated contract;
// exactness-sensitive callers gate on Backend.ExactUniform.)
func TestBijectionFamilyUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const (
		n      = 100
		trials = 40000
	)
	// Three probe positions: first, middle, last.
	for _, probe := range []int64{0, n / 2, n - 1} {
		counts := make([]int64, n)
		for s := 0; s < trials; s++ {
			b := NewBijection(n, 0xB1EC+uint64(s)*0x9E3779B97F4A7C15)
			counts[b.Index(probe)]++
		}
		res, err := stats.ChiSquareUniform(counts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject(1e-4) {
			t.Errorf("probe %d: marginal not uniform: %v", probe, res)
		}
	}
}

// TestBijectionPairDecorrelation: beyond marginals, the joint of two
// positions should spread over ordered pairs with the law a uniform
// random permutation induces: P(Index(0)=a, Index(1)=b) = 1/(n(n-1))
// for a != b. A shallow network fails this; the default depth must not.
func TestBijectionPairDecorrelation(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	const (
		n      = 12
		trials = 60000
	)
	counts := make([]int64, n*n)
	for s := 0; s < trials; s++ {
		b := NewBijection(n, 0xCAFE+uint64(s)*0x9E3779B97F4A7C15)
		counts[b.Index(0)*n+b.Index(1)]++
	}
	// Collapse to the off-diagonal cells (diagonal is structurally 0).
	var offDiag []int64
	for a := 0; a < n; a++ {
		for bb := 0; bb < n; bb++ {
			if a != bb {
				offDiag = append(offDiag, counts[a*n+bb])
			}
			if a == bb && counts[a*n+bb] != 0 {
				t.Fatalf("Index(0) == Index(1) == %d occurred", a)
			}
		}
	}
	res, err := stats.ChiSquareUniform(offDiag)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(1e-4) {
		t.Errorf("pair law not uniform over ordered pairs: %v", res)
	}
}

// TestPermuteSliceBijectiveValidity: the engine entry point must
// produce a permutation of the input, leave the input untouched, and be
// deterministic in the seed while independent of chunks and workers.
func TestPermuteSliceBijectiveValidity(t *testing.T) {
	const n = 4097
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}
	var want []int64
	for _, chunks := range []int{1, 3, 16} {
		for _, workers := range []int{1, 4} {
			out, err := PermuteSliceBijective(data, chunks, Options{Workers: workers, Seed: 99})
			if err != nil {
				t.Fatal(err)
			}
			seen := make([]bool, n)
			for _, v := range out {
				if v < 0 || v >= n || seen[v] {
					t.Fatalf("chunks=%d: not a permutation at %d", chunks, v)
				}
				seen[v] = true
			}
			if want == nil {
				want = out
				continue
			}
			for i := range out {
				if out[i] != want[i] {
					t.Fatalf("chunks=%d workers=%d: output differs at %d", chunks, workers, i)
				}
			}
		}
	}
	for i := range data {
		if data[i] != int64(i) {
			t.Fatal("input modified")
		}
	}
}

// TestPermuteBlocksBijective: the block form must redistribute exactly
// and reject mismatched totals.
func TestPermuteBlocksBijective(t *testing.T) {
	in := [][]int64{{0, 1, 2}, {3, 4}, {5, 6, 7, 8}}
	out, err := PermuteBlocksBijective(in, []int64{4, 4, 1}, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 9)
	total := 0
	for j, blk := range out {
		if len(blk) != []int{4, 4, 1}[j] {
			t.Fatalf("block %d has size %d", j, len(blk))
		}
		for _, v := range blk {
			seen[v] = true
			total++
		}
	}
	if total != 9 {
		t.Fatalf("total %d", total)
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("value %d lost", v)
		}
	}
	if _, err := PermuteBlocksBijective(in, []int64{4, 4}, Options{}); err == nil {
		t.Error("mismatched totals accepted")
	}
	if _, err := PermuteBlocksBijective([][]int64{}, nil, Options{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := PermuteBlocksBijective(in, []int64{-1, 10}, Options{}); err == nil {
		t.Error("negative target size accepted")
	}
}
