package engine

import (
	"testing"

	"randperm/internal/stats"
	"randperm/internal/xrand"
)

// TestPermuteSliceCGMIsPermutation: validity, input preservation, and
// determinism in (Seed, p) across worker counts and odd block layouts.
func TestPermuteSliceCGMIsPermutation(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000, 1001} {
		for _, p := range []int{1, 3, 8} {
			var ref []int64
			for _, workers := range []int{1, 4} {
				data := make([]int64, n)
				for i := range data {
					data[i] = int64(i)
				}
				out, err := PermuteSliceCGM(data, p, Options{Workers: workers, Seed: 99})
				if err != nil {
					t.Fatal(err)
				}
				seen := make([]bool, n)
				for _, v := range out {
					if v < 0 || v >= int64(n) || seen[v] {
						t.Fatalf("n=%d p=%d: not a permutation", n, p)
					}
					seen[v] = true
				}
				for i, v := range data {
					if v != int64(i) {
						t.Fatalf("n=%d p=%d: input modified", n, p)
					}
				}
				if ref == nil {
					ref = out
					continue
				}
				for i := range ref {
					if out[i] != ref[i] {
						t.Fatalf("n=%d p=%d: workers=%d diverged at %d", n, p, workers, i)
					}
				}
			}
		}
	}
	if _, err := PermuteSliceCGM([]int64{1}, 0, Options{}); err == nil {
		t.Fatal("p=0 accepted")
	}
}

// TestPermuteSliceCGMMatchesBlockedPermute: the flat CGM form must be
// exactly the PermuteBlocks decomposition over even blocks — the
// byte-identity anchor the cluster backend builds on.
func TestPermuteSliceCGMMatchesBlockedPermute(t *testing.T) {
	const n, p = 777, 5
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}
	got, err := PermuteSliceCGM(data, p, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sizes := evenBlocks(n, p)
	blocks := make([][]int64, p)
	var off int64
	for i, s := range sizes {
		blocks[i] = data[off : off+s]
		off += s
	}
	outBlocks, err := PermuteBlocks(blocks, sizes, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var want []int64
	for _, b := range outBlocks {
		want = append(want, b...)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("diverged at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

// TestArrangeRowMatchesRoute: ArrangeRow must consume the stream exactly
// as routeBlock does, and the segments it induces must reproduce
// routeBlock's writes (source order within a target, targets laid out by
// scatterStarts).
func TestArrangeRowMatchesRoute(t *testing.T) {
	row := []int64{3, 0, 4, 2}
	src := []int64{10, 11, 12, 13, 14, 15, 16, 17, 18}
	a := xrand.NewStreams(42, 1)[0]
	b := xrand.NewStreams(42, 1)[0]

	flat := make([]int64, len(src))
	starts := []int64{0, 3, 3, 7}
	routeBlock(a, src, row, starts, flat)

	labels := ArrangeRow(b, row)
	if len(labels) != len(src) {
		t.Fatalf("labels length %d, want %d", len(labels), len(src))
	}
	fill := append([]int64(nil), starts...)
	want := make([]int64, len(src))
	for i, v := range src {
		j := labels[i]
		want[fill[j]] = v
		fill[j]++
	}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
	// Both paths must leave their streams in the same state: the next
	// draw after either is the same value.
	if a.Uint64() != b.Uint64() {
		t.Fatal("stream consumption diverged between routeBlock and ArrangeRow")
	}
}

// TestPermuteSliceCGMUniform: the blocked CGM law is exactly uniform
// (it is Algorithm 1 with the exact matrix), chi-squared over S_4.
func TestPermuteSliceCGMUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	const n = 4
	const trials = 24000
	counts := make([]int64, stats.Factorial(n))
	for tr := 0; tr < trials; tr++ {
		data := []int64{0, 1, 2, 3}
		out, err := PermuteSliceCGM(data, 2, Options{Seed: uint64(tr)*0x9E3779B97F4A7C15 + 11})
		if err != nil {
			t.Fatal(err)
		}
		counts[stats.RankPermInt64(out)]++
	}
	res, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.0005) {
		t.Errorf("non-uniform: %s", res)
	}
}
