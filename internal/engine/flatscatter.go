package engine

import (
	"math/bits"

	"randperm/internal/xrand"
)

// The flat shared-memory path: a k-way scatter shuffle in the style of
// Rao (1961) / Sandelius (1962), the same algorithm modern shared-memory
// shuffling engines converge on. Every item draws an i.i.d. uniform
// bucket label (a few bits, so one 64-bit word yields ~21 labels); the
// per-chunk label counts are the rows of a communication matrix whose
// prefix sums become disjoint write offsets, exactly as in PermuteBlocks
// - the only difference is the matrix's law (free multinomial margins
// here, fixed hypergeometric margins there, both of which make the final
// result exactly uniform). Items are then scattered straight into their
// bucket's range of the output and every bucket is shuffled in place
// with Fisher-Yates, cache-resident by construction.
//
// Uniformity: condition on the label vector. The set of items landing in
// each bucket is exchangeable (labels are i.i.d.), the buckets partition
// the output into contiguous ranges, and each bucket is then permuted
// uniformly and independently, so every interleaving and every
// within-bucket order is equally likely; summing over label vectors
// keeps the mixture uniform. Buckets larger than the cache cutoff are
// simply split again (the Rao-Sandelius recursion).

const (
	// fyCutoff is the segment size below which a plain Fisher-Yates is
	// used directly: 1<<16 8-byte items is half a MiB, comfortably
	// inside one core's L2, where FY's random accesses are cheap.
	fyCutoff = 1 << 16
	// maxBuckets caps the split fan-out so a label always fits a byte;
	// larger inputs recurse instead.
	maxBuckets = 256
)

// permuteFlat returns a uniformly shuffled copy of data. Labels are
// drawn chunk by chunk (chunks ~ the public Procs knob) with one RNG
// stream per chunk and one per bucket, so the result is deterministic in
// (seed, chunks, len(data)) and independent of the worker count.
// cutoff/maxK are fyCutoff/maxBuckets, parameterized so tests can force
// deep recursion on tiny inputs.
func permuteFlat[T any](data []T, chunks int, opt Options, cutoff, maxK int) ([]T, error) {
	n := len(data)
	if chunks < 1 {
		chunks = 1
	}

	if n <= cutoffLimit(cutoff) {
		// Too small to be worth scattering: one fused copy+shuffle.
		streams := xrand.NewStreams(opt.Seed, 1)
		out := make([]T, n)
		insideOut(streams[0], data, out)
		return out, nil
	}

	k := bucketCountFor(n, cutoff, maxK)
	streams := xrand.NewStreams(opt.Seed, chunks+k)
	// No phase is wider than max(chunks, k) tasks, so a larger pool
	// would only spawn idle workers (and their streams).
	pool := NewPoolCancel(min(opt.workers(), max(chunks, k)), opt.Seed, opt.Cancel)
	defer pool.Close()

	// Phase 1: i.i.d. bucket labels, generated per chunk so chunks can
	// run in parallel; counts[c][b] is the communication matrix.
	chunkSizes := evenBlocks(int64(n), chunks)
	chunkOff := make([]int64, chunks)
	var run int64
	for c, s := range chunkSizes {
		chunkOff[c] = run
		run += s
	}
	labels := make([]uint8, n)
	counts := make([][]int64, chunks)
	if err := pool.For(chunks, func(c int) {
		counts[c] = fillLabels(streams[c], labels[chunkOff[c]:chunkOff[c]+chunkSizes[c]], k)
	}); err != nil {
		return nil, err
	}

	// Phase 2: prefix sums over the matrix in bucket-major order turn
	// the counts into disjoint write offsets: bucket b's range holds
	// chunk 0's items first, then chunk 1's, and so on.
	bucketStart := make([]int64, k+1)
	for b := 0; b < k; b++ {
		bucketStart[b+1] = bucketStart[b]
		for c := 0; c < chunks; c++ {
			bucketStart[b+1] += counts[c][b]
		}
	}
	fill := make([][]int64, chunks)
	{
		next := append([]int64(nil), bucketStart[:k]...)
		for c := 0; c < chunks; c++ {
			fill[c] = append([]int64(nil), next...)
			for b := 0; b < k; b++ {
				next[b] += counts[c][b]
			}
		}
	}

	// Phase 3: scatter. Each (chunk, bucket) range is owned by exactly
	// one chunk, so concurrent writes never overlap. The per-chunk fill
	// cursors are copied into a fixed 256-slot array so the uint8 label
	// indexes it bounds-check-free; writes to each bucket's range stay
	// sequential (one cache-line-friendly stream per bucket), which is
	// what keeps the scatter prefetchable by the hardware stride
	// prefetchers despite the random bucket choice per item.
	out := make([]T, n)
	if err := pool.For(chunks, func(c int) {
		var f [maxBuckets]int64
		copy(f[:], fill[c])
		lab := labels[chunkOff[c] : chunkOff[c]+chunkSizes[c]]
		for i, v := range data[chunkOff[c] : chunkOff[c]+chunkSizes[c]] {
			b := lab[i]
			out[f[b]] = v
			f[b]++
		}
	}); err != nil {
		return nil, err
	}

	// Phase 4: local shuffle of every bucket, splitting again if a
	// bucket is still beyond the cache cutoff.
	if err := pool.For(k, func(b int) {
		refine(streams[chunks+b], out[bucketStart[b]:bucketStart[b+1]], cutoff, maxK)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// cutoffLimit adds an eighth of slack to the cache cutoff: a segment
// marginally over budget (n = 2^20 cut into 8 buckets of 2^17+1, say)
// should be Fisher-Yates'd directly, not pay a whole extra scatter
// level over a one-item overage.
func cutoffLimit(cutoff int) int { return cutoff + cutoff/8 }

// bucketCountFor picks the smallest power-of-two bucket count that
// brings the expected bucket size under the (slackened) cutoff, capped
// at maxK.
func bucketCountFor(n, cutoff, maxK int) int {
	limit := cutoffLimit(cutoff)
	k := 2
	for k < maxK && (n+k-1)/k > limit {
		k <<= 1
	}
	return k
}

// fillLabels fills lab with i.i.d. uniform labels in [0, k) - k is a
// power of two, so the labels are plain bit groups and one raw draw
// yields floor(64/bits) of them, rejection free - and returns the label
// histogram.
func fillLabels(rng *xrand.Xoshiro256, lab []uint8, k int) []int64 {
	bits := 1
	for 1<<bits < k {
		bits++
	}
	per := 64 / bits
	mask := uint64(k - 1)
	// Fixed-size histogram so the uint8 label indexes it with no bounds
	// check in the decode loop.
	var counts [maxBuckets]int64
	i := 0
	for i+per <= len(lab) {
		w := rng.Uint64()
		for t := 0; t < per; t++ {
			b := uint8(w & mask)
			w >>= uint(bits)
			lab[i] = b
			counts[b]++
			i++
		}
	}
	if i < len(lab) {
		w := rng.Uint64()
		for ; i < len(lab); i++ {
			b := uint8(w & mask)
			w >>= uint(bits)
			lab[i] = b
			counts[b]++
		}
	}
	return append([]int64(nil), counts[:k]...)
}

// refine shuffles seg uniformly in place: Fisher-Yates when it fits the
// cache budget, one more sequential scatter level otherwise.
func refine[T any](rng *xrand.Xoshiro256, seg []T, cutoff, maxK int) {
	if len(seg) <= cutoffLimit(cutoff) || len(seg) < 2 {
		shuffleX(rng, seg)
		return
	}
	k := bucketCountFor(len(seg), cutoff, maxK)
	labels := make([]uint8, len(seg))
	counts := fillLabels(rng, labels, k)
	start := make([]int64, k+1)
	fill := make([]int64, k)
	for b := 0; b < k; b++ {
		start[b+1] = start[b] + counts[b]
		fill[b] = start[b]
	}
	tmp := make([]T, len(seg))
	for i, v := range seg {
		b := labels[i]
		tmp[fill[b]] = v
		fill[b]++
	}
	copy(seg, tmp)
	for b := 0; b < k; b++ {
		refine(rng, seg[start[b]:start[b+1]], cutoff, maxK)
	}
}

// insideOut writes a uniformly shuffled copy of src into dst (inside-out
// Fisher-Yates, fusing the copy with the shuffle): dst[i] takes the
// value displaced from a uniform position j <= i, so src is untouched.
// Like shuffleX it runs on block-prefetched raw words, consuming them in
// exact stream order — including Intn's power-of-two mask special case,
// so the output stays byte-identical to the per-draw reference.
func insideOut[T any](rng *xrand.Xoshiro256, src, dst []T) {
	if len(src) == 0 {
		return
	}
	dst[0] = src[0]
	var buf [fyBatch]uint64
	i := 1
	for i < len(src) {
		have := min(fyBatch, len(src)-i)
		rng.Fill(buf[:have])
		used := 0
		for used < have {
			bound := uint64(i + 1)
			w := buf[used]
			used++
			var j int
			if bound&(bound-1) == 0 {
				j = int(w & (bound - 1))
			} else {
				hi, lo := bits.Mul64(w, bound)
				if lo < bound {
					thresh := -bound % bound
					for lo < thresh {
						if used == have {
							rng.Fill(buf[:1])
							used, have = 0, 1
						}
						hi, lo = bits.Mul64(buf[used], bound)
						used++
					}
				}
				j = int(hi)
			}
			dst[i] = dst[j]
			dst[j] = src[i]
			i++
		}
	}
}
