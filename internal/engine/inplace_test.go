package engine

import (
	"testing"

	"randperm/internal/stats"
	"randperm/internal/xrand"
)

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 8: 8, 9: 16, 1000: 1024}
	for n, want := range cases {
		if got := ceilPow2(n); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestShuffleInPlaceValidity checks the in-place result is a permutation
// across block counts (including non-powers of two, which round up),
// worker counts, and sizes that hit both the direct-FY guard and the
// full merge tree.
func TestShuffleInPlaceValidity(t *testing.T) {
	for _, blocks := range []int{1, 2, 3, 8, 64} {
		for _, w := range []int{0, 1, 4} {
			for _, n := range []int{0, 1, 7, 1000} {
				data := iota64(n)
				if err := ShuffleInPlace(data, blocks, Options{Seed: 3, Workers: w}); err != nil {
					t.Fatal(err)
				}
				seen := make([]bool, n)
				for _, v := range data {
					if seen[v] {
						t.Fatalf("blocks=%d w=%d n=%d: duplicate %d", blocks, w, n, v)
					}
					seen[v] = true
				}
			}
		}
	}
	if err := ShuffleInPlace(iota64(10), 0, Options{}); err == nil {
		t.Error("no error for non-positive block count")
	}
}

// TestShuffleInPlaceDeterministic: randomness is bound to merge-tree
// nodes, so the exact output must be independent of the worker count —
// the same scheduling-independence contract as the scatter engine.
func TestShuffleInPlaceDeterministic(t *testing.T) {
	var ref []int64
	for _, w := range []int{1, 2, 4, 13} {
		data := iota64(4096)
		if err := ShuffleInPlace(data, 16, Options{Seed: 99, Workers: w}); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = data
			continue
		}
		for i := range ref {
			if data[i] != ref[i] {
				t.Fatalf("workers=%d diverged at index %d", w, i)
			}
		}
	}
}

// TestShuffleInPlaceDeepTree forces a deep merge tree (32 blocks over
// 10k items, 5 merge rounds) under real concurrency, so `go test -race`
// exercises concurrent leaf shuffles and every merge round.
func TestShuffleInPlaceDeepTree(t *testing.T) {
	data := iota64(10000)
	if err := ShuffleInPlace(data, 32, Options{Seed: 5, Workers: 4}); err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(data))
	for _, v := range data {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
}

// TestShuffleInPlaceUniform chi-squares the full pipeline at the
// smallest size that exercises a real merge (n=4, b=2: two 2-item leaf
// shuffles plus one merge): all 4! permutations must be equally likely.
func TestShuffleInPlaceUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	const n = 4
	const trials = 24000
	nf := stats.Factorial(n)
	for _, blocks := range []int{2, 4} {
		counts := make([]int64, nf)
		for tr := 0; tr < trials; tr++ {
			data := iota64(n)
			if err := ShuffleInPlace(data, blocks, Options{
				Seed:    uint64(tr)*0x9E3779B97F4A7C15 + 9,
				Workers: 2,
			}); err != nil {
				t.Fatal(err)
			}
			counts[stats.RankPermInt64(data)]++
		}
		res, err := stats.ChiSquareUniform(counts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject(0.0005) {
			t.Errorf("blocks=%d: in-place shuffle non-uniform, %s", blocks, res)
		}
	}
}

// TestMergeShuffleUniform pins the merge itself to Lemma 1 of the
// MergeShuffle paper: merging two independently uniformly shuffled runs
// must yield a uniformly shuffled whole, including ragged splits.
func TestMergeShuffleUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	const n = 4
	const trials = 24000
	nf := stats.Factorial(n)
	for _, mid := range []int{1, 2, 3} {
		counts := make([]int64, nf)
		for tr := 0; tr < trials; tr++ {
			rng := xrand.NewXoshiro256(uint64(tr)*0x9E3779B97F4A7C15 + 17)
			a := iota64(n)
			shuffleX(rng, a[:mid])
			shuffleX(rng, a[mid:])
			mergeShuffle(rng, a, mid)
			counts[stats.RankPermInt64(a)]++
		}
		res, err := stats.ChiSquareUniform(counts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject(0.0005) {
			t.Errorf("mid=%d: merge non-uniform, %s", mid, res)
		}
	}
}

// TestMergeShufflePositionUniform exercises the branchless word-at-a-time
// fast path (it only engages when both runs hold >= 64 items): after
// merging two uniformly shuffled 128-item runs, every item is equally
// likely to land at every position, so the final position of item 0 must
// be uniform over [0, 256). The full-permutation chi-square above cannot
// reach this size; the marginal catches gross fast-path bias (wrong bit
// order, off-by-one in the exhaustion guard).
func TestMergeShufflePositionUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	const n = 256
	const trials = 51200
	counts := make([]int64, n)
	for tr := 0; tr < trials; tr++ {
		rng := xrand.NewXoshiro256(uint64(tr)*0x9E3779B97F4A7C15 + 29)
		a := iota64(n)
		shuffleX(rng, a[:n/2])
		shuffleX(rng, a[n/2:])
		mergeShuffle(rng, a, n/2)
		for pos, v := range a {
			if v == 0 {
				counts[pos]++
				break
			}
		}
	}
	res, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.0005) {
		t.Errorf("item-0 position non-uniform after fast-path merge: %s", res)
	}
}

// TestMergeShuffleDegenerate: empty runs must still terminate and leave
// a uniform (trivially, any) permutation behind.
func TestMergeShuffleDegenerate(t *testing.T) {
	for _, mid := range []int{0, 5} {
		a := iota64(5)
		mergeShuffle(xrand.NewXoshiro256(1), a, mid)
		seen := make([]bool, len(a))
		for _, v := range a {
			if seen[v] {
				t.Fatalf("mid=%d: duplicate %d", mid, v)
			}
			seen[v] = true
		}
	}
	mergeShuffle(xrand.NewXoshiro256(1), []int64{}, 0)
}

// TestPermuteSliceInPlace: the copying form must not modify its input.
func TestPermuteSliceInPlace(t *testing.T) {
	data := iota64(500)
	out, err := PermuteSliceInPlace(data, 8, Options{Seed: 21, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range data {
		if v != int64(i) {
			t.Fatalf("input modified at %d", i)
		}
	}
	seen := make([]bool, len(data))
	for _, v := range out {
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
	}
}

// TestPermuteBlocksInPlace: redistribution via flatten + in-place
// shuffle + split, with the same validation surface as the scatter
// engine's block form.
func TestPermuteBlocksInPlace(t *testing.T) {
	blocks := split(iota64(100), []int64{40, 1, 9, 50})
	target := []int64{10, 60, 0, 30}
	out, err := PermuteBlocksInPlace(blocks, target, Options{Seed: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 100)
	for j, b := range out {
		if int64(len(b)) != target[j] {
			t.Fatalf("block %d has %d items, want %d", j, len(b), target[j])
		}
		for _, v := range b {
			if seen[v] {
				t.Fatalf("duplicate %d", v)
			}
			seen[v] = true
		}
	}
	var next int64
	for i, b := range blocks {
		for k, v := range b {
			if v != next {
				t.Fatalf("input block %d modified at %d", i, k)
			}
			next++
		}
	}
	if _, err := PermuteBlocksInPlace[int64](nil, nil, Options{}); err == nil {
		t.Error("no error for zero blocks")
	}
	if _, err := PermuteBlocksInPlace([][]int64{{1, 2}}, []int64{3}, Options{}); err == nil {
		t.Error("no error for mismatched totals")
	}
	if _, err := PermuteBlocksInPlace([][]int64{{1, 2}}, []int64{3, -1}, Options{}); err == nil {
		t.Error("no error for negative target size")
	}
}
