package engine

import (
	"strings"
	"testing"

	"randperm/internal/commat"
	"randperm/internal/stats"
	"randperm/internal/xrand"
)

func iota64(n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(i)
	}
	return v
}

func split(data []int64, sizes []int64) [][]int64 {
	blocks := make([][]int64, len(sizes))
	var off int64
	for i, s := range sizes {
		blocks[i] = data[off : off+s]
		off += s
	}
	return blocks
}

func TestBackendString(t *testing.T) {
	if Sim.String() != "sim" || SharedMem.String() != "shmem" || InPlace.String() != "inplace" {
		t.Fatalf("bad names: %v %v %v", Sim, SharedMem, InPlace)
	}
	if !strings.Contains(Backend(9).String(), "9") {
		t.Fatalf("bad unknown name: %v", Backend(9))
	}
	for _, s := range []string{"sim", "shmem", "sharedmem", "inplace", "mergeshuffle"} {
		if _, ok := ParseBackend(s); !ok {
			t.Errorf("ParseBackend(%q) failed", s)
		}
	}
	if _, ok := ParseBackend("gpu"); ok {
		t.Error("ParseBackend accepted garbage")
	}
}

func TestScatterStarts(t *testing.T) {
	// 2x3 matrix with row sums {3, 4} and column sums {2, 1, 4}.
	a := commat.New(2, 3)
	copy(a.Row(0), []int64{1, 0, 2})
	copy(a.Row(1), []int64{1, 1, 2})
	colOff := []int64{0, 2, 3}
	st := scatterStarts(a, colOff)
	want := [][]int64{{0, 2, 3}, {1, 2, 5}}
	for i := range want {
		for j := range want[i] {
			if st[i][j] != want[i][j] {
				t.Fatalf("starts[%d][%d] = %d, want %d", i, j, st[i][j], want[i][j])
			}
		}
	}
}

// TestPermuteBlocksValidity checks the output is a rearrangement for
// ragged layouts, shape changes, empty blocks, and blocks > items, under
// real concurrency (so `go test -race` exercises the scatter).
func TestPermuteBlocksValidity(t *testing.T) {
	cases := []struct {
		name     string
		inSizes  []int64
		outSizes []int64
	}{
		{"even", []int64{25, 25, 25, 25}, []int64{25, 25, 25, 25}},
		{"ragged", []int64{40, 1, 9, 50}, []int64{10, 60, 0, 30}},
		{"shape-change", []int64{50, 50}, []int64{20, 20, 20, 20, 20}},
		{"empty-blocks", []int64{0, 0, 7, 0}, []int64{0, 7, 0, 0}},
		{"single", []int64{100}, []int64{100}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var n int64
			for _, s := range c.inSizes {
				n += s
			}
			data := iota64(int(n))
			out, err := PermuteBlocks(split(data, c.inSizes), c.outSizes, Options{Workers: 4, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			seen := make([]bool, n)
			var total int64
			for j, b := range out {
				if int64(len(b)) != c.outSizes[j] {
					t.Fatalf("block %d has %d items, want %d", j, len(b), c.outSizes[j])
				}
				for _, v := range b {
					if seen[v] {
						t.Fatalf("duplicate value %d", v)
					}
					seen[v] = true
					total++
				}
			}
			if total != n {
				t.Fatalf("%d items out, want %d", total, n)
			}
		})
	}
}

func TestPermuteSliceValidity(t *testing.T) {
	for _, blocks := range []int{0, 1, 3, 16, 2000} {
		data := iota64(1000)
		out, err := PermuteSlice(data, blocks, Options{Seed: 7, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, len(data))
		for _, v := range out {
			if seen[v] {
				t.Fatalf("blocks=%d: duplicate %d", blocks, v)
			}
			seen[v] = true
		}
		for i, v := range data {
			if v != int64(i) {
				t.Fatalf("blocks=%d: input modified at %d", blocks, i)
			}
		}
	}
}

// TestDeterministicAcrossWorkers is the key scheduling-independence
// property: randomness is bound to blocks, so the exact output must not
// depend on the worker count.
func TestDeterministicAcrossWorkers(t *testing.T) {
	sizes := []int64{17, 0, 41, 22, 20}
	var ref [][]int64
	for _, w := range []int{1, 2, 4, 13} {
		out, err := PermuteBlocks(split(iota64(100), sizes), sizes, Options{Workers: w, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = out
			continue
		}
		for j := range ref {
			for k := range ref[j] {
				if out[j][k] != ref[j][k] {
					t.Fatalf("workers=%d diverged at block %d index %d", w, j, k)
				}
			}
		}
	}
}

func TestBucketCountFor(t *testing.T) {
	cases := []struct{ n, cutoff, maxK, want int }{
		{1000000, 1 << 17, 256, 8},
		{200000, 1 << 17, 256, 2},
		{100 << 20, 1 << 17, 256, 256},
		{10, 2, 4, 4},
	}
	for _, c := range cases {
		if got := bucketCountFor(c.n, c.cutoff, c.maxK); got != c.want {
			t.Errorf("bucketCountFor(%d, %d, %d) = %d, want %d", c.n, c.cutoff, c.maxK, got, c.want)
		}
	}
}

func TestFillLabels(t *testing.T) {
	for _, k := range []int{2, 8, 64, 256} {
		lab := make([]uint8, 1000)
		counts := fillLabels(xrand.NewXoshiro256(5), lab, k)
		var sum int64
		for b, c := range counts {
			if c < 0 {
				t.Fatalf("k=%d: negative count at %d", k, b)
			}
			sum += c
		}
		if sum != int64(len(lab)) {
			t.Fatalf("k=%d: counts sum to %d, want %d", k, sum, len(lab))
		}
		for i, l := range lab {
			if int(l) >= k {
				t.Fatalf("k=%d: label %d out of range at %d", k, l, i)
			}
		}
	}
}

// TestPermuteFlatDeepRecursion forces the scatter path and the
// Rao-Sandelius recursion with tiny cutoffs and checks validity plus
// worker-schedule independence.
func TestPermuteFlatDeepRecursion(t *testing.T) {
	data := iota64(5000)
	var ref []int64
	for _, w := range []int{1, 4, 9} {
		out, err := permuteFlat(data, 4, Options{Workers: w, Seed: 77}, 64, 8)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, len(data))
		for _, v := range out {
			if seen[v] {
				t.Fatalf("workers=%d: duplicate %d", w, v)
			}
			seen[v] = true
		}
		if ref == nil {
			ref = out
			continue
		}
		for i := range ref {
			if out[i] != ref[i] {
				t.Fatalf("workers=%d diverged at %d", w, i)
			}
		}
	}
}

// TestPermuteFlatUniform chi-squares the scatter path (cutoff forced
// tiny so the label/bucket machinery, not the small-input Fisher-Yates,
// produces the result).
func TestPermuteFlatUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	const n = 4
	const trials = 24000
	nf := stats.Factorial(n)
	for _, maxK := range []int{2, 4} {
		counts := make([]int64, nf)
		for tr := 0; tr < trials; tr++ {
			out, err := permuteFlat(iota64(n), 2, Options{
				Workers: 2,
				Seed:    uint64(tr)*0x9E3779B97F4A7C15 + 3,
			}, 2, maxK)
			if err != nil {
				t.Fatal(err)
			}
			counts[stats.RankPermInt64(out)]++
		}
		res, err := stats.ChiSquareUniform(counts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject(0.0005) {
			t.Errorf("maxK=%d: scatter path non-uniform, %s", maxK, res)
		}
	}
}

func TestPermuteBlocksErrors(t *testing.T) {
	if _, err := PermuteBlocks[int64](nil, nil, Options{}); err == nil {
		t.Error("no error for zero blocks")
	}
	if _, err := PermuteBlocks([][]int64{{1, 2}}, []int64{3}, Options{}); err == nil {
		t.Error("no error for mismatched totals")
	}
	if _, err := PermuteBlocks([][]int64{{1, 2}}, []int64{3, -1}, Options{}); err == nil {
		t.Error("no error for negative target size")
	}
}

// TestPermuteBlocksUniform is the engine-level version of experiment E5:
// all n! permutations must be equally likely, including across a shape
// change.
func TestPermuteBlocksUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	const n = 4
	const trials = 24000
	nf := stats.Factorial(n)
	layouts := []struct{ in, out []int64 }{
		{[]int64{2, 2}, []int64{2, 2}},
		{[]int64{3, 1}, []int64{1, 3}},
		{[]int64{1, 1, 2}, []int64{4}},
	}
	for _, lay := range layouts {
		counts := make([]int64, nf)
		for tr := 0; tr < trials; tr++ {
			out, err := PermuteBlocks(split(iota64(n), lay.in), lay.out, Options{
				Workers: 2,
				Seed:    uint64(tr)*0x9E3779B97F4A7C15 + 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			var flat []int64
			for _, b := range out {
				flat = append(flat, b...)
			}
			counts[stats.RankPermInt64(flat)]++
		}
		res, err := stats.ChiSquareUniform(counts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject(0.0005) {
			t.Errorf("layout=%v: non-uniform, %s", lay, res)
		}
	}
}

// TestRouteBlockUniformSubsets pins the fused scatter pass to Algorithm
// 1's requirement: conditioned on the matrix row, the set of items a
// source block sends to each target must be a uniformly random subset.
// Routing 5 items through row {2, 3}, each of the C(5,2) = 10 possible
// target-0 subsets must be equally likely.
func TestRouteBlockUniformSubsets(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	const n = 5
	const trials = 24000
	row := []int64{2, 3}
	starts := []int64{0, 2}
	counts := make([]int64, 10)
	for tr := 0; tr < trials; tr++ {
		flat := make([]int64, n)
		routeBlock(xrand.NewXoshiro256(uint64(tr)+1), iota64(n), row, starts, flat)
		counts[stats.RankCombInt64(flat[0:2], n)]++
	}
	res, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.0005) {
		t.Errorf("routeBlock target subsets non-uniform: %s", res)
	}
}

// TestXoshiroBoundedMethodsMatch pins the concrete bounded-draw methods
// used by the hot loops to the interface-based free functions.
func TestXoshiroBoundedMethodsMatch(t *testing.T) {
	a, b := xrand.NewXoshiro256(3), xrand.NewXoshiro256(3)
	for n := uint64(1); n < 2000; n += 17 {
		if got, want := a.Uint64n(n), xrand.Uint64n(b, n); got != want {
			t.Fatalf("Uint64n(%d): method %d != function %d", n, got, want)
		}
		if got, want := a.Intn(int(n)), xrand.Intn(b, int(n)); got != want {
			t.Fatalf("Intn(%d): method %d != function %d", n, got, want)
		}
		if got, want := a.Int64n(int64(n)), xrand.Int64n(b, int64(n)); got != want {
			t.Fatalf("Int64n(%d): method %d != function %d", n, got, want)
		}
	}
}
