package engine

import (
	"fmt"
	"math/bits"
	"runtime"

	"randperm/internal/commat"
	"randperm/internal/xrand"
)

// Options configures the shared-memory backend.
type Options struct {
	// Workers caps the OS-level concurrency; <= 0 means GOMAXPROCS.
	// The permutation distribution and the exact output are independent
	// of Workers: randomness is bound to blocks, not to workers.
	Workers int
	// Seed drives all randomness; every block derives its own
	// jump-separated stream from it, so results are reproducible.
	Seed uint64
	// Rounds overrides the Feistel depth of the bijective paths
	// (<= 0 means the default, bijectiveRounds). Every other backend
	// ignores it. Changing Rounds selects a different keyed family:
	// outputs are versioned by (Seed, Rounds), see bijective.go.
	Rounds int
	// Cancel, when non-nil, aborts the run early once closed: worker
	// pools stop claiming tasks and the engine call returns ErrCanceled
	// (mapped to the caller's context error by the randperm layer). It
	// cannot affect any byte of a run that completes — cancellation is
	// checked only between tasks, and a canceled run returns no output
	// at all. A nil channel (the zero value) disables cancellation.
	Cancel <-chan struct{}
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// PermuteBlocks permutes block-distributed items into target blocks of
// the given sizes so that every global permutation is equally likely -
// the same decomposition as the paper's Algorithm 1, executed directly
// on shared memory:
//
//  1. the communication matrix is sampled once from its exact
//     distribution (Algorithm 3, O(p*p') work - negligible against n
//     under the paper's coarseness assumption p <= sqrt(n)), and its
//     column-wise prefix sums become write offsets that partition the
//     output slice into one disjoint range per (source, target) pair;
//  2. workers scatter the items of each source block straight into
//     those ranges (routeBlock, one pass, data-race-free by
//     construction since the ranges never overlap);
//  3. every target block of the output is shuffled in place with its
//     own RNG stream, in parallel.
//
// The input blocks are not modified. The returned blocks alias one
// freshly allocated backing slice. The result is deterministic in
// (Seed, block layout) and independent of Options.Workers.
func PermuteBlocks[T any](in [][]T, outSizes []int64, opt Options) ([][]T, error) {
	_, out, err := permute(in, outSizes, opt)
	return out, err
}

// defaultChunks is the label-chunk count PermuteSlice falls back to: a
// fixed value (not GOMAXPROCS) so the fallback stays deterministic
// across machines and worker settings, with enough chunks to feed any
// reasonable core count.
const defaultChunks = 16

// PermuteSlice is the flat form: with no prescribed output layout the
// exact fixed-margin matrix of PermuteBlocks degenerates to free
// multinomial margins, so the engine runs the k-way scatter shuffle of
// flatscatter.go with cache-sized buckets instead. `chunks` (<= 0 means
// defaultChunks) sets the label-generation decomposition, the analog of
// the source-block count: the result is deterministic in (Seed, chunks,
// len(data)) and independent of Options.Workers. The input is not
// modified; a freshly allocated slice is returned.
func PermuteSlice[T any](data []T, chunks int, opt Options) ([]T, error) {
	if chunks <= 0 {
		chunks = defaultChunks
	}
	return permuteFlat(data, chunks, opt, fyCutoff, maxBuckets)
}

// permute is the shared implementation: it returns both the flat backing
// slice and its partition into target blocks.
func permute[T any](in [][]T, outSizes []int64, opt Options) ([]T, [][]T, error) {
	p, pp := len(in), len(outSizes)
	if p == 0 {
		return nil, nil, fmt.Errorf("engine: need at least one input block")
	}
	rowM := make([]int64, p)
	var n int64
	for i, b := range in {
		rowM[i] = int64(len(b))
		n += rowM[i]
	}
	var outN int64
	for _, s := range outSizes {
		if s < 0 {
			return nil, nil, fmt.Errorf("engine: negative target block size %d", s)
		}
		outN += s
	}
	if n != outN {
		return nil, nil, fmt.Errorf("engine: source total %d != target total %d", n, outN)
	}

	// Stream 0 samples the matrix; streams 1..p route the source
	// blocks, streams p+1..p+pp shuffle the target blocks. Binding
	// streams to blocks (not workers) makes the output independent of
	// the worker schedule.
	streams := xrand.NewStreams(opt.Seed, 1+p+pp)
	// No phase is wider than max(p, pp) tasks, so a larger pool would
	// only spawn idle workers (and their streams).
	pool := NewPoolCancel(min(opt.workers(), max(p, pp)), opt.Seed, opt.Cancel)
	defer pool.Close()

	// Phase 1: one exact communication-matrix sample plus the prefix
	// sums that turn it into disjoint scatter ranges. The range
	// [starts[i][j], starts[i][j]+a[i][j]) is owned exclusively by
	// source i, so phase 2's writes never overlap.
	a := commat.SampleSeq(streams[0], rowM, outSizes)
	colOff := make([]int64, pp)
	var run int64
	for j, s := range outSizes {
		colOff[j] = run
		run += s
	}
	starts := scatterStarts(a, colOff)

	// Phase 2: scatter every source block straight into the output
	// (the paper's phases 1 and 3 fused into a single pass, see
	// routeBlock).
	flat := make([]T, n)
	if err := pool.For(p, func(i int) {
		routeBlock(streams[1+i], in[i], a.Row(i), starts[i], flat)
	}); err != nil {
		return nil, nil, err
	}

	// Phase 3: uniform local permutation of each target block, mixing
	// the contributions of all sources (the paper's phase 4).
	out := make([][]T, pp)
	if err := pool.For(pp, func(j int) {
		blk := flat[colOff[j] : colOff[j]+outSizes[j] : colOff[j]+outSizes[j]]
		shuffleX(streams[1+p+j], blk)
		out[j] = blk
	}); err != nil {
		return nil, nil, err
	}
	return flat, out, nil
}

// routeBlock scatters the items of one source block into its disjoint
// target ranges of the shared output. A uniformly random arrangement of
// the label multiset {j repeated row[j] times} decides which target each
// consecutive item goes to: conditioned on the matrix row, every way of
// choosing which items land in which target is then equally likely - the
// same law as Algorithm 1's "shuffle the block uniformly, then send
// consecutive segments", but with a cheap Fisher-Yates on the compact
// label array instead of moving the items twice. The item order within a
// target range preserves source order; the subsequent shuffle of the
// whole target block makes that irrelevant.
func routeBlock[T any](rng *xrand.Xoshiro256, src []T, row, starts []int64, flat []T) {
	if len(src) == 0 {
		return
	}
	labels := ArrangeRow(rng, row)
	fill := append([]int64(nil), starts...)
	for i, v := range src {
		j := labels[i]
		flat[fill[j]] = v
		fill[j]++
	}
}

// fyBatch is the word-block size of the batched Fisher-Yates loops: 4
// KiB of raw draws, enough to amortize the Fill call and keep the
// reduction loop free of generator work, small enough to stay in L1
// alongside the segment being shuffled.
const fyBatch = 512

// shuffleX is xrand.Shuffle on the concrete generator, restructured
// around batch RNG generation: a block of raw xoshiro words is
// prefetched into a stack buffer with rng.Fill, then the Lemire bounded
// reductions (see xrand.Uint64n) and swaps run in a tight second loop
// with no generator state in the dependency chain. The words are
// consumed strictly in stream order — one per placement, plus any
// rejection re-draws taking the next buffered word, exactly as the
// serial loop would draw them — so the output is byte-identical to the
// one-draw-at-a-time reference for every (seed, len) (pinned by
// TestShuffleXMatchesSerialReference).
func shuffleX[T any](rng *xrand.Xoshiro256, x []T) {
	var buf [fyBatch]uint64
	i := len(x) - 1
	for i > 0 {
		// Each placement consumes at least one word, so a block of
		// min(fyBatch, i) words never overdraws the stream.
		have := min(fyBatch, i)
		rng.Fill(buf[:have])
		used := 0
		for used < have {
			bound := uint64(i + 1)
			hi, lo := bits.Mul64(buf[used], bound)
			used++
			if lo < bound {
				thresh := -bound % bound
				for lo < thresh {
					if used == have {
						// Buffer dry mid-rejection (astronomically rare
						// for any realistic bound): pull the next stream
						// word, keeping the draw order intact.
						rng.Fill(buf[:1])
						used, have = 0, 1
					}
					hi, lo = bits.Mul64(buf[used], bound)
					used++
				}
			}
			x[i], x[int(hi)] = x[int(hi)], x[i]
			i--
		}
	}
}

// scatterStarts converts the communication matrix into absolute write
// offsets: starts[i][j] is where source i's items for target j begin in
// the flat output. Within target j's range (beginning at colOff[j]) the
// sources are laid out in rank order, so the per-(i,j) ranges partition
// the output slice.
func scatterStarts(a *commat.Matrix, colOff []int64) [][]int64 {
	fill := append([]int64(nil), colOff...)
	starts := make([][]int64, a.Rows())
	for i := range starts {
		row := a.Row(i)
		st := make([]int64, len(row))
		for j, v := range row {
			st[j] = fill[j]
			fill[j] += v
		}
		starts[i] = st
	}
	return starts
}

// evenBlocks splits n items into p sizes as evenly as possible, the same
// layout as core.EvenBlocks (which this package cannot import).
func evenBlocks(n int64, p int) []int64 {
	sizes := make([]int64, p)
	base, rem := n/int64(p), n%int64(p)
	for i := range sizes {
		sizes[i] = base
		if int64(i) < rem {
			sizes[i]++
		}
	}
	return sizes
}
