// Native fuzz targets for the bijective backend's core algebra. CI runs
// a short -fuzztime smoke; longer local runs:
//
//	go test -run='^$' -fuzz=FuzzBijectionIndexInverse -fuzztime=60s ./internal/engine
package engine

import "testing"

// FuzzBijectionIndexInverse: for arbitrary (n, seed, i) the keyed
// bijection must stay inside its domain and invert exactly —
// Inverse(Index(i)) == i and Index(Inverse(i)) == i. These two
// invariants are the whole correctness story of the O(1)-memory
// backend: together they say Index is a permutation of [0, n), which is
// what lets permd serve 2^40-element domains without materializing
// anything. The bijection holds O(1) state, so the fuzzer can roam the
// full int64 range of n for free.
func FuzzBijectionIndexInverse(f *testing.F) {
	f.Add(int64(1), uint64(0), int64(0))
	f.Add(int64(2), uint64(42), int64(1))
	f.Add(int64(1000), uint64(7), int64(999))
	f.Add(int64(1)<<40, uint64(99999), int64(123456789))
	f.Add(int64(3)<<61, uint64(1), int64(5)<<59)
	f.Fuzz(func(t *testing.T, n int64, seed uint64, i int64) {
		if n <= 0 {
			return // NewBijection panics on negative n by contract
		}
		// Fold i into the domain so every mutation exercises the maps
		// (two steps: (i%n)+n can overflow int64 when n > MaxInt64/2).
		if i %= n; i < 0 {
			i += n
		}
		b := NewBijection(n, seed)
		y := b.Index(i)
		if y < 0 || y >= n {
			t.Fatalf("Index(%d) = %d outside [0, %d)", i, y, n)
		}
		if back := b.Inverse(y); back != i {
			t.Fatalf("Inverse(Index(%d)) = %d (n=%d seed=%d)", i, back, n, seed)
		}
		x := b.Inverse(i)
		if x < 0 || x >= n {
			t.Fatalf("Inverse(%d) = %d outside [0, %d)", i, x, n)
		}
		if back := b.Index(x); back != i {
			t.Fatalf("Index(Inverse(%d)) = %d (n=%d seed=%d)", i, back, n, seed)
		}
	})
}
