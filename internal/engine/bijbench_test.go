package engine

import (
	"fmt"
	"testing"
)

// BenchmarkBijectionChunk measures the batch evaluator alone (no gather,
// no pool): ns/op divided by the chunk length is the per-index Feistel
// cost. The two sizes pin both walk regimes: 1<<20 is superdomain ==
// domain (no cycle-walk), 1e6 walks ~4.6% of lanes.
func BenchmarkBijectionChunk(b *testing.B) {
	for _, n := range []int64{1 << 20, 1_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			bij := NewBijection(n, 42)
			dst := make([]int64, 1<<14)
			b.SetBytes(int64(len(dst)) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bij.Chunk(dst, 0)
			}
		})
	}
}

// BenchmarkBijectionChunkRounds sweeps the Feistel depth at a fixed
// domain: the per-index cost is linear in rounds, and this sweep is the
// source of the reduced-round budget table in BENCHMARKS.md.
func BenchmarkBijectionChunkRounds(b *testing.B) {
	for _, rounds := range []int{4, 6, 8, 12} {
		b.Run(fmt.Sprintf("rounds=%d", rounds), func(b *testing.B) {
			bij := NewBijectionRounds(1_000_000, 42, rounds)
			dst := make([]int64, 1<<14)
			b.SetBytes(int64(len(dst)) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bij.Chunk(dst, 0)
			}
		})
	}
}

// BenchmarkBijectionIndex is the serial evaluator, for the speedup ratio.
func BenchmarkBijectionIndex(b *testing.B) {
	bij := NewBijection(1_000_000, 42)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += bij.Index(int64(i) % 1_000_000)
	}
	_ = sink
}
