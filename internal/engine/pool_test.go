package engine

import (
	"strings"
	"sync/atomic"
	"testing"

	"randperm/internal/xrand"
)

// TestPoolFor checks the basic parallel-for contract: every index runs
// exactly once, at every worker count, including n smaller and much
// larger than the pool.
func TestPoolFor(t *testing.T) {
	for _, w := range []int{1, 2, 4, 13} {
		pool := NewPool(w, 1)
		if pool.Workers() != w {
			t.Fatalf("Workers() = %d, want %d", pool.Workers(), w)
		}
		for _, n := range []int{0, 1, w - 1, 100} {
			if n < 0 {
				continue
			}
			hits := make([]atomic.Int64, n)
			if err := pool.For(n, func(i int) { hits[i].Add(1) }); err != nil {
				t.Fatal(err)
			}
			for i := range hits {
				if c := hits[i].Load(); c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", w, n, i, c)
				}
			}
		}
		pool.Close()
	}
}

// TestPoolPanic pins the panic contract inherited from the old transient
// parallelFor: a panicking task surfaces as an error naming the task,
// the remaining tasks still run, and — the new pool-specific part — the
// worker goroutines survive, so the same pool is reusable for the next
// phase.
func TestPoolPanic(t *testing.T) {
	for _, w := range []int{1, 4} {
		pool := NewPool(w, 1)
		var ran atomic.Int64
		err := pool.For(8, func(i int) {
			if i == 3 {
				panic("boom")
			}
			ran.Add(1)
		})
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("workers=%d: got %v, want captured panic", w, err)
		}
		if ran.Load() != 7 {
			t.Fatalf("workers=%d: %d tasks ran after panic, want 7", w, ran.Load())
		}
		// The pool must still work: a panic kills the task, not the worker.
		if err := pool.For(4, func(int) {}); err != nil {
			t.Fatalf("workers=%d: pool unusable after panic: %v", w, err)
		}
		pool.Close()
	}
}

// TestPoolWorkerStreams: each worker owns a private long-jump-separated
// stream. With one worker the schedule is trivial, so ForRNG draws are
// reproducible and must match xrand.NewLongStreams directly; with many
// workers the draws must come from distinct generator states (no stream
// is ever shared between concurrent tasks).
func TestPoolWorkerStreams(t *testing.T) {
	pool := NewPool(1, 42)
	var got [4]uint64
	if err := pool.ForRNG(4, func(i int, rng *xrand.Xoshiro256) {
		got[i] = rng.Uint64()
	}); err != nil {
		t.Fatal(err)
	}
	pool.Close()
	want := xrand.NewLongStreams(42, 1)[0]
	for i, v := range got {
		if w := want.Uint64(); v != w {
			t.Fatalf("draw %d: got %d, want %d from the worker's long stream", i, v, w)
		}
	}

	// Multi-worker: first draw per executing worker must be one of the
	// distinct per-worker stream heads, never a duplicate state.
	const workers = 4
	heads := map[uint64]bool{}
	for _, s := range xrand.NewLongStreams(42, workers) {
		heads[s.Uint64()] = true
	}
	if len(heads) != workers {
		t.Fatalf("worker stream heads collide: %d distinct of %d", len(heads), workers)
	}
	pool = NewPool(workers, 42)
	defer pool.Close()
	seen := make([]uint64, 64)
	if err := pool.ForRNG(len(seen), func(i int, rng *xrand.Xoshiro256) {
		seen[i] = rng.Uint64()
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range seen {
		for k := i + 1; k < len(seen); k++ {
			if seen[k] == v {
				t.Fatalf("tasks %d and %d drew identical values %d: stream shared or reused", i, k, v)
			}
		}
	}
}

// TestPoolStreamsDisjointFromAlgorithm: the pool's worker streams
// (long-jump family) must not collide with the per-block algorithm
// streams (jump family) derived from the same seed — the property that
// lets an engine call reuse one seed for both.
func TestPoolStreamsDisjointFromAlgorithm(t *testing.T) {
	const seed = 7
	blockHeads := map[uint64]bool{}
	for _, s := range xrand.NewStreams(seed, 64) {
		blockHeads[s.Uint64()] = true
	}
	for i, s := range xrand.NewLongStreams(seed, 16) {
		if blockHeads[s.Uint64()] {
			t.Fatalf("worker stream %d head collides with a block stream head", i)
		}
	}
}
