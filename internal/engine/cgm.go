package engine

import (
	"fmt"

	"randperm/internal/xrand"
)

// This file is the coarse-grained-multicomputer (CGM) form of the
// scatter engine: the exact fixed-margin decomposition of PermuteBlocks
// applied to a flat slice through an even block layout. It exists so
// that one permutation law can be computed in two places and agree byte
// for byte:
//
//   - in process, by PermuteSliceCGM below (the BackendCluster path of
//     the public API), and
//   - across machines, by internal/cluster, where each node replays
//     only its own rows and columns of the same decomposition and the
//     item movement becomes a real h-relation over HTTP.
//
// The distributable pieces — the label arrangement of one source block
// and the in-place arrangement of one target block — are exported here
// (ArrangeRow, LocalShuffle) rather than reimplemented in the cluster
// package, so the byte-identity contract between the single-node and
// multi-node runs is enforced by construction: both sides call the same
// functions on the same jump-separated streams.

// CGMStreams returns the RNG streams of the blocked decomposition for a
// p-source, p-target run: stream 0 samples the communication matrix,
// stream 1+i arranges source block i, stream 1+p+j arranges target
// block j. It is the exact stream layout permute uses, published so a
// cluster node can derive any block's stream locally — NewStreams makes
// stream i independent of how many streams are requested, which is what
// lets a node that owns two blocks of a 16-block decomposition draw the
// same values as the single process that owns all 16.
func CGMStreams(seed uint64, p int) []*xrand.Xoshiro256 {
	return xrand.NewStreams(seed, 1+2*p)
}

// ArrangeRow draws the label arrangement for one source block from rng:
// a uniformly random arrangement of the multiset {j repeated row[j]
// times}, consuming exactly the draws routeBlock consumes for the same
// row. labels[t] is the target block of the source block's t-th item.
func ArrangeRow(rng *xrand.Xoshiro256, row []int64) []int32 {
	var total int64
	for _, c := range row {
		total += c
	}
	labels := make([]int32, total)
	t := 0
	for j, c := range row {
		for x := int64(0); x < c; x++ {
			labels[t] = int32(j)
			t++
		}
	}
	shuffleX(rng, labels)
	return labels
}

// LocalShuffle arranges x uniformly in place with the engine's
// Fisher-Yates (the arrangement pass every scatter backend runs on its
// target blocks). Exported so the cluster backend's round 3 — each node
// arranging its own target blocks — replays the single-node arrangement
// byte for byte from the same stream.
func LocalShuffle[T any](rng *xrand.Xoshiro256, x []T) { shuffleX(rng, x) }

// PermuteSliceCGM permutes data through the blocked CGM decomposition:
// the slice is split into p even contiguous source blocks, the exact
// p x p fixed-margin communication matrix is sampled once (Algorithm 3),
// every source block's items are routed by a label arrangement drawn
// from the block's own stream, and every target block is arranged in
// place from its own stream. The result is exactly uniform over all n!
// permutations and deterministic in (Seed, p, len(data)), independent
// of Options.Workers.
//
// This is the permutation BackendCluster serves: a multi-node cluster
// run over the same (seed, n, p) produces these bytes exactly (see
// internal/cluster), because both sides execute the same three rounds
// from the same streams — only the locality of the item movement
// differs. The input is not modified.
func PermuteSliceCGM[T any](data []T, p int, opt Options) ([]T, error) {
	if p < 1 {
		return nil, fmt.Errorf("engine: CGM decomposition needs p >= 1, got %d", p)
	}
	sizes := evenBlocks(int64(len(data)), p)
	blocks := make([][]T, p)
	var off int64
	for i, s := range sizes {
		blocks[i] = data[off : off+s : off+s]
		off += s
	}
	flat, _, err := permute(blocks, sizes, opt)
	return flat, err
}
