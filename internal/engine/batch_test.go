package engine

import (
	"math/bits"
	"sync"
	"testing"

	"randperm/internal/stats"
	"randperm/internal/xrand"
)

// batch_test.go pins the batched hot loops to their pre-batch serial
// references. The batch rewrite (block RNG via Fill, reductions in a
// tight second loop) is only admissible because it consumes the raw
// stream in exactly the order the serial loops did — one word per
// placement plus rejection re-draws — so every (seed, len) must produce
// byte-identical output AND leave the generator at the same stream
// position. The references below are verbatim copies of the serial
// loops this PR replaced.

// shuffleSerialRef is the pre-batch shuffleX: open-coded Lemire, one
// draw per placement, no power-of-two special case.
func shuffleSerialRef[T any](rng *xrand.Xoshiro256, x []T) {
	for i := len(x) - 1; i > 0; i-- {
		bound := uint64(i + 1)
		hi, lo := bits.Mul64(rng.Uint64(), bound)
		if lo < bound {
			thresh := -bound % bound
			for lo < thresh {
				hi, lo = bits.Mul64(rng.Uint64(), bound)
			}
		}
		x[i], x[int(hi)] = x[int(hi)], x[i]
	}
}

// insideOutSerialRef is the pre-batch insideOut: rng.Intn per item,
// including Intn's power-of-two mask special case.
func insideOutSerialRef[T any](rng *xrand.Xoshiro256, src, dst []T) {
	if len(src) == 0 {
		return
	}
	dst[0] = src[0]
	for i := 1; i < len(src); i++ {
		j := rng.Intn(i + 1)
		dst[i] = dst[j]
		dst[j] = src[i]
	}
}

// mergeShuffleSerialRef is the pre-batch mergeShuffle: identical merge
// phases, rng.Intn insertion tail.
func mergeShuffleSerialRef[T any](rng *xrand.Xoshiro256, a []T, mid int) {
	i, j := 0, mid
	for j-i >= 64 && len(a)-j >= 64 {
		w := rng.Uint64()
		for t := 0; t < 64; t++ {
			b := int(w & 1)
			w >>= 1
			k := i + b*(j-i)
			a[i], a[k] = a[k], a[i]
			j += b
			i++
		}
	}
	var w uint64
	nbits := 0
	for {
		if nbits == 0 {
			w = rng.Uint64()
			nbits = 64
		}
		bit := w & 1
		w >>= 1
		nbits--
		if bit == 0 {
			if i == j {
				break
			}
		} else {
			if j == len(a) {
				break
			}
			a[i], a[j] = a[j], a[i]
			j++
		}
		i++
	}
	for ; i < len(a); i++ {
		k := rng.Intn(i + 1)
		a[i], a[k] = a[k], a[i]
	}
}

// batchSizes crosses every regime of the fyBatch=512 blocking: empty,
// trivial, power-of-two bounds, one block, block boundaries, refills.
var batchSizes = []int{0, 1, 2, 3, 5, 17, 64, 65, 255, 256, 257, 511, 512, 513, 1000, 1025, 5000}

func TestShuffleXMatchesSerialReference(t *testing.T) {
	for _, seed := range []uint64{0, 1, 0x9E3779B97F4A7C15} {
		for _, n := range batchSizes {
			got, want := iota64(n), iota64(n)
			ra, rb := xrand.NewXoshiro256(seed), xrand.NewXoshiro256(seed)
			shuffleX(ra, got)
			shuffleSerialRef(rb, want)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed=%d n=%d: diverged at %d: %d != %d", seed, n, i, got[i], want[i])
				}
			}
			if a, b := ra.Uint64(), rb.Uint64(); a != b {
				t.Fatalf("seed=%d n=%d: stream positions differ after shuffle", seed, n)
			}
		}
	}
}

func TestInsideOutMatchesSerialReference(t *testing.T) {
	for _, seed := range []uint64{0, 7, 1 << 40} {
		for _, n := range batchSizes {
			src := iota64(n)
			got, want := make([]int64, n), make([]int64, n)
			ra, rb := xrand.NewXoshiro256(seed), xrand.NewXoshiro256(seed)
			insideOut(ra, src, got)
			insideOutSerialRef(rb, src, want)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed=%d n=%d: diverged at %d: %d != %d", seed, n, i, got[i], want[i])
				}
			}
			if a, b := ra.Uint64(), rb.Uint64(); a != b {
				t.Fatalf("seed=%d n=%d: stream positions differ after insideOut", seed, n)
			}
		}
	}
}

func TestMergeShuffleMatchesSerialReference(t *testing.T) {
	cases := []struct{ n, mid int }{
		{2, 1}, {10, 3}, {100, 50}, {128, 64}, {600, 1}, {600, 599},
		{1000, 300}, {1025, 512}, {1200, 600}, {4096, 2048},
	}
	for _, seed := range []uint64{0, 42} {
		for _, c := range cases {
			got, want := iota64(c.n), iota64(c.n)
			ra, rb := xrand.NewXoshiro256(seed), xrand.NewXoshiro256(seed)
			mergeShuffle(ra, got, c.mid)
			mergeShuffleSerialRef(rb, want, c.mid)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed=%d n=%d mid=%d: diverged at %d: %d != %d",
						seed, c.n, c.mid, i, got[i], want[i])
				}
			}
			if a, b := ra.Uint64(), rb.Uint64(); a != b {
				t.Fatalf("seed=%d n=%d mid=%d: stream positions differ", seed, c.n, c.mid)
			}
		}
	}
}

// TestBijectionChunkMatchesIndex pins the lane-interleaved batch
// evaluator (and its batched cycle-walk) to the scalar Index, across
// full-superdomain fast-path sizes (n = 2^even), heavy-walk sizes just
// above a power of two, and shallow/deep networks; also at every chunk
// granularity that splits the lane groups unevenly.
func TestBijectionChunkMatchesIndex(t *testing.T) {
	ns := []int64{1, 2, 3, 5, 15, 16, 17, 255, 256, 257, 1000, 1024, 1025, 4096, 5000}
	for _, rounds := range []int{1, 3, 12} {
		for _, n := range ns {
			b := NewBijectionRounds(n, 0xFEED, rounds)
			want := make([]int64, n)
			for i := range want {
				want[i] = b.Index(int64(i))
			}
			for _, step := range []int{1, 7, bijLanes, bijLanes + 1, int(n)} {
				if step == 0 {
					continue
				}
				got := make([]int64, n)
				for start := int64(0); start < n; start += int64(step) {
					m := min(int64(step), n-start)
					b.Chunk(got[start:start+m], start)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("rounds=%d n=%d step=%d: Chunk[%d] = %d, Index = %d",
							rounds, n, step, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestNewBijectionOptRounds pins the Options.Rounds plumbing: <= 0 means
// the default family, > 0 selects the (Seed, Rounds)-versioned family
// NewBijectionRounds defines.
func TestNewBijectionOptRounds(t *testing.T) {
	const n, seed = 500, 11
	def := NewBijection(n, seed)
	for _, r := range []int{-1, 0} {
		b := newBijectionOpt(n, Options{Seed: seed, Rounds: r})
		for i := int64(0); i < n; i++ {
			if b.Index(i) != def.Index(i) {
				t.Fatalf("Rounds=%d: differs from default family at %d", r, i)
			}
		}
	}
	four := NewBijectionRounds(n, seed, 4)
	b := newBijectionOpt(n, Options{Seed: seed, Rounds: 4})
	same := true
	for i := int64(0); i < n; i++ {
		if b.Index(i) != four.Index(i) {
			t.Fatalf("Rounds=4: differs from NewBijectionRounds at %d", i)
		}
		if b.Index(i) != def.Index(i) {
			same = false
		}
	}
	if same {
		t.Fatal("Rounds=4 produced the 12-round permutation: family not versioned by Rounds")
	}
}

// TestScatterPositionalUniform chi-squares a positional marginal through
// the batched radix-bucket scatter at a size that exceeds fyBatch, so
// label generation, the bucket scatter, and the block-refill paths of the
// batched Fisher-Yates all run: over random seeds, item 0 must land in
// every output position equally often.
func TestScatterPositionalUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	const n = 700 // > fyBatch, so the batched loops cross a block boundary
	const trials = 6000
	counts := make([]int64, n)
	for tr := 0; tr < trials; tr++ {
		out, err := permuteFlat(iota64(n), 2, Options{
			Workers: 2,
			Seed:    uint64(tr)*0x9E3779B97F4A7C15 + 5,
		}, 64, 8)
		if err != nil {
			t.Fatal(err)
		}
		for pos, v := range out {
			if v == 0 {
				counts[pos]++
				break
			}
		}
	}
	res, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.0005) {
		t.Errorf("batched scatter positional marginal non-uniform: %s", res)
	}
}

// TestBatchBuffersRace drives every batched path concurrently so `go
// test -race` can see any sharing of the block buffers across pool
// workers — they are stack-local per task by construction, and this
// test is the witness.
func TestBatchBuffersRace(t *testing.T) {
	data := iota64(20000)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			if _, err := PermuteSlice(data, 8, Options{Workers: 4, Seed: seed}); err != nil {
				t.Error(err)
			}
			cp := append([]int64(nil), data...)
			if err := ShuffleInPlace(cp, 8, Options{Workers: 4, Seed: seed}); err != nil {
				t.Error(err)
			}
			if _, err := PermuteSliceBijective(data, 8, Options{Workers: 4, Seed: seed}); err != nil {
				t.Error(err)
			}
		}(uint64(g))
	}
	// Concurrent Chunk on one shared (immutable) Bijection.
	b := NewBijection(int64(len(data)), 99)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(off int64) {
			defer wg.Done()
			var dst [1000]int64
			b.Chunk(dst[:], off*1000)
		}(int64(g))
	}
	wg.Wait()
}
