package seqperm

import (
	"randperm/internal/commat"
	"randperm/internal/xrand"
)

// BlockShuffleOptions tunes the cache-friendly block shuffle.
type BlockShuffleOptions struct {
	// Fanout is the number of buckets per pass (the "virtual
	// processors" K). 0 selects the default.
	Fanout int
	// Threshold is the block size below which plain Fisher-Yates is
	// used (it should fit in cache). 0 selects the default.
	Threshold int
}

const (
	defaultFanout    = 64
	defaultThreshold = 1 << 15 // 32Ki items ~ 256 KiB of int64: L2-resident
)

// BlockShuffle permutes x uniformly in place using the paper's outlook
// idea (Section 6): run Algorithm 1 *sequentially*, with K virtual
// processors. The vector is cut into K chunks, a K x K communication
// matrix is sampled exactly (Algorithm 3), each locally-shuffled chunk is
// scattered to K buckets with sequential writes, and each bucket is
// shuffled recursively. Every memory pass is streaming except the
// in-cache Fisher-Yates leaves, trading the fully random access pattern
// of Fisher-Yates for O(n log_K n) streaming passes - the cache-miss
// avoidance the paper anticipates (experiment E8).
//
// Uniformity is inherited from Algorithm 1's proof: the matrix has the
// exact distribution and chunk/bucket shuffles supply the local
// randomness; tests chi-square it like every other shuffler.
func BlockShuffle[T any](src xrand.Source, x []T, opt BlockShuffleOptions) {
	fanout := opt.Fanout
	if fanout <= 0 {
		fanout = defaultFanout
	}
	if fanout < 2 {
		fanout = 2
	}
	threshold := opt.Threshold
	if threshold <= 0 {
		threshold = defaultThreshold
	}
	scratch := make([]T, len(x))
	blockShuffle(src, x, scratch, fanout, threshold)
}

func blockShuffle[T any](src xrand.Source, x, scratch []T, fanout, threshold int) {
	n := len(x)
	if n <= threshold || n <= fanout {
		FisherYates(src, x)
		return
	}

	// Virtual block layout: K source chunks and K target buckets, both
	// as even as possible.
	sizes := evenSizes(n, fanout)
	a := commat.SampleSeq(src, sizes, sizes)

	// Bucket write cursors inside scratch.
	offsets := make([]int, fanout+1)
	for j := 0; j < fanout; j++ {
		offsets[j+1] = offsets[j] + int(sizes[j])
	}
	cursor := make([]int, fanout)
	copy(cursor, offsets[:fanout])

	// Pass 1: shuffle each chunk in cache, then scatter its segments
	// according to the matrix row (sequential reads, K sequential
	// write streams).
	chunkStart := 0
	for i := 0; i < fanout; i++ {
		chunk := x[chunkStart : chunkStart+int(sizes[i])]
		FisherYates(src, chunk)
		row := a.Row(i)
		seg := 0
		for j := 0; j < fanout; j++ {
			k := int(row[j])
			copy(scratch[cursor[j]:cursor[j]+k], chunk[seg:seg+k])
			cursor[j] += k
			seg += k
		}
		chunkStart += int(sizes[i])
	}

	// Pass 2: each bucket is an independent sub-problem.
	for j := 0; j < fanout; j++ {
		bucket := scratch[offsets[j]:offsets[j+1]]
		blockShuffle(src, bucket, x[offsets[j]:offsets[j+1]], fanout, threshold)
	}
	copy(x, scratch)
}

func evenSizes(n, k int) []int64 {
	sizes := make([]int64, k)
	base, rem := n/k, n%k
	for i := range sizes {
		sizes[i] = int64(base)
		if i < rem {
			sizes[i]++
		}
	}
	return sizes
}
