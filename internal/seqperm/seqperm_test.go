package seqperm

import (
	"testing"
	"testing/quick"

	"randperm/internal/stats"
	"randperm/internal/xrand"
)

func iota64(n int) []int64 {
	x := make([]int64, n)
	for i := range x {
		x[i] = int64(i)
	}
	return x
}

func TestFisherYatesIsPermutation(t *testing.T) {
	src := xrand.NewXoshiro256(1)
	for _, n := range []int{0, 1, 2, 100, 10000} {
		x := iota64(n)
		FisherYates(src, x)
		if !IsPermutationOfIota(x) {
			t.Fatalf("n=%d: not a permutation", n)
		}
	}
}

func TestSattoloIsCyclic(t *testing.T) {
	// Sattolo must always produce a single n-cycle.
	src := xrand.NewXoshiro256(2)
	for _, n := range []int{2, 3, 5, 20, 101} {
		x := iota64(n)
		Sattolo(src, x)
		if !IsPermutationOfIota(x) {
			t.Fatalf("n=%d: not a permutation", n)
		}
		// Follow the cycle from 0; it must visit all n elements.
		seen := 0
		pos := int64(0)
		for {
			pos = x[pos]
			seen++
			if pos == 0 {
				break
			}
			if seen > n {
				t.Fatalf("n=%d: not a single cycle", n)
			}
		}
		if seen != n {
			t.Fatalf("n=%d: cycle length %d", n, seen)
		}
	}
}

func TestSortShuffleIsPermutation(t *testing.T) {
	src := xrand.NewXoshiro256(3)
	for _, n := range []int{0, 1, 2, 100, 5000} {
		x := iota64(n)
		SortShuffle(src, x)
		if !IsPermutationOfIota(x) {
			t.Fatalf("n=%d: not a permutation", n)
		}
	}
}

func TestBlockShuffleIsPermutation(t *testing.T) {
	src := xrand.NewXoshiro256(4)
	opts := []BlockShuffleOptions{
		{},                          // defaults
		{Fanout: 2, Threshold: 4},   // deep recursion
		{Fanout: 16, Threshold: 64}, // shallow
		{Fanout: 3, Threshold: 1},
	}
	for _, opt := range opts {
		for _, n := range []int{0, 1, 2, 7, 63, 64, 65, 1000, 40000} {
			x := iota64(n)
			BlockShuffle(src, x, opt)
			if !IsPermutationOfIota(x) {
				t.Fatalf("opt=%+v n=%d: not a permutation", opt, n)
			}
		}
	}
}

func TestBlockShufflePropertyRandomSizes(t *testing.T) {
	src := xrand.NewXoshiro256(5)
	f := func(n16 uint16, fan, thr uint8) bool {
		n := int(n16 % 3000)
		opt := BlockShuffleOptions{
			Fanout:    int(fan%20) + 2,
			Threshold: int(thr%100) + 1,
		}
		x := iota64(n)
		BlockShuffle(src, x, opt)
		return IsPermutationOfIota(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func uniformityCheck(t *testing.T, name string, trials int, shuffle func([]int64)) stats.GOFResult {
	t.Helper()
	const n = 4
	counts := make([]int64, stats.Factorial(n))
	for tr := 0; tr < trials; tr++ {
		x := iota64(n)
		shuffle(x)
		counts[stats.RankPermInt64(x)]++
	}
	res, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res
}

func TestUniformityPositive(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	src := xrand.NewXoshiro256(6)
	const trials = 48000
	cases := map[string]func([]int64){
		"fisher-yates": func(x []int64) { FisherYates(src, x) },
		"sort-shuffle": func(x []int64) { SortShuffle(src, x) },
		"block-shuffle": func(x []int64) {
			BlockShuffle(src, x, BlockShuffleOptions{Fanout: 2, Threshold: 1})
		},
	}
	for name, fn := range cases {
		if res := uniformityCheck(t, name, trials, fn); res.Reject(0.0005) {
			t.Errorf("%s non-uniform: %s", name, res)
		}
	}
}

func TestUniformityNegativeControl(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	src := xrand.NewXoshiro256(7)
	res := uniformityCheck(t, "sattolo", 48000, func(x []int64) { Sattolo(src, x) })
	if !res.Reject(0.001) {
		t.Errorf("sattolo slipped past the chi-square test: %s", res)
	}
}

func TestIsPermutationOfIota(t *testing.T) {
	if !IsPermutationOfIota([]int64{2, 0, 1}) {
		t.Fatal("valid permutation rejected")
	}
	if IsPermutationOfIota([]int64{0, 0, 2}) {
		t.Fatal("duplicate accepted")
	}
	if IsPermutationOfIota([]int64{0, 3}) {
		t.Fatal("out of range accepted")
	}
	if !IsPermutationOfIota(nil) {
		t.Fatal("empty should be a permutation")
	}
}

func BenchmarkFisherYates1M(b *testing.B) {
	src := xrand.NewXoshiro256(1)
	x := iota64(1 << 20)
	b.SetBytes(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FisherYates(src, x)
	}
}

func BenchmarkBlockShuffle1M(b *testing.B) {
	src := xrand.NewXoshiro256(1)
	x := iota64(1 << 20)
	b.SetBytes(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BlockShuffle(src, x, BlockShuffleOptions{})
	}
}

func BenchmarkSortShuffle1M(b *testing.B) {
	src := xrand.NewXoshiro256(1)
	x := iota64(1 << 20)
	b.SetBytes(8 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SortShuffle(src, x)
	}
}
