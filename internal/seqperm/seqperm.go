// Package seqperm collects sequential permutation algorithms: the
// Fisher-Yates reference against which the PRO model measures optimality,
// Sattolo's variant (deliberately non-uniform over all permutations, used
// as a negative control for the statistical tests), the sort-by-random-
// keys method (the work profile of Goodrich's BSP algorithm in a single
// processor), and the paper's "outlook": a cache-friendly block shuffle
// that reuses the communication-matrix idea sequentially.
package seqperm

import (
	"sort"

	"randperm/internal/xrand"
)

// FisherYates permutes x uniformly in place: the reference sequential
// algorithm of the paper (n-1 bounded draws, O(n) time, but a random
// memory access pattern that makes it bandwidth bound - experiment E1).
func FisherYates[T any](src xrand.Source, x []T) {
	xrand.Shuffle(src, x)
}

// Sattolo permutes x in place into a uniformly random *cyclic*
// permutation. Over the set of all permutations this is non-uniform
// ((n-1)! of the n! outcomes have positive probability), making it a
// sharp negative control: any sound uniformity test must reject it.
func Sattolo[T any](src xrand.Source, x []T) {
	for i := len(x) - 1; i > 0; i-- {
		j := xrand.Intn(src, i) // note: i, not i+1
		x[i], x[j] = x[j], x[i]
	}
}

// SortShuffle permutes x by attaching an independent uniform 64-bit key
// to every item and sorting. This is the sequential shadow of Goodrich's
// BSP algorithm: uniform (up to the ~n^2/2^64 probability of a key
// collision) but Theta(n log n) work - the "log n per item" superlinear
// cost the paper's introduction criticizes.
func SortShuffle[T any](src xrand.Source, x []T) {
	type kv struct {
		key uint64
		idx int
	}
	keys := make([]kv, len(x))
	for i := range keys {
		keys[i] = kv{key: src.Uint64(), idx: i}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].key != keys[b].key {
			return keys[a].key < keys[b].key
		}
		return keys[a].idx < keys[b].idx
	})
	out := make([]T, len(x))
	for i, k := range keys {
		out[i] = x[k.idx]
	}
	copy(x, out)
}

// IsPermutationOfIota reports whether x contains each of 0..len(x)-1
// exactly once; a cheap oracle for tests.
func IsPermutationOfIota(x []int64) bool {
	seen := make([]bool, len(x))
	for _, v := range x {
		if v < 0 || v >= int64(len(x)) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
