package hyper

import (
	"math"

	"randperm/internal/xrand"
)

// chopSDThreshold selects between the two exact samplers: below this
// standard deviation the chop-down sampler's O(sd) arithmetic is cheap
// and costs only a single raw draw; above it HRUA's O(1) rounds win.
// Experiment E2 ablates this constant.
const chopSDThreshold = 64.0

// Sample draws one exact variate from h(t, w, b): the number of white
// balls when t balls are drawn without replacement from w white and b
// black. It panics on invalid parameters (negative, or t > w+b).
//
// Degenerate cases cost zero random draws; otherwise the call is exact and
// consumes O(1) raw draws in expectation (1 via chop-down for small
// spreads, ~2-3 via HRUA for large ones).
func Sample(src xrand.Source, t, w, b int64) int64 {
	checkParams(t, w, b)
	// Degenerate urns: the outcome is deterministic.
	switch {
	case t == 0 || w == 0:
		return 0
	case b == 0:
		return t
	case t == w+b:
		return w
	}
	d := Dist{T: t, W: w, B: b}
	if lo, hi := d.SupportMin(), d.SupportMax(); lo == hi {
		return lo
	}
	if sd := math.Sqrt(d.Variance()); sd <= chopSDThreshold {
		return SampleChop(src, t, w, b)
	}
	return SampleHRUA(src, t, w, b)
}
