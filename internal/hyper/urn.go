package hyper

import "randperm/internal/xrand"

// SampleUrn draws from h(t, w, b) by literally simulating the urn
// experiment: t sequential draws without replacement, each one bounded
// random integer. It costs Theta(t) time and t raw random draws, so it is
// only suitable as a correctness reference for the fast samplers and for
// tiny parameters; Sample never dispatches to it.
func SampleUrn(src xrand.Source, t, w, b int64) int64 {
	checkParams(t, w, b)
	var k int64
	wLeft, bLeft := w, b
	for i := int64(0); i < t; i++ {
		if xrand.Int64n(src, wLeft+bLeft) < wLeft {
			k++
			wLeft--
		} else {
			bLeft--
		}
	}
	return k
}

func checkParams(t, w, b int64) {
	if t < 0 || w < 0 || b < 0 || t > w+b {
		panic("hyper: invalid parameters")
	}
}
