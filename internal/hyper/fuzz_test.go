package hyper

import (
	"testing"

	"randperm/internal/xrand"
)

// FuzzSample drives the auto-dispatching sampler with arbitrary
// parameters: any valid urn must yield a value inside the support, and
// invalid parameters must panic (never mis-sample).
func FuzzSample(f *testing.F) {
	f.Add(int64(10), int64(5), int64(5), uint64(1))
	f.Add(int64(0), int64(0), int64(0), uint64(2))
	f.Add(int64(1000000), int64(999999), int64(1), uint64(3))
	f.Add(int64(7), int64(1000000), int64(3), uint64(4))
	f.Add(int64(123456), int64(654321), int64(111111), uint64(5))
	f.Fuzz(func(t *testing.T, tt, w, b int64, seed uint64) {
		// Clamp into a sane magnitude to keep the fuzzer productive.
		const lim = int64(1) << 40
		if w < 0 {
			w = -w
		}
		if b < 0 {
			b = -b
		}
		if tt < 0 {
			tt = -tt
		}
		w %= lim
		b %= lim
		if w+b == 0 {
			return
		}
		tt %= w + b + 1
		src := xrand.NewXoshiro256(seed)
		d := Dist{T: tt, W: w, B: b}
		k := Sample(src, tt, w, b)
		if k < d.SupportMin() || k > d.SupportMax() {
			t.Fatalf("Sample(%d,%d,%d) = %d outside [%d,%d]",
				tt, w, b, k, d.SupportMin(), d.SupportMax())
		}
	})
}

// FuzzChopMatchesSupport drives the 1-draw sampler alone, which has its
// own numerical edge cases in the tail walk.
func FuzzChopMatchesSupport(f *testing.F) {
	f.Add(int64(30), int64(40), int64(50), uint64(1))
	f.Add(int64(1), int64(1), int64(1), uint64(9))
	f.Fuzz(func(t *testing.T, tt, w, b int64, seed uint64) {
		const lim = int64(1) << 30
		if w < 0 {
			w = -w
		}
		if b < 0 {
			b = -b
		}
		if tt < 0 {
			tt = -tt
		}
		w, b = w%lim, b%lim
		if w+b == 0 {
			return
		}
		tt %= w + b + 1
		src := xrand.NewXoshiro256(seed)
		d := Dist{T: tt, W: w, B: b}
		k := SampleChop(src, tt, w, b)
		if k < d.SupportMin() || k > d.SupportMax() {
			t.Fatalf("SampleChop(%d,%d,%d) = %d outside support", tt, w, b, k)
		}
	})
}
