package hyper

import (
	"math"

	"randperm/internal/xrand"
)

// SampleChop draws from h(t, w, b) by inverse transform with a chop-down
// search that starts at the mode and expands outward, so the expected
// number of PMF evaluations is O(standard deviation) while the number of
// raw random draws is exactly one.
//
// This sampler is what keeps the average draw count of Sample near 1, the
// profile the paper reports for Zechner's sampler (experiment E2).
func SampleChop(src xrand.Source, t, w, b int64) int64 {
	checkParams(t, w, b)
	d := Dist{T: t, W: w, B: b}
	lo, hi := d.SupportMin(), d.SupportMax()
	if lo == hi {
		return lo
	}
	mode := d.Mode()
	pm := math.Exp(d.LogPMF(mode))

	u := xrand.Float64Open(src)
	u -= pm
	if u <= 0 {
		return mode
	}

	// Expand alternately right and left of the mode, updating the PMF
	// by its ratio recurrence (no further Lgamma calls, no further
	// random draws).
	pr, pl := pm, pm
	r, l := mode, mode
	for r < hi || l > lo {
		if r < hi {
			r++
			pr *= float64(w-r+1) * float64(t-r+1) /
				(float64(r) * float64(b-t+r))
			u -= pr
			if u <= 0 {
				return r
			}
		}
		if l > lo {
			pl *= float64(l) * float64(b-t+l) /
				(float64(w-l+1) * float64(t-l+1))
			l--
			u -= pl
			if u <= 0 {
				return l
			}
		}
	}
	// Floating-point leftovers (u was within rounding error of the
	// total mass): the mode is the safest answer.
	return mode
}
