package hyper

import (
	"math"

	"randperm/internal/xrand"
)

// Constants of the ratio-of-uniforms method (Stadlober 1990):
// hruaD1 = 2*sqrt(2/e), hruaD2 = 3 - 2*sqrt(3/e).
const (
	hruaD1 = 1.7155277699214135
	hruaD2 = 0.8989161620588988
)

// hruaMaxRounds caps the rejection loop. Rejection sampling emits its
// result only on acceptance, so conditioned on "k rounds rejected" the
// eventual output still has exactly the target law; the continuation may
// therefore be replaced by any other exact sampler. After hruaMaxRounds
// rejections we fall back to the one-draw chop-down sampler, bounding the
// worst case at 2*hruaMaxRounds + 1 = 9 raw draws - within the paper's
// reported worst case of 10 - at a negligible (<1%) frequency of paying
// the chop-down's O(sd) arithmetic.
const hruaMaxRounds = 4

// SampleHRUA draws from h(t, w, b) using the HRUA ratio-of-uniforms
// rejection algorithm (Stadlober's H2PE family, as implemented in numpy).
// Each rejection round consumes exactly two uniforms and is accepted with
// high probability for any parameter values, so the expected cost is O(1)
// in both time and raw random draws, independent of t, w and b.
//
// The algorithm internally reduces to the canonical case
// draws m = min(t, N-t), whites = min(w, b) and maps the result back
// through the two urn symmetries.
func SampleHRUA(src xrand.Source, t, w, b int64) int64 {
	checkParams(t, w, b)
	pop := w + b
	if pop == 0 {
		return 0
	}

	minWB := w
	if b < minWB {
		minWB = b
	}
	maxWB := pop - minWB
	m := t
	if pop-t < m {
		m = pop - t
	}

	z, ok := hruaCore(src, m, minWB, maxWB)
	if !ok {
		// Exact fallback after too many rejections (see
		// hruaMaxRounds): chop-down on the reduced parameters.
		z = SampleChop(src, m, minWB, maxWB)
	}

	// Undo the color swap: hruaCore counted minWB-colored balls.
	if w > b {
		z = m - z
	}
	// Undo the draw complement: whites among t draws equals
	// w minus whites among the N-t balls left in the urn.
	if m < t {
		z = w - z
	}
	return z
}

// hruaCore samples the number of "good" balls among m draws from an urn
// with minWB good and maxWB bad balls, assuming minWB <= maxWB and
// m <= (minWB+maxWB)/2. ok is false when hruaMaxRounds rejections
// occurred; the caller must then fall back to another exact sampler.
func hruaCore(src xrand.Source, m, minWB, maxWB int64) (z int64, ok bool) {
	popsize := minWB + maxWB
	d4 := float64(minWB) / float64(popsize)
	d5 := 1 - d4
	d6 := float64(m)*d4 + 0.5
	d7 := math.Sqrt(float64(popsize-m)*float64(m)*d4*d5/float64(popsize-1) + 0.5)
	d8 := hruaD1*d7 + hruaD2
	d9 := (m + 1) * (minWB + 1) / (popsize + 2) // mode
	d10 := lgam(d9+1) + lgam(minWB-d9+1) + lgam(m-d9+1) + lgam(maxWB-m+d9+1)
	mLim := m
	if minWB < mLim {
		mLim = minWB
	}
	d11 := math.Min(float64(mLim)+1, math.Floor(d6+16*d7))

	for round := 0; round < hruaMaxRounds; round++ {
		x := xrand.Float64Open(src)
		y := xrand.Float64(src)
		w := d6 + d8*(y-0.5)/x

		if w < 0 || w >= d11 {
			continue // fast outer rejection
		}
		z := int64(math.Floor(w))
		tt := d10 - (lgam(z+1) + lgam(minWB-z+1) + lgam(m-z+1) + lgam(maxWB-m+z+1))

		// Squeeze acceptance (cheap lower bound on the log-density).
		if x*(4-x)-3 <= tt {
			return z, true
		}
		// Squeeze rejection (cheap upper bound).
		if x*(x-tt) >= 1 {
			continue
		}
		// Full acceptance test.
		if 2*math.Log(x) <= tt {
			return z, true
		}
	}
	return 0, false
}

// lgam returns ln Gamma(x) for integer x >= 1 passed as int64.
func lgam(x int64) float64 {
	v, _ := math.Lgamma(float64(x))
	return v
}
