// Package hyper implements the hypergeometric distribution h(t, w, b): the
// number of "white" balls obtained when drawing t balls, without
// replacement, from an urn holding w white and b black balls.
//
// This distribution is the probabilistic core of the paper: Proposition 3
// shows every entry a_ij of the communication matrix follows
// h(m'_j, m_i, n-m_i), and Algorithms 2-6 reduce all sampling to repeated
// draws from h. The paper cites Zechner (1994) for efficient sampling and
// reports fewer than 1.5 raw random numbers per sample on average with a
// worst case of 10; this package reproduces that resource profile with two
// exact samplers:
//
//   - a chop-down inverse-transform sampler that always consumes exactly
//     one uniform (used when the standard deviation is small), and
//   - a ratio-of-uniforms rejection sampler (HRUA, after Stadlober and the
//     numpy implementation) that consumes two uniforms per rejection round
//     with high acceptance probability (used for large parameters).
//
// Both are exact: chi-square tests against the closed-form PMF gate every
// build. A third O(t) urn-simulation sampler serves as the obviously
// correct reference.
package hyper

// Dist describes a hypergeometric distribution: T balls are drawn without
// replacement from an urn with W white and B black balls; the variate is
// the number of white balls drawn.
type Dist struct {
	T int64 // number of draws, 0 <= T <= W+B
	W int64 // white balls in the urn
	B int64 // black balls in the urn
}

// Valid reports whether the parameters describe a real urn experiment.
func (d Dist) Valid() bool {
	return d.T >= 0 && d.W >= 0 && d.B >= 0 && d.T <= d.W+d.B
}

// SupportMin returns the smallest value the variate can take:
// max(0, T-B).
func (d Dist) SupportMin() int64 {
	if m := d.T - d.B; m > 0 {
		return m
	}
	return 0
}

// SupportMax returns the largest value the variate can take: min(T, W).
func (d Dist) SupportMax() int64 {
	if d.T < d.W {
		return d.T
	}
	return d.W
}

// Mean returns the expectation T*W/(W+B). It returns 0 for the empty urn.
func (d Dist) Mean() float64 {
	pop := d.W + d.B
	if pop == 0 {
		return 0
	}
	return float64(d.T) * float64(d.W) / float64(pop)
}

// Variance returns T * (W/N) * (B/N) * (N-T)/(N-1) with N = W+B, the
// standard finite-population-corrected variance. It returns 0 when the
// population has fewer than two balls.
func (d Dist) Variance() float64 {
	pop := d.W + d.B
	if pop < 2 {
		return 0
	}
	n := float64(pop)
	return float64(d.T) * (float64(d.W) / n) * (float64(d.B) / n) *
		(n - float64(d.T)) / (n - 1)
}

// Mode returns the (smallest) most probable value,
// floor((T+1)(W+1)/(N+2)) clamped to the support.
func (d Dist) Mode() int64 {
	pop := d.W + d.B
	m := (d.T + 1) * (d.W + 1) / (pop + 2)
	if lo := d.SupportMin(); m < lo {
		return lo
	}
	if hi := d.SupportMax(); m > hi {
		return hi
	}
	return m
}
