package hyper

import (
	"math"

	"randperm/internal/numeric"
)

// LogPMF returns ln P(X = k) for the distribution, or -inf outside the
// support.
func (d Dist) LogPMF(k int64) float64 {
	return numeric.LogHyperPMF(k, d.T, d.W, d.B)
}

// PMF returns P(X = k).
func (d Dist) PMF(k int64) float64 {
	return math.Exp(d.LogPMF(k))
}

// CDF returns P(X <= k), summed stably from the nearer tail.
func (d Dist) CDF(k int64) float64 {
	lo, hi := d.SupportMin(), d.SupportMax()
	if k < lo {
		return 0
	}
	if k >= hi {
		return 1
	}
	// Sum whichever side of k has fewer terms, using the ratio
	// recurrence to avoid hi-lo+1 Lgamma calls.
	if k-lo <= hi-k {
		sum := 0.0
		p := d.PMF(lo)
		for j := lo; ; j++ {
			sum += p
			if j == k {
				break
			}
			p *= ratioUp(j, d.T, d.W, d.B)
		}
		return math.Min(sum, 1)
	}
	sum := 0.0
	p := d.PMF(hi)
	for j := hi; j > k; j-- {
		sum += p
		p *= ratioDown(j, d.T, d.W, d.B)
	}
	return math.Max(0, 1-sum)
}

// ratioUp returns P(X = k+1)/P(X = k).
func ratioUp(k, t, w, b int64) float64 {
	return float64(w-k) * float64(t-k) /
		(float64(k+1) * float64(b-t+k+1))
}

// ratioDown returns P(X = k-1)/P(X = k).
func ratioDown(k, t, w, b int64) float64 {
	return float64(k) * float64(b-t+k) /
		(float64(w-k+1) * float64(t-k+1))
}
