package hyper

import (
	"math"
	"testing"
	"testing/quick"

	"randperm/internal/xrand"
)

func TestDistValid(t *testing.T) {
	valid := []Dist{{0, 0, 0}, {1, 1, 0}, {5, 3, 2}, {10, 100, 100}}
	for _, d := range valid {
		if !d.Valid() {
			t.Fatalf("%+v should be valid", d)
		}
	}
	invalid := []Dist{{-1, 1, 1}, {1, -1, 1}, {1, 1, -1}, {6, 3, 2}}
	for _, d := range invalid {
		if d.Valid() {
			t.Fatalf("%+v should be invalid", d)
		}
	}
}

func TestSupportBounds(t *testing.T) {
	d := Dist{T: 7, W: 4, B: 5}
	if d.SupportMin() != 2 { // t-b = 2
		t.Fatalf("SupportMin = %d, want 2", d.SupportMin())
	}
	if d.SupportMax() != 4 { // min(t,w) = 4
		t.Fatalf("SupportMax = %d, want 4", d.SupportMax())
	}
	d2 := Dist{T: 2, W: 4, B: 5}
	if d2.SupportMin() != 0 || d2.SupportMax() != 2 {
		t.Fatalf("support of %+v wrong", d2)
	}
}

func TestMeanVarianceAgainstPMF(t *testing.T) {
	grid := []Dist{
		{3, 5, 5}, {10, 20, 5}, {7, 3, 30}, {20, 20, 20}, {13, 50, 11},
	}
	for _, d := range grid {
		var mean, m2, sum float64
		for k := d.SupportMin(); k <= d.SupportMax(); k++ {
			p := d.PMF(k)
			sum += p
			mean += float64(k) * p
			m2 += float64(k) * float64(k) * p
		}
		if math.Abs(sum-1) > 1e-10 {
			t.Fatalf("%+v: PMF sums to %g", d, sum)
		}
		if math.Abs(mean-d.Mean()) > 1e-8*(1+math.Abs(mean)) {
			t.Fatalf("%+v: mean %g vs closed form %g", d, mean, d.Mean())
		}
		va := m2 - mean*mean
		if math.Abs(va-d.Variance()) > 1e-6*(1+va) {
			t.Fatalf("%+v: var %g vs closed form %g", d, va, d.Variance())
		}
	}
}

func TestModeIsArgmax(t *testing.T) {
	grid := []Dist{{3, 5, 5}, {10, 20, 5}, {7, 3, 30}, {20, 20, 20}, {1, 1, 1}}
	for _, d := range grid {
		mode := d.Mode()
		pm := d.PMF(mode)
		for k := d.SupportMin(); k <= d.SupportMax(); k++ {
			if d.PMF(k) > pm+1e-12 {
				t.Fatalf("%+v: PMF(%d)=%g beats PMF(mode=%d)=%g",
					d, k, d.PMF(k), mode, pm)
			}
		}
	}
}

func TestCDF(t *testing.T) {
	d := Dist{T: 10, W: 15, B: 25}
	acc := 0.0
	for k := d.SupportMin(); k <= d.SupportMax(); k++ {
		acc += d.PMF(k)
		if got := d.CDF(k); math.Abs(got-acc) > 1e-9 {
			t.Fatalf("CDF(%d) = %g, want %g", k, got, acc)
		}
	}
	if d.CDF(d.SupportMin()-1) != 0 {
		t.Fatal("CDF below support must be 0")
	}
	if d.CDF(d.SupportMax()) != 1 {
		t.Fatal("CDF at support max must be 1")
	}
	if d.CDF(d.SupportMax()+5) != 1 {
		t.Fatal("CDF above support must be 1")
	}
}

func TestLogPMFOutsideSupport(t *testing.T) {
	d := Dist{T: 5, W: 3, B: 4}
	for _, k := range []int64{-1, 4, 6} {
		if !math.IsInf(d.LogPMF(k), -1) {
			t.Fatalf("LogPMF(%d) should be -inf", k)
		}
	}
}

// chiSquareSampler draws `trials` samples and computes the Pearson
// statistic against the exact PMF, merging tail cells below a minimum
// expectation.
func chiSquareSampler(t *testing.T, name string, d Dist, trials int,
	sample func(src xrand.Source) int64, src xrand.Source) float64 {
	t.Helper()
	lo, hi := d.SupportMin(), d.SupportMax()
	counts := make([]int64, hi-lo+1)
	for i := 0; i < trials; i++ {
		k := sample(src)
		if k < lo || k > hi {
			t.Fatalf("%s: sample %d outside support [%d,%d] for %+v", name, k, lo, hi, d)
		}
		counts[k-lo]++
	}
	// Merge cells with expectation < 5.
	var stat float64
	var accObs int64
	var accExp float64
	cells := 0
	flush := func() {
		if accExp > 0 {
			diff := float64(accObs) - accExp
			stat += diff * diff / accExp
			cells++
		}
		accObs, accExp = 0, 0
	}
	for k := lo; k <= hi; k++ {
		accObs += counts[k-lo]
		accExp += d.PMF(k) * float64(trials)
		if accExp >= 5 {
			flush()
		}
	}
	flush()
	if cells < 2 {
		return 0 // distribution is (nearly) deterministic: nothing to test
	}
	// Compare against the 99.9th percentile of chi2 with cells-1 df
	// (approximated via the Wilson-Hilferty transform).
	df := float64(cells - 1)
	z := 3.09 // 99.9%
	limit := df * math.Pow(1-2/(9*df)+z*math.Sqrt(2/(9*df)), 3)
	if stat > limit {
		t.Errorf("%s on %+v: chi2 = %.1f > %.1f (df %d)", name, d, stat, limit, cells-1)
	}
	return stat
}

var samplerGrid = []Dist{
	{3, 5, 5},
	{10, 30, 20},
	{25, 40, 60},
	{100, 300, 500},
	{50, 1000, 10},
	{500, 2000, 2000},
	{5000, 20000, 20000},   // HRUA territory
	{40000, 60000, 100000}, // HRUA, asymmetric
	{9, 100000, 11},        // tiny support, huge population
}

func TestSampleUrnExact(t *testing.T) {
	src := xrand.NewXoshiro256(101)
	for _, d := range samplerGrid[:4] { // urn is O(t): small cases only
		chiSquareSampler(t, "urn", d, 20000, func(s xrand.Source) int64 {
			return SampleUrn(s, d.T, d.W, d.B)
		}, src)
	}
}

func TestSampleChopExact(t *testing.T) {
	src := xrand.NewXoshiro256(103)
	for _, d := range samplerGrid {
		chiSquareSampler(t, "chop", d, 20000, func(s xrand.Source) int64 {
			return SampleChop(s, d.T, d.W, d.B)
		}, src)
	}
}

func TestSampleHRUAExact(t *testing.T) {
	src := xrand.NewXoshiro256(107)
	for _, d := range samplerGrid {
		if d.SupportMax()-d.SupportMin() < 2 {
			continue // degenerate: HRUA requires real spread
		}
		chiSquareSampler(t, "hrua", d, 20000, func(s xrand.Source) int64 {
			return SampleHRUA(s, d.T, d.W, d.B)
		}, src)
	}
}

func TestSampleAutoExact(t *testing.T) {
	src := xrand.NewXoshiro256(109)
	for _, d := range samplerGrid {
		chiSquareSampler(t, "auto", d, 20000, func(s xrand.Source) int64 {
			return Sample(s, d.T, d.W, d.B)
		}, src)
	}
}

func TestSamplersAgreeOnSymmetries(t *testing.T) {
	// The four symmetry reductions of HRUA must all produce the right
	// marginal mean; exercised with parameters forcing each branch.
	src := xrand.NewXoshiro256(113)
	cases := []Dist{
		{2000, 30000, 10000}, // good > bad
		{2000, 10000, 30000}, // good < bad
		{35000, 10000, 30000},
		{35000, 30000, 10000},
	}
	const trials = 30000
	for _, d := range cases {
		var sum float64
		for i := 0; i < trials; i++ {
			sum += float64(SampleHRUA(src, d.T, d.W, d.B))
		}
		got := sum / trials
		sd := math.Sqrt(d.Variance() / trials)
		if math.Abs(got-d.Mean()) > 6*sd {
			t.Fatalf("%+v: sample mean %.2f, expect %.2f +- %.2f", d, got, d.Mean(), 6*sd)
		}
	}
}

func TestSampleDegenerate(t *testing.T) {
	src := xrand.NewXoshiro256(127)
	cases := []struct {
		t, w, b, want int64
	}{
		{0, 10, 10, 0},
		{5, 0, 10, 0},
		{5, 10, 0, 5},
		{20, 10, 10, 10},
		{3, 3, 0, 3},
	}
	for _, c := range cases {
		for i := 0; i < 10; i++ {
			if got := Sample(src, c.t, c.w, c.b); got != c.want {
				t.Fatalf("Sample(%d,%d,%d) = %d, want %d", c.t, c.w, c.b, got, c.want)
			}
		}
	}
}

func TestSamplePanicsOnInvalid(t *testing.T) {
	src := xrand.NewXoshiro256(1)
	for _, c := range []struct{ t, w, b int64 }{
		{-1, 5, 5}, {5, -1, 5}, {5, 5, -1}, {11, 5, 5},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Sample(%d,%d,%d) did not panic", c.t, c.w, c.b)
				}
			}()
			Sample(src, c.t, c.w, c.b)
		}()
	}
}

func TestSampleSupportProperty(t *testing.T) {
	src := xrand.NewXoshiro256(131)
	f := func(t8, w8, b8 uint16) bool {
		w := int64(w8 % 2000)
		b := int64(b8 % 2000)
		if w+b == 0 {
			return true
		}
		tt := int64(t8) % (w + b + 1)
		d := Dist{T: tt, W: w, B: b}
		k := Sample(src, tt, w, b)
		return k >= d.SupportMin() && k <= d.SupportMax()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDrawBudget(t *testing.T) {
	// The resource contract of E2: chop uses exactly 1 draw; the auto
	// sampler never exceeds 9 draws per call.
	cnt := xrand.NewCounting(xrand.NewXoshiro256(137))
	for _, d := range samplerGrid {
		for i := 0; i < 3000; i++ {
			before := cnt.Count()
			Sample(cnt, d.T, d.W, d.B)
			used := cnt.Count() - before
			if used > 9 {
				t.Fatalf("Sample(%+v) used %d draws (max 9)", d, used)
			}
		}
	}
	cnt.Reset()
	d := Dist{T: 100, W: 300, B: 500} // sd ~ 5: chop territory
	for i := 0; i < 1000; i++ {
		before := cnt.Count()
		SampleChop(cnt, d.T, d.W, d.B)
		if used := cnt.Count() - before; used != 1 {
			t.Fatalf("SampleChop used %d draws, want exactly 1", used)
		}
	}
}

func TestChopEqualsDistributionOfUrn(t *testing.T) {
	// Two exact samplers must agree in distribution: compare empirical
	// CDFs coarsely.
	src := xrand.NewXoshiro256(139)
	d := Dist{T: 30, W: 40, B: 50}
	const trials = 40000
	var urnCounts, chopCounts [31]int64
	for i := 0; i < trials; i++ {
		urnCounts[SampleUrn(src, d.T, d.W, d.B)]++
		chopCounts[SampleChop(src, d.T, d.W, d.B)]++
	}
	var urnCum, chopCum, maxDiff float64
	for k := 0; k <= 30; k++ {
		urnCum += float64(urnCounts[k]) / trials
		chopCum += float64(chopCounts[k]) / trials
		if diff := math.Abs(urnCum - chopCum); diff > maxDiff {
			maxDiff = diff
		}
	}
	// Two-sample KS bound at alpha=0.001: 1.95*sqrt(2/n).
	if limit := 1.95 * math.Sqrt(2.0/trials); maxDiff > limit {
		t.Fatalf("urn vs chop KS distance %.4f > %.4f", maxDiff, limit)
	}
}

func BenchmarkSampleChop(b *testing.B) {
	src := xrand.NewXoshiro256(1)
	for i := 0; i < b.N; i++ {
		SampleChop(src, 100, 300, 500)
	}
}

func BenchmarkSampleHRUA(b *testing.B) {
	src := xrand.NewXoshiro256(1)
	for i := 0; i < b.N; i++ {
		SampleHRUA(src, 100000, 1000000, 1000000)
	}
}

func BenchmarkSampleAuto(b *testing.B) {
	src := xrand.NewXoshiro256(1)
	for i := 0; i < b.N; i++ {
		Sample(src, 100000, 1000000, 1000000)
	}
}
