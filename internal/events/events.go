// Package events is permd's internal event bus: a typed, lock-light
// publish/subscribe fabric that every layer of the daemon feeds —
// handle materializations and cache evictions from the service layer,
// quota refusals and build admissions from the multi-tenant gates,
// round transitions and peer-health changes from the cluster — and that
// the live-operations surface (GET /v1/events, permtop) drains.
//
// The design constraint is the serving hot path: publishing must cost
// one short critical section and N non-blocking channel sends, no
// matter how slow the slowest subscriber is. Every subscriber owns a
// bounded buffered channel; a publish that finds a subscriber's buffer
// full drops the event for that subscriber and counts the drop — it
// never blocks, never allocates per subscriber, and never perturbs a
// byte served. Events are therefore best-effort by contract: the
// delivery guarantee is "at most once per subscriber, in publish
// order, with drops counted", and anything that needs exactness
// (billing, determinism) must come from the metrics counters or the
// responses themselves, never from this bus.
//
// For reconnecting consumers the bus keeps a bounded replay ring of
// the most recent events: a subscriber that presents the last sequence
// number it saw gets the missed suffix (up to the ring bound) replayed
// into its buffer before live delivery begins, with no duplicates and
// no gaps — the seam under the SSE endpoint's Last-Event-ID resume.
package events

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Type enumerates the event vocabulary. The wire names (see String)
// are part of the /v1/events contract: they appear in JSON payloads,
// in the ?types= filter grammar, and in permtop's timeline.
type Type uint8

const (
	// TypeRequest is one completed HTTP request: endpoint, duration,
	// items served, and the handle-cache outcome when one was touched.
	TypeRequest Type = iota
	// TypeMaterialization is one lazy full-permutation build completing
	// (the stream layer's OnMaterialize hook).
	TypeMaterialization
	// TypeCacheEvict is the handle LRU dropping its least-recently-used
	// entry past capacity.
	TypeCacheEvict
	// TypeSlowRequest is a request whose wall time exceeded the
	// server's slow threshold.
	TypeSlowRequest
	// TypeQuotaRefusal is a request refused with 429 by the per-client
	// quota.
	TypeQuotaRefusal
	// TypeAdmissionQueue is a materializing build resolving against the
	// admission gate: admitted straight in, admitted after queueing, or
	// refused at the queue deadline (see Event.Detail).
	TypeAdmissionQueue
	// TypeClusterRound is a cluster shard build completing one of the
	// paper's rounds (1 matrix, 2 exchange, 3 arrange), or a serving-
	// time replica read hedging or failing over (Detail says which).
	TypeClusterRound
	// TypePeerHealthChange is this node's view of a peer moving between
	// healthy, suspect and down.
	TypePeerHealthChange
	// TypeJoinResult is a geometry handshake resolving, served or
	// dialed (Detail "in"/"out", State "ok"/"mismatch"/"error").
	TypeJoinResult

	typeCount // sentinel; keep last
)

var typeNames = [typeCount]string{
	"request",
	"materialization",
	"cache_evict",
	"slow_request",
	"quota_refusal",
	"admission_queue",
	"cluster_round",
	"peer_health_change",
	"join_result",
}

// String returns the wire name of the type ("materialization",
// "cluster_round", ...).
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// ParseType resolves a wire name back to its Type.
func ParseType(s string) (Type, error) {
	for i, name := range typeNames {
		if s == name {
			return Type(i), nil
		}
	}
	return 0, fmt.Errorf("events: unknown event type %q", s)
}

// MarshalJSON encodes the type as its wire name, which is what the SSE
// payloads and permtop consume.
func (t Type) MarshalJSON() ([]byte, error) { return json.Marshal(t.String()) }

// UnmarshalJSON decodes a wire name.
func (t *Type) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, err := ParseType(s)
	if err != nil {
		return err
	}
	*t = v
	return nil
}

// Event is one bus occurrence. The struct is deliberately flat — one
// shape for every type, with fields unused by a type left at their
// zero (omitted from JSON) or sentinel (-1 for Peer/Round/Slot, which
// legitimately take the value 0) — so subscribers, the SSE stream and
// permtop handle every event with one decoder.
type Event struct {
	// Seq is the bus-assigned sequence number, strictly increasing from
	// 1, the Last-Event-ID currency of the SSE resume protocol.
	Seq uint64 `json:"seq"`
	// TimeNs is the publish wall time in Unix nanoseconds. Publishers
	// may pre-set it (fixtures do); zero is stamped by the bus.
	TimeNs int64 `json:"time_ns"`
	// Type selects which of the fields below are meaningful.
	Type Type `json:"type"`

	Endpoint string `json:"endpoint,omitempty"` // request path, e.g. "/v1/perm/42/chunk"
	Backend  string `json:"backend,omitempty"`  // backend name, when one was resolved
	Client   string `json:"client,omitempty"`   // quota identity (X-Permd-Client or host)
	N        int64  `json:"n,omitempty"`        // domain size
	Seed     uint64 `json:"seed,omitempty"`     // permutation seed
	Items    int64  `json:"items,omitempty"`    // items served / refused cost
	Ns       int64  `json:"ns,omitempty"`       // duration in nanoseconds
	Cache    string `json:"cache,omitempty"`    // "hit" or "miss" when a handle was resolved

	// Peer, Round and Slot use -1 (not 0) as "not applicable": peer 0,
	// round 0 (RoundServe) and slot 0 are all meaningful values. New
	// initializes them; they are always serialized.
	Peer  int `json:"peer"`  // subject peer index
	Round int `json:"round"` // cluster round (1 matrix, 2 exchange, 3 arrange; 0 serve-time)
	Slot  int `json:"slot"`  // shard slot under construction

	State  string `json:"state,omitempty"`  // new state (peer health, join outcome)
	Detail string `json:"detail,omitempty"` // free-form qualifier ("queued", "hedge_win", ...)
}

// New returns an Event of type t with the -1 sentinels applied. Always
// construct events through New so an unset Peer/Round/Slot reads as
// "not applicable" rather than as index 0.
func New(t Type) Event {
	return Event{Type: t, Peer: -1, Round: -1, Slot: -1}
}

// TypeSet is a bitmask filter over event types. The zero TypeSet
// matches nothing; All() matches everything.
type TypeSet uint16

// All returns the set matching every event type.
func All() TypeSet { return TypeSet(1<<typeCount) - 1 }

// With returns ts with t added.
func (ts TypeSet) With(t Type) TypeSet { return ts | 1<<t }

// Has reports whether t is in the set.
func (ts TypeSet) Has(t Type) bool { return ts&(1<<t) != 0 }

// String renders the set in the ?types= grammar: the wire names of its
// members, comma-separated, in declaration order. All() renders as ""
// (the grammar's "everything" spelling), so ParseFilter(ts.String())
// always reproduces ts.
func (ts TypeSet) String() string {
	if ts == All() {
		return ""
	}
	out := ""
	for t := Type(0); t < typeCount; t++ {
		if !ts.Has(t) {
			continue
		}
		if out != "" {
			out += ","
		}
		out += t.String()
	}
	return out
}

// ParseFilter parses the ?types= grammar: a comma-separated list of
// wire names (duplicates tolerated, empty elements rejected, no
// surrounding spaces). The empty string means every type. The accepted
// set round-trips through String.
func ParseFilter(s string) (TypeSet, error) {
	if s == "" {
		return All(), nil
	}
	var ts TypeSet
	for {
		name, rest := s, ""
		more := false
		if i := indexByte(s, ','); i >= 0 {
			name, rest, more = s[:i], s[i+1:], true
		}
		t, err := ParseType(name) // rejects "", so ",", "a,", ",a" all fail
		if err != nil {
			return 0, err
		}
		ts = ts.With(t)
		if !more {
			return ts, nil
		}
		s = rest
	}
}

// indexByte avoids importing strings for one call site.
func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// ErrSubscriberLimit is returned by Subscribe when the bus already has
// its configured maximum of live subscriptions. The SSE endpoint maps
// it onto 503.
var ErrSubscriberLimit = errors.New("events: subscriber limit reached")

// Options sizes a Bus. The zero value is usable; every field has a
// default applied by NewBus.
type Options struct {
	// Buffer is each subscription's channel capacity (default 256): the
	// backpressure bound. A subscriber that falls further behind than
	// this loses events (counted), never slows a publisher.
	Buffer int
	// Replay is the replay ring capacity (default 1024): how far back a
	// Last-Event-ID resume can reach.
	Replay int
	// MaxSubscribers caps live subscriptions (default 64).
	MaxSubscribers int
}

func (o Options) withDefaults() Options {
	if o.Buffer <= 0 {
		o.Buffer = 256
	}
	if o.Replay <= 0 {
		o.Replay = 1024
	}
	if o.MaxSubscribers <= 0 {
		o.MaxSubscribers = 64
	}
	return o
}

// Bus is the event fabric. Create one with NewBus; all methods are
// safe for concurrent use. A Bus with no subscribers costs a publisher
// one mutex acquisition and one ring write — cheap enough to leave
// permanently attached to the serving path (the non-perturbation
// benchmark in internal/service holds it to that).
type Bus struct {
	opt Options
	now func() time.Time // injectable for fixture-stable tests

	published atomic.Int64
	dropped   atomic.Int64

	mu   sync.Mutex
	seq  uint64
	ring []Event // circular, indexed by (seq-1) % len
	subs map[*Subscription]struct{}
}

// NewBus builds a bus from opts (zero value fine).
func NewBus(opts Options) *Bus {
	opts = opts.withDefaults()
	return &Bus{
		opt:  opts,
		now:  time.Now,
		ring: make([]Event, opts.Replay),
		subs: make(map[*Subscription]struct{}),
	}
}

// SetClock replaces the bus's wall clock (tests and fixtures only).
// Must be called before the bus is shared.
func (b *Bus) SetClock(now func() time.Time) { b.now = now }

// Publish assigns ev the next sequence number (and a timestamp, when
// ev.TimeNs is zero), appends it to the replay ring, and offers it to
// every subscription whose filter matches. It never blocks: a full
// subscriber buffer drops the event for that subscriber and counts the
// drop. Returns the assigned sequence number.
func (b *Bus) Publish(ev Event) uint64 {
	if ev.TimeNs == 0 {
		ev.TimeNs = b.now().UnixNano()
	}
	b.mu.Lock()
	b.seq++
	ev.Seq = b.seq
	b.ring[int((b.seq-1)%uint64(len(b.ring)))] = ev
	for sub := range b.subs {
		sub.offer(b, ev)
	}
	b.mu.Unlock()
	b.published.Add(1)
	return ev.Seq
}

// Subscribe registers a new subscription filtered to types, replaying
// the events with sequence numbers in (afterSeq, head] that survive in
// the ring before live delivery begins — atomically, so no event
// published concurrently with the Subscribe is missed or duplicated.
// Pass LastSeq() for a live-only subscription, or the last sequence
// number previously seen to resume. Events older than the ring bound
// are gone; the replay then starts at the ring floor (the SSE consumer
// can detect the gap by comparing the first Seq it receives against
// its Last-Event-ID + 1). Returns ErrSubscriberLimit at capacity.
func (b *Bus) Subscribe(types TypeSet, afterSeq uint64) (*Subscription, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.subs) >= b.opt.MaxSubscribers {
		return nil, ErrSubscriberLimit
	}
	sub := &Subscription{bus: b, types: types, ch: make(chan Event, b.opt.Buffer)}
	if afterSeq < b.seq {
		lo := afterSeq + 1
		if floor := b.ringFloor(); lo < floor {
			lo = floor
		}
		for s := lo; s <= b.seq; s++ {
			sub.offer(b, b.ring[int((s-1)%uint64(len(b.ring)))])
		}
	}
	b.subs[sub] = struct{}{}
	return sub, nil
}

// ringFloor returns the smallest sequence number still in the ring
// (callers hold b.mu). With no events published it returns 1 — an
// empty replay range.
func (b *Bus) ringFloor() uint64 {
	if b.seq <= uint64(len(b.ring)) {
		return 1
	}
	return b.seq - uint64(len(b.ring)) + 1
}

// LastSeq returns the most recently assigned sequence number (0 before
// the first publish) — the afterSeq for a live-only subscription.
func (b *Bus) LastSeq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Published returns how many events have been published.
func (b *Bus) Published() int64 { return b.published.Load() }

// Dropped returns how many event deliveries were dropped across all
// subscriptions since the bus was created (the permd_events_dropped_total
// figure). Deliveries, not events: one event dropped by two slow
// subscribers counts twice.
func (b *Bus) Dropped() int64 { return b.dropped.Load() }

// Subscribers returns the number of live subscriptions.
func (b *Bus) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Subscription is one subscriber's bounded view of the bus. Receive
// from Events() until it closes; Close releases the slot.
type Subscription struct {
	bus     *Bus
	types   TypeSet
	ch      chan Event
	dropped atomic.Uint64
	closed  bool // guarded by bus.mu
}

// offer delivers ev to the subscription without blocking (callers hold
// bus.mu, which also orders offers against Close's channel close).
func (s *Subscription) offer(b *Bus, ev Event) {
	if !s.types.Has(ev.Type) {
		return
	}
	select {
	case s.ch <- ev:
	default:
		s.dropped.Add(1)
		b.dropped.Add(1)
	}
}

// Events returns the delivery channel: events in publish order, with
// drops (counted by Dropped) where this subscriber fell behind. The
// channel closes after Close.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Dropped returns how many events this subscription has lost to
// backpressure.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Close unregisters the subscription and closes its channel. Safe to
// call more than once, and safe concurrently with Publish: delivery
// and close are ordered by the bus lock, so a publisher never sends on
// a closed channel.
func (s *Subscription) Close() {
	b := s.bus
	b.mu.Lock()
	if !s.closed {
		s.closed = true
		delete(b.subs, s)
		close(s.ch)
	}
	b.mu.Unlock()
}
