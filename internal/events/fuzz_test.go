package events

import "testing"

// FuzzParseEventFilter pins the ?types= grammar: arbitrary input never
// panics, and any accepted filter survives a String/Parse round trip
// (so a filter echoed back to a client reparses to the same set).
func FuzzParseEventFilter(f *testing.F) {
	f.Add("")
	f.Add("materialization")
	f.Add("materialization,cache_evict")
	f.Add("request,slow_request,quota_refusal")
	f.Add("bogus")
	f.Add(",")
	f.Add("materialization,,cache_evict")
	f.Add("MATERIALIZATION")
	f.Add("materialization ,cache_evict")
	f.Fuzz(func(t *testing.T, s string) {
		set, err := ParseFilter(s)
		if err != nil {
			return
		}
		if set == 0 {
			t.Fatalf("ParseFilter(%q) accepted an empty set", s)
		}
		back, err := ParseFilter(set.String())
		if err != nil {
			t.Fatalf("accepted filter %q -> %q failed to reparse: %v", s, set.String(), err)
		}
		if back != set {
			t.Fatalf("round trip: %q -> %016b -> %q -> %016b", s, set, set.String(), back)
		}
	})
}
