package events

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestFanOut: every active subscriber receives every matching event,
// in publish order, even when publishers race — the core delivery
// contract, exercised under -race by CI.
func TestFanOut(t *testing.T) {
	const subs, publishers, perPublisher = 16, 4, 250
	const total = publishers * perPublisher
	b := NewBus(Options{Buffer: total, MaxSubscribers: subs})

	subscriptions := make([]*Subscription, subs)
	for i := range subscriptions {
		var err error
		subscriptions[i], err = b.Subscribe(All(), b.LastSeq())
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				ev := New(TypeMaterialization)
				ev.N = int64(p*perPublisher + i)
				b.Publish(ev)
			}
		}(p)
	}
	wg.Wait()

	if got := b.Published(); got != total {
		t.Fatalf("published %d, want %d", got, total)
	}
	for i, sub := range subscriptions {
		seen := make(map[int64]bool)
		lastSeq := uint64(0)
		for j := 0; j < total; j++ {
			ev := <-sub.Events()
			if ev.Seq <= lastSeq {
				t.Fatalf("subscriber %d: sequence not increasing: %d after %d", i, ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
			if seen[ev.N] {
				t.Fatalf("subscriber %d: duplicate payload %d", i, ev.N)
			}
			seen[ev.N] = true
		}
		if len(seen) != total {
			t.Fatalf("subscriber %d: received %d distinct events, want %d", i, len(seen), total)
		}
		if d := sub.Dropped(); d != 0 {
			t.Fatalf("subscriber %d: dropped %d with an ample buffer", i, d)
		}
		sub.Close()
	}
	if d := b.Dropped(); d != 0 {
		t.Fatalf("bus counted %d drops, want 0", d)
	}
}

// TestWedgedSubscriberNeverBlocksPublish is the backpressure pin: a
// subscriber that never reads costs publishers nothing. The test is
// deliberately timeout-free — if publish could block on the wedged
// channel the test would hang and the suite's own deadline would flag
// it, which is exactly the regression this guards against.
func TestWedgedSubscriberNeverBlocksPublish(t *testing.T) {
	const buffer, total = 4, 10_000
	b := NewBus(Options{Buffer: buffer})
	wedged, err := b.Subscribe(All(), 0)
	if err != nil {
		t.Fatal(err)
	}
	active, err := b.Subscribe(All(), 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan int)
	go func() { // active reader drains concurrently until Close
		n := 0
		for range active.Events() {
			n++
		}
		done <- n
	}()

	for i := 0; i < total; i++ {
		b.Publish(New(TypeRequest)) // must never block, wedged or not
	}

	if d := wedged.Dropped(); d != total-buffer {
		t.Fatalf("wedged subscriber dropped %d, want %d", d, total-buffer)
	}
	active.Close()
	received := <-done
	// The active reader may itself drop under this tiny buffer, but no
	// delivery goes unaccounted: received + dropped covers every publish.
	if got := uint64(received) + active.Dropped(); got != total {
		t.Fatalf("active subscriber: %d received + %d dropped = %d, want %d",
			received, active.Dropped(), got, uint64(total))
	}
	if d := b.Dropped(); d != int64(wedged.Dropped()+active.Dropped()) {
		t.Fatalf("bus drop counter %d, want %d", d, wedged.Dropped()+active.Dropped())
	}
	wedged.Close()
}

// TestUnsubscribeDuringPublish races Close against Publish: the bus
// lock must order delivery and channel close so no publish ever sends
// on a closed channel (which would panic) and no subscriber slot
// leaks. Run under -race in CI.
func TestUnsubscribeDuringPublish(t *testing.T) {
	b := NewBus(Options{Buffer: 8, MaxSubscribers: 64})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					b.Publish(New(TypeCacheEvict))
				}
			}
		}()
	}
	for round := 0; round < 200; round++ {
		sub, err := b.Subscribe(All(), b.LastSeq())
		if err != nil {
			t.Fatal(err)
		}
		// Drain a little, then unsubscribe while publishers hammer on.
		for i := 0; i < 3; i++ {
			select {
			case <-sub.Events():
			default:
			}
		}
		sub.Close()
		sub.Close() // idempotent
	}
	close(stop)
	wg.Wait()
	if n := b.Subscribers(); n != 0 {
		t.Fatalf("%d subscribers leaked", n)
	}
}

// TestReplayResume pins the Last-Event-ID contract: a subscriber
// presenting afterSeq = k receives exactly k+1..head (no duplicates,
// no gaps) for any k within the ring bound, then live events with the
// next sequence numbers.
func TestReplayResume(t *testing.T) {
	const replay, published = 32, 100
	b := NewBus(Options{Replay: replay, Buffer: 256})
	for i := 0; i < published; i++ {
		ev := New(TypeMaterialization)
		ev.N = int64(i)
		b.Publish(ev)
	}
	head := b.LastSeq()
	floor := head - replay + 1 // oldest sequence still in the ring

	for _, after := range []uint64{head, head - 1, head - replay/2, floor - 1, floor, 10, 0} {
		sub, err := b.Subscribe(All(), after)
		if err != nil {
			t.Fatal(err)
		}
		wantFirst := after + 1
		if wantFirst < floor {
			wantFirst = floor // older events are gone; replay starts at the bound
		}
		want := wantFirst
		for want <= head {
			ev := <-sub.Events()
			if ev.Seq != want {
				t.Fatalf("resume after %d: got seq %d, want %d", after, ev.Seq, want)
			}
			want++
		}
		// Live delivery picks up exactly after the replayed suffix.
		liveSeq := b.Publish(New(TypeCacheEvict))
		if ev := <-sub.Events(); ev.Seq != liveSeq {
			t.Fatalf("resume after %d: live event seq %d, want %d", after, ev.Seq, liveSeq)
		}
		head = liveSeq
		floor = head - replay + 1
		sub.Close()
	}
}

// TestReplayHonorsFilter: resume and type filtering compose — the
// replayed suffix contains only matching events, still in order.
func TestReplayHonorsFilter(t *testing.T) {
	b := NewBus(Options{})
	var matSeqs []uint64
	for i := 0; i < 10; i++ {
		matSeqs = append(matSeqs, b.Publish(New(TypeMaterialization)))
		b.Publish(New(TypeRequest))
	}
	sub, err := b.Subscribe(TypeSet(0).With(TypeMaterialization), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for _, want := range matSeqs {
		ev := <-sub.Events()
		if ev.Seq != want || ev.Type != TypeMaterialization {
			t.Fatalf("got (seq %d, %s), want (seq %d, materialization)", ev.Seq, ev.Type, want)
		}
	}
}

// TestSubscriberLimit: the cap refuses the N+1th subscription and a
// Close frees the slot.
func TestSubscriberLimit(t *testing.T) {
	b := NewBus(Options{MaxSubscribers: 2})
	s1, err := b.Subscribe(All(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(All(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe(All(), 0); err != ErrSubscriberLimit {
		t.Fatalf("third subscribe: got %v, want ErrSubscriberLimit", err)
	}
	s1.Close()
	s3, err := b.Subscribe(All(), 0)
	if err != nil {
		t.Fatalf("subscribe after close: %v", err)
	}
	s3.Close()
}

// TestPublishStampsSeqAndTime: sequence numbers start at 1 and
// increment; a zero TimeNs is stamped from the bus clock, a pre-set
// one (fixtures) is preserved.
func TestPublishStampsSeqAndTime(t *testing.T) {
	b := NewBus(Options{})
	fixed := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	b.SetClock(func() time.Time { return fixed })
	sub, _ := b.Subscribe(All(), 0)
	defer sub.Close()

	if seq := b.Publish(New(TypeRequest)); seq != 1 {
		t.Fatalf("first seq %d, want 1", seq)
	}
	pre := New(TypeRequest)
	pre.TimeNs = 42
	if seq := b.Publish(pre); seq != 2 {
		t.Fatalf("second seq %d, want 2", seq)
	}
	ev1, ev2 := <-sub.Events(), <-sub.Events()
	if ev1.TimeNs != fixed.UnixNano() {
		t.Fatalf("stamped time %d, want %d", ev1.TimeNs, fixed.UnixNano())
	}
	if ev2.TimeNs != 42 {
		t.Fatalf("pre-set time %d, want 42", ev2.TimeNs)
	}
}

// TestEventJSONRoundTrip: the wire shape — type as its wire name, -1
// sentinels always present, zero payload fields omitted.
func TestEventJSONRoundTrip(t *testing.T) {
	ev := New(TypePeerHealthChange)
	ev.Seq, ev.TimeNs, ev.Peer, ev.State, ev.Detail = 7, 123, 0, "down", "healthy"
	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"type":"peer_health_change"`, `"peer":0`, `"round":-1`, `"slot":-1`} {
		if !jsonContains(string(data), want) {
			t.Fatalf("encoded event %s missing %s", data, want)
		}
	}
	var back Event
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != ev {
		t.Fatalf("round trip: got %+v, want %+v", back, ev)
	}
}

func jsonContains(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

// TestParseFilter covers the grammar table: empty = all, single and
// multi-element lists, duplicates, and the error cases.
func TestParseFilter(t *testing.T) {
	cases := []struct {
		in   string
		want TypeSet
		ok   bool
	}{
		{"", All(), true},
		{"materialization", TypeSet(0).With(TypeMaterialization), true},
		{"materialization,cache_evict", TypeSet(0).With(TypeMaterialization).With(TypeCacheEvict), true},
		{"cache_evict,materialization,cache_evict", TypeSet(0).With(TypeMaterialization).With(TypeCacheEvict), true},
		{"request,slow_request,quota_refusal,admission_queue,cluster_round,peer_health_change,join_result,materialization,cache_evict", All(), true},
		{"bogus", 0, false},
		{"materialization,", 0, false},
		{",materialization", 0, false},
		{"materialization, cache_evict", 0, false}, // spaces are not grammar
		{"MATERIALIZATION", 0, false},
	}
	for _, c := range cases {
		got, err := ParseFilter(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParseFilter(%q): err = %v, want ok=%v", c.in, err, c.ok)
		}
		if c.ok && got != c.want {
			t.Fatalf("ParseFilter(%q) = %016b, want %016b", c.in, got, c.want)
		}
	}
}

// TestFilterStringRoundTrip: every set's String() reparses to the same
// set — the property FuzzParseEventFilter hammers with arbitrary input.
func TestFilterStringRoundTrip(t *testing.T) {
	for mask := TypeSet(0); mask <= All(); mask++ {
		if mask == 0 {
			continue // the empty set has no spelling in the grammar
		}
		s := mask.String()
		back, err := ParseFilter(s)
		if err != nil {
			t.Fatalf("ParseFilter(%q.String()): %v", mask, err)
		}
		if back != mask {
			t.Fatalf("round trip %016b -> %q -> %016b", mask, s, back)
		}
	}
}

// TestTypeNamesComplete guards the parallel tables: every type has a
// distinct wire name that parses back to itself.
func TestTypeNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for i := Type(0); i < typeCount; i++ {
		name := i.String()
		if seen[name] {
			t.Fatalf("duplicate wire name %q", name)
		}
		seen[name] = true
		back, err := ParseType(name)
		if err != nil || back != i {
			t.Fatalf("ParseType(%q) = (%v, %v), want (%d, nil)", name, back, err, i)
		}
	}
	if _, err := ParseType(fmt.Sprintf("type(%d)", typeCount)); err == nil {
		t.Fatal("out-of-range String() spelling must not parse")
	}
}
