package harness

import "time"

// Config scales the experiments. The zero value plus WithDefaults is a
// laptop-friendly configuration; Quick shrinks everything for CI; the
// paper's original 480M-item runs are reachable with N = 480e6 on a
// machine with enough memory.
type Config struct {
	// N is the item count for the timing experiments (E1, E3, E8).
	N int64
	// Trials is the sample count for the statistical experiments
	// (E5, E7).
	Trials int
	// Seed drives all randomness.
	Seed uint64
	// Ps lists the machine sizes of the scaling experiment E3.
	Ps []int
	// CPUGHz converts ns/item into estimated cycles/item for the
	// comparison with the paper's 60-100 cycles (E1).
	CPUGHz float64
	// Quick shrinks all workloads by roughly an order of magnitude.
	Quick bool
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.N == 0 {
		c.N = 8 << 20 // 8Mi items
		if c.Quick {
			c.N = 1 << 20
		}
	}
	if c.Trials == 0 {
		c.Trials = 72000
		if c.Quick {
			c.Trials = 21600
		}
	}
	if c.Seed == 0 {
		c.Seed = 0x5EED_0F_9A9E4 // arbitrary fixed default
	}
	if len(c.Ps) == 0 {
		// The processor counts of the paper's Origin 2000 runs.
		c.Ps = []int{1, 3, 6, 12, 24, 48}
	}
	if c.CPUGHz == 0 {
		c.CPUGHz = 3.0
	}
	return c
}

// timeIt runs f once and returns the wall-clock duration.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// nsPerItem converts a duration over n items into nanoseconds per item.
func nsPerItem(d time.Duration, n int64) float64 {
	if n == 0 {
		return 0
	}
	return float64(d.Nanoseconds()) / float64(n)
}
