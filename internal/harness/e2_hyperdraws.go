package harness

import (
	"randperm/internal/hyper"
	"randperm/internal/xrand"
)

// E2 reproduces the paper's Section 3/6 resource measurement of the
// hypergeometric sampler: "the amount of random numbers per sample of
// h(,) was always less than 1.5 on average and 10 for the worst case".
// For a grid of parameters from tiny to 10^9 the table reports the mean
// and maximum raw 64-bit draws per sample, measured with a counting
// generator.
func E2(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		ID:    "E2",
		Title: "random numbers per hypergeometric sample (paper: <1.5 avg, <=10 max)",
		Columns: []string{
			"t", "w", "b", "samples", "avg draws", "max draws", "mean k", "expected",
		},
	}
	type params struct{ t, w, b int64 }
	grid := []params{
		{5, 10, 10},
		{20, 50, 50},
		{100, 1000, 1000},
		{1000, 5000, 5000},
		{10000, 100000, 100000},
		{100000, 1000000, 1000000},
		{1000000, 10000000, 10000000},
		{100000000, 1000000000, 1000000000},
		{7, 1000000, 3},       // extreme asymmetry, tiny support
		{1000, 10, 1000000},   // rare whites
		{500400, 500, 500000}, // draws near the whole population
	}
	samples := cfg.Trials / 4
	if samples < 2000 {
		samples = 2000
	}

	var grandDraws, grandSamples uint64
	var grandMax uint64
	cnt := xrand.NewCounting(xrand.NewXoshiro256(cfg.Seed))
	for _, g := range grid {
		var sum int64
		var maxDraws uint64
		cnt.Reset()
		var prev uint64
		for s := 0; s < samples; s++ {
			k := hyper.Sample(cnt, g.t, g.w, g.b)
			sum += k
			used := cnt.Count() - prev
			prev = cnt.Count()
			if used > maxDraws {
				maxDraws = used
			}
		}
		total := cnt.Count()
		grandDraws += total
		grandSamples += uint64(samples)
		if maxDraws > grandMax {
			grandMax = maxDraws
		}
		d := hyper.Dist{T: g.t, W: g.w, B: g.b}
		t.AddRow(g.t, g.w, g.b, samples,
			float64(total)/float64(samples), maxDraws,
			float64(sum)/float64(samples), d.Mean())
	}
	t.AddNote("blended average over the grid: %.3f draws/sample, worst case %d (paper: <1.5 avg, 10 max)",
		float64(grandDraws)/float64(grandSamples), grandMax)
	t.AddNote("sampler switch: chop-down (1 draw) below sd<=64; HRUA rejection (2 draws/round, max 4 rounds) above, with an exact chop-down fallback bounding the worst case at 9")
	return t, nil
}
