package harness

import (
	"fmt"

	"randperm/internal/baseline"
	"randperm/internal/core"
)

// E6 measures the balance criterion (Section 1): during and after the
// permutation, no processor may be overloaded. Algorithm 1 is balanced by
// construction (output block sizes are the prescribed m', and per-
// processor work is counted); RandRoute produces multinomial loads that
// overshoot the target by Theta(sqrt(m)); DartThrowing restores balance
// only through rejection rounds whose count explodes as the slack
// epsilon shrinks - the work-optimality versus balance trade-off the
// paper resolves.
func E6(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	p := 16
	n := cfg.N / 64
	if n < int64(p*p) {
		n = int64(p * p * 16)
	}
	m := n / int64(p)
	t := &Table{
		ID:    "E6",
		Title: fmt.Sprintf("balance: n=%d items, p=%d, target block m=%d", n, p, m),
		Columns: []string{
			"method", "max load", "max/target", "rounds", "max ops/proc", "ops/(n/p)",
		},
	}

	sizes := core.EvenBlocks(n, p)
	mkBlocks := func() [][]int64 {
		blocks, err := core.Split(core.Iota(n), sizes)
		if err != nil {
			panic(err)
		}
		return blocks
	}

	// Algorithm 1: output sizes are exact by construction.
	{
		out, mach, err := core.Permute(mkBlocks(), sizes, core.Config{Seed: cfg.Seed, Matrix: core.MatrixOpt})
		if err != nil {
			return nil, err
		}
		var maxLoad int64
		for _, b := range out {
			if int64(len(b)) > maxLoad {
				maxLoad = int64(len(b))
			}
		}
		rep := mach.Report()
		t.AddRow("alg1(opt)", maxLoad, float64(maxLoad)/float64(m), 1,
			rep.MaxOps(), float64(rep.MaxOps())/float64(m))
	}

	// RandRoute: multinomial loads.
	{
		res, mach, err := baseline.RandRoute(mkBlocks(), cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		rep := mach.Report()
		t.AddRow("rand-route", res.MaxLoad, float64(res.MaxLoad)/float64(m), 1,
			rep.MaxOps(), float64(rep.MaxOps())/float64(m))
	}

	// Dart throwing across slack values.
	for _, eps := range []float64{0.2, 0.1, 0.05, 0.02, 0.01} {
		res, mach, err := baseline.DartThrowing(mkBlocks(), cfg.Seed+2, eps, 200)
		if err != nil {
			return nil, err
		}
		rep := mach.Report()
		t.AddRow(fmt.Sprintf("dart eps=%.2f", eps), res.MaxLoad,
			float64(res.MaxLoad)/float64(m), res.Rounds,
			rep.MaxOps(), float64(rep.MaxOps())/float64(m))
	}

	// Goodrich sort-shuffle: balanced, but the ops column shows the
	// log-factor work.
	{
		out, mach, err := baseline.SortShuffle(mkBlocks(), cfg.Seed+3)
		if err != nil {
			return nil, err
		}
		var maxLoad int64
		for _, b := range out {
			if int64(len(b)) > maxLoad {
				maxLoad = int64(len(b))
			}
		}
		rep := mach.Report()
		t.AddRow("sort-shuffle", maxLoad, float64(maxLoad)/float64(m), 1,
			rep.MaxOps(), float64(rep.MaxOps())/float64(m))
	}

	t.AddNote("alg1 keeps max/target = 1 exactly and ops/(n/p) constant; rand-route overshoots by ~sqrt(m); dart rounds grow as eps shrinks; sort-shuffle is balanced but pays ~log2(n) in ops/(n/p)")
	return t, nil
}
