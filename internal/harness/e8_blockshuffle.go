package harness

import (
	"time"

	"randperm/internal/seqperm"
	"randperm/internal/xrand"
)

// E8 explores the paper's outlook (Section 6): using the coarse grained
// matrix decomposition *sequentially* to avoid the cache misses of the
// straightforward algorithm. BlockShuffle replaces Fisher-Yates' fully
// random access pattern with streaming scatter passes plus in-cache
// leaf shuffles; the table compares ns/item across sizes.
func E8(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		ID:    "E8",
		Title: "cache-friendly sequential block shuffle vs Fisher-Yates (paper outlook, Sec. 6)",
		Columns: []string{
			"n", "fisher-yates ns/item", "block ns/item", "block/fy",
		},
	}
	src := xrand.NewXoshiro256(cfg.Seed)
	for _, n := range []int64{cfg.N / 4, cfg.N / 2, cfg.N, cfg.N * 2} {
		if n < 1<<16 {
			continue
		}
		data := make([]int64, n)
		for i := range data {
			data[i] = int64(i)
		}
		fy := medianOf3(func() time.Duration {
			return timeIt(func() { seqperm.FisherYates(src, data) })
		})
		bs := medianOf3(func() time.Duration {
			return timeIt(func() {
				seqperm.BlockShuffle(src, data, seqperm.BlockShuffleOptions{})
			})
		})
		t.AddRow(n, nsPerItem(fy, n), nsPerItem(bs, n),
			nsPerItem(bs, n)/nsPerItem(fy, n))
	}
	t.AddNote("the paper predicts the matrix approach helps once the vector leaves cache; ratios < 1 at the largest sizes confirm it (hardware dependent)")
	return t, nil
}
