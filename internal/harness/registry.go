package harness

import (
	"fmt"
	"sort"
)

// Experiment binds an experiment ID to its runner and the paper claim it
// reproduces.
type Experiment struct {
	ID    string
	Claim string
	Run   func(Config) (*Table, error)
}

// Experiments is the full catalogue, in presentation order.
var Experiments = []Experiment{
	{"E1", "sequential permutation costs 60-100 cycles/item, memory bound (Sec. 1)", E1},
	{"E2", "hypergeometric sampling: <1.5 random numbers avg, <=10 worst (Sec. 3/6)", E2},
	{"E3", "480M-item scaling on p=3..48; overhead factor 3-5 (Sec. 6)", E3},
	{"E4", "matrix sampling: seq p^2, Alg5 p log p /proc, Alg6 p /proc (Thm 2)", E4},
	{"E5", "all n! permutations equally likely; iterate/reject methods are not (Thm 1, Sec. 1)", E5},
	{"E6", "balance: Alg1 exact, rand-route sqrt(m) overshoot, dart rounds blow up (Sec. 1)", E6},
	{"E7", "self-similarity of the matrix distribution under coarsening (Prop. 4/5)", E7},
	{"E8", "the matrix idea as a cache-friendly sequential shuffle (Sec. 6 outlook)", E8},
	{"E9", "the matrix idea as an external-memory shuffle: streaming I/Os vs random (Sec. 6 outlook)", E9},
	{"E10", "PRO optimal grain: BSP model speedups across machine profiles (Thm. 1)", E10},
}

// Find returns the experiment with the given ID (case sensitive).
func Find(id string) (Experiment, error) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(Experiments))
	for _, e := range Experiments {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q (have %v)", id, ids)
}
