package harness

import (
	"time"

	"randperm/internal/seqperm"
	"randperm/internal/xrand"
)

// E1 reproduces the paper's Section 1 observation: sequentially permuting
// a vector of long ints costs about 60-100 clock cycles per item on
// commodity hardware, and the algorithm is bound by the CPU-memory
// bandwidth (random access pattern). The table reports ns/item and
// estimated cycles/item for Fisher-Yates across sizes, next to a
// sequential streaming pass over the same data as the bandwidth
// reference.
func E1(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		ID:    "E1",
		Title: "sequential permutation cost per item (paper: 60-100 cycles/item)",
		Columns: []string{
			"n", "shuffle ns/item", "est cycles/item",
			"stream ns/item", "shuffle/stream",
		},
	}
	src := xrand.NewXoshiro256(cfg.Seed)
	sizes := []int64{cfg.N / 8, cfg.N / 4, cfg.N / 2, cfg.N}
	var sink int64
	for _, n := range sizes {
		if n < 1024 {
			continue
		}
		data := make([]int64, n)
		for i := range data {
			data[i] = int64(i)
		}
		shuffleD := timeIt(func() { seqperm.FisherYates(src, data) })

		// Bandwidth reference: a dependent sequential reduction over
		// the same array.
		var streamD time.Duration
		streamD = timeIt(func() {
			var s int64
			for _, v := range data {
				s += v
			}
			sink = s
		})
		shufNS := nsPerItem(shuffleD, n)
		streamNS := nsPerItem(streamD, n)
		ratio := 0.0
		if streamNS > 0 {
			ratio = shufNS / streamNS
		}
		t.AddRow(n, shufNS, shufNS*cfg.CPUGHz, streamNS, ratio)
	}
	_ = sink
	t.AddNote("paper (300MHz Sparc / 800MHz P-III): 60-100 cycles/item, 33-80%% of wall time memory bound")
	t.AddNote("cycles/item estimated at %.1f GHz; the shape to check: tens of cycles/item, far above streaming cost", cfg.CPUGHz)
	return t, nil
}
