// Package harness turns the paper's evaluation into reproducible
// experiments: each experiment ID (E1..E8, catalogued in DESIGN.md and
// EXPERIMENTS.md) is a function from a Config to a text Table that
// mirrors the rows the paper reports. cmd/permbench is the CLI front
// end; bench_test.go wires the same workloads into testing.B.
package harness

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a title, aligned columns, and
// free-form notes (the paper-vs-measured commentary).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each value with %v.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = trimFloat(x)
		case string:
			row[i] = x
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a formatted note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render produces the aligned text form of the table.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (quotes are not needed
// for the numeric content these tables carry).
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Columns, ","))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// trimFloat renders floats compactly: integers without decimals, small
// magnitudes with sensible precision.
func trimFloat(x float64) string {
	switch {
	case x == float64(int64(x)) && x < 1e15 && x > -1e15:
		return fmt.Sprintf("%d", int64(x))
	case x >= 100 || x <= -100:
		return fmt.Sprintf("%.1f", x)
	case x >= 1 || x <= -1:
		return fmt.Sprintf("%.2f", x)
	default:
		return fmt.Sprintf("%.4f", x)
	}
}
