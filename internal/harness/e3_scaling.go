package harness

import (
	"fmt"
	"time"

	"randperm/internal/core"
	"randperm/internal/seqperm"
	"randperm/internal/xrand"
)

// paperE3 holds the running times the paper reports in Section 6 for 480
// million items on a 400 MHz Origin 2000, keyed by processor count
// (p = 1 is the plain sequential algorithm).
var paperE3 = map[int]float64{
	1: 137, 3: 210, 6: 107, 12: 72.9, 24: 60.9, 48: 53.2,
}

// E3 reproduces the paper's headline experiment (Section 6): wall-clock
// times of the parallel random permutation across machine sizes, against
// the sequential Fisher-Yates baseline. The shapes to verify:
//
//   - the parallel algorithm at small p costs a factor 3-5 more total
//     work than sequential (two local shuffles plus the exchange), so
//     p=3 is *slower* than sequential, exactly as in the paper;
//   - wall time then decreases monotonically with p;
//   - by p ~ 2x the break-even the parallel run beats sequential.
func E3(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		ID:    "E3",
		Title: fmt.Sprintf("Algorithm 1 scaling, n=%d int64 items (paper: 480M items on Origin 2000)", cfg.N),
		Columns: []string{
			"p", "time", "speedup", "overhead p*T_p/T_1",
			"paper s", "paper overhead",
		},
	}

	data := make([]int64, cfg.N)
	for i := range data {
		data[i] = int64(i)
	}

	// Sequential baseline, median of 3.
	src := xrand.NewXoshiro256(cfg.Seed)
	seqD := medianOf3(func() time.Duration {
		return timeIt(func() { seqperm.FisherYates(src, data) })
	})
	t.AddRow(1, fmtDur(seqD), 1.0, 1.0, paperNum(1), 1.0)

	for _, p := range cfg.Ps {
		if p <= 1 {
			continue
		}
		pd := medianOf3(func() time.Duration {
			return timeIt(func() {
				out, _, err := core.PermuteSlice(data, p, core.Config{
					Seed:   cfg.Seed + uint64(p),
					Matrix: core.MatrixOpt,
				})
				if err != nil {
					panic(err)
				}
				_ = out
			})
		})
		speedup := float64(seqD) / float64(pd)
		overhead := float64(p) * float64(pd) / float64(seqD)
		paperT := paperNum(p)
		paperOv := ""
		if v, ok := paperE3[p]; ok {
			paperOv = fmt.Sprintf("%.2f", float64(p)*v/paperE3[1])
		}
		t.AddRow(p, fmtDur(pd), speedup, overhead, paperT, paperOv)
	}
	t.AddNote("paper: overhead factor 3-5 expected (two local permutations + communication)")
	t.AddNote("simulated processors are goroutines on one node; absolute times differ from the Origin, shapes must match")
	return t, nil
}

func paperNum(p int) string {
	if v, ok := paperE3[p]; ok {
		return fmt.Sprintf("%.1f", v)
	}
	return "-"
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

func medianOf3(f func() time.Duration) time.Duration {
	a, b, c := f(), f(), f()
	// Median of three by explicit comparison.
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}
