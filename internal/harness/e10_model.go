package harness

import (
	"fmt"

	"randperm/internal/core"
)

// machineProfile is a (g, L) point of the BSP cost formula, in units of
// one local operation.
type machineProfile struct {
	name string
	g    float64 // time per byte of h-relation
	l    float64 // per-superstep latency
}

// E10 evaluates the PRO "optimal grain" claim (Theorem 1) in the noise-
// free cost model: every processor's counted operations and h-relations
// are folded through T = sum_s (w_s + g*h_s + L) for three machine
// profiles, and the model speedup T_seq / T_p is tabulated. Unlike the
// wall-clock experiment E3, this is exact and deterministic: it shows
// where the break-even p sits as the network gets slower, which is the
// granularity trade-off the PRO model formalizes.
func E10(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	n := cfg.N / 8
	if n < 1<<16 {
		n = 1 << 16
	}
	profiles := []machineProfile{
		{"shared-mem (g=0.05, L=1e3)", 0.05, 1e3},
		{"cluster    (g=0.5,  L=1e5)", 0.5, 1e5},
		{"wan        (g=5,    L=1e7)", 5, 1e7},
	}
	t := &Table{
		ID:    "E10",
		Title: fmt.Sprintf("BSP model cost of Algorithm 1, n=%d (speedup T_1/T_p per machine profile)", n),
		Columns: []string{
			"p", profiles[0].name, profiles[1].name, profiles[2].name,
		},
	}

	// Sequential reference cost: one op per item (Fisher-Yates).
	seqCost := float64(n)

	for _, p := range []int{2, 4, 8, 16, 32, 64} {
		sizes := core.EvenBlocks(n, p)
		blocks, err := core.Split(core.Iota(n), sizes)
		if err != nil {
			return nil, err
		}
		_, m, err := core.Permute(blocks, sizes, core.Config{
			Seed:   cfg.Seed + uint64(p),
			Matrix: core.MatrixOpt,
		})
		if err != nil {
			return nil, err
		}
		rep := m.Report()
		row := make([]any, 0, 4)
		row = append(row, p)
		for _, prof := range profiles {
			speedup := seqCost / rep.ModelTime(prof.g, prof.l)
			row = append(row, speedup)
		}
		t.AddRow(row...)
	}
	t.AddNote("model speedup = n / sum_s(max ops + g*h + L); >1 means the parallel algorithm beats sequential in that machine's cost model")
	t.AddNote("the break-even p grows as g and L grow: the coarseness requirement p << n of the PRO model made quantitative")
	return t, nil
}
