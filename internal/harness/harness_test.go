package harness

import (
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID:      "T1",
		Title:   "demo",
		Columns: []string{"a", "bbbb"},
	}
	tb.AddRow(1, "x")
	tb.AddRow(22.5, "yy")
	tb.AddNote("hello %d", 7)
	out := tb.Render()
	for _, want := range []string{"== T1: demo ==", "a", "bbbb", "22.50", "note: hello 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Columns: []string{"x", "y"}}
	tb.AddRow(1, 2)
	got := tb.CSV()
	if got != "x,y\n1,2\n" {
		t.Fatalf("CSV = %q", got)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		1234567: "1234567",
		123.456: "123.5",
		2.345:   "2.35",
		0.12345: "0.1235",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Fatalf("trimFloat(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.N == 0 || c.Trials == 0 || c.Seed == 0 || len(c.Ps) == 0 || c.CPUGHz == 0 {
		t.Fatalf("defaults missing: %+v", c)
	}
	q := Config{Quick: true}.WithDefaults()
	if q.N >= c.N {
		t.Fatal("quick config not smaller")
	}
	keep := Config{N: 42, Trials: 7, Seed: 3}.WithDefaults()
	if keep.N != 42 || keep.Trials != 7 || keep.Seed != 3 {
		t.Fatal("explicit values overridden")
	}
}

func TestFindExperiment(t *testing.T) {
	for _, e := range Experiments {
		got, err := Find(e.ID)
		if err != nil || got.ID != e.ID {
			t.Fatalf("Find(%s) failed: %v", e.ID, err)
		}
	}
	if _, err := Find("E99"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestExperimentsHaveDistinctIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Experiments {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestMedianOf3(t *testing.T) {
	i := 0
	vals := []time.Duration{30, 10, 20}
	got := medianOf3(func() time.Duration {
		v := vals[i]
		i++
		return v
	})
	if got != 20 {
		t.Fatalf("median = %d, want 20", got)
	}
}

func TestNsPerItem(t *testing.T) {
	if nsPerItem(time.Microsecond, 1000) != 1 {
		t.Fatal("nsPerItem wrong")
	}
	if nsPerItem(time.Second, 0) != 0 {
		t.Fatal("zero items should be 0")
	}
}

// tinyConfig keeps experiment smoke tests fast.
func tinyConfig() Config {
	return Config{
		N:      1 << 16,
		Trials: 2000,
		Seed:   123,
		Ps:     []int{1, 2, 4},
		Quick:  true,
	}.WithDefaults()
}

func TestE1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	tb, err := E1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("E1 produced no rows")
	}
}

func TestE2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	tb, err := E2(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 5 {
		t.Fatal("E2 produced too few rows")
	}
}

func TestE4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	tb, err := E4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("E4 produced no rows")
	}
}

func TestE6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	tb, err := E6(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Algorithm 1's row must show exact balance.
	found := false
	for _, row := range tb.Rows {
		if row[0] == "alg1(opt)" && row[2] == "1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("alg1 balance row missing or wrong: %v", tb.Rows)
	}
}

func TestE7Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	tb, err := E7(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[len(row)-1] != "match" {
			t.Fatalf("E7 sampler mismatch: %v", row)
		}
	}
}

func TestE3Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	tb, err := E3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 3 {
		t.Fatalf("E3 produced %d rows", len(tb.Rows))
	}
	if tb.Rows[0][0] != "1" {
		t.Fatalf("first row must be sequential: %v", tb.Rows[0])
	}
}

func TestE8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	tb, err := E8(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("E8 produced no rows")
	}
}

func TestE9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	tb, err := E9(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("E9 produced no rows")
	}
	// The matrix shuffle must beat the naive baseline in every row.
	for _, row := range tb.Rows {
		if row[len(row)-1] == "" {
			t.Fatalf("missing ratio in %v", row)
		}
	}
}

func TestE10Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	tb, err := E10(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 4 {
		t.Fatal("E10 produced too few rows")
	}
}

func TestHashNameStable(t *testing.T) {
	if hashName("abc") != hashName("abc") {
		t.Fatal("hashName not deterministic")
	}
	if hashName("abc") == hashName("abd") {
		t.Fatal("hashName collision on near inputs")
	}
}
