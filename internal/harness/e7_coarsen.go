package harness

import (
	"fmt"

	"randperm/internal/commat"
	"randperm/internal/core"
	"randperm/internal/hyper"
	"randperm/internal/stats"
	"randperm/internal/xrand"
)

// E7 verifies the self-similarity of the matrix distribution
// (Propositions 4 and 5): merging blocks of a sampled communication
// matrix must again follow the communication-matrix law of the merged
// problem, and in particular every merged entry follows a hypergeometric
// distribution h(t, w, b) with the merged margins. The table chi-squares
// the merged corner entry of matrices from all three samplers against
// the closed-form PMF.
func E7(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	trials := cfg.Trials / 4
	if trials < 4000 {
		trials = 4000
	}
	p := 12
	blockM := int64(40)
	rowM := core.EvenBlocks(int64(p)*blockM, p)
	colM := core.EvenBlocks(int64(p)*blockM, p)
	rowCut, colCut := 5, 7 // deliberately asymmetric grouping

	t := &Table{
		ID: "E7",
		Title: fmt.Sprintf("Prop. 4/5 self-similarity: %dx%d matrix coarsened to 2x2 at cuts (%d,%d), %d trials",
			p, p, rowCut, colCut, trials),
		Columns: []string{"sampler", "chi2", "df", "p-value", "verdict"},
	}

	// By Proposition 5 the merged (0,0) entry follows h(t, w, b) with
	// t the merged column-group mass, w the merged row-group mass and
	// b the remaining items.
	w0 := commat.SumVec(rowM[:rowCut]) // merged row-group mass
	c0 := commat.SumVec(colM[:colCut]) // merged col-group mass
	n := commat.SumVec(rowM)
	d := hyper.Dist{T: c0, W: w0, B: n - w0}
	lo, hi := d.SupportMin(), d.SupportMax()
	probs := make([]float64, hi-lo+1)
	for k := lo; k <= hi; k++ {
		probs[k-lo] = d.PMF(k)
	}

	run := func(name string, sample func(tr int) *commat.Matrix) error {
		counts := make([]int64, hi-lo+1)
		for tr := 0; tr < trials; tr++ {
			m := sample(tr)
			cm := commat.Coarsen(m, []int{rowCut}, []int{colCut})
			counts[cm.At(0, 0)-lo]++
		}
		res, err := stats.ChiSquareBinned(counts, probs, 5)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		verdict := "match"
		if res.Reject(0.001) {
			verdict = "MISMATCH"
		}
		t.AddRow(name, res.Stat, res.DF, res.P, verdict)
		return nil
	}

	src := xrand.NewXoshiro256(cfg.Seed)
	if err := run("seq(A3)", func(int) *commat.Matrix {
		return commat.SampleSeq(src, rowM, colM)
	}); err != nil {
		return nil, err
	}
	if err := run("rec(A4)", func(int) *commat.Matrix {
		return commat.SampleRec(src, rowM, colM)
	}); err != nil {
		return nil, err
	}
	if err := run("par(log,A5)", func(tr int) *commat.Matrix {
		m, _, err := core.SampleRows(p, cfg.Seed+uint64(tr)*31+7, rowM, colM, core.MatrixLog)
		if err != nil {
			panic(err)
		}
		return m
	}); err != nil {
		return nil, err
	}
	if err := run("par(opt,A6)", func(tr int) *commat.Matrix {
		m, _, err := core.SampleRows(p, cfg.Seed+uint64(tr)*37+11, rowM, colM, core.MatrixOpt)
		if err != nil {
			panic(err)
		}
		return m
	}); err != nil {
		return nil, err
	}
	t.AddNote("every row must read match: the coarsened entry is h(t=%d, w=%d, b=%d)", c0, w0, n-w0)
	return t, nil
}
