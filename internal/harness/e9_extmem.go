package harness

import (
	"fmt"

	"randperm/internal/extmem"
	"randperm/internal/xrand"
)

// E9 quantifies the paper's external-memory outlook (Section 6, citing
// Cormen-Goodrich and Dehne et al.): the matrix decomposition turns the
// shuffle's Theta(n) random block accesses into O((n/B) log_{M/B}(n/M))
// streaming transfers. The table reports measured block I/Os per input
// block for the distribution shuffle versus external Fisher-Yates across
// memory sizes.
func E9(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	n := cfg.N / 8
	if n < 1<<16 {
		n = 1 << 16
	}
	const b = 256 // items per disk block
	t := &Table{
		ID:    "E9",
		Title: fmt.Sprintf("external-memory shuffle, n=%d items, B=%d (I/Os per data block)", n, b),
		Columns: []string{
			"M (items)", "M/n", "matrix shuffle I/Os", "I/Os per block",
			"naive FY I/Os", "naive per block", "ratio",
		},
	}
	src := xrand.NewXoshiro256(cfg.Seed)
	blocks := n / b

	// Naive baseline once (memory-independent).
	vn := extmem.NewVector(n, b)
	fillIota(vn, b)
	extmem.NaiveShuffle(src, vn)
	naive := vn.IOs()

	for _, mem := range []int64{n / 64, n / 16, n / 4} {
		if mem < 4*b {
			mem = 4 * b
		}
		v := extmem.NewVector(n, b)
		fillIota(v, b)
		if err := extmem.Shuffle(src, v, extmem.ShuffleOptions{Memory: mem}); err != nil {
			return nil, err
		}
		t.AddRow(mem, float64(mem)/float64(n),
			v.IOs(), float64(v.IOs())/float64(blocks),
			naive, float64(naive)/float64(blocks),
			float64(naive)/float64(v.IOs()))
	}
	t.AddNote("matrix shuffle stays at a few I/Os per block regardless of memory; naive Fisher-Yates pays ~2 I/Os per *item* once the vector exceeds memory")
	return t, nil
}

func fillIota(v *extmem.Vector, b int) {
	buf := make([]int64, b)
	for blk := int64(0); blk < v.Blocks(); blk++ {
		lo := blk * int64(b)
		hi := lo + int64(b)
		if hi > v.Len() {
			hi = v.Len()
		}
		for i := lo; i < hi; i++ {
			buf[i-lo] = i
		}
		v.WriteBlock(blk, buf[:hi-lo])
	}
	v.ResetCounters()
}
