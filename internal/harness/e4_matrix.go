package harness

import (
	"math"
	"time"

	"randperm/internal/commat"
	"randperm/internal/core"
	"randperm/internal/xrand"
)

// E4 verifies Theorem 2 and Propositions 7-9: the communication matrix
// can be sampled sequentially in O(p^2), in parallel with Theta(p log p)
// per-processor resources (Algorithm 5), and cost-optimally with Theta(p)
// per-processor resources (Algorithm 6). For each machine size the table
// reports wall time plus the *counted* per-processor operations and raw
// random draws, normalized by the predicted growth term so the shape is
// visible as an approximately constant column.
func E4(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	t := &Table{
		ID:    "E4",
		Title: "communication matrix sampling cost (Thm 2: seq p^2; Alg5 p log p /proc; Alg6 p /proc)",
		Columns: []string{
			"p", "alg", "time", "max ops/proc", "norm",
			"max draws/proc", "max bytes/proc",
		},
	}
	ps := []int{4, 8, 16, 32, 64, 128}
	if cfg.Quick {
		ps = []int{4, 8, 16, 32}
	}
	const blockM = 1 << 14 // items per block: large enough that samples are non-trivial

	for _, p := range ps {
		margins := core.EvenBlocks(int64(p)*blockM, p)

		// Sequential Algorithm 3 on one processor.
		src := xrand.NewXoshiro256(cfg.Seed)
		var seqD time.Duration
		seqD = medianOf3(func() time.Duration {
			return timeIt(func() { commat.SampleSeq(src, margins, margins) })
		})
		t.AddRow(p, "seq(A3)", fmtDur(seqD),
			int64(p)*int64(p), normCell(float64(p)*float64(p), float64(p)*float64(p)),
			"-", "-")

		for _, alg := range []core.MatrixAlg{core.MatrixLog, core.MatrixOpt} {
			var rep coreReport
			d := medianOf3(func() time.Duration {
				return timeIt(func() {
					_, m, err := core.SampleRows(p, cfg.Seed+uint64(p), margins, margins, alg)
					if err != nil {
						panic(err)
					}
					r := m.Report()
					rep = coreReport{
						maxOps:   r.MaxOps(),
						maxDraws: r.MaxDraws(),
						maxBytes: r.MaxBytes(),
					}
				})
			})
			var norm float64
			switch alg {
			case core.MatrixLog:
				norm = float64(rep.maxOps) / (float64(p) * math.Log2(float64(p)))
			case core.MatrixOpt:
				norm = float64(rep.maxOps) / float64(p)
			}
			t.AddRow(p, "par("+alg.String()+")", fmtDur(d),
				rep.maxOps, norm, rep.maxDraws, rep.maxBytes)
		}
	}
	t.AddNote("norm = max ops/proc divided by the predicted growth (p^2 for seq, p log2 p for Alg5, p for Alg6); flat columns confirm the Theta bounds")
	t.AddNote("crossover (Sec. 6): matrix sampling dominates the n/p-item exchange only while n <~ p^2 log p")
	return t, nil
}

type coreReport struct {
	maxOps   int64
	maxDraws int64
	maxBytes int64
}

func normCell(v, by float64) float64 {
	if by == 0 {
		return 0
	}
	return v / by
}
