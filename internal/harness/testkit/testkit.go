// Package testkit is the shared scaffolding for the HTTP-layer test
// suites: booting loopback node fleets (plain or behind chaos proxies),
// readiness polling, and one-line request helpers. The cluster suite,
// the service suite and the failure drills all boot topologies the same
// way; keeping the boot code here means a change to the boot contract
// (readiness, cleanup, peer wiring) lands in every suite at once.
//
// The package deliberately imports neither internal/cluster nor
// internal/service — their test files are internal to those packages,
// so an import either way would cycle. Callers pass a build closure
// that constructs the per-node handler from (node index, peer URLs).
package testkit

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"randperm/internal/cluster/chaos"
)

// Loopback boots nodes loopback HTTP servers wired to each other,
// mirroring N processes started with -peers: every server's URL goes
// into the shared peer list, then build(k, peers) constructs node k's
// handler with the complete list in hand. Servers are closed via
// t.Cleanup.
func Loopback(t testing.TB, nodes int, build func(node int, peers []string) http.Handler) []*httptest.Server {
	t.Helper()
	servers, muxes, peers := newFleet(t, nodes, nil)
	mount(t, muxes, peers, build)
	return servers
}

// LoopbackChaos is Loopback with every node's handler behind a
// chaos.Proxy, so drills can kill, stall, corrupt or partition any
// node at any point.
func LoopbackChaos(t testing.TB, nodes int, build func(node int, peers []string) http.Handler) ([]*httptest.Server, []*chaos.Proxy) {
	t.Helper()
	proxies := make([]*chaos.Proxy, nodes)
	servers, muxes, peers := newFleet(t, nodes, proxies)
	mount(t, muxes, peers, build)
	return servers, proxies
}

// newFleet starts the empty servers first — their URLs are the peer
// list every node's config needs — and fills proxies when non-nil.
func newFleet(t testing.TB, nodes int, proxies []*chaos.Proxy) ([]*httptest.Server, []*http.ServeMux, []string) {
	t.Helper()
	servers := make([]*httptest.Server, nodes)
	muxes := make([]*http.ServeMux, nodes)
	peers := make([]string, nodes)
	for k := range servers {
		muxes[k] = http.NewServeMux()
		var h http.Handler = muxes[k]
		if proxies != nil {
			proxies[k] = chaos.Wrap(muxes[k])
			h = proxies[k]
		}
		servers[k] = httptest.NewServer(h)
		peers[k] = servers[k].URL
		t.Cleanup(servers[k].Close)
	}
	return servers, muxes, peers
}

func mount(t testing.TB, muxes []*http.ServeMux, peers []string, build func(node int, peers []string) http.Handler) {
	t.Helper()
	for k := range muxes {
		muxes[k].Handle("/", build(k, peers))
	}
}

// WaitHealthy polls url's /healthz until it answers 200 or the
// deadline passes. httptest servers are ready at return, so the first
// probe normally succeeds; the poll is the pattern the process-level
// drills (and CI) rely on, kept here so every suite goes through it.
func WaitHealthy(t testing.TB, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never became healthy: %v", url, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Get performs one GET over the network and returns status + body.
func Get(t testing.TB, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}
