package harness

import (
	"fmt"

	"randperm/internal/baseline"
	"randperm/internal/core"
	"randperm/internal/seqperm"
	"randperm/internal/stats"
	"randperm/internal/xrand"
)

// E5 is the uniformity experiment behind Theorem 1 and the criteria table
// of Section 1: with n small enough to enumerate all n! permutations,
// every shuffler is run many times, outcomes are ranked with the Lehmer
// code and chi-squared against the uniform law. The paper's Algorithm 1
// must pass for every matrix algorithm and block layout; Fisher-Yates,
// the block shuffle and the sort shuffle pass as positive controls;
// Sattolo's algorithm and a single merge-split round (the
// balanced-but-non-uniform methods the introduction rules out) must fail.
func E5(cfg Config) (*Table, error) {
	cfg = cfg.WithDefaults()
	const n = 6 // 720 permutations
	trials := cfg.Trials
	t := &Table{
		ID:    "E5",
		Title: fmt.Sprintf("exact uniformity over all %d! = %d permutations, %d trials", n, stats.Factorial(n), trials),
		Columns: []string{
			"method", "expect", "chi2", "df", "p-value", "verdict",
		},
	}
	alpha := 0.001

	addResult := func(name string, expectUniform bool, counts []int64) error {
		res, err := stats.ChiSquareUniform(counts)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		verdict := "uniform"
		if res.Reject(alpha) {
			verdict = "NON-UNIFORM"
		}
		want := "uniform"
		if !expectUniform {
			want = "non-uniform"
		}
		t.AddRow(name, want, res.Stat, res.DF, res.P, verdict)
		return nil
	}

	runSeq := func(name string, expectUniform bool, shuffle func(src xrand.Source, x []int64)) error {
		src := xrand.NewXoshiro256(cfg.Seed ^ hashName(name))
		counts := make([]int64, stats.Factorial(n))
		buf := make([]int64, n)
		for tr := 0; tr < trials; tr++ {
			for i := range buf {
				buf[i] = int64(i)
			}
			shuffle(src, buf)
			counts[stats.RankPermInt64(buf)]++
		}
		return addResult(name, expectUniform, counts)
	}

	if err := runSeq("fisher-yates", true, func(src xrand.Source, x []int64) {
		seqperm.FisherYates(src, x)
	}); err != nil {
		return nil, err
	}
	if err := runSeq("block-shuffle", true, func(src xrand.Source, x []int64) {
		seqperm.BlockShuffle(src, x, seqperm.BlockShuffleOptions{Fanout: 3, Threshold: 2})
	}); err != nil {
		return nil, err
	}
	if err := runSeq("sort-shuffle", true, func(src xrand.Source, x []int64) {
		seqperm.SortShuffle(src, x)
	}); err != nil {
		return nil, err
	}
	if err := runSeq("sattolo (control)", false, func(src xrand.Source, x []int64) {
		seqperm.Sattolo(src, x)
	}); err != nil {
		return nil, err
	}

	// The paper's Algorithm 1, every matrix algorithm, two layouts.
	layouts := []struct {
		name  string
		sizes []int64
	}{
		{"p=2 blocks 3+3", []int64{3, 3}},
		{"p=3 blocks 2+2+2", []int64{2, 2, 2}},
		{"p=3 ragged 3+2+1", []int64{3, 2, 1}},
	}
	for _, alg := range []core.MatrixAlg{core.MatrixSeq, core.MatrixLog, core.MatrixOpt} {
		for _, lay := range layouts {
			name := fmt.Sprintf("alg1/%s %s", alg, lay.name)
			counts := make([]int64, stats.Factorial(n))
			for tr := 0; tr < trials; tr++ {
				blocks, err := core.Split(core.Iota(n), lay.sizes)
				if err != nil {
					return nil, err
				}
				out, _, err := core.Permute(blocks, lay.sizes, core.Config{
					Seed:   cfg.Seed + uint64(tr)*1000003 + hashName(name),
					Matrix: alg,
				})
				if err != nil {
					return nil, err
				}
				counts[stats.RankPermInt64(core.Flatten(out))]++
			}
			if err := addResult(name, true, counts); err != nil {
				return nil, err
			}
		}
	}

	// Negative control: one merge-split round on 4 blocks cannot move
	// items arbitrarily, so whole regions of S_n have probability 0.
	{
		name := "merge-split r=1 (control)"
		counts := make([]int64, stats.Factorial(n))
		sizes := []int64{2, 2, 1, 1}
		for tr := 0; tr < trials; tr++ {
			blocks, err := core.Split(core.Iota(n), sizes)
			if err != nil {
				return nil, err
			}
			out, _, err := baseline.IterateExchange(blocks, cfg.Seed+uint64(tr)*7919, 1)
			if err != nil {
				return nil, err
			}
			counts[stats.RankPermInt64(flatten64(out))]++
		}
		if err := addResult(name, false, counts); err != nil {
			return nil, err
		}
	}
	t.AddNote("alpha = %.3f; alg1 rows must read uniform, the two controls must read NON-UNIFORM", alpha)
	t.AddNote("expected count per cell: %.1f", float64(trials)/float64(stats.Factorial(n)))
	return t, nil
}

func flatten64(blocks [][]int64) []int64 {
	var out []int64
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

// hashName derives a per-method seed offset so methods do not share
// random streams.
func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
