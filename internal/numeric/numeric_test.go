package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

func TestLnFacSmall(t *testing.T) {
	want := []float64{0, 0, math.Log(2), math.Log(6), math.Log(24), math.Log(120)}
	for n, w := range want {
		if got := LnFac(int64(n)); !almost(got, w, 1e-12) {
			t.Fatalf("LnFac(%d) = %g, want %g", n, got, w)
		}
	}
}

func TestLnFacMatchesLgamma(t *testing.T) {
	for _, n := range []int64{1, 10, 100, 2047, 2048, 5000, 1 << 20, 1 << 40} {
		want, _ := math.Lgamma(float64(n) + 1)
		if got := LnFac(n); !almost(got, want, 1e-10) {
			t.Fatalf("LnFac(%d) = %.15g, want %.15g", n, got, want)
		}
	}
}

func TestLnFacPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LnFac(-1) did not panic")
		}
	}()
	LnFac(-1)
}

func TestLogBinomKnown(t *testing.T) {
	cases := []struct {
		n, k int64
		want float64
	}{
		{5, 2, math.Log(10)},
		{10, 5, math.Log(252)},
		{52, 5, math.Log(2598960)},
		{100, 0, 0},
		{100, 100, 0},
	}
	for _, c := range cases {
		if got := LogBinom(c.n, c.k); !almost(got, c.want, 1e-10) {
			t.Fatalf("LogBinom(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}

func TestLogBinomOutside(t *testing.T) {
	if !math.IsInf(LogBinom(5, -1), -1) || !math.IsInf(LogBinom(5, 6), -1) {
		t.Fatal("LogBinom outside support must be -inf")
	}
}

func TestLogBinomSymmetry(t *testing.T) {
	f := func(n8, k8 uint8) bool {
		n := int64(n8%60) + 1
		k := int64(k8) % (n + 1)
		return almost(LogBinom(n, k), LogBinom(n, n-k), 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogBinomPascal(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k) in linear space.
	f := func(n8, k8 uint8) bool {
		n := int64(n8%50) + 2
		k := int64(k8)%(n-1) + 1
		lhs := math.Exp(LogBinom(n, k))
		rhs := math.Exp(LogBinom(n-1, k-1)) + math.Exp(LogBinom(n-1, k))
		return almost(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogHyperPMFSumsToOne(t *testing.T) {
	grids := []struct{ t, w, b int64 }{
		{3, 5, 5}, {10, 20, 5}, {7, 3, 30}, {20, 20, 20}, {1, 1, 1},
	}
	for _, g := range grids {
		sum := 0.0
		for k := int64(0); k <= g.t; k++ {
			sum += math.Exp(LogHyperPMF(k, g.t, g.w, g.b))
		}
		if !almost(sum, 1, 1e-10) {
			t.Fatalf("PMF(%v) sums to %g", g, sum)
		}
	}
}

func TestGammaPQComplement(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2.5, 10, 100} {
		for _, x := range []float64{0.1, 0.5, 1, 2, 5, 20, 150} {
			p, q := GammaP(a, x), GammaQ(a, x)
			if !almost(p+q, 1, 1e-10) {
				t.Fatalf("P(%g,%g)+Q = %g", a, x, p+q)
			}
			if p < 0 || p > 1 || q < 0 || q > 1 {
				t.Fatalf("P/Q out of [0,1] at a=%g x=%g", a, x)
			}
		}
	}
}

func TestGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^{-x}.
	for _, x := range []float64{0.5, 1, 2, 4} {
		want := 1 - math.Exp(-x)
		if got := GammaP(1, x); !almost(got, want, 1e-10) {
			t.Fatalf("GammaP(1,%g) = %g, want %g", x, got, want)
		}
	}
	// P(1/2, x) = erf(sqrt(x)).
	for _, x := range []float64{0.25, 1, 2.25} {
		want := math.Erf(math.Sqrt(x))
		if got := GammaP(0.5, x); !almost(got, want, 1e-10) {
			t.Fatalf("GammaP(0.5,%g) = %g, want %g", x, got, want)
		}
	}
}

func TestGammaPMonotone(t *testing.T) {
	f := func(a8, seed uint8) bool {
		a := float64(a8%40)/4 + 0.25
		x1 := float64(seed%100) / 10
		x2 := x1 + 0.7
		return GammaP(a, x1) <= GammaP(a, x2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGammaPEdge(t *testing.T) {
	if GammaP(2, 0) != 0 {
		t.Fatal("GammaP(a,0) must be 0")
	}
	if GammaQ(2, 0) != 1 {
		t.Fatal("GammaQ(a,0) must be 1")
	}
	if !math.IsNaN(GammaP(-1, 2)) || !math.IsNaN(GammaP(2, -1)) {
		t.Fatal("invalid arguments must yield NaN")
	}
}

func TestChiSquareSFKnown(t *testing.T) {
	// Classic critical values: P(chi2_1 > 3.841) = 0.05,
	// P(chi2_10 > 18.307) = 0.05, P(chi2_2 > x) = exp(-x/2).
	if got := ChiSquareSF(3.841, 1); !almost(got, 0.05, 2e-3) {
		t.Fatalf("SF(3.841, 1) = %g", got)
	}
	if got := ChiSquareSF(18.307, 10); !almost(got, 0.05, 2e-3) {
		t.Fatalf("SF(18.307, 10) = %g", got)
	}
	for _, x := range []float64{1, 3, 9} {
		want := math.Exp(-x / 2)
		if got := ChiSquareSF(x, 2); !almost(got, want, 1e-9) {
			t.Fatalf("SF(%g, 2) = %g want %g", x, got, want)
		}
	}
	if ChiSquareSF(0, 5) != 1 || ChiSquareSF(-3, 5) != 1 {
		t.Fatal("SF at or below 0 must be 1")
	}
}
