package numeric

import "math"

// GammaP returns the regularized lower incomplete gamma function
// P(a, x) = gamma(a, x) / Gamma(a), for a > 0 and x >= 0.
//
// The implementation follows the classic series/continued-fraction split
// (Numerical Recipes 6.2): the power series converges quickly for
// x < a+1, the Lentz continued fraction for x >= a+1. Accuracy is ~1e-12,
// far tighter than anything a goodness-of-fit test needs.
func GammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaContFrac(a, x)
	}
}

// GammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - gammaSeries(a, x)
	default:
		return gammaContFrac(a, x)
	}
}

const (
	gammaEps     = 1e-14
	gammaMaxIter = 1000
	gammaFPMin   = 1e-300
)

// gammaSeries evaluates P(a,x) by its power series.
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContFrac evaluates Q(a,x) by the modified Lentz continued fraction.
func gammaContFrac(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / gammaFPMin
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < gammaFPMin {
			d = gammaFPMin
		}
		c = b + an/c
		if math.Abs(c) < gammaFPMin {
			c = gammaFPMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareSF returns the survival function (upper tail probability) of
// the chi-square distribution with df degrees of freedom at x: the
// p-value of a goodness-of-fit statistic.
func ChiSquareSF(x float64, df float64) float64 {
	if x <= 0 {
		return 1
	}
	return GammaQ(df/2, x/2)
}
