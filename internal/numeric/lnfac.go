// Package numeric supplies the special functions that the distribution and
// statistics packages are built on: log-factorials, log-binomial
// coefficients, and the regularized incomplete gamma function (used for
// chi-square p-values). Everything is stdlib-only (math.Lgamma).
package numeric

import "math"

// lnFacCacheSize is the number of exactly pre-computed log-factorials.
// 2048 covers every block size that appears in exhaustive uniformity tests
// and most matrix entries; larger arguments fall through to math.Lgamma,
// which is accurate to ~1 ulp in this range.
const lnFacCacheSize = 2048

var lnFacTable [lnFacCacheSize]float64

func init() {
	// Cumulative sums of log(k) are accurate enough here (error grows
	// like n*eps ~ 2e-13 for n=2048, far below the 1e-9 tolerances used
	// by the statistical tests).
	acc := 0.0
	lnFacTable[0] = 0
	for k := 1; k < lnFacCacheSize; k++ {
		acc += math.Log(float64(k))
		lnFacTable[k] = acc
	}
}

// LnFac returns ln(n!). It panics if n < 0.
func LnFac(n int64) float64 {
	if n < 0 {
		panic("numeric: LnFac of negative argument")
	}
	if n < lnFacCacheSize {
		return lnFacTable[n]
	}
	v, _ := math.Lgamma(float64(n) + 1)
	return v
}

// LogBinom returns ln(C(n, k)), the natural log of the binomial
// coefficient. It returns math.Inf(-1) when the coefficient is zero
// (k < 0 or k > n), matching the convention log(0) = -inf so that the
// value can be used directly in log-probability arithmetic.
func LogBinom(n, k int64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	return LnFac(n) - LnFac(k) - LnFac(n-k)
}

// LogHyperPMF returns the log of the hypergeometric probability
//
//	P(X = k) = C(w, k) C(b, t-k) / C(w+b, t)
//
// for an urn with w white and b black balls from which t are drawn. It
// returns -inf outside the support.
func LogHyperPMF(k, t, w, b int64) float64 {
	if t < 0 || w < 0 || b < 0 || t > w+b {
		return math.Inf(-1)
	}
	return LogBinom(w, k) + LogBinom(b, t-k) - LogBinom(w+b, t)
}
