package pro

import "testing"

func TestReduce(t *testing.T) {
	m := NewMachine(6)
	err := m.Run(func(p *Proc) {
		got := Reduce(p, 2, int64(p.Rank()+1), func(a, b int64) int64 { return a + b })
		if p.Rank() == 2 {
			if got != 21 {
				t.Errorf("reduce sum = %d, want 21", got)
			}
		} else if got != 0 {
			t.Errorf("non-root received %d", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceNonCommutative(t *testing.T) {
	// String concatenation: rank order must be preserved.
	m := NewMachine(4)
	err := m.Run(func(p *Proc) {
		s := string(rune('a' + p.Rank()))
		got := Reduce(p, 0, s, func(a, b string) string { return a + b })
		if p.Rank() == 0 && got != "abcd" {
			t.Errorf("ordered reduce = %q", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduce(t *testing.T) {
	m := NewMachine(5)
	err := m.Run(func(p *Proc) {
		maxRank := AllReduce(p, p.Rank(), func(a, b int) int {
			if a > b {
				return a
			}
			return b
		})
		if maxRank != 4 {
			t.Errorf("rank %d: allreduce max = %d", p.Rank(), maxRank)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExScan(t *testing.T) {
	m := NewMachine(6)
	err := m.Run(func(p *Proc) {
		got := ExScan(p, int64(p.Rank()+1), func(a, b int64) int64 { return a + b }, 0)
		// Exclusive prefix of 1,2,3,...: rank r gets r(r+1)/2.
		want := int64(p.Rank()) * int64(p.Rank()+1) / 2
		if got != want {
			t.Errorf("rank %d: exscan = %d, want %d", p.Rank(), got, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExScanSingleProc(t *testing.T) {
	m := NewMachine(1)
	err := m.Run(func(p *Proc) {
		if got := ExScan(p, 42, func(a, b int) int { return a + b }, 0); got != 0 {
			t.Errorf("p=1 exscan = %d, want 0", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
