package pro

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunAllRanks(t *testing.T) {
	m := NewMachine(7)
	var mask int64
	err := m.Run(func(p *Proc) {
		atomic.AddInt64(&mask, 1<<uint(p.Rank()))
		if p.P() != 7 {
			t.Errorf("P() = %d", p.P())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if mask != 127 {
		t.Fatalf("ranks mask = %b", mask)
	}
}

func TestNewMachinePanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=0 did not panic")
		}
	}()
	NewMachine(0)
}

func TestSendRecvFIFO(t *testing.T) {
	m := NewMachine(2)
	err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			for i := 0; i < 100; i++ {
				p.Send(1, i)
			}
		} else {
			for i := 0; i < 100; i++ {
				if got := p.Recv(0).(int); got != i {
					t.Errorf("message %d arrived as %d", i, got)
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvMatchesSource(t *testing.T) {
	// Messages from different sources must be separable even when they
	// interleave arbitrarily.
	m := NewMachine(3)
	err := m.Run(func(p *Proc) {
		switch p.Rank() {
		case 0, 1:
			for i := 0; i < 50; i++ {
				p.Send(2, p.Rank()*1000+i)
			}
		case 2:
			// Drain source 1 first even though 0 may arrive first.
			for i := 0; i < 50; i++ {
				if got := p.Recv(1).(int); got != 1000+i {
					t.Errorf("from 1: got %d want %d", got, 1000+i)
					return
				}
			}
			for i := 0; i < 50; i++ {
				if got := p.Recv(0).(int); got != i {
					t.Errorf("from 0: got %d want %d", got, i)
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSend(t *testing.T) {
	m := NewMachine(1)
	err := m.Run(func(p *Proc) {
		p.Send(0, "hello")
		if got := p.Recv(0).(string); got != "hello" {
			t.Errorf("self-send got %q", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnyCollectsAll(t *testing.T) {
	m := NewMachine(5)
	err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			seen := make(map[int]bool)
			for i := 0; i < 4; i++ {
				from, payload := p.RecvAny()
				if payload.(int) != from*7 {
					t.Errorf("payload mismatch from %d", from)
				}
				seen[from] = true
			}
			if len(seen) != 4 {
				t.Errorf("saw %d distinct sources", len(seen))
			}
		} else {
			p.Send(0, p.Rank()*7)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTryRecv(t *testing.T) {
	m := NewMachine(2)
	err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			if _, _, ok := p.TryRecv(); ok {
				t.Error("TryRecv on empty mailbox returned a message")
			}
			p.Send(1, 42)
		} else {
			if got := p.Recv(0).(int); got != 42 {
				t.Errorf("got %d", got)
			}
			if _, _, ok := p.TryRecv(); ok {
				t.Error("mailbox should be drained")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSeparatesSupersteps(t *testing.T) {
	m := NewMachine(4)
	err := m.Run(func(p *Proc) {
		if p.Superstep() != 0 {
			t.Errorf("initial superstep = %d", p.Superstep())
		}
		p.Barrier()
		if p.Superstep() != 1 {
			t.Errorf("superstep after barrier = %d", p.Superstep())
		}
		p.Barrier()
		p.Barrier()
		if p.Superstep() != 3 {
			t.Errorf("superstep = %d, want 3", p.Superstep())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if r := m.Report(); r.Supersteps != 4 {
		t.Fatalf("report supersteps = %d, want 4", r.Supersteps)
	}
}

func TestPanicPropagation(t *testing.T) {
	m := NewMachine(4)
	err := m.Run(func(p *Proc) {
		if p.Rank() == 2 {
			panic("deliberate failure")
		}
		// Everyone else blocks; the poison must release them.
		p.Recv(3)
	})
	if err == nil {
		t.Fatal("panic was not propagated")
	}
	if !strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("error lost the cause: %v", err)
	}
	// The machine must be reusable after a failure.
	if err := m.Run(func(p *Proc) {}); err != nil {
		t.Fatalf("machine unusable after failure: %v", err)
	}
}

func TestPanicInBarrier(t *testing.T) {
	m := NewMachine(3)
	err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			panic("boom")
		}
		p.Barrier()
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestSendInvalidRankPanics(t *testing.T) {
	m := NewMachine(2)
	err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(5, 1)
		}
	})
	if err == nil {
		t.Fatal("send to invalid rank must fail the run")
	}
}

func TestCostAccounting(t *testing.T) {
	m := NewMachine(2)
	err := m.Run(func(p *Proc) {
		p.AddOps(10)
		p.AddDraws(3)
		if p.Rank() == 0 {
			p.Send(1, []int64{1, 2, 3}) // 24 bytes
		}
		p.Barrier()
		if p.Rank() == 1 {
			p.Recv(0)
			p.AddOps(5)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	r := m.Report()
	if r.TotalOps() != 25 {
		t.Fatalf("total ops = %d, want 25", r.TotalOps())
	}
	if r.TotalDraws() != 6 {
		t.Fatalf("total draws = %d, want 6", r.TotalDraws())
	}
	c0 := m.Cost(0).Totals()
	if c0.BytesOut != 24 || c0.MsgsOut != 1 {
		t.Fatalf("sender cost: %+v", c0)
	}
	c1 := m.Cost(1).Totals()
	if c1.BytesIn != 24 || c1.MsgsIn != 1 {
		t.Fatalf("receiver cost: %+v", c1)
	}
	// h-relation of superstep 0 is the send (24 bytes out at rank 0).
	if r.Steps[0].H != 24 {
		t.Fatalf("superstep 0 h = %d, want 24", r.Steps[0].H)
	}
	if r.MaxOps() != 10+5 && r.MaxOps() != 10 {
		t.Fatalf("max ops = %d", r.MaxOps())
	}
}

func TestHRelationAllToAll(t *testing.T) {
	// A balanced all-to-all of k-byte payloads per pair has h-relation
	// p*k in its superstep.
	const p = 4
	m := NewMachine(p)
	payload := make([]byte, 100)
	err := m.Run(func(pr *Proc) {
		out := make([][]byte, p)
		for j := range out {
			out[j] = payload
		}
		AllToAll(pr, out)
		pr.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	r := m.Report()
	if r.Steps[0].H != p*100 {
		t.Fatalf("h-relation = %d, want %d", r.Steps[0].H, p*100)
	}
}

func TestCostsChargedToCorrectSuperstep(t *testing.T) {
	m := NewMachine(2)
	err := m.Run(func(p *Proc) {
		p.AddOps(3)
		p.Barrier()
		p.AddOps(5)
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := m.Cost(0).Steps()
	if steps[0].Ops != 3 || steps[1].Ops != 5 {
		t.Fatalf("per-step ops: %+v", steps)
	}
}

func TestResetCosts(t *testing.T) {
	m := NewMachine(2)
	if err := m.Run(func(p *Proc) { p.AddOps(5) }); err != nil {
		t.Fatal(err)
	}
	m.ResetCosts()
	if r := m.Report(); r.TotalOps() != 0 {
		t.Fatalf("costs survived reset: %d", r.TotalOps())
	}
}

func TestModelTime(t *testing.T) {
	r := Report{
		Steps: []StepSummary{{W: 100, H: 10}, {W: 50, H: 20}},
	}
	got := r.ModelTime(2, 5)
	want := float64(100+2*10+5) + float64(50+2*20+5)
	if got != want {
		t.Fatalf("ModelTime = %g, want %g", got, want)
	}
}

func TestProfileString(t *testing.T) {
	m := NewMachine(2)
	err := m.Run(func(p *Proc) {
		p.AddOps(7)
		if p.Rank() == 0 {
			p.Send(1, []int64{1, 2})
		} else {
			p.Recv(0)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	prof := m.Report().ProfileString()
	for _, want := range []string{"p=2", "2 supersteps", "W (max ops)", "16", "totals:"} {
		if !strings.Contains(prof, want) {
			t.Fatalf("profile missing %q:\n%s", want, prof)
		}
	}
}

func TestBcast(t *testing.T) {
	m := NewMachine(5)
	err := m.Run(func(p *Proc) {
		var v int
		if p.Rank() == 2 {
			v = 99
		}
		got := Bcast(p, 2, v)
		if got != 99 {
			t.Errorf("rank %d got %d", p.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatter(t *testing.T) {
	m := NewMachine(4)
	err := m.Run(func(p *Proc) {
		got := Gather(p, 0, p.Rank()*11)
		if p.Rank() == 0 {
			for i, v := range got {
				if v != i*11 {
					t.Errorf("gather[%d] = %d", i, v)
				}
			}
			out := []string{"a", "b", "c", "d"}
			if s := Scatter(p, 0, out); s != "a" {
				t.Errorf("root scatter got %q", s)
			}
		} else {
			if got != nil {
				t.Errorf("non-root gather returned %v", got)
			}
			want := string(rune('a' + p.Rank()))
			if s := Scatter[string](p, 0, nil); s != want {
				t.Errorf("rank %d scatter got %q want %q", p.Rank(), s, want)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAll(t *testing.T) {
	const p = 6
	m := NewMachine(p)
	err := m.Run(func(pr *Proc) {
		out := make([]int, p)
		for j := range out {
			out[j] = pr.Rank()*100 + j
		}
		in := AllToAll(pr, out)
		for i, v := range in {
			if v != i*100+pr.Rank() {
				t.Errorf("rank %d in[%d] = %d", pr.Rank(), i, v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGather(t *testing.T) {
	m := NewMachine(3)
	err := m.Run(func(p *Proc) {
		all := AllGather(p, int64(p.Rank()))
		for i, v := range all {
			if v != int64(i) {
				t.Errorf("allgather[%d] = %d", i, v)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllWrongLenPanics(t *testing.T) {
	m := NewMachine(2)
	err := m.Run(func(p *Proc) {
		AllToAll(p, make([]int, 3))
	})
	if err == nil {
		t.Fatal("wrong-length AllToAll must fail")
	}
}

func TestProtocolMismatchPanics(t *testing.T) {
	m := NewMachine(2)
	err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, "not an int")
		} else {
			_ = recvAs[int](p, 0)
		}
	})
	if err == nil {
		t.Fatal("type mismatch must fail the run")
	}
	if !strings.Contains(err.Error(), "protocol mismatch") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestDefaultSize(t *testing.T) {
	cases := []struct {
		v    any
		want int
	}{
		{nil, 0},
		{[]int64{1, 2, 3}, 24},
		{[]byte("abcd"), 4},
		{"hello", 5},
		{int64(1), 8},
		{int32(1), 4},
		{true, 1},
		{[]float64{1}, 8},
		{[]uint32{1, 2}, 8},
		{[2]int64{1, 2}, 16},          // reflect fallback: array
		{struct{ A, B int64 }{}, 16},  // reflect fallback: struct
		{[]struct{ A int64 }{{1}}, 8}, // reflect fallback: slice of structs
	}
	for _, c := range cases {
		if got := DefaultSize(c.v); got != c.want {
			t.Fatalf("DefaultSize(%T) = %d, want %d", c.v, got, c.want)
		}
	}
}

type customSized struct{}

func (customSized) SizeBytes() int { return 123 }

func TestSizedInterface(t *testing.T) {
	if got := DefaultSize(customSized{}); got != 123 {
		t.Fatalf("Sized payload measured as %d", got)
	}
}

func TestWithSizer(t *testing.T) {
	m := NewMachine(2, WithSizer(func(any) int { return 7 }))
	err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, "xxxxxxxxxxxx")
		} else {
			p.Recv(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cost(0).Totals().BytesOut != 7 {
		t.Fatal("custom sizer ignored")
	}
}

func TestPendingCount(t *testing.T) {
	m := NewMachine(2)
	err := m.Run(func(p *Proc) {
		if p.Rank() == 0 {
			p.Send(1, 1)
			p.Send(1, 2)
			p.Barrier()
		} else {
			p.Barrier()
			if n := p.Pending(); n != 2 {
				t.Errorf("pending = %d, want 2", n)
			}
			p.Recv(0)
			p.Recv(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestManyRunsAccumulate(t *testing.T) {
	m := NewMachine(3)
	for i := 0; i < 5; i++ {
		if err := m.Run(func(p *Proc) { p.AddOps(1) }); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Report().TotalOps(); got != 15 {
		t.Fatalf("accumulated ops = %d, want 15", got)
	}
}

func TestStressManyMessages(t *testing.T) {
	const p = 8
	const msgs = 500
	m := NewMachine(p)
	err := m.Run(func(pr *Proc) {
		for round := 0; round < msgs; round++ {
			for dst := 0; dst < p; dst++ {
				pr.Send(dst, pr.Rank())
			}
			sum := 0
			for src := 0; src < p; src++ {
				sum += pr.Recv(src).(int)
			}
			if sum != p*(p-1)/2 {
				t.Errorf("round %d: sum = %d", round, sum)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBarrier(b *testing.B) {
	m := NewMachine(8)
	err := m.Run(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Barrier()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSendRecv(b *testing.B) {
	// Ping-pong in windows of 64 so the unbounded mailbox stays small
	// (a free-running sender would otherwise queue b.N messages).
	const window = 64
	m := NewMachine(2)
	payload := make([]int64, 128)
	err := m.Run(func(p *Proc) {
		peer := 1 - p.Rank()
		for i := 0; i < b.N; i++ {
			if p.Rank() == 0 {
				p.Send(1, payload)
			} else {
				p.Recv(0)
			}
			if i%window == window-1 {
				// Reverse ack bounds the in-flight window.
				if p.Rank() == 0 {
					p.Recv(peer)
				} else {
					p.Send(peer, struct{}{})
				}
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
