package pro

// StepCost accumulates the communication and computation charged to one
// processor during one superstep.
type StepCost struct {
	Ops      int64 // local operations (charged by the algorithm via AddOps)
	Draws    int64 // raw random numbers (charged via AddDraws)
	MsgsOut  int64
	MsgsIn   int64
	BytesOut int64
	BytesIn  int64
}

// Cost is the per-processor cost ledger. It is only mutated by its owning
// processor goroutine during Run; read it after Run returns.
type Cost struct {
	steps []StepCost
	super int
}

func newCost() *Cost {
	return &Cost{steps: make([]StepCost, 1)}
}

func (c *Cost) cur() *StepCost { return &c.steps[c.super] }

func (c *Cost) advance() {
	c.super++
	c.steps = append(c.steps, StepCost{})
}

func (c *Cost) superstep() int { return c.super }

// Steps returns the per-superstep cost records accumulated so far.
func (c *Cost) Steps() []StepCost { return c.steps }

// Totals returns the sums over all supersteps.
func (c *Cost) Totals() StepCost {
	var t StepCost
	for _, s := range c.steps {
		t.Ops += s.Ops
		t.Draws += s.Draws
		t.MsgsOut += s.MsgsOut
		t.MsgsIn += s.MsgsIn
		t.BytesOut += s.BytesOut
		t.BytesIn += s.BytesIn
	}
	return t
}

// StepSummary is the machine-wide view of one superstep in the BSP cost
// formula: W is the maximum local work of any processor, H the h-relation
// (maximum of per-processor in- and out-bytes).
type StepSummary struct {
	W int64
	H int64
}

// Report is the machine-wide cost accounting of one or more Runs.
type Report struct {
	P          int
	Supersteps int
	PerProc    []StepCost    // totals per processor
	Steps      []StepSummary // BSP per-superstep summaries
}

// Report aggregates the per-processor ledgers into the BSP view. Call it
// after Run has returned.
func (m *Machine) Report() Report {
	r := Report{P: m.p, Supersteps: m.maxSuper + 1}
	r.PerProc = make([]StepCost, m.p)
	r.Steps = make([]StepSummary, r.Supersteps)
	for rank, c := range m.costs {
		r.PerProc[rank] = c.Totals()
		for s, sc := range c.steps {
			if s >= len(r.Steps) {
				break
			}
			if sc.Ops > r.Steps[s].W {
				r.Steps[s].W = sc.Ops
			}
			h := sc.BytesOut
			if sc.BytesIn > h {
				h = sc.BytesIn
			}
			if h > r.Steps[s].H {
				r.Steps[s].H = h
			}
		}
	}
	return r
}

// MaxOps returns the largest per-processor total operation count: the
// "balance" quantity of the paper (no processor may exceed O(m)).
func (r Report) MaxOps() int64 {
	var m int64
	for _, pc := range r.PerProc {
		if pc.Ops > m {
			m = pc.Ops
		}
	}
	return m
}

// MaxDraws returns the largest per-processor random-draw count.
func (r Report) MaxDraws() int64 {
	var m int64
	for _, pc := range r.PerProc {
		if pc.Draws > m {
			m = pc.Draws
		}
	}
	return m
}

// MaxBytes returns the largest per-processor communication volume
// (max of bytes in, bytes out).
func (r Report) MaxBytes() int64 {
	var m int64
	for _, pc := range r.PerProc {
		if pc.BytesOut > m {
			m = pc.BytesOut
		}
		if pc.BytesIn > m {
			m = pc.BytesIn
		}
	}
	return m
}

// TotalOps returns the summed operation count over all processors (the
// "work" of work-optimality).
func (r Report) TotalOps() int64 {
	var t int64
	for _, pc := range r.PerProc {
		t += pc.Ops
	}
	return t
}

// TotalDraws returns the summed random-draw count.
func (r Report) TotalDraws() int64 {
	var t int64
	for _, pc := range r.PerProc {
		t += pc.Draws
	}
	return t
}

// ModelTime evaluates the BSP cost formula T = sum_s (w_s + g*h_s + L)
// with bandwidth parameter g (time per byte) and latency/synchronization
// parameter L (time per superstep), in abstract time units where one local
// operation costs 1.
func (r Report) ModelTime(g, l float64) float64 {
	t := 0.0
	for _, s := range r.Steps {
		t += float64(s.W) + g*float64(s.H) + l
	}
	return t
}
