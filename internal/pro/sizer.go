package pro

import "reflect"

// Sized lets message payload types report their own wire size to the cost
// accounting.
type Sized interface {
	SizeBytes() int
}

// DefaultSize estimates the wire size of a payload in bytes. Common
// numeric slices are handled without reflection; everything else falls
// back to reflect (slices count len * element size, scalars their own
// size). Pointers and reference-heavy types should implement Sized for
// faithful accounting.
func DefaultSize(v any) int {
	switch x := v.(type) {
	case nil:
		return 0
	case Sized:
		return x.SizeBytes()
	case []int64:
		return 8 * len(x)
	case []uint64:
		return 8 * len(x)
	case []float64:
		return 8 * len(x)
	case []int:
		return 8 * len(x)
	case []int32:
		return 4 * len(x)
	case []uint32:
		return 4 * len(x)
	case []byte:
		return len(x)
	case string:
		return len(x)
	case int, int64, uint64, float64:
		return 8
	case int32, uint32, float32:
		return 4
	case bool, int8, uint8:
		return 1
	}
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Slice, reflect.Array:
		if rv.Len() == 0 {
			return 0
		}
		return rv.Len() * int(rv.Type().Elem().Size())
	default:
		return int(rv.Type().Size())
	}
}
