package pro

import "randperm/internal/engine"

// *Proc is the canonical implementation of the engine.Worker interface;
// the compile-time check keeps the two method sets in lockstep.
var _ engine.Worker = (*Proc)(nil)

// Engine adapts the machine to the engine.Engine interface, the seam
// that lets SPMD algorithms (core.PermuteOn, the matrix samplers) be
// written once and run on the simulated machine or any other backend.
func (m *Machine) Engine() engine.Engine { return simEngine{m} }

type simEngine struct{ m *Machine }

func (e simEngine) P() int { return e.m.P() }

func (e simEngine) Run(body func(engine.Worker)) error {
	return e.m.Run(func(pr *Proc) { body(pr) })
}
