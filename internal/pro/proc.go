package pro

import "fmt"

// Proc is the handle a processor's code uses to communicate and to charge
// costs. A Proc is only valid inside the body passed to Machine.Run and
// must not be shared with other goroutines.
type Proc struct {
	m    *Machine
	rank int
}

// Rank returns this processor's id in [0, P).
func (p *Proc) Rank() int { return p.rank }

// P returns the machine size.
func (p *Proc) P() int { return p.m.p }

// Send transmits payload to processor `to` (self-sends are allowed and
// delivered through the same mailbox). The payload's size in bytes, as
// measured by the machine's sizer, is charged to this processor's current
// superstep as outgoing traffic.
func (p *Proc) Send(to int, payload any) {
	if to < 0 || to >= p.m.p {
		panic(fmt.Sprintf("pro: send to invalid rank %d (p=%d)", to, p.m.p))
	}
	size := p.m.sizeOf(payload)
	c := p.m.costs[p.rank].cur()
	c.MsgsOut++
	c.BytesOut += int64(size)
	p.m.inboxes[to].push(message{from: p.rank, payload: payload, size: size})
}

// Recv blocks until a message from processor `from` is available and
// returns its payload. Messages from one source arrive in send order.
func (p *Proc) Recv(from int) any {
	if from < 0 || from >= p.m.p {
		panic(fmt.Sprintf("pro: recv from invalid rank %d (p=%d)", from, p.m.p))
	}
	msg := p.m.inboxes[p.rank].popFrom(from)
	c := p.m.costs[p.rank].cur()
	c.MsgsIn++
	c.BytesIn += int64(msg.size)
	return msg.payload
}

// RecvAny blocks until any message is available and returns its source
// and payload. The order between different sources is scheduling
// dependent; use it only where the protocol is order insensitive (e.g.
// collecting a known quantity of tagged fragments, as in the
// redistribution step of Algorithm 6).
func (p *Proc) RecvAny() (from int, payload any) {
	msg := p.m.inboxes[p.rank].popAny()
	c := p.m.costs[p.rank].cur()
	c.MsgsIn++
	c.BytesIn += int64(msg.size)
	return msg.from, msg.payload
}

// TryRecv removes and returns the oldest pending message, if any, without
// blocking.
func (p *Proc) TryRecv() (from int, payload any, ok bool) {
	msg, ok := p.m.inboxes[p.rank].tryPop()
	if !ok {
		return 0, nil, false
	}
	c := p.m.costs[p.rank].cur()
	c.MsgsIn++
	c.BytesIn += int64(msg.size)
	return msg.from, msg.payload, true
}

// Pending returns the number of undelivered messages in this processor's
// mailbox.
func (p *Proc) Pending() int { return p.m.inboxes[p.rank].len() }

// Barrier synchronizes all processors and starts a new superstep for cost
// accounting. Every processor must call Barrier the same number of times.
func (p *Proc) Barrier() {
	p.m.barrier.await()
	p.m.costs[p.rank].advance()
}

// Superstep returns the index of the current superstep (starting at 0).
func (p *Proc) Superstep() int { return p.m.costs[p.rank].superstep() }

// AddOps charges n local operations to the current superstep. The paper's
// algorithms charge one operation per item touched and per hypergeometric
// sample, making the Theta-bounds of Propositions 7-9 directly measurable.
func (p *Proc) AddOps(n int64) { p.m.costs[p.rank].cur().Ops += n }

// AddDraws charges n raw random draws to the current superstep.
func (p *Proc) AddDraws(n int64) { p.m.costs[p.rank].cur().Draws += n }
