// Package pro simulates the coarse grained parallel machine of the PRO
// model (Gebremedhin, Guérin Lassous, Gustedt, Telle 2002), the setting of
// the paper. A Machine consists of p homogeneous "processors", each run as
// a goroutine, connected by a complete point-to-point network:
//
//   - Send/Recv move messages between processors; each destination owns a
//     FIFO mailbox per source, so matched communication is deterministic.
//   - Barrier separates supersteps; communication cost is accounted to the
//     superstep in which the send happened, which is what the BSP cost
//     formula T = sum_s (w_s + g*h_s + L) needs.
//   - Every processor carries counters for local operations, random draws,
//     messages and bytes, so the Theta-bounds of the paper (Propositions
//     7-9, Theorems 1-2) can be measured rather than trusted.
//
// Message delivery is immediate (MPI-style) rather than delayed to the
// next superstep: Recv blocks until the matching message exists. This is
// conservative with respect to BSP semantics - any BSP-correct program is
// correct here, and the cost accounting is unchanged because costs attach
// to sends.
package pro

import (
	"fmt"
	"sync"
)

// Machine is a simulated p-processor coarse grained machine. Create one
// with NewMachine, run SPMD code with Run, then read Report for the cost
// accounting.
type Machine struct {
	p        int
	inboxes  []*mailbox
	barrier  *barrier
	costs    []*Cost
	sizeOf   func(any) int
	maxSuper int // high-water mark of superstep counters
}

// Option configures a Machine.
type Option func(*Machine)

// WithSizer replaces the default message sizer used for byte accounting.
// The sizer receives every payload given to Send and returns its size in
// bytes.
func WithSizer(f func(any) int) Option {
	return func(m *Machine) { m.sizeOf = f }
}

// NewMachine creates a machine with p processors. It panics if p < 1.
func NewMachine(p int, opts ...Option) *Machine {
	if p < 1 {
		panic("pro: machine needs at least one processor")
	}
	m := &Machine{
		p:       p,
		inboxes: make([]*mailbox, p),
		barrier: newBarrier(p),
		costs:   make([]*Cost, p),
		sizeOf:  DefaultSize,
	}
	for i := range m.inboxes {
		m.inboxes[i] = newMailbox(p)
		m.costs[i] = newCost()
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// P returns the number of processors.
func (m *Machine) P() int { return m.p }

// Run executes body once per processor, each in its own goroutine, and
// blocks until all of them return. The *Proc passed to body identifies
// the processor and provides communication and accounting.
//
// A panic in any processor is captured, the remaining processors are
// released (their channel operations are poisoned by closing the
// machine), and the panic is returned as an error annotated with the
// processor rank. Run may be called several times on the same machine;
// cost counters accumulate across runs until ResetCosts.
func (m *Machine) Run(body func(*Proc)) error {
	var wg sync.WaitGroup
	errs := make([]error, m.p)
	secondary := make([]bool, m.p)
	wg.Add(m.p)
	for rank := 0; rank < m.p; rank++ {
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[rank] = fmt.Errorf("pro: processor %d panicked: %v", rank, r)
					// Processors unwound by the poison are
					// collateral damage, not the root cause.
					_, secondary[rank] = r.(poisonError)
					m.barrier.poison()
					for _, in := range m.inboxes {
						in.poison()
					}
				}
			}()
			body(&Proc{m: m, rank: rank})
		}(rank)
	}
	wg.Wait()
	m.barrier.reset()
	for _, in := range m.inboxes {
		in.unpoison()
	}
	// One pass, preferring root causes: a processor unwound by the
	// poison is collateral damage and is only reported when no
	// processor failed on its own.
	var collateral error
	for rank, err := range errs {
		if err == nil {
			continue
		}
		if !secondary[rank] {
			return fmt.Errorf("rank %d: %w", rank, err)
		}
		if collateral == nil {
			collateral = fmt.Errorf("rank %d: %w", rank, err)
		}
	}
	if collateral != nil {
		return collateral
	}
	for _, c := range m.costs {
		if s := c.superstep(); s > m.maxSuper {
			m.maxSuper = s
		}
	}
	return nil
}

// ResetCosts zeroes all cost counters, typically between a warm-up run
// and a measured run.
func (m *Machine) ResetCosts() {
	for i := range m.costs {
		m.costs[i] = newCost()
	}
	m.maxSuper = 0
}

// Cost returns the accumulated cost counters of processor rank.
func (m *Machine) Cost(rank int) *Cost { return m.costs[rank] }
