package pro

import "randperm/internal/engine"

// Reduce combines one value per processor with a binary operation and
// delivers the result at the root; other ranks receive the zero value of
// T. op must be associative; values are combined in rank order, so
// non-commutative operations are well defined.
func Reduce[T any](p engine.Worker, root int, v T, op func(a, b T) T) T {
	vals := Gather(p, root, v)
	if p.Rank() != root {
		var zero T
		return zero
	}
	acc := vals[0]
	for _, x := range vals[1:] {
		acc = op(acc, x)
	}
	p.AddOps(int64(p.P()))
	return acc
}

// AllReduce is Reduce delivered to every processor.
func AllReduce[T any](p engine.Worker, v T, op func(a, b T) T) T {
	return Bcast(p, 0, Reduce(p, 0, v, op))
}

// ExScan computes the exclusive prefix combination: rank r receives
// op(v_0, ..., v_{r-1}), and rank 0 receives zero. It is the collective
// behind order-preserving redistributions (e.g. the rebalancing step of
// the sort-based shuffle baseline).
func ExScan[T any](p engine.Worker, v T, op func(a, b T) T, zero T) T {
	vals := AllGather(p, v)
	acc := zero
	for r := 0; r < p.Rank(); r++ {
		acc = op(acc, vals[r])
	}
	p.AddOps(int64(p.P()))
	return acc
}
