package pro

import (
	"fmt"
	"strings"
)

// ProfileString renders the report as a per-superstep text profile: the
// BSP decomposition of the run (W = maximum local operations, H =
// h-relation in bytes), followed by per-machine totals. It is the
// observability surface for tuning the algorithms' superstep structure.
func (r Report) ProfileString() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "machine: p=%d, %d supersteps\n", r.P, r.Supersteps)
	fmt.Fprintf(&sb, "%-6s %14s %14s\n", "step", "W (max ops)", "H (bytes)")
	for s, step := range r.Steps {
		fmt.Fprintf(&sb, "%-6d %14d %14d\n", s, step.W, step.H)
	}
	fmt.Fprintf(&sb, "totals: ops max/proc %d, sum %d; draws max/proc %d, sum %d; comm max/proc %d bytes\n",
		r.MaxOps(), r.TotalOps(), r.MaxDraws(), r.TotalDraws(), r.MaxBytes())
	return sb.String()
}
