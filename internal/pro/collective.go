package pro

import (
	"fmt"

	"randperm/internal/engine"
)

// The collectives below are the standard coarse-grained building blocks
// (one superstep each in BSP terms). They are free functions rather than
// methods so they can be generic over the payload type, and they take
// the engine.Worker interface so they run on any message-passing
// backend, not just *Proc.

// Bcast distributes v from the root processor to all processors and
// returns the broadcast value on every processor. Non-root callers pass
// the zero value.
func Bcast[T any](p engine.Worker, root int, v T) T {
	if p.Rank() == root {
		for dst := 0; dst < p.P(); dst++ {
			if dst != root {
				p.Send(dst, v)
			}
		}
		return v
	}
	return recvAs[T](p, root)
}

// Gather collects one value from every processor at the root. On the root
// it returns a slice indexed by rank; elsewhere it returns nil.
func Gather[T any](p engine.Worker, root int, v T) []T {
	if p.Rank() != root {
		p.Send(root, v)
		return nil
	}
	out := make([]T, p.P())
	out[root] = v
	for src := 0; src < p.P(); src++ {
		if src != root {
			out[src] = recvAs[T](p, src)
		}
	}
	return out
}

// Scatter distributes vals[rank] from the root to each processor and
// returns the local element. Only the root's vals is consulted; it must
// have length P.
func Scatter[T any](p engine.Worker, root int, vals []T) T {
	if p.Rank() == root {
		if len(vals) != p.P() {
			panic(fmt.Sprintf("pro: Scatter with %d values on machine of %d", len(vals), p.P()))
		}
		for dst := 0; dst < p.P(); dst++ {
			if dst != root {
				p.Send(dst, vals[dst])
			}
		}
		return vals[root]
	}
	return recvAs[T](p, root)
}

// AllToAll performs a personalized all-to-all exchange: out[j] is sent to
// processor j, and the returned slice holds in[i] = the value processor i
// sent here. This is exactly one h-relation of the BSP model; Algorithm
// 1's data exchange is an AllToAll of item slices.
func AllToAll[T any](p engine.Worker, out []T) []T {
	if len(out) != p.P() {
		panic(fmt.Sprintf("pro: AllToAll with %d values on machine of %d", len(out), p.P()))
	}
	for dst := 0; dst < p.P(); dst++ {
		p.Send(dst, out[dst])
	}
	in := make([]T, p.P())
	for src := 0; src < p.P(); src++ {
		in[src] = recvAs[T](p, src)
	}
	return in
}

// AllGather collects one value from every processor on every processor.
func AllGather[T any](p engine.Worker, v T) []T {
	out := make([]T, p.P())
	for i := range out {
		out[i] = v
	}
	return AllToAll(p, out)
}

// recvAs receives from src and type-asserts the payload, converting a
// protocol mismatch into a descriptive panic.
func recvAs[T any](p engine.Worker, src int) T {
	raw := p.Recv(src)
	v, ok := raw.(T)
	if !ok {
		panic(fmt.Sprintf("pro: rank %d received %T from %d, protocol mismatch", p.Rank(), raw, src))
	}
	return v
}
