package pro

import "sync"

// barrier is a reusable (cyclic) barrier for p goroutines using a
// generation counter, the textbook condition-variable construction.
type barrier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	p        int
	waiting  int
	gen      uint64
	poisoned bool
}

func newBarrier(p int) *barrier {
	b := &barrier{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until all p participants have called await for the current
// generation.
func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		panic(errPoisoned)
	}
	gen := b.gen
	b.waiting++
	if b.waiting == b.p {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen && !b.poisoned {
		b.cond.Wait()
	}
	if b.poisoned {
		panic(errPoisoned)
	}
}

// poison releases all waiters with a panic.
func (b *barrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.mu.Unlock()
	b.cond.Broadcast()
}

// reset clears the poisoned flag and waiter count between runs.
func (b *barrier) reset() {
	b.mu.Lock()
	b.poisoned = false
	b.waiting = 0
	b.mu.Unlock()
}
