package pro

import "sync"

// message is one point-to-point transmission.
type message struct {
	from    int
	payload any
	size    int
}

// mailbox is the unbounded receive queue of one processor. A single
// mutex-protected queue keeps per-source FIFO order (required for
// deterministic matched receives) while still supporting receive-from-any
// (required by the redistribution step of Algorithm 6, where the set of
// senders is data dependent).
type mailbox struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []message
	poisoned bool
}

func newMailbox(p int) *mailbox {
	mb := &mailbox{queue: make([]message, 0, p)}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// push appends a message and wakes any waiting receiver.
func (mb *mailbox) push(msg message) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, msg)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// popFrom blocks until a message from the given source is available and
// removes the earliest such message (per-source FIFO).
func (mb *mailbox) popFrom(from int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i := range mb.queue {
			if mb.queue[i].from == from {
				msg := mb.queue[i]
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return msg
			}
		}
		if mb.poisoned {
			panic(errPoisoned)
		}
		mb.cond.Wait()
	}
}

// popAny blocks until any message is available and removes the oldest.
func (mb *mailbox) popAny() message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queue) == 0 {
		if mb.poisoned {
			panic(errPoisoned)
		}
		mb.cond.Wait()
	}
	msg := mb.queue[0]
	mb.queue = mb.queue[1:]
	return msg
}

// tryPop removes the oldest message if one exists.
func (mb *mailbox) tryPop() (message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if len(mb.queue) == 0 {
		return message{}, false
	}
	msg := mb.queue[0]
	mb.queue = mb.queue[1:]
	return msg, true
}

// len returns the number of queued messages.
func (mb *mailbox) len() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.queue)
}

// poison wakes all blocked receivers with a panic, used to unwind the
// machine when some processor has already panicked.
func (mb *mailbox) poison() {
	mb.mu.Lock()
	mb.poisoned = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// unpoison clears the poisoned state (between Run invocations).
func (mb *mailbox) unpoison() {
	mb.mu.Lock()
	mb.poisoned = false
	mb.queue = mb.queue[:0]
	mb.mu.Unlock()
}

// errPoisoned is the panic payload used to unwind blocked processors
// after another processor failed.
type poisonError struct{}

func (poisonError) Error() string {
	return "pro: machine poisoned by a failing processor"
}

var errPoisoned = poisonError{}
