package core

import (
	"testing"

	"randperm/internal/stats"
)

// TestAlg1Uniform is the unit-test version of experiment E5: every matrix
// algorithm must generate all n! permutations equally often.
func TestAlg1Uniform(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	const n = 4
	const trials = 24000
	nf := stats.Factorial(n)
	layouts := [][]int64{
		{2, 2},
		{3, 1},
		{1, 1, 2},
	}
	for _, alg := range []MatrixAlg{MatrixSeq, MatrixLog, MatrixOpt} {
		for _, sizes := range layouts {
			counts := make([]int64, nf)
			for tr := 0; tr < trials; tr++ {
				blocks, err := Split(Iota(n), sizes)
				if err != nil {
					t.Fatal(err)
				}
				out, _, err := Permute(blocks, sizes, Config{
					Seed:   uint64(tr)*0x9E3779B97F4A7C15 + uint64(alg),
					Matrix: alg,
				})
				if err != nil {
					t.Fatal(err)
				}
				counts[stats.RankPermInt64(Flatten(out))]++
			}
			res, err := stats.ChiSquareUniform(counts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Reject(0.0005) {
				t.Errorf("alg=%v layout=%v: non-uniform, %s", alg, sizes, res)
			}
		}
	}
}

// TestAlg1UniformChangingShape exercises the fully general Problem 1: the
// output block structure differs from the input structure; uniformity
// must still hold over the flattened vector.
func TestAlg1UniformChangingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	const n = 4
	const trials = 24000
	nf := stats.Factorial(n)
	inSizes := []int64{3, 1}
	outSizes := []int64{1, 3}
	counts := make([]int64, nf)
	for tr := 0; tr < trials; tr++ {
		blocks, err := Split(Iota(n), inSizes)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := Permute(blocks, outSizes, Config{
			Seed:   uint64(tr)*0xD1342543DE82EF95 + 17,
			Matrix: MatrixOpt,
		})
		if err != nil {
			t.Fatal(err)
		}
		counts[stats.RankPermInt64(Flatten(out))]++
	}
	res, err := stats.ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.0005) {
		t.Errorf("shape-changing permute non-uniform: %s", res)
	}
}
