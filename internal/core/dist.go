// Package core implements the paper's primary contribution: uniform
// random permutation of block-distributed data on a coarse grained
// parallel machine (Algorithm 1), driven by the three communication-matrix
// sampling strategies (Algorithm 3 at the root, Algorithm 5 with a log
// factor, and the cost-optimal Algorithm 6).
//
// All algorithms run SPMD-style on a pro.Machine; every processor draws
// randomness from its own jump-separated stream, so runs are deterministic
// in the seed while the processors remain statistically independent.
package core

import (
	"fmt"
)

// EvenBlocks returns block sizes for n items over p processors, as equal
// as possible (the first n mod p blocks get one extra item). This is the
// symmetric M = n/p layout the paper's parallel algorithms are stated
// for; all code also accepts ragged layouts.
func EvenBlocks(n int64, p int) []int64 {
	if p <= 0 || n < 0 {
		panic("core: EvenBlocks needs p > 0 and n >= 0")
	}
	sizes := make([]int64, p)
	base := n / int64(p)
	rem := n % int64(p)
	for i := range sizes {
		sizes[i] = base
		if int64(i) < rem {
			sizes[i]++
		}
	}
	return sizes
}

// BlockSizes returns the sizes of the given blocks as an int64 vector
// (the m_i of the paper).
func BlockSizes[T any](blocks [][]T) []int64 {
	sizes := make([]int64, len(blocks))
	for i, b := range blocks {
		sizes[i] = int64(len(b))
	}
	return sizes
}

// Flatten concatenates blocks into one slice, in block order.
func Flatten[T any](blocks [][]T) []T {
	var n int
	for _, b := range blocks {
		n += len(b)
	}
	out := make([]T, 0, n)
	for _, b := range blocks {
		out = append(out, b...)
	}
	return out
}

// Split cuts data into consecutive blocks of the given sizes. The blocks
// alias the input slice.
func Split[T any](data []T, sizes []int64) ([][]T, error) {
	var total int64
	for _, s := range sizes {
		if s < 0 {
			return nil, fmt.Errorf("core: negative block size %d", s)
		}
		total += s
	}
	if total != int64(len(data)) {
		return nil, fmt.Errorf("core: block sizes sum to %d, data has %d items", total, len(data))
	}
	blocks := make([][]T, len(sizes))
	off := int64(0)
	for i, s := range sizes {
		blocks[i] = data[off : off+s]
		off += s
	}
	return blocks, nil
}

// checkPermuteArgs validates an Algorithm 1 invocation: one input block
// per processor and target sizes with the same total.
func checkPermuteArgs(p int, rowM, colM []int64) error {
	if len(rowM) != p {
		return fmt.Errorf("core: %d input blocks for %d processors", len(rowM), p)
	}
	if len(colM) != p {
		return fmt.Errorf("core: %d target blocks for %d processors", len(colM), p)
	}
	var rn, cn int64
	for _, v := range rowM {
		if v < 0 {
			return fmt.Errorf("core: negative source block size %d", v)
		}
		rn += v
	}
	for _, v := range colM {
		if v < 0 {
			return fmt.Errorf("core: negative target block size %d", v)
		}
		cn += v
	}
	if rn != cn {
		return fmt.Errorf("core: source total %d != target total %d", rn, cn)
	}
	return nil
}
