package core

import (
	"randperm/internal/engine"
	"randperm/internal/pro"
	"randperm/internal/xrand"
)

// Config bundles the knobs of Algorithm 1.
type Config struct {
	// Seed drives all randomness; every processor derives its own
	// jump-separated stream from it, so results are reproducible.
	Seed uint64
	// Matrix selects the communication-matrix sampling strategy.
	Matrix MatrixAlg
}

// Permute runs the paper's Algorithm 1 on a fresh machine with one
// processor per input block: every global permutation of the items is
// equally likely, the total work is O(n), and no processor handles more
// than O(max block) items. It returns the permuted blocks (sized
// according to outSizes) and the machine, whose cost report documents the
// resource bounds of Theorem 1.
//
// The input blocks are not modified.
func Permute[T any](in [][]T, outSizes []int64, cfg Config) ([][]T, *pro.Machine, error) {
	p := len(in)
	m := pro.NewMachine(p)
	out, err := PermuteOn(m.Engine(), in, outSizes, cfg)
	return out, m, err
}

// PermuteOn is Permute on a caller-provided engine, so the algorithm is
// written once against the engine.Worker interface and runs on any SPMD
// backend: the simulated machine (pro.(*Machine).Engine(), which keeps
// the cost accounting and can accumulate it across repeated shuffles) or
// any other implementation. The engine must have exactly len(in)
// workers.
func PermuteOn[T any](eng engine.Engine, in [][]T, outSizes []int64, cfg Config) ([][]T, error) {
	p := eng.P()
	rowM := BlockSizes(in)
	if err := checkPermuteArgs(p, rowM, outSizes); err != nil {
		return nil, err
	}
	streams := xrand.NewStreams(cfg.Seed, p)
	out := make([][]T, p)

	err := eng.Run(func(pr engine.Worker) {
		rank := pr.Rank()
		cnt := xrand.NewCounting(streams[rank])
		charge := func() {
			pr.AddDraws(int64(cnt.Count()))
			cnt.Reset()
		}

		// Phase 1: local random permutation of the source block.
		// Work on a copy so the caller's data survives.
		local := append([]T(nil), in[rank]...)
		xrand.Shuffle(cnt, local)
		pr.AddOps(int64(len(local)))
		charge()
		pr.Barrier()

		// Phase 2: sample this processor's row of the
		// communication matrix (equations 2 and 3 of the paper).
		row := SampleRow(pr, cnt, rowM, outSizes, cfg.Matrix)
		charge()
		pr.Barrier()

		// Phase 3: the all-to-all exchange. Because the block was
		// just permuted uniformly, sending the first row[0] items
		// to target 0, the next row[1] to target 1 and so on picks
		// uniformly random subsets, as Algorithm 1 requires.
		sendSlices := make([][]T, p)
		off := int64(0)
		for j := 0; j < p; j++ {
			sendSlices[j] = local[off : off+row[j]]
			off += row[j]
		}
		recvSlices := pro.AllToAll(pr, sendSlices)
		buf := make([]T, 0, outSizes[rank])
		for _, s := range recvSlices {
			buf = append(buf, s...)
		}
		pr.AddOps(int64(len(local) + len(buf)))
		pr.Barrier()

		// Phase 4: local random permutation of the received block,
		// mixing the contributions of all sources.
		xrand.Shuffle(cnt, buf)
		pr.AddOps(int64(len(buf)))
		charge()
		out[rank] = buf
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PermuteSlice is the convenience form of Permute for a single flat
// slice: the data is cut into p even blocks, permuted, and re-flattened.
// It returns a new slice; the input is not modified.
func PermuteSlice[T any](data []T, p int, cfg Config) ([]T, *pro.Machine, error) {
	sizes := EvenBlocks(int64(len(data)), p)
	blocks, err := Split(data, sizes)
	if err != nil {
		return nil, nil, err
	}
	out, m, err := Permute(blocks, sizes, cfg)
	if err != nil {
		return nil, nil, err
	}
	return Flatten(out), m, nil
}
