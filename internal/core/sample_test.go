package core

import (
	"math"
	"testing"
	"testing/quick"

	"randperm/internal/hyper"
	"randperm/internal/stats"
)

func TestSampleKBasics(t *testing.T) {
	n := int64(1000)
	for _, alg := range []MatrixAlg{MatrixSeq, MatrixLog, MatrixOpt} {
		for _, p := range []int{1, 2, 5, 8} {
			for _, k := range []int64{0, 1, 100, 999, 1000} {
				blocks, err := Split(Iota(n), EvenBlocks(n, p))
				if err != nil {
					t.Fatal(err)
				}
				sub, _, err := SampleK(blocks, k, Config{Seed: 3, Matrix: alg})
				if err != nil {
					t.Fatalf("alg=%v p=%d k=%d: %v", alg, p, k, err)
				}
				flat := Flatten(sub)
				if int64(len(flat)) != k {
					t.Fatalf("alg=%v p=%d k=%d: got %d items", alg, p, k, len(flat))
				}
				seen := make(map[int64]bool)
				for _, v := range flat {
					if v < 0 || v >= n || seen[v] {
						t.Fatalf("alg=%v p=%d k=%d: invalid item %d", alg, p, k, v)
					}
					seen[v] = true
				}
				// Per-block subsets must come from that block.
				sizes := EvenBlocks(n, p)
				off := int64(0)
				for i, s := range sub {
					for _, v := range s {
						if v < off || v >= off+sizes[i] {
							t.Fatalf("item %d leaked across blocks", v)
						}
					}
					off += sizes[i]
				}
			}
		}
	}
}

func TestSampleKErrors(t *testing.T) {
	blocks := [][]int64{{1, 2}, {3}}
	if _, _, err := SampleK(blocks, 4, Config{}); err == nil {
		t.Fatal("k > n accepted")
	}
	if _, _, err := SampleK(blocks, -1, Config{}); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, _, err := SampleK([][]int64{}, 0, Config{}); err == nil {
		t.Fatal("empty machine accepted")
	}
}

func TestSampleKProperty(t *testing.T) {
	f := func(n16 uint16, p8, k8 uint8) bool {
		n := int64(n16%2000) + 1
		p := int(p8%8) + 1
		k := int64(k8) % (n + 1)
		blocks, err := Split(Iota(n), EvenBlocks(n, p))
		if err != nil {
			return false
		}
		sub, _, err := SampleK(blocks, k, Config{Seed: uint64(n16) + 7, Matrix: MatrixOpt})
		if err != nil {
			return false
		}
		return int64(len(Flatten(sub))) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleKCountDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	// The count taken from block 0 must follow h(k, m_0, n - m_0).
	n := int64(30)
	k := int64(10)
	sizes := []int64{8, 12, 10}
	d := hyper.Dist{T: k, W: sizes[0], B: n - sizes[0]}
	lo, hi := d.SupportMin(), d.SupportMax()
	const trials = 8000
	counts := make([]int64, hi-lo+1)
	for tr := 0; tr < trials; tr++ {
		blocks, err := Split(Iota(n), sizes)
		if err != nil {
			t.Fatal(err)
		}
		sub, _, err := SampleK(blocks, k, Config{Seed: uint64(tr)*2654435761 + 5, Matrix: MatrixOpt})
		if err != nil {
			t.Fatal(err)
		}
		counts[int64(len(sub[0]))-lo]++
	}
	probs := make([]float64, hi-lo+1)
	for j := lo; j <= hi; j++ {
		probs[j-lo] = d.PMF(j)
	}
	res, err := stats.ChiSquareBinned(counts, probs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reject(0.001) {
		t.Errorf("block count distribution mismatch: %s", res)
	}
}

func TestSampleKUniformOverSubsets(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	// Exhaustive: all C(8,3) = 56 subsets equally likely, across
	// matrix algorithms and a ragged layout.
	n := int64(8)
	k := int64(3)
	total := stats.Binomial(int(n), int(k))
	for _, alg := range []MatrixAlg{MatrixSeq, MatrixOpt} {
		const trials = 28000
		counts := make([]int64, total)
		for tr := 0; tr < trials; tr++ {
			blocks, err := Split(Iota(n), []int64{3, 1, 4})
			if err != nil {
				t.Fatal(err)
			}
			sub, _, err := SampleK(blocks, k, Config{
				Seed:   uint64(tr)*0x9E3779B97F4A7C15 + uint64(alg) + 13,
				Matrix: alg,
			})
			if err != nil {
				t.Fatal(err)
			}
			counts[stats.RankCombInt64(Flatten(sub), int(n))]++
		}
		res, err := stats.ChiSquareUniform(counts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject(0.0005) {
			t.Errorf("alg=%v: subset sampling non-uniform: %s", alg, res)
		}
	}
}

func TestSampleKDoesNotMutateInput(t *testing.T) {
	n := int64(100)
	blocks, _ := Split(Iota(n), EvenBlocks(n, 4))
	snapshot := Flatten(blocks)
	if _, _, err := SampleK(blocks, 37, Config{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	for i, v := range Flatten(blocks) {
		if v != snapshot[i] {
			t.Fatal("SampleK mutated its input")
		}
	}
}

func TestSampleKSlice(t *testing.T) {
	sample, m, err := SampleKSlice(Iota(500), 50, 5, Config{Seed: 9, Matrix: MatrixLog})
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) != 50 {
		t.Fatalf("sample size %d", len(sample))
	}
	rep := m.Report()
	if rep.MaxOps() == 0 || rep.MaxDraws() == 0 {
		t.Fatal("cost accounting missing")
	}
	// Balance: the sampling work is O(m) per processor.
	if rep.MaxOps() > 4*(500/5+50) {
		t.Fatalf("per-proc ops %d too high", rep.MaxOps())
	}
}

func TestSampleKMeanFraction(t *testing.T) {
	// Law of large numbers check at a size too big for exhaustive
	// ranking: the sample mean of the chosen values must approximate
	// the population mean.
	n := int64(100000)
	k := int64(20000)
	sample, _, err := SampleKSlice(Iota(n), k, 8, Config{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range sample {
		sum += float64(v)
	}
	mean := sum / float64(k)
	want := float64(n-1) / 2
	sd := float64(n) / math.Sqrt(12*float64(k))
	if math.Abs(mean-want) > 6*sd {
		t.Fatalf("sample mean %.1f far from population mean %.1f", mean, want)
	}
}
