package core

import (
	"testing"
	"testing/quick"
)

func TestEvenBlocks(t *testing.T) {
	cases := []struct {
		n    int64
		p    int
		want []int64
	}{
		{10, 2, []int64{5, 5}},
		{10, 3, []int64{4, 3, 3}},
		{2, 4, []int64{1, 1, 0, 0}},
		{0, 3, []int64{0, 0, 0}},
	}
	for _, c := range cases {
		got := EvenBlocks(c.n, c.p)
		if len(got) != len(c.want) {
			t.Fatalf("EvenBlocks(%d,%d) = %v", c.n, c.p, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("EvenBlocks(%d,%d) = %v, want %v", c.n, c.p, got, c.want)
			}
		}
	}
}

func TestEvenBlocksProperty(t *testing.T) {
	f := func(n16 uint16, p8 uint8) bool {
		n := int64(n16)
		p := int(p8%64) + 1
		sizes := EvenBlocks(n, p)
		var total int64
		for i, s := range sizes {
			total += s
			// Sizes differ by at most one, non-increasing.
			if i > 0 && (sizes[i-1]-s > 1 || sizes[i-1] < s) {
				return false
			}
		}
		return total == n && len(sizes) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvenBlocksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=0 did not panic")
		}
	}()
	EvenBlocks(10, 0)
}

func TestSplitFlattenRoundtrip(t *testing.T) {
	f := func(n16 uint16, p8 uint8) bool {
		n := int64(n16 % 5000)
		p := int(p8%16) + 1
		data := Iota(n)
		blocks, err := Split(data, EvenBlocks(n, p))
		if err != nil {
			return false
		}
		flat := Flatten(blocks)
		if int64(len(flat)) != n {
			return false
		}
		for i, v := range flat {
			if v != int64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitErrors(t *testing.T) {
	if _, err := Split(Iota(5), []int64{2, 2}); err == nil {
		t.Fatal("mismatched split accepted")
	}
	if _, err := Split(Iota(5), []int64{-1, 6}); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestBlockSizes(t *testing.T) {
	blocks := [][]int64{{1, 2}, {}, {3, 4, 5}}
	got := BlockSizes(blocks)
	want := []int64{2, 0, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BlockSizes = %v", got)
		}
	}
}

func TestCheckPermutation(t *testing.T) {
	in := [][]int64{{1, 2, 3}, {4, 5}}
	good := [][]int64{{5, 1}, {3, 2, 4}}
	if err := CheckPermutation(in, good, []int64{2, 3}); err != nil {
		t.Fatalf("valid permutation rejected: %v", err)
	}
	if err := CheckPermutation(in, good, []int64{3, 2}); err == nil {
		t.Fatal("wrong sizes accepted")
	}
	dup := [][]int64{{1, 1}, {3, 2, 4}}
	if err := CheckPermutation(in, dup, []int64{2, 3}); err == nil {
		t.Fatal("duplicate accepted")
	}
	short := [][]int64{{5, 1}, {3, 2}}
	if err := CheckPermutation(in, short, []int64{2, 2}); err == nil {
		t.Fatal("missing item accepted")
	}
}

func TestParseMatrixAlg(t *testing.T) {
	for _, s := range []string{"seq", "log", "opt"} {
		a, err := ParseMatrixAlg(s)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != s {
			t.Fatalf("roundtrip %q -> %q", s, a.String())
		}
	}
	if _, err := ParseMatrixAlg("nope"); err == nil {
		t.Fatal("bad name accepted")
	}
}

func TestPermuteProducesPermutation(t *testing.T) {
	for _, alg := range []MatrixAlg{MatrixSeq, MatrixLog, MatrixOpt} {
		for _, p := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16} {
			n := int64(997) // prime: exercises ragged even blocks
			data := Iota(n)
			sizes := EvenBlocks(n, p)
			blocks, err := Split(data, sizes)
			if err != nil {
				t.Fatal(err)
			}
			out, _, err := Permute(blocks, sizes, Config{Seed: 42, Matrix: alg})
			if err != nil {
				t.Fatalf("alg=%v p=%d: %v", alg, p, err)
			}
			if err := CheckPermutation(blocks, out, sizes); err != nil {
				t.Fatalf("alg=%v p=%d: %v", alg, p, err)
			}
		}
	}
}

func TestPermuteRaggedAndReshaping(t *testing.T) {
	// Problem 1 in full generality: unequal input blocks redistributed
	// into *different* unequal output blocks.
	in := [][]int64{Iota(7), {100, 101}, {200, 201, 202, 203, 204}, {}}
	outSizes := []int64{1, 6, 3, 4}
	for _, alg := range []MatrixAlg{MatrixSeq, MatrixLog, MatrixOpt} {
		out, _, err := Permute(in, outSizes, Config{Seed: 7, Matrix: alg})
		if err != nil {
			t.Fatalf("alg=%v: %v", alg, err)
		}
		if err := CheckPermutation(in, out, outSizes); err != nil {
			t.Fatalf("alg=%v: %v", alg, err)
		}
	}
}

func TestPermuteRandomShapesProperty(t *testing.T) {
	// Fully random ragged input AND output layouts through every
	// matrix algorithm: output must always be a permutation with the
	// requested shape.
	f := func(rawIn, rawOut []uint8, algPick uint8) bool {
		if len(rawIn) == 0 || len(rawIn) > 6 || len(rawOut) == 0 {
			return true
		}
		inSizes := make([]int64, len(rawIn))
		var total int64
		for i, r := range rawIn {
			inSizes[i] = int64(r % 40)
			total += inSizes[i]
		}
		// Output layout: same processor count (Problem 1 with p'=p),
		// same total, sizes driven by rawOut.
		outSizes := make([]int64, len(rawIn))
		rem := total
		for i := range outSizes {
			if i == len(outSizes)-1 {
				outSizes[i] = rem
				break
			}
			pick := int64(0)
			if len(rawOut) > 0 {
				pick = int64(rawOut[i%len(rawOut)]) % (rem + 1)
			}
			outSizes[i] = pick
			rem -= pick
		}
		alg := []MatrixAlg{MatrixSeq, MatrixLog, MatrixOpt}[algPick%3]
		blocks, err := Split(Iota(total), inSizes)
		if err != nil {
			return false
		}
		out, _, err := Permute(blocks, outSizes, Config{
			Seed:   uint64(total)*31 + uint64(algPick),
			Matrix: alg,
		})
		if err != nil {
			return false
		}
		return CheckPermutation(blocks, out, outSizes) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteErrors(t *testing.T) {
	if _, _, err := Permute([][]int64{{1}, {2}}, []int64{1}, Config{}); err == nil {
		t.Fatal("wrong target count accepted")
	}
	if _, _, err := Permute([][]int64{{1}, {2}}, []int64{1, 2}, Config{}); err == nil {
		t.Fatal("mismatched totals accepted")
	}
	if _, _, err := Permute([][]int64{{1}, {2}}, []int64{-1, 3}, Config{}); err == nil {
		t.Fatal("negative target accepted")
	}
}

func TestPermuteDeterministic(t *testing.T) {
	data := Iota(1000)
	for _, alg := range []MatrixAlg{MatrixSeq, MatrixLog, MatrixOpt} {
		a, _, err := PermuteSlice(data, 4, Config{Seed: 99, Matrix: alg})
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := PermuteSlice(data, 4, Config{Seed: 99, Matrix: alg})
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("alg=%v: same seed diverged at %d", alg, i)
			}
		}
	}
}

func TestPermuteSeedsDiffer(t *testing.T) {
	data := Iota(1000)
	a, _, _ := PermuteSlice(data, 4, Config{Seed: 1})
	b, _, _ := PermuteSlice(data, 4, Config{Seed: 2})
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	// Two independent uniform permutations of 1000 items agree in ~1
	// position on average; 50 would be absurd.
	if same > 50 {
		t.Fatalf("different seeds produced nearly identical output (%d matches)", same)
	}
}

func TestPermuteDoesNotMutateInput(t *testing.T) {
	data := Iota(100)
	blocks, _ := Split(data, EvenBlocks(100, 4))
	snapshot := append([]int64(nil), data...)
	if _, _, err := Permute(blocks, EvenBlocks(100, 4), Config{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if data[i] != snapshot[i] {
			t.Fatal("Permute mutated its input")
		}
	}
}

func TestPermuteStringPayload(t *testing.T) {
	// Generic payloads: strings.
	in := [][]string{{"a", "b"}, {"c", "d", "e"}}
	sizes := []int64{2, 3}
	out, _, err := Permute(in, sizes, Config{Seed: 3, Matrix: MatrixOpt})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPermutation(in, out, sizes); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteBalanceExact(t *testing.T) {
	// The balance criterion: output block sizes are exactly the target
	// sizes, and per-processor ops stay within a constant factor of
	// the block size.
	n := int64(1 << 16)
	p := 8
	sizes := EvenBlocks(n, p)
	blocks, _ := Split(Iota(n), sizes)
	out, m, err := Permute(blocks, sizes, Config{Seed: 11, Matrix: MatrixOpt})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range out {
		if int64(len(b)) != sizes[i] {
			t.Fatalf("block %d has %d items, want %d", i, len(b), sizes[i])
		}
	}
	rep := m.Report()
	blockM := n / int64(p)
	if rep.MaxOps() > 8*blockM {
		t.Fatalf("max ops/proc %d exceeds 8x block size %d", rep.MaxOps(), blockM)
	}
	if rep.MaxDraws() > 4*blockM {
		t.Fatalf("max draws/proc %d exceeds 4x block size %d", rep.MaxDraws(), blockM)
	}
}

func TestAlg1CommunicationBalanced(t *testing.T) {
	// Proposition 1: with the margins under control, the communication
	// phase stays balanced - no processor sends or receives more than
	// O(m) bytes.
	n := int64(1 << 16)
	p := 8
	sizes := EvenBlocks(n, p)
	blocks, _ := Split(Iota(n), sizes)
	_, m, err := Permute(blocks, sizes, Config{Seed: 23, Matrix: MatrixOpt})
	if err != nil {
		t.Fatal(err)
	}
	blockBytes := (n / int64(p)) * 8
	for rank := 0; rank < p; rank++ {
		tot := m.Cost(rank).Totals()
		if tot.BytesOut > 2*blockBytes {
			t.Fatalf("rank %d sent %d bytes for a %d-byte block", rank, tot.BytesOut, blockBytes)
		}
		if tot.BytesIn > 2*blockBytes {
			t.Fatalf("rank %d received %d bytes for a %d-byte block", rank, tot.BytesIn, blockBytes)
		}
	}
}

func TestPermuteWorkOptimalScaling(t *testing.T) {
	// Work-optimality: doubling n roughly doubles total ops (constant
	// factor stays bounded); growing p at fixed n does not grow total
	// ops by more than the p^2 matrix term.
	totalOps := func(n int64, p int) int64 {
		sizes := EvenBlocks(n, p)
		blocks, _ := Split(Iota(n), sizes)
		_, m, err := Permute(blocks, sizes, Config{Seed: 17, Matrix: MatrixOpt})
		if err != nil {
			t.Fatal(err)
		}
		return m.Report().TotalOps()
	}
	o1 := totalOps(1<<14, 4)
	o2 := totalOps(1<<15, 4)
	ratio := float64(o2) / float64(o1)
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("doubling n scaled ops by %.2f, want ~2", ratio)
	}
}
