package core

import (
	"math"
	"testing"

	"randperm/internal/commat"
	"randperm/internal/hyper"
)

func TestSampleRowsMarginsAllAlgs(t *testing.T) {
	for _, alg := range []MatrixAlg{MatrixSeq, MatrixLog, MatrixOpt} {
		for _, p := range []int{1, 2, 3, 4, 6, 8, 12, 16, 31, 32} {
			rowM := EvenBlocks(int64(p)*257, p)
			colM := EvenBlocks(int64(p)*257, p)
			m, _, err := SampleRows(p, 9+uint64(p), rowM, colM, alg)
			if err != nil {
				t.Fatalf("alg=%v p=%d: %v", alg, p, err)
			}
			if err := m.CheckMargins(rowM, colM); err != nil {
				t.Fatalf("alg=%v p=%d: %v", alg, p, err)
			}
		}
	}
}

func TestSampleRowsRaggedMargins(t *testing.T) {
	rowM := []int64{100, 0, 50, 250, 1, 99}
	colM := []int64{250, 250, 0, 0, 0, 0}
	for _, alg := range []MatrixAlg{MatrixSeq, MatrixLog, MatrixOpt} {
		m, _, err := SampleRows(6, 13, rowM, colM, alg)
		if err != nil {
			t.Fatalf("alg=%v: %v", alg, err)
		}
		if err := m.CheckMargins(rowM, colM); err != nil {
			t.Fatalf("alg=%v: %v", alg, err)
		}
	}
}

func TestSampleRowsWrongShape(t *testing.T) {
	if _, _, err := SampleRows(3, 1, []int64{1, 2}, []int64{1, 2}, MatrixOpt); err == nil {
		t.Fatal("row margin count != p accepted")
	}
}

// TestParallelEntryDistribution checks Proposition 3 on the parallel
// samplers: entry a_00 must follow h(m'_0, m_0, n-m_0).
func TestParallelEntryDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	const p = 5
	rowM := []int64{6, 4, 8, 2, 10}
	colM := []int64{7, 7, 6, 5, 5}
	n := int64(30)
	d := hyper.Dist{T: colM[0], W: rowM[0], B: n - rowM[0]}
	lo, hi := d.SupportMin(), d.SupportMax()

	for _, alg := range []MatrixAlg{MatrixLog, MatrixOpt} {
		const trials = 8000
		counts := make([]int64, hi-lo+1)
		for tr := 0; tr < trials; tr++ {
			m, _, err := SampleRows(p, uint64(tr)*2654435761+1, rowM, colM, alg)
			if err != nil {
				t.Fatal(err)
			}
			counts[m.At(0, 0)-lo]++
		}
		stat := 0.0
		cells := 0
		for k := lo; k <= hi; k++ {
			exp := d.PMF(k) * trials
			if exp < 5 {
				continue
			}
			diff := float64(counts[k-lo]) - exp
			stat += diff * diff / exp
			cells++
		}
		df := float64(cells - 1)
		z := 3.09
		limit := df * math.Pow(1-2/(9*df)+z*math.Sqrt(2/(9*df)), 3)
		if stat > limit {
			t.Errorf("alg=%v: entry distribution chi2 = %.1f > %.1f", alg, stat, limit)
		}
	}
}

// TestParallelMatchesSequentialLaw compares the full matrix distribution
// of the parallel algorithms against the exact law on a tiny instance.
func TestParallelMatchesSequentialLaw(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	const p = 3
	rowM := []int64{2, 2, 2}
	colM := []int64{2, 2, 2}
	probs := make(map[string]float64)
	commat.Enumerate(rowM, colM, func(m *commat.Matrix) bool {
		probs[m.String()] = commat.Prob(m, rowM, colM)
		return true
	})
	for _, alg := range []MatrixAlg{MatrixLog, MatrixOpt} {
		const trials = 20000
		counts := make(map[string]int64)
		for tr := 0; tr < trials; tr++ {
			m, _, err := SampleRows(p, uint64(tr)*6364136223846793005+3, rowM, colM, alg)
			if err != nil {
				t.Fatal(err)
			}
			key := m.String()
			if _, ok := probs[key]; !ok {
				t.Fatalf("alg=%v sampled an impossible matrix:\n%s", alg, key)
			}
			counts[key]++
		}
		stat := 0.0
		cells := 0
		for key, pr := range probs {
			exp := pr * trials
			if exp < 5 {
				continue
			}
			diff := float64(counts[key]) - exp
			stat += diff * diff / exp
			cells++
		}
		df := float64(cells - 1)
		z := 3.09
		limit := df * math.Pow(1-2/(9*df)+z*math.Sqrt(2/(9*df)), 3)
		if stat > limit {
			t.Errorf("alg=%v: matrix law chi2 = %.1f > %.1f (df %.0f)", alg, stat, limit, df)
		}
	}
}

// TestParallelNonSquareLaw checks the parallel samplers on a p x p'
// problem with p' != p against the exact law (the general Problem 2).
func TestParallelNonSquareLaw(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	const p = 4
	rowM := []int64{2, 1, 2, 1}
	colM := []int64{4, 2} // p' = 2
	probs := make(map[string]float64)
	commat.Enumerate(rowM, colM, func(m *commat.Matrix) bool {
		probs[m.String()] = commat.Prob(m, rowM, colM)
		return true
	})
	for _, alg := range []MatrixAlg{MatrixLog, MatrixOpt} {
		const trials = 20000
		counts := make(map[string]int64)
		for tr := 0; tr < trials; tr++ {
			m, _, err := SampleRows(p, uint64(tr)*0x9E3779B97F4A7C15+2, rowM, colM, alg)
			if err != nil {
				t.Fatal(err)
			}
			key := m.String()
			if _, ok := probs[key]; !ok {
				t.Fatalf("alg=%v: impossible matrix\n%s", alg, key)
			}
			counts[key]++
		}
		stat := 0.0
		cells := 0
		for key, pr := range probs {
			exp := pr * trials
			if exp < 5 {
				continue
			}
			diff := float64(counts[key]) - exp
			stat += diff * diff / exp
			cells++
		}
		df := float64(cells - 1)
		z := 3.09
		limit := df * math.Pow(1-2/(9*df)+z*math.Sqrt(2/(9*df)), 3)
		if stat > limit {
			t.Errorf("alg=%v non-square law: chi2 %.1f > %.1f (df %.0f)", alg, stat, limit, df)
		}
	}
}

// TestOptResourceBounds verifies the Theta(p) per-processor bound of
// Algorithm 6 against the Theta(p log p) of Algorithm 5, using counted
// operations rather than wall time.
func TestOptResourceBounds(t *testing.T) {
	perProcOps := func(p int, alg MatrixAlg) int64 {
		margins := EvenBlocks(int64(p)*1024, p)
		_, m, err := SampleRows(p, 21, margins, margins, alg)
		if err != nil {
			t.Fatal(err)
		}
		return m.Report().MaxOps()
	}
	// Growth from p=32 to p=128 (factor 4): Alg6 should grow ~4x,
	// Alg5 ~4*log(128)/log(32) = 5.6x, seq-at-root 16x. Allow slack.
	for _, alg := range []MatrixAlg{MatrixLog, MatrixOpt} {
		small := perProcOps(32, alg)
		big := perProcOps(128, alg)
		growth := float64(big) / float64(small)
		var maxGrowth float64
		switch alg {
		case MatrixOpt:
			maxGrowth = 6 // Theta(p): ~4, generous slack
		case MatrixLog:
			maxGrowth = 8.5 // Theta(p log p): ~5.6
		}
		if growth > maxGrowth {
			t.Errorf("alg=%v per-proc ops grew %.1fx from p=32 to p=128 (limit %.1f)",
				alg, growth, maxGrowth)
		}
	}
	// Algorithm 6 must beat Algorithm 5 per processor at scale.
	if o6, o5 := perProcOps(128, MatrixOpt), perProcOps(128, MatrixLog); o6 >= o5 {
		t.Errorf("Alg6 per-proc ops (%d) not below Alg5 (%d) at p=128", o6, o5)
	}
}

func TestSampleRowsDeterministic(t *testing.T) {
	margins := EvenBlocks(4096, 8)
	for _, alg := range []MatrixAlg{MatrixSeq, MatrixLog, MatrixOpt} {
		a, _, err := SampleRows(8, 77, margins, margins, alg)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := SampleRows(8, 77, margins, margins, alg)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("alg=%v: same seed produced different matrices", alg)
		}
	}
}
