package core

import (
	"fmt"

	"randperm/internal/pro"
	"randperm/internal/xrand"
)

// SampleK draws a uniformly random k-subset of the distributed items -
// the paper's second motivation ("good generation of random samples to
// test algorithms") solved with the same machinery as the permutation:
// the per-block sample counts are exactly the first column of a
// communication matrix with target margins (k, n-k), so they are sampled
// with the configured matrix algorithm (every processor learns only its
// own count, preserving the Theta(p) bounds), and each processor then
// picks that many local items by a partial Fisher-Yates pass.
//
// The result holds each processor's chosen items (sub[i] drawn from
// blocks[i]); concatenated, they are a uniform k-subset: every one of
// the C(n, k) subsets is equally likely. Input blocks are not modified.
// Work is O(m) per processor plus the matrix term, randomness O(1) draws
// per selected item.
func SampleK[T any](blocks [][]T, k int64, cfg Config) ([][]T, *pro.Machine, error) {
	p := len(blocks)
	if p == 0 {
		return nil, nil, fmt.Errorf("core: SampleK needs at least one block")
	}
	rowM := BlockSizes(blocks)
	var n int64
	for _, m := range rowM {
		n += m
	}
	if k < 0 || k > n {
		return nil, nil, fmt.Errorf("core: sample size %d outside [0, %d]", k, n)
	}

	m := pro.NewMachine(p)
	streams := xrand.NewStreams(cfg.Seed, p)
	out := make([][]T, p)
	colM := []int64{k, n - k}

	err := m.Run(func(pr *pro.Proc) {
		rank := pr.Rank()
		cnt := xrand.NewCounting(streams[rank])

		// Column 0 of the (p x 2) communication matrix: how many of
		// this block's items belong to the sample.
		row := SampleRow(pr, cnt, rowM, colM, cfg.Matrix)
		take := row[0]
		pr.Barrier()

		// Partial Fisher-Yates: after i swaps the prefix holds a
		// uniform i-subset in uniform order.
		local := append([]T(nil), blocks[rank]...)
		for i := int64(0); i < take; i++ {
			j := i + xrand.Int64n(cnt, int64(len(local))-i)
			local[i], local[j] = local[j], local[i]
		}
		out[rank] = local[:take:take]
		pr.AddOps(take + int64(len(local)))
		pr.AddDraws(int64(cnt.Count()))
	})
	if err != nil {
		return nil, nil, err
	}
	return out, m, nil
}

// SampleKSlice is SampleK for a flat slice cut into p even blocks,
// returning the flat sample.
func SampleKSlice[T any](data []T, k int64, p int, cfg Config) ([]T, *pro.Machine, error) {
	blocks, err := Split(data, EvenBlocks(int64(len(data)), p))
	if err != nil {
		return nil, nil, err
	}
	sub, m, err := SampleK(blocks, k, cfg)
	if err != nil {
		return nil, nil, err
	}
	return Flatten(sub), m, nil
}
