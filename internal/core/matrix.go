package core

import (
	"fmt"

	"randperm/internal/commat"
	"randperm/internal/engine"
	"randperm/internal/mhyper"
	"randperm/internal/pro"
	"randperm/internal/xrand"
)

// MatrixAlg selects how Algorithm 1 obtains the communication matrix.
type MatrixAlg int

const (
	// MatrixSeq samples the whole matrix at processor 0 with the
	// sequential Algorithm 3 and scatters the rows: O(p*p') work and
	// memory concentrated at the root. Simple, but not balanced.
	MatrixSeq MatrixAlg = iota
	// MatrixLog is the paper's Algorithm 5: recursive halving where the
	// head of each processor range samples the split. Theta(p log p)
	// time, communication and samples per processor.
	MatrixLog
	// MatrixOpt is the paper's cost-optimal Algorithm 6: ranges halve
	// alternately along both matrix dimensions, each processor ends
	// with an O(p)-entry submatrix it samples locally, then rows are
	// redistributed. Theta(p) per processor, Theta(p^2) total.
	MatrixOpt
)

// String names the algorithm for tables and flags.
func (a MatrixAlg) String() string {
	switch a {
	case MatrixSeq:
		return "seq"
	case MatrixLog:
		return "log"
	case MatrixOpt:
		return "opt"
	default:
		return fmt.Sprintf("MatrixAlg(%d)", int(a))
	}
}

// ParseMatrixAlg converts a flag value into a MatrixAlg.
func ParseMatrixAlg(s string) (MatrixAlg, error) {
	switch s {
	case "seq":
		return MatrixSeq, nil
	case "log":
		return MatrixLog, nil
	case "opt":
		return MatrixOpt, nil
	}
	return 0, fmt.Errorf("core: unknown matrix algorithm %q (want seq, log or opt)", s)
}

// SampleRow runs the selected matrix sampling algorithm on the calling
// processor and returns this processor's row of the communication matrix:
// row[j] items travel from block Rank() to target block j. Every
// processor of the machine must call SampleRow with identical arguments.
//
// rowM must have length P (one source block per processor); colM may have
// any length (the number of target blocks p').
func SampleRow(pr engine.Worker, rng xrand.Source, rowM, colM []int64, alg MatrixAlg) []int64 {
	switch alg {
	case MatrixSeq:
		return sampleRowSeq(pr, rng, rowM, colM)
	case MatrixLog:
		return sampleRowLog(pr, rng, rowM, colM)
	case MatrixOpt:
		return sampleRowOpt(pr, rng, rowM, colM)
	default:
		panic(fmt.Sprintf("core: unknown matrix algorithm %v", alg))
	}
}

// sampleRowSeq concentrates Algorithm 3 at processor 0 and scatters rows.
func sampleRowSeq(pr engine.Worker, rng xrand.Source, rowM, colM []int64) []int64 {
	if pr.Rank() == 0 {
		m := commat.SampleSeq(rng, rowM, colM)
		pr.AddOps(int64(len(rowM) * len(colM)))
		rows := make([][]int64, pr.P())
		for i := range rows {
			rows[i] = append([]int64(nil), m.Row(i)...)
		}
		return pro.Scatter(pr, 0, rows)
	}
	return pro.Scatter[[]int64](pr, 0, nil)
}

// sampleRowLog is the paper's Algorithm 5. The processor range [r, s) is
// halved every round; the head processor P_r of each range holds the
// column-capacity vector beta of its range, samples the multivariate
// hypergeometric split for the upper half and ships it to the upper
// half's new head P_q. After log p rounds every range is a single
// processor and beta is its matrix row.
func sampleRowLog(pr engine.Worker, rng xrand.Source, rowM, colM []int64) []int64 {
	rank := pr.Rank()
	var beta []int64
	if rank == 0 {
		beta = append([]int64(nil), colM...)
	}
	r, s := 0, pr.P()
	for s-r > 1 {
		q := (r + s) / 2
		switch rank {
		case r:
			var t int64 // mass of the upper half's rows
			for i := q; i < s; i++ {
				t += rowM[i]
			}
			toUp := mhyper.Sample(rng, t, beta)
			for j := range beta {
				beta[j] -= toUp[j]
			}
			pr.AddOps(int64(2 * len(beta)))
			pr.Send(q, toUp) // ownership of toUp transfers to P_q
		case q:
			beta = pr.Recv(r).([]int64)
			pr.AddOps(int64(len(beta)))
		}
		if rank >= q {
			r = q
		} else {
			s = q
		}
	}
	return beta
}

// rowSeg is a fragment of one matrix row produced by the submatrix
// redistribution of Algorithm 6.
type rowSeg struct {
	colStart int
	vals     []int64
}

// SizeBytes implements pro.Sized for faithful byte accounting.
func (r rowSeg) SizeBytes() int { return 8 + 8*len(r.vals) }

// sampleRowOpt is the paper's cost-optimal Algorithm 6. Processor ranges
// halve as in Algorithm 5, but the split alternates between the row
// dimension and the column dimension (the paper's Delta/Nabla), so the
// per-head vectors shrink geometrically. After the loop each processor
// owns the margins of a disjoint submatrix with O(p) entries (equation 9
// of the paper), samples it sequentially with Algorithm 3, and the rows
// are redistributed so processor i ends with global row i.
func sampleRowOpt(pr engine.Worker, rng xrand.Source, rowM, colM []int64) []int64 {
	rank, p := pr.Rank(), pr.P()
	pp := len(colM)

	// Margin storage for both dimensions, globally indexed; only
	// [lo[d], hi[d]) is meaningful on this processor.
	var dims [2][]int64
	if rank == 0 {
		dims[0] = append([]int64(nil), rowM...)
		dims[1] = append([]int64(nil), colM...)
	} else {
		dims[0] = make([]int64, p)
		dims[1] = make([]int64, pp)
	}
	lo := [2]int{0, 0}
	hi := [2]int{p, pp}

	r, s := 0, p
	delta, nabla := 0, 1 // dimension split this round / next round
	for s-r > 1 {
		q := (r + s) / 2
		qd := (lo[delta] + hi[delta]) / 2
		switch rank {
		case r:
			// Mass of the upper half of the delta margins: the
			// items the upper processor half is responsible for.
			var t int64
			for i := qd; i < hi[delta]; i++ {
				t += dims[delta][i]
			}
			// Ship the upper delta margins unchanged: whole
			// delta-slices belong to one side.
			upper := append([]int64(nil), dims[delta][qd:hi[delta]]...)
			pr.Send(q, upper)
			// Split the nabla margins between the halves.
			nslice := dims[nabla][lo[nabla]:hi[nabla]]
			toUp := mhyper.Sample(rng, t, nslice)
			for j := range nslice {
				nslice[j] -= toUp[j]
			}
			pr.AddOps(int64(len(upper) + 2*len(nslice)))
			pr.Send(q, toUp)
		case q:
			upper := pr.Recv(r).([]int64)
			copy(dims[delta][qd:hi[delta]], upper)
			toUp := pr.Recv(r).([]int64)
			copy(dims[nabla][lo[nabla]:hi[nabla]], toUp)
			pr.AddOps(int64(len(upper) + len(toUp)))
		}
		if rank >= q {
			r = q
			lo[delta] = qd
		} else {
			s = q
			hi[delta] = qd
		}
		delta, nabla = nabla, delta
	}

	// Step 3: sample the local submatrix sequentially.
	subRowM := dims[0][lo[0]:hi[0]]
	subColM := dims[1][lo[1]:hi[1]]
	sub := commat.SampleSeq(rng, subRowM, subColM)
	pr.AddOps(int64(len(subRowM) * len(subColM)))

	// Step 4: redistribute so processor i holds global row i. Row
	// indices coincide with processor ranks (one source block per
	// processor).
	for li := 0; li < sub.Rows(); li++ {
		gi := lo[0] + li
		pr.Send(gi, rowSeg{colStart: lo[1], vals: append([]int64(nil), sub.Row(li)...)})
	}
	row := make([]int64, pp)
	for covered := 0; covered < pp; {
		_, payload := pr.RecvAny()
		seg := payload.(rowSeg)
		copy(row[seg.colStart:seg.colStart+len(seg.vals)], seg.vals)
		covered += len(seg.vals)
	}
	pr.AddOps(int64(pp))
	return row
}

// SampleRows runs one of the parallel matrix sampling algorithms on a
// fresh machine and gathers the complete matrix, mainly for tests and the
// E4 experiment. The returned machine exposes the cost report.
func SampleRows(p int, seed uint64, rowM, colM []int64, alg MatrixAlg) (*commat.Matrix, *pro.Machine, error) {
	if len(rowM) != p {
		return nil, nil, fmt.Errorf("core: %d row margins for %d processors", len(rowM), p)
	}
	m := pro.NewMachine(p)
	streams := xrand.NewStreams(seed, p)
	out := commat.New(p, len(colM))
	err := m.Run(func(pr *pro.Proc) {
		cnt := xrand.NewCounting(streams[pr.Rank()])
		row := SampleRow(pr, cnt, rowM, colM, alg)
		pr.AddDraws(int64(cnt.Count()))
		copy(out.Row(pr.Rank()), row)
	})
	if err != nil {
		return nil, nil, err
	}
	return out, m, nil
}
