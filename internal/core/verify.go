package core

import "fmt"

// CheckPermutation verifies that out is a rearrangement of in: the same
// multiset of values, with block sizes matching wantSizes. It is the
// correctness oracle used by tests and examples.
func CheckPermutation[T comparable](in, out [][]T, wantSizes []int64) error {
	if len(out) != len(wantSizes) {
		return fmt.Errorf("core: %d output blocks, want %d", len(out), len(wantSizes))
	}
	for i, b := range out {
		if int64(len(b)) != wantSizes[i] {
			return fmt.Errorf("core: output block %d has %d items, want %d", i, len(b), wantSizes[i])
		}
	}
	counts := make(map[T]int64)
	var nIn, nOut int64
	for _, b := range in {
		for _, v := range b {
			counts[v]++
			nIn++
		}
	}
	for _, b := range out {
		for _, v := range b {
			counts[v]--
			nOut++
		}
	}
	if nIn != nOut {
		return fmt.Errorf("core: %d items in, %d items out", nIn, nOut)
	}
	for v, c := range counts {
		if c != 0 {
			return fmt.Errorf("core: multiset mismatch at value %v (delta %d)", v, c)
		}
	}
	return nil
}

// Iota returns the identity vector 0..n-1 as int64, the canonical test
// payload: after a permutation the multiset is still 0..n-1 and the
// arrangement encodes the permutation itself.
func Iota(n int64) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(i)
	}
	return v
}
