package randperm

import (
	"randperm/internal/commat"
	"randperm/internal/hyper"
	"randperm/internal/mhyper"
	"randperm/internal/seqperm"
	"randperm/internal/xrand"
)

// Source is a stream of uniform 64-bit random words, the randomness
// interface of every function in this package. NewSource returns the
// package's default generator; any user implementation (e.g. wrapping
// crypto/rand) can be substituted.
type Source interface {
	Uint64() uint64
}

// NewSource returns the package's default deterministic generator
// (xoshiro256++ seeded via SplitMix64). Distinct seeds give statistically
// independent streams.
func NewSource(seed uint64) Source {
	return xrand.NewXoshiro256(seed)
}

// Shuffle permutes x uniformly at random in place (Fisher-Yates): the
// sequential reference algorithm of the paper, O(n) time and n-1 bounded
// random draws.
func Shuffle[T any](src Source, x []T) {
	xrand.Shuffle(src, x)
}

// Perm returns a uniformly random permutation of {0..n-1}.
func Perm(src Source, n int) []int {
	return xrand.Perm(src, n)
}

// BlockShuffle permutes x uniformly in place with the cache-friendly
// two-pass variant from the paper's outlook (Section 6): the data is cut
// into chunks, an exact communication matrix is sampled, chunks are
// scattered with streaming writes and the buckets are shuffled
// recursively. Same distribution as Shuffle, different memory access
// pattern (experiment E8).
func BlockShuffle[T any](src Source, x []T) {
	seqperm.BlockShuffle(src, x, seqperm.BlockShuffleOptions{})
}

// Hypergeometric draws the number of white balls obtained when t balls
// are drawn without replacement from an urn of w white and b black balls.
// The sampler is exact and consumes O(1) raw random draws in expectation
// (Section 3 of the paper; experiment E2).
func Hypergeometric(src Source, t, w, b int64) int64 {
	return hyper.Sample(src, t, w, b)
}

// MultivariateHypergeometric draws the per-class counts of t balls drawn
// without replacement from classes of the given sizes (the paper's
// Algorithm 2). The result sums to t with 0 <= r[i] <= classes[i].
func MultivariateHypergeometric(src Source, t int64, classes []int64) []int64 {
	return mhyper.Sample(src, t, classes)
}

// CommMatrix samples a communication matrix with the given row sums
// (source block sizes) and column sums (target block sizes) from the
// exact distribution induced by a uniform random permutation (the
// paper's Algorithm 3, Problem 2). Entry [i][j] is the number of items
// block i sends to target block j.
func CommMatrix(src Source, rowSizes, colSizes []int64) [][]int64 {
	m := commat.SampleSeq(src, rowSizes, colSizes)
	out := make([][]int64, m.Rows())
	for i := range out {
		out[i] = append([]int64(nil), m.Row(i)...)
	}
	return out
}

// CommMatrixLogProb returns the natural log of the exact probability
// that a uniform random permutation induces the given communication
// matrix, or -Inf if the matrix violates the margins. Useful for
// goodness-of-fit testing of alternative samplers.
func CommMatrixLogProb(a [][]int64, rowSizes, colSizes []int64) float64 {
	m := commat.New(len(a), len(colSizes))
	for i, row := range a {
		copy(m.Row(i), row)
	}
	return commat.LogProb(m, rowSizes, colSizes)
}
