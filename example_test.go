package randperm_test

import (
	"fmt"

	"randperm"
)

// The simplest use: a sequential uniform shuffle.
func ExampleShuffle() {
	src := randperm.NewSource(1)
	x := []string{"a", "b", "c", "d", "e"}
	randperm.Shuffle(src, x)
	fmt.Println(len(x))
	// Output: 5
}

// The paper's parallel Algorithm 1: shuffle on simulated processors and
// inspect the resource report of Theorem 1.
func ExampleParallelShuffle() {
	data := make([]int64, 1000)
	for i := range data {
		data[i] = int64(i)
	}
	out, report, err := randperm.ParallelShuffle(data, randperm.Options{
		Procs: 4,
		Seed:  7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(out), report.Procs, report.Supersteps)
	// Output: 1000 4 4
}

// Selecting an execution backend: the same Algorithm 1 decomposition
// can run on the simulated PRO machine (full cost accounting), the
// shared-memory scatter engine, or the MergeShuffle-style in-place
// engine. All three are exactly uniform; only the Sim backend fills in
// the accounting fields of the Report.
func ExampleOptions_backend() {
	data := make([]int64, 1000)
	for i := range data {
		data[i] = int64(i)
	}
	for _, backend := range []randperm.Backend{
		randperm.BackendSim,
		randperm.BackendSharedMem,
		randperm.BackendInPlace,
	} {
		out, report, err := randperm.ParallelShuffle(data, randperm.Options{
			Procs:   4,
			Seed:    7,
			Backend: backend,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-7s n=%d procs=%d accounted=%v\n",
			backend, len(out), report.Procs, report.Supersteps > 0)
	}
	// Output:
	// sim     n=1000 procs=4 accounted=true
	// shmem   n=1000 procs=4 accounted=false
	// inplace n=1000 procs=4 accounted=false
}

// The cluster backend: BackendCluster computes the blocked
// coarse-grained decomposition whose geometry survives a network
// boundary — the permutation an N-node permd cluster serves
// cooperatively is byte-identical to this in-process run for the same
// (Seed, n, Procs). It is exactly uniform (unlike BackendBijective),
// so it passes the exactness gate, and it is the backend to pick when
// the same shuffle must be reproduced by machines that each hold only
// a shard of it (see OPERATIONS.md for deploying the cluster).
func ExampleOptions_cluster() {
	data := make([]int64, 10)
	for i := range data {
		data[i] = int64(i)
	}
	out, report, err := randperm.ParallelShuffle(data, randperm.Options{
		Procs:   4, // the cluster-wide decomposition width p
		Seed:    7,
		Backend: randperm.BackendCluster,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("backend=%s exactly-uniform=%v procs=%d\n",
		randperm.BackendCluster, randperm.BackendCluster.ExactUniform(), report.Procs)
	fmt.Println(out)
	// Output:
	// backend=cluster exactly-uniform=true procs=4
	// [1 6 4 9 7 5 0 8 3 2]
}

// Worker-count scaling: Options.Parallelism caps the goroutine worker
// pool of the SharedMem and InPlace backends. It only changes how many
// OS-level workers execute the phases — randomness is bound to blocks
// and merge-tree nodes, so every worker count produces the identical
// permutation for the same (Seed, Procs).
func Example_parallelism() {
	data := make([]int64, 10000)
	for i := range data {
		data[i] = int64(i)
	}
	var ref []int64
	identical := true
	for _, workers := range []int{1, 2, 4, 8} {
		out, _, err := randperm.ParallelShuffle(data, randperm.Options{
			Procs:       8,
			Seed:        42,
			Backend:     randperm.BackendInPlace,
			Parallelism: workers,
		})
		if err != nil {
			panic(err)
		}
		if ref == nil {
			ref = out
		}
		for i := range out {
			if out[i] != ref[i] {
				identical = false
			}
		}
	}
	fmt.Println("same permutation at every worker count:", identical)
	// Output: same permutation at every worker count: true
}

// Sampling a communication matrix directly (Problem 2 of the paper):
// how many items does each source block send to each target block?
func ExampleCommMatrix() {
	src := randperm.NewSource(3)
	a := randperm.CommMatrix(src, []int64{4, 4}, []int64{4, 4})
	var rowSum int64
	for _, v := range a[0] {
		rowSum += v
	}
	fmt.Println(len(a), len(a[0]), rowSum)
	// Output: 2 2 4
}

// Hypergeometric sampling, the paper's core primitive: how many of the
// 50 red balls land in a 30-ball draw from a 100-ball urn.
func ExampleHypergeometric() {
	src := randperm.NewSource(9)
	k := randperm.Hypergeometric(src, 30, 50, 50)
	fmt.Println(k >= 0 && k <= 30)
	// Output: true
}

// Uniform k-subset sampling with the same machinery: the paper's
// "random samples to test algorithms" motivation.
func ExampleParallelSample() {
	data := make([]int64, 100)
	for i := range data {
		data[i] = int64(i)
	}
	sample, _, err := randperm.ParallelSample(data, 10, randperm.Options{
		Procs: 4,
		Seed:  11,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(sample))
	// Output: 10
}

// Shuffling a disk-resident vector in streaming block transfers: the
// external-memory outlook of Section 6.
func ExampleExternalShuffle() {
	data := make([]int64, 4096)
	for i := range data {
		data[i] = int64(i)
	}
	src := randperm.NewSource(13)
	stats, err := randperm.ExternalShuffle(src, data, 64, 512)
	if err != nil {
		panic(err)
	}
	// Streaming: far fewer block I/Os than items.
	fmt.Println(stats.Blocks, stats.IOs() < 4096)
	// Output: 64 true
}

// Redistribution with different target block sizes: Problem 1 in full
// generality.
func ExampleParallelShuffleBlocks() {
	blocks := [][]int{{1, 2, 3, 4}, {5, 6}}
	out, _, err := randperm.ParallelShuffleBlocks(blocks, []int64{3, 3},
		randperm.Options{Seed: 5})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(out[0]), len(out[1]))
	// Output: 3 3
}
