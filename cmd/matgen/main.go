// Command matgen samples communication matrices (Problem 2 of the paper)
// and inspects their distribution.
//
//	matgen -rows 4,4,4 -cols 6,3,3                 # one matrix
//	matgen -rows 4,4,4 -cols 6,3,3 -samples 5      # several
//	matgen -rows 3,3 -cols 3,3 -stats -samples 100000
//
// With -stats it prints, for every matrix arising with the given margins,
// the exact probability (the fixed-margin contingency law of Section 3)
// next to the observed frequency, a direct visualization of uniformity.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"randperm/internal/commat"
	"randperm/internal/xrand"
)

func main() {
	var (
		rows    = flag.String("rows", "4,4,4", "comma-separated source block sizes")
		cols    = flag.String("cols", "", "comma-separated target block sizes (default: same as rows)")
		samples = flag.Int("samples", 1, "number of matrices to sample")
		seed    = flag.Uint64("seed", 1, "random seed")
		alg     = flag.String("alg", "seq", "sampler: seq (Algorithm 3) or rec (Algorithm 4)")
		stats   = flag.Bool("stats", false, "aggregate: exact vs observed matrix frequencies")
	)
	flag.Parse()

	rowM, err := parseVec(*rows)
	if err != nil {
		fatal(err)
	}
	colM := rowM
	if *cols != "" {
		colM, err = parseVec(*cols)
		if err != nil {
			fatal(err)
		}
	}

	src := xrand.NewXoshiro256(*seed)
	sample := func() *commat.Matrix {
		if *alg == "rec" {
			return commat.SampleRec(src, rowM, colM)
		}
		return commat.SampleSeq(src, rowM, colM)
	}

	if !*stats {
		for s := 0; s < *samples; s++ {
			m := sample()
			if err := m.CheckMargins(rowM, colM); err != nil {
				fatal(err)
			}
			fmt.Print(m.String())
			if s < *samples-1 {
				fmt.Println()
			}
		}
		return
	}

	// Aggregate mode: observed frequency vs exact probability.
	counts := make(map[string]int64)
	for s := 0; s < *samples; s++ {
		counts[sample().String()]++
	}
	type entry struct {
		key   string
		prob  float64
		count int64
	}
	var entries []entry
	commat.Enumerate(rowM, colM, func(m *commat.Matrix) bool {
		key := m.String()
		entries = append(entries, entry{
			key:   key,
			prob:  commat.Prob(m, rowM, colM),
			count: counts[key],
		})
		return true
	})
	sort.Slice(entries, func(a, b int) bool { return entries[a].prob > entries[b].prob })
	fmt.Printf("%d distinct matrices with margins rows=%v cols=%v, %d samples (%s)\n\n",
		len(entries), rowM, colM, *samples, *alg)
	for _, e := range entries {
		obs := float64(e.count) / float64(*samples)
		fmt.Printf("exact=%.6f observed=%.6f\n%s\n", e.prob, obs, e.key)
	}
}

func parseVec(s string) ([]int64, error) {
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("matgen: bad size %q: %w", p, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("matgen: negative size %d", v)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "matgen:", err)
	os.Exit(1)
}
