// Command matgen samples communication matrices (Problem 2 of the paper)
// and inspects their distribution.
//
//	matgen -rows 4,4,4 -cols 6,3,3                 # one matrix
//	matgen -rows 4,4,4 -cols 6,3,3 -samples 5      # several
//	matgen -rows 3,3 -cols 3,3 -stats -samples 100000
//
// With -stats it prints, for every matrix arising with the given margins,
// the exact probability (the fixed-margin contingency law of Section 3)
// next to the observed frequency, a direct visualization of uniformity.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"randperm/internal/commat"
	"randperm/internal/xrand"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main behind testable plumbing: parse args, sample, print.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("matgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rows    = fs.String("rows", "4,4,4", "comma-separated source block sizes")
		cols    = fs.String("cols", "", "comma-separated target block sizes (default: same as rows)")
		samples = fs.Int("samples", 1, "number of matrices to sample")
		seed    = fs.Uint64("seed", 1, "random seed")
		alg     = fs.String("alg", "seq", "sampler: seq (Algorithm 3) or rec (Algorithm 4)")
		stats   = fs.Bool("stats", false, "aggregate: exact vs observed matrix frequencies")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	rowM, err := parseVec(*rows)
	if err != nil {
		fmt.Fprintln(stderr, "matgen:", err)
		return 1
	}
	colM := rowM
	if *cols != "" {
		colM, err = parseVec(*cols)
		if err != nil {
			fmt.Fprintln(stderr, "matgen:", err)
			return 1
		}
	}

	src := xrand.NewXoshiro256(*seed)
	sample := func() *commat.Matrix {
		if *alg == "rec" {
			return commat.SampleRec(src, rowM, colM)
		}
		return commat.SampleSeq(src, rowM, colM)
	}

	if !*stats {
		for s := 0; s < *samples; s++ {
			m := sample()
			if err := m.CheckMargins(rowM, colM); err != nil {
				fmt.Fprintln(stderr, "matgen:", err)
				return 1
			}
			fmt.Fprint(stdout, m.String())
			if s < *samples-1 {
				fmt.Fprintln(stdout)
			}
		}
		return 0
	}

	// Aggregate mode: observed frequency vs exact probability.
	counts := make(map[string]int64)
	for s := 0; s < *samples; s++ {
		counts[sample().String()]++
	}
	type entry struct {
		key   string
		prob  float64
		count int64
	}
	var entries []entry
	commat.Enumerate(rowM, colM, func(m *commat.Matrix) bool {
		key := m.String()
		entries = append(entries, entry{
			key:   key,
			prob:  commat.Prob(m, rowM, colM),
			count: counts[key],
		})
		return true
	})
	sort.Slice(entries, func(a, b int) bool { return entries[a].prob > entries[b].prob })
	fmt.Fprintf(stdout, "%d distinct matrices with margins rows=%v cols=%v, %d samples (%s)\n\n",
		len(entries), rowM, colM, *samples, *alg)
	for _, e := range entries {
		obs := float64(e.count) / float64(*samples)
		fmt.Fprintf(stdout, "exact=%.6f observed=%.6f\n%s\n", e.prob, obs, e.key)
	}
	return 0
}

func parseVec(s string) ([]int64, error) {
	parts := strings.Split(s, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", p, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("negative size %d", v)
		}
		out = append(out, v)
	}
	return out, nil
}
