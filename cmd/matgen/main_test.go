package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestGoldenMatrix pins the exact bytes of a single-matrix sample: the
// margins are the paper's running example (4,4,4 sending into 6,3,3)
// and the output is a pure function of the flags.
func TestGoldenMatrix(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rows", "4,4,4", "-cols", "6,3,3", "-seed", "5"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	want := "2 2 0\n2 1 1\n2 0 2\n"
	if out.String() != want {
		t.Errorf("matgen -rows 4,4,4 -cols 6,3,3 -seed 5:\ngot  %q\nwant %q", out.String(), want)
	}
}

// TestGoldenMultiSample pins the blank-line-separated multi-sample form.
func TestGoldenMultiSample(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-rows", "2,2", "-cols", "2,2", "-samples", "2", "-seed", "9"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	want := "1 1\n1 1\n\n1 1\n1 1\n"
	if out.String() != want {
		t.Errorf("got %q want %q", out.String(), want)
	}
}

// TestMarginsAlwaysHold samples with several seeds and checks the
// printed matrix's row and column sums match the requested margins.
func TestMarginsAlwaysHold(t *testing.T) {
	wantRows, wantCols := []int{5, 3, 2}, []int{4, 4, 2}
	for seed := 1; seed <= 5; seed++ {
		var out, errb bytes.Buffer
		args := []string{"-rows", "5,3,2", "-cols", "4,4,2", "-seed", strconv.Itoa(seed)}
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("seed %d: exit %d: %s", seed, code, errb.String())
		}
		rows := strings.Split(strings.TrimSpace(out.String()), "\n")
		if len(rows) != len(wantRows) {
			t.Fatalf("seed %d: %d rows, want %d", seed, len(rows), len(wantRows))
		}
		colSum := make([]int, len(wantCols))
		for i, r := range rows {
			sum := 0
			for j, f := range strings.Fields(r) {
				v, err := strconv.Atoi(f)
				if err != nil {
					t.Fatalf("seed %d: bad entry %q", seed, f)
				}
				sum += v
				colSum[j] += v
			}
			if sum != wantRows[i] {
				t.Errorf("seed %d: row %d sums to %d, want %d", seed, i, sum, wantRows[i])
			}
		}
		for j, want := range wantCols {
			if colSum[j] != want {
				t.Errorf("seed %d: col %d sums to %d, want %d", seed, j, colSum[j], want)
			}
		}
	}
}

func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-rows", "4,x"},
		{"-rows", "-1,2"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code == 0 {
			t.Errorf("matgen %v: exit 0, want failure", args)
		}
	}
	// Explicit -h is a successful invocation by POSIX convention.
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Errorf("matgen -h: exit %d, want 0", code)
	}
}
