// Command permd serves the package's permutation machinery over HTTP:
// a long-running daemon that gives a fleet of clients shard assignment,
// replayable shuffles and O(1) point queries over huge index domains.
// The endpoints, the handle-cache semantics and the over-the-wire
// determinism contract are documented in the "service layer" section of
// ARCHITECTURE.md; the README's operator guide shows worked invocations.
//
//	permd                               # listen on :8080
//	permd -addr 127.0.0.1:9090 -procs 8 -max-handles 256
//
// A cluster of permd processes serves one sharded permutation space
// cooperatively: every node gets the same -peers list (and the same
// -procs and -replicas) and its own -node index, and backend=cluster
// requests to any node return the same bytes a single-node run would —
// see OPERATIONS.md for the full runbook. With -replicas R > 1 every
// shard slot is derived independently by R consecutive nodes, so any
// R-1 nodes can die without changing a byte served; reads hedge to a
// second replica after -hedge-after. On boot the daemon runs the
// deterministic join handshake against its peers in the background; a
// geometry mismatch (different -procs, -replicas or -peers) is fatal.
//
//	permd -addr :8080 -node 0 -replicas 2 -peers http://a:8080,http://b:8080,http://c:8080
//	permd -addr :8080 -node 1 -replicas 2 -peers http://a:8080,http://b:8080,http://c:8080
//	curl 'a:8080/v1/perm/7/chunk?n=1000000&backend=cluster'
//	curl a:8080/v1/cluster/status
//
//	curl 'localhost:8080/v1/perm/42/chunk?n=1099511627776&start=7000000&len=5'
//	curl 'localhost:8080/v1/perm/42/at?n=1099511627776&i=7000003'
//	printf 'a\nb\nc\n' | curl --data-binary @- 'localhost:8080/v1/shuffle?seed=7'
//	curl 'localhost:8080/v1/sample?n=1000000&k=5&seed=7'
//	curl 'localhost:8080/v1/assign?seed=7&n=1000000&id=12345&spec=control:9,treat:1'
//	curl 'localhost:8080/v1/epochs?seed=7&n=50000&epoch=3&len=5'
//	curl -N 'localhost:8080/v1/events?types=materialization,slow_request'
//	curl localhost:8080/healthz
//	curl localhost:8080/metrics
//
// GET /v1/events streams the daemon's live event feed (Server-Sent
// Events; see OPERATIONS.md, "Live observation") — the same stream the
// permtop tool renders. Delivery is best-effort by design: a slow
// subscriber loses events rather than slowing a single byte served.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"randperm/internal/cluster"
	"randperm/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		procs      = flag.Int("procs", 8, "pinned decomposition width p for every permutation served")
		maxHandles = flag.Int("max-handles", 64, "Permuter handle LRU capacity")
		maxN       = flag.Int64("max-n", 1<<24, "largest n served by materializing backends, /v1/shuffle and /v1/sample")
		maxChunk   = flag.Int("max-chunk", 1<<16, "chunk buffer length and default chunk len")
		maxBody    = flag.Int64("max-body", 32<<20, "largest /v1/shuffle request body in bytes")
		backend    = flag.String("backend", "bijective", "default backend for /v1/perm endpoints: sim, shmem, inplace, bijective or cluster")
		peers      = flag.String("peers", "", "comma-separated base URLs of every cluster node, in cluster order (enables cluster mode)")
		node       = flag.Int("node", 0, "this node's index into -peers")
		replicas   = flag.Int("replicas", 1, "cluster shard replication factor R: each shard is derived by R consecutive nodes")
		hedgeAfter = flag.Duration("hedge-after", 50*time.Millisecond, "latency budget before a cluster read races a second replica (negative disables hedging)")
		joinWait   = flag.Duration("join-wait", 60*time.Second, "how long the boot-time cluster join handshake polls unreachable peers")

		quota          = flag.String("quota", "", "default per-client budget in items served: RATE/UNIT[:BURST] (e.g. 5000/s:20000), or off")
		quotaOverrides = flag.String("quota-overrides", "", "per-client budgets replacing -quota: CLIENT=SPEC,... (e.g. etl=50000/s:200000,canary=off)")
		quotaClients   = flag.Int("quota-clients", 4096, "client quota buckets tracked before the least-recent one is forgotten")
		maxBuilds      = flag.Int("max-builds", 4, "materializing handle builds allowed to run concurrently")
		buildWait      = flag.Duration("build-wait", 10*time.Second, "how long a request queues for a build slot before 503 + Retry-After")
		maxEpoch       = flag.Int64("max-epoch", 1<<20, "largest epoch number /v1/epochs serves")

		slowThreshold = flag.Duration("slow-threshold", time.Second, "requests at least this slow publish a slow_request event on /v1/events")
		eventBuffer   = flag.Int("event-buffer", 256, "per-subscriber event channel capacity before events are dropped")
		eventReplay   = flag.Int("event-replay", 1024, "events kept for Last-Event-ID / ?from= replay on /v1/events")
		maxEventSubs  = flag.Int("max-event-subscribers", 64, "concurrent /v1/events subscribers before 503")
	)
	flag.Parse()

	quotaDefault, err := service.ParseQuotaSpec(*quota)
	if err != nil {
		fmt.Fprintln(os.Stderr, "permd: -quota:", err)
		os.Exit(2)
	}
	overrides, err := service.ParseQuotaOverrides(*quotaOverrides)
	if err != nil {
		fmt.Fprintln(os.Stderr, "permd: -quota-overrides:", err)
		os.Exit(2)
	}

	var peerList []string
	if *peers != "" {
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
	}
	handler, err := service.New(service.Config{
		Procs:      *procs,
		MaxHandles: *maxHandles,
		MaxN:       *maxN,
		MaxChunk:   *maxChunk,
		MaxBody:    *maxBody,
		Quota: service.QuotaConfig{
			Default:    quotaDefault,
			Overrides:  overrides,
			MaxClients: *quotaClients,
		},
		MaxBuilds: *maxBuilds,
		BuildWait: *buildWait,
		MaxEpoch:  *maxEpoch,
		Events: service.EventsConfig{
			Buffer:         *eventBuffer,
			Replay:         *eventReplay,
			MaxSubscribers: *maxEventSubs,
			SlowThreshold:  *slowThreshold,
		},
		DefaultBackend:  *backend,
		ClusterPeers:    peerList,
		ClusterNode:     *node,
		ClusterReplicas: *replicas,
		ClusterHedge:    *hedgeAfter,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "permd:", err)
		os.Exit(2)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	if len(peerList) > 0 {
		log.Printf("permd: listening on %s (procs=%d default backend=%s, cluster node %d of %d, replicas=%d)",
			*addr, *procs, *backend, *node, len(peerList), *replicas)
		// Deterministic membership handshake, in the background so the
		// node serves (and answers its own peers' joins) while the rest
		// of the cluster is still booting. A geometry mismatch means
		// this node would derive different bytes and must not serve.
		go func() {
			joinCtx, cancel := context.WithTimeout(ctx, *joinWait)
			defer cancel()
			switch err := handler.JoinCluster(joinCtx); {
			case err == nil:
				log.Printf("permd: cluster join complete: all %d peers agree on the geometry", len(peerList)-1)
			case errors.Is(err, cluster.ErrGeometryMismatch):
				log.Fatalf("permd: %v", err)
			case ctx.Err() == nil:
				log.Printf("permd: cluster join incomplete (still serving; peers rejoin on contact): %v", err)
			}
		}()
	} else {
		log.Printf("permd: listening on %s (procs=%d default backend=%s)", *addr, *procs, *backend)
	}

	select {
	case err := <-done:
		log.Fatalf("permd: %v", err)
	case <-ctx.Done():
		log.Printf("permd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("permd: shutdown: %v", err)
		}
	}
}
