// Command permbench regenerates the paper's evaluation: every experiment
// in DESIGN.md (E1..E8) prints a table mirroring the measurement the
// paper reports, with the paper's numbers quoted alongside where it gives
// any.
//
// Usage:
//
//	permbench -exp all            # run the full evaluation
//	permbench -exp E3,E4 -quick   # selected experiments, CI-sized
//	permbench -exp E3 -n 480000000  # the paper's original size
//	permbench -list               # catalogue with the claims reproduced
//	permbench -exp E5 -csv        # machine-readable output
//
// Beyond the paper's experiments, -compare races the execution backends
// (the simulated PRO machine, the shared-memory scatter engine, the
// MergeShuffle-style in-place engine, the keyed-bijection streaming
// engine, and the blocked cluster decomposition) on one workload:
//
//	permbench -compare -n 1000000 -p 8          # five-way table
//	permbench -compare -json > BENCH_backends.json  # ns/item per backend
//	permbench -compare -backend inplace -workers 4  # one backend only
//	permbench -compare -cluster                 # + loopback 2/4/8/16-node clusters
//	permbench -compare -profile /tmp/prof       # + pprof CPU profile per backend
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"randperm/internal/core"
	"randperm/internal/harness"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		n      = flag.Int64("n", 0, "item count for timing experiments (0 = default)")
		trials = flag.Int("trials", 0, "trial count for statistical experiments (0 = default)")
		seed   = flag.Uint64("seed", 0, "random seed (0 = default)")
		quick  = flag.Bool("quick", false, "shrink workloads for a fast pass")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		list   = flag.Bool("list", false, "list experiments and exit")
		ghz    = flag.Float64("ghz", 0, "CPU clock in GHz for cycle estimates (0 = default 3.0)")
		prof   = flag.Bool("bsp-profile", false, "print the BSP superstep profile of one Algorithm 1 run and exit")
		profP  = flag.Int("profile-p", 8, "machine size for -bsp-profile")

		cmp      = flag.Bool("compare", false, "time the execution backends side by side and exit")
		profDir  = flag.String("profile", "", "with -compare, write a pprof CPU profile per backend into this directory (cpu-<backend>.pprof)")
		cmpP     = flag.Int("p", 8, "decomposition width for -compare")
		workers  = flag.Int("workers", 0, "worker-pool cap for -compare (0 = GOMAXPROCS)")
		backends = flag.String("backend", "all", "backends for -compare: sim, shmem, inplace, bijective, cluster or all")
		serve    = flag.Bool("serve", false, "with -compare, also measure permd's HTTP chunk path (req/s, ns/item)")
		clusterB = flag.Bool("cluster", false, "with -compare, also measure loopback 2/4/8/16-node permd clusters end to end")
		jsonOut  = flag.Bool("json", false, "with -compare, emit machine-readable JSON")
	)
	flag.Parse()

	if *cmp {
		if err := runCompare(*n, *cmpP, *workers, *trials, *backends, *seed+1, *serve, *clusterB, *jsonOut, *profDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range harness.Experiments {
			fmt.Printf("%-4s %s\n", e.ID, e.Claim)
		}
		return
	}

	if *prof {
		pn := *n
		if pn == 0 {
			pn = 1 << 20
		}
		sizes := core.EvenBlocks(pn, *profP)
		blocks, err := core.Split(core.Iota(pn), sizes)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		_, m, err := core.Permute(blocks, sizes, core.Config{Seed: *seed + 1, Matrix: core.MatrixOpt})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("Algorithm 1 (matrix=opt), n=%d:\n%s", pn, m.Report().ProfileString())
		return
	}

	cfg := harness.Config{
		N:      *n,
		Trials: *trials,
		Seed:   *seed,
		Quick:  *quick,
		CPUGHz: *ghz,
	}

	var ids []string
	if *exp == "all" {
		for _, e := range harness.Experiments {
			ids = append(ids, e.ID)
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	for _, id := range ids {
		e, err := harness.Find(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		table, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Print(table.CSV())
		} else {
			fmt.Println(table.Render())
		}
	}
}
