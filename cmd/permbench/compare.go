package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"randperm"
	"randperm/internal/service"
)

// backendResult is one row of the backend comparison, shaped for the
// -json output so successive PRs can track the perf trajectory in
// BENCH_*.json files.
type backendResult struct {
	Backend   string  `json:"backend"`
	N         int64   `json:"n"`
	Procs     int     `json:"procs"`
	Workers   int     `json:"workers"`
	Trials    int     `json:"trials"`
	BestNs    int64   `json:"best_ns"`
	NsPerItem float64 `json:"ns_per_item"`
	ItemsPerS float64 `json:"items_per_sec"`
}

type compareReport struct {
	N          int64           `json:"n"`
	Procs      int             `json:"procs"`
	Workers    int             `json:"workers"`
	Trials     int             `json:"trials"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Results    []backendResult `json:"results"`
	// Speedups maps "<a>_vs_<b>" to best_ns(b)/best_ns(a) for every
	// ordered pair of measured backends, so BENCH_*.json trajectory
	// points stay comparable as backends are added.
	Speedups map[string]float64 `json:"speedups,omitempty"`
	Speedup  float64            `json:"speedup_shmem_vs_sim,omitempty"`
	// Serving is the HTTP-path measurement (-serve): permd's chunk
	// endpoint driven over a real loopback connection, the number
	// BENCHMARKS.md's "serving" section tracks.
	Serving *servingResult `json:"serving,omitempty"`
	// Cluster holds the loopback multi-node measurements (-cluster):
	// N full permd handlers wired as a cluster, the whole domain pulled
	// through node 0's public chunk endpoint — shard build, exchange
	// rounds, local serving and peer proxying all included. The numbers
	// BENCHMARKS.md's "Cluster" section tracks.
	Cluster []clusterResult `json:"cluster,omitempty"`
}

// servingResult is one measurement of the permd chunk endpoint: req/s
// and ns/item through the full HTTP path (routing, handle cache, pooled
// buffers, text encoding, loopback TCP) at a domain size only the
// bijective backend can serve.
type servingResult struct {
	Backend   string  `json:"backend"`
	N         int64   `json:"n"`
	ChunkLen  int     `json:"chunk_len"`
	Requests  int     `json:"requests"`
	BestNs    int64   `json:"best_req_ns"`
	NsPerItem float64 `json:"ns_per_item"`
	ReqPerS   float64 `json:"req_per_sec"`
}

// clusterResult is one loopback cluster measurement: a full pull of an
// n-value cluster permutation through one node's public HTTP endpoint.
type clusterResult struct {
	Nodes     int     `json:"nodes"`
	N         int64   `json:"n"`
	Procs     int     `json:"procs"`
	Trials    int     `json:"trials"`
	BestNs    int64   `json:"best_ns"`
	NsPerItem float64 `json:"ns_per_item"`
}

// runCluster boots `nodes` full permd handlers in cluster mode on
// loopback listeners and times, best of `trials`, a cold pull of the
// whole n-value permutation through node 0's chunk endpoint — each
// trial re-seeds, so every pull pays the shard builds, the h-relation
// exchange between all nodes and the cross-shard proxying, exactly the
// work a fresh cluster permutation costs in production.
func runCluster(nodes int, n int64, p, trials int, seed uint64) (*clusterResult, error) {
	if n <= 0 {
		n = 1 << 20
	}
	if trials <= 0 {
		trials = 3
	}
	if p < nodes {
		p = nodes
	}
	listeners := make([]net.Listener, nodes)
	peers := make([]string, nodes)
	for k := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[k] = ln
		peers[k] = "http://" + ln.Addr().String()
	}
	servers := make([]*http.Server, nodes)
	for k := range servers {
		handler, err := service.New(service.Config{
			Procs:        p,
			MaxN:         n,
			ClusterPeers: peers,
			ClusterNode:  k,
		})
		if err != nil {
			return nil, err
		}
		servers[k] = &http.Server{Handler: handler}
		go servers[k].Serve(listeners[k])
		defer servers[k].Close()
	}

	fetch := func(s uint64) error {
		url := fmt.Sprintf("%s/v1/perm/%d/chunk?n=%d&len=%d&backend=cluster", peers[0], s, n, n)
		resp, err := http.Get(url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("cluster bench: status %s", resp.Status)
		}
		return nil
	}
	if err := fetch(seed); err != nil { // warm-up: TCP setup, pool spin-up
		return nil, err
	}
	best := time.Duration(1<<63 - 1)
	for t := 0; t < trials; t++ {
		start := time.Now()
		if err := fetch(seed + uint64(t) + 1); err != nil {
			return nil, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return &clusterResult{
		Nodes:     nodes,
		N:         n,
		Procs:     p,
		Trials:    trials,
		BestNs:    best.Nanoseconds(),
		NsPerItem: float64(best.Nanoseconds()) / float64(n),
	}, nil
}

// runServe measures the served-chunk path: a permd handler on a loopback
// listener, one warm-up request (handle construction), then `reqs`
// timed requests for distinct 64Ki-index chunks of an n = 2^40
// permutation on the bijective backend. Best-of like the table above.
func runServe(reqs int) (*servingResult, error) {
	const (
		servedN  = int64(1) << 40
		chunkLen = 1 << 16
	)
	if reqs <= 0 {
		reqs = 32
	}
	handler, err := service.New(service.Config{})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	defer srv.Close()
	base := fmt.Sprintf("http://%s/v1/perm/42/chunk?n=%d&len=%d&start=", ln.Addr(), servedN, chunkLen)

	fetch := func(start int64) error {
		resp, err := http.Get(fmt.Sprintf("%s%d", base, start))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("serving bench: status %s", resp.Status)
		}
		return nil
	}
	if err := fetch(0); err != nil { // warm-up: handle construction, TCP setup
		return nil, err
	}
	best := time.Duration(1<<63 - 1)
	for r := 0; r < reqs; r++ {
		start := time.Now()
		if err := fetch(int64(r+1) * chunkLen); err != nil {
			return nil, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return &servingResult{
		Backend:   "bijective",
		N:         servedN,
		ChunkLen:  chunkLen,
		Requests:  reqs,
		BestNs:    best.Nanoseconds(),
		NsPerItem: float64(best.Nanoseconds()) / float64(chunkLen),
		ReqPerS:   1e9 / float64(best.Nanoseconds()),
	}, nil
}

// profileBackend wraps one backend's timing loop in a pprof CPU profile
// written to dir/cpu-<backend>.pprof, so a perf PR can start from data
// (`go tool pprof cpu-shmem.pprof`) instead of guesses. Profiling adds a
// sampling interrupt (~100 Hz), so profiled numbers are for attribution,
// not for BENCH_backends.json.
func profileBackend(dir, backend string, run func() error) error {
	f, err := os.Create(filepath.Join(dir, "cpu-"+backend+".pprof"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		return err
	}
	defer pprof.StopCPUProfile()
	return run()
}

// runCompare times the execution backends side by side on the same
// workload and prints a table (or JSON with -json). The per-backend
// figure is the best of `trials` runs, the conventional way to strip
// scheduler noise from a throughput measurement. With a non-empty
// profDir each backend's loop additionally writes a CPU profile there.
func runCompare(n int64, p, workers, trials int, which string, seed uint64, serve, clusterB, asJSON bool, profDir string) error {
	if n <= 0 {
		n = 1 << 20
	}
	if trials <= 0 {
		trials = 5
	}
	var backends []randperm.Backend
	switch which {
	case "", "both", "all":
		backends = []randperm.Backend{
			randperm.BackendSim, randperm.BackendSharedMem,
			randperm.BackendInPlace, randperm.BackendBijective,
			randperm.BackendCluster,
		}
	default:
		b, err := randperm.ParseBackend(which)
		if err != nil {
			return err
		}
		backends = []randperm.Backend{b}
	}

	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}

	rep := compareReport{
		N: n, Procs: p, Workers: workers, Trials: trials,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if profDir != "" {
		if err := os.MkdirAll(profDir, 0o755); err != nil {
			return err
		}
	}
	byName := map[string]backendResult{}
	for _, b := range backends {
		best := time.Duration(1<<63 - 1)
		timeTrials := func() error {
			for t := 0; t < trials; t++ {
				start := time.Now()
				_, _, err := randperm.ParallelShuffle(data, randperm.Options{
					Procs:       p,
					Seed:        seed + uint64(t),
					Backend:     b,
					Parallelism: workers,
				})
				if err != nil {
					return fmt.Errorf("%s: %w", b, err)
				}
				if d := time.Since(start); d < best {
					best = d
				}
			}
			return nil
		}
		var err error
		if profDir != "" {
			err = profileBackend(profDir, b.String(), timeTrials)
		} else {
			err = timeTrials()
		}
		if err != nil {
			return err
		}
		r := backendResult{
			Backend:   b.String(),
			N:         n,
			Procs:     p,
			Workers:   workers,
			Trials:    trials,
			BestNs:    best.Nanoseconds(),
			NsPerItem: float64(best.Nanoseconds()) / float64(n),
			ItemsPerS: float64(n) / best.Seconds(),
		}
		rep.Results = append(rep.Results, r)
		byName[r.Backend] = r
	}
	rep.Speedups = map[string]float64{}
	for an, a := range byName {
		for bn, b := range byName {
			if an != bn && a.BestNs > 0 {
				rep.Speedups[an+"_vs_"+bn] = float64(b.BestNs) / float64(a.BestNs)
			}
		}
	}
	rep.Speedup = rep.Speedups["shmem_vs_sim"]
	if serve {
		sr, err := runServe(trials * 8)
		if err != nil {
			return err
		}
		rep.Serving = sr
	}
	if clusterB {
		// 2/4 track small deployments; 8/16 record how the loopback
		// cluster scales as the exchange fan-out grows (informational —
		// permgate ignores cluster points, matching the loopback policy).
		for _, nodes := range []int{2, 4, 8, 16} {
			cr, err := runCluster(nodes, n, p, trials, seed)
			if err != nil {
				return err
			}
			rep.Cluster = append(rep.Cluster, *cr)
		}
	}

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}

	fmt.Printf("Backend comparison: n=%d p=%d workers=%d trials=%d (best of)\n",
		n, p, workers, trials)
	fmt.Printf("%-10s %12s %12s %14s\n", "backend", "ms/run", "ns/item", "items/s")
	for _, r := range rep.Results {
		fmt.Printf("%-10s %12.2f %12.2f %14.3e\n",
			r.Backend, float64(r.BestNs)/1e6, r.NsPerItem, r.ItemsPerS)
	}
	for _, pair := range []struct{ a, b string }{
		{"shmem", "sim"}, {"inplace", "sim"}, {"inplace", "shmem"},
		{"bijective", "sim"}, {"bijective", "shmem"}, {"cluster", "shmem"},
	} {
		if s, ok := rep.Speedups[pair.a+"_vs_"+pair.b]; ok {
			fmt.Printf("%s speedup over %s: %.2fx\n", pair.a, pair.b, s)
		}
	}
	if rep.Serving != nil {
		s := rep.Serving
		fmt.Printf("served chunk (HTTP, %s, n=2^40, %d values/req): %.0f req/s, %.2f ns/item\n",
			s.Backend, s.ChunkLen, s.ReqPerS, s.NsPerItem)
	}
	for _, c := range rep.Cluster {
		fmt.Printf("loopback cluster (%d nodes, n=%d, p=%d, cold full pull): %.2f ms, %.2f ns/item\n",
			c.Nodes, c.N, c.Procs, float64(c.BestNs)/1e6, c.NsPerItem)
	}
	return nil
}
