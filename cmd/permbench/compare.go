package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"randperm"
)

// backendResult is one row of the backend comparison, shaped for the
// -json output so successive PRs can track the perf trajectory in
// BENCH_*.json files.
type backendResult struct {
	Backend   string  `json:"backend"`
	N         int64   `json:"n"`
	Procs     int     `json:"procs"`
	Workers   int     `json:"workers"`
	Trials    int     `json:"trials"`
	BestNs    int64   `json:"best_ns"`
	NsPerItem float64 `json:"ns_per_item"`
	ItemsPerS float64 `json:"items_per_sec"`
}

type compareReport struct {
	N          int64           `json:"n"`
	Procs      int             `json:"procs"`
	Workers    int             `json:"workers"`
	Trials     int             `json:"trials"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Results    []backendResult `json:"results"`
	// Speedups maps "<a>_vs_<b>" to best_ns(b)/best_ns(a) for every
	// ordered pair of measured backends, so BENCH_*.json trajectory
	// points stay comparable as backends are added.
	Speedups map[string]float64 `json:"speedups,omitempty"`
	Speedup  float64            `json:"speedup_shmem_vs_sim,omitempty"`
}

// runCompare times the execution backends side by side on the same
// workload and prints a table (or JSON with -json). The per-backend
// figure is the best of `trials` runs, the conventional way to strip
// scheduler noise from a throughput measurement.
func runCompare(n int64, p, workers, trials int, which string, seed uint64, asJSON bool) error {
	if n <= 0 {
		n = 1 << 20
	}
	if trials <= 0 {
		trials = 5
	}
	var backends []randperm.Backend
	switch which {
	case "", "both", "all":
		backends = []randperm.Backend{
			randperm.BackendSim, randperm.BackendSharedMem,
			randperm.BackendInPlace, randperm.BackendBijective,
		}
	default:
		b, err := randperm.ParseBackend(which)
		if err != nil {
			return err
		}
		backends = []randperm.Backend{b}
	}

	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}

	rep := compareReport{
		N: n, Procs: p, Workers: workers, Trials: trials,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	byName := map[string]backendResult{}
	for _, b := range backends {
		best := time.Duration(1<<63 - 1)
		for t := 0; t < trials; t++ {
			start := time.Now()
			_, _, err := randperm.ParallelShuffle(data, randperm.Options{
				Procs:       p,
				Seed:        seed + uint64(t),
				Backend:     b,
				Parallelism: workers,
			})
			if err != nil {
				return fmt.Errorf("%s: %w", b, err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		r := backendResult{
			Backend:   b.String(),
			N:         n,
			Procs:     p,
			Workers:   workers,
			Trials:    trials,
			BestNs:    best.Nanoseconds(),
			NsPerItem: float64(best.Nanoseconds()) / float64(n),
			ItemsPerS: float64(n) / best.Seconds(),
		}
		rep.Results = append(rep.Results, r)
		byName[r.Backend] = r
	}
	rep.Speedups = map[string]float64{}
	for an, a := range byName {
		for bn, b := range byName {
			if an != bn && a.BestNs > 0 {
				rep.Speedups[an+"_vs_"+bn] = float64(b.BestNs) / float64(a.BestNs)
			}
		}
	}
	rep.Speedup = rep.Speedups["shmem_vs_sim"]

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}

	fmt.Printf("Backend comparison: n=%d p=%d workers=%d trials=%d (best of)\n",
		n, p, workers, trials)
	fmt.Printf("%-10s %12s %12s %14s\n", "backend", "ms/run", "ns/item", "items/s")
	for _, r := range rep.Results {
		fmt.Printf("%-10s %12.2f %12.2f %14.3e\n",
			r.Backend, float64(r.BestNs)/1e6, r.NsPerItem, r.ItemsPerS)
	}
	for _, pair := range []struct{ a, b string }{
		{"shmem", "sim"}, {"inplace", "sim"}, {"inplace", "shmem"},
		{"bijective", "sim"}, {"bijective", "shmem"},
	} {
		if s, ok := rep.Speedups[pair.a+"_vs_"+pair.b]; ok {
			fmt.Printf("%s speedup over %s: %.2fx\n", pair.a, pair.b, s)
		}
	}
	return nil
}
