package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"randperm/internal/engine"
	"randperm/internal/workload"
)

// runWL runs the tool and returns (stdout, exit code).
func runWL(t *testing.T, args ...string) (string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, strings.NewReader(""), &out, &errb)
	if code != 0 && errb.Len() == 0 {
		t.Fatalf("permcli %v: exit %d with no diagnostic", args, code)
	}
	return out.String(), code
}

// TestAssignGolden pins `permcli assign` output and re-derives it from
// the library, so the subcommand stays the byte-level oracle CI uses
// against a live /v1/assign.
func TestAssignGolden(t *testing.T) {
	for _, tc := range []struct {
		seed     uint64
		n, id    int64
		spec     string
		wantName string
	}{
		{7, 1000, 0, "control:9,treat:1", ""},
		{7, 1000, 123, "control:9,treat:1", ""},
		{42, 1 << 40, 999999999, "a:1,b:2,c:3", ""},
	} {
		sp, err := workload.ParseAssignSpec(tc.spec)
		if err != nil {
			t.Fatal(err)
		}
		_, want := workload.Assign(sp, tc.seed, tc.n, tc.id)
		got, code := runWL(t, "assign",
			"-seed", strconv.FormatUint(tc.seed, 10),
			"-n", strconv.FormatInt(tc.n, 10),
			"-id", strconv.FormatInt(tc.id, 10),
			"-spec", tc.spec)
		if code != 0 {
			t.Fatalf("assign exit %d", code)
		}
		if got != want+"\n" {
			t.Errorf("assign seed=%d id=%d: got %q, want %q", tc.seed, tc.id, got, want+"\n")
		}
	}
}

func TestAssignIndexFlag(t *testing.T) {
	sp, _ := workload.ParseAssignSpec("a:1,b:1")
	idx, name := workload.Assign(sp, 5, 100, 17)
	got, code := runWL(t, "assign", "-seed", "5", "-n", "100", "-id", "17", "-spec", "a:1,b:1", "-index")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if want := strconv.Itoa(idx) + " " + name + "\n"; got != want {
		t.Errorf("assign -index: got %q, want %q", got, want)
	}
}

// TestEpochsGolden: `permcli epochs` must print exactly the epoch
// permutation the library derives, in both modes, over any chunking.
func TestEpochsGolden(t *testing.T) {
	const seed, n, epoch = 7, 40, 3
	for _, mode := range []string{"fresh", "recycled"} {
		m, err := workload.ParseEpochMode(mode)
		if err != nil {
			t.Fatal(err)
		}
		key := workload.NewEpocher(seed, m).Key(epoch)
		wantVals := make([]int64, n)
		engine.NewBijection(n, key).Chunk(wantVals, 0)
		var want strings.Builder
		for _, v := range wantVals {
			want.WriteString(strconv.FormatInt(v, 10))
			want.WriteByte('\n')
		}
		got, code := runWL(t, "epochs", "-seed", "7", "-n", "40", "-epoch", "3", "-mode", mode)
		if code != 0 {
			t.Fatalf("mode %s: exit %d", mode, code)
		}
		if got != want.String() {
			t.Errorf("mode %s: got %q, want %q", mode, got, want.String())
		}
		// A windowed read is the same bytes, offset.
		part, code := runWL(t, "epochs", "-seed", "7", "-n", "40", "-epoch", "3", "-mode", mode, "-start", "10", "-len", "5")
		if code != 0 {
			t.Fatalf("mode %s window: exit %d", mode, code)
		}
		wantPart := strings.Join(strings.Split(strings.TrimRight(want.String(), "\n"), "\n")[10:15], "\n") + "\n"
		if part != wantPart {
			t.Errorf("mode %s window: got %q, want %q", mode, part, wantPart)
		}
	}
}

func TestWorkloadBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"assign", "-spec", "a:0", "-n", "10", "-id", "0"}, // zero weight
		{"assign", "-spec", "a:1"},                         // missing n
		{"assign", "-spec", "a:1", "-n", "10", "-id", "10"},
		{"epochs", "-n", "-1"},
		{"epochs", "-n", "10", "-mode", "stale"},
		{"epochs", "-n", "10", "-epoch", "-1"},
		{"epochs", "-n", "10", "-start", "11"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, strings.NewReader(""), &out, &errb); code != 2 {
			t.Errorf("permcli %v: exit %d, want 2 (%s)", args, code, errb.String())
		}
	}
}
