// Command permcli shuffles data from the command line with the paper's
// parallel algorithm.
//
// With -n it prints a uniform random permutation of 0..n-1, one value per
// line; without it, it shuffles the lines of standard input. -p selects
// the decomposition width, -backend the execution engine (sim, shmem,
// inplace, bijective or cluster — the same engines the library and permd
// expose), -alg the matrix sampling algorithm of the sim backend (opt,
// log or seq) and -seed makes runs reproducible.
//
//	permcli -n 10 -p 4 -seed 7
//	permcli -n 1000000 -backend inplace -seed 7   # fast engine, same API
//	shuf somefile | permcli -p 8                  # re-shuffle lines, uniformly
//
// The workload subcommands compute locally what the permd workload
// endpoints serve, byte-for-byte (see workload.go):
//
//	permcli assign -seed 7 -n 1000000 -id 12345 -spec control:9,treat:1
//	permcli epochs -seed 7 -n 50000 -epoch 3 -len 5
//
// The cluster backend prints, in one process, exactly the bytes an
// N-node permd cluster serves for the same (seed, n, p) — which is how
// CI verifies a live cluster against the library (see OPERATIONS.md):
//
//	permcli -n 1000 -backend cluster -p 8 -seed 7
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"randperm"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main behind testable plumbing: parse args, shuffle, print.
// The workload subcommands (workload.go) dispatch on the first
// argument; everything else is the flag-driven shuffle path.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) > 0 {
		switch args[0] {
		case "assign":
			return runAssign(args[1:], stdout, stderr)
		case "epochs":
			return runEpochs(args[1:], stdout, stderr)
		}
	}
	fs := flag.NewFlagSet("permcli", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n       = fs.Int64("n", 0, "emit a permutation of 0..n-1 instead of reading stdin")
		p       = fs.Int("p", 8, "decomposition width (simulated processors / blocks)")
		seed    = fs.Uint64("seed", 1, "random seed")
		alg     = fs.String("alg", "opt", "matrix algorithm for -backend sim: opt, log or seq")
		backend = fs.String("backend", "sim", "execution backend: sim, shmem, inplace, bijective or cluster")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	var matrix randperm.MatrixAlg
	switch *alg {
	case "opt":
		matrix = randperm.MatrixOpt
	case "log":
		matrix = randperm.MatrixLog
	case "seq":
		matrix = randperm.MatrixSeq
	default:
		fmt.Fprintf(stderr, "permcli: unknown -alg %q (want opt, log or seq)\n", *alg)
		return 2
	}
	be, err := randperm.ParseBackend(*backend)
	if err != nil {
		fmt.Fprintln(stderr, "permcli:", err)
		return 2
	}
	opt := randperm.Options{Procs: *p, Seed: *seed, Matrix: matrix, Backend: be}

	out := bufio.NewWriter(stdout)
	defer out.Flush()

	if *n > 0 {
		data := make([]int64, *n)
		for i := range data {
			data[i] = int64(i)
		}
		shuffled, _, err := randperm.ParallelShuffle(data, opt)
		if err != nil {
			fmt.Fprintln(stderr, "permcli:", err)
			return 1
		}
		for _, v := range shuffled {
			fmt.Fprintln(out, v)
		}
		return 0
	}

	var lines []string
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(stderr, "permcli: reading stdin:", err)
		return 1
	}
	if len(lines) == 0 {
		return 0
	}
	procs := opt.Procs
	if procs > len(lines) {
		procs = len(lines)
	}
	opt.Procs = procs
	shuffled, _, err := randperm.ParallelShuffle(lines, opt)
	if err != nil {
		fmt.Fprintln(stderr, "permcli:", err)
		return 1
	}
	for _, l := range shuffled {
		fmt.Fprintln(out, l)
	}
	return 0
}
