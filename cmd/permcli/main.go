// Command permcli shuffles data from the command line with the paper's
// parallel algorithm.
//
// With -n it prints a uniform random permutation of 0..n-1, one value per
// line; without it, it shuffles the lines of standard input. -p selects
// the number of simulated processors, -alg the matrix sampling algorithm
// (opt, log or seq) and -seed makes runs reproducible.
//
//	permcli -n 10 -p 4 -seed 7
//	shuf somefile | permcli -p 8        # re-shuffle lines, uniformly
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"randperm"
)

func main() {
	var (
		n    = flag.Int64("n", 0, "emit a permutation of 0..n-1 instead of reading stdin")
		p    = flag.Int("p", 8, "number of simulated processors")
		seed = flag.Uint64("seed", 1, "random seed")
		alg  = flag.String("alg", "opt", "matrix algorithm: opt, log or seq")
	)
	flag.Parse()

	var matrix randperm.MatrixAlg
	switch *alg {
	case "opt":
		matrix = randperm.MatrixOpt
	case "log":
		matrix = randperm.MatrixLog
	case "seq":
		matrix = randperm.MatrixSeq
	default:
		fmt.Fprintf(os.Stderr, "permcli: unknown -alg %q (want opt, log or seq)\n", *alg)
		os.Exit(2)
	}
	opt := randperm.Options{Procs: *p, Seed: *seed, Matrix: matrix}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if *n > 0 {
		data := make([]int64, *n)
		for i := range data {
			data[i] = int64(i)
		}
		shuffled, _, err := randperm.ParallelShuffle(data, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "permcli:", err)
			os.Exit(1)
		}
		for _, v := range shuffled {
			fmt.Fprintln(out, v)
		}
		return
	}

	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "permcli: reading stdin:", err)
		os.Exit(1)
	}
	if len(lines) == 0 {
		return
	}
	procs := opt.Procs
	if procs > len(lines) {
		procs = len(lines)
	}
	opt.Procs = procs
	shuffled, _, err := randperm.ParallelShuffle(lines, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "permcli:", err)
		os.Exit(1)
	}
	for _, l := range shuffled {
		fmt.Fprintln(out, l)
	}
}
