package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"randperm"
)

// goldens pin the exact bytes `permcli -n -seed` prints per backend.
// They are part of the tool's contract: scripts that diff permcli output
// across machines or releases (and CI's permd smoke test, which compares
// the daemon against this tool) rely on the output being a pure function
// of the flags.
var goldens = []struct {
	args []string
	want string
}{
	{[]string{"-n", "10", "-seed", "7"}, "3\n9\n2\n0\n6\n7\n5\n8\n4\n1\n"},
	{[]string{"-n", "10", "-seed", "7", "-backend", "shmem"}, "7\n1\n8\n6\n3\n5\n0\n2\n4\n9\n"},
	{[]string{"-n", "10", "-seed", "7", "-backend", "inplace"}, "3\n8\n9\n4\n6\n7\n2\n5\n1\n0\n"},
	{[]string{"-n", "10", "-seed", "7", "-backend", "bijective"}, "4\n6\n7\n9\n1\n5\n2\n8\n3\n0\n"},
}

func TestGoldenPermutation(t *testing.T) {
	for _, g := range goldens {
		var out, errb bytes.Buffer
		if code := run(g.args, strings.NewReader(""), &out, &errb); code != 0 {
			t.Fatalf("permcli %v: exit %d: %s", g.args, code, errb.String())
		}
		if out.String() != g.want {
			t.Errorf("permcli %v:\ngot  %q\nwant %q", g.args, out.String(), g.want)
		}
	}
}

// TestGoldenMatchesLibrary re-derives each golden from the library, so a
// legitimate distribution-changing library change fails both this test
// and the literal goldens together — pointing at the contract, not a typo.
func TestGoldenMatchesLibrary(t *testing.T) {
	for _, g := range goldens {
		backend := randperm.BackendSim
		for i, a := range g.args {
			if a == "-backend" {
				b, err := randperm.ParseBackend(g.args[i+1])
				if err != nil {
					t.Fatal(err)
				}
				backend = b
			}
		}
		data := make([]int64, 10)
		for i := range data {
			data[i] = int64(i)
		}
		out, _, err := randperm.ParallelShuffle(data, randperm.Options{Procs: 8, Seed: 7, Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, v := range out {
			b.WriteString(strconv.FormatInt(v, 10))
			b.WriteByte('\n')
		}
		if b.String() != g.want {
			t.Errorf("golden for %v out of sync with library: lib %q, golden %q", g.args, b.String(), g.want)
		}
	}
}

// TestStdinShuffle: without -n the tool shuffles stdin lines; the output
// must be a permutation of the input, deterministic in the seed, on
// every backend.
func TestStdinShuffle(t *testing.T) {
	input := "alpha\nbravo\ncharlie\ndelta\necho\n"
	for _, backend := range []string{"sim", "shmem", "inplace", "bijective"} {
		var out1, out2, errb bytes.Buffer
		args := []string{"-seed", "3", "-backend", backend}
		if code := run(args, strings.NewReader(input), &out1, &errb); code != 0 {
			t.Fatalf("%s: exit %d: %s", backend, code, errb.String())
		}
		if code := run(args, strings.NewReader(input), &out2, &errb); code != 0 {
			t.Fatalf("%s: exit %d: %s", backend, code, errb.String())
		}
		if out1.String() != out2.String() {
			t.Errorf("%s: same seed, different output", backend)
		}
		got := strings.Fields(out1.String())
		want := strings.Fields(input)
		if len(got) != len(want) {
			t.Fatalf("%s: %d lines out, %d in", backend, len(got), len(want))
		}
		seen := map[string]int{}
		for _, w := range want {
			seen[w]++
		}
		for _, g := range got {
			seen[g]--
		}
		for k, v := range seen {
			if v != 0 {
				t.Errorf("%s: output is not a permutation of input (%q off by %d)", backend, k, v)
			}
		}
	}
}

func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-backend", "nope", "-n", "4"},
		{"-alg", "nope", "-n", "4"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, strings.NewReader(""), &out, &errb); code != 2 {
			t.Errorf("permcli %v: exit %d, want 2 (%s)", args, code, errb.String())
		}
	}
	// Explicit -h is a successful invocation by POSIX convention.
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Errorf("permcli -h: exit %d, want 0", code)
	}
}
