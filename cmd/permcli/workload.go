package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"strconv"

	"randperm/internal/engine"
	"randperm/internal/workload"
)

// The workload subcommands compute, locally and from the library, the
// exact bytes the permd workload endpoints serve — which is how CI
// cross-checks a live daemon against the library:
//
//	permcli assign -seed 7 -n 1000000 -id 12345 -spec control:9,treat:1
//	curl 'localhost:8080/v1/assign?seed=7&n=1000000&id=12345&spec=control:9,treat:1'
//
// must print the same bytes (likewise permcli epochs vs /v1/epochs).

// runAssign implements `permcli assign`: print the experiment bucket
// of (seed, id) under the weight spec, byte-identical to /v1/assign.
func runAssign(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("permcli assign", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed  = fs.Uint64("seed", 1, "experiment seed")
		n     = fs.Int64("n", 0, "id domain size (required, positive)")
		id    = fs.Int64("id", -1, "user id in [0, n) (required)")
		spec  = fs.String("spec", "", "bucket weights, name:weight comma-separated (required)")
		index = fs.Bool("index", false, "print 'index name' instead of the name alone")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	sp, err := workload.ParseAssignSpec(*spec)
	if err != nil {
		fmt.Fprintln(stderr, "permcli: -spec:", err)
		return 2
	}
	if *n <= 0 {
		fmt.Fprintln(stderr, "permcli: -n is required and must be positive")
		return 2
	}
	if *id < 0 || *id >= *n {
		fmt.Fprintf(stderr, "permcli: -id %d outside [0, %d)\n", *id, *n)
		return 2
	}
	idx, name := workload.Assign(sp, *seed, *n, *id)
	if *index {
		fmt.Fprintln(stdout, idx, name)
	} else {
		fmt.Fprintln(stdout, name)
	}
	return 0
}

// runEpochs implements `permcli epochs`: print a chunk of epoch e's
// permutation of dataset (seed, n), byte-identical to /v1/epochs.
func runEpochs(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("permcli epochs", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed   = fs.Uint64("seed", 1, "dataset seed")
		n      = fs.Int64("n", 0, "dataset size (required)")
		epoch  = fs.Int64("epoch", 0, "epoch number e >= 0")
		mode   = fs.String("mode", "fresh", "epoch key derivation: fresh or recycled")
		start  = fs.Int64("start", 0, "first position of the chunk")
		length = fs.Int64("len", -1, "chunk length (default: to the end of the dataset)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	m, err := workload.ParseEpochMode(*mode)
	if err != nil {
		fmt.Fprintln(stderr, "permcli: -mode:", err)
		return 2
	}
	if *n < 0 {
		fmt.Fprintln(stderr, "permcli: -n is required and must be non-negative")
		return 2
	}
	if *epoch < 0 {
		fmt.Fprintln(stderr, "permcli: -epoch must be non-negative")
		return 2
	}
	if *start < 0 || *start > *n {
		fmt.Fprintf(stderr, "permcli: -start %d outside [0, %d]\n", *start, *n)
		return 2
	}
	count := *n - *start
	if *length >= 0 && *length < count {
		count = *length
	}
	key := workload.NewEpocher(*seed, m).Key(*epoch)
	bij := engine.NewBijection(*n, key)

	out := bufio.NewWriter(stdout)
	defer out.Flush()
	// Page through a fixed buffer so a full-dataset epoch holds O(1)
	// memory, same as the server's streaming loop.
	buf := make([]int64, min(count, 1<<16))
	var line []byte
	for served := int64(0); served < count; {
		page := buf
		if rest := count - served; rest < int64(len(page)) {
			page = page[:rest]
		}
		bij.Chunk(page, *start+served)
		for _, v := range page {
			line = strconv.AppendInt(line[:0], v, 10)
			line = append(line, '\n')
			out.Write(line)
		}
		served += int64(len(page))
	}
	return 0
}
