// Command permverify is a statistical self-test: it re-derives the
// paper's central guarantee - every permutation equally likely - on the
// installed build, and exits non-zero if any check fails. It is designed
// for CI pipelines of downstream users who patch the library: a wrong
// conditioning step or a biased bounded-integer draw is invisible to
// unit tests of the happy path but lights up here.
//
// Checks:
//
//  1. exhaustive uniformity of the parallel shuffle over all n!
//     permutations, for every matrix algorithm (chi-square, alpha
//     configurable);
//  2. exhaustive uniformity of the k-subset sampler over all C(n,k)
//     subsets;
//  3. exactness of the communication matrix law against the closed-form
//     contingency probability;
//  4. a deliberately broken control (Sattolo) that MUST fail, guarding
//     against a vacuous test harness.
//
// Usage:
//
//	permverify                 # default sizes (~20s)
//	permverify -trials 200000  # tighter
//	permverify -alpha 0.001
package main

import (
	"flag"
	"fmt"
	"os"

	"randperm"
	"randperm/internal/commat"
	"randperm/internal/seqperm"
	"randperm/internal/stats"
	"randperm/internal/xrand"
)

func main() {
	var (
		trials = flag.Int("trials", 36000, "trials per statistical check")
		alpha  = flag.Float64("alpha", 0.0005, "rejection level per check")
		seed   = flag.Uint64("seed", 20031, "base seed")
	)
	flag.Parse()

	failed := 0
	check := func(name string, wantUniform bool, res stats.GOFResult) {
		verdict := "uniform"
		if res.Reject(*alpha) {
			verdict = "NON-UNIFORM"
		}
		ok := res.Reject(*alpha) != wantUniform
		status := "ok"
		if !ok {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%-4s %-34s %-12s %s\n", status, name, verdict, res)
	}

	// 1. Parallel shuffle over all 5! permutations.
	const n = 5
	nf := stats.Factorial(n)
	for _, alg := range []randperm.MatrixAlg{randperm.MatrixSeq, randperm.MatrixLog, randperm.MatrixOpt} {
		counts := make([]int64, nf)
		for tr := 0; tr < *trials; tr++ {
			data := make([]int64, n)
			for i := range data {
				data[i] = int64(i)
			}
			out, _, err := randperm.ParallelShuffle(data, randperm.Options{
				Procs: 2, Seed: *seed + uint64(tr)*0x9E3779B97F4A7C15, Matrix: alg,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "permverify:", err)
				os.Exit(2)
			}
			counts[stats.RankPermInt64(out)]++
		}
		res, err := stats.ChiSquareUniform(counts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "permverify:", err)
			os.Exit(2)
		}
		check(fmt.Sprintf("parallel shuffle (matrix=%s)", alg), true, res)
	}

	// 2. k-subset sampler over all C(7,3) = 35 subsets.
	{
		const sn, sk = 7, 3
		counts := make([]int64, stats.Binomial(sn, sk))
		for tr := 0; tr < *trials; tr++ {
			data := make([]int64, sn)
			for i := range data {
				data[i] = int64(i)
			}
			sample, _, err := randperm.ParallelSample(data, sk, randperm.Options{
				Procs: 2, Seed: *seed + uint64(tr)*0xD1342543DE82EF95,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "permverify:", err)
				os.Exit(2)
			}
			counts[stats.RankCombInt64(sample, sn)]++
		}
		res, err := stats.ChiSquareUniform(counts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "permverify:", err)
			os.Exit(2)
		}
		check("k-subset sampler", true, res)
	}

	// 3. Matrix law against the exact contingency probability.
	{
		rowM := []int64{3, 3}
		colM := []int64{2, 4}
		var keys []string
		probs := make(map[string]float64)
		commat.Enumerate(rowM, colM, func(m *commat.Matrix) bool {
			k := m.String()
			keys = append(keys, k)
			probs[k] = commat.Prob(m, rowM, colM)
			return true
		})
		counts := make(map[string]int64)
		src := xrand.NewXoshiro256(*seed + 99)
		for tr := 0; tr < *trials; tr++ {
			counts[commat.SampleSeq(src, rowM, colM).String()]++
		}
		obs := make([]int64, len(keys))
		ps := make([]float64, len(keys))
		for i, k := range keys {
			obs[i] = counts[k]
			ps[i] = probs[k]
		}
		res, err := stats.ChiSquare(obs, ps)
		if err != nil {
			fmt.Fprintln(os.Stderr, "permverify:", err)
			os.Exit(2)
		}
		check("communication matrix law", true, res)
	}

	// 4. The control that must fail.
	{
		counts := make([]int64, nf)
		src := xrand.NewXoshiro256(*seed + 7)
		for tr := 0; tr < *trials; tr++ {
			data := make([]int64, n)
			for i := range data {
				data[i] = int64(i)
			}
			seqperm.Sattolo(src, data)
			counts[stats.RankPermInt64(data)]++
		}
		res, err := stats.ChiSquareUniform(counts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "permverify:", err)
			os.Exit(2)
		}
		check("sattolo control (must fail)", false, res)
	}

	if failed > 0 {
		fmt.Printf("\npermverify: %d check(s) FAILED\n", failed)
		os.Exit(1)
	}
	fmt.Println("\npermverify: all statistical checks passed")
}
