// Command mdlint checks the repository's markdown, so CI catches a
// renamed file, a dead heading or a stale code sample before a reader
// does.
//
//	mdlint                # walk the tree: every *.md outside .git
//	mdlint README.md ARCHITECTURE.md   # explicit files only
//
// Two classes of check run over every file:
//
// Links. For every inline link [text](target):
//
//   - a relative file target (README.md, docs/x.md#section) names an
//     existing file, resolved against the linking file's directory;
//   - a same-file anchor (#section) or a file#anchor into another
//     checked markdown file matches a heading, using GitHub's slugging
//     (lowercase, punctuation dropped, spaces to hyphens);
//   - absolute http(s) and mailto targets are skipped — CI must not
//     fail on someone else's outage.
//
// Code fences. Every fenced block tagged `go` that parses as a Go
// source file, declaration list or statement list must be in canonical
// gofmt form — docs quote code, and quoted code drifts unless a
// machine re-reads it. Blocks that do not parse are skipped: prose
// docs legitimately elide ("...") or abbreviate, and flagging those
// would outlaw every illustrative fragment. The skip is reported with
// -v so an unintentionally broken sample is still discoverable.
//
// Exit status 1 lists every finding with file:line.
package main

import (
	"flag"
	"fmt"
	"go/format"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var (
	// linkRe matches inline links, skipping images; markdown inside
	// code fences is excluded before matching.
	linkRe    = regexp.MustCompile(`(^|[^!\\])\[[^\]]*\]\(([^)\s]+)\)`)
	headingRe = regexp.MustCompile("(?m)^#{1,6} +(.+?) *$")
	slugDrop  = regexp.MustCompile(`[^\p{L}\p{N} _-]`)
)

// slug reduces a heading to its GitHub anchor.
func slug(heading string) string {
	// Strip inline code/emphasis markers first, then non-word runes.
	h := strings.NewReplacer("`", "", "*", "", "_", "").Replace(heading)
	h = slugDrop.ReplaceAllString(strings.ToLower(h), "")
	return strings.ReplaceAll(strings.TrimSpace(h), " ", "-")
}

// stripFences blanks out fenced code blocks (``` ... ```) so links in
// sample output are not linted, preserving line numbers.
func stripFences(src string) string {
	lines := strings.Split(src, "\n")
	inFence := false
	for i, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "```") {
			inFence = !inFence
			lines[i] = ""
			continue
		}
		if inFence {
			lines[i] = ""
		}
	}
	return strings.Join(lines, "\n")
}

// anchorsOf returns the set of heading slugs in a markdown source.
func anchorsOf(src string) map[string]bool {
	anchors := map[string]bool{}
	for _, m := range headingRe.FindAllStringSubmatch(stripFences(src), -1) {
		anchors[slug(m[1])] = true
	}
	return anchors
}

// goFence is one ```go block: its content and the line its code starts on.
type goFence struct {
	line int // 1-based line of the first code line
	code string
}

// goFences extracts every fenced block whose info string names Go.
func goFences(src string) []goFence {
	var fences []goFence
	lines := strings.Split(src, "\n")
	for i := 0; i < len(lines); i++ {
		trimmed := strings.TrimSpace(lines[i])
		if !strings.HasPrefix(trimmed, "```") {
			continue
		}
		info := strings.TrimSpace(strings.TrimPrefix(trimmed, "```"))
		var body []string
		start := i + 2 // 1-based first code line
		for i++; i < len(lines); i++ {
			if strings.HasPrefix(strings.TrimSpace(lines[i]), "```") {
				break
			}
			body = append(body, lines[i])
		}
		if info == "go" || info == "golang" {
			fences = append(fences, goFence{line: start, code: strings.Join(body, "\n")})
		}
	}
	return fences
}

// checkGoFence gofmt-checks one block. It returns ("", false) when the
// block is canonical, (reason, true) when it fails, and ("", false)
// with skipped=true when it does not parse at all.
func checkGoFence(code string) (reason string, failed, skipped bool) {
	formatted, err := format.Source([]byte(code))
	if err != nil {
		return "", false, true
	}
	if strings.TrimRight(string(formatted), "\n") != strings.TrimRight(code, "\n") {
		return "fenced go block is not gofmt'd", true, false
	}
	return "", false, false
}

// discover walks root for markdown files, skipping VCS and vendor trees.
func discover(root string) ([]string, error) {
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "node_modules" || name == "vendor" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(name), ".md") {
			files = append(files, filepath.Clean(path))
		}
		return nil
	})
	return files, err
}

func main() {
	verbose := flag.Bool("v", false, "also report skipped (non-parsing) go fences")
	flag.Parse()

	paths := flag.Args()
	if len(paths) == 0 {
		var err error
		if paths, err = discover("."); err != nil {
			fmt.Fprintln(os.Stderr, "mdlint:", err)
			os.Exit(1)
		}
	}
	sources := map[string]string{} // path -> content
	for _, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdlint:", err)
			os.Exit(1)
		}
		sources[path] = string(b)
	}

	broken := 0
	report := func(path string, line int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "%s:%d: %s\n", path, line, fmt.Sprintf(format, args...))
		broken++
	}
	for _, path := range paths {
		src := sources[path]
		clean := stripFences(src)
		for _, loc := range linkRe.FindAllStringSubmatchIndex(clean, -1) {
			target := clean[loc[4]:loc[5]]
			line := 1 + strings.Count(clean[:loc[4]], "\n")
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			file, anchor, _ := strings.Cut(target, "#")
			if file == "" {
				// Same-file anchor.
				if !anchorsOf(src)[anchor] {
					report(path, line, "anchor #%s matches no heading", anchor)
				}
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), file)
			if _, err := os.Stat(resolved); err != nil {
				report(path, line, "link target %s does not exist", target)
				continue
			}
			if anchor != "" {
				if other, ok := sources[resolved]; ok && !anchorsOf(other)[anchor] {
					report(path, line, "anchor #%s matches no heading in %s", anchor, file)
				}
			}
		}
		for _, f := range goFences(src) {
			reason, failed, skipped := checkGoFence(f.code)
			if failed {
				report(path, f.line, "%s", reason)
			} else if skipped && *verbose {
				fmt.Fprintf(os.Stderr, "%s:%d: note: go fence does not parse, format check skipped\n", path, f.line)
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdlint: %d finding(s)\n", broken)
		os.Exit(1)
	}
}
