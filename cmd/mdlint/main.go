// Command mdlint checks the repository's markdown for broken links, so
// CI catches a renamed file or heading before a reader does.
//
//	mdlint README.md ARCHITECTURE.md BENCHMARKS.md
//
// For every inline link [text](target) it verifies:
//
//   - a relative file target (README.md, docs/x.md#section) names an
//     existing file, resolved against the linking file's directory;
//   - a same-file anchor (#section) or a file#anchor into another
//     checked markdown file matches a heading, using GitHub's slugging
//     (lowercase, punctuation dropped, spaces to hyphens);
//   - absolute http(s) and mailto targets are skipped — CI must not
//     fail on someone else's outage.
//
// Exit status 1 lists every broken link with file:line.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var (
	// linkRe matches inline links, skipping images; markdown inside
	// code fences is excluded before matching.
	linkRe    = regexp.MustCompile(`(^|[^!\\])\[[^\]]*\]\(([^)\s]+)\)`)
	headingRe = regexp.MustCompile("(?m)^#{1,6} +(.+?) *$")
	slugDrop  = regexp.MustCompile(`[^\p{L}\p{N} _-]`)
)

// slug reduces a heading to its GitHub anchor.
func slug(heading string) string {
	// Strip inline code/emphasis markers first, then non-word runes.
	h := strings.NewReplacer("`", "", "*", "", "_", "").Replace(heading)
	h = slugDrop.ReplaceAllString(strings.ToLower(h), "")
	return strings.ReplaceAll(strings.TrimSpace(h), " ", "-")
}

// stripFences blanks out fenced code blocks (``` ... ```) so links in
// sample output are not linted, preserving line numbers.
func stripFences(src string) string {
	lines := strings.Split(src, "\n")
	inFence := false
	for i, l := range lines {
		if strings.HasPrefix(strings.TrimSpace(l), "```") {
			inFence = !inFence
			lines[i] = ""
			continue
		}
		if inFence {
			lines[i] = ""
		}
	}
	return strings.Join(lines, "\n")
}

// anchorsOf returns the set of heading slugs in a markdown source.
func anchorsOf(src string) map[string]bool {
	anchors := map[string]bool{}
	for _, m := range headingRe.FindAllStringSubmatch(stripFences(src), -1) {
		anchors[slug(m[1])] = true
	}
	return anchors
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdlint FILE.md ...")
		os.Exit(2)
	}
	sources := map[string]string{} // path -> content
	for _, path := range os.Args[1:] {
		b, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mdlint:", err)
			os.Exit(1)
		}
		sources[path] = string(b)
	}

	broken := 0
	report := func(path string, line int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "%s:%d: %s\n", path, line, fmt.Sprintf(format, args...))
		broken++
	}
	for path, src := range sources {
		clean := stripFences(src)
		for _, loc := range linkRe.FindAllStringSubmatchIndex(clean, -1) {
			target := clean[loc[4]:loc[5]]
			line := 1 + strings.Count(clean[:loc[4]], "\n")
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			file, anchor, _ := strings.Cut(target, "#")
			if file == "" {
				// Same-file anchor.
				if !anchorsOf(src)[anchor] {
					report(path, line, "anchor #%s matches no heading", anchor)
				}
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), file)
			if _, err := os.Stat(resolved); err != nil {
				report(path, line, "link target %s does not exist", target)
				continue
			}
			if anchor != "" {
				if other, ok := sources[resolved]; ok && !anchorsOf(other)[anchor] {
					report(path, line, "anchor #%s matches no heading in %s", anchor, file)
				}
			}
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdlint: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}
