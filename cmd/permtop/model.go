package main

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"randperm/permclient"
)

// The model aggregates the raw event streams into the three things an
// operator watches: throughput (from "request" events, which carry
// items served, wall nanoseconds and cache outcome), cluster posture
// (peer health transitions and round timings) and a timeline of the
// notable events themselves. Every number on screen is derived from
// events alone — permtop never scrapes /metrics — so what it shows is
// exactly what a bus subscriber can know, replay ring included.
type model struct {
	mu          sync.Mutex
	order       []string
	nodes       map[string]*nodeView
	timeline    []string
	timelineCap int
	t0          int64 // TimeNs of the first event seen; timeline times are relative to it
}

type nodeView struct {
	events int64
	reqs   int64
	items  int64
	ns     int64
	hits   int64
	misses int64
	minT   int64 // TimeNs bounds of request events, for req/s
	maxT   int64
	peers  map[int]string // peer index -> last health state
	round  string         // last cluster_round, pre-formatted
	err    string         // terminal stream error, if the watcher gave up
}

func newModel(timelineCap int) *model {
	return &model{nodes: make(map[string]*nodeView), timelineCap: timelineCap}
}

// ensure registers a node so it renders (with dashes) before its first
// event arrives. Returns the view; callers hold m.mu or are single-
// threaded setup code.
func (m *model) ensure(node string) *nodeView {
	nv := m.nodes[node]
	if nv == nil {
		nv = &nodeView{peers: make(map[int]string)}
		m.nodes[node] = nv
		m.order = append(m.order, node)
	}
	return nv
}

// Register pre-creates a node row before its watcher connects.
func (m *model) Register(node string) {
	m.mu.Lock()
	m.ensure(node)
	m.mu.Unlock()
}

// Fail records a watcher's terminal error against its node.
func (m *model) Fail(node string, err error) {
	m.mu.Lock()
	m.ensure(node).err = err.Error()
	m.mu.Unlock()
}

// Observe folds one event into the model.
func (m *model) Observe(node string, ev permclient.Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	nv := m.ensure(node)
	nv.events++
	if m.t0 == 0 && ev.TimeNs > 0 {
		m.t0 = ev.TimeNs
	}
	switch ev.Type {
	case "request":
		nv.reqs++
		nv.items += ev.Items
		nv.ns += ev.Ns
		switch ev.Cache {
		case "hit":
			nv.hits++
		case "miss":
			nv.misses++
		}
		if nv.minT == 0 || ev.TimeNs < nv.minT {
			nv.minT = ev.TimeNs
		}
		if ev.TimeNs > nv.maxT {
			nv.maxT = ev.TimeNs
		}
		return // requests feed the stats header, not the timeline
	case "peer_health_change":
		nv.peers[ev.Peer] = ev.State
	case "cluster_round":
		nv.round = fmt.Sprintf("slot=%d round=%d %s", ev.Slot, ev.Round, ev.Detail)
	}
	rel := float64(0)
	if m.t0 > 0 && ev.TimeNs > 0 {
		rel = float64(ev.TimeNs-m.t0) / 1e9
	}
	line := fmt.Sprintf("%+9.3fs  %-10s %-18s %s", rel, node, ev.Type, describe(ev))
	m.timeline = append(m.timeline, strings.TrimRight(line, " "))
	if len(m.timeline) > m.timelineCap {
		m.timeline = m.timeline[len(m.timeline)-m.timelineCap:]
	}
}

// describe renders an event's payload as "k=v" pairs, skipping fields
// the event does not use (zero, or -1 for peer/round/slot).
func describe(ev permclient.Event) string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if ev.Endpoint != "" {
		add("endpoint", ev.Endpoint)
	}
	if ev.Backend != "" {
		add("backend", ev.Backend)
	}
	if ev.Client != "" {
		add("client", ev.Client)
	}
	if ev.N != 0 {
		add("n", strconv.FormatInt(ev.N, 10))
	}
	if ev.Seed != 0 {
		add("seed", strconv.FormatUint(ev.Seed, 10))
	}
	if ev.Items != 0 {
		add("items", strconv.FormatInt(ev.Items, 10))
	}
	if ev.Ns != 0 {
		add("ns", strconv.FormatInt(ev.Ns, 10))
	}
	if ev.Cache != "" {
		add("cache", ev.Cache)
	}
	if ev.Peer >= 0 {
		add("peer", strconv.Itoa(ev.Peer))
	}
	if ev.Round >= 0 {
		add("round", strconv.Itoa(ev.Round))
	}
	if ev.Slot >= 0 {
		add("slot", strconv.Itoa(ev.Slot))
	}
	if ev.State != "" {
		add("state", ev.State)
	}
	if ev.Detail != "" {
		add("detail", ev.Detail)
	}
	return strings.Join(parts, " ")
}

// Render writes one full snapshot: stats header, per-node table,
// cluster posture, timeline. The output is a pure function of the
// observed events, which is what lets the -replay goldens pin it.
func (m *model) Render(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	var events, reqs, items, ns, hits, misses, minT, maxT int64
	for _, node := range m.order {
		nv := m.nodes[node]
		events += nv.events
		reqs += nv.reqs
		items += nv.items
		ns += nv.ns
		hits += nv.hits
		misses += nv.misses
		if nv.minT > 0 && (minT == 0 || nv.minT < minT) {
			minT = nv.minT
		}
		if nv.maxT > maxT {
			maxT = nv.maxT
		}
	}
	fmt.Fprintf(w, "permtop · %d node(s) · %d events · %d req · %s req/s · %s ns/item · %s%% hit\n\n",
		len(m.order), events, reqs, fmtRate(reqs, minT, maxT), fmtPerItem(ns, items), fmtHit(hits, misses))

	fmt.Fprintf(w, "%-24s %8s %8s %6s %6s %7s\n", "NODE", "REQ/S", "NS/ITEM", "HIT%", "REQS", "EVENTS")
	for _, node := range m.order {
		nv := m.nodes[node]
		fmt.Fprintf(w, "%-24s %8s %8s %6s %6d %7d\n", node,
			fmtRate(nv.reqs, nv.minT, nv.maxT), fmtPerItem(nv.ns, nv.items), fmtHit(nv.hits, nv.misses), nv.reqs, nv.events)
		if nv.err != "" {
			fmt.Fprintf(w, "  ! stream error: %s\n", nv.err)
		}
	}

	posture := false
	for _, node := range m.order {
		nv := m.nodes[node]
		if nv.round != "" || len(nv.peers) > 0 {
			posture = true
		}
	}
	if posture {
		fmt.Fprintf(w, "\n%-24s %-28s %s\n", "NODE", "LAST ROUND", "PEERS")
		for _, node := range m.order {
			nv := m.nodes[node]
			if nv.round == "" && len(nv.peers) == 0 {
				continue
			}
			keys := make([]int, 0, len(nv.peers))
			for k := range nv.peers {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			var peers []string
			for _, k := range keys {
				peers = append(peers, fmt.Sprintf("%d:%s", k, nv.peers[k]))
			}
			round := nv.round
			if round == "" {
				round = "-"
			}
			fmt.Fprintf(w, "%-24s %-28s %s\n", node, round, strings.Join(peers, " "))
		}
	}

	if len(m.timeline) > 0 {
		fmt.Fprintf(w, "\nTIMELINE\n")
		for _, line := range m.timeline {
			fmt.Fprintf(w, "%s\n", line)
		}
	}
}

func fmtRate(reqs, minT, maxT int64) string {
	if reqs == 0 || maxT <= minT {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(reqs)/(float64(maxT-minT)/1e9))
}

func fmtPerItem(ns, items int64) string {
	if items == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", float64(ns)/float64(items))
}

func fmtHit(hits, misses int64) string {
	if hits+misses == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*float64(hits)/float64(hits+misses))
}
