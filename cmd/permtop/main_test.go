package main

import (
	"bytes"
	"net/http"
	"os"
	"strings"
	"testing"

	"randperm/internal/harness/testkit"
	"randperm/internal/service"
)

// TestGoldenSnapshot pins the exact bytes of a -once -replay render
// from the canned capture. The snapshot is part of the tool's
// contract: operators diff permtop output across incidents, and the
// rendering must stay a pure function of the event stream.
func TestGoldenSnapshot(t *testing.T) {
	want, err := os.ReadFile("testdata/snapshot.golden")
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-replay", "testdata/events.jsonl"}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("permtop -replay: exit %d: %s", code, errb.String())
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("snapshot drifted from testdata/snapshot.golden:\ngot:\n%s\nwant:\n%s", out.String(), want)
	}
}

// TestGoldenStats re-derives the header numbers from the fixture by
// hand, so a legitimate rendering change fails both this test and the
// literal golden together — pointing at the contract, not a typo.
// The fixture holds 4 request events, 250 items and 62500 ns each,
// 3 cache hits, spanning time_ns 1.2e9..3.0e9: 4/1.8s = 2.22 req/s,
// 62500/250 = 250 ns/item, 3/4 = 75.0% hit.
func TestGoldenStats(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-replay", "testdata/events.jsonl"}, strings.NewReader(""), &out, &errb); code != 0 {
		t.Fatalf("permtop -replay: exit %d: %s", code, errb.String())
	}
	head, _, _ := strings.Cut(out.String(), "\n")
	for _, want := range []string{"2 node(s)", "14 events", "4 req", "2.22 req/s", "250 ns/item", "75.0% hit"} {
		if !strings.Contains(head, want) {
			t.Errorf("header %q missing %q", head, want)
		}
	}
}

// TestReplayStdin: -replay - reads the capture from stdin.
func TestReplayStdin(t *testing.T) {
	capture, err := os.ReadFile("testdata/events.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-replay", "-"}, bytes.NewReader(capture), &out, &errb); code != 0 {
		t.Fatalf("permtop -replay -: exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "14 events") {
		t.Errorf("stdin replay lost events:\n%s", out.String())
	}
}

// TestReplayBadCapture: a malformed line fails loudly with its number.
func TestReplayBadCapture(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-replay", "-"}, strings.NewReader("{\"type\":\"request\"}\nnot json\n"), &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), ":2:") {
		t.Errorf("error does not name line 2: %s", errb.String())
	}
}

// TestLiveSmoke boots a real single-node permd over loopback, serves a
// materializing chunk, and runs `permtop -once` against it: the
// snapshot must show the node's request and the materialization on the
// timeline — the full pipeline from bus publish through SSE, the SDK
// iterator and the renderer.
func TestLiveSmoke(t *testing.T) {
	servers := testkit.Loopback(t, 1, func(node int, peers []string) http.Handler {
		s, err := service.New(service.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return s
	})
	url := servers[0].URL
	testkit.WaitHealthy(t, url)
	if code, body := testkit.Get(t, url+"/v1/perm/7/chunk?n=4096&backend=shmem"); code != http.StatusOK {
		t.Fatalf("chunk: %d: %s", code, body)
	}

	var out, errb bytes.Buffer
	code := run([]string{"-nodes", url, "-once", "-interval", "300ms"}, strings.NewReader(""), &out, &errb)
	if code != 0 {
		t.Fatalf("permtop -once: exit %d: %s", code, errb.String())
	}
	snap := out.String()
	if !strings.Contains(snap, url) {
		t.Errorf("snapshot does not name the node %s:\n%s", url, snap)
	}
	if !strings.Contains(snap, "materialization") {
		t.Errorf("snapshot timeline missing the materialization:\n%s", snap)
	}
	if !strings.Contains(snap, "1 req") && !strings.Contains(snap, "2 req") {
		t.Errorf("snapshot header missing the request count:\n%s", snap)
	}
}
