// Command permtop watches a permd fleet live, top-style, over the
// GET /v1/events stream (see OPERATIONS.md, "Live observation").
//
// It subscribes to every node named in -nodes, folds the typed events
// into per-node throughput stats (req/s, ns/item, cache hit rate — all
// carried by "request" events), cluster posture (peer health
// transitions, round timings) and a scrolling timeline, and redraws
// every -interval. Everything shown is derived from the event stream
// alone; permtop never reads /metrics.
//
//	permtop -nodes http://10.0.0.1:8080,http://10.0.0.2:8080
//	permtop -types cluster_round,peer_health_change   # cluster posture only
//	permtop -once -interval 5s                        # one snapshot, then exit
//	permtop -replay captured.jsonl                    # re-render a captured stream
//
// -replay renders a snapshot from a JSONL capture (one event per line,
// each optionally tagged with "node") instead of connecting — the same
// path the golden tests pin, so the rendering is a contract.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"randperm/permclient"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main behind testable plumbing.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("permtop", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nodes    = fs.String("nodes", "http://localhost:8080", "comma-separated permd base URLs to watch")
		types    = fs.String("types", "", "comma-separated event types to subscribe to (empty = all)")
		once     = fs.Bool("once", false, "collect for one -interval, print a single snapshot, exit")
		replay   = fs.String("replay", "", "render a snapshot from a JSONL event capture (- for stdin) instead of connecting")
		interval = fs.Duration("interval", 2*time.Second, "refresh (and -once collection) period")
		rows     = fs.Int("timeline", 12, "timeline rows kept on screen")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	m := newModel(*rows)
	if *replay != "" {
		if err := replayFile(m, *replay, stdin); err != nil {
			fmt.Fprintln(stderr, "permtop:", err)
			return 1
		}
		m.Render(stdout)
		return 0
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var typeList []string
	if *types != "" {
		typeList = strings.Split(*types, ",")
	}
	var wg sync.WaitGroup
	for _, node := range strings.Split(*nodes, ",") {
		node = strings.TrimSpace(node)
		if node == "" {
			continue
		}
		m.Register(node)
		c := permclient.New(permclient.Config{BaseURL: node, ClientID: "permtop"})
		wg.Add(1)
		go func() {
			defer wg.Done()
			// From 0: start with the server's replay ring, so a fresh
			// permtop shows recent history, not a blank screen.
			for ev, err := range c.EventsFrom(ctx, 0, typeList...) {
				if err != nil {
					m.Fail(node, err)
					return
				}
				m.Observe(node, ev)
			}
		}()
	}

	if *once {
		select {
		case <-ctx.Done():
		case <-time.After(*interval):
		}
		stop()
		wg.Wait()
		m.Render(stdout)
		return 0
	}
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return 0
		case <-time.After(*interval):
		}
		fmt.Fprint(stdout, "\x1b[2J\x1b[H") // clear screen, home cursor
		m.Render(stdout)
	}
}

// replayFile feeds a JSONL capture into the model. Each line is one
// event in the /v1/events wire shape, optionally extended with a
// "node" field naming its source (defaulting to "replay"); blank lines
// are skipped.
func replayFile(m *model, path string, stdin io.Reader) error {
	r := stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec struct {
			Node string `json:"node"`
			permclient.Event
		}
		rec.Peer, rec.Round, rec.Slot = -1, -1, -1
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return fmt.Errorf("%s:%d: %v", path, lineno, err)
		}
		node := rec.Node
		if node == "" {
			node = "replay"
		}
		m.Observe(node, rec.Event)
	}
	return sc.Err()
}
