package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write drops a minimal compare-report JSON into dir and returns its path.
func write(t *testing.T, dir, name, body string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baseJSON = `{
  "results": [
    {"backend": "shmem", "ns_per_item": 7.0},
    {"backend": "bijective", "ns_per_item": 40.0}
  ],
  "serving": {"ns_per_item": 30.0}
}`

func TestGatePassesWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.json", baseJSON)
	cur := write(t, dir, "cur.json", `{
	  "results": [
	    {"backend": "shmem", "ns_per_item": 8.0},
	    {"backend": "bijective", "ns_per_item": 35.0}
	  ],
	  "serving": {"ns_per_item": 33.0}
	}`)
	var out strings.Builder
	pass, err := run([]string{"-baseline", base, "-current", cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !pass {
		t.Fatalf("gate failed within tolerance:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("verdict missing PASS line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "improved") {
		t.Fatalf("improved backend not reported:\n%s", out.String())
	}
}

func TestGateFailsOnSyntheticRegression(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.json", baseJSON)
	// shmem at 2x baseline: the synthetic regression the CI gate must
	// catch (acceptance criterion of the perf-gate issue).
	cur := write(t, dir, "cur.json", `{
	  "results": [
	    {"backend": "shmem", "ns_per_item": 14.0},
	    {"backend": "bijective", "ns_per_item": 35.0}
	  ]
	}`)
	var out strings.Builder
	pass, err := run([]string{"-baseline", base, "-current", cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if pass {
		t.Fatalf("gate passed a 2x regression:\n%s", out.String())
	}
	for _, want := range []string{"REGRESSED", "FAIL"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("verdict missing %q:\n%s", want, out.String())
		}
	}
}

func TestGateFailsOnMissingBackend(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.json", baseJSON)
	cur := write(t, dir, "cur.json", `{
	  "results": [{"backend": "shmem", "ns_per_item": 7.0}]
	}`)
	var out strings.Builder
	pass, err := run([]string{"-baseline", base, "-current", cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if pass {
		t.Fatal("gate passed with a backend missing from the current report")
	}
	if !strings.Contains(out.String(), "MISSING") {
		t.Fatalf("verdict missing MISSING line:\n%s", out.String())
	}
}

func TestGateTolerance(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.json", `{"results": [{"backend": "shmem", "ns_per_item": 10.0}]}`)
	cur := write(t, dir, "cur.json", `{"results": [{"backend": "shmem", "ns_per_item": 12.0}]}`)
	var out strings.Builder
	// 20% over: fails at tolerance 0.1, passes at 0.3.
	pass, err := run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if pass {
		t.Fatal("20% regression passed a 10% tolerance")
	}
	pass, err = run([]string{"-baseline", base, "-current", cur, "-tolerance", "0.3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !pass {
		t.Fatal("20% regression failed a 30% tolerance")
	}
}

func TestGateRequiresCurrent(t *testing.T) {
	var out strings.Builder
	if _, err := run(nil, &out); err == nil {
		t.Fatal("missing -current accepted")
	}
}

func TestGateInformationalCluster(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.json", `{"results": [{"backend": "shmem", "ns_per_item": 10.0}]}`)
	// A terrible cluster number must not fail the gate.
	cur := write(t, dir, "cur.json", `{
	  "results": [{"backend": "shmem", "ns_per_item": 10.0}],
	  "cluster": [{"nodes": 2, "ns_per_item": 900.0}]
	}`)
	var out strings.Builder
	pass, err := run([]string{"-baseline", base, "-current", cur}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !pass {
		t.Fatalf("informational cluster point failed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "not gated") {
		t.Fatalf("cluster line missing:\n%s", out.String())
	}
}
