// Command permgate is the CI perf gate: it compares a fresh
// `permbench -compare -json` report against the committed trajectory
// point (BENCH_backends.json) and fails — exit status 1 — if any backend
// regressed beyond the tolerance, so a hot-path regression breaks the
// build instead of silently bending the perf trajectory.
//
// Usage:
//
//	permbench -compare -json > fresh.json
//	permgate -baseline BENCH_backends.json -current fresh.json
//	permgate -current fresh.json -tolerance 0.30   # noisier boxes
//
// The verdict is one line per measurement plus a PASS/FAIL summary,
// suitable for a CI artifact. Rules:
//
//   - every backend in the baseline must be present in the current
//     report (a disappearing measurement is a coverage regression);
//   - a backend fails when current ns/item > baseline ns/item *
//     (1 + tolerance). The default tolerance is 0.25: CI runners are
//     shared and noisy, and the committed numbers are best-of-trials
//     from one box, so the gate is meant to catch step regressions
//     (an accidental O(n log n), a dropped batch path), not 5% jitter;
//   - the serving measurement is gated the same way when both reports
//     carry one;
//   - loopback cluster points are reported but never gated: they time
//     whole multi-node HTTP round trips, where scheduler noise on a
//     shared runner routinely exceeds any sensible tolerance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// report is the subset of permbench's -compare -json output the gate
// reads; unknown fields are ignored so the two tools can evolve apart.
type report struct {
	Results []struct {
		Backend   string  `json:"backend"`
		NsPerItem float64 `json:"ns_per_item"`
	} `json:"results"`
	Serving *struct {
		NsPerItem float64 `json:"ns_per_item"`
	} `json:"serving,omitempty"`
	Cluster []struct {
		Nodes     int     `json:"nodes"`
		NsPerItem float64 `json:"ns_per_item"`
	} `json:"cluster,omitempty"`
}

func loadReport(path string) (*report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r report
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// run executes the gate and writes the verdict to w. It returns an error
// only for operational failures (unreadable files, bad flags); a perf
// regression is reported through the boolean so main can exit 1 with the
// verdict already printed.
func run(args []string, w io.Writer) (pass bool, err error) {
	fs := flag.NewFlagSet("permgate", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		baseline  = fs.String("baseline", "BENCH_backends.json", "committed trajectory point to gate against")
		current   = fs.String("current", "", "fresh permbench -compare -json report (required)")
		tolerance = fs.Float64("tolerance", 0.25, "allowed fractional ns/item regression per measurement")
	)
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	if *current == "" {
		return false, fmt.Errorf("permgate: -current is required (a fresh permbench -compare -json report)")
	}
	if *tolerance < 0 {
		return false, fmt.Errorf("permgate: tolerance must be non-negative, got %g", *tolerance)
	}
	base, err := loadReport(*baseline)
	if err != nil {
		return false, err
	}
	cur, err := loadReport(*current)
	if err != nil {
		return false, err
	}

	curBy := map[string]float64{}
	for _, r := range cur.Results {
		curBy[r.Backend] = r.NsPerItem
	}
	pass = true
	verdict := func(name string, baseNs, curNs float64) {
		limit := baseNs * (1 + *tolerance)
		status := "ok"
		if curNs > limit {
			status = "REGRESSED"
			pass = false
		} else if curNs < baseNs {
			status = "improved"
		}
		fmt.Fprintf(w, "%-10s %10.2f -> %10.2f ns/item  (limit %.2f)  %s\n",
			name, baseNs, curNs, limit, status)
	}
	for _, b := range base.Results {
		curNs, ok := curBy[b.Backend]
		if !ok {
			fmt.Fprintf(w, "%-10s %10.2f -> %10s            MISSING from current report\n",
				b.Backend, b.NsPerItem, "?")
			pass = false
			continue
		}
		verdict(b.Backend, b.NsPerItem, curNs)
	}
	if base.Serving != nil && cur.Serving != nil {
		verdict("serving", base.Serving.NsPerItem, cur.Serving.NsPerItem)
	}
	for _, c := range cur.Cluster {
		fmt.Fprintf(w, "cluster/%d  %37.2f ns/item  (informational, not gated)\n",
			c.Nodes, c.NsPerItem)
	}
	if pass {
		fmt.Fprintf(w, "PASS: no backend regressed more than %.0f%% against %s\n",
			*tolerance*100, *baseline)
	} else {
		fmt.Fprintf(w, "FAIL: regression beyond %.0f%% tolerance against %s\n",
			*tolerance*100, *baseline)
	}
	return pass, nil
}

func main() {
	pass, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if !pass {
		os.Exit(1)
	}
}
