// stream_source_test.go covers the sourced Permuter: the ChunkSource
// seam that lets an externally-stored permutation — a cluster shard, in
// production — ride the same streaming API as the in-process backends.
package randperm_test

import (
	"errors"
	"testing"

	"randperm"
)

// fakeSource serves a fixed permutation slice through the ChunkSource
// contract and records the traffic, with optional error injection and
// the optional Materialize/Materialized methods.
type fakeSource struct {
	perm         []int64
	chunks       int
	failWith     error
	materialized bool
}

func (f *fakeSource) Len() int64 { return int64(len(f.perm)) }

func (f *fakeSource) Chunk(dst []int64, start int64) (int, error) {
	f.chunks++
	if f.failWith != nil {
		return 0, f.failWith
	}
	m := int64(len(dst))
	if rest := f.Len() - start; rest < m {
		m = rest
	}
	copy(dst[:m], f.perm[start:start+m])
	return int(m), nil
}

func (f *fakeSource) Materialize() error { f.materialized = true; return f.failWith }
func (f *fakeSource) Materialized() bool { return f.materialized }

func TestPermuterSourceDelegates(t *testing.T) {
	src := &fakeSource{perm: []int64{3, 1, 4, 0, 2}}
	pm, err := randperm.NewPermuterSource(src, randperm.Options{Backend: randperm.BackendCluster, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if pm.Len() != 5 || pm.Backend() != randperm.BackendCluster {
		t.Fatalf("identity wrong: Len=%d Backend=%v", pm.Len(), pm.Backend())
	}
	buf := make([]int64, 3)
	if m, err := pm.Chunk(buf, 3); err != nil || m != 2 {
		t.Fatalf("ragged tail = %d, %v", m, err)
	}
	if buf[0] != 0 || buf[1] != 2 {
		t.Fatalf("tail values %v", buf[:2])
	}
	if _, err := pm.Chunk(buf, -1); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := pm.Chunk(buf, 6); err == nil {
		t.Error("start past the end accepted")
	}
	if got := pm.At(1); got != 1 {
		t.Errorf("At(1) = %d", got)
	}
	var got []int64
	for v := range pm.Iter() {
		got = append(got, v)
	}
	if len(got) != 5 || got[0] != 3 || got[4] != 2 {
		t.Errorf("Iter = %v", got)
	}
	// Early break.
	count := 0
	for range pm.Iter() {
		count++
		break
	}
	if count != 1 {
		t.Errorf("early break yielded %d", count)
	}
}

func TestPermuterSourceHooks(t *testing.T) {
	src := &fakeSource{perm: []int64{0, 1}}
	pm, err := randperm.NewPermuterSource(src, randperm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pm.Materialized() {
		t.Error("Materialized before Materialize")
	}
	if err := pm.Materialize(); err != nil {
		t.Fatal(err)
	}
	if !src.materialized || !pm.Materialized() {
		t.Error("Materialize not forwarded to the source")
	}
	// Reset is meaningless on storage the handle does not own.
	defer func() {
		if recover() == nil {
			t.Error("Reset on a sourced handle did not panic")
		}
	}()
	pm.Reset(2)
}

func TestPermuterSourceErrors(t *testing.T) {
	if _, err := randperm.NewPermuterSource(nil, randperm.Options{}); err == nil {
		t.Error("nil source accepted")
	}
	boom := errors.New("peer gone")
	src := &fakeSource{perm: []int64{0, 1, 2}, failWith: boom}
	pm, err := randperm.NewPermuterSource(src, randperm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pm.Chunk(make([]int64, 2), 0); !errors.Is(err, boom) {
		t.Errorf("Chunk error = %v, want %v", err, boom)
	}
}
