// Package randperm generates uniform random permutations of large data
// sets, sequentially and on a simulated coarse grained parallel machine,
// implementing Jens Gustedt's "Randomized Permutations in a Coarse
// Grained Parallel Environment" (INRIA RR-4639, 2002 / SPAA 2003).
//
// The paper's problem: a vector of n items lives in blocks on p
// processors; rearrange the items into prescribed target blocks so that
// every one of the n! permutations is equally likely (uniformity), with
// O(n) total work including random number generation and communication
// (work-optimality), and with no processor ever holding more than its
// block's worth of data (balance). Previous methods achieved at most two
// of the three.
//
// The solution separates concerns: first sample the p x p communication
// matrix A - whose entry a_ij says how many items block i sends to block
// j - from its exact distribution (a matrix generalization of the
// multivariate hypergeometric law), then route a_ij arbitrarily chosen
// items per processor pair and shuffle locally on both sides.
//
// The package exposes three layers:
//
//   - Sequential shuffling: Shuffle (Fisher-Yates), BlockShuffle (the
//     paper's cache-friendly outlook idea), Perm.
//   - Exact distribution sampling: Hypergeometric, MultivariateHypergeometric,
//     CommMatrix with its exact probability CommMatrixLogProb.
//   - Parallel shuffling: ParallelShuffle and ParallelShuffleBlocks run
//     the paper's Algorithm 1 on one of three interchangeable backends
//     (Options.Backend). BackendSim, the default, simulates the coarse
//     grained machine with goroutine "processors", with the
//     communication matrix sampled by Algorithm 3 at the root
//     (MatrixSeq), Algorithm 5 (MatrixLog, Theta(p log p) per processor)
//     or the cost-optimal Algorithm 6 (MatrixOpt, Theta(p) per
//     processor); a Report of per-processor work, communication volume
//     and random draws accompanies every run, making the paper's
//     resource bounds observable. BackendSharedMem executes the same
//     four phases directly on shared memory - the matrix sampled once,
//     its prefix sums turned into disjoint write offsets, items
//     scattered straight into the output by a goroutine worker pool -
//     trading the accounting for raw speed. BackendInPlace dispenses
//     with the matrix altogether: following the MergeShuffle algorithm
//     of Bacher, Bodini, Hollender and Lumbroso ("MergeShuffle: A Very
//     Fast, Parallel Random Permutation Algorithm", arXiv:1508.03167;
//     engineered for shared memory by Penschuck, arXiv:2302.03317) it
//     Fisher-Yates shuffles 2^k blocks concurrently and merges adjacent
//     runs pairwise with one random bit per placed item, touching no
//     per-item auxiliary memory. Options.Parallelism caps the worker
//     pool of the latter two; see ARCHITECTURE.md for the full layer
//     map and the per-backend determinism contract.
//
// All randomness flows from a single seed through per-block
// jump-separated xoshiro256++ streams (never bound to OS workers), so
// every result in this package is deterministic and reproducible, and
// the shared-memory backends are additionally independent of the worker
// count.
package randperm
