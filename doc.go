// Package randperm generates uniform random permutations of large data
// sets, sequentially and on a simulated coarse grained parallel machine,
// implementing Jens Gustedt's "Randomized Permutations in a Coarse
// Grained Parallel Environment" (INRIA RR-4639, 2002 / SPAA 2003).
//
// The paper's problem: a vector of n items lives in blocks on p
// processors; rearrange the items into prescribed target blocks so that
// every one of the n! permutations is equally likely (uniformity), with
// O(n) total work including random number generation and communication
// (work-optimality), and with no processor ever holding more than its
// block's worth of data (balance). Previous methods achieved at most two
// of the three.
//
// The solution separates concerns: first sample the p x p communication
// matrix A - whose entry a_ij says how many items block i sends to block
// j - from its exact distribution (a matrix generalization of the
// multivariate hypergeometric law), then route a_ij arbitrarily chosen
// items per processor pair and shuffle locally on both sides.
//
// The package exposes four layers:
//
//   - Sequential shuffling: Shuffle (Fisher-Yates), BlockShuffle (the
//     paper's cache-friendly outlook idea), Perm.
//   - Exact distribution sampling: Hypergeometric, MultivariateHypergeometric,
//     CommMatrix with its exact probability CommMatrixLogProb.
//   - Parallel shuffling: ParallelShuffle and ParallelShuffleBlocks run
//     the paper's Algorithm 1 on one of five interchangeable backends
//     (Options.Backend). BackendSim, the default, simulates the coarse
//     grained machine with goroutine "processors", with the
//     communication matrix sampled by Algorithm 3 at the root
//     (MatrixSeq), Algorithm 5 (MatrixLog, Theta(p log p) per processor)
//     or the cost-optimal Algorithm 6 (MatrixOpt, Theta(p) per
//     processor); a Report of per-processor work, communication volume
//     and random draws accompanies every run, making the paper's
//     resource bounds observable. BackendSharedMem executes the same
//     four phases directly on shared memory - the matrix sampled once,
//     its prefix sums turned into disjoint write offsets, items
//     scattered straight into the output by a goroutine worker pool -
//     trading the accounting for raw speed. BackendInPlace dispenses
//     with the matrix altogether: following the MergeShuffle algorithm
//     of Bacher, Bodini, Hollender and Lumbroso ("MergeShuffle: A Very
//     Fast, Parallel Random Permutation Algorithm", arXiv:1508.03167;
//     engineered for shared memory by Penschuck, arXiv:2302.03317) it
//     Fisher-Yates shuffles 2^k blocks concurrently and merges adjacent
//     runs pairwise with one random bit per placed item, touching no
//     per-item auxiliary memory. BackendBijective computes the
//     permutation instead of constructing it - a keyed variable-round
//     Feistel bijection with cycle-walking, after the bijective-function
//     designs of bandwidth-optimal GPU shuffling (Mitchell et al.,
//     arXiv:2106.06161) - in O(1) state per index; it is the one
//     backend that is not exactly uniform over S_n (a 2^64-key family
//     with uniform marginals; gate with Backend.ExactUniform).
//     BackendCluster runs the blocked decomposition - even blocks,
//     exact fixed-margin matrix - whose geometry survives a network
//     boundary: an N-node permd cluster (internal/cluster) computes
//     the identical bytes cooperatively, each node owning a shard.
//     Options.Parallelism caps the worker pool of the non-sim
//     backends; see ARCHITECTURE.md for the full layer map, the
//     choosing-a-backend decision table and the per-backend
//     determinism contract.
//   - Streaming: NewPermuter returns a Permuter, a reusable handle on
//     one fixed permutation of [0, n) that is pulled on demand - Chunk
//     fills a caller-owned page, Iter ranges over the whole order, At
//     answers point queries, Reset re-keys - instead of materialized in
//     one slice. On BackendBijective the handle holds O(1) state and
//     Chunk allocates nothing, so n may exceed memory (the suite
//     streams chunks of an n = 2^40 permutation); on the materializing
//     backends the handle builds the permutation lazily once and
//     replays it with buffer reuse.
//
// All randomness flows from a single seed through per-block
// jump-separated xoshiro256++ streams (never bound to OS workers), so
// every result in this package is deterministic and reproducible, and
// the shared-memory backends are additionally independent of the worker
// count; the bijective backend is a pure function of (Seed, n).
//
// Above the package sits the permd daemon (cmd/permd, backed by
// internal/service): the same machinery as a long-running HTTP service
// with a single-flight LRU of Permuter handles, streamed chunk
// responses and Prometheus metrics — deployable standalone or as an
// N-node cluster in which each daemon owns one shard of the permuted
// domain and serves the rest by routing (internal/cluster; the
// ChunkSource seam and NewPermuterSource are how such externally
// backed permutations ride the streaming API). The Materialize,
// Materialized and OnMaterialize methods on Permuter exist for such
// handle-reusing callers. See the service layer and cluster layer
// sections of ARCHITECTURE.md, the operator guide in README.md, and
// the deployment runbook in OPERATIONS.md.
package randperm
