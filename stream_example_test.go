package randperm_test

import (
	"fmt"

	"randperm"
)

// A Permuter is the streaming form of ParallelShuffle: a handle on one
// fixed permutation of [0, n) that hands out any chunk on demand. On
// BackendBijective nothing is ever materialized, so n may be far larger
// than memory — here a permutation of a trillion indexes costs a few
// round keys.
func ExampleNewPermuter() {
	pm, err := randperm.NewPermuter(1_000_000_000_000, randperm.Options{
		Seed:    42,
		Backend: randperm.BackendBijective,
	})
	if err != nil {
		panic(err)
	}
	// One position of the trillion-element permutation, in O(1).
	v := pm.At(999_999_999_999)
	fmt.Println(pm.Len(), v >= 0 && v < pm.Len())
	// Output: 1000000000000 true
}

// Chunk pulls consecutive positions of the permutation into a
// caller-owned buffer: dst[k] = π(start+k). Pulling in pages is
// equivalent to one big pull — chunk boundaries never change the
// permutation — and a short count signals the end of the index space.
func ExamplePermuter_Chunk() {
	pm, err := randperm.NewPermuter(10, randperm.Options{
		Seed:    7,
		Backend: randperm.BackendBijective,
	})
	if err != nil {
		panic(err)
	}
	var page [4]int64
	var got []int64
	for start := int64(0); ; {
		n, err := pm.Chunk(page[:], start)
		if err != nil {
			panic(err)
		}
		if n == 0 {
			break
		}
		got = append(got, page[:n]...)
		start += int64(n)
	}
	// The pages assemble into a permutation of 0..9.
	var sum int64
	for _, v := range got {
		sum += v
	}
	fmt.Println(len(got), sum)
	// Output: 10 45
}

// Iter exposes the permutation as a Go range-over-func iterator. The
// same handle works on every backend: here the exactly-uniform InPlace
// engine materializes the permutation lazily on first use, and the
// iterator replays it.
func ExamplePermuter_Iter() {
	pm, err := randperm.NewPermuter(6, randperm.Options{
		Procs:   2,
		Seed:    3,
		Backend: randperm.BackendInPlace,
	})
	if err != nil {
		panic(err)
	}
	seen := make([]bool, pm.Len())
	count := 0
	for v := range pm.Iter() {
		seen[v] = true
		count++
	}
	all := true
	for _, ok := range seen {
		all = all && ok
	}
	fmt.Println(count, all)
	// Output: 6 true
}
