package randperm

import (
	"fmt"

	"randperm/internal/core"
	"randperm/internal/pro"
)

// MatrixAlg selects how the parallel shuffle samples its communication
// matrix (Problem 2 of the paper).
type MatrixAlg int

const (
	// MatrixOpt is the paper's cost-optimal Algorithm 6 (default):
	// Theta(p) time, communication and random draws per processor.
	MatrixOpt MatrixAlg = iota
	// MatrixLog is the paper's Algorithm 5: simpler, but a log p
	// factor over optimal per processor.
	MatrixLog
	// MatrixSeq concentrates the sequential Algorithm 3 at processor 0
	// and scatters the rows: O(p^2) work at the root.
	MatrixSeq
)

func (a MatrixAlg) internal() core.MatrixAlg {
	switch a {
	case MatrixLog:
		return core.MatrixLog
	case MatrixSeq:
		return core.MatrixSeq
	default:
		return core.MatrixOpt
	}
}

// String names the algorithm.
func (a MatrixAlg) String() string { return a.internal().String() }

// Options configures a parallel shuffle.
type Options struct {
	// Procs is the number of simulated processors p (default 8). The
	// paper's coarseness assumption is p <= sqrt(n).
	Procs int
	// Seed drives all randomness; runs are reproducible in it.
	Seed uint64
	// Matrix selects the matrix sampling algorithm (default MatrixOpt).
	Matrix MatrixAlg
}

func (o Options) withDefaults() Options {
	if o.Procs == 0 {
		o.Procs = 8
	}
	return o
}

// Report summarizes the resources one parallel run consumed, the
// quantities bounded by Theorem 1 of the paper.
type Report struct {
	Procs      int   // machine size p
	Supersteps int   // number of BSP supersteps
	MaxOps     int64 // max per-processor local operations (balance)
	TotalOps   int64 // summed operations (work-optimality)
	MaxBytes   int64 // max per-processor communication volume
	MaxDraws   int64 // max per-processor raw random draws
	TotalDraws int64 // summed raw random draws
}

func reportFrom(m *pro.Machine) Report {
	r := m.Report()
	return Report{
		Procs:      r.P,
		Supersteps: r.Supersteps,
		MaxOps:     r.MaxOps(),
		TotalOps:   r.TotalOps(),
		MaxBytes:   r.MaxBytes(),
		MaxDraws:   r.MaxDraws(),
		TotalDraws: r.TotalDraws(),
	}
}

// ParallelShuffle returns a uniformly shuffled copy of data, computed by
// the paper's Algorithm 1 on opt.Procs simulated processors, together
// with the resource report. The input is not modified.
func ParallelShuffle[T any](data []T, opt Options) ([]T, Report, error) {
	opt = opt.withDefaults()
	if opt.Procs < 1 {
		return nil, Report{}, fmt.Errorf("randperm: Procs must be positive, got %d", opt.Procs)
	}
	out, m, err := core.PermuteSlice(data, opt.Procs, core.Config{
		Seed:   opt.Seed,
		Matrix: opt.Matrix.internal(),
	})
	if err != nil {
		return nil, Report{}, err
	}
	return out, reportFrom(m), nil
}

// ParallelShuffleBlocks is the general form of Problem 1: the input
// arrives as one block per processor and the output is redistributed
// into blocks of the given target sizes (which must total the same
// number of items). Every global permutation of the items is equally
// likely.
func ParallelShuffleBlocks[T any](blocks [][]T, targetSizes []int64, opt Options) ([][]T, Report, error) {
	opt = opt.withDefaults()
	out, m, err := core.Permute(blocks, targetSizes, core.Config{
		Seed:   opt.Seed,
		Matrix: opt.Matrix.internal(),
	})
	if err != nil {
		return nil, Report{}, err
	}
	return out, reportFrom(m), nil
}

// EvenBlocks returns n split into p block sizes as evenly as possible,
// the layout the paper's symmetric algorithms assume.
func EvenBlocks(n int64, p int) []int64 {
	return core.EvenBlocks(n, p)
}
