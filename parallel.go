package randperm

import (
	"fmt"
	"runtime"

	"randperm/internal/core"
	"randperm/internal/engine"
	"randperm/internal/pro"
)

// Backend selects the execution engine behind ParallelShuffle and
// ParallelShuffleBlocks.
type Backend int

const (
	// BackendSim (the default) runs on the simulated PRO machine of the
	// paper: one goroutine per simulated processor, message passing
	// through mailboxes, and full superstep/byte/draw accounting in the
	// Report. This is the paper-fidelity path used by permverify and
	// the experiment harness.
	BackendSim Backend = iota
	// BackendSharedMem runs the same four phases of Algorithm 1
	// directly on shared memory, with no simulated machine at all: the
	// communication matrix is sampled once from its exact distribution,
	// its prefix sums become disjoint write offsets, and workers
	// scatter items straight into the output. Same uniform permutation
	// distribution, much faster; the Report carries no cost accounting
	// (only Procs is set) because nothing is simulated.
	BackendSharedMem
	// BackendInPlace is the MergeShuffle-style divide-and-conquer
	// engine (Bacher et al., arXiv:1508.03167): the array is split into
	// 2^k blocks (k from Options.Procs), each block is Fisher-Yates
	// shuffled concurrently, and adjacent runs are merged pairwise in k
	// parallel rounds using one random bit per placed item. It touches
	// no per-item auxiliary memory — no label arrays, no scatter buffer
	// — so beyond the API's single input copy the footprint is O(p).
	// Same uniform distribution; the Report carries only Procs.
	BackendInPlace
	// BackendBijective computes the permutation instead of constructing
	// it: a keyed variable-round Feistel bijection with cycle-walking
	// (internal/engine/bijective.go) maps each output index to a source
	// index in O(1) state, so any chunk of the result costs only the
	// indexes actually evaluated. It is the backend behind the streaming
	// Permuter API and the only backend that is NOT exactly uniform over
	// S_n: each Seed selects one exact permutation from a 2^64-key
	// family whose single-position marginals are uniform (chi-squared in
	// the test suite), but for n >= 21 most of the n! permutations are
	// unreachable. Gate exactness-sensitive callers on ExactUniform.
	// The Report carries only Procs.
	BackendBijective
	// BackendCluster is the blocked coarse-grained-multicomputer
	// decomposition: the slice is split into Procs even contiguous
	// blocks, the exact p x p communication matrix is sampled once, a
	// label arrangement routes every source block and every target
	// block is arranged in place — Algorithm 1 with the geometry that
	// survives a network boundary. In process it is a slower cousin of
	// BackendSharedMem (the fixed-margin matrix replaces the free
	// multinomial margins); its reason to exist is that N permd peers
	// can compute the same permutation cooperatively, each owning a
	// contiguous shard of the output, with byte-identical results for
	// the same (Seed, n, Procs) — see internal/cluster and
	// OPERATIONS.md. Exactly uniform; the Report carries only Procs.
	BackendCluster
)

// String names the backend ("sim", "shmem", "inplace", "bijective" or
// "cluster").
func (b Backend) String() string { return b.internal().String() }

// ExactUniform reports whether the backend draws from the exactly
// uniform distribution over all n! permutations. It is false only for
// BackendBijective, whose keyed-family distribution is documented on
// the constant; statistical tooling (the experiment harness, permverify
// and any caller whose correctness depends on exact uniformity) must
// check this gate before accepting a backend.
func (b Backend) ExactUniform() bool { return b != BackendBijective }

func (b Backend) internal() engine.Backend {
	switch b {
	case BackendSharedMem:
		return engine.SharedMem
	case BackendInPlace:
		return engine.InPlace
	case BackendBijective:
		return engine.Bijective
	case BackendCluster:
		return engine.Cluster
	default:
		return engine.Sim
	}
}

// ParseBackend converts a flag value ("sim", "shmem", "inplace",
// "bijective", "cluster") into a Backend.
func ParseBackend(s string) (Backend, error) {
	eb, ok := engine.ParseBackend(s)
	if !ok {
		return 0, fmt.Errorf("randperm: unknown backend %q (want sim, shmem, inplace, bijective or cluster)", s)
	}
	switch eb {
	case engine.SharedMem:
		return BackendSharedMem, nil
	case engine.InPlace:
		return BackendInPlace, nil
	case engine.Bijective:
		return BackendBijective, nil
	case engine.Cluster:
		return BackendCluster, nil
	default:
		return BackendSim, nil
	}
}

// MatrixAlg selects how the parallel shuffle samples its communication
// matrix (Problem 2 of the paper).
type MatrixAlg int

const (
	// MatrixOpt is the paper's cost-optimal Algorithm 6 (default):
	// Theta(p) time, communication and random draws per processor.
	MatrixOpt MatrixAlg = iota
	// MatrixLog is the paper's Algorithm 5: simpler, but a log p
	// factor over optimal per processor.
	MatrixLog
	// MatrixSeq concentrates the sequential Algorithm 3 at processor 0
	// and scatters the rows: O(p^2) work at the root.
	MatrixSeq
)

func (a MatrixAlg) internal() core.MatrixAlg {
	switch a {
	case MatrixLog:
		return core.MatrixLog
	case MatrixSeq:
		return core.MatrixSeq
	default:
		return core.MatrixOpt
	}
}

// String names the algorithm.
func (a MatrixAlg) String() string { return a.internal().String() }

// Options configures a parallel shuffle.
type Options struct {
	// Procs is the decomposition width p: the number of simulated
	// processors on the Sim backend, the number of blocks on the
	// SharedMem and InPlace backends (default 8; InPlace rounds it up
	// to a power of two for its merge tree), and the scheduling chunk
	// count on the Bijective backend (where it cannot affect the
	// output: every index is computed independently). The paper's
	// coarseness assumption is p <= sqrt(n).
	Procs int
	// Seed drives all randomness; runs are reproducible in it.
	Seed uint64
	// Matrix selects the matrix sampling algorithm (default MatrixOpt).
	// The SharedMem backend ignores it: with shared memory there is
	// nothing to distribute, so the matrix is always sampled once with
	// the sequential Algorithm 3.
	Matrix MatrixAlg
	// Backend selects the execution engine (default BackendSim).
	Backend Backend
	// Parallelism caps the worker-pool goroutines of the SharedMem,
	// InPlace and Bijective backends (default GOMAXPROCS). It does not
	// affect the result: those backends bind randomness to blocks,
	// merge-tree nodes and index ranges rather than to workers, so
	// their output is deterministic in (Seed, Procs) alone — Bijective
	// in (Seed, Rounds, n) alone. The Sim backend ignores it and always
	// runs one goroutine per simulated processor.
	Parallelism int
	// Rounds sets the Feistel depth of BackendBijective (<= 0 means the
	// default, 12 rounds; every other backend ignores it). This is the
	// documented reduced-round mode: fewer rounds trade statistical
	// quality for evaluation speed, and the budget is stated in
	// BENCHMARKS.md (12 rounds shows no measurable marginal bias even on
	// two-bit Feistel halves; shallower networks fail chi-square tests
	// on small domains first). Each (Seed, Rounds) pair selects one
	// permutation from a distinct keyed family: outputs are versioned by
	// the pair, so changing Rounds is an explicit opt-out of the default
	// family's byte-determinism contract, never a silent drift — see the
	// determinism-contract note in ARCHITECTURE.md.
	Rounds int
}

func (o Options) withDefaults() Options {
	if o.Procs == 0 {
		o.Procs = 8
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// Report summarizes the resources one parallel run consumed, the
// quantities bounded by Theorem 1 of the paper. Only the Sim backend
// simulates the machine these quantities live on; SharedMem, InPlace
// and Bijective runs fill in Procs and leave the accounting fields
// zero.
type Report struct {
	Procs      int   // machine size p
	Supersteps int   // number of BSP supersteps
	MaxOps     int64 // max per-processor local operations (balance)
	TotalOps   int64 // summed operations (work-optimality)
	MaxBytes   int64 // max per-processor communication volume
	MaxDraws   int64 // max per-processor raw random draws
	TotalDraws int64 // summed raw random draws
}

func reportFrom(m *pro.Machine) Report {
	r := m.Report()
	return Report{
		Procs:      r.P,
		Supersteps: r.Supersteps,
		MaxOps:     r.MaxOps(),
		TotalOps:   r.TotalOps(),
		MaxBytes:   r.MaxBytes(),
		MaxDraws:   r.MaxDraws(),
		TotalDraws: r.TotalDraws(),
	}
}

// ParallelShuffle returns a uniformly shuffled copy of data, computed by
// the paper's Algorithm 1 on the selected backend (by default, opt.Procs
// simulated processors), together with the resource report - fully
// populated on BackendSim, Procs-only on the other backends. The input
// is not modified.
func ParallelShuffle[T any](data []T, opt Options) ([]T, Report, error) {
	return parallelShuffle(data, opt, nil)
}

// parallelShuffle is ParallelShuffle with an optional cancellation
// channel threaded into the engine worker pools. It exists for
// Permuter.MaterializeContext: a closed channel makes the engine stop
// claiming tasks and the call return engine.ErrCanceled, which the
// stream layer maps back onto the caller's context error. The Sim
// backend has no pool and ignores cancellation (its runs are bounded by
// the simulated machine's own size, not by n-word builds).
func parallelShuffle[T any](data []T, opt Options, cancel <-chan struct{}) ([]T, Report, error) {
	opt = opt.withDefaults()
	if opt.Procs < 1 {
		return nil, Report{}, fmt.Errorf("randperm: Procs must be positive, got %d", opt.Procs)
	}
	eopt := engine.Options{
		Workers: opt.Parallelism,
		Seed:    opt.Seed,
		Cancel:  cancel,
	}
	switch opt.Backend {
	case BackendSharedMem:
		out, err := engine.PermuteSlice(data, opt.Procs, eopt)
		if err != nil {
			return nil, Report{}, err
		}
		return out, Report{Procs: opt.Procs}, nil
	case BackendInPlace:
		out, err := engine.PermuteSliceInPlace(data, opt.Procs, eopt)
		if err != nil {
			return nil, Report{}, err
		}
		return out, Report{Procs: opt.Procs}, nil
	case BackendBijective:
		eopt.Rounds = opt.Rounds
		out, err := engine.PermuteSliceBijective(data, opt.Procs, eopt)
		if err != nil {
			return nil, Report{}, err
		}
		return out, Report{Procs: opt.Procs}, nil
	case BackendCluster:
		out, err := engine.PermuteSliceCGM(data, opt.Procs, eopt)
		if err != nil {
			return nil, Report{}, err
		}
		return out, Report{Procs: opt.Procs}, nil
	}
	out, m, err := core.PermuteSlice(data, opt.Procs, core.Config{
		Seed:   opt.Seed,
		Matrix: opt.Matrix.internal(),
	})
	if err != nil {
		return nil, Report{}, err
	}
	return out, reportFrom(m), nil
}

// ParallelShuffleBlocks is the general form of Problem 1: the input
// arrives as one block per processor and the output is redistributed
// into blocks of the given target sizes (which must total the same
// number of items). Every global permutation of the items is equally
// likely.
func ParallelShuffleBlocks[T any](blocks [][]T, targetSizes []int64, opt Options) ([][]T, Report, error) {
	opt = opt.withDefaults()
	switch opt.Backend {
	case BackendSharedMem:
		out, err := engine.PermuteBlocks(blocks, targetSizes, engine.Options{
			Workers: opt.Parallelism,
			Seed:    opt.Seed,
		})
		if err != nil {
			return nil, Report{}, err
		}
		return out, Report{Procs: len(blocks)}, nil
	case BackendInPlace:
		out, err := engine.PermuteBlocksInPlace(blocks, targetSizes, engine.Options{
			Workers: opt.Parallelism,
			Seed:    opt.Seed,
		})
		if err != nil {
			return nil, Report{}, err
		}
		return out, Report{Procs: len(blocks)}, nil
	case BackendCluster:
		// The blocked form IS the cluster decomposition: prescribed
		// margins, exact matrix, per-block streams — identical to the
		// shared-memory scatter.
		out, err := engine.PermuteBlocks(blocks, targetSizes, engine.Options{
			Workers: opt.Parallelism,
			Seed:    opt.Seed,
		})
		if err != nil {
			return nil, Report{}, err
		}
		return out, Report{Procs: len(blocks)}, nil
	case BackendBijective:
		out, err := engine.PermuteBlocksBijective(blocks, targetSizes, engine.Options{
			Workers: opt.Parallelism,
			Seed:    opt.Seed,
			Rounds:  opt.Rounds,
		})
		if err != nil {
			return nil, Report{}, err
		}
		return out, Report{Procs: len(blocks)}, nil
	}
	out, m, err := core.Permute(blocks, targetSizes, core.Config{
		Seed:   opt.Seed,
		Matrix: opt.Matrix.internal(),
	})
	if err != nil {
		return nil, Report{}, err
	}
	return out, reportFrom(m), nil
}

// EvenBlocks returns n split into p block sizes as evenly as possible,
// the layout the paper's symmetric algorithms assume.
func EvenBlocks(n int64, p int) []int64 {
	return core.EvenBlocks(n, p)
}
