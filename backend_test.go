// backend_test.go covers the execution-backend seam: the SharedMem
// engine must be a drop-in replacement for the simulated machine -- same
// API, same uniform permutation distribution -- differing only in speed
// and in what the Report carries.
package randperm_test

import (
	"runtime"
	"testing"

	"randperm"
	"randperm/internal/core"
	"randperm/internal/stats"
)

func iotaInt64(n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(i)
	}
	return v
}

func TestParseBackend(t *testing.T) {
	for s, want := range map[string]randperm.Backend{
		"sim":       randperm.BackendSim,
		"shmem":     randperm.BackendSharedMem,
		"inplace":   randperm.BackendInPlace,
		"bijective": randperm.BackendBijective,
		"cluster":   randperm.BackendCluster,
	} {
		got, err := randperm.ParseBackend(s)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", s, got, err, want)
		}
		if got.String() != s {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := randperm.ParseBackend("quantum"); err == nil {
		t.Error("ParseBackend accepted garbage")
	}
}

// TestSharedMemShuffle checks permutation validity, input preservation,
// and the Report contract across decomposition widths and worker counts.
func TestSharedMemShuffle(t *testing.T) {
	for _, procs := range []int{1, 4, 8, 64} {
		for _, par := range []int{0, 1, 3} {
			data := iotaInt64(1000)
			out, rep, err := randperm.ParallelShuffle(data, randperm.Options{
				Procs:       procs,
				Seed:        7,
				Backend:     randperm.BackendSharedMem,
				Parallelism: par,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Procs != procs {
				t.Errorf("procs=%d: report.Procs = %d", procs, rep.Procs)
			}
			seen := make([]bool, len(data))
			for _, v := range out {
				if seen[v] {
					t.Fatalf("procs=%d par=%d: duplicate %d", procs, par, v)
				}
				seen[v] = true
			}
			for i, v := range data {
				if v != int64(i) {
					t.Fatalf("procs=%d par=%d: input modified", procs, par)
				}
			}
		}
	}
}

// TestSharedMemReproducible: the SharedMem output is deterministic in
// (Seed, Procs) and independent of Parallelism, because randomness is
// bound to blocks rather than to worker goroutines.
func TestSharedMemReproducible(t *testing.T) {
	data := iotaInt64(500)
	var ref []int64
	for _, par := range []int{1, 2, 8} {
		out, _, err := randperm.ParallelShuffle(data, randperm.Options{
			Procs: 6, Seed: 42, Backend: randperm.BackendSharedMem, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = out
			continue
		}
		for i := range ref {
			if out[i] != ref[i] {
				t.Fatalf("parallelism=%d diverged at index %d", par, i)
			}
		}
	}
}

// TestInPlaceShuffle mirrors TestSharedMemShuffle for the MergeShuffle
// backend: permutation validity, input preservation, and the Report
// contract across decomposition widths (including non-powers of two)
// and worker counts.
func TestInPlaceShuffle(t *testing.T) {
	for _, procs := range []int{1, 3, 8, 64} {
		for _, par := range []int{0, 1, 3} {
			data := iotaInt64(1000)
			out, rep, err := randperm.ParallelShuffle(data, randperm.Options{
				Procs:       procs,
				Seed:        7,
				Backend:     randperm.BackendInPlace,
				Parallelism: par,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Procs != procs {
				t.Errorf("procs=%d: report.Procs = %d", procs, rep.Procs)
			}
			seen := make([]bool, len(data))
			for _, v := range out {
				if seen[v] {
					t.Fatalf("procs=%d par=%d: duplicate %d", procs, par, v)
				}
				seen[v] = true
			}
			for i, v := range data {
				if v != int64(i) {
					t.Fatalf("procs=%d par=%d: input modified", procs, par)
				}
			}
		}
	}
}

// TestInPlaceParallelismEquivalence: the in-place output is
// deterministic in (Seed, Procs) alone — Parallelism=1 and
// Parallelism=GOMAXPROCS (and anything between) must produce the
// identical permutation, because randomness is bound to merge-tree
// nodes, never to pool workers.
func TestInPlaceParallelismEquivalence(t *testing.T) {
	data := iotaInt64(5000)
	var ref []int64
	for _, par := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		out, _, err := randperm.ParallelShuffle(data, randperm.Options{
			Procs: 8, Seed: 42, Backend: randperm.BackendInPlace, Parallelism: par,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = out
			continue
		}
		for i := range ref {
			if out[i] != ref[i] {
				t.Fatalf("parallelism=%d diverged at index %d", par, i)
			}
		}
	}
}

func TestInPlaceShuffleBlocks(t *testing.T) {
	blocks := [][]string{{"a", "b", "c"}, {"d"}, {"e", "f"}}
	target := []int64{2, 2, 2}
	out, rep, err := randperm.ParallelShuffleBlocks(blocks, target, randperm.Options{
		Seed: 11, Backend: randperm.BackendInPlace,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Procs != len(blocks) {
		t.Errorf("report.Procs = %d, want %d", rep.Procs, len(blocks))
	}
	if err := core.CheckPermutation(blocks, out, target); err != nil {
		t.Fatal(err)
	}
	if _, _, err := randperm.ParallelShuffleBlocks(blocks, []int64{5, 5}, randperm.Options{
		Backend: randperm.BackendInPlace,
	}); err == nil {
		t.Error("no error for mismatched target sizes")
	}
}

func TestSharedMemShuffleBlocks(t *testing.T) {
	blocks := [][]string{{"a", "b", "c"}, {"d"}, {"e", "f"}}
	target := []int64{2, 2, 2}
	out, rep, err := randperm.ParallelShuffleBlocks(blocks, target, randperm.Options{
		Seed: 11, Backend: randperm.BackendSharedMem,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Procs != len(blocks) {
		t.Errorf("report.Procs = %d, want %d", rep.Procs, len(blocks))
	}
	if err := core.CheckPermutation(blocks, out, target); err != nil {
		t.Fatal(err)
	}
	if _, _, err := randperm.ParallelShuffleBlocks(blocks, []int64{5, 5}, randperm.Options{
		Backend: randperm.BackendSharedMem,
	}); err == nil {
		t.Error("no error for mismatched target sizes")
	}
}

// TestBackendsUniform is the cross-backend equivalence test: with the
// same seed-derived streams feeding both engines, each backend must
// generate all n! permutations equally often (chi-square). The backends
// are free to produce different outputs per seed -- they consume the
// streams differently -- but the distributions must both be uniform.
func TestBackendsUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	const n = 4
	const trials = 24000
	nf := stats.Factorial(n)
	backends := []randperm.Backend{
		randperm.BackendSim, randperm.BackendSharedMem,
		randperm.BackendInPlace, randperm.BackendCluster,
	}
	for _, backend := range backends {
		counts := make([]int64, nf)
		for tr := 0; tr < trials; tr++ {
			out, _, err := randperm.ParallelShuffle(iotaInt64(n), randperm.Options{
				Procs:   2,
				Seed:    uint64(tr)*0x9E3779B97F4A7C15 + 5,
				Backend: backend,
			})
			if err != nil {
				t.Fatal(err)
			}
			counts[stats.RankPermInt64(out)]++
		}
		res, err := stats.ChiSquareUniform(counts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Reject(0.0005) {
			t.Errorf("backend=%v: non-uniform, %s", backend, res)
		}
	}
}

// TestSimReportUnchanged pins the Sim backend's cost accounting: the
// refactor onto the engine interface must not change what the simulated
// machine measures (the seed's values, byte for byte).
func TestSimReportUnchanged(t *testing.T) {
	data := iotaInt64(1 << 12)
	a, repA, err := randperm.ParallelShuffle(data, randperm.Options{Procs: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, repB, err := randperm.ParallelShuffle(data, randperm.Options{
		Procs: 8, Seed: 3, Backend: randperm.BackendSim, Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if repA != repB {
		t.Errorf("sim reports differ: %+v vs %+v", repA, repB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sim outputs differ at %d", i)
		}
	}
	// The exact values the seed codebase produced for this workload;
	// everything downstream of the seed is deterministic in it.
	want := randperm.Report{
		Procs: 8, Supersteps: 4,
		MaxOps: 2106, TotalOps: 16648,
		MaxBytes: 4384, MaxDraws: 1038, TotalDraws: 8225,
	}
	if repA != want {
		t.Errorf("sim report drifted from seed: got %+v, want %+v", repA, want)
	}
}
