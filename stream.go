package randperm

import (
	"context"
	"fmt"
	"iter"
	"sync"
	"sync/atomic"

	"randperm/internal/engine"
)

// A Permuter is a reusable handle on one fixed permutation of
// [0, n): the streaming form of the package's API. Where
// ParallelShuffle materializes an entire permuted slice in one call, a
// Permuter hands out the permutation chunk by chunk — a page of
// results, a shard of an ID space, a single position — so callers can
// walk data far larger than any one machine's memory, the coarse
// grained setting the source paper starts from.
//
// The handle amortizes setup across calls. On BackendBijective the
// permutation is never materialized at all: a keyed Feistel bijection
// (built once in NewPermuter) computes each position in O(1) state, so
// Chunk fills its destination with zero allocations regardless of n,
// and n may exceed available memory by any factor. On the materializing
// backends (Sim, SharedMem, InPlace, Cluster) the handle builds the
// full permutation lazily on first use — one n-word buffer, built once
// with the selected backend's engine and reused by every subsequent
// Chunk, Iter and At. A handle built by NewPermuterSource instead
// delegates every read to its ChunkSource — the permd cluster serves
// its sharded permutations this way, each node holding only its own
// n/N-word shard and fetching the rest from the owning peers.
//
// Determinism: the permutation a Permuter exposes is a pure function of
// (Backend, Seed, Procs, n) — on BackendBijective, of (Seed, Rounds, n),
// where Rounds <= 0 is the default 12-round family —
// and is independent of Parallelism, of chunk boundaries, and of how
// many times or in what order the chunks are pulled. Pulling chunk
// [a, b) today and chunk [b, c) tomorrow yields exactly the
// concatenation a single [a, c) pull would have.
//
// Concurrency: Chunk, At, Iter and Len are safe for concurrent use —
// on BackendBijective they are pure computation, and the materializing
// backends build under a sync.Once and only read afterwards. Reset is
// the one exception: it re-keys the handle and must not run
// concurrently with any other method.
//
// Distribution: the Permuter inherits its backend's distribution.
// Sim, SharedMem and InPlace draw from the exactly uniform law over all
// n! permutations; BackendBijective draws from a 2^64-key family with
// uniform single-position marginals (the precise statement lives on the
// BackendBijective constant). Check Options.Backend.ExactUniform when
// exactness matters.
type Permuter struct {
	n    int64
	opt  Options
	bij  *engine.Bijection       // non-nil iff opt.Backend == BackendBijective
	mat  atomic.Pointer[permMat] // lazily-built state of the materializing backends
	src  ChunkSource             // non-nil iff built by NewPermuterSource
	hook func()                  // OnMaterialize callback, fired inside each build
}

// A ChunkSource is a pluggable backing for a Permuter: anything that
// can fill chunks of one fixed permutation of [0, Len()). It is how a
// permutation whose storage lives somewhere else — sharded across the
// nodes of a permd cluster, most importantly — is served through the
// exact same streaming API, handle cache and HTTP endpoints as the
// in-process backends. Chunk follows the Permuter.Chunk contract:
// dst[k] = π(start+k), short count at the end of the domain, safe for
// concurrent use. A source may also implement Materialize() error
// and/or Materialized() bool; a sourced Permuter forwards both.
type ChunkSource interface {
	// Len returns the domain size n.
	Len() int64
	// Chunk fills dst with π(start) .. π(start+len(dst)-1), clamped to
	// the domain end, and returns how many values were written.
	Chunk(dst []int64, start int64) (int, error)
}

// permMat is the lazily-materialized permutation; a fresh one is
// installed by Reset — and by a failed or canceled build — so the
// sync.Once can be re-armed.
type permMat struct {
	once  sync.Once
	perm  []int64
	err   error
	built atomic.Bool // set after a successful build, for Materialized
}

// NewPermuter validates the options and returns a handle on the
// permutation of [0, n) they select. The call is cheap for every
// backend: key expansion on BackendBijective, and nothing but
// validation on the materializing backends, which defer their n-word
// build to the first access. n must be non-negative, and on the
// materializing backends must fit in memory when first accessed;
// BackendBijective has no such bound (n up to 2^62 is meaningful).
func NewPermuter(n int64, opt Options) (*Permuter, error) {
	if n < 0 {
		return nil, fmt.Errorf("randperm: NewPermuter with negative length %d", n)
	}
	opt = opt.withDefaults()
	if opt.Procs < 1 {
		return nil, fmt.Errorf("randperm: Procs must be positive, got %d", opt.Procs)
	}
	p := &Permuter{n: n, opt: opt}
	if opt.Backend == BackendBijective {
		p.bij = newBijection(n, opt)
	} else {
		p.mat.Store(&permMat{})
	}
	return p, nil
}

// newBijection builds the keyed bijection opt selects: the default
// 12-round family, or the (Seed, Rounds)-versioned family when
// Options.Rounds is set.
func newBijection(n int64, opt Options) *engine.Bijection {
	if opt.Rounds > 0 {
		return engine.NewBijectionRounds(n, opt.Seed, opt.Rounds)
	}
	return engine.NewBijection(n, opt.Seed)
}

// NewPermuterSource wraps src — a remote or otherwise externally-backed
// permutation — in a Permuter, so callers (and the permd service, whose
// cluster mode is the motivating user) handle every backend through one
// type. opt is advisory: Backend is reported by Backend() and Seed is
// carried for observability, but the permutation itself is whatever src
// serves. A sourced Permuter cannot be re-keyed: Reset panics, because
// the handle has no way to re-seed storage it does not own — construct
// a new source instead.
func NewPermuterSource(src ChunkSource, opt Options) (*Permuter, error) {
	if src == nil {
		return nil, fmt.Errorf("randperm: NewPermuterSource with nil source")
	}
	n := src.Len()
	if n < 0 {
		return nil, fmt.Errorf("randperm: source reports negative length %d", n)
	}
	return &Permuter{n: n, opt: opt.withDefaults(), src: src}, nil
}

// Len returns the length n of the permuted index space.
func (p *Permuter) Len() int64 { return p.n }

// Backend returns the backend the permutation is computed on.
func (p *Permuter) Backend() Backend { return p.opt.Backend }

// Chunk fills dst with consecutive positions of the permutation
// starting at start — dst[k] = π(start+k) — and returns how many values
// were written: min(len(dst), Len()-start), so a short count (with a
// nil error) signals the end of the index space. start must be in
// [0, Len()]. On BackendBijective the call performs no allocation and
// touches O(1) state per value; on the materializing backends the first
// Chunk (or At or Iter) across the handle's lifetime builds the full
// permutation once and every call after that is a copy. Chunk is safe
// for concurrent use, including overlapping ranges.
func (p *Permuter) Chunk(dst []int64, start int64) (int, error) {
	if start < 0 || start > p.n {
		return 0, fmt.Errorf("randperm: Chunk start %d outside [0, %d]", start, p.n)
	}
	m := int64(len(dst))
	if rest := p.n - start; rest < m {
		m = rest
	}
	if p.src != nil {
		return p.src.Chunk(dst[:m], start)
	}
	if p.bij != nil {
		// Batch evaluation: the chunk's indices run through the Feistel
		// network bijLanes at a time (see engine.Bijection.Chunk), which
		// is what makes the streamed path's ns/index competitive with
		// the materializing backends.
		p.bij.Chunk(dst[:m], start)
		return int(m), nil
	}
	perm, err := p.materialize()
	if err != nil {
		return 0, err
	}
	copy(dst[:m], perm[start:start+m])
	return int(m), nil
}

// At returns π(i), the single position i of the permutation. i must be
// in [0, Len()). O(1) on BackendBijective; on the materializing
// backends it triggers the same one-time build as Chunk.
func (p *Permuter) At(i int64) int64 {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("randperm: Permuter.At(%d) outside [0, %d)", i, p.n))
	}
	if p.src != nil {
		var one [1]int64
		if _, err := p.src.Chunk(one[:], i); err != nil {
			panic(err)
		}
		return one[0]
	}
	if p.bij != nil {
		return p.bij.Index(i)
	}
	perm, err := p.materialize()
	if err != nil {
		panic(err)
	}
	return perm[i]
}

// Iter returns a Go 1.23+ range-over-func iterator yielding
// π(0), π(1), …, π(n-1) in order:
//
//	for v := range p.Iter() { ... }
//
// Early break is honored. On BackendBijective the iteration holds O(1)
// state; on the materializing backends it reads the one lazily-built
// permutation (and panics in the vanishingly unlikely case that build
// fails — callers that must handle that error should pull through Chunk
// instead).
func (p *Permuter) Iter() iter.Seq[int64] {
	return func(yield func(int64) bool) {
		if p.src != nil {
			buf := make([]int64, min(p.n, 1<<16))
			for pos := int64(0); pos < p.n; {
				m, err := p.src.Chunk(buf, pos)
				if err != nil {
					panic(err)
				}
				for _, v := range buf[:m] {
					if !yield(v) {
						return
					}
				}
				pos += int64(m)
			}
			return
		}
		if p.bij != nil {
			for i := int64(0); i < p.n; i++ {
				if !yield(p.bij.Index(i)) {
					return
				}
			}
			return
		}
		perm, err := p.materialize()
		if err != nil {
			panic(err)
		}
		for _, v := range perm {
			if !yield(v) {
				return
			}
		}
	}
}

// Reset re-keys the handle to a new seed, as if it had been constructed
// with NewPermuter(Len(), opt-with-new-Seed): the bijection is re-keyed
// in place and any materialized permutation is dropped and lazily
// rebuilt on next access. Reset must not be called concurrently with
// any other method on the handle. A sourced handle (NewPermuterSource)
// panics: it does not own the storage a re-key would have to rebuild.
func (p *Permuter) Reset(seed uint64) {
	if p.src != nil {
		panic("randperm: Reset on a source-backed Permuter; construct a new source instead")
	}
	p.opt.Seed = seed
	if p.opt.Backend == BackendBijective {
		p.bij = newBijection(p.n, p.opt)
		return
	}
	p.mat.Store(&permMat{})
}

// Materialized reports whether the handle's lazy build has already run.
// It is always false on BackendBijective, which never materializes
// anything, and flips to true (until the next Reset) once any Chunk, At,
// Iter or Materialize call on a materializing backend has completed the
// one-time build. Long-lived holders — a handle cache in a server, say —
// can use it to tell which cached handles are paying n words of memory
// and which are still cheap.
func (p *Permuter) Materialized() bool {
	if p.src != nil {
		if m, ok := p.src.(interface{ Materialized() bool }); ok {
			return m.Materialized()
		}
		return false
	}
	m := p.mat.Load()
	if m == nil {
		return false
	}
	return m.built.Load()
}

// Materialize forces the lazy build now instead of on first access, and
// reports its error. On BackendBijective it is a no-op returning nil.
// Use it to front-load the n-word build at handle-construction time —
// warming a cache entry, or surfacing the out-of-memory error where it
// can still be handled — rather than inside the first request that
// touches the handle. Like the accessors, it is safe for concurrent use
// and racing callers share one build.
func (p *Permuter) Materialize() error {
	return p.MaterializeContext(context.Background())
}

// MaterializeContext is Materialize bounded by a context: if ctx is
// canceled while the n-word build is running, the engine worker pool
// stops claiming tasks, the half-built permutation is discarded, and the
// call returns ctx's error. A canceled build re-arms the handle — the
// next access (or MaterializeContext call) starts a fresh build, exactly
// as if the canceled one had never run — so a server can abort the work
// a disconnected client asked for without poisoning the handle for the
// clients that stayed. Racing callers share one build; the governing
// context is the one whose call started it, and co-waiters that lose
// their builder this way also receive its cancellation error (their
// retry hits the re-armed handle). On BackendBijective and on sources
// without a Materialize method it is a no-op returning nil.
func (p *Permuter) MaterializeContext(ctx context.Context) error {
	if p.src != nil {
		if m, ok := p.src.(interface{ Materialize() error }); ok {
			return m.Materialize()
		}
		return nil
	}
	if p.bij != nil {
		return nil
	}
	_, err := p.materializeCtx(ctx)
	return err
}

// OnMaterialize registers fn to be called exactly once per lazy build,
// from inside whichever call (Chunk, At, Iter or Materialize) triggers
// it, after the permutation has been constructed. A Reset re-arms the
// build, so fn fires again if the re-keyed handle is accessed. It is a
// hook for handle-reusing callers that need to observe build cost —
// counting materializations in a server's metrics, logging slow builds —
// without wrapping every accessor. Register it before the handle is
// shared: OnMaterialize must not be called concurrently with any other
// method. Registering nil clears the hook; on BackendBijective the hook
// is retained but never fires.
func (p *Permuter) OnMaterialize(fn func()) { p.hook = fn }

// materialize builds (once) and returns the full permutation for the
// materializing backends, by running the selected backend's engine over
// the identity. Racing callers all observe the completed build.
func (p *Permuter) materialize() ([]int64, error) {
	return p.materializeCtx(context.Background())
}

// materializeCtx is materialize under a context: the build threads
// ctx.Done() into the engine worker pools, and a build that fails —
// canceled or otherwise — swaps a fresh permMat into place so the next
// accessor retries instead of replaying the error forever. The swap is
// a CompareAndSwap against the permMat that ran the build, so a Reset
// that raced in between is never clobbered.
func (p *Permuter) materializeCtx(ctx context.Context) ([]int64, error) {
	m := p.mat.Load()
	m.once.Do(func() {
		id := make([]int64, p.n)
		for i := range id {
			id[i] = int64(i)
		}
		m.perm, _, m.err = parallelShuffle(id, p.opt, ctx.Done())
		if m.err != nil && ctx.Err() != nil {
			m.err = fmt.Errorf("randperm: materialize: %w", ctx.Err())
		}
		if m.err != nil {
			p.mat.CompareAndSwap(m, &permMat{})
			return
		}
		if p.hook != nil {
			p.hook()
		}
		m.built.Store(true)
	})
	return m.perm, m.err
}
