package randperm_test

import (
	"math"
	"testing"
	"testing/quick"

	"randperm"
)

func TestNewSourceDeterministic(t *testing.T) {
	a, b := randperm.NewSource(5), randperm.NewSource(5)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	src := randperm.NewSource(1)
	x := make([]int, 1000)
	for i := range x {
		x[i] = i
	}
	randperm.Shuffle(src, x)
	seen := make([]bool, 1000)
	for _, v := range x {
		if seen[v] {
			t.Fatal("duplicate after shuffle")
		}
		seen[v] = true
	}
}

func TestPermValid(t *testing.T) {
	src := randperm.NewSource(2)
	p := randperm.Perm(src, 50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestBlockShuffleIsPermutation(t *testing.T) {
	src := randperm.NewSource(3)
	x := make([]int64, 100000)
	for i := range x {
		x[i] = int64(i)
	}
	randperm.BlockShuffle(src, x)
	seen := make([]bool, len(x))
	for _, v := range x {
		if seen[v] {
			t.Fatal("duplicate after block shuffle")
		}
		seen[v] = true
	}
}

func TestHypergeometricMoments(t *testing.T) {
	src := randperm.NewSource(4)
	const trials = 20000
	var sum float64
	for i := 0; i < trials; i++ {
		k := randperm.Hypergeometric(src, 100, 400, 600)
		if k < 0 || k > 100 {
			t.Fatalf("sample %d out of range", k)
		}
		sum += float64(k)
	}
	mean := sum / trials
	if math.Abs(mean-40) > 1 {
		t.Fatalf("mean %.2f, want 40", mean)
	}
}

func TestMultivariateHypergeometricSums(t *testing.T) {
	src := randperm.NewSource(5)
	classes := []int64{10, 20, 30}
	f := func(t8 uint8) bool {
		tt := int64(t8) % 61
		out := randperm.MultivariateHypergeometric(src, tt, classes)
		var total int64
		for i, v := range out {
			if v < 0 || v > classes[i] {
				return false
			}
			total += v
		}
		return total == tt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommMatrixMargins(t *testing.T) {
	src := randperm.NewSource(6)
	rows := []int64{5, 7, 3}
	cols := []int64{4, 4, 7}
	a := randperm.CommMatrix(src, rows, cols)
	for i, row := range a {
		var s int64
		for _, v := range row {
			if v < 0 {
				t.Fatal("negative entry")
			}
			s += v
		}
		if s != rows[i] {
			t.Fatalf("row %d sums to %d", i, s)
		}
	}
	for j := range cols {
		var s int64
		for i := range rows {
			s += a[i][j]
		}
		if s != cols[j] {
			t.Fatalf("col %d sums to %d", j, s)
		}
	}
}

func TestCommMatrixLogProb(t *testing.T) {
	rows := []int64{2, 2}
	cols := []int64{2, 2}
	// All three tables with these margins: a00 in {0,1,2} with
	// probabilities 1/6, 4/6, 1/6.
	p := math.Exp(randperm.CommMatrixLogProb([][]int64{{1, 1}, {1, 1}}, rows, cols))
	if math.Abs(p-4.0/6) > 1e-9 {
		t.Fatalf("P(balanced table) = %g, want 2/3", p)
	}
	bad := randperm.CommMatrixLogProb([][]int64{{2, 1}, {0, 1}}, rows, cols)
	if !math.IsInf(bad, -1) {
		t.Fatal("invalid table should have log-probability -inf")
	}
}

func TestParallelShuffleAllAlgs(t *testing.T) {
	data := make([]int64, 5000)
	for i := range data {
		data[i] = int64(i)
	}
	for _, alg := range []randperm.MatrixAlg{randperm.MatrixOpt, randperm.MatrixLog, randperm.MatrixSeq} {
		out, rep, err := randperm.ParallelShuffle(data, randperm.Options{
			Procs: 6, Seed: 9, Matrix: alg,
		})
		if err != nil {
			t.Fatalf("alg=%v: %v", alg, err)
		}
		if rep.Procs != 6 || rep.Supersteps == 0 {
			t.Fatalf("alg=%v: report %+v", alg, rep)
		}
		seen := make([]bool, len(data))
		for _, v := range out {
			if seen[v] {
				t.Fatalf("alg=%v: duplicate", alg)
			}
			seen[v] = true
		}
	}
}

func TestParallelShuffleDefaults(t *testing.T) {
	out, rep, err := randperm.ParallelShuffle([]int{1, 2, 3, 4, 5, 6, 7, 8, 9}, randperm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Procs != 8 {
		t.Fatalf("default procs = %d, want 8", rep.Procs)
	}
	if len(out) != 9 {
		t.Fatal("length changed")
	}
}

func TestParallelShuffleBlocks(t *testing.T) {
	blocks := [][]string{{"a", "b", "c"}, {"d"}, {"e", "f"}}
	target := []int64{2, 2, 2}
	out, _, err := randperm.ParallelShuffleBlocks(blocks, target, randperm.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for i, b := range out {
		if int64(len(b)) != target[i] {
			t.Fatalf("block %d has %d items", i, len(b))
		}
		for _, v := range b {
			if got[v] {
				t.Fatalf("duplicate %q", v)
			}
			got[v] = true
		}
	}
	if len(got) != 6 {
		t.Fatalf("%d distinct items", len(got))
	}
}

func TestParallelShuffleBlocksBadSizes(t *testing.T) {
	if _, _, err := randperm.ParallelShuffleBlocks(
		[][]int{{1, 2}}, []int64{3}, randperm.Options{}); err == nil {
		t.Fatal("mismatched totals accepted")
	}
}

func TestEvenBlocks(t *testing.T) {
	sizes := randperm.EvenBlocks(10, 3)
	if len(sizes) != 3 || sizes[0]+sizes[1]+sizes[2] != 10 {
		t.Fatalf("EvenBlocks = %v", sizes)
	}
}

func TestMatrixAlgString(t *testing.T) {
	if randperm.MatrixOpt.String() != "opt" ||
		randperm.MatrixLog.String() != "log" ||
		randperm.MatrixSeq.String() != "seq" {
		t.Fatal("MatrixAlg names wrong")
	}
}

func TestParallelShuffleReproducible(t *testing.T) {
	data := []int{1, 2, 3, 4, 5, 6, 7, 8}
	a, _, _ := randperm.ParallelShuffle(data, randperm.Options{Procs: 4, Seed: 42})
	b, _, _ := randperm.ParallelShuffle(data, randperm.Options{Procs: 4, Seed: 42})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same options diverged")
		}
	}
}
