package randperm_test

import (
	"testing"

	"randperm"
)

func TestCommMatrixParallelMargins(t *testing.T) {
	rows := []int64{10, 20, 30, 40}
	cols := []int64{25, 25, 25, 25}
	for _, alg := range []randperm.MatrixAlg{randperm.MatrixOpt, randperm.MatrixLog, randperm.MatrixSeq} {
		a, rep, err := randperm.CommMatrixParallel(rows, cols, randperm.Options{
			Seed: 3, Matrix: alg,
		})
		if err != nil {
			t.Fatalf("alg=%v: %v", alg, err)
		}
		if rep.Procs != 4 {
			t.Fatalf("alg=%v: report procs = %d", alg, rep.Procs)
		}
		for i, row := range a {
			var s int64
			for _, v := range row {
				s += v
			}
			if s != rows[i] {
				t.Fatalf("alg=%v: row %d sums to %d", alg, i, s)
			}
		}
		for j := range cols {
			var s int64
			for i := range rows {
				s += a[i][j]
			}
			if s != cols[j] {
				t.Fatalf("alg=%v: col %d sums to %d", alg, j, s)
			}
		}
	}
}

func TestCommMatrixParallelEmpty(t *testing.T) {
	if _, _, err := randperm.CommMatrixParallel(nil, nil, randperm.Options{}); err == nil {
		t.Fatal("empty margins accepted")
	}
}

func TestExternalShuffle(t *testing.T) {
	src := randperm.NewSource(9)
	const n = 10000
	data := make([]int64, n)
	for i := range data {
		data[i] = int64(i)
	}
	stats, err := randperm.ExternalShuffle(src, data, 64, 1024)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, n)
	for _, v := range data {
		if v < 0 || v >= n || seen[v] {
			t.Fatal("not a permutation")
		}
		seen[v] = true
	}
	if stats.Blocks != (n+63)/64 {
		t.Fatalf("blocks = %d", stats.Blocks)
	}
	if stats.IOs() == 0 || stats.Reads == 0 || stats.Writes == 0 {
		t.Fatalf("I/O counters empty: %+v", stats)
	}
	// Streaming bound: far fewer I/Os than items.
	if stats.IOs() > n/2 {
		t.Fatalf("external shuffle used %d I/Os for %d items", stats.IOs(), n)
	}
}

func TestExternalShuffleErrors(t *testing.T) {
	src := randperm.NewSource(1)
	if _, err := randperm.ExternalShuffle(src, make([]int64, 10), 0, 100); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, err := randperm.ExternalShuffle(src, make([]int64, 10), 8, 8); err == nil {
		t.Fatal("tiny memory accepted")
	}
}

// customSource checks that user-provided Sources work through the
// adapter path.
type customSource struct{ state uint64 }

func (c *customSource) Uint64() uint64 {
	c.state = c.state*6364136223846793005 + 1442695040888963407
	return c.state
}

func TestExternalShuffleCustomSource(t *testing.T) {
	data := make([]int64, 500)
	for i := range data {
		data[i] = int64(i)
	}
	if _, err := randperm.ExternalShuffle(&customSource{state: 7}, data, 16, 128); err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(data))
	for _, v := range data {
		if seen[v] {
			t.Fatal("duplicate")
		}
		seen[v] = true
	}
}
