// stream_test.go covers the streaming surface: a Permuter must expose
// exactly the permutation its backend's materializing path applies —
// chunk by chunk, position by position, or as one iterator — with
// determinism across chunk boundaries and worker counts, safe
// concurrent pulls, and (on BackendBijective) no allocation at all.
package randperm_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"randperm"
)

var allBackends = []randperm.Backend{
	randperm.BackendSim,
	randperm.BackendSharedMem,
	randperm.BackendInPlace,
	randperm.BackendBijective,
	randperm.BackendCluster,
}

// TestPermuterMatchesShuffle: for every backend, the streamed
// permutation must satisfy out[i] = data[π(i)] against the same
// options' ParallelShuffle — the consistency contract that makes Chunk
// a drop-in replay of a materialized run.
func TestPermuterMatchesShuffle(t *testing.T) {
	const n = 5000
	optFor := func(b randperm.Backend) randperm.Options {
		return randperm.Options{Procs: 4, Seed: 11, Backend: b}
	}
	for _, backend := range allBackends {
		data := iotaInt64(n)
		out, _, err := randperm.ParallelShuffle(data, optFor(backend))
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		pm, err := randperm.NewPermuter(n, optFor(backend))
		if err != nil {
			t.Fatalf("%v: %v", backend, err)
		}
		if pm.Len() != n || pm.Backend() != backend {
			t.Fatalf("%v: Len=%d Backend=%v", backend, pm.Len(), pm.Backend())
		}
		// Full pull in one chunk.
		got := make([]int64, n)
		if m, err := pm.Chunk(got, 0); err != nil || m != n {
			t.Fatalf("%v: Chunk = %d, %v", backend, m, err)
		}
		for i := range out {
			if out[i] != data[got[i]] {
				t.Fatalf("%v: out[%d] = %d, data[π(%d)] = %d", backend, i, out[i], i, data[got[i]])
			}
		}
		// Iter agrees with Chunk, and early break works.
		i := int64(0)
		for v := range pm.Iter() {
			if v != got[i] {
				t.Fatalf("%v: Iter[%d] = %d, Chunk said %d", backend, i, v, got[i])
			}
			i++
			if i == n/2 {
				break
			}
		}
		if i != n/2 {
			t.Fatalf("%v: early break yielded %d values", backend, i)
		}
		// At agrees pointwise on a sample.
		for _, idx := range []int64{0, 1, n / 3, n - 1} {
			if pm.At(idx) != got[idx] {
				t.Fatalf("%v: At(%d) = %d, want %d", backend, idx, pm.At(idx), got[idx])
			}
		}
	}
}

// TestPermuterChunkBoundaries: reassembling the permutation from
// chunks of any size — including ragged final chunks and single-element
// pulls — must be independent of the chunking, for every backend and
// worker count.
func TestPermuterChunkBoundaries(t *testing.T) {
	const n = 2377 // prime, so every chunk size is ragged
	for _, backend := range allBackends {
		var want []int64
		for _, chunkSize := range []int{n, 1000, 64, 7, 1} {
			for _, par := range []int{1, 3} {
				pm, err := randperm.NewPermuter(n, randperm.Options{
					Procs: 4, Seed: 23, Backend: backend, Parallelism: par,
				})
				if err != nil {
					t.Fatal(err)
				}
				got := make([]int64, 0, n)
				buf := make([]int64, chunkSize)
				for start := int64(0); ; {
					m, err := pm.Chunk(buf, start)
					if err != nil {
						t.Fatalf("%v chunk=%d: %v", backend, chunkSize, err)
					}
					if m == 0 {
						break
					}
					got = append(got, buf[:m]...)
					start += int64(m)
				}
				if len(got) != n {
					t.Fatalf("%v chunk=%d: assembled %d values", backend, chunkSize, len(got))
				}
				if want == nil {
					want = got
					continue
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%v chunk=%d par=%d: differs at %d", backend, chunkSize, par, i)
					}
				}
			}
		}
		// And it is a permutation.
		seen := make([]bool, n)
		for _, v := range want {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("%v: not a permutation at %d", backend, v)
			}
			seen[v] = true
		}
	}
}

// TestPermuterConcurrentChunk: many goroutines pulling overlapping
// chunks from one handle — the -race coverage the streaming contract
// promises. The materializing backends race on the lazy build; the
// bijective backend races on nothing but must still agree.
func TestPermuterConcurrentChunk(t *testing.T) {
	const (
		n          = 20000
		goroutines = 8
		chunk      = 512
	)
	for _, backend := range allBackends {
		pm, err := randperm.NewPermuter(n, randperm.Options{
			Procs: 4, Seed: 31, Backend: backend,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]int64, n)
		if _, err := pm.Chunk(want, 0); err != nil {
			t.Fatal(err)
		}
		pm.Reset(77) // re-key so the concurrent pulls also race the rebuild
		want = make([]int64, n)
		results := make([][]int64, goroutines)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				out := make([]int64, 0, n)
				buf := make([]int64, chunk)
				// Each goroutine starts at a different offset and wraps,
				// so ranges overlap between goroutines.
				startAt := int64(g) * (n / goroutines)
				for pulled := int64(0); pulled < n; {
					start := (startAt + pulled) % n
					m := chunk
					if rem := n - start; rem < int64(m) {
						m = int(rem)
					}
					mm, err := pm.Chunk(buf[:m], start)
					if err != nil || mm != m {
						t.Errorf("%v g=%d: Chunk = %d, %v", backend, g, mm, err)
						return
					}
					out = append(out, buf[:mm]...)
					pulled += int64(mm)
				}
				results[g] = out
			}(g)
		}
		wg.Wait()
		if _, err := pm.Chunk(want, 0); err != nil {
			t.Fatal(err)
		}
		for g, out := range results {
			if out == nil {
				t.Fatalf("%v: goroutine %d failed", backend, g)
			}
			startAt := int64(g) * (n / goroutines)
			for k, v := range out {
				if v != want[(startAt+int64(k))%n] {
					t.Fatalf("%v g=%d: position %d disagrees", backend, g, k)
				}
			}
		}
	}
}

// TestPermuterBijectiveNoAlloc is the acceptance check of the streaming
// subsystem: on BackendBijective a Permuter over an index space of
// 2^40 — eight terabytes if it were materialized — serves a 1e6-index
// chunk range with zero allocations per call, proving no n-sized buffer
// ever exists.
func TestPermuterBijectiveNoAlloc(t *testing.T) {
	const n = int64(1) << 40
	pm, err := randperm.NewPermuter(n, randperm.Options{
		Seed: 5, Backend: randperm.BackendBijective,
	})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int64, 1_000_000)
	start := n/2 - 500_000
	allocs := testing.AllocsPerRun(3, func() {
		m, err := pm.Chunk(dst, start)
		if err != nil || m != len(dst) {
			t.Fatalf("Chunk = %d, %v", m, err)
		}
	})
	if allocs != 0 {
		t.Errorf("Chunk allocated %v times per call; want 0", allocs)
	}
	// The chunk really is a slice of a permutation of [0, 2^40): values
	// in range, no duplicates within the chunk, and each position
	// round-trips through the pointwise accessor.
	seen := make(map[int64]bool, len(dst))
	for k, v := range dst {
		if v < 0 || v >= n {
			t.Fatalf("dst[%d] = %d outside domain", k, v)
		}
		if seen[v] {
			t.Fatalf("duplicate value %d within chunk", v)
		}
		seen[v] = true
		if k < 16 && pm.At(start+int64(k)) != v {
			t.Fatalf("At(%d) = %d, Chunk said %d", start+int64(k), pm.At(start+int64(k)), v)
		}
	}
}

// TestPermuterReset: re-keying yields the same permutation a fresh
// handle with the new seed yields, on every backend.
func TestPermuterReset(t *testing.T) {
	const n = 1000
	for _, backend := range allBackends {
		opt := randperm.Options{Procs: 4, Seed: 1, Backend: backend}
		pm, err := randperm.NewPermuter(n, opt)
		if err != nil {
			t.Fatal(err)
		}
		first := make([]int64, n)
		pm.Chunk(first, 0)
		pm.Reset(2)
		reset := make([]int64, n)
		pm.Chunk(reset, 0)
		opt.Seed = 2
		fresh, err := randperm.NewPermuter(n, opt)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]int64, n)
		fresh.Chunk(want, 0)
		same := true
		for i := range reset {
			if reset[i] != want[i] {
				t.Fatalf("%v: Reset(2) differs from fresh seed-2 handle at %d", backend, i)
			}
			if reset[i] != first[i] {
				same = false
			}
		}
		if same {
			t.Errorf("%v: Reset(2) produced the seed-1 permutation", backend)
		}
	}
}

// TestPermuterErrors: constructor and Chunk validation, and the
// zero-length edge.
func TestPermuterErrors(t *testing.T) {
	if _, err := randperm.NewPermuter(-1, randperm.Options{}); err == nil {
		t.Error("negative length accepted")
	}
	if _, err := randperm.NewPermuter(10, randperm.Options{Procs: -2}); err == nil {
		t.Error("negative Procs accepted")
	}
	pm, err := randperm.NewPermuter(10, randperm.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int64, 4)
	if _, err := pm.Chunk(buf, -1); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := pm.Chunk(buf, 11); err == nil {
		t.Error("start past the end accepted")
	}
	if m, err := pm.Chunk(buf, 10); err != nil || m != 0 {
		t.Errorf("Chunk at Len() = %d, %v; want 0, nil", m, err)
	}
	if m, err := pm.Chunk(buf, 8); err != nil || m != 2 {
		t.Errorf("ragged tail Chunk = %d, %v; want 2, nil", m, err)
	}
	empty, err := randperm.NewPermuter(0, randperm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m, err := empty.Chunk(buf, 0); err != nil || m != 0 {
		t.Errorf("empty Chunk = %d, %v", m, err)
	}
	for range empty.Iter() {
		t.Error("empty Iter yielded a value")
	}
	// ExactUniform gates exactly the bijective backend.
	for _, backend := range allBackends {
		want := backend != randperm.BackendBijective
		if backend.ExactUniform() != want {
			t.Errorf("%v.ExactUniform() = %v", backend, backend.ExactUniform())
		}
	}
}

// TestPermuterHandleReuseHooks covers the surface a handle-reusing
// server leans on: Materialized observation, explicit Materialize
// warm-up, and the exactly-once OnMaterialize callback — including its
// re-arming across Reset and its racing-access guarantee.
func TestPermuterHandleReuseHooks(t *testing.T) {
	const n = 1 << 10
	// Materializing backend: the hook fires exactly once no matter how
	// many goroutines race the first access.
	pm, err := randperm.NewPermuter(n, randperm.Options{Procs: 4, Seed: 3, Backend: randperm.BackendInPlace})
	if err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int64
	pm.OnMaterialize(func() { builds.Add(1) })
	if pm.Materialized() {
		t.Error("Materialized before any access")
	}
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]int64, 16)
			if _, err := pm.Chunk(buf, 0); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Errorf("OnMaterialize fired %d times under racing access, want 1", got)
	}
	if !pm.Materialized() {
		t.Error("Materialized false after access")
	}
	// Repeat access: no further builds.
	if err := pm.Materialize(); err != nil {
		t.Fatal(err)
	}
	if got := builds.Load(); got != 1 {
		t.Errorf("Materialize after build fired the hook again (%d)", got)
	}
	// Reset re-arms: the hook fires once more on next access.
	pm.Reset(4)
	if pm.Materialized() {
		t.Error("Materialized survived Reset")
	}
	if err := pm.Materialize(); err != nil {
		t.Fatal(err)
	}
	if got := builds.Load(); got != 2 {
		t.Errorf("after Reset + Materialize, builds = %d, want 2", got)
	}

	// Bijective backend: nothing ever materializes, the hook never fires.
	bij, err := randperm.NewPermuter(1<<40, randperm.Options{Seed: 3, Backend: randperm.BackendBijective})
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Bool
	bij.OnMaterialize(func() { fired.Store(true) })
	if err := bij.Materialize(); err != nil {
		t.Fatal(err)
	}
	buf := make([]int64, 8)
	if _, err := bij.Chunk(buf, 1<<39); err != nil {
		t.Fatal(err)
	}
	if bij.Materialized() || fired.Load() {
		t.Error("bijective handle claims to have materialized")
	}
}
