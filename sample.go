package randperm

import (
	"randperm/internal/core"
)

// ParallelSample draws a uniformly random k-subset of data on a
// simulated coarse grained machine: every one of the C(n, k) subsets is
// equally likely. It applies the paper's machinery to its own second
// motivation ("good generation of random samples to test algorithms"):
// the per-processor sample counts are one column of a communication
// matrix, sampled with the configured matrix algorithm, followed by an
// O(k/p + n/p) local selection - so the resource bounds of Theorem 1
// carry over. The input is not modified; the returned sample is in
// uniformly random order.
func ParallelSample[T any](data []T, k int64, opt Options) ([]T, Report, error) {
	opt = opt.withDefaults()
	p := opt.Procs
	if int64(p) > int64(len(data)) && len(data) > 0 {
		p = len(data)
	}
	if p < 1 {
		p = 1
	}
	sample, m, err := core.SampleKSlice(data, k, p, core.Config{
		Seed:   opt.Seed,
		Matrix: opt.Matrix.internal(),
	})
	if err != nil {
		return nil, Report{}, err
	}
	return sample, reportFrom(m), nil
}
