package randperm_test

import (
	"testing"

	"randperm"
)

func TestParallelSample(t *testing.T) {
	data := make([]int64, 10000)
	for i := range data {
		data[i] = int64(i)
	}
	sample, rep, err := randperm.ParallelSample(data, 500, randperm.Options{
		Procs: 8, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sample) != 500 {
		t.Fatalf("sample size %d", len(sample))
	}
	seen := make(map[int64]bool)
	for _, v := range sample {
		if v < 0 || v >= 10000 || seen[v] {
			t.Fatalf("invalid sample element %d", v)
		}
		seen[v] = true
	}
	if rep.Procs != 8 {
		t.Fatalf("report procs %d", rep.Procs)
	}
}

func TestParallelSampleEdgeSizes(t *testing.T) {
	data := []string{"a", "b", "c"}
	for _, k := range []int64{0, 3} {
		sample, _, err := randperm.ParallelSample(data, k, randperm.Options{Seed: 5})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if int64(len(sample)) != k {
			t.Fatalf("k=%d: got %d", k, len(sample))
		}
	}
	if _, _, err := randperm.ParallelSample(data, 4, randperm.Options{}); err == nil {
		t.Fatal("k > n accepted")
	}
}

func TestParallelSampleReproducible(t *testing.T) {
	data := make([]int, 1000)
	for i := range data {
		data[i] = i
	}
	a, _, _ := randperm.ParallelSample(data, 100, randperm.Options{Procs: 4, Seed: 6})
	b, _, _ := randperm.ParallelSample(data, 100, randperm.Options{Procs: 4, Seed: 6})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}
