package randperm

import (
	"fmt"

	"randperm/internal/core"
	"randperm/internal/extmem"
	"randperm/internal/xrand"
)

// CommMatrixParallel samples a communication matrix on a simulated
// machine with one processor per source block, using the selected
// parallel algorithm (the paper's Algorithm 5 or 6; MatrixSeq runs
// Algorithm 3 at the root). It returns the matrix rows and the resource
// report demonstrating Theorem 2's per-processor bounds.
//
// len(rowSizes) fixes the machine size; colSizes may have any length.
func CommMatrixParallel(rowSizes, colSizes []int64, opt Options) ([][]int64, Report, error) {
	opt = opt.withDefaults()
	p := len(rowSizes)
	if p == 0 {
		return nil, Report{}, fmt.Errorf("randperm: need at least one source block")
	}
	m, mach, err := core.SampleRows(p, opt.Seed, rowSizes, colSizes, opt.Matrix.internal())
	if err != nil {
		return nil, Report{}, err
	}
	out := make([][]int64, m.Rows())
	for i := range out {
		out[i] = append([]int64(nil), m.Row(i)...)
	}
	return out, reportFrom(mach), nil
}

// ExternalShuffleStats reports the I/O cost of an ExternalShuffle run in
// the external-memory model (block transfers of BlockSize items).
type ExternalShuffleStats struct {
	Blocks int64 // data size in blocks, ceil(n/B)
	Reads  int64 // block reads performed
	Writes int64 // block writes performed
}

// IOs returns Reads + Writes.
func (s ExternalShuffleStats) IOs() int64 { return s.Reads + s.Writes }

// ExternalShuffle permutes data uniformly while touching it only in
// streaming passes of blockSize-item blocks and never holding more than
// memory items internally: the paper's Section 6 outlook of driving
// external-memory algorithms with the coarse grained decomposition. The
// shuffle costs O((n/B) log_{M/B}(n/M)) block transfers versus Theta(n)
// for direct Fisher-Yates on disk-resident data; the returned stats hold
// the measured counts.
//
// The permutation distribution is exactly uniform, identical to Shuffle.
func ExternalShuffle(src Source, data []int64, blockSize int, memory int64) (ExternalShuffleStats, error) {
	if blockSize <= 0 {
		return ExternalShuffleStats{}, fmt.Errorf("randperm: block size must be positive")
	}
	v := extmem.FromSlice(data, blockSize)
	if err := extmem.Shuffle(asXrand(src), v, extmem.ShuffleOptions{Memory: memory}); err != nil {
		return ExternalShuffleStats{}, err
	}
	copy(data, v.Snapshot())
	return ExternalShuffleStats{
		Blocks: v.Blocks(),
		Reads:  v.Reads(),
		Writes: v.Writes(),
	}, nil
}

// asXrand adapts the public Source to the internal interface without
// allocation when possible.
func asXrand(src Source) xrand.Source {
	if x, ok := src.(xrand.Source); ok {
		return x
	}
	return sourceAdapter{src}
}

type sourceAdapter struct{ s Source }

func (a sourceAdapter) Uint64() uint64 { return a.s.Uint64() }
