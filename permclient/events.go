package permclient

// The live event stream: a typed iterator over permd's GET /v1/events
// SSE endpoint. The client reconnects on stream failures, resuming from
// the last sequence number it saw via the Last-Event-ID header, so a
// consumer survives a permd restart or a dropped connection with at
// most the replay-ring bound of loss — which it can detect by watching
// for a gap in Event.Seq.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"iter"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// Event is one occurrence from permd's live event stream — the SDK
// mirror of the server's wire shape (one flat struct for every type;
// fields a type does not use are zero, except Peer/Round/Slot whose
// "not applicable" is -1 because 0 is meaningful for them).
type Event struct {
	// Seq is the server-assigned sequence number, strictly increasing.
	// A gap between consecutive events means the consumer (or the
	// resume) fell further behind than the server's replay ring.
	Seq    uint64 `json:"seq"`
	TimeNs int64  `json:"time_ns"`
	// Type is the event's wire name: "request", "materialization",
	// "cache_evict", "slow_request", "quota_refusal",
	// "admission_queue", "cluster_round", "peer_health_change" or
	// "join_result".
	Type string `json:"type"`

	Endpoint string `json:"endpoint,omitempty"`
	Backend  string `json:"backend,omitempty"`
	Client   string `json:"client,omitempty"`
	N        int64  `json:"n,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	Items    int64  `json:"items,omitempty"`
	Ns       int64  `json:"ns,omitempty"`
	Cache    string `json:"cache,omitempty"`
	Peer     int    `json:"peer"`
	Round    int    `json:"round"`
	Slot     int    `json:"slot"`
	State    string `json:"state,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// Events returns an iterator over the server's live event stream,
// optionally filtered to the named event types (empty means every
// type). Iteration runs until ctx is cancelled or the consumer breaks;
// a dropped connection or retryable server refusal (subscriber-cap
// 503) is retried under the client's backoff policy, resuming from the
// last event seen so no ring-resident event is lost or duplicated
// across reconnects. A non-retryable failure (bad filter, exhausted
// retries) is yielded as the final non-nil error.
func (c *Client) Events(ctx context.Context, types ...string) iter.Seq2[Event, error] {
	return c.events(ctx, 0, false, types)
}

// EventsFrom is Events resuming after sequence number `after`: the
// server replays the events in (after, head] that its bounded replay
// ring still holds before live delivery begins. after == 0 replays the
// whole ring — recent history first, then live (what permtop boots
// with); pass the last Seq a previous stream delivered to continue it.
func (c *Client) EventsFrom(ctx context.Context, after uint64, types ...string) iter.Seq2[Event, error] {
	return c.events(ctx, after, true, types)
}

// events is the shared iterator: resume says whether the FIRST
// connection presents `after` as Last-Event-ID (EventsFrom) or starts
// live-only (Events); reconnects always resume from the last delivery.
func (c *Client) events(ctx context.Context, after uint64, resume bool, types []string) iter.Seq2[Event, error] {
	q := url.Values{}
	if len(types) > 0 {
		q.Set("types", strings.Join(types, ","))
	}
	path := "/v1/events"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	return func(yield func(Event, error) bool) {
		last := after
		attempts := 0
		// track records delivery progress so the next connection resumes
		// exactly after the last event the consumer saw.
		track := func(ev Event, err error) bool {
			if err == nil {
				last = ev.Seq
				resume = true
			}
			return yield(ev, err)
		}
		for {
			n, err := c.streamEvents(ctx, path, last, resume, track)
			if n < 0 {
				return // consumer broke out
			}
			if n > 0 {
				attempts = 0 // progress resets the retry budget
			}
			if ctx.Err() != nil {
				return
			}
			if !retryable(err) || attempts >= c.cfg.MaxRetries {
				if err == nil {
					err = fmt.Errorf("permclient: event stream ended")
				}
				yield(Event{}, err)
				return
			}
			attempts++
			wait := min(c.cfg.Backoff<<attempts, c.cfg.MaxBackoff)
			if c.sleep(ctx, wait) != nil {
				return
			}
		}
	}
}

// streamEvents runs one SSE connection, yielding parsed events. It
// returns the number of events delivered on this connection and the
// terminal error (nil for a clean server EOF); n == -1 means the
// consumer stopped the iteration.
func (c *Client) streamEvents(ctx context.Context, path string, last uint64, resume bool, yield func(Event, error) bool) (n int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+path, nil)
	if err != nil {
		return 0, err
	}
	c.decorate(req)
	if resume {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(last, 10))
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, apiError(resp)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Frame boundary: dispatch whatever data accumulated.
			if data.Len() == 0 {
				continue // keepalive or id/event-only frame
			}
			var ev Event
			if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
				return n, fmt.Errorf("permclient: bad event payload %q: %v", data.String(), err)
			}
			data.Reset()
			n++
			if !yield(ev, nil) {
				return -1, nil
			}
		case strings.HasPrefix(line, "data:"):
			if data.Len() > 0 {
				data.WriteByte('\n') // multi-line data per the SSE spec
			}
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		case strings.HasPrefix(line, ":"):
			// comment (keepalive) — ignore
		default:
			// id:/event: framing lines — Seq inside the JSON payload is
			// authoritative, nothing to do here.
		}
	}
	return n, sc.Err()
}
