package permclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"iter"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Opt is a per-call option.
type Opt func(*callOpts)

type callOpts struct {
	backend   string
	epochMode string // "" (fresh) or "recycled"; see WithRecycled
}

// WithBackend pins the serving backend for this call ("sim", "shmem",
// "inplace", "bijective" or "cluster"); without it the server's default
// applies.
func WithBackend(backend string) Opt {
	return func(o *callOpts) { o.backend = backend }
}

func applyOpts(opts []Opt) callOpts {
	var o callOpts
	for _, f := range opts {
		f(&o)
	}
	return o
}

// Chunk fetches π(start) .. π(start+length-1) of the permutation
// (seed, n) in one request. For ranges beyond one server page, prefer
// Stream, which holds O(PageSize) memory.
func (c *Client) Chunk(ctx context.Context, seed uint64, n, start, length int64, opts ...Opt) ([]int64, error) {
	o := applyOpts(opts)
	q := url.Values{}
	q.Set("n", strconv.FormatInt(n, 10))
	q.Set("start", strconv.FormatInt(start, 10))
	q.Set("len", strconv.FormatInt(length, 10))
	if o.backend != "" {
		q.Set("backend", o.backend)
	}
	body, err := c.get(ctx, fmt.Sprintf("/v1/perm/%d/chunk?%s", seed, q.Encode()))
	if err != nil {
		return nil, err
	}
	return parseLines(body)
}

// At fetches the single value π(i) of the permutation (seed, n). When
// Config.HedgeAfter > 0 and the first request has not answered within
// it, a second identical request races it and the first answer wins —
// the server's determinism contract makes the two byte-identical, so
// hedging can only cut tail latency, never change the value.
func (c *Client) At(ctx context.Context, seed uint64, n, i int64, opts ...Opt) (int64, error) {
	o := applyOpts(opts)
	q := url.Values{}
	q.Set("n", strconv.FormatInt(n, 10))
	q.Set("i", strconv.FormatInt(i, 10))
	if o.backend != "" {
		q.Set("backend", o.backend)
	}
	path := fmt.Sprintf("/v1/perm/%d/at?%s", seed, q.Encode())
	var body []byte
	err := c.retry(ctx, func() error {
		var err error
		body, err = c.hedged(ctx, path)
		return err
	})
	if err != nil {
		return 0, err
	}
	vals, err := parseLines(body)
	if err != nil {
		return 0, err
	}
	if len(vals) != 1 {
		return 0, fmt.Errorf("permclient: want one value, got %d", len(vals))
	}
	return vals[0], nil
}

// hedged runs one logical GET as up to two racing requests: the
// primary, and after HedgeAfter a hedge. The first outcome — success
// or failure — wins; the loser's context is canceled so the server
// stops serving it.
func (c *Client) hedged(ctx context.Context, path string) ([]byte, error) {
	if c.cfg.HedgeAfter <= 0 {
		return c.once(ctx, path)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		body []byte
		err  error
	}
	results := make(chan result, 2)
	launch := func() {
		body, err := c.once(hctx, path)
		results <- result{body, err}
	}
	go launch()
	t := time.NewTimer(c.cfg.HedgeAfter)
	defer t.Stop()
	select {
	case r := <-results:
		return r.body, r.err
	case <-t.C:
		go launch()
	}
	r := <-results
	if r.err != nil && ctx.Err() == nil {
		// The first finisher failed; the slower twin may yet succeed.
		if r2 := <-results; r2.err == nil {
			return r2.body, nil
		}
	}
	return r.body, r.err
}

// Stream returns an iterator over π(start), π(start+1), ... of the
// permutation (seed, n), paging through the chunk endpoint in
// Config.PageSize requests — O(PageSize) memory for any range, with
// the client's full retry/backoff policy applied per page. Iteration
// stops at the end of the domain, at the first yield of a non-nil
// error, or when the consumer breaks; breaking mid-page abandons the
// remaining pages unfetched.
func (c *Client) Stream(ctx context.Context, seed uint64, n, start int64, opts ...Opt) iter.Seq2[int64, error] {
	o := applyOpts(opts)
	return func(yield func(int64, error) bool) {
		pos := start
		for pos < n {
			length := min(n-pos, int64(c.cfg.PageSize))
			page, err := c.Chunk(ctx, seed, n, pos, length, optsFor(o)...)
			if err != nil {
				yield(0, err)
				return
			}
			if len(page) == 0 {
				yield(0, fmt.Errorf("permclient: empty page at %d of [0, %d)", pos, n))
				return
			}
			for _, v := range page {
				if !yield(v, nil) {
					return
				}
			}
			pos += int64(len(page))
		}
	}
}

func optsFor(o callOpts) []Opt {
	if o.backend == "" {
		return nil
	}
	return []Opt{WithBackend(o.backend)}
}

// Shuffle returns lines in exactly-uniform random order under
// (seed, backend). The server refuses backends that are not exactly
// uniform (a non-Temporary *APIError with HTTP 400).
func (c *Client) Shuffle(ctx context.Context, seed uint64, lines []string, opts ...Opt) ([]string, error) {
	o := applyOpts(opts)
	q := url.Values{}
	q.Set("seed", strconv.FormatUint(seed, 10))
	if o.backend != "" {
		q.Set("backend", o.backend)
	}
	payload, err := json.Marshal(lines)
	if err != nil {
		return nil, err
	}
	var out []string
	err = c.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			c.cfg.BaseURL+"/v1/shuffle?"+q.Encode(), bytes.NewReader(payload))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		c.decorate(req)
		resp, err := c.cfg.HTTPClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return apiError(resp)
		}
		out = out[:0]
		return json.NewDecoder(resp.Body).Decode(&out)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Sample returns a uniformly random k-subset of [0, n) in uniformly
// random order, drawn by the server's exactly-uniform sampling path.
func (c *Client) Sample(ctx context.Context, n, k int64, seed uint64) ([]int64, error) {
	q := url.Values{}
	q.Set("n", strconv.FormatInt(n, 10))
	q.Set("k", strconv.FormatInt(k, 10))
	q.Set("seed", strconv.FormatUint(seed, 10))
	body, err := c.get(ctx, "/v1/sample?"+q.Encode())
	if err != nil {
		return nil, err
	}
	return parseLines(body)
}

// Health is the daemon's /healthz echo: liveness plus the config a
// client (or replica) needs to reason about the determinism contract.
type Health struct {
	Status         string `json:"status"`
	Procs          int    `json:"procs"`
	Handles        int    `json:"handles"`
	MaxN           int64  `json:"max_n"`
	MaxChunk       int    `json:"max_chunk"`
	DefaultBackend string `json:"default_backend"`
	MaxBuilds      int    `json:"max_builds"`
	Quota          bool   `json:"quota"`
}

// Health fetches the daemon's liveness/config echo.
func (c *Client) Health(ctx context.Context) (Health, error) {
	body, err := c.get(ctx, "/healthz")
	if err != nil {
		return Health{}, err
	}
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		return Health{}, fmt.Errorf("permclient: decoding /healthz: %v", err)
	}
	return h, nil
}
