// Package permclient is the Go SDK for permd, the permutation-serving
// daemon in cmd/permd. It speaks the /v1 HTTP API with the failure
// semantics a multi-tenant deployment needs baked in:
//
//   - typed errors: an *APIError carries the HTTP status and the
//     server's message, and quota/overload refusals (429, 503) are
//     recognized as retryable with the server's own Retry-After;
//   - backoff: every call retries retryable failures with exponential
//     backoff, honoring Retry-After when the server sent one, until the
//     request context expires or Config.MaxRetries is spent;
//   - hedged point reads: At races a second request after
//     Config.HedgeAfter, for tail latency, never for throughput — the
//     two requests are byte-identical by the server's determinism
//     contract, so whichever answer lands first is the answer;
//   - streaming chunks: Stream returns an iterator over π(start..) that
//     pages through /v1/perm/{seed}/chunk in Config.PageSize slices,
//     holding O(PageSize) memory no matter how far it runs.
//
// A Client is safe for concurrent use. The zero Config is usable; every
// field has a default. See the README's "permclient" section for a
// worked quickstart and OPERATIONS.md for the server-side quota
// semantics the client's backoff cooperates with.
package permclient

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Config shapes a Client. The zero value is usable: every field has a
// default applied by New.
type Config struct {
	// BaseURL is the permd base, e.g. "http://localhost:8080"
	// (default). A trailing slash is trimmed.
	BaseURL string
	// ClientID, when non-empty, is sent as the X-Permd-Client header on
	// every request — the identity the server's quota layer meters.
	ClientID string
	// HTTPClient is the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// MaxRetries bounds how many times one call retries a retryable
	// failure (default 4; 0 uses the default, negative disables
	// retries).
	MaxRetries int
	// Backoff is the first retry delay, doubling per attempt with
	// jitter (default 100ms). A server Retry-After overrides it.
	Backoff time.Duration
	// MaxBackoff caps the delay between attempts, including
	// server-provided Retry-After hints (default 30s).
	MaxBackoff time.Duration
	// HedgeAfter is how long At waits for the first request before
	// racing a hedge (default 0: hedging off).
	HedgeAfter time.Duration
	// PageSize is the chunk length Stream requests per page
	// (default 65536).
	PageSize int
}

func (c Config) withDefaults() Config {
	if c.BaseURL == "" {
		c.BaseURL = "http://localhost:8080"
	}
	c.BaseURL = strings.TrimRight(c.BaseURL, "/")
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 4
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 30 * time.Second
	}
	if c.PageSize <= 0 {
		c.PageSize = 1 << 16
	}
	return c
}

// APIError is a non-2xx answer from permd: the status code and the
// server's plain-text message, plus the Retry-After hint (0 when
// absent) on throttle/overload statuses.
type APIError struct {
	// StatusCode is the HTTP status permd answered with.
	StatusCode int
	// Message is the server's error body, trimmed.
	Message string
	// RetryAfter is the server's Retry-After hint, when one was sent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("permd: %s (HTTP %d)", e.Message, e.StatusCode)
}

// Temporary reports whether retrying the identical request can
// succeed: quota exhaustion (429), build-queue overload (503) and
// server faults (5xx) are temporary; 4xx contract violations are not.
func (e *APIError) Temporary() bool {
	return e.StatusCode == http.StatusTooManyRequests || e.StatusCode >= 500
}

// ErrThrottled matches (errors.Is) any *APIError carrying HTTP 429 —
// the server's per-client quota refused the request.
var ErrThrottled = errors.New("permclient: throttled (HTTP 429)")

// ErrOverloaded matches any *APIError carrying HTTP 503 — every
// materialization build slot stayed busy past the server's queue
// deadline.
var ErrOverloaded = errors.New("permclient: server overloaded (HTTP 503)")

// Is makes errors.Is(err, ErrThrottled) and errors.Is(err,
// ErrOverloaded) work on APIErrors without unwrapping by hand.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrThrottled:
		return e.StatusCode == http.StatusTooManyRequests
	case ErrOverloaded:
		return e.StatusCode == http.StatusServiceUnavailable
	}
	return false
}

// Client talks to one permd daemon (or a load-balanced pool of
// replicas agreeing on the determinism contract). Create one with New;
// safe for concurrent use.
type Client struct {
	cfg Config
	// sleep is time.Sleep, injectable so backoff tests run in
	// microseconds.
	sleep func(context.Context, time.Duration) error
}

// New builds a Client from cfg (zero value fine; see Config).
func New(cfg Config) *Client {
	return &Client{cfg: cfg.withDefaults(), sleep: sleepCtx}
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// get runs one GET with retry/backoff and returns the whole body. Every
// retryable failure (Temporary APIErrors, transport errors) backs off —
// by the server's Retry-After when it sent one, else exponentially with
// jitter — until MaxRetries attempts are spent or ctx expires.
func (c *Client) get(ctx context.Context, path string) ([]byte, error) {
	var body []byte
	err := c.retry(ctx, func() error {
		var err error
		body, err = c.once(ctx, path)
		return err
	})
	return body, err
}

// retry runs op under the client's backoff policy.
func (c *Client) retry(ctx context.Context, op func() error) error {
	delay := c.cfg.Backoff
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil || attempt >= c.cfg.MaxRetries || !retryable(err) {
			return err
		}
		wait := delay
		// Honor the server's own hint when it sent one; it knows its
		// refill rate and queue deadline better than our doubling does.
		var apiErr *APIError
		if errors.As(err, &apiErr) && apiErr.RetryAfter > 0 {
			wait = apiErr.RetryAfter
		}
		wait = min(wait, c.cfg.MaxBackoff)
		// Full jitter below the computed wait avoids retry stampedes
		// when many clients were refused in the same instant.
		wait = wait/2 + time.Duration(rand.Int64N(int64(wait/2)+1))
		if err := c.sleep(ctx, wait); err != nil {
			return err
		}
		delay = min(delay*2, c.cfg.MaxBackoff)
	}
}

func retryable(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Temporary()
	}
	// Transport-level failures (connection refused, reset) are worth a
	// retry; context expiry is not.
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// once runs exactly one GET, mapping non-2xx onto *APIError.
func (c *Client) once(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	c.decorate(req)
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

func (c *Client) decorate(req *http.Request) {
	if c.cfg.ClientID != "" {
		req.Header.Set("X-Permd-Client", c.cfg.ClientID)
	}
}

// apiError drains resp (non-2xx) into a typed error.
func apiError(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	e := &APIError{
		StatusCode: resp.StatusCode,
		Message:    strings.TrimSpace(string(msg)),
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.ParseInt(ra, 10, 64); err == nil && secs > 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

// parseLines parses a one-decimal-per-line permd response body.
func parseLines(body []byte) ([]int64, error) {
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) == 1 && lines[0] == "" {
		return nil, nil
	}
	out := make([]int64, len(lines))
	for i, l := range lines {
		v, err := strconv.ParseInt(l, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("permclient: bad response line %q: %v", l, err)
		}
		out[i] = v
	}
	return out, nil
}
