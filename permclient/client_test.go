package permclient

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClient wires a Client to ts with time.Sleep replaced by a
// recorder, so backoff tests assert on the durations the policy chose
// instead of actually waiting them out.
func fakeClient(ts *httptest.Server, cfg Config) (*Client, *[]time.Duration) {
	cfg.BaseURL = ts.URL
	cfg.HTTPClient = ts.Client()
	c := New(cfg)
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	return c, &slept
}

// flaky answers failStatus (with optional Retry-After) for the first
// `fails` requests, then serves body.
func flaky(fails int, failStatus int, retryAfter string, body string) (*httptest.Server, *atomic.Int64) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(fails) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			http.Error(w, "permd: busy", failStatus)
			return
		}
		fmt.Fprint(w, body)
	}))
	return ts, &calls
}

// TestRetryHonorsRetryAfter: a 429 with Retry-After: 7 must override the
// client's own (much smaller) exponential schedule. With full jitter the
// chosen wait lands in [hint/2, hint].
func TestRetryHonorsRetryAfter(t *testing.T) {
	ts, calls := flaky(2, http.StatusTooManyRequests, "7", "5\n")
	defer ts.Close()
	c, slept := fakeClient(ts, Config{Backoff: time.Millisecond})
	got, err := c.Chunk(context.Background(), 1, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("Chunk = %v", got)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d requests, want 3", calls.Load())
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2: %v", len(*slept), *slept)
	}
	for i, d := range *slept {
		if d < 3500*time.Millisecond || d > 7*time.Second {
			t.Errorf("sleep %d = %v, want within [3.5s, 7s] of the server hint", i, d)
		}
	}
}

// TestRetryExponentialBackoff: without a server hint the waits double,
// each drawn from [base/2, base].
func TestRetryExponentialBackoff(t *testing.T) {
	ts, _ := flaky(3, http.StatusServiceUnavailable, "", "1\n")
	defer ts.Close()
	c, slept := fakeClient(ts, Config{Backoff: 100 * time.Millisecond})
	if _, err := c.Chunk(context.Background(), 1, 10, 0, 1); err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 3 {
		t.Fatalf("slept %d times, want 3: %v", len(*slept), *slept)
	}
	for i, base := range []time.Duration{100, 200, 400} {
		base *= time.Millisecond
		if d := (*slept)[i]; d < base/2 || d > base {
			t.Errorf("sleep %d = %v, want within [%v, %v]", i, d, base/2, base)
		}
	}
}

// TestMaxBackoffCapsHint: an absurd server hint (permd's fixed-budget
// 3600) is clamped to MaxBackoff before jitter.
func TestMaxBackoffCapsHint(t *testing.T) {
	ts, _ := flaky(1, http.StatusTooManyRequests, "3600", "1\n")
	defer ts.Close()
	c, slept := fakeClient(ts, Config{MaxBackoff: 2 * time.Second})
	if _, err := c.Chunk(context.Background(), 1, 10, 0, 1); err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 1 || (*slept)[0] > 2*time.Second {
		t.Errorf("slept %v, want a single wait capped at 2s", *slept)
	}
}

// TestRetriesDisabled: MaxRetries < 0 surfaces the first refusal
// untouched, typed and matchable.
func TestRetriesDisabled(t *testing.T) {
	ts, calls := flaky(1000, http.StatusTooManyRequests, "9", "")
	defer ts.Close()
	c, slept := fakeClient(ts, Config{MaxRetries: -1})
	_, err := c.Chunk(context.Background(), 1, 10, 0, 1)
	if !errors.Is(err, ErrThrottled) {
		t.Fatalf("want ErrThrottled, got %v", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.RetryAfter != 9*time.Second || !apiErr.Temporary() {
		t.Errorf("APIError = %+v, want Temporary with the 9s hint", apiErr)
	}
	if calls.Load() != 1 || len(*slept) != 0 {
		t.Errorf("requests=%d sleeps=%d, want exactly one attempt", calls.Load(), len(*slept))
	}
}

// TestRetryBudgetExhausted: a persistent 503 is retried exactly
// MaxRetries times and then surfaces as ErrOverloaded.
func TestRetryBudgetExhausted(t *testing.T) {
	ts, calls := flaky(1000, http.StatusServiceUnavailable, "", "")
	defer ts.Close()
	c, _ := fakeClient(ts, Config{MaxRetries: 2})
	_, err := c.Chunk(context.Background(), 1, 10, 0, 1)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d requests, want 1 + 2 retries", calls.Load())
	}
}

// TestNoRetryOnContractErrors: a 400 is the caller's bug; retrying the
// identical request is wasted load.
func TestNoRetryOnContractErrors(t *testing.T) {
	ts, calls := flaky(1000, http.StatusBadRequest, "", "")
	defer ts.Close()
	c, slept := fakeClient(ts, Config{})
	_, err := c.Chunk(context.Background(), 1, 10, 0, 1)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 400 || apiErr.Temporary() {
		t.Fatalf("want a permanent 400 APIError, got %v", err)
	}
	if calls.Load() != 1 || len(*slept) != 0 {
		t.Errorf("requests=%d sleeps=%d, want exactly one attempt", calls.Load(), len(*slept))
	}
}

// TestRetryStopsOnContextCancel: a context canceled during backoff ends
// the call with the context's error, not another attempt.
func TestRetryStopsOnContextCancel(t *testing.T) {
	ts, calls := flaky(1000, http.StatusServiceUnavailable, "", "")
	defer ts.Close()
	c, _ := fakeClient(ts, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	c.sleep = func(ctx context.Context, d time.Duration) error {
		cancel() // the client walks away mid-backoff
		return ctx.Err()
	}
	_, err := c.Chunk(ctx, 1, 10, 0, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if calls.Load() != 1 {
		t.Errorf("server saw %d requests after cancel, want 1", calls.Load())
	}
}

// TestHedgedAtCutsTail: the primary request stalls, the hedge answers.
// The call must return the hedge's value long before the primary would
// have, and the server must have seen exactly two requests.
func TestHedgedAtCutsTail(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select { // the stalled primary
			case <-release:
			case <-r.Context().Done():
				return
			}
		}
		fmt.Fprint(w, "7\n")
	}))
	defer ts.Close()
	defer close(release)
	c, _ := fakeClient(ts, Config{HedgeAfter: 5 * time.Millisecond, MaxRetries: -1})
	v, err := c.At(context.Background(), 1, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Errorf("At = %d, want 7", v)
	}
	if calls.Load() != 2 {
		t.Errorf("server saw %d requests, want primary + hedge", calls.Load())
	}
}

// TestHedgeFirstFailureWaitsForTwin: when the fast answer is a failure
// but the slower twin succeeds, the call reports the success.
func TestHedgeFirstFailureWaitsForTwin(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n == 1 {
			time.Sleep(30 * time.Millisecond) // primary: slow success
			fmt.Fprint(w, "7\n")
			return
		}
		http.Error(w, "permd: busy", http.StatusServiceUnavailable) // hedge: fast failure
	}))
	defer ts.Close()
	c, _ := fakeClient(ts, Config{HedgeAfter: time.Millisecond, MaxRetries: -1})
	v, err := c.At(context.Background(), 1, 10, 3)
	if err != nil {
		t.Fatalf("hedge failure should not mask the primary's success: %v", err)
	}
	if v != 7 {
		t.Errorf("At = %d, want 7", v)
	}
}

// TestStreamPaging: the iterator walks the domain in PageSize requests,
// asking only for what remains on the last page.
func TestStreamPaging(t *testing.T) {
	var starts, lens []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		starts = append(starts, q.Get("start"))
		lens = append(lens, q.Get("len"))
		start, _ := parseI64(q.Get("start"))
		length, _ := parseI64(q.Get("len"))
		for i := int64(0); i < length; i++ {
			fmt.Fprintf(w, "%d\n", (start+i)*3)
		}
	}))
	defer ts.Close()
	c, _ := fakeClient(ts, Config{PageSize: 4})
	var got []int64
	for v, err := range c.Stream(context.Background(), 1, 10, 0) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, v)
	}
	if len(got) != 10 {
		t.Fatalf("streamed %d values, want 10", len(got))
	}
	for i, v := range got {
		if v != int64(i)*3 {
			t.Fatalf("value %d = %d, want %d", i, v, i*3)
		}
	}
	wantStarts, wantLens := []string{"0", "4", "8"}, []string{"4", "4", "2"}
	for i := range wantStarts {
		if starts[i] != wantStarts[i] || lens[i] != wantLens[i] {
			t.Errorf("page %d: start=%s len=%s, want start=%s len=%s",
				i, starts[i], lens[i], wantStarts[i], wantLens[i])
		}
	}
}

// TestStreamYieldsPageError: a mid-stream failure arrives as the
// iterator's error value, after the values already served.
func TestStreamYieldsPageError(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) > 1 {
			http.Error(w, "permd: boom", http.StatusInternalServerError)
			return
		}
		fmt.Fprint(w, "0\n1\n")
	}))
	defer ts.Close()
	c, _ := fakeClient(ts, Config{PageSize: 2, MaxRetries: -1})
	var got []int64
	var streamErr error
	for v, err := range c.Stream(context.Background(), 1, 10, 0) {
		if err != nil {
			streamErr = err
			break
		}
		got = append(got, v)
	}
	if len(got) != 2 {
		t.Errorf("streamed %d values before the failure, want 2", len(got))
	}
	var apiErr *APIError
	if !errors.As(streamErr, &apiErr) || apiErr.StatusCode != 500 {
		t.Errorf("stream error = %v, want the page's 500 APIError", streamErr)
	}
}

// TestConfigDefaults: the zero Config is fully usable.
func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.BaseURL != "http://localhost:8080" || cfg.MaxRetries != 4 ||
		cfg.Backoff != 100*time.Millisecond || cfg.MaxBackoff != 30*time.Second ||
		cfg.PageSize != 1<<16 || cfg.HTTPClient == nil {
		t.Errorf("withDefaults = %+v", cfg)
	}
	if got := (Config{BaseURL: "http://x/", MaxRetries: -1}).withDefaults(); got.BaseURL != "http://x" || got.MaxRetries != 0 {
		t.Errorf("trim/disable = %+v", got)
	}
}

// parseI64 is a tiny local ParseInt helper for the fake servers.
func parseI64(s string) (int64, error) {
	var v int64
	_, err := fmt.Sscanf(s, "%d", &v)
	return v, err
}
