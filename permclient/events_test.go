package permclient

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"
)

// sseServer is a canned /v1/events endpoint: each connection serves the
// events after the presented Last-Event-ID (or all of them), then
// either closes (forcing the client to reconnect) or blocks until the
// request dies.
type sseServer struct {
	events   []string // JSON payloads, 1-indexed by position+1
	perConn  int      // events served per connection before closing; 0 = all
	conns    atomic.Int64
	lastSeen atomic.Int64 // Last-Event-ID of the most recent connection
}

func (s *sseServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.conns.Add(1)
	after := 0
	if lid := r.Header.Get("Last-Event-ID"); lid != "" {
		after, _ = strconv.Atoi(lid)
	}
	s.lastSeen.Store(int64(after))
	w.Header().Set("Content-Type", "text/event-stream")
	fl := w.(http.Flusher)
	sent := 0
	for i := after; i < len(s.events); i++ {
		fmt.Fprintf(w, "id: %d\nevent: request\ndata: %s\n\n", i+1, s.events[i])
		fl.Flush()
		sent++
		if s.perConn > 0 && sent >= s.perConn {
			return // drop the connection mid-stream
		}
	}
	// Served everything: keep the stream open until the client goes away,
	// with keepalive comments the parser must skip.
	for {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(10 * time.Millisecond):
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		}
	}
}

func eventFixture(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf(`{"seq":%d,"time_ns":1,"type":"request","endpoint":"/v1/perm/1/chunk","items":%d,"peer":-1,"round":-1,"slot":-1}`, i+1, i)
	}
	return out
}

// TestEventsIterates: the iterator yields typed events in order and
// stops cleanly when the consumer breaks.
func TestEventsIterates(t *testing.T) {
	srv := &sseServer{events: eventFixture(5)}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL})

	var got []Event
	for ev, err := range c.Events(context.Background()) {
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		got = append(got, ev)
		if len(got) == 5 {
			break
		}
	}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) || ev.Type != "request" || ev.Items != int64(i) {
			t.Fatalf("event %d: got %+v", i, ev)
		}
		if ev.Peer != -1 || ev.Round != -1 || ev.Slot != -1 {
			t.Fatalf("event %d: sentinels not preserved: %+v", i, ev)
		}
	}
	if n := srv.conns.Load(); n != 1 {
		t.Fatalf("%d connections for an unbroken stream, want 1", n)
	}
}

// TestEventsReconnectResume: a connection dropped mid-stream reconnects
// with Last-Event-ID set to the last delivered Seq — no duplicates, no
// gaps across the reconnect boundary.
func TestEventsReconnectResume(t *testing.T) {
	srv := &sseServer{events: eventFixture(9), perConn: 4}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL, Backoff: time.Millisecond, MaxRetries: 5})

	var seqs []uint64
	for ev, err := range c.Events(context.Background()) {
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		seqs = append(seqs, ev.Seq)
		if len(seqs) == 9 {
			break
		}
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("seq[%d] = %d, want %d (no gaps, no duplicates)", i, seq, i+1)
		}
	}
	if n := srv.conns.Load(); n < 3 {
		t.Fatalf("%d connections, want >= 3 (4+4+1 events per connection)", n)
	}
}

// TestEventsFromResumes: EventsFrom(after) presents `after` on the very
// first connection.
func TestEventsFromResumes(t *testing.T) {
	srv := &sseServer{events: eventFixture(6)}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL})

	var first Event
	for ev, err := range c.EventsFrom(context.Background(), 4) {
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		first = ev
		break
	}
	if first.Seq != 5 {
		t.Fatalf("resume after 4: first seq %d, want 5", first.Seq)
	}
	if got := srv.lastSeen.Load(); got != 4 {
		t.Fatalf("server saw Last-Event-ID %d, want 4", got)
	}
}

// TestEventsTypesFilter: the types list becomes the ?types= query.
func TestEventsTypesFilter(t *testing.T) {
	var gotTypes atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotTypes.Store(r.URL.Query().Get("types"))
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "id: 1\nevent: materialization\ndata: {\"seq\":1,\"type\":\"materialization\",\"peer\":-1,\"round\":-1,\"slot\":-1}\n\n")
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL})
	for ev, err := range c.Events(context.Background(), "materialization", "cache_evict") {
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if ev.Type != "materialization" {
			t.Fatalf("got type %q", ev.Type)
		}
		break
	}
	if got := gotTypes.Load(); got != "materialization,cache_evict" {
		t.Fatalf("server saw types=%q", got)
	}
}

// TestEventsNonRetryableError: a 400 (bad filter) surfaces as the final
// yielded *APIError instead of being retried forever.
func TestEventsNonRetryableError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "permd: bad types filter", http.StatusBadRequest)
	}))
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL})
	var last error
	for _, err := range c.Events(context.Background(), "bogus") {
		last = err
	}
	apiErr, ok := last.(*APIError)
	if !ok || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("got %v, want *APIError with 400", last)
	}
}

// TestEventsContextCancel: cancelling ctx ends iteration without a
// yielded error — the consumer asked to stop.
func TestEventsContextCancel(t *testing.T) {
	srv := &sseServer{events: eventFixture(2)}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := New(Config{BaseURL: ts.URL})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	count := 0
	for _, err := range c.Events(ctx) {
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		count++
		if count == 2 {
			cancel() // stream idles on keepalives; cancellation must end it
		}
	}
	if count != 2 {
		t.Fatalf("delivered %d events, want 2", count)
	}
}
