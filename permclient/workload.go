package permclient

import (
	"context"
	"fmt"
	"io"
	"iter"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// The workload surface of the SDK: experiment bucketing (/v1/assign)
// and epoch shuffling (/v1/epochs). Both ride the server's bijective
// backend, so the answers are pure functions of their inputs — an
// Assign may be retried, hedged or re-asked a year later and the
// bucket cannot change; an epoch's values are byte-stable across
// restarts and replicas.

// WithRecycled selects recycled-sequence epoch derivation for an
// Epoch/EpochStream call: epoch e+1's shuffle key is drawn from the
// stream state epoch e left behind (Ito & Kikuchi), instead of the
// default fresh 2^192-jump separation. The mode is part of the
// determinism contract — the same (seed, n, epoch, mode) always
// yields the same bytes — so mixing modes across a training run
// changes which permutations it sees.
func WithRecycled() Opt {
	return func(o *callOpts) { o.epochMode = "recycled" }
}

// Assignment is one /v1/assign answer: the bucket's name and its
// index in the weight spec.
type Assignment struct {
	Bucket string
	Index  int
}

// Assign returns the experiment bucket of user id under experiment
// seed, with the id domain [0, n) split by spec ("control:9,treat:1"
// — comma-separated name:weight pairs). Bucket proportions are exact
// by construction on the server, and the lookup is O(1) in n. A
// malformed spec, an id outside [0, n) or a non-bijective
// WithBackend override is a non-Temporary *APIError with HTTP 400.
func (c *Client) Assign(ctx context.Context, seed uint64, n, id int64, spec string, opts ...Opt) (Assignment, error) {
	o := applyOpts(opts)
	q := url.Values{}
	q.Set("seed", strconv.FormatUint(seed, 10))
	q.Set("n", strconv.FormatInt(n, 10))
	q.Set("id", strconv.FormatInt(id, 10))
	q.Set("spec", spec)
	if o.backend != "" {
		q.Set("backend", o.backend)
	}
	path := "/v1/assign?" + q.Encode()
	var a Assignment
	err := c.retry(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+path, nil)
		if err != nil {
			return err
		}
		c.decorate(req)
		resp, err := c.cfg.HTTPClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return apiError(resp)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		a.Bucket = strings.TrimRight(string(body), "\n")
		if a.Bucket == "" {
			return fmt.Errorf("permclient: empty bucket name in /v1/assign response")
		}
		idx, err := strconv.Atoi(resp.Header.Get("Permd-Bucket"))
		if err != nil {
			return fmt.Errorf("permclient: bad Permd-Bucket header %q: %v", resp.Header.Get("Permd-Bucket"), err)
		}
		a.Index = idx
		return nil
	})
	if err != nil {
		return Assignment{}, err
	}
	return a, nil
}

// Epoch fetches π_e(start) .. π_e(start+length-1) of epoch e's
// permutation of the dataset (seed, n) in one request. The epoch key
// derivation defaults to fresh (LongJump-separated) streams; pass
// WithRecycled for recycled-sequence derivation. For ranges beyond
// one server page, prefer EpochStream.
func (c *Client) Epoch(ctx context.Context, seed uint64, n, epoch, start, length int64, opts ...Opt) ([]int64, error) {
	body, err := c.get(ctx, c.epochPath(seed, n, epoch, start, length, applyOpts(opts)))
	if err != nil {
		return nil, err
	}
	return parseLines(body)
}

func (c *Client) epochPath(seed uint64, n, epoch, start, length int64, o callOpts) string {
	q := url.Values{}
	q.Set("seed", strconv.FormatUint(seed, 10))
	q.Set("n", strconv.FormatInt(n, 10))
	q.Set("epoch", strconv.FormatInt(epoch, 10))
	q.Set("start", strconv.FormatInt(start, 10))
	q.Set("len", strconv.FormatInt(length, 10))
	if o.epochMode != "" {
		q.Set("mode", o.epochMode)
	}
	if o.backend != "" {
		q.Set("backend", o.backend)
	}
	return "/v1/epochs?" + q.Encode()
}

// EpochStream returns an iterator over π_e(start), π_e(start+1), ...
// of epoch e's permutation of (seed, n), paging through /v1/epochs in
// Config.PageSize requests — O(PageSize) memory for a full-dataset
// epoch, with the client's retry/backoff policy applied per page.
// Iteration stops at the end of the dataset, at the first yield of a
// non-nil error, or when the consumer breaks.
func (c *Client) EpochStream(ctx context.Context, seed uint64, n, epoch, start int64, opts ...Opt) iter.Seq2[int64, error] {
	o := applyOpts(opts)
	return func(yield func(int64, error) bool) {
		pos := start
		for pos < n {
			length := min(n-pos, int64(c.cfg.PageSize))
			body, err := c.get(ctx, c.epochPath(seed, n, epoch, pos, length, o))
			var page []int64
			if err == nil {
				page, err = parseLines(body)
			}
			if err != nil {
				yield(0, err)
				return
			}
			if len(page) == 0 {
				yield(0, fmt.Errorf("permclient: empty epoch page at %d of [0, %d)", pos, n))
				return
			}
			for _, v := range page {
				if !yield(v, nil) {
					return
				}
			}
			pos += int64(len(page))
		}
	}
}
