// Native fuzz targets for the public parsing surface. CI runs each for
// a short -fuzztime as a smoke pass; longer local runs just work:
//
//	go test -run='^$' -fuzz=FuzzParseBackend -fuzztime=60s .
package randperm_test

import (
	"testing"

	"randperm"
)

// FuzzParseBackend: ParseBackend must never panic, and every accepted
// spelling must round-trip — the canonical String() of the parsed
// backend parses back to the same backend. That is the property flag
// parsing, /healthz echoes and the conformance fixtures all lean on.
func FuzzParseBackend(f *testing.F) {
	for _, s := range []string{
		"sim", "shmem", "sharedmem", "shared-mem", "inplace", "in-place",
		"mergeshuffle", "bijective", "feistel", "cluster", "cgm",
		"", "SIM", "shmem ", "bijectiv", "sim\x00", "日本語",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		b, err := randperm.ParseBackend(s)
		if err != nil {
			return // rejected input: the only contract is "no panic"
		}
		back, err := randperm.ParseBackend(b.String())
		if err != nil {
			t.Fatalf("canonical name %q of accepted input %q does not parse: %v", b.String(), s, err)
		}
		if back != b {
			t.Fatalf("round trip %q -> %v -> %q -> %v", s, b, b.String(), back)
		}
	})
}
