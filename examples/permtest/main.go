// Permtest: the paper's "statistical tests" motivation - a permutation
// test (exact randomization test) for the difference of two sample
// means, powered by the library's uniform shuffler.
//
// Two treatment groups are compared; under the null hypothesis the group
// labels are exchangeable, so re-shuffling the pooled values many times
// and recomputing the statistic yields its exact null distribution. The
// validity of the p-value rests on every permutation being equally
// likely - precisely the paper's uniformity criterion.
//
//	go run ./examples/permtest
package main

import (
	"fmt"

	"randperm"
)

func main() {
	// Synthetic measurements: group B is shifted by a modest effect.
	src := randperm.NewSource(7)
	groupA := make([]float64, 120)
	groupB := make([]float64, 140)
	for i := range groupA {
		groupA[i] = gauss(src)
	}
	for i := range groupB {
		groupB[i] = gauss(src) + 0.35 // true effect
	}

	observed := mean(groupB) - mean(groupA)
	pooled := append(append([]float64{}, groupA...), groupB...)

	const trials = 20000
	extreme := 0
	for t := 0; t < trials; t++ {
		randperm.Shuffle(src, pooled)
		diff := mean(pooled[len(groupA):]) - mean(pooled[:len(groupA)])
		if abs(diff) >= abs(observed) {
			extreme++
		}
	}
	p := float64(extreme+1) / float64(trials+1)

	fmt.Printf("group A: n=%d mean=%.4f\n", len(groupA), mean(groupA))
	fmt.Printf("group B: n=%d mean=%.4f\n", len(groupB), mean(groupB))
	fmt.Printf("observed difference: %.4f\n", observed)
	fmt.Printf("permutation test: %d/%d resamples as extreme, p = %.5f\n",
		extreme, trials, p)
	if p < 0.05 {
		fmt.Println("verdict: reject the null - the groups differ")
	} else {
		fmt.Println("verdict: no evidence of a difference")
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// gauss returns a standard normal variate via the sum of twelve uniforms
// (Irwin-Hall), ample for a demo.
func gauss(src randperm.Source) float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += float64(src.Uint64()>>11) * 0x1p-53
	}
	return s - 6
}
