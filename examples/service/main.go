// Service: run the permd daemon in-process and use it as a client.
//
// A fleet of workers wants to agree on one random-but-reproducible
// order over a trillion-row keyspace, pull work from it in pages, audit
// single positions, and shuffle small batches — without any worker
// linking the library or holding permutation state. permd is that
// agreement point: every response is a pure function of (seed, n,
// backend) plus the server's pinned decomposition width, so two workers
// (or two replicas of the daemon) can never disagree.
//
// This example starts the exact handler cmd/permd serves on a loopback
// listener, then walks the API over real HTTP: a chunk of a 2^40-row
// permuted keyspace, the same chunk again (cache hit), a point query, a
// batch shuffle, a k-subset sample, and the metrics that accumulated.
//
//	go run ./examples/service
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"randperm"
	"randperm/internal/service"
)

func main() {
	// The daemon side: cmd/permd does exactly this behind flag parsing.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	handler, err := service.New(service.Config{})
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("permd serving on %s\n\n", base)

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("GET %s: %s: %s", path, resp.Status, body)
		}
		return string(body)
	}

	// A page of the permuted keyspace: n = 2^40 would be 8 TB
	// materialized; the default bijective backend computes just the five
	// positions asked for.
	const keyspace = "n=1099511627776"
	chunk := "/v1/perm/42/chunk?" + keyspace + "&start=777000000000&len=5"
	fmt.Printf("GET %s\n%s\n", chunk, get(chunk))

	// Replayable: the same request is byte-identical, now served from
	// the cached handle — and would be identical from any other permd
	// with any configuration, because on the bijective backend the
	// permutation is a function of (seed, n) alone.
	again := get(chunk)
	fmt.Printf("same request again: %q (byte-identical, cache hit)\n\n", strings.ReplaceAll(again, "\n", " "))

	// What the library would have said, for the skeptical:
	pm, err := randperm.NewPermuter(1<<40, randperm.Options{Seed: 42, Backend: randperm.BackendBijective})
	if err != nil {
		log.Fatal(err)
	}
	page := make([]int64, 5)
	pm.Chunk(page, 777000000000)
	fmt.Printf("library says:       %v (the HTTP path adds nothing but newlines)\n\n", page)

	// O(1) point query: which key sits at one position of the agreed order?
	at := "/v1/perm/42/at?" + keyspace + "&i=777000000002"
	fmt.Printf("GET %s\n-> position 777000000002 holds key %s\n", at, strings.TrimSpace(get(at)))

	// Batch shuffle: POST lines, get them back in exactly-uniform random
	// order. This endpoint refuses the bijective backend — exactness-
	// sensitive callers get exactness or an error, never silently less.
	resp, err := http.Post(base+"/v1/shuffle?seed=7", "text/plain",
		strings.NewReader("alpha\nbravo\ncharlie\ndelta\necho\n"))
	if err != nil {
		log.Fatal(err)
	}
	shuffled, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("\nPOST /v1/shuffle?seed=7  (5 lines)\n%s", shuffled)

	// k-subset sampling, the paper's second motivation, as a service.
	sample := "/v1/sample?n=1000000&k=5&seed=7"
	fmt.Printf("\nGET %s\n%s", sample, get(sample))

	// The operator's view: request counts, served ns/item, hit rate.
	fmt.Printf("\nGET /metrics (excerpt)\n")
	for _, line := range strings.Split(get("/metrics"), "\n") {
		if strings.HasPrefix(line, "permd_requests_total") ||
			strings.HasPrefix(line, "permd_handle_cache_hit_rate") ||
			strings.HasPrefix(line, "permd_materializations_total") {
			fmt.Println(line)
		}
	}
}
