// Sampling: the paper's second motivation - "good generation of random
// samples to test algorithms and their implementations".
//
// A test corpus of a million synthetic records is distributed over the
// worker pool; a validation campaign needs an unbiased 1% sample. Naive
// approaches either bias the sample (take the head of each shard) or
// centralize the data. ParallelSample draws an exactly uniform k-subset
// with the paper's matrix machinery: each worker learns only how many of
// its records are chosen (one column of a communication matrix) and
// selects locally.
//
//	go run ./examples/sampling
package main

import (
	"fmt"
	"log"

	"randperm"
)

const (
	corpus  = 1_000_000
	k       = 10_000
	workers = 16
)

func main() {
	// Records with a property that drifts across the corpus (record i
	// is "defective" with probability rising from 0% to 20%): a head
	// sample would see almost no defects, a tail sample far too many.
	records := make([]int64, corpus)
	for i := range records {
		records[i] = int64(i)
	}
	defectRate := func(id int64) float64 {
		return 0.2 * float64(id) / corpus
	}

	sample, rep, err := randperm.ParallelSample(records, k, randperm.Options{
		Procs: workers,
		Seed:  1234,
	})
	if err != nil {
		log.Fatal(err)
	}

	var expect float64
	for _, id := range sample {
		expect += defectRate(id)
	}
	fmt.Printf("corpus: %d records on %d workers, sample k=%d\n", corpus, workers, k)
	fmt.Printf("defect rate in sample (expected over draw): %.4f\n", expect/float64(len(sample)))
	fmt.Printf("defect rate in corpus:                      %.4f\n", 0.1)
	fmt.Printf("head-of-corpus sample would estimate:       %.4f\n",
		0.2*float64(k)/2/corpus)
	fmt.Printf("\nresources: max %d ops/worker, %d draws/worker (block size %d)\n",
		rep.MaxOps, rep.MaxDraws, corpus/workers)
}
